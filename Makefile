# Convenience targets for the TDFM reproduction.

.PHONY: build test test-race chaos serve-chaos swap-chaos grid-chaos bench bench-serve bench-mem bench-parallel repro examples vet vet-docs lint fmt clean

# Worker-pool size for bench-parallel (the serial leg always runs at 1).
WORKERS ?= 4

build:
	go build ./...

vet:
	go vet ./...

# Documentation gate: exported identifiers in the observability-critical
# packages must carry godoc comments (see cmd/vetdocs).
vet-docs:
	go run ./cmd/vetdocs internal/obs internal/parallel internal/experiment \
	    internal/faultinject internal/metrics internal/registry internal/serve \
	    internal/dist

# Static-analysis gate: the full tdfmlint pass suite — nodeterminism,
# maporder, errwrap, paniccontract, docs — over every package
# (DESIGN.md §7, "Static-analysis gates").
lint:
	go run ./cmd/tdfmlint ./internal/... ./cmd/... .

fmt:
	gofmt -w .

# Default quality gate: the static-analysis suite, doc coverage, the full
# unit/integration suite, and a race-detector pass over the new obs
# subsystem (journal appends and sinks are exercised concurrently by pool
# workers).
test: vet-docs lint
	go test ./...
	go test -race ./internal/obs/... ./internal/serve/... ./internal/dist/...

# Race-detector pass over the whole module (quality gate, DESIGN.md §6).
test-race:
	go test -race ./...

# Fault-tolerance suite: the chaos harness plus every test that injects
# faults through it, under the race detector (recovery and retry paths
# run concurrently with pool workers).
chaos:
	go test -race ./internal/chaos/...
	go test -race -run 'Chaos|Injected|Diverge|Panic|Retry|Cancel|Timeout|Recover' \
	    ./internal/core/... ./internal/experiment/... ./internal/parallel/...

# Serving-layer fault suite (DESIGN.md §8): degraded quorum, breaker
# trips and recovery, load shedding, drain, and per-request event
# ordering — all under the race detector on an injected fake clock.
serve-chaos:
	go test -race ./internal/serve/...

# Hot-swap/supervision acceptance suite (DESIGN.md §11): the registry's
# corruption/concurrency contract, then the registry → hot-swap →
# supervision pipeline — an atomic swap under sustained load with zero
# dropped requests and byte-identical votes, and a member crash that
# degrades the quorum, restarts under supervision, and heals — every
# timing path on a FakeClock (zero wall-clock sleeps), under the race
# detector.
swap-chaos:
	go test -race -count=1 ./internal/registry/...
	go test -race -count=1 -run '^TestSwapChaos' ./internal/serve/

# Distributed-grid acceptance suite (DESIGN.md §13): the lease protocol
# unit tests, the HTTP surface, and the grid-chaos gate — a full
# distributed run on a FakeClock with a worker killed mid-cell and one
# partitioned past its lease deadline, whose CSV and journal must be
# bitwise-identical to the single-process run — under the race detector
# with zero wall-clock sleeps. SHORT=1 trains one epoch per cell and
# runs only the gate: the CI smoke mode.
grid-chaos:
ifdef SHORT
	TDFM_GRID_SHORT=1 go test -race -count=1 -run '^TestGridChaos$$' -timeout 20m ./internal/dist/
else
	go test -race -count=1 -timeout 30m ./internal/dist/
endif

# Full benchmark suite: regenerates every table/figure once (tiny scale).
bench:
	go test -bench=. -benchmem -timeout 120m ./...

# Serving/tensor benchmark trajectory: regenerate the committed
# BENCH_serve.json (single vs batched dispatch at B=1/8/32/128) and
# BENCH_tensor.json (batched vs per-example Im2Col+MatMul) baselines.
# SHORT=1 runs a trimmed grid into /tmp instead — the CI smoke mode,
# which exercises the emission path without touching the committed
# numbers (CI hardware is not "the same hardware").
bench-serve:
ifdef SHORT
	TDFM_BENCH_OUT=/tmp/BENCH_serve.json TDFM_BENCH_SHORT=1 \
	    go test -run '^TestEmitServeBenchJSON$$' -v -timeout 30m ./internal/serve/
	TDFM_BENCH_OUT=/tmp/BENCH_tensor.json TDFM_BENCH_SHORT=1 \
	    go test -run '^TestEmitTensorBenchJSON$$' -v -timeout 30m ./internal/tensor/
else
	TDFM_BENCH_OUT=$(CURDIR)/BENCH_serve.json \
	    go test -run '^TestEmitServeBenchJSON$$' -v -timeout 60m ./internal/serve/
	TDFM_BENCH_OUT=$(CURDIR)/BENCH_tensor.json \
	    go test -run '^TestEmitTensorBenchJSON$$' -v -timeout 60m ./internal/tensor/
endif

# Memory benchmarks (DESIGN.md §10): pooled vs unpooled allocation rates
# for the training loop, the serving predict path, and the conv kernels,
# plus the f64 vs f32 inference comparison. The allocs/op and B/op
# columns are the point — EXPERIMENTS.md quotes them. SHORT=1 caps each
# benchmark at a few iterations: the CI smoke mode, which proves the
# benchmarks still run without paying for stable numbers.
bench-mem:
ifdef SHORT
	go test -run '^$$' -bench '^BenchmarkAlloc|^BenchmarkConvPrecision|^BenchmarkPredictPrecision' \
	    -benchmem -benchtime 2x -timeout 30m \
	    ./internal/core/ ./internal/serve/ ./internal/tensor/
else
	go test -run '^$$' -bench '^BenchmarkAlloc|^BenchmarkConvPrecision|^BenchmarkPredictPrecision' \
	    -benchmem -timeout 60m \
	    ./internal/core/ ./internal/serve/ ./internal/tensor/
endif

# Parallel-speedup check (E11): run the §IV-E overhead grid serially and at
# $(WORKERS) workers, then print the wall-clock ratio.
bench-parallel:
	@echo "== BenchmarkOverhead, 1 worker =="
	@TDFM_WORKERS=1 go test -run '^$$' -bench '^BenchmarkOverhead$$' -benchtime 1x -timeout 60m . | tee /tmp/tdfm_bench_serial.txt
	@echo "== BenchmarkOverhead, $(WORKERS) workers =="
	@TDFM_WORKERS=$(WORKERS) go test -run '^$$' -bench '^BenchmarkOverhead$$' -benchtime 1x -timeout 60m . | tee /tmp/tdfm_bench_par.txt
	@s=$$(awk '/^BenchmarkOverhead/ {print $$3}' /tmp/tdfm_bench_serial.txt); \
	 p=$$(awk '/^BenchmarkOverhead/ {print $$3}' /tmp/tdfm_bench_par.txt); \
	 awk -v s="$$s" -v p="$$p" -v w="$(WORKERS)" 'BEGIN { printf "speedup at %s workers: %.2fx (%.0f ns/op serial, %.0f ns/op parallel)\n", w, s/p, s, p }'

# Regenerate the entire paper via the CLI (higher fidelity than `bench`).
repro:
	go run ./cmd/tdfmbench -exp all -reps 3

examples:
	go run ./examples/quickstart
	go run ./examples/techniquepicker -reps 1
	go run ./examples/trafficsign
	go run ./examples/pneumonia

clean:
	rm -f test_output.txt bench_output.txt
