# Convenience targets for the TDFM reproduction.

.PHONY: build test bench repro examples vet fmt clean

build:
	go build ./...

vet:
	go vet ./...

fmt:
	gofmt -w .

test:
	go test ./...

# Full benchmark suite: regenerates every table/figure once (tiny scale).
bench:
	go test -bench=. -benchmem -timeout 120m ./...

# Regenerate the entire paper via the CLI (higher fidelity than `bench`).
repro:
	go run ./cmd/tdfmbench -exp all -reps 3

examples:
	go run ./examples/quickstart
	go run ./examples/techniquepicker -reps 1
	go run ./examples/trafficsign
	go run ./examples/pneumonia

clean:
	rm -f test_output.txt bench_output.txt
