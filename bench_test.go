// Benchmarks regenerating every table and figure of the paper. One
// benchmark per artefact; each prints the same rows/series the paper
// reports (to stdout, interleaved with the benchmark timing lines).
//
// All benchmarks share one memoized Runner, so golden models and ensemble
// trainings computed for one figure are reused by the others — the whole
// suite regenerates the paper once, not once per benchmark. Benchmarks use
// the tiny dataset scale and a single repetition to stay laptop-friendly;
// use cmd/tdfmbench with -scale small -reps 5 (or more) for figures with
// meaningful confidence intervals.
//
// Run with: go test -bench=. -benchmem (expect ~20-40 minutes on one core).
package tdfm

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"sync"
	"testing"

	"tdfm/internal/datagen"
	"tdfm/internal/experiment"
	"tdfm/internal/faultinject"
	"tdfm/internal/models"
	"tdfm/internal/parallel"
)

// benchWorkers reads the TDFM_WORKERS environment variable (used by `make
// bench-parallel` to benchmark the same grid at different pool sizes).
// Unset or invalid means 0: the runner and budget keep their defaults.
func benchWorkers() int {
	n, err := strconv.Atoi(os.Getenv("TDFM_WORKERS"))
	if err != nil || n < 1 {
		return 0
	}
	return n
}

var (
	benchOnce   sync.Once
	benchRunner *experiment.Runner
)

// sharedRunner returns the process-wide memoized runner used by every
// benchmark.
func sharedRunner() *experiment.Runner {
	benchOnce.Do(func() {
		benchRunner = experiment.NewRunner(datagen.ScaleTiny, 1, 1)
	})
	return benchRunner
}

// BenchmarkTable1Survey regenerates Table I (survey & representative
// selection). Pure data transformation; nanoseconds.
func BenchmarkTable1Survey(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w := io.Discard
		if i == 0 {
			w = os.Stdout
		}
		if err := experiment.RenderTable1(w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2Datasets regenerates Table II (dataset inventory).
func BenchmarkTable2Datasets(b *testing.B) {
	r := sharedRunner()
	for i := 0; i < b.N; i++ {
		w := io.Discard
		if i == 0 {
			w = os.Stdout
		}
		if err := r.RenderTable2(w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3Architectures regenerates Table III (model inventory).
func BenchmarkTable3Architectures(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w := io.Discard
		if i == 0 {
			w = os.Stdout
		}
		experiment.RenderTable3(w)
	}
}

// BenchmarkTable4GoldenAccuracy regenerates Table IV (accuracy without
// fault injection) for a two-model slice of the paper's four; run
// `tdfmbench -exp table4` for the full table.
func BenchmarkTable4GoldenAccuracy(b *testing.B) {
	r := sharedRunner()
	for i := 0; i < b.N; i++ {
		t4, err := r.Table4([]string{models.ResNet50, models.ConvNet}, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			t4.Table().Render(os.Stdout)
		}
	}
}

// BenchmarkMotivatingExample regenerates the §II/§III-D example
// (Pneumonia*, ResNet50, 10% mislabelling).
func BenchmarkMotivatingExample(b *testing.B) {
	r := sharedRunner()
	for i := 0; i < b.N; i++ {
		m, err := r.Motivating()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			m.Render(os.Stdout)
		}
	}
}

// BenchmarkFig3Mislabelling regenerates Fig. 3a-d (AD under mislabelling
// on GTSRB*) for a two-model slice (ConvNet shallow, MobileNet deep); run
// `tdfmbench -exp fig3-mislabel` for all four panels.
func BenchmarkFig3Mislabelling(b *testing.B) {
	r := sharedRunner()
	for i := 0; i < b.N; i++ {
		f, err := r.Figure3(faultinject.Mislabel,
			[]string{models.ConvNet, models.MobileNet}, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			f.Render(os.Stdout)
		}
	}
}

// BenchmarkFig3Removal regenerates Fig. 3e-h (AD under removal on GTSRB*)
// for the same two-model slice.
func BenchmarkFig3Removal(b *testing.B) {
	r := sharedRunner()
	for i := 0; i < b.N; i++ {
		f, err := r.Figure3(faultinject.Remove,
			[]string{models.ConvNet, models.MobileNet}, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			f.Render(os.Stdout)
		}
	}
}

// BenchmarkFig4Mislabelling regenerates Fig. 4a/c/e (ResNet50 AD under
// mislabelling across datasets) on the CIFAR-10* and Pneumonia* panels;
// the GTSRB* panel is shared with Fig. 3 (run `tdfmbench -exp
// fig4-mislabel` for all three).
func BenchmarkFig4Mislabelling(b *testing.B) {
	r := sharedRunner()
	for i := 0; i < b.N; i++ {
		f, err := r.Figure4(models.ResNet50, faultinject.Mislabel,
			[]string{"cifar10like", "pneumonialike"}, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			f.Render(os.Stdout)
		}
	}
}

// BenchmarkFig4Repetition regenerates Fig. 4b/d/f (MobileNet AD under
// repetition across datasets) on the GTSRB* and Pneumonia* panels.
func BenchmarkFig4Repetition(b *testing.B) {
	r := sharedRunner()
	for i := 0; i < b.N; i++ {
		f, err := r.Figure4(models.MobileNet, faultinject.Repeat,
			[]string{"gtsrblike", "pneumonialike"}, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			f.Render(os.Stdout)
		}
	}
}

// BenchmarkCombinedFaults regenerates the §IV-C combined-fault-type
// comparison (GTSRB*, ConvNet, 30% rates).
func BenchmarkCombinedFaults(b *testing.B) {
	r := sharedRunner()
	for i := 0; i < b.N; i++ {
		comps, err := r.CombinedFaults("gtsrblike", models.ConvNet, 0.3)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			experiment.RenderCombined(os.Stdout, comps)
		}
	}
}

// BenchmarkOverhead regenerates the §IV-E runtime-overhead analysis. It
// needs uncached timings, so it uses its own fresh runner per iteration.
// Set TDFM_WORKERS to benchmark the experiment pool at a given size
// (results are identical at any setting; only wall-clock changes).
func BenchmarkOverhead(b *testing.B) {
	if w := benchWorkers(); w > 0 {
		parallel.SetBudget(w)
		defer parallel.SetBudget(0)
	}
	for i := 0; i < b.N; i++ {
		fresh := experiment.NewRunner(datagen.ScaleTiny, uint64(1000+i), 1)
		fresh.Workers = benchWorkers()
		rows, err := fresh.Overhead("gtsrblike", models.ConvNet,
			[]experiment.FaultSpec{{Type: faultinject.Mislabel, Rate: 0.3}})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			experiment.RenderOverhead(os.Stdout, rows)
		}
	}
}

// BenchmarkAblationEnsembleSize probes the ensemble-size design choice
// (n = 1, 3, 5) on the Pneumonia* set.
func BenchmarkAblationEnsembleSize(b *testing.B) {
	r := sharedRunner()
	for i := 0; i < b.N; i++ {
		pts, err := r.AblateEnsembleSize("pneumonialike", 0.3, []int{1, 3, 5})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			experiment.RenderAblation(os.Stdout, "Ablation: ensemble size (Pneumonia*, 30% mislabelling)", pts)
		}
	}
}

// BenchmarkAblationSmoothingAlpha probes the label-smoothing budget and
// the relaxation-vs-classic design choice.
func BenchmarkAblationSmoothingAlpha(b *testing.B) {
	r := sharedRunner()
	for i := 0; i < b.N; i++ {
		pts, err := r.AblateSmoothingAlpha("pneumonialike", models.ConvNet, 0.3,
			[]float64{0.1, 0.25, 0.4})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			experiment.RenderAblation(os.Stdout, "Ablation: smoothing α (Pneumonia*, ConvNet, 30% mislabelling)", pts)
		}
	}
}

// BenchmarkAblationKDTemperature probes the distillation temperature.
func BenchmarkAblationKDTemperature(b *testing.B) {
	r := sharedRunner()
	for i := 0; i < b.N; i++ {
		pts, err := r.AblateKDTemperature("pneumonialike", models.ConvNet, 0.3,
			[]float64{1, 3, 5})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			experiment.RenderAblation(os.Stdout, "Ablation: KD temperature (Pneumonia*, ConvNet, 30% mislabelling)", pts)
		}
	}
}

// BenchmarkReverseDelta verifies the §III-C claim that the reverse delta
// (golden wrong, faulty right) is insignificant relative to the forward AD.
func BenchmarkReverseDelta(b *testing.B) {
	r := sharedRunner()
	for i := 0; i < b.N; i++ {
		fwd, rev, err := r.ReverseDeltaCheck("gtsrblike", models.ConvNet, 0.3)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Printf("reverse-delta check: forward damage %.1f%%, reverse %.1f%%\n",
				fwd.Mean*100, rev.Mean*100)
		}
	}
}

// BenchmarkTrainingThroughput measures raw substrate speed: one ConvNet
// epoch on the GTSRB* training set (useful for comparing machines, and the
// denominator behind every experiment above).
func BenchmarkTrainingThroughput(b *testing.B) {
	r := sharedRunner()
	train, _, err := r.Dataset("gtsrblike")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fresh := experiment.NewRunner(datagen.ScaleTiny, uint64(2000+i), 1)
		fresh.EpochOverride = 1
		if _, _, err := fresh.Predictions("gtsrblike", "base", models.ConvNet, nil, 0); err != nil {
			b.Fatal(err)
		}
	}
	_ = train
}
