package tdfm

import (
	"testing"
)

func TestFacadeDatasetPresets(t *testing.T) {
	cases := []struct {
		cfg     DatasetConfig
		classes int
		ch      int
	}{
		{CIFAR10Like(ScaleTiny, 1), 10, 3},
		{GTSRBLike(ScaleTiny, 1), 43, 3},
		{PneumoniaLike(ScaleTiny, 1), 2, 1},
	}
	for _, c := range cases {
		if c.cfg.NumClasses != c.classes || c.cfg.Channels != c.ch {
			t.Errorf("%s: classes/channels %d/%d", c.cfg.Name, c.cfg.NumClasses, c.cfg.Channels)
		}
		train, test, err := GenerateDataset(c.cfg)
		if err != nil {
			t.Fatalf("%s: %v", c.cfg.Name, err)
		}
		if train.Len() != c.cfg.TrainN || test.Len() != c.cfg.TestN {
			t.Errorf("%s: sizes %d/%d", c.cfg.Name, train.Len(), test.Len())
		}
	}
}

func TestFacadeFaultTypes(t *testing.T) {
	train, _, err := GenerateDataset(PneumoniaLike(ScaleTiny, 2))
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range []FaultSpec{
		{Type: Mislabel, Rate: 0.2},
		{Type: Repeat, Rate: 0.2},
		{Type: Remove, Rate: 0.2},
	} {
		out, reps, err := InjectFaults(train, 3, spec)
		if err != nil {
			t.Fatalf("%s: %v", spec.Type, err)
		}
		if len(reps) != 1 {
			t.Fatalf("%s: %d reports", spec.Type, len(reps))
		}
		switch spec.Type {
		case Mislabel:
			if out.Len() != train.Len() {
				t.Error("mislabel changed size")
			}
		case Repeat:
			if out.Len() <= train.Len() {
				t.Error("repeat did not grow")
			}
		case Remove:
			if out.Len() >= train.Len() {
				t.Error("remove did not shrink")
			}
		}
	}
}

func TestFacadeMetrics(t *testing.T) {
	labels := []int{0, 1, 1, 0}
	golden := []int{0, 1, 0, 0} // 3 correct
	faulty := []int{1, 1, 0, 0} // loses index 0
	if got := Accuracy(golden, labels); got != 0.75 {
		t.Fatalf("Accuracy = %v", got)
	}
	if got := AccuracyDelta(golden, faulty, labels); got != 1.0/3 {
		t.Fatalf("AD = %v", got)
	}
}

func TestFacadeRNGDeterministic(t *testing.T) {
	a, b := NewRNG(5), NewRNG(5)
	for i := 0; i < 10; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("facade RNG not deterministic")
		}
	}
}

func TestFacadeRunnerConstructs(t *testing.T) {
	r := NewRunner(ScaleTiny, 1, 1)
	if r == nil {
		t.Fatal("nil runner")
	}
	train, test, err := r.Dataset("pneumonialike")
	if err != nil {
		t.Fatal(err)
	}
	if train.Len() == 0 || test.Len() == 0 {
		t.Fatal("runner datasets empty")
	}
}

func TestFacadeUnknownTechnique(t *testing.T) {
	if _, err := NewTechnique("autoclean"); err == nil {
		t.Fatal("unknown technique accepted")
	}
}
