// Trafficsign exercises the study's headline finding on the safety-critical
// road-sign scenario: under heavy mislabelling, a majority-vote ensemble of
// five diverse architectures is far more resilient than any single model.
//
// It trains the paper's ensemble (ConvNet, MobileNet, ResNet18, VGG11,
// VGG16) on a GTSRB stand-in with 30% mislabelled training data, compares
// it against the unprotected single-model baseline and label smoothing, and
// shows the per-member votes for a few test images.
//
// Run with: go run ./examples/trafficsign
package main

import (
	"fmt"
	"log"

	"tdfm/internal/core"
	"tdfm/internal/datagen"
	"tdfm/internal/faultinject"
	"tdfm/internal/metrics"
	"tdfm/internal/models"
	"tdfm/internal/xrand"
)

func main() {
	log.SetFlags(0)

	train, test, err := datagen.Generate(datagen.GTSRBLike(datagen.ScaleTiny, 11))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GTSRB* dataset: %d train / %d test signs, %d classes\n",
		train.Len(), test.Len(), train.NumClasses)

	cfg := core.Config{Arch: "convnet"}
	golden, err := core.Baseline{}.Train(cfg, core.TrainSet{Data: train}, xrand.New(1))
	if err != nil {
		log.Fatal(err)
	}
	goldenPred := golden.Predict(test.X)
	fmt.Printf("golden ConvNet accuracy: %.1f%%\n\n", metrics.Accuracy(goldenPred, test.Labels)*100)

	faulty, _, err := faultinject.MislabelRate(train, 0.3, xrand.New(2))
	if err != nil {
		log.Fatal(err)
	}
	ts := core.TrainSet{Data: faulty}
	fmt.Println("30% of the training labels are now wrong. Training:")

	type result struct {
		name string
		pred []int
	}
	var results []result

	base, err := core.Baseline{}.Train(cfg, ts, xrand.New(3))
	if err != nil {
		log.Fatal(err)
	}
	results = append(results, result{"single ConvNet (unprotected)", base.Predict(test.X)})

	ls, err := core.LabelSmoothing{Alpha: 0.25}.Train(cfg, ts, xrand.New(3))
	if err != nil {
		log.Fatal(err)
	}
	results = append(results, result{"single ConvNet + label smoothing", ls.Predict(test.X)})

	ensemble := core.NewEnsemble(models.EnsembleMembers())
	fmt.Printf("  ensemble members: %v (this takes a while — 5 models)\n", models.EnsembleMembers())
	ens, err := ensemble.Train(core.Config{}, ts, xrand.New(3))
	if err != nil {
		log.Fatal(err)
	}
	ensPred := ens.Predict(test.X)
	results = append(results, result{"5-model majority-vote ensemble", ensPred})

	fmt.Println()
	for _, r := range results {
		fmt.Printf("  %-34s accuracy %5.1f%%  AD %5.1f%%\n", r.name,
			metrics.Accuracy(r.pred, test.Labels)*100,
			metrics.AccuracyDelta(goldenPred, r.pred, test.Labels)*100)
	}

	// Show individual member votes for the first few test images the
	// baseline got wrong but the ensemble got right.
	voting, ok := ens.(*core.VotingClassifier)
	if !ok {
		return
	}
	fmt.Println("\nmember votes where the ensemble outvoted a wrong baseline:")
	memberPreds := make([][]int, len(voting.Members))
	for m, member := range voting.Members {
		memberPreds[m] = member.Predict(test.X)
	}
	shownVotes := 0
	basePred := results[0].pred
	for i := 0; i < test.Len() && shownVotes < 3; i++ {
		if basePred[i] == test.Labels[i] || ensPred[i] != test.Labels[i] {
			continue
		}
		shownVotes++
		fmt.Printf("  image %3d truth=%2d baseline=%2d ensemble=%2d votes:", i, test.Labels[i], basePred[i], ensPred[i])
		for m := range voting.Members {
			fmt.Printf(" %d", memberPreds[m][i])
		}
		fmt.Println()
	}
	if shownVotes == 0 {
		fmt.Println("  (none this seed)")
	}
}
