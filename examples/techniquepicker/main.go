// Techniquepicker answers the paper's core question — "how should a
// developer select a TDFM technique?" — for a user-supplied scenario.
//
// Given a dataset, an architecture, an expected fault type/rate, and a
// resource budget, it measures every applicable technique's AD and
// overhead, then prints a recommendation following the paper's decision
// rule: pick the lowest-AD technique whose overhead fits the budget
// (ensembles win on resilience, label smoothing on efficiency).
//
// Run with: go run ./examples/techniquepicker [-dataset ...] [-model ...]
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"tdfm/internal/datagen"
	"tdfm/internal/experiment"
	"tdfm/internal/faultinject"
)

func main() {
	log.SetFlags(0)
	var (
		dataset  = flag.String("dataset", "pneumonialike", "dataset: cifar10like|gtsrblike|pneumonialike")
		model    = flag.String("model", "convnet", "architecture the application will deploy")
		fault    = flag.String("fault", "mislabel", "expected fault type: mislabel|repeat|remove")
		rate     = flag.Float64("rate", 0.3, "expected fault rate")
		budget   = flag.Float64("budget", 10, "max acceptable training overhead (x baseline)")
		infLimit = flag.Float64("inference-budget", 5, "max acceptable inference overhead (x baseline)")
		reps     = flag.Int("reps", 2, "measurement repetitions")
	)
	flag.Parse()

	ft, err := faultinject.ParseType(*fault)
	if err != nil {
		log.Fatal(err)
	}
	r := experiment.NewRunner(datagen.ScaleTiny, 99, *reps)

	fmt.Printf("scenario: %s on %s, expecting %s faults at %.0f%%\n",
		*model, *dataset, ft, *rate*100)
	fmt.Printf("budgets: training ≤%.1fx, inference ≤%.1fx\n\n", *budget, *infLimit)

	specs := []experiment.FaultSpec{{Type: ft, Rate: *rate}}
	baseCell, err := r.MeasureAD(*dataset, "base", *model, specs)
	if err != nil {
		log.Fatal(err)
	}

	type row struct {
		tech    string
		ad      float64
		ci      float64
		trainOH float64
		inferOH float64
		fits    bool
	}
	var rows []row
	for _, tech := range experiment.TechniquesFor(ft) {
		cell, err := r.MeasureAD(*dataset, tech, *model, specs)
		if err != nil {
			log.Fatal(err)
		}
		trainOH := 1.0
		if baseCell.TrainDur > 0 {
			trainOH = float64(cell.TrainDur) / float64(baseCell.TrainDur)
		}
		inferOH := 1.0
		if tech == "ens" {
			inferOH = 5
		}
		rows = append(rows, row{
			tech:    tech,
			ad:      cell.AD.Mean,
			ci:      cell.AD.CI95,
			trainOH: trainOH,
			inferOH: inferOH,
			fits:    trainOH <= *budget && inferOH <= *infLimit,
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].ad < rows[j].ad })

	fmt.Println("technique ranking (lower AD = more resilient):")
	for i, row := range rows {
		status := "within budget"
		if !row.fits {
			status = "OVER BUDGET"
		}
		fmt.Printf("  %d. %-5s AD %5.1f%% ±%4.1f  train %4.1fx  inference %1.0fx  [%s]\n",
			i+1, row.tech, row.ad*100, row.ci*100, row.trainOH, row.inferOH, status)
	}

	for _, row := range rows {
		if row.fits && row.tech != "base" {
			fmt.Printf("\nrecommendation: use %q — lowest AD among techniques within budget.\n", row.tech)
			if row.tech != rows[0].tech {
				fmt.Printf("(%q is more resilient but exceeds your budget.)\n", rows[0].tech)
			}
			return
		}
	}
	fmt.Println("\nrecommendation: no protected technique fits the budget; raise the budget or accept baseline risk.")
}
