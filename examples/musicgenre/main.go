// Musicgenre demonstrates the paper's future-work direction — applying the
// TDFM techniques beyond image data — on a stand-in for the GTZAN
// music-genre dataset, whose documented fault census (mislabelled,
// repeated, and distorted excerpts; Sturm 2013) motivated the paper's
// fault taxonomy in the first place.
//
// The "audio" is a synthetic spectrogram patch (frequency × time); the
// substrate is input-layout agnostic, so every technique runs unchanged.
// The example injects the two fault types GTZAN is known for — repetition
// and mislabelling — together, and compares the unprotected baseline with
// label smoothing and a compact 3-model ensemble.
//
// Run with: go run ./examples/musicgenre
package main

import (
	"fmt"
	"log"

	"tdfm/internal/core"
	"tdfm/internal/datagen"
	"tdfm/internal/faultinject"
	"tdfm/internal/metrics"
	"tdfm/internal/xrand"
)

func main() {
	log.SetFlags(0)

	train, test, err := datagen.Generate(datagen.GTZANLike(datagen.ScaleTiny, 21))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GTZAN* dataset: %d train / %d test spectrogram patches, %d genres\n",
		train.Len(), test.Len(), train.NumClasses)

	cfg := core.Config{Arch: "convnet"}
	golden, err := core.Baseline{}.Train(cfg, core.TrainSet{Data: train}, xrand.New(1))
	if err != nil {
		log.Fatal(err)
	}
	gp := golden.Predict(test.X)
	fmt.Printf("golden accuracy: %.1f%%\n", metrics.Accuracy(gp, test.Labels)*100)

	// GTZAN's documented fault mix: repeated excerpts plus mislabels.
	inj := faultinject.New(xrand.New(2))
	faulty, reports, err := inj.Inject(train,
		faultinject.Spec{Type: faultinject.Mislabel, Rate: 0.25},
		faultinject.Spec{Type: faultinject.Repeat, Rate: 0.10},
	)
	if err != nil {
		log.Fatal(err)
	}
	for _, rep := range reports {
		fmt.Printf("injected %s at %.0f%%: %d excerpts affected\n",
			rep.Spec.Type, rep.Spec.Rate*100, len(rep.Affected))
	}

	ts := core.TrainSet{Data: faulty}
	for _, tech := range []core.Technique{
		core.Baseline{},
		core.LabelSmoothing{Alpha: 0.25},
		core.NewEnsemble([]string{"convnet", "deconvnet", "vgg11"}),
	} {
		clf, err := tech.Train(cfg, ts, xrand.New(3))
		if err != nil {
			log.Fatal(err)
		}
		pred := clf.Predict(test.X)
		fmt.Printf("%-48s accuracy %5.1f%%  AD %5.1f%%\n",
			tech.Description()+":",
			metrics.Accuracy(pred, test.Labels)*100,
			metrics.AccuracyDelta(gp, pred, test.Labels)*100)
	}

	// Per-genre damage: which genres do the faults hurt most?
	base, err := core.Baseline{}.Train(cfg, ts, xrand.New(3))
	if err != nil {
		log.Fatal(err)
	}
	bp := base.Predict(test.X)
	goldenPC := metrics.PerClassAccuracy(gp, test.Labels, test.NumClasses)
	faultyPC := metrics.PerClassAccuracy(bp, test.Labels, test.NumClasses)
	fmt.Println("\nper-genre accuracy golden → faulty baseline:")
	for c := 0; c < test.NumClasses; c++ {
		fmt.Printf("  genre %d: %5.1f%% → %5.1f%%\n", c, goldenPC[c]*100, faultyPC[c]*100)
	}
}
