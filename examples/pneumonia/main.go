// Pneumonia reproduces the paper's motivating example (§II): a ResNet50
// classifier for chest X-rays whose training data receives 10%
// mislabelling faults.
//
// The example trains a golden model on clean data and a faulty model on
// mislabelled data, reports both accuracies, and then — like the paper's
// Fig. 1 — finds test images the golden model classifies correctly but the
// faulty model flips, rendering them as ASCII heat maps.
//
// Run with: go run ./examples/pneumonia
package main

import (
	"fmt"
	"log"
	"strings"

	"tdfm/internal/core"
	"tdfm/internal/data"
	"tdfm/internal/datagen"
	"tdfm/internal/faultinject"
	"tdfm/internal/metrics"
	"tdfm/internal/xrand"
)

func main() {
	log.SetFlags(0)

	train, test, err := datagen.Generate(datagen.PneumoniaLike(datagen.ScaleSmall, 7))
	if err != nil {
		log.Fatal(err)
	}
	classNames := []string{"normal", "pneumonia"}
	fmt.Printf("Pneumonia* dataset: %d train / %d test X-rays (%d classes)\n",
		train.Len(), test.Len(), train.NumClasses)

	cfg := core.Config{Arch: "resnet50"}
	fmt.Println("training golden ResNet50 on clean data…")
	golden, err := core.Baseline{}.Train(cfg, core.TrainSet{Data: train}, xrand.New(1))
	if err != nil {
		log.Fatal(err)
	}
	goldenPred := golden.Predict(test.X)
	fmt.Printf("golden accuracy: %.1f%%\n", metrics.Accuracy(goldenPred, test.Labels)*100)

	faulty, _, err := faultinject.MislabelRate(train, 0.1, xrand.New(2))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("training faulty ResNet50 on 10% mislabelled data…")
	faultyModel, err := core.Baseline{}.Train(cfg, core.TrainSet{Data: faulty}, xrand.New(1))
	if err != nil {
		log.Fatal(err)
	}
	faultyPred := faultyModel.Predict(test.X)
	fmt.Printf("faulty accuracy: %.1f%%  (AD %.1f%%)\n",
		metrics.Accuracy(faultyPred, test.Labels)*100,
		metrics.AccuracyDelta(goldenPred, faultyPred, test.Labels)*100)

	// Find up to two "Fig. 1" images: golden correct, faulty wrong, one per
	// true class if possible.
	fmt.Println("\nexamples the faults flipped (cf. paper Fig. 1):")
	shown := map[int]bool{}
	count := 0
	for i := 0; i < test.Len() && count < 2; i++ {
		if goldenPred[i] != test.Labels[i] || faultyPred[i] == test.Labels[i] || shown[test.Labels[i]] {
			continue
		}
		shown[test.Labels[i]] = true
		count++
		fmt.Printf("\ntest image %d — truth: %s, golden: %s, faulty: %s\n",
			i, classNames[test.Labels[i]], classNames[goldenPred[i]], classNames[faultyPred[i]])
		fmt.Println(renderASCII(test, i))
	}
	if count == 0 {
		fmt.Println("(no flipped images this seed — faults did little damage)")
	}

	// Apply the mitigation the paper recommends for resource-constrained
	// settings: label smoothing.
	fmt.Println("\nmitigating with label smoothing…")
	ls, err := core.LabelSmoothing{Alpha: 0.25}.Train(cfg, core.TrainSet{Data: faulty}, xrand.New(1))
	if err != nil {
		log.Fatal(err)
	}
	lsPred := ls.Predict(test.X)
	fmt.Printf("label-smoothing accuracy: %.1f%%  (AD %.1f%%)\n",
		metrics.Accuracy(lsPred, test.Labels)*100,
		metrics.AccuracyDelta(goldenPred, lsPred, test.Labels)*100)
}

// renderASCII draws a greyscale image as an ASCII heat map.
func renderASCII(ds *data.Dataset, idx int) string {
	const ramp = " .:-=+*#%@"
	h, w := ds.Height(), ds.Width()
	ss := ds.Channels() * h * w
	img := ds.X.Data()[idx*ss : idx*ss+h*w] // first channel
	lo, hi := img[0], img[0]
	for _, v := range img {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	span := hi - lo
	if span == 0 {
		span = 1
	}
	var b strings.Builder
	for y := 0; y < h; y++ {
		b.WriteString("  ")
		for x := 0; x < w; x++ {
			v := (img[y*w+x] - lo) / span
			ch := ramp[int(v*float64(len(ramp)-1)+0.5)]
			b.WriteByte(ch)
			b.WriteByte(ch) // double width for aspect ratio
		}
		b.WriteByte('\n')
	}
	return b.String()
}
