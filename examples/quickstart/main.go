// Quickstart: the smallest end-to-end use of the TDFM library.
//
// It generates a synthetic traffic-sign dataset, injects 30% mislabelling
// faults, trains an unprotected baseline and a label-smoothing-protected
// model on the faulty data, and compares their accuracy and Accuracy Delta
// against a golden model trained on clean data.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"tdfm/internal/core"
	"tdfm/internal/datagen"
	"tdfm/internal/faultinject"
	"tdfm/internal/metrics"
	"tdfm/internal/xrand"
)

func main() {
	log.SetFlags(0)

	// 1. Generate a dataset (a synthetic stand-in for GTSRB).
	train, test, err := datagen.Generate(datagen.GTSRBLike(datagen.ScaleTiny, 42))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d train / %d test images, %d classes\n",
		train.Len(), test.Len(), train.NumClasses)

	// 2. Train the golden model on clean data.
	cfg := core.Config{Arch: "convnet"}
	golden, err := core.Baseline{}.Train(cfg, core.TrainSet{Data: train}, xrand.New(1))
	if err != nil {
		log.Fatal(err)
	}
	goldenPred := golden.Predict(test.X)
	fmt.Printf("golden model accuracy: %.1f%%\n",
		metrics.Accuracy(goldenPred, test.Labels)*100)

	// 3. Inject 30% mislabelling faults into the training data.
	faulty, rep, err := faultinject.MislabelRate(train, 0.3, xrand.New(2))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("injected mislabelling into %d of %d training samples\n",
		len(rep.Affected), train.Len())

	// 4. Train on the faulty data with and without mitigation.
	for _, tech := range []core.Technique{
		core.Baseline{},
		core.LabelSmoothing{Alpha: 0.25},
	} {
		clf, err := tech.Train(cfg, core.TrainSet{Data: faulty}, xrand.New(3))
		if err != nil {
			log.Fatal(err)
		}
		pred := clf.Predict(test.X)
		fmt.Printf("%-28s accuracy %.1f%%  AD %.1f%%\n",
			tech.Description()+":",
			metrics.Accuracy(pred, test.Labels)*100,
			metrics.AccuracyDelta(goldenPred, pred, test.Labels)*100)
	}
}
