// Command tdfmserve serves TDFM predictions over a resilient HTTP JSON
// API: per-member deadlines, circuit breakers, degraded quorum voting,
// bounded admission with load shedding, and atomic model hot-swap (see
// internal/serve and DESIGN.md §8, §11).
//
// The model comes from one of two places:
//
//   - Training mode (default): train a technique at startup.
//
//     tdfmserve -addr :8089 -dataset gtsrblike -technique ens \
//     [-arch convnet] [-scale tiny] [-seed 1] [-epochs E]
//
//   - Registry mode: load a version published by `trainmodel -publish`
//     from a model registry directory (internal/registry). The artifact
//     is digest-verified before serving; nothing is trained at boot.
//
//     tdfmserve -addr :8089 -model ./registry [-model-version 3] \
//     [-watch] [-watch-interval 2s]
//
// With -watch the server polls the registry and atomically hot-swaps to
// each newly published version: requests in flight finish against the
// generation they started on, new requests route to the new model, and
// no request is ever dropped or shed by a swap.
//
// Registry mode has two sharding roles:
//
//   - `-member i` serves only member i of the artifact — a
//     single-member shard, used as the child process of a sharded
//     deployment.
//   - `-shard` runs every artifact member as a separate supervised
//     `tdfmserve -member` child process: the parent fans votes out over
//     HTTP, health-checks each child, and restarts crashed or unhealthy
//     children with exponential backoff. A dead child degrades the
//     quorum through the ordinary breaker machinery; the service keeps
//     answering while the supervisor restores full strength.
//
// Serving flags (all modes): [-member-deadline 2s] [-min-quorum 0]
// [-queue 64] [-breaker-threshold 3] [-breaker-cooldown 10s]
// [-batch-cap 32] [-batch-window 2ms] [-precision f64|f32] [-workers W]
//
// -precision=f32 converts the model's weights to float32 once at load
// and serves inference at half the memory traffic; predicted classes
// are unchanged (DESIGN.md §10).
//
// The API:
//
//	POST /predict  {"instances": [[…C*H*W floats…], …]}
//	               → {"predictions": […], "quorum": "k/n", "members": […]}
//	GET  /healthz  → drain status, per-member breaker states, active
//	               model version + digest, and current quorum k/n
//
// SIGINT or SIGTERM drains cooperatively: admission stops (new requests
// get 503), in-flight requests finish, supervised children are
// terminated, then the listener shuts down.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"tdfm/internal/chaos"
	"tdfm/internal/core"
	"tdfm/internal/datagen"
	"tdfm/internal/metrics"
	"tdfm/internal/obs"
	"tdfm/internal/parallel"
	"tdfm/internal/registry"
	"tdfm/internal/serve"
	"tdfm/internal/tensor"
	"tdfm/internal/xrand"
)

func main() {
	if err := run(os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "tdfmserve:", err)
		os.Exit(1)
	}
}

// run builds the configured model source (training, registry, or shard
// supervision) and serves until SIGINT/SIGTERM or a listener error.
// When ready is non-nil it receives the bound address once the server
// is listening (tests use it with "-addr 127.0.0.1:0").
func run(args []string, ready chan<- string) error {
	fs := flag.NewFlagSet("tdfmserve", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", ":8089", "HTTP listen address")
		dataset     = fs.String("dataset", "gtsrblike", "dataset: cifar10like|gtsrblike|pneumonialike (training mode)")
		scaleStr    = fs.String("scale", "tiny", "dataset scale: tiny|small|medium (training mode)")
		seed        = fs.Uint64("seed", 1, "random seed (training mode)")
		tech        = fs.String("technique", "ens", "TDFM technique to train and serve: base|ls|lc|rl|kd|ens (training mode)")
		arch        = fs.String("arch", "convnet", "architecture for single-model techniques (training mode)")
		epochs      = fs.Int("epochs", 0, "training epochs (0 = architecture default; training mode)")
		workersN    = fs.Int("workers", 0, "worker pool size for training and tensor kernels (0 = GOMAXPROCS)")
		deadline    = fs.Duration("member-deadline", 2*time.Second, "per-member prediction deadline")
		minQuorum   = fs.Int("min-quorum", 0, "fewest surviving members for a vote (0 = strict majority)")
		queue       = fs.Int("queue", 64, "admission queue capacity; overflow is shed with 429")
		brThreshold = fs.Int("breaker-threshold", 3, "consecutive member failures that open its breaker")
		brCooldown  = fs.Duration("breaker-cooldown", 10*time.Second, "open-breaker wait before a half-open probe")
		batchCap    = fs.Int("batch-cap", 0, "micro-batch row cap; >1 stacks admitted requests into one forward pass (0 = per-request dispatch)")
		batchWindow = fs.Duration("batch-window", 0, "micro-batch collection window (0 = 2ms default when -batch-cap > 1)")
		precision   = fs.String("precision", "f64", "inference storage precision: f64|f32 (training is always f64; f32 halves predict-path memory with identical votes)")
		modelDir    = fs.String("model", "", "model registry directory: serve a published artifact instead of training at boot")
		modelVer    = fs.Int("model-version", 0, "registry version to serve (0 = latest; requires -model)")
		watch       = fs.Bool("watch", false, "poll the registry and hot-swap to newly published versions (requires -model)")
		watchInt    = fs.Duration("watch-interval", 2*time.Second, "registry poll interval for -watch")
		memberIdx   = fs.Int("member", -1, "serve only this artifact member as a single-member shard (requires -model)")
		shard       = fs.Bool("shard", false, "run each artifact member as a supervised child process (requires -model)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *modelDir == "" && (*watch || *shard || *memberIdx >= 0) {
		return fmt.Errorf("-watch, -shard, and -member require -model <registry-dir>")
	}
	if *shard && *memberIdx >= 0 {
		return fmt.Errorf("-shard and -member are mutually exclusive (the parent shards, the child is a member)")
	}
	if *shard && *watch {
		return fmt.Errorf("-watch is not supported with -shard: children are pinned to the version the parent spawned them with")
	}
	scale, err := parseScale(*scaleStr)
	if err != nil {
		return err
	}
	if *workersN < 0 {
		return fmt.Errorf("-workers must be >= 0, got %d", *workersN)
	}
	// Reject bad precision before spending minutes training; serve.New
	// validates again for library callers.
	switch serve.Precision(*precision) {
	case serve.PrecisionF64, serve.PrecisionF32:
	default:
		return fmt.Errorf("unknown precision %q (want %s or %s)", *precision, serve.PrecisionF64, serve.PrecisionF32)
	}
	workers := *workersN
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	parallel.SetBudget(workers)
	tensor.SetParallelism(workers)

	clock := chaos.Wall()
	opts := serve.Options{
		MemberDeadline:   *deadline,
		MinQuorum:        *minQuorum,
		QueueCapacity:    *queue,
		BreakerThreshold: *brThreshold,
		BreakerCooldown:  *brCooldown,
		BatchCap:         *batchCap,
		BatchWindow:      *batchWindow,
		Precision:        serve.Precision(*precision),
		Clock:            clock,
		Sink:             logSink{},
	}

	// stopAux ends the auxiliary goroutines — the registry watcher and
	// the member supervisors (which SIGTERM their children on the way
	// out); aux waits them out so shutdown never orphans a child.
	stopAux := make(chan struct{})
	var stopOnce sync.Once
	stopAll := func() { stopOnce.Do(func() { close(stopAux) }) }
	var aux sync.WaitGroup
	defer func() { stopAll(); aux.Wait() }()

	var hot *serve.Hot
	switch {
	case *shard:
		srv, man, sups, err := buildShard(*modelDir, *modelVer, opts, *precision, clock)
		if err != nil {
			return err
		}
		fmt.Printf("model %s %s (%d member shards, %d classes)\n",
			man.Label(), man.Digest, len(man.Members), man.Classes)
		hot = serve.NewHot(srv)
		for _, sup := range sups {
			sup := sup
			aux.Add(1)
			go func() { //tdfm:allow nodeterminism supervisors run for the process lifetime and stop via stopAux; restart scheduling never reaches a vote
				defer aux.Done()
				sup.Run(stopAux)
			}()
		}
	case *modelDir != "":
		srv, man, err := openServer(*modelDir, *modelVer, *memberIdx, opts)
		if err != nil {
			return err
		}
		fmt.Printf("model %s %s (%d members, %d classes)\n",
			man.Label(), man.Digest, len(man.Members), man.Classes)
		hot = serve.NewHot(srv)
		if *watch {
			aux.Add(1)
			go func() { //tdfm:allow nodeterminism the registry watcher polls on the injected clock and stops via stopAux; swap ordering is serialized by Hot
				defer aux.Done()
				watchLoop(hot, *modelDir, man.Version, *memberIdx, opts, clock, *watchInt, stopAux)
			}()
		}
	default:
		srv, err := buildServer(*dataset, scale, *seed, *tech, *arch, *epochs, opts)
		if err != nil {
			return err
		}
		hot = serve.NewHot(srv)
	}

	// Install signal handling before the listener is announced so a test
	// (or an impatient operator) cannot signal into a gap.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: hot.Handler()}
	srv := hot.Server()
	fmt.Printf("serving on http://%s (quorum floor %d/%d, deadline %s)\n",
		ln.Addr(), srv.Options().MinQuorum, len(srv.MemberNames()), srv.Options().MemberDeadline)
	if ready != nil {
		ready <- ln.Addr().String()
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }() //tdfm:allow nodeterminism the listener loop must run beside the signal select; request ordering is the client's

	select {
	case err := <-errc:
		return err
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "tdfmserve: %v — draining, waiting for in-flight requests\n", s)
		stopAll()
		aux.Wait() // supervisors SIGTERM their children before Drain retires the generation
		hot.Drain()
		// Buffer-pool counters at shutdown: how much predict-path
		// allocation the pool absorbed over the process lifetime.
		fmt.Fprintf(os.Stderr, "tdfmserve: %s\n", tensor.Stats())
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		return httpSrv.Shutdown(ctx)
	}
}

// openServer loads and verifies a registry version (0 = latest) and
// wraps it in the serving layer.
func openServer(dir string, version, memberIdx int, opts serve.Options) (*serve.Server, registry.Manifest, error) {
	clf, man, err := registry.Open(dir, version)
	if err != nil {
		return nil, registry.Manifest{}, err
	}
	srv, err := serverFromManifest(clf, man, memberIdx, opts)
	return srv, man, err
}

// serverFromManifest builds the serving layer around a classifier
// opened from the registry: member names, input shape, class count, and
// the model identity reported by /healthz all come from the manifest.
// memberIdx ≥ 0 narrows the server to that one member (a shard child).
func serverFromManifest(clf core.Classifier, man registry.Manifest, memberIdx int, opts serve.Options) (*serve.Server, error) {
	members := serve.Split(clf, man.Members)
	if memberIdx >= 0 {
		if memberIdx >= len(members) {
			return nil, fmt.Errorf("-member %d out of range: %s has %d members", memberIdx, man.Label(), len(members))
		}
		members = members[memberIdx : memberIdx+1]
	}
	opts.Input = man.Input
	opts.Model = serve.ModelInfo{Version: man.Version, Digest: man.Digest}
	return serve.New(members, man.Classes, opts)
}

// watchLoop polls the registry and atomically hot-swaps each newly
// published version in. A version that fails to open or construct (a
// corrupt artifact, an interrupted publish) is logged and skipped: the
// serving generation is never replaced by anything that did not fully
// verify.
func watchLoop(hot *serve.Hot, dir string, after, memberIdx int, opts serve.Options,
	clock chaos.Clock, interval time.Duration, stop <-chan struct{}) {
	for man := range registry.Watch(dir, after, clock, interval, stop) {
		clf, man, err := registry.Open(dir, man.Version)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tdfmserve: skipping %s: %v\n", man.Label(), err)
			continue
		}
		next, err := serverFromManifest(clf, man, memberIdx, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tdfmserve: skipping %s: %v\n", man.Label(), err)
			continue
		}
		hot.Swap(next)
	}
}

// buildShard builds the parent of a sharded deployment: one
// RemoteMember per artifact member, each backed by a supervised
// `tdfmserve -member i` child process. The parent never deserializes
// the model — children load (and digest-verify) the artifact
// themselves, pinned to the parent's version.
func buildShard(dir string, version int, opts serve.Options, precision string,
	clock chaos.Clock) (*serve.Server, registry.Manifest, []*serve.Supervisor, error) {
	man, err := findManifest(dir, version)
	if err != nil {
		return nil, man, nil, err
	}
	exe, err := os.Executable()
	if err != nil {
		return nil, man, nil, fmt.Errorf("resolving member binary: %w", err)
	}
	members := make([]serve.Member, len(man.Members))
	sups := make([]*serve.Supervisor, len(man.Members))
	for i, name := range man.Members {
		rm := serve.NewRemoteMember(name, "", man.Input)
		proc := &execMember{name: name, exe: exe, args: []string{
			"-member", strconv.Itoa(i),
			"-model", dir,
			"-model-version", strconv.Itoa(man.Version),
			"-precision", precision,
			"-addr", "127.0.0.1:0",
		}}
		members[i] = serve.Member{Name: name, Clf: rm}
		sups[i] = serve.NewSupervisor(name, proc, rm, serve.SupervisorOptions{Clock: clock, Sink: opts.Sink})
	}
	// The parent only relays votes; precision applies in the children,
	// where the weights live (a RemoteMember has nothing to convert).
	opts.Precision = serve.PrecisionF64
	opts.Input = man.Input
	opts.Model = serve.ModelInfo{Version: man.Version, Digest: man.Digest}
	srv, err := serve.New(members, man.Classes, opts)
	return srv, man, sups, err
}

// findManifest resolves a version number (0 = latest) to its manifest
// record without opening the artifact.
func findManifest(dir string, version int) (registry.Manifest, error) {
	if version > 0 {
		return registry.Find(dir, version)
	}
	man, ok, err := registry.Latest(dir)
	if err != nil {
		return man, err
	}
	if !ok {
		return man, fmt.Errorf("registry %s is empty: %w", dir, registry.ErrNotFound)
	}
	return man, nil
}

// execMember runs one `tdfmserve -member` child process, implementing
// serve.MemberProcess. Readiness is the child's own announcement:
// Start returns once the child prints its "serving on http://…" line,
// carrying the ephemeral port the parent must dial.
type execMember struct {
	name string
	exe  string
	args []string

	mu  sync.Mutex
	cmd *exec.Cmd
}

// spawnTimeout bounds how long Start waits for a child to announce its
// address before declaring the spawn failed.
const spawnTimeout = 2 * time.Minute

// Start implements serve.MemberProcess: spawn the child, forward its
// stdout/stderr, and wait for its serving address.
func (p *execMember) Start() (string, <-chan error, error) {
	// Chaos hook: an armed "serve/spawn" Err simulates a member binary
	// that cannot launch, exercising the supervisor's start-failed path.
	if chaos.Armed() {
		if act := chaos.Check("serve/spawn", p.name); act != nil && act.Err != nil {
			return "", nil, act.Err
		}
	}
	cmd := exec.Command(p.exe, p.args...)
	cmd.Env = append(os.Environ(), "TDFM_SERVE_CHILD=1")
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return "", nil, err
	}
	if err := cmd.Start(); err != nil {
		return "", nil, err
	}
	addrc := make(chan string, 1)
	go func() { //tdfm:allow nodeterminism child stdout forwarding lives as long as the pipe; log interleaving is cosmetic and never reaches a vote
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			fmt.Fprintf(os.Stderr, "tdfmserve[%s]: %s\n", p.name, line)
			if a, ok := servingAddr(line); ok {
				select {
				case addrc <- a:
				default:
				}
			}
		}
	}()
	exit := make(chan error, 1)
	go func() { exit <- cmd.Wait() }() //tdfm:allow nodeterminism exit notification delivery is absorbed by the supervisor's restart loop
	select {
	case addr := <-addrc:
		p.mu.Lock()
		p.cmd = cmd
		p.mu.Unlock()
		return addr, exit, nil
	case err := <-exit:
		if err == nil {
			err = fmt.Errorf("member %s exited before announcing an address", p.name)
		}
		return "", nil, err
	case <-time.After(spawnTimeout): //tdfm:allow nodeterminism wall-clock guard against a wedged child launch; deterministic tests supervise in-process fakes and never reach a real spawn
		_ = cmd.Process.Kill()
		return "", nil, fmt.Errorf("member %s did not announce an address within %s", p.name, spawnTimeout)
	}
}

// Stop implements serve.MemberProcess: SIGTERM, triggering the child's
// cooperative drain. Safe to call after the child already exited.
func (p *execMember) Stop() {
	p.mu.Lock()
	cmd := p.cmd
	p.cmd = nil
	p.mu.Unlock()
	if cmd != nil && cmd.Process != nil {
		_ = cmd.Process.Signal(syscall.SIGTERM)
	}
}

// servingAddr extracts the listen address from a child's readiness line
// ("serving on http://127.0.0.1:43210 (quorum floor 1/1, …").
func servingAddr(line string) (string, bool) {
	rest, ok := strings.CutPrefix(line, "serving on http://")
	if !ok {
		return "", false
	}
	addr, _, _ := strings.Cut(rest, " ")
	return "http://" + addr, true
}

// logSink prints model-lifecycle events — hot swaps, the retiring
// version's pool-stats snapshot, member restarts — to stderr.
// Request-scoped serving events stay silent; they are far too chatty
// for a log line each.
type logSink struct{}

// Emit implements obs.Sink.
func (logSink) Emit(e obs.Event) {
	switch e.Kind {
	case obs.KindSwap:
		fmt.Fprintf(os.Stderr, "tdfmserve: swap %s\n", e.Detail)
	case obs.KindPoolStats:
		if e.Key != "" {
			fmt.Fprintf(os.Stderr, "tdfmserve: pool-stats [%s] %s\n", e.Key, e.Detail)
		} else {
			fmt.Fprintf(os.Stderr, "tdfmserve: pool-stats %s\n", e.Detail)
		}
	case obs.KindMemberRestart:
		msg := fmt.Sprintf("tdfmserve: member %s %s (failures=%d", e.Member, e.Detail, e.N)
		if e.Dur > 0 {
			msg += ", backoff=" + e.Dur.String()
		}
		if e.Err != nil {
			msg += ", cause=" + e.Err.Error()
		}
		fmt.Fprintln(os.Stderr, msg+")")
	}
}

// buildServer generates the dataset, trains the technique, and wraps
// the trained classifier in the resilient serving layer (training
// mode — no registry involved).
func buildServer(dataset string, scale datagen.Scale, seed uint64, tech, arch string,
	epochs int, opts serve.Options) (*serve.Server, error) {
	cfg, ok := datagen.Presets(scale, seed)[dataset]
	if !ok {
		return nil, fmt.Errorf("unknown dataset %q", dataset)
	}
	train, test, err := datagen.Generate(cfg)
	if err != nil {
		return nil, err
	}
	technique, err := core.Get(tech)
	if err != nil {
		return nil, err
	}
	fmt.Printf("training %s on %s (%d samples)…\n", technique.Name(), dataset, train.Len())
	start := time.Now() //tdfm:allow nodeterminism training duration is an operator-facing log line, never part of a result
	clf, err := technique.Train(core.Config{Arch: arch, Epochs: epochs},
		core.TrainSet{Data: train}, xrand.New(seed).Split("serve"))
	if err != nil {
		return nil, err
	}
	fmt.Printf("trained in %s, test accuracy %.1f%%\n",
		time.Since(start).Round(time.Millisecond), //tdfm:allow nodeterminism training duration is an operator-facing log line, never part of a result
		metrics.Accuracy(clf.Predict(test.X), test.Labels)*100)

	names := []string{arch}
	if e, ok := technique.(*core.Ensemble); ok {
		names = e.Members
	}
	opts.Input = [3]int{cfg.Channels, cfg.Height, cfg.Width}
	return serve.New(serve.Split(clf, names), cfg.NumClasses, opts)
}

func parseScale(s string) (datagen.Scale, error) {
	switch s {
	case "tiny":
		return datagen.ScaleTiny, nil
	case "small":
		return datagen.ScaleSmall, nil
	case "medium":
		return datagen.ScaleMedium, nil
	default:
		return 0, fmt.Errorf("unknown scale %q", s)
	}
}
