// Command tdfmserve trains a TDFM technique at startup and serves its
// predictions over a resilient HTTP JSON API: per-member deadlines,
// circuit breakers, degraded quorum voting, and bounded admission with
// load shedding (see internal/serve and DESIGN.md §8).
//
// Usage:
//
//	tdfmserve -addr :8089 -dataset gtsrblike -technique ens \
//	          [-scale tiny] [-seed 1] [-epochs E] [-workers W] \
//	          [-member-deadline 2s] [-min-quorum 0] [-queue 64] \
//	          [-breaker-threshold 3] [-breaker-cooldown 10s] \
//	          [-batch-cap 32] [-batch-window 2ms] [-precision f64|f32]
//
// -precision=f32 converts the trained weights to float32 once at startup
// and serves inference at half the memory traffic; training always runs
// in float64 and predicted classes are unchanged (DESIGN.md §10).
//
// The API:
//
//	POST /predict  {"instances": [[…C*H*W floats…], …]}
//	               → {"predictions": […], "quorum": "k/n", "members": […]}
//	GET  /healthz  → drain status and per-member breaker states
//
// SIGINT or SIGTERM drains cooperatively: admission stops (new requests
// get 503), in-flight requests finish, then the listener shuts down.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"tdfm/internal/core"
	"tdfm/internal/datagen"
	"tdfm/internal/metrics"
	"tdfm/internal/parallel"
	"tdfm/internal/serve"
	"tdfm/internal/tensor"
	"tdfm/internal/xrand"
)

func main() {
	if err := run(os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "tdfmserve:", err)
		os.Exit(1)
	}
}

// run trains the technique and serves until SIGINT/SIGTERM or a listener
// error. When ready is non-nil it receives the bound address once the
// server is listening (tests use it with "-addr 127.0.0.1:0").
func run(args []string, ready chan<- string) error {
	fs := flag.NewFlagSet("tdfmserve", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", ":8089", "HTTP listen address")
		dataset     = fs.String("dataset", "gtsrblike", "dataset: cifar10like|gtsrblike|pneumonialike")
		scaleStr    = fs.String("scale", "tiny", "dataset scale: tiny|small|medium")
		seed        = fs.Uint64("seed", 1, "random seed")
		tech        = fs.String("technique", "ens", "TDFM technique to train and serve: base|ls|lc|rl|kd|ens")
		model       = fs.String("model", "convnet", "architecture for single-model techniques")
		epochs      = fs.Int("epochs", 0, "training epochs (0 = architecture default)")
		workersN    = fs.Int("workers", 0, "worker pool size for training and tensor kernels (0 = GOMAXPROCS)")
		deadline    = fs.Duration("member-deadline", 2*time.Second, "per-member prediction deadline")
		minQuorum   = fs.Int("min-quorum", 0, "fewest surviving members for a vote (0 = strict majority)")
		queue       = fs.Int("queue", 64, "admission queue capacity; overflow is shed with 429")
		brThreshold = fs.Int("breaker-threshold", 3, "consecutive member failures that open its breaker")
		brCooldown  = fs.Duration("breaker-cooldown", 10*time.Second, "open-breaker wait before a half-open probe")
		batchCap    = fs.Int("batch-cap", 0, "micro-batch row cap; >1 stacks admitted requests into one forward pass (0 = per-request dispatch)")
		batchWindow = fs.Duration("batch-window", 0, "micro-batch collection window (0 = 2ms default when -batch-cap > 1)")
		precision   = fs.String("precision", "f64", "inference storage precision: f64|f32 (training is always f64; f32 halves predict-path memory with identical votes)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	scale, err := parseScale(*scaleStr)
	if err != nil {
		return err
	}
	if *workersN < 0 {
		return fmt.Errorf("-workers must be >= 0, got %d", *workersN)
	}
	// Reject bad precision before spending minutes training; serve.New
	// validates again for library callers.
	switch serve.Precision(*precision) {
	case serve.PrecisionF64, serve.PrecisionF32:
	default:
		return fmt.Errorf("unknown precision %q (want %s or %s)", *precision, serve.PrecisionF64, serve.PrecisionF32)
	}
	workers := *workersN
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	parallel.SetBudget(workers)
	tensor.SetParallelism(workers)

	srv, err := buildServer(*dataset, scale, *seed, *tech, *model, *epochs, serve.Options{
		MemberDeadline:   *deadline,
		MinQuorum:        *minQuorum,
		QueueCapacity:    *queue,
		BreakerThreshold: *brThreshold,
		BreakerCooldown:  *brCooldown,
		BatchCap:         *batchCap,
		BatchWindow:      *batchWindow,
		Precision:        serve.Precision(*precision),
	})
	if err != nil {
		return err
	}

	// Install signal handling before the listener is announced so a test
	// (or an impatient operator) cannot signal into a gap.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	fmt.Printf("serving on http://%s (quorum floor %d/%d, deadline %s)\n",
		ln.Addr(), srv.Options().MinQuorum, len(srv.MemberNames()), srv.Options().MemberDeadline)
	if ready != nil {
		ready <- ln.Addr().String()
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "tdfmserve: %v — draining, waiting for in-flight requests\n", s)
		srv.Drain()
		// Buffer-pool counters at shutdown: how much predict-path
		// allocation the pool absorbed over the process lifetime.
		fmt.Fprintf(os.Stderr, "tdfmserve: %s\n", tensor.Stats())
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		return httpSrv.Shutdown(ctx)
	}
}

// buildServer generates the dataset, trains the technique, and wraps the
// trained classifier in the resilient serving layer.
func buildServer(dataset string, scale datagen.Scale, seed uint64, tech, model string,
	epochs int, opts serve.Options) (*serve.Server, error) {
	cfg, ok := datagen.Presets(scale, seed)[dataset]
	if !ok {
		return nil, fmt.Errorf("unknown dataset %q", dataset)
	}
	train, test, err := datagen.Generate(cfg)
	if err != nil {
		return nil, err
	}
	technique, err := core.Get(tech)
	if err != nil {
		return nil, err
	}
	fmt.Printf("training %s on %s (%d samples)…\n", technique.Name(), dataset, train.Len())
	start := time.Now()
	clf, err := technique.Train(core.Config{Arch: model, Epochs: epochs},
		core.TrainSet{Data: train}, xrand.New(seed).Split("serve"))
	if err != nil {
		return nil, err
	}
	fmt.Printf("trained in %s, test accuracy %.1f%%\n",
		time.Since(start).Round(time.Millisecond),
		metrics.Accuracy(clf.Predict(test.X), test.Labels)*100)

	names := []string{model}
	if e, ok := technique.(*core.Ensemble); ok {
		names = e.Members
	}
	opts.Input = [3]int{cfg.Channels, cfg.Height, cfg.Width}
	return serve.New(serve.Split(clf, names), cfg.NumClasses, opts)
}

func parseScale(s string) (datagen.Scale, error) {
	switch s {
	case "tiny":
		return datagen.ScaleTiny, nil
	case "small":
		return datagen.ScaleSmall, nil
	case "medium":
		return datagen.ScaleMedium, nil
	default:
		return 0, fmt.Errorf("unknown scale %q", s)
	}
}
