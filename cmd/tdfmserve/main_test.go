package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"tdfm/internal/datagen"
)

// TestServeEndToEnd boots the real binary path — train a 1-epoch
// baseline at tiny scale, listen on an ephemeral port — exercises both
// endpoints over TCP, and shuts down via SIGTERM's drain path.
func TestServeEndToEnd(t *testing.T) {
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(strings.Fields(
			"-addr 127.0.0.1:0 -technique base -model convnet -epochs 1 -scale tiny -min-quorum 1"), ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("server exited before ready: %v", err)
	}

	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status  string `json:"status"`
		Members []struct {
			Name, Breaker string
		} `json:"members"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Status != "ok" || len(health.Members) != 1 || health.Members[0].Breaker != "closed" {
		t.Fatalf("healthz = %+v", health)
	}

	// One instance of the dataset's exact input size; contents are
	// arbitrary — the server must answer with quorum 1/1.
	cfg := datagen.Presets(datagen.ScaleTiny, 1)["gtsrblike"]
	instance := make([]float64, cfg.Channels*cfg.Height*cfg.Width)
	payload, _ := json.Marshal(map[string][][]float64{"instances": {instance}})
	resp, err = http.Post("http://"+addr+"/predict", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	var pred struct {
		Predictions []int  `json:"predictions"`
		Quorum      string `json:"quorum"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&pred); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || pred.Quorum != "1/1" || len(pred.Predictions) != 1 {
		t.Fatalf("predict: status %d, reply %+v", resp.StatusCode, pred)
	}
	if pred.Predictions[0] < 0 || pred.Predictions[0] >= cfg.NumClasses {
		t.Fatalf("prediction %d outside class range 0..%d", pred.Predictions[0], cfg.NumClasses-1)
	}

	// SIGTERM drains and shuts down cleanly.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not shut down after SIGTERM")
	}
}

func TestRunFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-scale", "bogus"},
		{"-workers", "-1"},
		{"-dataset", "nope"},
		{"-technique", "nope"},
		{"-precision", "f16"},
	} {
		if err := run(args, nil); err == nil {
			t.Fatalf("run(%v) accepted invalid flags", args)
		}
	}
}
