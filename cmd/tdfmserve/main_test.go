package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"tdfm/internal/core"
	"tdfm/internal/datagen"
	"tdfm/internal/registry"
	"tdfm/internal/xrand"
)

// TestMain doubles as the shard-mode child entry point: `-shard`
// re-execs this binary (os.Executable) with TDFM_SERVE_CHILD=1 for each
// member process, and the child must behave exactly like tdfmserve, not
// like a test runner.
func TestMain(m *testing.M) {
	if os.Getenv("TDFM_SERVE_CHILD") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

// healthJSON mirrors the /healthz fields the tests assert on.
type healthJSON struct {
	Status  string `json:"status"`
	Members []struct {
		Name, Breaker string
	} `json:"members"`
	Model *struct {
		Version int    `json:"version"`
		Label   string `json:"label"`
		Digest  string `json:"digest"`
	} `json:"model"`
	Quorum string `json:"quorum"`
}

// predictJSON mirrors the /predict fields the tests assert on.
type predictJSON struct {
	Predictions []int  `json:"predictions"`
	Quorum      string `json:"quorum"`
}

// getHealth fetches and decodes GET /healthz.
func getHealth(t *testing.T, addr string) healthJSON {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h healthJSON
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	return h
}

// postPredict sends one all-zeros instance of the dataset's input size
// and decodes the reply (the HTTP status is returned alongside so tests
// can poll through degraded phases).
func postPredict(t *testing.T, addr string, cfg datagen.Config) (int, predictJSON) {
	t.Helper()
	instance := make([]float64, cfg.Channels*cfg.Height*cfg.Width)
	payload, _ := json.Marshal(map[string][][]float64{"instances": {instance}})
	resp, err := http.Post("http://"+addr+"/predict", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var p predictJSON
	_ = json.NewDecoder(resp.Body).Decode(&p)
	return resp.StatusCode, p
}

// shutdown SIGTERMs the process (the server under test shares it) and
// waits for run to drain and return.
func shutdown(t *testing.T, done <-chan error) {
	t.Helper()
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not shut down after SIGTERM")
	}
}

// startServer launches run(args) and waits for the listen address.
func startServer(t *testing.T, args string) (string, <-chan error) {
	t.Helper()
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() { done <- run(strings.Fields(args), ready) }()
	select {
	case addr := <-ready:
		return addr, done
	case err := <-done:
		t.Fatalf("server exited before ready: %v", err)
	case <-time.After(120 * time.Second):
		t.Fatal("server never became ready")
	}
	return "", done
}

// publishEnsemble publishes an untrained two-member voting ensemble
// (fast: no training) to a fresh registry and returns its manifest.
func publishEnsemble(t *testing.T, dir string, seed uint64) (registry.Manifest, datagen.Config) {
	t.Helper()
	cfg := datagen.Presets(datagen.ScaleTiny, 1)["gtsrblike"]
	train, _, err := datagen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	archs := []string{"convnet", "deconvnet"}
	members := make([]core.Classifier, len(archs))
	for i, arch := range archs {
		m, err := core.NewUntrained(core.Config{Arch: arch}, train, xrand.New(seed+uint64(i)).Split("serve-test"))
		if err != nil {
			t.Fatal(err)
		}
		members[i] = m
	}
	clf := &core.VotingClassifier{Members: members, Classes: cfg.NumClasses}
	man, err := registry.Publish(dir, clf, registry.PublishOptions{Note: "e2e"})
	if err != nil {
		t.Fatalf("Publish: %v", err)
	}
	return man, cfg
}

// TestServeEndToEnd boots the real binary path — train a 1-epoch
// baseline at tiny scale, listen on an ephemeral port — exercises both
// endpoints over TCP, and shuts down via SIGTERM's drain path.
func TestServeEndToEnd(t *testing.T) {
	addr, done := startServer(t,
		"-addr 127.0.0.1:0 -technique base -arch convnet -epochs 1 -scale tiny -min-quorum 1")

	health := getHealth(t, addr)
	if health.Status != "ok" || len(health.Members) != 1 || health.Members[0].Breaker != "closed" {
		t.Fatalf("healthz = %+v", health)
	}
	if health.Model != nil {
		t.Fatalf("training mode reported a registry model: %+v", health.Model)
	}
	if health.Quorum != "1/1" {
		t.Fatalf("healthz quorum = %q, want 1/1", health.Quorum)
	}

	// One instance of the dataset's exact input size; contents are
	// arbitrary — the server must answer with quorum 1/1.
	cfg := datagen.Presets(datagen.ScaleTiny, 1)["gtsrblike"]
	status, pred := postPredict(t, addr, cfg)
	if status != http.StatusOK || pred.Quorum != "1/1" || len(pred.Predictions) != 1 {
		t.Fatalf("predict: status %d, reply %+v", status, pred)
	}
	if pred.Predictions[0] < 0 || pred.Predictions[0] >= cfg.NumClasses {
		t.Fatalf("prediction %d outside class range 0..%d", pred.Predictions[0], cfg.NumClasses-1)
	}

	shutdown(t, done)
}

// TestRegistryServeEndToEnd boots registry mode: publish an ensemble,
// serve it with -model (no training at boot), and check that /healthz
// reports the artifact's version, digest, and quorum.
func TestRegistryServeEndToEnd(t *testing.T) {
	dir := t.TempDir()
	man, cfg := publishEnsemble(t, dir, 11)

	addr, done := startServer(t, "-addr 127.0.0.1:0 -model "+dir)

	health := getHealth(t, addr)
	if health.Model == nil {
		t.Fatalf("healthz has no model block: %+v", health)
	}
	if health.Model.Version != man.Version || health.Model.Digest != man.Digest || health.Model.Label != "v1" {
		t.Fatalf("healthz model = %+v, want %s %s", health.Model, man.Label(), man.Digest)
	}
	if health.Quorum != "2/2" {
		t.Fatalf("healthz quorum = %q, want 2/2", health.Quorum)
	}

	status, pred := postPredict(t, addr, cfg)
	if status != http.StatusOK || pred.Quorum != "2/2" || len(pred.Predictions) != 1 {
		t.Fatalf("predict: status %d, reply %+v", status, pred)
	}

	shutdown(t, done)
}

// TestWatchHotSwapsEndToEnd boots -watch mode against a registry with
// one version, publishes a second, and waits for the server to hot-swap
// to it — verifying /healthz tracks the active version across swaps and
// /predict keeps answering.
func TestWatchHotSwapsEndToEnd(t *testing.T) {
	dir := t.TempDir()
	_, cfg := publishEnsemble(t, dir, 21)

	addr, done := startServer(t, "-addr 127.0.0.1:0 -model "+dir+" -watch -watch-interval 25ms")

	if h := getHealth(t, addr); h.Model == nil || h.Model.Version != 1 {
		t.Fatalf("initial model = %+v, want v1", h.Model)
	}

	man2, _ := publishEnsemble(t, dir, 22)
	deadline := time.Now().Add(30 * time.Second)
	for {
		h := getHealth(t, addr)
		if h.Model != nil && h.Model.Version == man2.Version {
			if h.Model.Digest != man2.Digest {
				t.Fatalf("swapped digest = %s, want %s", h.Model.Digest, man2.Digest)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never swapped to %s; healthz model = %+v", man2.Label(), h.Model)
		}
		time.Sleep(10 * time.Millisecond)
	}

	status, pred := postPredict(t, addr, cfg)
	if status != http.StatusOK || pred.Quorum != "2/2" {
		t.Fatalf("predict after swap: status %d, reply %+v", status, pred)
	}

	shutdown(t, done)
}

// TestShardServeEndToEnd boots -shard mode: the parent re-execs this
// test binary as two supervised `-member` child processes, fans votes
// out over HTTP, and must reach full quorum once both children are up.
func TestShardServeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("re-execs child processes")
	}
	dir := t.TempDir()
	man, cfg := publishEnsemble(t, dir, 31)

	addr, done := startServer(t, "-addr 127.0.0.1:0 -model "+dir+" -shard -min-quorum 1")

	// Children come up asynchronously; poll until both members vote.
	deadline := time.Now().Add(120 * time.Second)
	for {
		status, pred := postPredict(t, addr, cfg)
		if status == http.StatusOK && pred.Quorum == "2/2" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("shard never reached full quorum: status %d, reply %+v", status, pred)
		}
		time.Sleep(50 * time.Millisecond)
	}

	health := getHealth(t, addr)
	if health.Model == nil || health.Model.Digest != man.Digest {
		t.Fatalf("healthz model = %+v, want digest %s", health.Model, man.Digest)
	}
	if len(health.Members) != 2 {
		t.Fatalf("healthz members = %+v, want 2 shards", health.Members)
	}

	shutdown(t, done)
}

func TestRunFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-scale", "bogus"},
		{"-workers", "-1"},
		{"-dataset", "nope"},
		{"-technique", "nope"},
		{"-precision", "f16"},
		{"-watch"},       // requires -model
		{"-shard"},       // requires -model
		{"-member", "0"}, // requires -model
		{"-model", "reg", "-shard", "-member", "0"}, // mutually exclusive
		{"-model", "reg", "-shard", "-watch"},       // children are version-pinned
		{"-model", "/nonexistent/registry"},         // empty registry
	} {
		if err := run(args, nil); err == nil {
			t.Fatalf("run(%v) accepted invalid flags", args)
		}
	}
}
