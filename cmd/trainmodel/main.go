// Command trainmodel trains a single (model, dataset, technique)
// configuration — optionally with injected faults — reports accuracy and
// AD against a golden model, and can save/load model weights.
//
// Usage:
//
//	trainmodel -model resnet18 -dataset gtsrblike -technique ls \
//	           -faults mislabel@0.3 [-epochs 16] [-workers W] [-save weights.gob] \
//	           [-publish ./registry] [-progress] [-pprof cpu.out] [-trace trace.out]
//
// -publish serializes the trained classifier (single networks and
// voting ensembles alike) into a model registry directory as its next
// digest-verified version; `tdfmserve -model ./registry` serves it, and
// a running `tdfmserve -watch` hot-swaps to it with zero dropped
// requests. -save remains the raw single-network weight dump.
//
// -progress prints a periodic heartbeat line while training runs; -pprof
// and -trace write a CPU profile and a runtime execution trace.
//
// A first Ctrl-C (SIGINT) stops training cooperatively at the next batch
// and exits nonzero; a second Ctrl-C kills the process immediately.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"strconv"
	"strings"
	"time"

	"tdfm/internal/core"
	"tdfm/internal/datagen"
	"tdfm/internal/faultinject"
	"tdfm/internal/metrics"
	"tdfm/internal/obs"
	"tdfm/internal/parallel"
	"tdfm/internal/registry"
	"tdfm/internal/tensor"
	"tdfm/internal/xrand"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "trainmodel:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("trainmodel", flag.ContinueOnError)
	var (
		model     = fs.String("model", "convnet", "architecture name")
		dataset   = fs.String("dataset", "gtsrblike", "dataset: cifar10like|gtsrblike|pneumonialike")
		tech      = fs.String("technique", "base", "TDFM technique: base|ls|lc|rl|kd|ens")
		faults    = fs.String("faults", "", "comma-separated fault specs type@rate (empty = clean)")
		epochs    = fs.Int("epochs", 0, "training epochs (0 = architecture default)")
		seed      = fs.Uint64("seed", 1, "random seed")
		scaleStr  = fs.String("scale", "tiny", "dataset scale: tiny|small|medium")
		clean     = fs.Float64("clean", 0.1, "clean fraction reserved for label correction")
		save      = fs.String("save", "", "write the trained technique model's weights to this path (gob)")
		publish   = fs.String("publish", "", "publish the trained classifier to this model registry directory as its next version")
		workersN  = fs.Int("workers", 0, "worker pool size for ensemble members and tensor kernels (0 = GOMAXPROCS, 1 = serial); results are identical at any setting")
		progress  = fs.Bool("progress", false, "print a periodic heartbeat line while training")
		pprofPath = fs.String("pprof", "", "write a CPU profile to this path")
		tracePath = fs.String("trace", "", "write a runtime execution trace to this path")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	scale, err := parseScale(*scaleStr)
	if err != nil {
		return err
	}
	workers, err := resolveWorkers(*workersN)
	if err != nil {
		return err
	}
	if *pprofPath != "" {
		f, err := os.Create(*pprofPath)
		if err != nil {
			return fmt.Errorf("creating %s: %w", *pprofPath, err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("starting CPU profile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			return fmt.Errorf("creating %s: %w", *tracePath, err)
		}
		defer f.Close()
		if err := trace.Start(f); err != nil {
			return fmt.Errorf("starting execution trace: %w", err)
		}
		defer trace.Stop()
	}
	heartbeat := func(label string) func() { return func() {} }
	if *progress {
		heartbeat = func(label string) func() {
			return obs.Heartbeat(os.Stderr, label, 2*time.Second)
		}
	}
	parallel.SetBudget(workers)
	tensor.SetParallelism(workers)

	// A first SIGINT cancels training cooperatively at the next batch;
	// restoring default signal handling afterwards means a second SIGINT
	// kills the process the usual way.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	defer signal.Stop(sig)
	go func() {
		select {
		case <-sig:
			cancel()
			signal.Stop(sig)
			fmt.Fprintln(os.Stderr, "trainmodel: interrupt — stopping at the next batch; press Ctrl-C again to kill")
		case <-ctx.Done():
		}
	}()

	cfg, ok := datagen.Presets(scale, *seed)[*dataset]
	if !ok {
		return fmt.Errorf("unknown dataset %q", *dataset)
	}
	train, test, err := datagen.Generate(cfg)
	if err != nil {
		return err
	}
	technique, err := core.Get(*tech)
	if err != nil {
		return err
	}

	// Golden model: baseline on clean data.
	tcfg := core.Config{Arch: *model, Epochs: *epochs, Ctx: ctx}
	fmt.Printf("training golden %s on clean %s (%d samples)…\n", *model, *dataset, train.Len())
	stop := heartbeat("training golden " + *model)
	golden, err := core.Baseline{}.Train(tcfg, core.TrainSet{Data: train}, xrand.New(*seed).Split("golden"))
	stop()
	if err != nil {
		return err
	}
	gp := golden.Predict(test.X)
	fmt.Printf("golden accuracy: %.1f%%\n", metrics.Accuracy(gp, test.Labels)*100)

	// Inject faults (protecting the clean subset).
	ts := core.TrainSet{Data: train}
	if *faults != "" {
		specs, err := parseSpecs(*faults)
		if err != nil {
			return err
		}
		cleanIdx := train.StratifiedIndices(*clean, xrand.New(*seed).Split("clean"))
		inj := faultinject.New(xrand.New(*seed).Split("inject"))
		inj.Protect(cleanIdx)
		faulty, reports, err := inj.Inject(train, specs...)
		if err != nil {
			return err
		}
		for _, rep := range reports {
			fmt.Printf("injected %s at %.0f%%: %d samples affected (%d → %d)\n",
				rep.Spec.Type, rep.Spec.Rate*100, len(rep.Affected), rep.SizeBefore, rep.SizeAfter)
		}
		ts = core.TrainSet{Data: faulty, CleanIndices: cleanIdx}
	}

	fmt.Printf("training %s (%s) …\n", technique.Name(), technique.Description())
	start := time.Now()
	stop = heartbeat("training " + technique.Name())
	clf, err := technique.Train(tcfg, ts, xrand.New(*seed).Split("technique"))
	stop()
	if err != nil {
		return err
	}
	dur := time.Since(start)
	fp := clf.Predict(test.X)
	fmt.Printf("technique accuracy: %.1f%%  AD vs golden: %.1f%%  (train %s)\n",
		metrics.Accuracy(fp, test.Labels)*100,
		metrics.AccuracyDelta(gp, fp, test.Labels)*100,
		dur.Round(time.Millisecond))
	conf := metrics.Confusion(gp, fp, test.Labels)
	fmt.Printf("confusion: both-correct %d, only-golden %d, only-technique %d, both-wrong %d\n",
		conf.BothCorrect, conf.OnlyGolden, conf.OnlyFaulty, conf.BothWrong)

	if *save != "" {
		snap, ok := clf.(core.Snapshotter)
		if !ok {
			return fmt.Errorf("technique %q produces a multi-model classifier; -save supports single-network techniques", *tech)
		}
		f, err := os.Create(*save)
		if err != nil {
			return fmt.Errorf("creating %s: %w", *save, err)
		}
		defer f.Close()
		if err := snap.Snapshot().Encode(f); err != nil {
			return err
		}
		fmt.Printf("saved weights to %s\n", *save)
	}
	if *publish != "" {
		note := fmt.Sprintf("dataset=%s technique=%s seed=%d scale=%s", *dataset, *tech, *seed, *scaleStr)
		if *faults != "" {
			note += " faults=" + *faults
		}
		man, err := registry.Publish(*publish, clf, registry.PublishOptions{Note: note})
		if err != nil {
			return fmt.Errorf("publishing to %s: %w", *publish, err)
		}
		fmt.Printf("published %s (%s, %d bytes) to %s\n", man.Label(), man.Digest, man.Size, *publish)
	}
	return nil
}

func parseSpecs(s string) ([]faultinject.Spec, error) {
	var specs []faultinject.Spec
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		ty, rate, ok := strings.Cut(part, "@")
		if !ok {
			return nil, fmt.Errorf("bad fault spec %q (want type@rate)", part)
		}
		ft, err := faultinject.ParseType(ty)
		if err != nil {
			return nil, err
		}
		r, err := strconv.ParseFloat(rate, 64)
		if err != nil {
			return nil, fmt.Errorf("bad rate in %q: %w", part, err)
		}
		specs = append(specs, faultinject.Spec{Type: ft, Rate: r})
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("no fault specs in %q", s)
	}
	return specs, nil
}

func parseScale(s string) (datagen.Scale, error) {
	switch s {
	case "tiny":
		return datagen.ScaleTiny, nil
	case "small":
		return datagen.ScaleSmall, nil
	case "medium":
		return datagen.ScaleMedium, nil
	default:
		return 0, fmt.Errorf("unknown scale %q", s)
	}
}

// resolveWorkers validates the -workers flag: 0 means one worker per
// available CPU, negatives are rejected.
func resolveWorkers(n int) (int, error) {
	if n < 0 {
		return 0, fmt.Errorf("-workers must be >= 0, got %d", n)
	}
	if n == 0 {
		return runtime.GOMAXPROCS(0), nil
	}
	return n, nil
}
