package main

import (
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"tdfm/internal/registry"
)

func TestResolveWorkers(t *testing.T) {
	if w, err := resolveWorkers(0); err != nil || w != runtime.GOMAXPROCS(0) {
		t.Fatalf("resolveWorkers(0) = %d, %v; want GOMAXPROCS default", w, err)
	}
	if w, err := resolveWorkers(5); err != nil || w != 5 {
		t.Fatalf("resolveWorkers(5) = %d, %v", w, err)
	}
	if _, err := resolveWorkers(-4); err == nil {
		t.Fatal("negative workers accepted")
	}
}

func TestRunRejectsNegativeWorkers(t *testing.T) {
	if err := run([]string{"-model", "convnet", "-epochs", "1", "-workers", "-1"}); err == nil {
		t.Fatal("negative -workers accepted")
	}
}

func TestParseSpecsAndScale(t *testing.T) {
	specs, err := parseSpecs("remove@0.5")
	if err != nil || len(specs) != 1 {
		t.Fatalf("parseSpecs: %v %v", specs, err)
	}
	if _, err := parseSpecs("remove"); err == nil {
		t.Fatal("missing rate accepted")
	}
	if _, err := parseScale("small"); err != nil {
		t.Fatal(err)
	}
	if _, err := parseScale("galactic"); err == nil {
		t.Fatal("bad scale accepted")
	}
}

func TestRunTrainsAndSaves(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "w.gob")
	err := run([]string{
		"-model", "convnet", "-dataset", "pneumonialike",
		"-technique", "ls", "-faults", "mislabel@0.2",
		"-epochs", "4", "-workers", "2", "-save", out,
	})
	if err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(out); err != nil || fi.Size() == 0 {
		t.Fatalf("weights not written: %v", err)
	}
}

// TestRunTrainsAndPublishes pins the registry handoff: -publish
// installs the trained classifier as version 1 of a fresh registry,
// with a digest-verified artifact tdfmserve -model can open.
func TestRunTrainsAndPublishes(t *testing.T) {
	dir := t.TempDir()
	reg := filepath.Join(dir, "registry")
	err := run([]string{
		"-model", "convnet", "-dataset", "pneumonialike",
		"-technique", "base", "-epochs", "1", "-workers", "2",
		"-publish", reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	clf, man, err := registry.Open(reg, 0)
	if err != nil {
		t.Fatalf("opening published version: %v", err)
	}
	if man.Version != 1 || clf == nil {
		t.Fatalf("published manifest = %+v", man)
	}
	if want := "dataset=pneumonialike technique=base seed=1 scale=tiny"; man.Note != want {
		t.Fatalf("note = %q, want %q", man.Note, want)
	}
}

func TestRunRejectsEnsembleSave(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{
		"-model", "convnet", "-dataset", "pneumonialike",
		"-technique", "ens", "-epochs", "2",
		"-save", filepath.Join(dir, "w.gob"),
	})
	if err == nil {
		t.Fatal("saving an ensemble as one snapshot should be rejected")
	}
}

func TestRunRejectsUnknowns(t *testing.T) {
	if err := run([]string{"-model", "alexnet"}); err == nil {
		t.Fatal("unknown model accepted")
	}
	if err := run([]string{"-technique", "magic"}); err == nil {
		t.Fatal("unknown technique accepted")
	}
	if err := run([]string{"-dataset", "imagenet"}); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}
