package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const undocumented = `package demo

func Exported() {}

type Thing struct{}

func (t *Thing) Method() {}

type hidden struct{}

func (h hidden) Exposed() {} // unexported receiver: exempt

const Answer = 42

var Config = "x"

func internal() {}
`

const documentedSrc = `// Package demo is documented.
package demo

// Exported does something.
func Exported() {}

// Thing is a thing.
type Thing struct{}

// Method acts on a Thing.
func (t *Thing) Method() {}

// Grouped constants share one doc comment.
const (
	A = 1
	B = 2
)

var C = 3 // C is documented by a trailing comment.
`

func write(t *testing.T, name, src string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestCheckFlagsMissingDocs(t *testing.T) {
	var buf strings.Builder
	n := check([]string{write(t, "demo.go", undocumented)}, &buf)
	out := buf.String()
	for _, want := range []string{
		"no package comment",
		"exported function Exported",
		"exported type Thing",
		"exported method Thing.Method",
		"exported const Answer",
		"exported var Config",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	for _, reject := range []string{"hidden", "Exposed", "internal"} {
		if strings.Contains(out, reject) {
			t.Errorf("unexported identifier %q flagged:\n%s", reject, out)
		}
	}
	if n != 6 {
		t.Errorf("found %d issues, want 6:\n%s", n, out)
	}
}

func TestCheckAcceptsDocumented(t *testing.T) {
	var buf strings.Builder
	if n := check([]string{write(t, "demo.go", documentedSrc)}, &buf); n != 0 {
		t.Fatalf("documented package flagged %d times:\n%s", n, buf.String())
	}
}

func TestCheckSkipsTestFiles(t *testing.T) {
	dir := write(t, "demo_test.go", "package demo\n\nfunc Helper() {}\n")
	// A directory with only test files parses to zero packages — clean.
	var buf strings.Builder
	if n := check([]string{dir}, &buf); n != 0 {
		t.Fatalf("test file flagged:\n%s", buf.String())
	}
}

func TestCheckReportsUnparseableDir(t *testing.T) {
	var buf strings.Builder
	if n := check([]string{write(t, "demo.go", "package demo\nfunc {")}, &buf); n == 0 {
		t.Fatal("parse error not reported")
	}
}

// TestGuardedPackagesStayDocumented runs the real gate over the packages
// make vet-docs guards, so `go test` fails on a doc regression even when
// the make target is bypassed.
func TestGuardedPackagesStayDocumented(t *testing.T) {
	var buf strings.Builder
	dirs := []string{"../../internal/obs", "../../internal/parallel", "../../internal/experiment"}
	if n := check(dirs, &buf); n != 0 {
		t.Fatalf("guarded packages have %d missing doc comment(s):\n%s", n, buf.String())
	}
}
