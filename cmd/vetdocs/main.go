// Command vetdocs is a go vet-style documentation gate: it fails (exit 1)
// when a package lacks a package comment or an exported top-level
// identifier — function, method on an exported type, type, constant, or
// variable — lacks a doc comment. `make vet-docs` runs it over the
// packages whose godoc this repository guarantees (internal/obs,
// internal/parallel, internal/experiment), and `make test` runs vet-docs.
//
// Usage:
//
//	vetdocs <package-dir> [<package-dir> ...]
//
// Test files (*_test.go) are exempt: their helpers are documentation-free
// by convention.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: vetdocs <package-dir> [<package-dir> ...]")
		os.Exit(2)
	}
	if n := check(os.Args[1:], os.Stdout); n > 0 {
		fmt.Fprintf(os.Stderr, "vetdocs: %d missing doc comment(s)\n", n)
		os.Exit(1)
	}
}

// check reports every documentation gap in the given package directories
// to w and returns the number found.
func check(dirs []string, w io.Writer) int {
	missing := 0
	report := func(pos token.Position, format string, args ...any) {
		missing++
		fmt.Fprintf(w, "%s: %s\n", pos, fmt.Sprintf(format, args...))
	}
	for _, dir := range dirs {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			fmt.Fprintf(w, "%s: %v\n", dir, err)
			missing++
			continue
		}
		for _, pkg := range pkgs {
			checkPackage(fset, pkg, dir, report)
		}
	}
	return missing
}

// checkPackage walks one parsed package.
func checkPackage(fset *token.FileSet, pkg *ast.Package, dir string, report func(token.Position, string, ...any)) {
	hasPkgDoc := false
	for _, f := range pkg.Files {
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			hasPkgDoc = true
			break
		}
	}
	if !hasPkgDoc {
		report(token.Position{Filename: dir}, "package %s has no package comment", pkg.Name)
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				checkFunc(fset, d, report)
			case *ast.GenDecl:
				checkGen(fset, d, report)
			}
		}
	}
}

// checkFunc flags exported functions, and exported methods on exported
// receivers, that have no doc comment.
func checkFunc(fset *token.FileSet, d *ast.FuncDecl, report func(token.Position, string, ...any)) {
	if !d.Name.IsExported() || documented(d.Doc) {
		return
	}
	if d.Recv != nil {
		recv := receiverName(d.Recv)
		if recv != "" && !ast.IsExported(recv) {
			return // method on an unexported type: not part of the API
		}
		report(fset.Position(d.Pos()), "exported method %s.%s has no doc comment", recv, d.Name.Name)
		return
	}
	report(fset.Position(d.Pos()), "exported function %s has no doc comment", d.Name.Name)
}

// checkGen flags exported type/const/var specs documented neither on the
// spec nor on the enclosing declaration group.
func checkGen(fset *token.FileSet, d *ast.GenDecl, report func(token.Position, string, ...any)) {
	if d.Tok != token.TYPE && d.Tok != token.CONST && d.Tok != token.VAR {
		return
	}
	groupDoc := documented(d.Doc)
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && !groupDoc && !documented(s.Doc) {
				report(fset.Position(s.Pos()), "exported type %s has no doc comment", s.Name.Name)
			}
		case *ast.ValueSpec:
			if groupDoc || documented(s.Doc) || documented(s.Comment) {
				continue
			}
			for _, name := range s.Names {
				if name.IsExported() {
					report(fset.Position(name.Pos()), "exported %s %s has no doc comment", d.Tok, name.Name)
				}
			}
		}
	}
}

// receiverName extracts the receiver's base type name (stripping pointers
// and type parameters).
func receiverName(recv *ast.FieldList) string {
	if recv == nil || len(recv.List) == 0 {
		return ""
	}
	t := recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.Ident:
			return x.Name
		default:
			return ""
		}
	}
}

// documented reports whether a comment group carries actual text.
func documented(doc *ast.CommentGroup) bool {
	return doc != nil && strings.TrimSpace(doc.Text()) != ""
}
