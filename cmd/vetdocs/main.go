// Command vetdocs is a thin wrapper over the tdfmlint docs pass
// (internal/lint): it fails (exit 1) when a package lacks a package
// comment or an exported top-level identifier — function, method on
// an exported type, type, constant, or variable — lacks a doc
// comment. `make vet-docs` runs it over the packages whose godoc this
// repository guarantees, and `make test` runs vet-docs.
//
// The full analyzer suite (cmd/tdfmlint) runs the same docs pass over
// every package alongside the determinism and correctness passes; use
// vetdocs when only the documentation gate is wanted — it skips
// type-checking, so it is fast enough for editor hooks.
//
// Usage:
//
//	vetdocs <package-dir> [<package-dir> ...]
//
// Test files (*_test.go) are exempt: their helpers are
// documentation-free by convention. //tdfm:allow docs directives are
// honoured exactly as under tdfmlint.
package main

import (
	"errors"
	"fmt"
	"io"
	"os"

	"tdfm/internal/lint"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: vetdocs <package-dir> [<package-dir> ...]")
		os.Exit(2)
	}
	if n := check(os.Args[1:], os.Stdout); n > 0 {
		fmt.Fprintf(os.Stderr, "vetdocs: %d missing doc comment(s)\n", n)
		os.Exit(1)
	}
}

// check reports every documentation gap in the given package
// directories to w and returns the number found. Directories holding
// only test files are clean; unloadable ones count as one finding.
func check(dirs []string, w io.Writer) int {
	loader := lint.NewLoader()
	loader.NoTypes = true // the docs pass is purely syntactic
	var pkgs []*lint.Package
	n := 0
	for _, dir := range dirs {
		pkg, err := loader.Load(dir)
		if err != nil {
			if errors.Is(err, lint.ErrNoGoFiles) {
				continue
			}
			fmt.Fprintf(w, "%s: %v\n", dir, err)
			n++
			continue
		}
		pkgs = append(pkgs, pkg)
	}
	for _, f := range lint.Run(pkgs, []lint.Pass{lint.NewDocs()}) {
		fmt.Fprintln(w, f)
		n++
	}
	return n
}
