package main

import (
	"os"
	"runtime"
	"testing"
)

func TestResolveWorkers(t *testing.T) {
	if w, err := resolveWorkers(0); err != nil || w != runtime.GOMAXPROCS(0) {
		t.Fatalf("resolveWorkers(0) = %d, %v; want GOMAXPROCS default", w, err)
	}
	if w, err := resolveWorkers(3); err != nil || w != 3 {
		t.Fatalf("resolveWorkers(3) = %d, %v", w, err)
	}
	if _, err := resolveWorkers(-1); err == nil {
		t.Fatal("negative workers accepted")
	}
}

func TestRunRejectsNegativeWorkers(t *testing.T) {
	if err := run([]string{"-exp", "table1", "-workers", "-2"}); err == nil {
		t.Fatal("negative -workers accepted")
	}
}

func TestRunWorkersFlagParsed(t *testing.T) {
	// A static experiment exercises the flag path without training.
	if err := run([]string{"-exp", "table1", "-workers", "2"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-exp", "table1", "-workers", "0"}); err != nil {
		t.Fatal(err)
	}
}

func TestParseScale(t *testing.T) {
	for _, s := range []string{"tiny", "small", "medium"} {
		if _, err := parseScale(s); err != nil {
			t.Errorf("parseScale(%q): %v", s, err)
		}
	}
	if _, err := parseScale(""); err == nil {
		t.Error("empty scale accepted")
	}
}

func TestRunStaticExperiments(t *testing.T) {
	// The survey, dataset, and architecture tables involve no training and
	// must render instantly.
	for _, exp := range []string{"table1", "table2", "table3"} {
		if err := run([]string{"-exp", exp}); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "table9"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunRejectsCSVWithoutTable(t *testing.T) {
	if err := run([]string{"-exp", "table1", "-csv", t.TempDir() + "/x.csv"}); err == nil {
		t.Fatal("csv for non-tabular experiment accepted")
	}
}

func TestRunBadScale(t *testing.T) {
	if err := run([]string{"-scale", "galactic"}); err == nil {
		t.Fatal("bad scale accepted")
	}
}

func TestRunResumeRequiresArtifacts(t *testing.T) {
	if err := run([]string{"-exp", "table1", "-resume"}); err == nil {
		t.Fatal("-resume without -artifacts accepted")
	}
}

func TestRunArtifactsAndResumeFlow(t *testing.T) {
	dir := t.TempDir() + "/artifacts"
	// A static experiment exercises journal open/resume without training.
	if err := run([]string{"-exp", "table1", "-artifacts", dir}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-exp", "table1", "-artifacts", dir, "-resume"}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dir + "/cells"); err != nil {
		t.Fatalf("artifacts layout not created: %v", err)
	}
}

func TestRunRejectsNegativeRetries(t *testing.T) {
	if err := run([]string{"-exp", "table1", "-retries", "-1"}); err == nil {
		t.Fatal("negative -retries accepted")
	}
}

func TestRunRetryAndTimeoutFlagsParsed(t *testing.T) {
	// A static experiment exercises the flag path without training.
	if err := run([]string{"-exp", "table1", "-retries", "2", "-cell-timeout", "30s"}); err != nil {
		t.Fatal(err)
	}
}

func TestResumeCommand(t *testing.T) {
	got := resumeCommand([]string{"-exp", "fig3-mislabel", "-artifacts", "art", "-resume"})
	want := "tdfmbench -exp fig3-mislabel -artifacts art -resume"
	if got != want {
		t.Fatalf("resumeCommand = %q, want %q", got, want)
	}
	// Without a prior -resume the flag is appended once.
	if got := resumeCommand([]string{"-exp", "table4", "-artifacts", "art"}); got != "tdfmbench -exp table4 -artifacts art -resume" {
		t.Fatalf("resumeCommand = %q", got)
	}
}

func TestRunGridFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"coordinator and worker exclusive", []string{"-coordinator", ":0", "-worker", "localhost:1", "-artifacts", t.TempDir()}},
		{"coordinator requires artifacts", []string{"-coordinator", ":0"}},
		{"worker-id requires worker", []string{"-exp", "table1", "-worker-id", "w1"}},
	}
	for _, tc := range cases {
		if err := run(tc.args); err == nil {
			t.Errorf("%s: accepted %v", tc.name, tc.args)
		}
	}
}

func TestRunPprofAndTrace(t *testing.T) {
	dir := t.TempDir()
	cpu, trc := dir+"/cpu.out", dir+"/trace.out"
	if err := run([]string{"-exp", "table1", "-pprof", cpu, "-trace", trc}); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, trc} {
		if fi, err := os.Stat(p); err != nil || fi.Size() == 0 {
			t.Fatalf("%s missing or empty (err %v)", p, err)
		}
	}
}
