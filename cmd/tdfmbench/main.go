// Command tdfmbench regenerates every table and figure of the paper
// "The Fault in Our Data Stars" (DSN'22) from the Go reproduction.
//
// Usage:
//
//	tdfmbench -exp <experiment> [-scale tiny|small|medium] [-reps N]
//	          [-seed S] [-epochs E] [-workers W] [-csv out.csv] [-progress]
//	          [-artifacts dir] [-resume] [-pprof cpu.out] [-trace trace.out]
//	          [-coordinator addr | -worker addr [-worker-id id]]
//
// Experiments: table1 table2 table3 table4 motivating fig3-mislabel
// fig3-removal fig4-mislabel fig4-repetition combined overhead all.
//
// The default scale is tiny (seconds to minutes per experiment on one CPU
// core); small and medium trade time for fidelity. Results are printed as
// ASCII tables/bar charts; -csv additionally writes the raw series.
//
// With -artifacts the run keeps a crash-safe journal: every completed
// cell is recorded durably, and a killed run restarted with -resume skips
// the recorded cells and produces byte-identical output. -pprof and
// -trace write a CPU profile and a runtime execution trace.
//
// A first Ctrl-C (SIGINT) drains gracefully: cells already training run
// to completion and are journaled, no new cells start, and the process
// exits nonzero after printing the command that resumes the run. A
// second Ctrl-C kills the process immediately. -retries re-runs cells
// that failed transiently (divergence, panic, I/O, timeout) with the
// same deterministic seed; -cell-timeout bounds each cell's training
// time.
//
// With -coordinator addr the process serves the experiment grid to
// remote workers over HTTP (requires -artifacts: worker results flow
// back into the journal); with -worker addr the process runs as a grid
// worker leasing cells from the coordinator at addr — the coordinator's
// configuration is authoritative, so the worker ignores experiment
// flags. Because every cell derives its randomness from the root seed by
// cell key, a distributed run's outputs are byte-identical to a local
// run's, regardless of worker count, crashes, or lease reissues.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"strings"
	"time"

	"tdfm/internal/chaos"
	"tdfm/internal/datagen"
	"tdfm/internal/dist"
	"tdfm/internal/experiment"
	"tdfm/internal/faultinject"
	"tdfm/internal/models"
	"tdfm/internal/obs"
	"tdfm/internal/parallel"
	"tdfm/internal/report"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tdfmbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tdfmbench", flag.ContinueOnError)
	var (
		exp       = fs.String("exp", "all", "experiment to run (table1|table2|table3|table4|motivating|fig3-mislabel|fig3-removal|fig4-mislabel|fig4-repetition|combined|overhead|ablate-ens|ablate-ls|ablate-lc|ablate-kd|reverse-ad|all)")
		scaleStr  = fs.String("scale", "tiny", "dataset scale: tiny|small|medium")
		reps      = fs.Int("reps", 3, "repetitions per configuration (paper: 20)")
		epochs    = fs.Int("epochs", 0, "override every architecture's training epochs (0 = per-architecture defaults); part of the journal cell key")
		seed      = fs.Uint64("seed", 1, "root random seed")
		csvPath   = fs.String("csv", "", "write raw experiment data as CSV to this path")
		progress  = fs.Bool("progress", false, "print one line per trained model")
		workersN  = fs.Int("workers", 0, "experiment worker pool size (0 = GOMAXPROCS, 1 = serial); results are identical at any setting")
		artifacts = fs.String("artifacts", "", "directory for the crash-safe run journal and per-cell prediction checkpoints")
		resume    = fs.Bool("resume", false, "skip cells already recorded in the -artifacts journal (requires -artifacts)")
		retries   = fs.Int("retries", 1, "extra attempts for cells that fail transiently (divergence, panic, I/O, timeout); retries reuse the cell's deterministic seed")
		cellTO    = fs.Duration("cell-timeout", 0, "per-cell training time budget (0 = unlimited); timed-out cells count as transient failures")
		pprofPath = fs.String("pprof", "", "write a CPU profile to this path")
		tracePath = fs.String("trace", "", "write a runtime execution trace to this path")
		coordAddr = fs.String("coordinator", "", "serve the experiment grid to remote workers on this listen address (host:port); requires -artifacts")
		workAddr  = fs.String("worker", "", "run as a grid worker against the coordinator at this address (host:port); the coordinator's configuration is authoritative")
		workerID  = fs.String("worker-id", "", "worker identity reported to the coordinator (default: hostname-pid)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	scale, err := parseScale(*scaleStr)
	if err != nil {
		return err
	}
	workers, err := resolveWorkers(*workersN)
	if err != nil {
		return err
	}
	if *resume && *artifacts == "" {
		return fmt.Errorf("-resume requires -artifacts")
	}
	if *retries < 0 {
		return fmt.Errorf("-retries must be >= 0, got %d", *retries)
	}
	if *coordAddr != "" && *workAddr != "" {
		return fmt.Errorf("-coordinator and -worker are mutually exclusive")
	}
	if *coordAddr != "" && *artifacts == "" {
		return fmt.Errorf("-coordinator requires -artifacts (worker results flow back into the journal)")
	}
	if *workerID != "" && *workAddr == "" {
		return fmt.Errorf("-worker-id requires -worker")
	}
	if *workAddr != "" {
		return runWorker(*workAddr, *workerID, workers, *progress)
	}
	if *pprofPath != "" {
		f, err := os.Create(*pprofPath)
		if err != nil {
			return fmt.Errorf("creating %s: %w", *pprofPath, err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("starting CPU profile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			return fmt.Errorf("creating %s: %w", *tracePath, err)
		}
		defer f.Close()
		if err := trace.Start(f); err != nil {
			return fmt.Errorf("starting execution trace: %w", err)
		}
		defer trace.Stop()
	}
	parallel.SetBudget(workers)
	r := experiment.NewRunner(scale, *seed, *reps)
	r.Workers = workers
	r.EpochOverride = *epochs
	r.Retries = *retries
	r.CellTimeout = *cellTO

	// A first SIGINT cancels the runner's context: in-flight cells drain
	// and journal, no new cells start, and the run exits nonzero with a
	// resume hint. Restoring default signal handling afterwards means a
	// second SIGINT kills the process the usual way.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	defer signal.Stop(sig)
	go func() {
		select {
		case <-sig:
			cancel()
			signal.Stop(sig)
			fmt.Fprintln(os.Stderr, "tdfmbench: interrupt — draining in-flight cells; press Ctrl-C again to kill")
			if *artifacts != "" {
				fmt.Fprintf(os.Stderr, "tdfmbench: completed cells are journaled; resume with:\n  %s\n", resumeCommand(args))
			}
		case <-ctx.Done():
		}
	}()
	r.Ctx = ctx
	// Journal warnings must reach the operator even without -progress;
	// the progress sink (when enabled) additionally renders the periodic
	// status line with ETA and pool occupancy.
	sinks := obs.Sinks{obs.SinkFunc(func(e obs.Event) {
		if e.Kind == obs.KindJournalError {
			fmt.Fprintf(os.Stderr, "tdfmbench: journal warning: %v\n", e.Err)
		}
	})}
	if *progress {
		r.Progress = os.Stderr
		prog := obs.NewProgress(os.Stderr, 2*time.Second, workers)
		defer prog.Flush()
		sinks = append(sinks, prog)
	}
	r.Sink = sinks
	if *artifacts != "" {
		j, err := obs.Open(*artifacts)
		if err != nil {
			return err
		}
		defer j.Close()
		r.Journal = j
		if *resume {
			restored, skipped, err := r.Resume()
			if err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "tdfmbench: resumed from %s: %d cells restored, %d journal entries skipped\n",
				*artifacts, restored, skipped)
		}
	}

	// Coordinator mode: serve the grid to remote workers over HTTP and
	// delegate every uncached cell to them. Completions flow back into
	// the journal opened above, so the run resumes and renders exactly
	// like a local one.
	var finishGrid func()
	if *coordAddr != "" {
		coord, err := dist.NewCoordinator(dist.Options{
			Journal: r.Journal,
			Config:  dist.ConfigFromRunner(r),
			Clock:   chaos.Wall(),
			Sink:    sinks,
			Ctx:     ctx,
		})
		if err != nil {
			return err
		}
		r.Remote = coord
		ln, err := net.Listen("tcp", *coordAddr)
		if err != nil {
			return fmt.Errorf("listening on %s: %w", *coordAddr, err)
		}
		srv := &http.Server{Handler: coord.Handler()}
		go srv.Serve(ln)
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "tdfmbench: coordinator serving the grid on %s (join with: tdfmbench -worker %s)\n",
			ln.Addr(), ln.Addr())
		finishGrid = func() {
			// Answer StatusDone for one more lease-poll interval so idle
			// workers exit cleanly instead of seeing a vanished coordinator.
			coord.Finish()
			time.Sleep(dist.DefaultLeaseRetry + dist.DefaultLeaseRetry/2)
		}
	}

	var csvTable *report.Table
	out := os.Stdout

	runOne := func(name string) error {
		switch name {
		case "table1":
			return experiment.RenderTable1(out)
		case "table2":
			return r.RenderTable2(out)
		case "table3":
			experiment.RenderTable3(out)
			return nil
		case "table4":
			t4, err := r.Table4(nil, nil)
			if err != nil {
				return err
			}
			tbl := t4.Table()
			tbl.Render(out)
			csvTable = tbl
			return nil
		case "motivating":
			m, err := r.Motivating()
			if err != nil {
				return err
			}
			m.Render(out)
			return nil
		case "fig3-mislabel":
			f, err := r.Figure3(faultinject.Mislabel, nil, nil)
			if err != nil {
				return err
			}
			f.Render(out)
			csvTable = f.Table()
			return nil
		case "fig3-removal":
			f, err := r.Figure3(faultinject.Remove, nil, nil)
			if err != nil {
				return err
			}
			f.Render(out)
			csvTable = f.Table()
			return nil
		case "fig4-mislabel":
			f, err := r.Figure4(models.ResNet50, faultinject.Mislabel, nil, nil)
			if err != nil {
				return err
			}
			f.Render(out)
			csvTable = f.Table()
			return nil
		case "fig4-repetition":
			f, err := r.Figure4(models.MobileNet, faultinject.Repeat, nil, nil)
			if err != nil {
				return err
			}
			f.Render(out)
			csvTable = f.Table()
			return nil
		case "combined":
			comps, err := r.CombinedFaults("gtsrblike", models.ConvNet, 0.3)
			if err != nil {
				return err
			}
			experiment.RenderCombined(out, comps)
			return nil
		case "overhead":
			rows, speedup, err := r.OverheadWithSpeedup("gtsrblike", models.ConvNet,
				[]experiment.FaultSpec{{Type: faultinject.Mislabel, Rate: 0.3}})
			if err != nil {
				return err
			}
			experiment.RenderOverhead(out, rows)
			experiment.RenderSpeedup(out, speedup)
			return nil
		case "ablate-ens":
			pts, err := r.AblateEnsembleSize("gtsrblike", 0.3, []int{1, 3, 5})
			if err != nil {
				return err
			}
			experiment.RenderAblation(out, "Ablation: ensemble size (GTSRB*, 30% mislabelling)", pts)
			return nil
		case "ablate-ls":
			pts, err := r.AblateSmoothingAlpha("pneumonialike", models.ConvNet, 0.3,
				[]float64{0.05, 0.1, 0.25, 0.4})
			if err != nil {
				return err
			}
			experiment.RenderAblation(out, "Ablation: label smoothing α, relaxation vs classic (Pneumonia*, ConvNet, 30% mislabelling)", pts)
			return nil
		case "ablate-lc":
			pts, err := r.AblateCleanFraction("cifar10like", models.ConvNet, 0.3,
				[]float64{0.05, 0.1, 0.2})
			if err != nil {
				return err
			}
			experiment.RenderAblation(out, "Ablation: label-correction clean fraction γ (CIFAR-10*, ConvNet, 30% mislabelling)", pts)
			return nil
		case "ablate-kd":
			pts, err := r.AblateKDTemperature("gtsrblike", models.ConvNet, 0.3,
				[]float64{1, 3, 5})
			if err != nil {
				return err
			}
			experiment.RenderAblation(out, "Ablation: distillation temperature T (GTSRB*, ConvNet, 30% mislabelling)", pts)
			return nil
		case "reverse-ad":
			fwd, rev, err := r.ReverseDeltaCheck("gtsrblike", models.ConvNet, 0.3)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "Reverse-delta check (§III-C, GTSRB*, ConvNet, 30%% mislabelling):\n")
			fmt.Fprintf(out, "  forward damage rate: %.1f%% ±%.1f (of all test images)\n", fwd.Mean*100, fwd.CI95*100)
			fmt.Fprintf(out, "  reverse delta:       %.1f%% ±%.1f (paper: not significant)\n", rev.Mean*100, rev.CI95*100)
			return nil
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
	}

	names := []string{*exp}
	if *exp == "all" {
		names = []string{"table1", "table2", "table3", "table4", "motivating",
			"fig3-mislabel", "fig3-removal", "fig4-mislabel", "fig4-repetition",
			"combined", "overhead", "ablate-ens", "ablate-ls", "ablate-lc",
			"ablate-kd", "reverse-ad"}
	}
	for _, name := range names {
		fmt.Fprintf(out, "===== %s =====\n", name)
		if err := runOne(name); err != nil {
			if experiment.IsCancelled(err) {
				hint := ""
				if *artifacts != "" {
					hint = fmt.Sprintf("; resume with:\n  %s", resumeCommand(args))
				}
				return fmt.Errorf("%s: interrupted — in-flight cells were drained and journaled%s", name, hint)
			}
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Fprintln(out)
	}
	if finishGrid != nil {
		finishGrid()
	}

	if *csvPath != "" {
		if csvTable == nil {
			return fmt.Errorf("-csv given but experiment %q produces no CSV table", *exp)
		}
		f, err := os.Create(*csvPath)
		if err != nil {
			return fmt.Errorf("creating %s: %w", *csvPath, err)
		}
		defer f.Close()
		if err := csvTable.WriteCSV(f); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *csvPath)
	}
	if fails := r.Failures(); len(fails) > 0 {
		fmt.Fprintf(os.Stderr, "tdfmbench: %d cell(s) failed after retries; the results above exclude them:\n", len(fails))
		for _, f := range fails {
			fmt.Fprintf(os.Stderr, "  %s: %s (%s, %d attempt(s)): %v\n",
				f.Key, f.Reason, f.Class, f.Attempts, f.Err)
		}
		return fmt.Errorf("%d cell(s) failed; see the failure report above", len(fails))
	}
	return nil
}

// runWorker runs the process as a grid worker: lease cells from the
// coordinator at addr, train them with the coordinator's authoritative
// configuration, deliver results, repeat until the grid is done. A first
// SIGINT cancels mid-cell cooperatively — the lease is released so the
// coordinator re-queues the cell immediately.
func runWorker(addr, id string, workers int, progress bool) error {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	if id == "" {
		host, err := os.Hostname()
		if err != nil || host == "" {
			host = "worker"
		}
		id = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	defer signal.Stop(sig)
	go func() {
		select {
		case <-sig:
			cancel()
			signal.Stop(sig)
			fmt.Fprintln(os.Stderr, "tdfmbench: interrupt — releasing the current lease; press Ctrl-C again to kill")
		case <-ctx.Done():
		}
	}()
	parallel.SetBudget(workers)
	w := &dist.Worker{
		ID:        id,
		Transport: &dist.HTTPTransport{Base: base},
		Clock:     chaos.Wall(),
		Workers:   workers,
	}
	if progress {
		w.Progress = os.Stderr
	}
	fmt.Fprintf(os.Stderr, "tdfmbench: worker %s leasing cells from %s\n", id, base)
	err := w.Run(ctx)
	switch {
	case err == nil:
		fmt.Fprintf(os.Stderr, "tdfmbench: worker %s: grid complete\n", id)
		return nil
	case errors.Is(err, context.Canceled):
		return fmt.Errorf("worker %s interrupted — lease released for reissue", id)
	default:
		return err
	}
}

// resumeCommand reconstructs the command line that resumes this run from
// its -artifacts journal: the original arguments with -resume appended
// (and any existing -resume flag dropped so it is not repeated).
func resumeCommand(args []string) string {
	parts := []string{"tdfmbench"}
	for _, a := range args {
		switch a {
		case "-resume", "--resume", "-resume=true", "--resume=true":
			continue
		}
		parts = append(parts, a)
	}
	parts = append(parts, "-resume")
	return strings.Join(parts, " ")
}

func parseScale(s string) (datagen.Scale, error) {
	switch s {
	case "tiny":
		return datagen.ScaleTiny, nil
	case "small":
		return datagen.ScaleSmall, nil
	case "medium":
		return datagen.ScaleMedium, nil
	default:
		return 0, fmt.Errorf("unknown scale %q (want tiny|small|medium)", s)
	}
}

// resolveWorkers validates the -workers flag: 0 means one worker per
// available CPU, negatives are rejected.
func resolveWorkers(n int) (int, error) {
	if n < 0 {
		return 0, fmt.Errorf("-workers must be >= 0, got %d", n)
	}
	if n == 0 {
		return runtime.GOMAXPROCS(0), nil
	}
	return n, nil
}
