// Command tdfmlint is the repo's go vet-style determinism and
// correctness gate: it runs the internal/lint pass suite —
// nodeterminism, maporder, errwrap, paniccontract, docs, plus the
// dataflow passes poolown and lockdiscipline — over the given package
// directories and exits nonzero on any finding. The quality gate runs
// it as `make lint` (and through `make test`) over ./internal/...
// ./cmd/... and the root package.
//
// Usage:
//
//	tdfmlint [-list] [-json] <pattern> [<pattern> ...]
//
// A pattern is a package directory ("."), or a tree pattern ending in
// /... which expands to every package directory beneath it (testdata,
// hidden, and underscore-prefixed directories are skipped, as the go
// tool does). -list prints the pass catalog and exits. -json emits one
// JSON object per finding (machine-readable, for editors and CI
// annotation) including the findings existing //tdfm:allow directives
// suppressed, marked with the directive's justification; only active
// findings affect the exit code.
//
// Findings can be suppressed case by case with a trailing or
// immediately preceding comment of the form
//
//	//tdfm:allow <pass> <reason>
//
// The reason is mandatory, unknown pass names are findings, and a
// directive that suppresses nothing is itself reported — suppressions
// cannot silently outlive the code they excused. See DESIGN.md §7.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"tdfm/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point; it returns the process exit code
// (0 clean, 1 findings, 2 usage or load failure).
func run(args []string, stdout, stderr io.Writer) int {
	fl := flag.NewFlagSet("tdfmlint", flag.ContinueOnError)
	fl.SetOutput(stderr)
	list := fl.Bool("list", false, "print the pass catalog and exit")
	jsonOut := fl.Bool("json", false, "emit findings as JSON lines (includes suppressed findings; exit code still counts only active ones)")
	if err := fl.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, p := range lint.AllPasses() {
			fmt.Fprintf(stdout, "%-16s %s\n", p.Name(), p.Doc())
		}
		return 0
	}
	if fl.NArg() == 0 {
		fmt.Fprintln(stderr, "usage: tdfmlint [-list] [-json] <dir|dir/...> [...]")
		return 2
	}
	dirs, err := expandPatterns(fl.Args())
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	loader := lint.NewLoader()
	var pkgs []*lint.Package
	for _, dir := range dirs {
		pkg, err := loader.Load(dir)
		if err != nil {
			if errors.Is(err, lint.ErrNoGoFiles) {
				continue
			}
			fmt.Fprintln(stderr, err)
			return 2
		}
		// The gate requires a type-correct tree: passes degrade without
		// type information, so surface the root cause instead of
		// silently weakening the checks.
		for i, terr := range pkg.TypeErrors {
			if i == 3 {
				fmt.Fprintf(stderr, "tdfmlint: %s: (more type errors elided)\n", dir)
				break
			}
			fmt.Fprintf(stderr, "tdfmlint: %s: type error: %v\n", dir, terr)
		}
		if len(pkg.TypeErrors) > 0 {
			return 2
		}
		pkgs = append(pkgs, pkg)
	}
	active, suppressed := lint.RunAll(pkgs, lint.AllPasses())
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		for _, f := range active {
			if err := enc.Encode(jsonFinding(f)); err != nil {
				fmt.Fprintln(stderr, err)
				return 2
			}
		}
		for _, f := range suppressed {
			if err := enc.Encode(jsonFinding(f)); err != nil {
				fmt.Fprintln(stderr, err)
				return 2
			}
		}
	} else {
		for _, f := range active {
			fmt.Fprintln(stdout, f)
		}
	}
	if len(active) > 0 {
		fmt.Fprintf(stderr, "tdfmlint: %d finding(s)\n", len(active))
		return 1
	}
	return 0
}

// finding is the -json wire form: one object per output line, stable
// field names for editors and the CI problem matcher.
type finding struct {
	Pass    string `json:"pass"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
	// SuppressedBy carries the //tdfm:allow justification when the
	// finding was silenced; absent on active findings.
	SuppressedBy string `json:"suppressedBy,omitempty"`
}

// jsonFinding converts a lint.Finding to its wire form.
func jsonFinding(f lint.Finding) finding {
	return finding{
		Pass:         f.Pass,
		File:         f.Pos.Filename,
		Line:         f.Pos.Line,
		Col:          f.Pos.Column,
		Message:      f.Message,
		SuppressedBy: f.SuppressedBy,
	}
}

// expandPatterns resolves directory and /... tree patterns into a
// sorted, deduplicated list of package directories containing at least
// one non-test Go file.
func expandPatterns(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var out []string
	add := func(dir string) {
		dir = filepath.Clean(dir)
		if !seen[dir] && hasGoFiles(dir) {
			seen[dir] = true
			out = append(out, dir)
		}
	}
	for _, pat := range patterns {
		root, recursive := strings.CutSuffix(pat, "/...")
		root = filepath.Clean(root)
		info, err := os.Stat(root)
		if err != nil {
			return nil, fmt.Errorf("tdfmlint: %w", err)
		}
		if !info.IsDir() {
			return nil, fmt.Errorf("tdfmlint: %s is not a directory", root)
		}
		if !recursive {
			add(root)
			continue
		}
		err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			if skipDir(d.Name()) && path != root {
				return fs.SkipDir
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("tdfmlint: walking %s: %w", root, err)
		}
	}
	sort.Strings(out)
	return out, nil
}

// skipDir mirrors the go tool's tree-walking exclusions: testdata,
// hidden, and underscore-prefixed directories.
func skipDir(name string) bool {
	return name == "testdata" ||
		strings.HasPrefix(name, ".") ||
		strings.HasPrefix(name, "_")
}

// hasGoFiles reports whether dir directly contains a non-test Go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		n := e.Name()
		if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			return true
		}
	}
	return false
}
