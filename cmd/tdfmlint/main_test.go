package main

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

// TestExpandPatterns expands a tree pattern from this package's
// directory: the walk must find package dirs, skip testdata, and
// dedupe repeats.
func TestExpandPatterns(t *testing.T) {
	dirs, err := expandPatterns([]string{"../../internal/...", "../../internal/lint", "../.."})
	if err != nil {
		t.Fatal(err)
	}
	want := filepath.Clean("../../internal/lint")
	found := false
	for _, d := range dirs {
		if d == want {
			found = true
		}
		if strings.Contains(d, "testdata") {
			t.Errorf("testdata directory not skipped: %s", d)
		}
	}
	if !found {
		t.Fatalf("expanded dirs missing %s: %v", want, dirs)
	}
	seen := make(map[string]bool)
	for _, d := range dirs {
		if seen[d] {
			t.Errorf("duplicate dir %s", d)
		}
		seen[d] = true
	}
}

// TestRunFindsSeededViolations runs the real CLI entry point over the
// nodeterminism golden package and expects findings and exit code 1.
func TestRunFindsSeededViolations(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"../../internal/lint/testdata/src/nodeterminism"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit code %d, want 1 (stderr: %s)", code, errOut.String())
	}
	for _, want := range []string{"import of math/rand", "time.Now", "bare go statement"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

// TestRunList prints the pass catalog.
func TestRunList(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("exit code %d, want 0", code)
	}
	for _, pass := range []string{"nodeterminism", "maporder", "errwrap", "paniccontract", "docs"} {
		if !strings.Contains(out.String(), pass) {
			t.Errorf("-list output missing %q:\n%s", pass, out.String())
		}
	}
}

// TestRunUsage exits 2 without arguments.
func TestRunUsage(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(nil, &out, &errOut); code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
}

// TestRunJSON checks the -json wire format: one object per line,
// active findings with position fields, suppressed findings carrying
// the directive's justification, and the exit code counting only
// active findings.
func TestRunJSON(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-json", "../../internal/lint/testdata/src/poolown"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit code %d, want 1 (stderr: %s)", code, errOut.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) == 0 {
		t.Fatal("no JSON output")
	}
	sawPoolown := false
	for _, line := range lines {
		var f finding
		if err := json.Unmarshal([]byte(line), &f); err != nil {
			t.Fatalf("line is not valid JSON: %q: %v", line, err)
		}
		if f.File == "" || f.Line == 0 || f.Pass == "" || f.Message == "" {
			t.Errorf("incomplete finding: %q", line)
		}
		if f.Pass == "poolown" {
			sawPoolown = true
		}
	}
	if !sawPoolown {
		t.Errorf("no poolown finding in JSON output:\n%s", out.String())
	}
}

// TestRunJSONSuppressed pins that suppressed findings appear in -json
// output with their justification, and do not affect the exit code.
func TestRunJSONSuppressed(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-json", "../../internal/opt"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code %d, want 0 — suppressed findings must not gate (stderr: %s)", code, errOut.String())
	}
	sawSuppressed := false
	for _, line := range strings.Split(strings.TrimSpace(out.String()), "\n") {
		if line == "" {
			continue
		}
		var f finding
		if err := json.Unmarshal([]byte(line), &f); err != nil {
			t.Fatalf("line is not valid JSON: %q: %v", line, err)
		}
		if f.SuppressedBy != "" {
			sawSuppressed = true
		}
	}
	if !sawSuppressed {
		t.Errorf("expected at least one suppressed finding with its justification:\n%s", out.String())
	}
}
