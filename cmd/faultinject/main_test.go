package main

import (
	"testing"

	"tdfm/internal/data"
	"tdfm/internal/faultinject"
)

func TestParseSpecsSingle(t *testing.T) {
	specs, err := ParseSpecs("mislabel@0.3")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 1 || specs[0].Type != faultinject.Mislabel || specs[0].Rate != 0.3 {
		t.Fatalf("specs = %+v", specs)
	}
}

func TestParseSpecsMultiple(t *testing.T) {
	specs, err := ParseSpecs("mislabel@0.1, removal@0.2 ,repetition@0.05")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 3 {
		t.Fatalf("%d specs", len(specs))
	}
	if specs[1].Type != faultinject.Remove || specs[2].Type != faultinject.Repeat {
		t.Fatalf("aliases not resolved: %+v", specs)
	}
}

func TestParseSpecsErrors(t *testing.T) {
	for _, bad := range []string{"", "mislabel", "mislabel@x", "bogus@0.1", " , "} {
		if _, err := ParseSpecs(bad); err == nil {
			t.Errorf("ParseSpecs(%q) accepted", bad)
		}
	}
}

func TestParseScale(t *testing.T) {
	for _, good := range []string{"tiny", "small", "medium"} {
		if _, err := parseScale(good); err != nil {
			t.Errorf("parseScale(%q): %v", good, err)
		}
	}
	if _, err := parseScale("huge"); err == nil {
		t.Error("parseScale accepted huge")
	}
}

func TestRunEndToEnd(t *testing.T) {
	// Full CLI pass on the smallest dataset; output goes to stdout.
	err := run([]string{"-dataset", "pneumonialike", "-faults", "mislabel@0.2,repeat@0.1", "-protect", "0.1"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-dataset", "imagenet"}); err == nil {
		t.Fatal("unknown dataset accepted")
	}
	if err := run([]string{"-faults", "nope@1"}); err == nil {
		t.Fatal("unknown fault accepted")
	}
	if err := run([]string{"-scale", "huge"}); err == nil {
		t.Fatal("unknown scale accepted")
	}
}

func TestRunSavesDataset(t *testing.T) {
	path := t.TempDir() + "/faulted.gob"
	err := run([]string{"-dataset", "pneumonialike", "-faults", "mislabel@0.5", "-save", path})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := data.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() == 0 || ds.NumClasses != 2 {
		t.Fatalf("saved dataset wrong: %d samples, %d classes", ds.Len(), ds.NumClasses)
	}
}
