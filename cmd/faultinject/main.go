// Command faultinject demonstrates the TF-DM-equivalent injector: it
// generates a synthetic study dataset, injects the requested faults, and
// reports what changed (sizes, per-class label histograms, affected
// counts). Useful for inspecting injector behaviour without training.
//
// Usage:
//
//	faultinject -dataset gtsrblike -faults mislabel@0.3,remove@0.1 [-seed 1] [-scale tiny]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"tdfm/internal/data"
	"tdfm/internal/datagen"
	"tdfm/internal/faultinject"
	"tdfm/internal/report"
	"tdfm/internal/xrand"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "faultinject:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("faultinject", flag.ContinueOnError)
	var (
		dataset  = fs.String("dataset", "gtsrblike", "dataset: cifar10like|gtsrblike|pneumonialike")
		faults   = fs.String("faults", "mislabel@0.3", "comma-separated fault specs type@rate")
		seed     = fs.Uint64("seed", 1, "random seed")
		scaleStr = fs.String("scale", "tiny", "dataset scale: tiny|small|medium")
		protect  = fs.Float64("protect", 0, "fraction of data protected from injection (clean subset)")
		save     = fs.String("save", "", "write the faulted dataset to this path (gob, loadable with data.Load)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	scale, err := parseScale(*scaleStr)
	if err != nil {
		return err
	}
	cfg, ok := datagen.Presets(scale, *seed)[*dataset]
	if !ok {
		return fmt.Errorf("unknown dataset %q", *dataset)
	}
	train, _, err := datagen.Generate(cfg)
	if err != nil {
		return err
	}
	specs, err := ParseSpecs(*faults)
	if err != nil {
		return err
	}

	inj := faultinject.New(xrand.New(*seed).Split("inject"))
	if *protect > 0 {
		idx := train.StratifiedIndices(*protect, xrand.New(*seed).Split("protect"))
		inj.Protect(idx)
		fmt.Printf("protected %d samples (%.0f%%) from injection\n", len(idx), *protect*100)
	}
	out, reports, err := inj.Inject(train, specs...)
	if err != nil {
		return err
	}

	t := &report.Table{
		Title:   fmt.Sprintf("Injection into %s (%d samples)", *dataset, train.Len()),
		Headers: []string{"step", "fault", "rate", "affected", "size before", "size after"},
	}
	for i, rep := range reports {
		t.AddRow(strconv.Itoa(i+1), rep.Spec.Type.String(),
			fmt.Sprintf("%.0f%%", rep.Spec.Rate*100),
			strconv.Itoa(len(rep.Affected)),
			strconv.Itoa(rep.SizeBefore), strconv.Itoa(rep.SizeAfter))
	}
	t.Render(os.Stdout)

	fmt.Println()
	renderHistogram("label histogram before", train)
	renderHistogram("label histogram after", out)
	changed := labelChanges(train, out)
	if changed >= 0 {
		fmt.Printf("\nlabels changed in place: %d\n", changed)
	}
	if *save != "" {
		if err := out.Save(*save); err != nil {
			return err
		}
		fmt.Printf("saved faulted dataset to %s\n", *save)
	}
	return nil
}

// ParseSpecs parses "mislabel@0.3,remove@0.1" into injector specs.
func ParseSpecs(s string) ([]faultinject.Spec, error) {
	var specs []faultinject.Spec
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		ty, rate, ok := strings.Cut(part, "@")
		if !ok {
			return nil, fmt.Errorf("bad fault spec %q (want type@rate)", part)
		}
		ft, err := faultinject.ParseType(ty)
		if err != nil {
			return nil, err
		}
		r, err := strconv.ParseFloat(rate, 64)
		if err != nil {
			return nil, fmt.Errorf("bad rate in %q: %w", part, err)
		}
		specs = append(specs, faultinject.Spec{Type: ft, Rate: r})
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("no fault specs in %q", s)
	}
	return specs, nil
}

func renderHistogram(title string, ds *data.Dataset) {
	hist := ds.ClassHistogram()
	max := 1
	for _, n := range hist {
		if n > max {
			max = n
		}
	}
	fmt.Printf("%s (%d samples, %d classes):\n", title, ds.Len(), ds.NumClasses)
	limit := len(hist)
	if limit > 12 {
		limit = 12
	}
	for c := 0; c < limit; c++ {
		bar := strings.Repeat("#", hist[c]*40/max)
		fmt.Printf("  class %2d %4d %s\n", c, hist[c], bar)
	}
	if limit < len(hist) {
		fmt.Printf("  … %d more classes\n", len(hist)-limit)
	}
}

// labelChanges counts in-place label changes when sizes match; returns -1
// when sizes differ (removal/repetition shifted rows).
func labelChanges(before, after *data.Dataset) int {
	if before.Len() != after.Len() {
		return -1
	}
	n := 0
	for i := range before.Labels {
		if before.Labels[i] != after.Labels[i] {
			n++
		}
	}
	return n
}

func parseScale(s string) (datagen.Scale, error) {
	switch s {
	case "tiny":
		return datagen.ScaleTiny, nil
	case "small":
		return datagen.ScaleSmall, nil
	case "medium":
		return datagen.ScaleMedium, nil
	default:
		return 0, fmt.Errorf("unknown scale %q", s)
	}
}
