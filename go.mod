module tdfm

go 1.24
