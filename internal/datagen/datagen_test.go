package datagen

import (
	"math"
	"testing"

	"tdfm/internal/xrand"
)

func TestValidate(t *testing.T) {
	good := CIFAR10Like(ScaleTiny, 1)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.NumClasses = 1
	if bad.Validate() == nil {
		t.Fatal("single class accepted")
	}
	bad = good
	bad.Signal = 0
	if bad.Validate() == nil {
		t.Fatal("zero signal accepted")
	}
	bad = good
	bad.TrainN = 2
	if bad.Validate() == nil {
		t.Fatal("tiny train set accepted")
	}
}

func TestGenerateShapesAndBalance(t *testing.T) {
	cfg := CIFAR10Like(ScaleTiny, 7)
	train, test, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if train.Len() != cfg.TrainN || test.Len() != cfg.TestN {
		t.Fatalf("sizes %d/%d", train.Len(), test.Len())
	}
	if train.Channels() != 3 || train.Height() != 12 || train.Width() != 12 {
		t.Fatal("image dims wrong")
	}
	// Round-robin class assignment keeps the histogram balanced to ±1.
	hist := train.ClassHistogram()
	for c, n := range hist {
		if n < cfg.TrainN/cfg.NumClasses-1 || n > cfg.TrainN/cfg.NumClasses+1 {
			t.Fatalf("class %d has %d samples (unbalanced)", c, n)
		}
	}
}

func TestDeterminism(t *testing.T) {
	cfg := GTSRBLike(ScaleTiny, 42)
	a1, b1, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a2, b2, _ := Generate(cfg)
	if !a1.X.Equal(a2.X, 0) || !b1.X.Equal(b2.X, 0) {
		t.Fatal("same seed produced different data")
	}
	for i := range a1.Labels {
		if a1.Labels[i] != a2.Labels[i] {
			t.Fatal("labels differ")
		}
	}
}

func TestSeedChangesData(t *testing.T) {
	a, _, _ := Generate(CIFAR10Like(ScaleTiny, 1))
	b, _, _ := Generate(CIFAR10Like(ScaleTiny, 2))
	if a.X.Equal(b.X, 1e-9) {
		t.Fatal("different seeds produced identical data")
	}
}

func TestClassesAreSeparable(t *testing.T) {
	// Nearest-prototype classification on noiseless renders must beat chance
	// by a wide margin: verifies that class identity is actually encoded.
	cfg := GTSRBLike(ScaleTiny, 5)
	cfg.Noise, cfg.Clutter, cfg.Shift = 0, 0, 0
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(9)
	protos := make([][]float64, cfg.NumClasses)
	for k := range protos {
		protos[k] = g.Sample(k, rng)
	}
	correct := 0
	trials := 0
	noisy := cfg
	noisy.Noise = cfg.Noise
	for k := 0; k < cfg.NumClasses; k++ {
		s := g.Sample(k, rng)
		best, bestD := -1, math.Inf(1)
		for j := range protos {
			d := 0.0
			for i := range s {
				diff := s[i] - protos[j][i]
				d += diff * diff
			}
			if d < bestD {
				best, bestD = j, d
			}
		}
		trials++
		if best == k {
			correct++
		}
	}
	if correct < trials*9/10 {
		t.Fatalf("nearest-prototype accuracy %d/%d too low", correct, trials)
	}
}

func TestPneumoniaSmallerThanOthers(t *testing.T) {
	p := PneumoniaLike(ScaleSmall, 1)
	c := CIFAR10Like(ScaleSmall, 1)
	if p.TrainN*2 >= c.TrainN {
		t.Fatalf("pneumonia (%d) should be much smaller than cifar (%d)", p.TrainN, c.TrainN)
	}
	if p.Channels != 1 {
		t.Fatal("pneumonia must be greyscale")
	}
}

func TestPresetsComplete(t *testing.T) {
	ps := Presets(ScaleTiny, 3)
	for _, name := range []string{"cifar10like", "gtsrblike", "pneumonialike"} {
		cfg, ok := ps[name]
		if !ok {
			t.Fatalf("preset %s missing", name)
		}
		if cfg.Name != name {
			t.Fatalf("preset %s has name %s", name, cfg.Name)
		}
		if err := cfg.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestGTSRBHas43Classes(t *testing.T) {
	if GTSRBLike(ScaleTiny, 1).NumClasses != 43 {
		t.Fatal("GTSRB stand-in must keep 43 classes (drives the LC finding)")
	}
}

func TestScaleFactorsMonotonic(t *testing.T) {
	tiny := CIFAR10Like(ScaleTiny, 1).TrainN
	small := CIFAR10Like(ScaleSmall, 1).TrainN
	medium := CIFAR10Like(ScaleMedium, 1).TrainN
	if !(tiny < small && small < medium) {
		t.Fatalf("scales not monotonic: %d %d %d", tiny, small, medium)
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	cfg := CIFAR10Like(ScaleTiny, 1)
	cfg.Height = 1
	if _, _, err := Generate(cfg); err == nil {
		t.Fatal("expected error")
	}
}

func TestGTZANLikePreset(t *testing.T) {
	cfg := GTZANLike(ScaleTiny, 3)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.NumClasses != 10 || cfg.Channels != 1 {
		t.Fatalf("GTZAN shape wrong: %+v", cfg)
	}
	if cfg.Height == cfg.Width {
		t.Fatal("spectrogram patches should be rectangular (freq != time)")
	}
	train, test, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if train.Len() != cfg.TrainN || test.Len() != cfg.TestN {
		t.Fatalf("sizes %d/%d", train.Len(), test.Len())
	}
}
