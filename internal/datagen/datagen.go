// Package datagen synthesizes the three image-classification datasets used
// by the study as laptop-scale stand-ins for CIFAR-10, GTSRB, and the
// Pneumonia chest X-ray set (see DESIGN.md §2 for the substitution
// argument).
//
// Each class is defined by a deterministic prototype image (a mixture of
// Gaussian bumps drawn from a per-class random stream). A sample is the
// class prototype plus three perturbations whose strengths differentiate
// the datasets:
//
//   - clutter: structured background blobs shared across classes, strong in
//     the CIFAR-10-like set (the paper attributes CIFAR-10's higher AD to
//     background objects), weak in the GTSRB-like set (signs are centred);
//   - pixel noise: white Gaussian noise;
//   - shift: small random translation.
//
// All generation is deterministic given the config seed.
package datagen

import (
	"fmt"
	"math"

	"tdfm/internal/data"
	"tdfm/internal/tensor"
	"tdfm/internal/xrand"
)

// Config parameterizes a synthetic dataset.
type Config struct {
	Name       string
	NumClasses int
	Channels   int
	Height     int
	Width      int
	TrainN     int
	TestN      int

	Signal  float64 // prototype amplitude
	Clutter float64 // background-blob amplitude
	Noise   float64 // white-noise std
	Shift   int     // max |translation| in pixels

	Seed uint64
}

// Validate returns an error if the configuration is not generatable.
func (c Config) Validate() error {
	switch {
	case c.NumClasses < 2:
		return fmt.Errorf("datagen: %s: need >=2 classes, got %d", c.Name, c.NumClasses)
	case c.Channels < 1 || c.Height < 4 || c.Width < 4:
		return fmt.Errorf("datagen: %s: image dims %dx%dx%d too small", c.Name, c.Channels, c.Height, c.Width)
	case c.TrainN < c.NumClasses || c.TestN < c.NumClasses:
		return fmt.Errorf("datagen: %s: need >= %d train and test samples", c.Name, c.NumClasses)
	case c.Signal <= 0:
		return fmt.Errorf("datagen: %s: signal must be positive", c.Name)
	case c.Noise < 0 || c.Clutter < 0 || c.Shift < 0:
		return fmt.Errorf("datagen: %s: negative perturbation", c.Name)
	}
	return nil
}

// bump is one Gaussian component of a class prototype or clutter pattern.
type bump struct {
	cy, cx    float64
	sigma     float64
	amplitude float64
	chWeight  []float64
}

func drawBumps(rng *xrand.RNG, n, channels int, h, w float64) []bump {
	bumps := make([]bump, n)
	for i := range bumps {
		chw := make([]float64, channels)
		for c := range chw {
			chw[c] = rng.Uniform(-1, 1)
		}
		bumps[i] = bump{
			cy:        rng.Uniform(0.15, 0.85) * h,
			cx:        rng.Uniform(0.15, 0.85) * w,
			sigma:     rng.Uniform(0.08, 0.25) * math.Min(h, w),
			amplitude: rng.Uniform(0.5, 1.0) * sign(rng.Uniform(-1, 1)),
			chWeight:  chw,
		}
	}
	return bumps
}

func sign(v float64) float64 {
	if v < 0 {
		return -1
	}
	return 1
}

func renderBumps(dst []float64, bumps []bump, channels, h, w int, scale float64, dy, dx float64) {
	for _, b := range bumps {
		inv := 1 / (2 * b.sigma * b.sigma)
		for ch := 0; ch < channels; ch++ {
			amp := scale * b.amplitude * b.chWeight[ch]
			if amp == 0 {
				continue
			}
			base := ch * h * w
			for y := 0; y < h; y++ {
				ddy := float64(y) - (b.cy + dy)
				for x := 0; x < w; x++ {
					ddx := float64(x) - (b.cx + dx)
					dst[base+y*w+x] += amp * math.Exp(-(ddy*ddy+ddx*ddx)*inv)
				}
			}
		}
	}
}

// Generator produces samples for one synthetic dataset.
type Generator struct {
	cfg        Config
	prototypes [][]bump
}

// NewGenerator builds the per-class prototypes for the config.
func NewGenerator(cfg Config) (*Generator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	protoRNG := xrand.New(cfg.Seed).Split("prototypes")
	protos := make([][]bump, cfg.NumClasses)
	for k := range protos {
		// 3-5 bumps per class; class identity lives in their placement.
		classRNG := protoRNG.Split(fmt.Sprintf("class-%d", k))
		protos[k] = drawBumps(classRNG, 3+classRNG.IntN(3), cfg.Channels,
			float64(cfg.Height), float64(cfg.Width))
	}
	return &Generator{cfg: cfg, prototypes: protos}, nil
}

// Config returns the generator's configuration.
func (g *Generator) Config() Config { return g.cfg }

// Sample renders one image of the given class into a fresh buffer using the
// provided stream for perturbations.
func (g *Generator) Sample(class int, rng *xrand.RNG) []float64 {
	c := g.cfg
	buf := make([]float64, c.Channels*c.Height*c.Width)
	dy := float64(0)
	dx := float64(0)
	if c.Shift > 0 {
		dy = float64(rng.IntN(2*c.Shift+1) - c.Shift)
		dx = float64(rng.IntN(2*c.Shift+1) - c.Shift)
	}
	renderBumps(buf, g.prototypes[class], c.Channels, c.Height, c.Width, c.Signal, dy, dx)
	if c.Clutter > 0 {
		clutter := drawBumps(rng, 2, c.Channels, float64(c.Height), float64(c.Width))
		renderBumps(buf, clutter, c.Channels, c.Height, c.Width, c.Clutter, 0, 0)
	}
	if c.Noise > 0 {
		for i := range buf {
			buf[i] += rng.Normal(0, c.Noise)
		}
	}
	return buf
}

// dataset renders n samples with balanced classes (round-robin) shuffled by
// the stream.
func (g *Generator) dataset(n int, rng *xrand.RNG, tag string) *data.Dataset {
	c := g.cfg
	x := tensor.New(n, c.Channels, c.Height, c.Width)
	labels := make([]int, n)
	ss := c.Channels * c.Height * c.Width
	order := rng.Perm(n)
	for i := 0; i < n; i++ {
		class := i % c.NumClasses
		row := order[i]
		copy(x.Data()[row*ss:(row+1)*ss], g.Sample(class, rng))
		labels[row] = class
	}
	return data.MustNew(c.Name+"/"+tag, x, labels, c.NumClasses)
}

// Generate renders the train and test splits. Train and test use disjoint
// random streams derived from the config seed.
func (g *Generator) Generate() (train, test *data.Dataset) {
	root := xrand.New(g.cfg.Seed)
	_ = root.Split("prototypes") // keep stream layout in sync with NewGenerator
	trainRNG := root.Split("train")
	testRNG := root.Split("test")
	return g.dataset(g.cfg.TrainN, trainRNG, "train"), g.dataset(g.cfg.TestN, testRNG, "test")
}

// Scale selects the size tier of a preset dataset: how many samples are
// rendered relative to the paper's originals.
type Scale int

// Size tiers. Tiny is for unit tests, Small for the default harness and
// benchmarks, Medium for higher-fidelity runs.
const (
	ScaleTiny Scale = iota + 1
	ScaleSmall
	ScaleMedium
)

func (s Scale) factor() int {
	switch s {
	case ScaleTiny:
		return 1
	case ScaleSmall:
		return 3
	case ScaleMedium:
		return 8
	default:
		panic(fmt.Sprintf("datagen: unknown scale %d", s))
	}
}

// CIFAR10Like returns the CIFAR-10 stand-in: 10 classes, RGB, heavy
// background clutter. Train/test sizes keep the paper's 5:1 ratio.
func CIFAR10Like(scale Scale, seed uint64) Config {
	f := scale.factor()
	return Config{
		Name:       "cifar10like",
		NumClasses: 10,
		Channels:   3, Height: 12, Width: 12,
		TrainN: 200 * f, TestN: 50 * f,
		Signal:  1.0,
		Clutter: 1.15,
		Noise:   0.50,
		Shift:   1,
		Seed:    seed,
	}
}

// GTSRBLike returns the GTSRB stand-in: 43 classes, RGB, centred
// high-contrast "signs" with little clutter.
func GTSRBLike(scale Scale, seed uint64) Config {
	f := scale.factor()
	return Config{
		Name:       "gtsrblike",
		NumClasses: 43,
		Channels:   3, Height: 12, Width: 12,
		TrainN: 301 * f, TestN: 86 * f,
		Signal:  1.6,
		Clutter: 0.20,
		Noise:   0.25,
		Shift:   1,
		Seed:    seed,
	}
}

// PneumoniaLike returns the Pneumonia stand-in: 2 classes, greyscale,
// diffuse texture, roughly a tenth the size of the other sets (the paper
// stresses the difficulty of collecting medical data).
func PneumoniaLike(scale Scale, seed uint64) Config {
	f := scale.factor()
	return Config{
		Name:       "pneumonialike",
		NumClasses: 2,
		Channels:   1, Height: 12, Width: 12,
		TrainN: 80 * f, TestN: 50 * f,
		Signal:  0.85,
		Clutter: 0.70,
		Noise:   0.50,
		Shift:   1,
		Seed:    seed,
	}
}

// Presets returns the three study datasets at the given scale, keyed by the
// names used throughout the experiment harness.
func Presets(scale Scale, seed uint64) map[string]Config {
	return map[string]Config{
		"cifar10like":   CIFAR10Like(scale, seed),
		"gtsrblike":     GTSRBLike(scale, seed),
		"pneumonialike": PneumoniaLike(scale, seed),
	}
}

// Generate is a convenience wrapper building a generator and rendering both
// splits.
func Generate(cfg Config) (train, test *data.Dataset, err error) {
	g, err := NewGenerator(cfg)
	if err != nil {
		return nil, nil, err
	}
	train, test = g.Generate()
	return train, test, nil
}

// GTZANLike returns a stand-in for the GTZAN music-genre dataset whose
// fault census motivated the paper's fault taxonomy (§I, Sturm 2013):
// 10 genres, single-channel 12×16 "spectrogram" patches (frequency ×
// time), banded texture rather than centred objects. The paper's future
// work proposes expanding the evaluation beyond images; this preset
// exercises exactly that path — the substrate is input-layout agnostic, so
// every TDFM technique runs on it unchanged.
func GTZANLike(scale Scale, seed uint64) Config {
	f := scale.factor()
	return Config{
		Name:       "gtzanlike",
		NumClasses: 10,
		Channels:   1, Height: 12, Width: 16,
		TrainN: 200 * f, TestN: 50 * f,
		Signal:  1.1,
		Clutter: 0.55,
		Noise:   0.40,
		Shift:   2, // genres are translation-tolerant along time
		Seed:    seed,
	}
}
