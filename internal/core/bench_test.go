package core

import (
	"testing"

	"tdfm/internal/data"
	"tdfm/internal/datagen"
	"tdfm/internal/loss"
	"tdfm/internal/tensor"
	"tdfm/internal/xrand"
)

// benchSet builds a small deterministic training set for the training-loop
// benchmarks (the EXPERIMENTS.md allocation-trajectory walkthrough quotes
// their allocs/op and B/op columns).
func benchSet(b *testing.B) *data.Dataset {
	b.Helper()
	train, _, err := datagen.Generate(datagen.Config{
		Name: "bench", NumClasses: 4, Channels: 1, Height: 12, Width: 12,
		TrainN: 128, TestN: 8, Signal: 1.5, Clutter: 0.2, Noise: 0.25, Shift: 1, Seed: 9,
	})
	if err != nil {
		b.Fatal(err)
	}
	return train
}

// benchTrain runs four-epoch training iterations on a prebuilt convnet
// with pooling forced to the given mode. One op is one full trainLoop
// call — the unit real experiment cells pay for — so per-run fixed costs
// (weight snapshot, optimizer state) amortize over epochs exactly as
// they do in the grid runner.
func benchTrain(b *testing.B, pooled bool) {
	old := tensor.PoolingEnabled()
	tensor.SetPooling(pooled)
	defer tensor.SetPooling(old)

	train := benchSet(b)
	cfg := Config{Arch: "convnet", Epochs: 4, BatchSize: 32, LR: 0.01}
	_, bm, err := cfg.buildFor(train, xrand.New(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := trainLoop(bm.net, train, loss.CrossEntropy{}, cfg, xrand.New(uint64(i)+2), nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAllocTrain tracks the training loop's allocation rate with
// the buffer pool and arena on versus off (run with -benchmem; the
// allocs/op and B/op columns are the point of this benchmark).
func BenchmarkAllocTrain(b *testing.B) {
	b.Run("pooled", func(b *testing.B) { benchTrain(b, true) })
	b.Run("unpooled", func(b *testing.B) { benchTrain(b, false) })
}
