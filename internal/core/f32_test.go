package core

import (
	"math"
	"testing"

	"tdfm/internal/models"
	"tdfm/internal/tensor"
	"tdfm/internal/xrand"
)

// TestF32VotesMatchF64AcrossModels pins the serving precision contract on
// every study architecture: the float32 twin's per-row argmax (the
// ensemble vote) equals the float64 model's, and the probabilities drift
// by no more than single-precision tolerance (DESIGN.md §10).
func TestF32VotesMatchF64AcrossModels(t *testing.T) {
	const (
		n, classes = 13, 3
		h, w       = 8, 8
	)
	x := tensor.New(n, 1, h, w)
	for i := range x.Data() {
		x.Data()[i] = float64(i%17)/17 - 0.5
	}

	for _, arch := range models.StudyModels() {
		arch := arch
		t.Run(arch, func(t *testing.T) {
			net, err := models.Build(arch, models.BuildConfig{
				InChannels: 1, Height: h, Width: w, NumClasses: classes,
				WidthMult: 0.25, RNG: xrand.New(7).Split(arch),
			})
			if err != nil {
				t.Fatal(err)
			}
			m := &builtModel{net: net, classes: classes}
			f32, err := ToF32(m)
			if err != nil {
				t.Fatalf("ToF32(%s): %v", arch, err)
			}

			wantProbs := m.PredictProbs(x)
			gotProbs := f32.PredictProbs(x)
			for i := range wantProbs.Data() {
				drift := math.Abs(gotProbs.Data()[i] - wantProbs.Data()[i])
				if drift > 1e-4 {
					t.Fatalf("%s: probability drift %v at %d exceeds 1e-4", arch, drift, i)
				}
			}
			wantPred, gotPred := m.Predict(x), f32.Predict(x)
			for row := range wantPred {
				if gotPred[row] != wantPred[row] {
					t.Fatalf("%s row %d: f32 vote %d, f64 vote %d", arch, row, gotPred[row], wantPred[row])
				}
			}
		})
	}
}

// TestToF32Ensemble checks that a voting ensemble converts member by
// member and votes identically to the float64 ensemble.
func TestToF32Ensemble(t *testing.T) {
	const classes = 3
	var members []Classifier
	for _, arch := range []string{"convnet", "mobilenet"} {
		net, err := models.Build(arch, models.BuildConfig{
			InChannels: 1, Height: 8, Width: 8, NumClasses: classes,
			WidthMult: 0.25, RNG: xrand.New(3).Split(arch),
		})
		if err != nil {
			t.Fatal(err)
		}
		members = append(members, &builtModel{net: net, classes: classes})
	}
	v := &VotingClassifier{Members: members, Classes: classes}
	f32, err := ToF32(v)
	if err != nil {
		t.Fatal(err)
	}
	fv, ok := f32.(*VotingClassifier)
	if !ok || len(fv.Members) != 2 {
		t.Fatalf("ToF32(ensemble) = %T with %d members, want *VotingClassifier with 2", f32, len(fv.Members))
	}

	x := tensor.New(9, 1, 8, 8)
	for i := range x.Data() {
		x.Data()[i] = float64(i%11)/11 - 0.5
	}
	want, got := v.Predict(x), f32.Predict(x)
	for row := range want {
		if got[row] != want[row] {
			t.Fatalf("row %d: f32 ensemble vote %d, f64 vote %d", row, got[row], want[row])
		}
	}
}

// TestToF32RejectsUnknownClassifier pins the conversion error for
// classifier types without a float32 form.
func TestToF32RejectsUnknownClassifier(t *testing.T) {
	if _, err := ToF32(fixedClassifier{}); err == nil {
		t.Fatal("ToF32 accepted an unconvertible classifier")
	}
}

// TestNewUntrainedBuildsClassifier checks the exported untrained-model
// constructor used by serving tests and benchmarks.
func TestNewUntrainedBuildsClassifier(t *testing.T) {
	train, _ := tinySet(t)
	c, err := NewUntrained(Config{Arch: "convnet", WidthMult: 0.5}, train, xrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	probs := c.PredictProbs(train.X.SliceRows(0, 3))
	if probs.Dim(0) != 3 || probs.Dim(1) != train.NumClasses {
		t.Fatalf("probs shape %v, want [3,%d]", probs.Shape(), train.NumClasses)
	}
}
