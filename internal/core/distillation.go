package core

import (
	"tdfm/internal/loss"
	"tdfm/internal/tensor"
	"tdfm/internal/xrand"
)

// KnowledgeDistillation is the study's Knowledge Distillation
// representative: self distillation (§III-B4). A teacher with the same
// architecture as the student is trained first with cross entropy; the
// student is then trained on a mixture of the hard labels and the teacher's
// temperature-softened predictions:
//
//	L = (1-α)·CE(student, labels) + α·T²·KL(teacher_T ‖ student_T)
//
// At low mislabelling rates the teacher's soft targets act as a learned
// label smoother; at high rates the student inherits the teacher's fitted
// noise — the paper's "garbage in, garbage out" effect.
type KnowledgeDistillation struct {
	Alpha float64 // weight of the distilled term
	T     float64 // softmax temperature
}

var _ Technique = KnowledgeDistillation{}

// Name implements Technique.
func (KnowledgeDistillation) Name() string { return "kd" }

// Description implements Technique.
func (KnowledgeDistillation) Description() string {
	return "self distillation (teacher = student arch)"
}

// ModelsTrained implements Technique. Both the teacher and the student are
// trained; the paper reports ≈1.5× training overhead because the student
// converges faster than the teacher.
func (KnowledgeDistillation) ModelsTrained() int { return 2 }

// ModelsAtInference implements Technique. Only the student serves.
func (KnowledgeDistillation) ModelsAtInference() int { return 1 }

// Train fits the teacher, then distills into a freshly initialized student.
func (k KnowledgeDistillation) Train(cfg Config, ts TrainSet, rng *xrand.RNG) (Classifier, error) {
	alpha, temp := k.Alpha, k.T
	if alpha <= 0 {
		alpha = 0.7
	}
	if temp <= 0 {
		temp = 3
	}

	// Teacher: plain cross-entropy training.
	_, teacher, err := cfg.buildFor(ts.Data, rng.Split("teacher-init"))
	if err != nil {
		return nil, err
	}
	if err := trainLoop(teacher.net, ts.Data, loss.CrossEntropy{}, cfg, rng.Split("teacher-train"), nil, nil); err != nil {
		return nil, err
	}

	// Student: same architecture, fresh initialization (self distillation).
	student, bm, err := cfg.buildFor(ts.Data, rng.Split("student-init"))
	if err != nil {
		return nil, err
	}
	kd := loss.Distillation{Alpha: alpha, T: temp}
	kdLoss := distillLoss{kd: kd, teacher: teacher, temp: temp, classes: ts.Data.NumClasses}
	if err := trainLoop(bm.net, ts.Data, &kdLoss, cfg, rng.Split("student-train"),
		kdLoss.hookTargets(ts.Data.NumClasses), nil); err != nil {
		return nil, err
	}
	return student, nil
}

// distillLoss adapts the distillation loss to the Loss interface by
// querying the teacher for softened probabilities per batch. The trainLoop
// passes one-hot targets built from the batch labels; the teacher is
// consulted on the same inputs via the closure set in Train.
type distillLoss struct {
	kd      loss.Distillation
	teacher *builtModel
	temp    float64
	classes int

	// batchX is set by the batchTargets hook before each Forward.
	batchX *tensor.Tensor
}

var _ loss.Loss = (*distillLoss)(nil)

// Name implements loss.Loss.
func (d *distillLoss) Name() string { return d.kd.Name() }

// Forward computes the combined distillation loss. It needs the batch
// inputs to query the teacher; trainLoop arranges for targets to carry the
// batch via SetBatch (see below), so Forward re-derives teacher probs here.
func (d *distillLoss) Forward(logits, targets *tensor.Tensor) (float64, *tensor.Tensor) {
	if d.batchX == nil {
		// Without batch context fall back to plain CE (should not happen in
		// the training loop, but keeps the type safe to use standalone).
		return loss.CrossEntropy{}.Forward(logits, targets)
	}
	teacherLogits := d.teacherLogits(d.batchX)
	teacherProbs := loss.SoftmaxT(teacherLogits, d.temp)
	// The softened probabilities are fresh storage, so the teacher's
	// activations (including teacherLogits) can recycle immediately.
	if a := d.teacher.net.Arena(); a != nil {
		a.Reset()
	}
	return d.kd.ForwardKD(logits, targets, teacherProbs)
}

// teacherLogits runs the teacher network in inference mode.
func (d *distillLoss) teacherLogits(x *tensor.Tensor) *tensor.Tensor {
	return d.teacher.net.Forward(x, false)
}

// hookTargets returns a batchTargets function that records the batch for
// Forward and emits one-hot labels.
func (d *distillLoss) hookTargets(numClasses int) batchTargets {
	return func(bx *tensor.Tensor, labels []int) *tensor.Tensor {
		d.batchX = bx
		oh := tensor.New(len(labels), numClasses)
		for i, y := range labels {
			oh.Set(1, i, y)
		}
		return oh
	}
}
