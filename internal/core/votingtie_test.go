package core

import (
	"tdfm/internal/parallel"
	"tdfm/internal/tensor"
	"testing"
)

// fixedClf is a stub member that always emits the same probability row
// for every input row. All values in the tests are exact binary
// fractions, so summed masses are identical under any addition order and
// tie comparisons are exact, not epsilon-lucky.
type fixedClf struct{ row []float64 }

func (f fixedClf) PredictProbs(x *tensor.Tensor) *tensor.Tensor {
	n := x.Dim(0)
	out := tensor.New(n, len(f.row))
	for i := 0; i < n; i++ {
		out.SetRow(i, f.row)
	}
	return out
}

func (f fixedClf) Predict(x *tensor.Tensor) []int {
	return f.PredictProbs(x).ArgMaxRows()
}

// permutations returns every ordering of idx (ties must resolve the same
// under all member orders, so the tests try them all).
func permutations(idx []int) [][]int {
	if len(idx) <= 1 {
		return [][]int{append([]int(nil), idx...)}
	}
	var out [][]int
	for i := range idx {
		rest := make([]int, 0, len(idx)-1)
		rest = append(rest, idx[:i]...)
		rest = append(rest, idx[i+1:]...)
		for _, p := range permutations(rest) {
			out = append(out, append([]int{idx[i]}, p...))
		}
	}
	return out
}

// TestVotingTieBreaksToLowestClass locks the ensemble tie rule: with
// vote counts tied AND summed probability mass tied exactly, Predict
// must pick the lowest tied class index, for every member order and at
// any worker budget. PredictProbs (the mean) must argmax to the same
// class via ArgMaxRows' first-maximum rule.
func TestVotingTieBreaksToLowestClass(t *testing.T) {
	defer parallel.SetBudget(0)
	// Two members vote class 1, two vote class 2, and the per-class
	// summed mass is identical (1.5 vs 1.5): a full tie between classes
	// 1 and 2 that must resolve to 1.
	members := []Classifier{
		fixedClf{row: []float64{0.25, 0.5, 0.25}},
		fixedClf{row: []float64{0.25, 0.5, 0.25}},
		fixedClf{row: []float64{0.25, 0.25, 0.5}},
		fixedClf{row: []float64{0.25, 0.25, 0.5}},
	}
	x := tensor.New(3, 1, 1, 1) // 3 rows; contents are ignored by the stubs
	for _, workers := range []int{1, 8} {
		parallel.SetBudget(workers)
		for _, order := range permutations([]int{0, 1, 2, 3}) {
			permuted := make([]Classifier, len(order))
			for i, j := range order {
				permuted[i] = members[j]
			}
			v := &VotingClassifier{Members: permuted, Classes: 3}
			for row, got := range v.Predict(x) {
				if got != 1 {
					t.Fatalf("workers=%d order=%v row=%d: Predict = %d, want 1 (lowest tied class)",
						workers, order, row, got)
				}
			}
			// The mean probabilities tie at classes 1 and 2 (0.375 each);
			// argmax must return the first (lowest) maximum.
			for row, got := range v.PredictProbs(x).ArgMaxRows() {
				if got != 1 {
					t.Fatalf("workers=%d order=%v row=%d: PredictProbs argmax = %d, want 1",
						workers, order, row, got)
				}
			}
		}
	}
}

// TestVotingAllDistinctVotesTie: with every member voting a different
// class and identical masses, the lowest class index must win.
func TestVotingAllDistinctVotesTie(t *testing.T) {
	members := []Classifier{
		fixedClf{row: []float64{0.5, 0.25, 0.25}},
		fixedClf{row: []float64{0.25, 0.5, 0.25}},
		fixedClf{row: []float64{0.25, 0.25, 0.5}},
	}
	x := tensor.New(2, 1, 1, 1)
	for _, order := range permutations([]int{0, 1, 2}) {
		permuted := make([]Classifier, len(order))
		for i, j := range order {
			permuted[i] = members[j]
		}
		v := &VotingClassifier{Members: permuted, Classes: 3}
		for row, got := range v.Predict(x) {
			if got != 0 {
				t.Fatalf("order=%v row=%d: Predict = %d, want 0", order, row, got)
			}
		}
	}
}

// TestVotingMassBreaksVoteTie: when vote counts tie but one tied class
// carries strictly more summed mass, the heavier class wins even when it
// is the higher index (the mass rule precedes the index rule).
func TestVotingMassBreaksVoteTie(t *testing.T) {
	x := tensor.New(1, 1, 1, 1)
	heavy := []Classifier{
		fixedClf{row: []float64{0.125, 0.5, 0.375}},     // votes class 1
		fixedClf{row: []float64{0.0625, 0.375, 0.5625}}, // votes class 2, heavier mass on 2
	}
	for _, order := range permutations([]int{0, 1}) {
		permuted := make([]Classifier, len(order))
		for i, j := range order {
			permuted[i] = heavy[j]
		}
		v := &VotingClassifier{Members: permuted, Classes: 3}
		// Votes tie 1–1 between classes 1 and 2; mass is 0.875 vs
		// 0.9375, so class 2 must win despite the higher index.
		if got := v.Predict(x)[0]; got != 2 {
			t.Fatalf("order=%v: Predict = %d, want 2 (mass rule)", order, got)
		}
	}
}

// TestTallyVotesPanicsOnEmpty pins the documented contract: callers
// enforce their quorum floor before tallying.
func TestTallyVotesPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("TallyVotes on an empty member set did not panic")
		}
	}()
	TallyVotes(nil, 3)
}
