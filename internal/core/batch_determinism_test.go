package core

// The serving tier's micro-batcher stacks many requests into one forward
// pass and demuxes the rows afterwards; that is only sound if inference
// is batch-invariant at the bit level. This test pins the contract for
// every study architecture: PredictProbs over any chunking of the same
// rows — per-example, batch 3, the full batch — produces byte-identical
// probabilities at every tested worker count.

import (
	"math"
	"testing"

	"tdfm/internal/models"
	"tdfm/internal/tensor"
	"tdfm/internal/xrand"
)

func TestPredictProbsBatchInvariantAcrossModels(t *testing.T) {
	const (
		n, classes = 17, 3
		h, w       = 8, 8
	)
	oldPar := tensor.Parallelism()
	defer tensor.SetParallelism(oldPar)

	// One fixed 17-row input, deterministic but not uniform.
	x := tensor.New(n, 1, h, w)
	for i := range x.Data() {
		x.Data()[i] = float64(i%13)/13 - 0.5
	}

	for _, arch := range models.StudyModels() {
		arch := arch
		t.Run(arch, func(t *testing.T) {
			net, err := models.Build(arch, models.BuildConfig{
				InChannels: 1, Height: h, Width: w, NumClasses: classes,
				WidthMult: 0.25, RNG: xrand.New(7).Split(arch),
			})
			if err != nil {
				t.Fatal(err)
			}
			m := &builtModel{net: net, classes: classes}

			// Reference: strict per-example loop at a single worker.
			tensor.SetParallelism(1)
			ref := make([]float64, 0, n*classes)
			for i := 0; i < n; i++ {
				ref = append(ref, m.PredictProbs(x.SliceRows(i, i+1)).Data()...)
			}

			for _, par := range []int{1, 4} {
				tensor.SetParallelism(par)
				for _, bs := range []int{1, 3, 17} {
					got := make([]float64, 0, n*classes)
					for start := 0; start < n; start += bs {
						end := start + bs
						if end > n {
							end = n
						}
						got = append(got, m.PredictProbs(x.SliceRows(start, end)).Data()...)
					}
					if len(got) != len(ref) {
						t.Fatalf("batch %d workers %d: %d probs, want %d", bs, par, len(got), len(ref))
					}
					for j := range got {
						if math.Float64bits(got[j]) != math.Float64bits(ref[j]) {
							t.Fatalf("batch %d workers %d: probs[%d] = %v, per-example = %v (not bit-identical)",
								bs, par, j, got[j], ref[j])
						}
					}
				}
			}
		})
	}
}
