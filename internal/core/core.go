// Package core implements the paper's contribution: a common framework for
// training-data fault mitigation (TDFM) techniques, with the five
// representative techniques of the study —
//
//	Label Smoothing        (label relaxation, Lienen & Hüllermeier AAAI'21)
//	Label Correction       (meta label correction, Zheng et al. AAAI'21)
//	Robust Loss            (Active-Passive NCE+RCE, Ma et al. ICML'20)
//	Knowledge Distillation (self distillation, Zhang et al. ICCV'19)
//	Ensemble               (5-model majority vote, Chan et al. QRS'21)
//
// — plus the unprotected Baseline they are compared against. All techniques
// implement the Technique interface so the experiment harness can run the
// paper's golden/faulty protocol uniformly: train on clean data for the
// golden model, inject faults, train with a technique, and compare
// predictions on a shared test set.
package core

import (
	"context"
	"fmt"

	"tdfm/internal/data"
	"tdfm/internal/models"
	"tdfm/internal/nn"
	"tdfm/internal/tensor"
	"tdfm/internal/xrand"
)

// Classifier is a trained model ready for inference.
type Classifier interface {
	// PredictProbs returns class probabilities of shape [N, K].
	PredictProbs(x *tensor.Tensor) *tensor.Tensor
	// Predict returns the argmax class per input row.
	Predict(x *tensor.Tensor) []int
}

// TrainSet bundles a (possibly fault-injected) training dataset with the
// indices that are known clean. The experiment protocol reserves the clean
// indices from fault injection (§III-B2); only the Label Correction
// technique consumes them, every other technique ignores the field.
type TrainSet struct {
	Data         *data.Dataset
	CleanIndices []int
}

// Config controls a technique's training run. Zero values for Epochs,
// BatchSize, and LR are replaced by per-architecture defaults from the
// model registry.
type Config struct {
	// Arch is the model architecture name (see package models).
	Arch string
	// Epochs, BatchSize, LR override the architecture defaults when > 0.
	Epochs    int
	BatchSize int
	LR        float64
	// WidthMult scales model capacity; 0 means 1.0.
	WidthMult float64
	// Ctx, when non-nil, cancels the training run cooperatively: the train
	// loop checks it between batches and returns its error (the experiment
	// runner derives it from per-cell timeouts and CLI interrupts).
	// Cancellation never corrupts results — a cancelled run returns an
	// error, never a partially trained classifier.
	Ctx context.Context
	// Tag is a diagnostic label for this run (the experiment runner sets it
	// to the cell key). It scopes chaos faultpoints and log lines to a cell
	// and never influences the computed results.
	Tag string
}

// withDefaults resolves zero fields against the architecture registry.
func (c Config) withDefaults() (Config, models.Info, error) {
	info, err := models.Get(c.Arch)
	if err != nil {
		return c, models.Info{}, err
	}
	if c.Epochs <= 0 {
		c.Epochs = info.DefaultEpochs
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 32
	}
	if c.LR <= 0 {
		c.LR = info.DefaultLR
	}
	if c.WidthMult <= 0 {
		c.WidthMult = 1
	}
	return c, info, nil
}

// buildFor constructs the configured architecture sized for the dataset.
func (c Config) buildFor(ds *data.Dataset, rng *xrand.RNG) (Classifier, *builtModel, error) {
	resolved, _, err := c.withDefaults()
	if err != nil {
		return nil, nil, err
	}
	net, err := models.Build(resolved.Arch, models.BuildConfig{
		InChannels: ds.Channels(),
		Height:     ds.Height(),
		Width:      ds.Width(),
		NumClasses: ds.NumClasses,
		WidthMult:  resolved.WidthMult,
		RNG:        rng,
	})
	if err != nil {
		return nil, nil, err
	}
	// Every built network gets its own allocation arena: the training loop
	// recycles activations after each optimizer step, inference after each
	// chunk (DESIGN.md §10). With pooling disabled the arena is inert and
	// allocation behaviour is exactly the historical per-call path.
	nn.InstallArena(net, tensor.NewArena())
	bm := &builtModel{net: net, cfg: resolved, classes: ds.NumClasses,
		inC: ds.Channels(), inH: ds.Height(), inW: ds.Width()}
	return bm, bm, nil
}

// Technique is a training-data fault mitigation approach.
type Technique interface {
	// Name returns the short identifier used in reports ("ls", "ens", ...).
	Name() string
	// Description returns the human-readable technique description.
	Description() string
	// Train fits a classifier on the (possibly faulty) training set.
	Train(cfg Config, ts TrainSet, rng *xrand.RNG) (Classifier, error)
	// ModelsTrained returns how many full model trainings one Train call
	// performs (drives the paper's §IV-E training-overhead accounting).
	ModelsTrained() int
	// ModelsAtInference returns how many models each prediction consults
	// (drives the §IV-E inference-overhead accounting).
	ModelsAtInference() int
}

// Registry returns the six study techniques (baseline plus the five TDFM
// approaches) with the paper's hyperparameters, keyed by short name.
func Registry() map[string]Technique {
	return map[string]Technique{
		"base": Baseline{},
		"ls":   LabelSmoothing{Alpha: 0.25},
		"lc":   NewLabelCorrection(0.1),
		"rl":   RobustLoss{Alpha: 1, Beta: 1},
		"kd":   KnowledgeDistillation{Alpha: 0.7, T: 3},
		"ens":  NewEnsemble(models.EnsembleMembers()),
	}
}

// StudyOrder lists technique short names in the order used by the paper's
// tables (Base, LS, LC, RL, KD, Ens).
func StudyOrder() []string { return []string{"base", "ls", "lc", "rl", "kd", "ens"} }

// Get returns a study technique by short name.
func Get(name string) (Technique, error) {
	t, ok := Registry()[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown technique %q (have %v)", name, StudyOrder())
	}
	return t, nil
}
