package core

import (
	"context"
	"errors"
	"testing"

	"tdfm/internal/chaos"
	"tdfm/internal/xrand"
)

func TestTrainLoopRecoversFromTransientNaN(t *testing.T) {
	train, test := tinySet(t)
	cfg := fastConfig()
	cfg.Tag = "guard-test-cell"

	// Clean reference run.
	ref, err := Baseline{}.Train(cfg, TrainSet{Data: train}, xrand.New(21))
	if err != nil {
		t.Fatal(err)
	}
	refPred := ref.Predict(test.X)

	// One injected NaN on the first batch: attempt 0 diverges, the recovery
	// attempt must run clean and return a working classifier.
	run := func() []int {
		chaos.Reset()
		defer chaos.Reset()
		chaos.Arm("core.trainLoop.loss", cfg.Tag, chaos.Action{NaN: true, Times: 1})
		c, err := Baseline{}.Train(cfg, TrainSet{Data: train}, xrand.New(21))
		if err != nil {
			t.Fatalf("recovery failed: %v", err)
		}
		if chaos.Firings() != 1 {
			t.Fatalf("fault fired %d times, want 1", chaos.Firings())
		}
		return c.Predict(test.X)
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("recovered training is not deterministic across runs")
		}
	}
	// The recovered run restarts from the same initial weights with a fresh
	// shuffle stream and backed-off LR — it must differ from the attempt-0
	// stream only through that recovery path, and still produce predictions
	// for every test sample.
	if len(a) != len(refPred) {
		t.Fatalf("recovered run predicted %d samples, clean run %d", len(a), len(refPred))
	}
}

func TestTrainLoopPersistentDivergenceReturnsErrDiverged(t *testing.T) {
	train, _ := tinySet(t)
	cfg := fastConfig()
	cfg.Tag = "diverge-forever"
	chaos.Reset()
	defer chaos.Reset()
	// Every attempt's loss is corrupted, so recovery must exhaust and the
	// run must be declared divergent.
	chaos.Arm("core.trainLoop.loss", cfg.Tag, chaos.Action{NaN: true})
	_, err := Baseline{}.Train(cfg, TrainSet{Data: train}, xrand.New(23))
	if !errors.Is(err, ErrDiverged) {
		t.Fatalf("err = %v, want ErrDiverged", err)
	}
	// One firing per attempt: initial + maxRecoveries restarts.
	if got, want := chaos.Firings(), 1+maxRecoveries; got != want {
		t.Fatalf("fault fired %d times, want %d (one per attempt)", got, want)
	}
}

func TestTrainLoopInjectedPanicPropagates(t *testing.T) {
	train, _ := tinySet(t)
	cfg := fastConfig()
	cfg.Tag = "panic-cell"
	chaos.Reset()
	defer chaos.Reset()
	chaos.Arm("core.trainLoop.loss", cfg.Tag, chaos.Action{Panic: true, Times: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("injected panic did not propagate out of trainLoop")
		}
	}()
	Baseline{}.Train(cfg, TrainSet{Data: train}, xrand.New(25)) //nolint:errcheck
}

func TestTrainLoopCancelledContext(t *testing.T) {
	train, _ := tinySet(t)
	cfg := fastConfig()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg.Ctx = ctx
	_, err := Baseline{}.Train(cfg, TrainSet{Data: train}, xrand.New(27))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestTrainLoopChaosScopedByTag(t *testing.T) {
	train, _ := tinySet(t)
	cfg := fastConfig()
	cfg.Tag = "cell-A"
	chaos.Reset()
	defer chaos.Reset()
	// A fault armed for a different cell must not fire for this one.
	chaos.Arm("core.trainLoop.loss", "cell-B", chaos.Action{NaN: true})
	if _, err := (Baseline{}).Train(cfg, TrainSet{Data: train}, xrand.New(29)); err != nil {
		t.Fatalf("unrelated fault disturbed training: %v", err)
	}
	if chaos.Firings() != 0 {
		t.Fatalf("fault for cell-B fired %d times against cell-A", chaos.Firings())
	}
}
