package core

import (
	"tdfm/internal/loss"
	"tdfm/internal/xrand"
)

// Baseline trains the configured architecture with plain cross entropy and
// no mitigation. It is the reference point every TDFM technique is compared
// against (the "faulty model without any TDFM techniques applied" of
// §III-C).
type Baseline struct{}

var _ Technique = Baseline{}

// Name implements Technique.
func (Baseline) Name() string { return "base" }

// Description implements Technique.
func (Baseline) Description() string { return "unprotected cross-entropy baseline" }

// ModelsTrained implements Technique.
func (Baseline) ModelsTrained() int { return 1 }

// ModelsAtInference implements Technique.
func (Baseline) ModelsAtInference() int { return 1 }

// Train fits one model with cross entropy.
func (Baseline) Train(cfg Config, ts TrainSet, rng *xrand.RNG) (Classifier, error) {
	c, bm, err := cfg.buildFor(ts.Data, rng.Split("init"))
	if err != nil {
		return nil, err
	}
	if err := trainLoop(bm.net, ts.Data, loss.CrossEntropy{}, cfg, rng.Split("train"), nil, nil); err != nil {
		return nil, err
	}
	return c, nil
}

// LabelSmoothing is the study's Label Smoothing representative: label
// relaxation (§III-B1). Alpha is the relaxation budget; the technique
// reduces the distance between correct and incorrect label encodings so a
// mislabelled example produces a bounded gradient.
//
// Setting Classic selects the classic fixed-target smoothing
// q = (1-α)·y + α/K instead of label relaxation; the repository's ablation
// benchmarks compare the two (the paper discusses both in §III-B1 and
// selects relaxation as the representative).
type LabelSmoothing struct {
	Alpha   float64
	Classic bool
}

var _ Technique = LabelSmoothing{}

// Name implements Technique.
func (LabelSmoothing) Name() string { return "ls" }

// Description implements Technique.
func (l LabelSmoothing) Description() string {
	return "label smoothing via label relaxation"
}

// ModelsTrained implements Technique.
func (LabelSmoothing) ModelsTrained() int { return 1 }

// ModelsAtInference implements Technique.
func (LabelSmoothing) ModelsAtInference() int { return 1 }

// Train fits one model with the label-relaxation loss.
func (l LabelSmoothing) Train(cfg Config, ts TrainSet, rng *xrand.RNG) (Classifier, error) {
	alpha := l.Alpha
	if alpha <= 0 {
		alpha = 0.1
	}
	c, bm, err := cfg.buildFor(ts.Data, rng.Split("init"))
	if err != nil {
		return nil, err
	}
	var lossFn loss.Loss = loss.LabelRelaxation{Alpha: alpha}
	if l.Classic {
		lossFn = loss.SmoothedCE{Alpha: alpha}
	}
	if err := trainLoop(bm.net, ts.Data, lossFn, cfg, rng.Split("train"), nil, nil); err != nil {
		return nil, err
	}
	return c, nil
}

// RobustLoss is the study's Robust Loss representative: the Active-Passive
// Loss α·NCE + β·RCE (§III-B3). The active NCE term fits the target class
// robustly; the passive RCE term counteracts the underfitting NCE induces —
// except on shallow models and small datasets, where the paper (and this
// reproduction) finds the softened loss hurts.
type RobustLoss struct {
	Alpha, Beta float64
}

var _ Technique = RobustLoss{}

// Name implements Technique.
func (RobustLoss) Name() string { return "rl" }

// Description implements Technique.
func (RobustLoss) Description() string { return "robust loss (APL: NCE+RCE)" }

// ModelsTrained implements Technique.
func (RobustLoss) ModelsTrained() int { return 1 }

// ModelsAtInference implements Technique.
func (RobustLoss) ModelsAtInference() int { return 1 }

// Train fits one model with the APL loss.
func (r RobustLoss) Train(cfg Config, ts TrainSet, rng *xrand.RNG) (Classifier, error) {
	alpha, beta := r.Alpha, r.Beta
	if alpha <= 0 {
		alpha = 1
	}
	if beta <= 0 {
		beta = 1
	}
	c, bm, err := cfg.buildFor(ts.Data, rng.Split("init"))
	if err != nil {
		return nil, err
	}
	lossFn := loss.NewActivePassive(alpha, beta)
	if err := trainLoop(bm.net, ts.Data, lossFn, cfg, rng.Split("train"), nil, nil); err != nil {
		return nil, err
	}
	return c, nil
}
