package core

import (
	"fmt"
	"sync"

	"tdfm/internal/data"
	"tdfm/internal/loss"
	"tdfm/internal/nn"
	"tdfm/internal/tensor"
	"tdfm/internal/xrand"
)

// f32Model serves a float32 inference twin of a trained network as a
// Classifier, with the same chunked-inference contract as the float64
// model (chunk boundaries never influence the result).
type f32Model struct {
	net     *nn.F32Net
	classes int
	// src is the float64 model the twin was converted from. It stays
	// referenced so the twin remains serializable: Export publishes the
	// f64 source of truth (tagged f32) and Import re-derives the twin,
	// making the f64→f32 round trip bit-exact.
	src *builtModel
	// mu serializes inference for the same reason builtModel's does: the
	// twin's arena recycles activations and is not safe for concurrent
	// use, and serving fans concurrent requests out to shared members.
	mu sync.Mutex
}

var _ Classifier = (*f32Model)(nil)

// PredictProbs runs float32 inference and returns softmax probabilities.
// The softmax itself runs in float64 over the (exactly converted) float32
// logits; softmax is monotone, so each row's argmax equals the float32
// logit argmax.
func (m *f32Model) PredictProbs(x *tensor.Tensor) *tensor.Tensor {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := x.Dim(0)
	if n <= predictBatch {
		return loss.Softmax(m.net.Forward(x))
	}
	out := tensor.New(n, m.classes)
	for start := 0; start < n; start += predictBatch {
		end := start + predictBatch
		if end > n {
			end = n
		}
		probs := loss.Softmax(m.net.Forward(x.SliceRows(start, end)))
		copy(out.Data()[start*m.classes:end*m.classes], probs.Data())
	}
	return out
}

// Predict returns argmax classes.
func (m *f32Model) Predict(x *tensor.Tensor) []int {
	return m.PredictProbs(x).ArgMaxRows()
}

// ToF32 converts a trained classifier to float32 inference storage:
// single networks become float32 twins (nn.NewF32Net), voting ensembles
// convert member by member. The original classifier is unchanged and
// remains the float64 source of truth. It returns an error for
// classifier types that cannot be converted (the serving layer surfaces
// it per member).
func ToF32(c Classifier) (Classifier, error) {
	switch v := c.(type) {
	case *builtModel:
		net, err := nn.NewF32Net(v.net)
		if err != nil {
			return nil, err
		}
		return &f32Model{net: net, classes: v.classes, src: v}, nil
	case *VotingClassifier:
		members := make([]Classifier, len(v.Members))
		for i, m := range v.Members {
			fm, err := ToF32(m)
			if err != nil {
				return nil, fmt.Errorf("core: ToF32 ensemble member %d: %w", i, err)
			}
			members[i] = fm
		}
		return &VotingClassifier{Members: members, Classes: v.Classes}, nil
	default:
		return nil, fmt.Errorf("core: ToF32: unsupported classifier type %T", c)
	}
}

// NewUntrained builds the configured architecture sized for ds with
// freshly initialized (untrained) weights and returns it as a
// Classifier. Serving tests and benchmarks use it to exercise the
// prediction path of real architectures without paying for training.
func NewUntrained(cfg Config, ds *data.Dataset, rng *xrand.RNG) (Classifier, error) {
	c, _, err := cfg.buildFor(ds, rng)
	return c, err
}
