package core

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"

	"tdfm/internal/models"
	"tdfm/internal/nn"
	"tdfm/internal/tensor"
	"tdfm/internal/xrand"
)

// ErrUnsupportedClassifier marks a classifier type that cannot be
// serialized by Export (or reconstructed by Import): the model registry
// stores networks as (architecture, weight snapshot) pairs, so only
// classifiers built from registry architectures round-trip. Match with
// errors.Is.
var ErrUnsupportedClassifier = errors.New("core: classifier type cannot be serialized")

// Saved precision tags (SavedClassifier.Precision).
const (
	// SavedF64 marks an artifact served with the trained float64 weights.
	SavedF64 = "f64"
	// SavedF32 marks an artifact whose source classifier was a ToF32
	// inference twin; Import re-derives the twin from the stored float64
	// weights, so the round trip is bit-exact.
	SavedF32 = "f32"
)

// Saved classifier kinds (SavedClassifier.Kind).
const (
	// SavedSingle is a single-network classifier.
	SavedSingle = "single"
	// SavedEnsemble is a majority-vote ensemble (VotingClassifier).
	SavedEnsemble = "ensemble"
)

// SavedMember is one serialized network: its registry architecture name
// and full weight snapshot (parameters plus batch-norm running stats).
type SavedMember struct {
	// Arch is the model-registry architecture name the network was built
	// from.
	Arch string
	// Snapshot holds the trained weights.
	Snapshot *nn.Snapshot
}

// SavedClassifier is the serializable form of a trained classifier: the
// wire format of model-registry artifacts (internal/registry). It always
// stores float64 weights — the source of truth — plus the metadata needed
// to rebuild the exact network (input shape, class count, width
// multiplier) and the precision the classifier served at.
type SavedClassifier struct {
	// Kind is SavedSingle or SavedEnsemble.
	Kind string
	// Precision is SavedF64 or SavedF32 (the serving storage the source
	// classifier used; weights are stored in float64 either way).
	Precision string
	// Members holds one entry per network (exactly one for SavedSingle).
	Members []SavedMember
	// Classes is the label-space size.
	Classes int
	// Channels, Height, Width are the per-sample input dimensions the
	// networks were built for.
	Channels, Height, Width int
	// WidthMult is the capacity multiplier the networks were built with.
	WidthMult float64
}

// Export captures a trained classifier in its serializable form. It
// supports the classifiers the techniques produce — single networks,
// voting ensembles of networks — and their ToF32 inference twins (the
// float64 source weights are stored, tagged SavedF32, and Import
// re-derives the twin). Any other classifier type returns an error
// wrapping ErrUnsupportedClassifier.
func Export(c Classifier) (*SavedClassifier, error) {
	switch v := c.(type) {
	case *builtModel:
		return &SavedClassifier{
			Kind:      SavedSingle,
			Precision: SavedF64,
			Members:   []SavedMember{exportNet(v)},
			Classes:   v.classes,
			Channels:  v.inC, Height: v.inH, Width: v.inW,
			WidthMult: v.cfg.WidthMult,
		}, nil
	case *f32Model:
		if v.src == nil {
			return nil, fmt.Errorf("core: exporting float32 twin without a float64 source: %w", ErrUnsupportedClassifier)
		}
		s, err := Export(v.src)
		if err != nil {
			return nil, err
		}
		s.Precision = SavedF32
		return s, nil
	case *VotingClassifier:
		if len(v.Members) == 0 {
			return nil, fmt.Errorf("core: exporting empty ensemble: %w", ErrUnsupportedClassifier)
		}
		out := &SavedClassifier{Kind: SavedEnsemble, Precision: SavedF64, Classes: v.Classes}
		for i, m := range v.Members {
			ms, err := Export(m)
			if err != nil {
				return nil, fmt.Errorf("core: exporting ensemble member %d: %w", i, err)
			}
			if ms.Kind != SavedSingle {
				return nil, fmt.Errorf("core: ensemble member %d is itself an ensemble: %w", i, ErrUnsupportedClassifier)
			}
			if i == 0 {
				out.Precision = ms.Precision
				out.Channels, out.Height, out.Width = ms.Channels, ms.Height, ms.Width
				out.WidthMult = ms.WidthMult
			} else if ms.Precision != out.Precision {
				return nil, fmt.Errorf("core: ensemble mixes %s and %s members: %w",
					out.Precision, ms.Precision, ErrUnsupportedClassifier)
			}
			out.Members = append(out.Members, ms.Members[0])
		}
		return out, nil
	default:
		return nil, fmt.Errorf("core: exporting %T: %w", c, ErrUnsupportedClassifier)
	}
}

// exportNet snapshots one built network.
func exportNet(m *builtModel) SavedMember {
	m.mu.Lock()
	defer m.mu.Unlock()
	return SavedMember{Arch: m.cfg.Arch, Snapshot: nn.TakeSnapshot(m.net)}
}

// Import rebuilds a classifier from its serialized form: every member's
// architecture is rebuilt from the model registry at the saved input
// shape and its weights restored from the snapshot, so the imported
// classifier's predictions are byte-identical to the exported one's. A
// SavedF32 artifact is imported as its float32 inference twin (ToF32 of
// the restored float64 networks — the exact conversion the source
// classifier went through). Unknown kinds, precisions, and architectures
// return errors wrapping ErrUnsupportedClassifier.
func Import(s *SavedClassifier) (Classifier, error) {
	switch s.Precision {
	case SavedF64, SavedF32:
	default:
		return nil, fmt.Errorf("core: importing precision %q: %w", s.Precision, ErrUnsupportedClassifier)
	}
	var c Classifier
	switch s.Kind {
	case SavedSingle:
		if len(s.Members) != 1 {
			return nil, fmt.Errorf("core: single-model artifact has %d members: %w", len(s.Members), ErrUnsupportedClassifier)
		}
		m, err := importNet(s, 0)
		if err != nil {
			return nil, err
		}
		c = m
	case SavedEnsemble:
		if len(s.Members) == 0 {
			return nil, fmt.Errorf("core: ensemble artifact has no members: %w", ErrUnsupportedClassifier)
		}
		members := make([]Classifier, len(s.Members))
		for i := range s.Members {
			m, err := importNet(s, i)
			if err != nil {
				return nil, fmt.Errorf("core: importing ensemble member %d: %w", i, err)
			}
			members[i] = m
		}
		c = &VotingClassifier{Members: members, Classes: s.Classes}
	default:
		return nil, fmt.Errorf("core: importing kind %q: %w", s.Kind, ErrUnsupportedClassifier)
	}
	if s.Precision == SavedF32 {
		return ToF32(c)
	}
	return c, nil
}

// importNet rebuilds member i of s and restores its weights.
func importNet(s *SavedClassifier, i int) (*builtModel, error) {
	m := s.Members[i]
	if m.Snapshot == nil {
		return nil, fmt.Errorf("core: member %d (%s) has no weight snapshot: %w", i, m.Arch, ErrUnsupportedClassifier)
	}
	widthMult := s.WidthMult
	if widthMult <= 0 {
		widthMult = 1
	}
	// The init RNG only seeds weights that Restore immediately overwrites;
	// a fixed stream keeps Import deterministic without threading a seed.
	net, err := models.Build(m.Arch, models.BuildConfig{
		InChannels: s.Channels,
		Height:     s.Height,
		Width:      s.Width,
		NumClasses: s.Classes,
		WidthMult:  widthMult,
		RNG:        xrand.New(1).Split("import-" + m.Arch),
	})
	if err != nil {
		return nil, fmt.Errorf("core: rebuilding %s (%v): %w", m.Arch, err, ErrUnsupportedClassifier)
	}
	if err := m.Snapshot.Restore(net); err != nil {
		return nil, fmt.Errorf("core: restoring %s weights: %w", m.Arch, err)
	}
	nn.InstallArena(net, tensor.NewArena())
	return &builtModel{
		net: net, classes: s.Classes,
		cfg: Config{Arch: m.Arch, WidthMult: widthMult},
		inC: s.Channels, inH: s.Height, inW: s.Width,
	}, nil
}

// Encode writes the saved classifier in gob format.
func (s *SavedClassifier) Encode(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(s); err != nil {
		return fmt.Errorf("core: encoding saved classifier: %w", err)
	}
	return nil
}

// DecodeSaved reads a saved classifier in gob format.
func DecodeSaved(r io.Reader) (*SavedClassifier, error) {
	var s SavedClassifier
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("core: decoding saved classifier: %w", err)
	}
	return &s, nil
}

// ReleaseArenas returns every per-network activation arena held by the
// classifier to the global buffer pool. Callers retire a classifier with
// it — after a model hot-swap drains the old version — so the retired
// networks' pooled buffers are reusable by the new version immediately
// instead of waiting for the GC. The classifier remains usable; its
// arenas simply start cold. Unknown classifier types are a no-op.
func ReleaseArenas(c Classifier) {
	switch v := c.(type) {
	case *builtModel:
		v.mu.Lock()
		if a := v.net.Arena(); a != nil {
			a.Release()
		}
		v.mu.Unlock()
	case *f32Model:
		v.mu.Lock()
		if a := v.net.Arena(); a != nil {
			a.Release()
		}
		v.mu.Unlock()
		if v.src != nil {
			ReleaseArenas(v.src)
		}
	case *VotingClassifier:
		for _, m := range v.Members {
			ReleaseArenas(m)
		}
	}
}
