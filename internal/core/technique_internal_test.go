package core

import (
	"bytes"
	"math"
	"testing"

	"tdfm/internal/data"
	"tdfm/internal/loss"
	"tdfm/internal/nn"
	"tdfm/internal/tensor"
	"tdfm/internal/xrand"
)

func TestBuiltModelSnapshotRoundTrip(t *testing.T) {
	train, test := tinySet(t)
	c, err := Baseline{}.Train(fastConfig(), TrainSet{Data: train}, xrand.New(21))
	if err != nil {
		t.Fatal(err)
	}
	snap, ok := c.(Snapshotter)
	if !ok {
		t.Fatal("builtModel must implement Snapshotter")
	}
	var buf bytes.Buffer
	if err := snap.Snapshot().Encode(&buf); err != nil {
		t.Fatal(err)
	}

	// A fresh, untrained model restored from the snapshot must agree with
	// the trained model on every test prediction.
	fresh, _, err := fastConfig().buildFor(train, xrand.New(99))
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := nn.DecodeSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.(Snapshotter).RestoreSnapshot(decoded); err != nil {
		t.Fatal(err)
	}
	p1, p2 := c.Predict(test.X), fresh.Predict(test.X)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("restored model disagrees with original")
		}
	}
}

func TestDistillLossFallsBackToCE(t *testing.T) {
	d := &distillLoss{kd: loss.Distillation{Alpha: 0.5, T: 2}, classes: 3}
	logits := tensor.FromSlice([]float64{1, 0, -1}, 1, 3)
	targets := data.OneHot([]int{0}, 3)
	l1, g1 := d.Forward(logits, targets)
	l2, g2 := loss.CrossEntropy{}.Forward(logits, targets)
	if math.Abs(l1-l2) > 1e-12 || !g1.Equal(g2, 0) {
		t.Fatal("distillLoss without batch context must reduce to CE")
	}
}

func TestSecondaryFeatureLayout(t *testing.T) {
	sec := newSecondary(3, 8, xrand.New(1))
	logits := tensor.FromSlice([]float64{5, 0, 0, 0, 5, 0}, 2, 3)
	feats := sec.features(logits, []int{2, 0})
	if feats.Dim(0) != 2 || feats.Dim(1) != 6 {
		t.Fatalf("feature shape %v", feats.Shape())
	}
	// First half of each row: softmax of the logits (dominated by the large
	// entry); second half: one-hot of the given label.
	if feats.At(0, 0) < 0.9 {
		t.Fatalf("softmax feature wrong: %v", feats.At(0, 0))
	}
	if feats.At(0, 3+2) != 1 || feats.At(1, 3+0) != 1 {
		t.Fatal("label one-hot misplaced")
	}
	if feats.At(0, 3) != 0 || feats.At(0, 4) != 0 {
		t.Fatal("non-label slots must be zero")
	}
}

func TestSecondaryCorrectSumsToOne(t *testing.T) {
	sec := newSecondary(4, 8, xrand.New(2))
	logits := tensor.New(3, 4)
	xrand.New(3).FillNormal(logits.Data(), 0, 1)
	out := sec.correct(logits, []int{0, 1, 2})
	for r := 0; r < 3; r++ {
		s := 0.0
		for c := 0; c < 4; c++ {
			s += out.At(r, c)
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("corrected row %d sums to %v", r, s)
		}
	}
}

func TestSynthFlipDefaults(t *testing.T) {
	lc := &LabelCorrection{SynthFlip: -1}
	if lc.synthFlip() != 0.35 {
		t.Fatal("bad SynthFlip should fall back to default")
	}
	lc = &LabelCorrection{SynthFlip: 0.2}
	if lc.synthFlip() != 0.2 {
		t.Fatal("valid SynthFlip ignored")
	}
}

func TestPredictBatching(t *testing.T) {
	// A test set larger than predictBatch must be handled in chunks with no
	// dropped rows.
	train, _ := tinySet(t)
	c, err := Baseline{}.Train(fastConfig(), TrainSet{Data: train}, xrand.New(23))
	if err != nil {
		t.Fatal(err)
	}
	big := tensor.New(predictBatch+17, 1, 12, 12)
	xrand.New(24).FillNormal(big.Data(), 0, 1)
	pred := c.Predict(big)
	if len(pred) != predictBatch+17 {
		t.Fatalf("%d predictions", len(pred))
	}
	probs := c.PredictProbs(big)
	if probs.Dim(0) != predictBatch+17 {
		t.Fatalf("probs rows %d", probs.Dim(0))
	}
	// Probabilities must be valid per row.
	for r := 0; r < probs.Dim(0); r++ {
		s := 0.0
		for k := 0; k < probs.Dim(1); k++ {
			v := probs.At(r, k)
			if v < 0 || v > 1 {
				t.Fatalf("prob out of range: %v", v)
			}
			s += v
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("row %d sums to %v", r, s)
		}
	}
}

func TestLabelSmoothingClassicVariant(t *testing.T) {
	train, test := tinySet(t)
	classic := LabelSmoothing{Alpha: 0.2, Classic: true}
	relax := LabelSmoothing{Alpha: 0.2}
	c1, err := classic.Train(fastConfig(), TrainSet{Data: train}, xrand.New(25))
	if err != nil {
		t.Fatal(err)
	}
	c2, err := relax.Train(fastConfig(), TrainSet{Data: train}, xrand.New(25))
	if err != nil {
		t.Fatal(err)
	}
	// Both variants must learn; they will generally differ somewhere.
	a1 := Accuracy(c1, test)
	a2 := Accuracy(c2, test)
	if a1 < 0.5 || a2 < 0.5 {
		t.Fatalf("smoothing variants failed to learn: %.2f / %.2f", a1, a2)
	}
}
