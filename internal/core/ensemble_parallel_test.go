package core

import (
	"testing"

	"tdfm/internal/parallel"
	"tdfm/internal/xrand"
)

// smallEnsemble keeps concurrency tests fast: three light members.
func smallEnsemble() *Ensemble {
	return NewEnsemble([]string{"convnet", "vgg11", "resnet18"})
}

// TestEnsembleConcurrentMatchesSerial is the determinism contract for
// concurrent member training: the same seed must produce bit-identical
// predictions whether members train serially (budget 1) or concurrently
// (budget 8), because RNG streams are split before any fan-out.
func TestEnsembleConcurrentMatchesSerial(t *testing.T) {
	train, test := tinySet(t)
	cfg := fastConfig()
	cfg.Epochs = 3

	parallel.SetBudget(1)
	serialClf, err := smallEnsemble().Train(cfg, TrainSet{Data: train}, xrand.New(77))
	if err != nil {
		t.Fatal(err)
	}
	serialPred := serialClf.Predict(test.X)

	parallel.SetBudget(8)
	defer parallel.SetBudget(0)
	parClf, err := smallEnsemble().Train(cfg, TrainSet{Data: train}, xrand.New(77))
	if err != nil {
		t.Fatal(err)
	}
	parPred := parClf.Predict(test.X)

	for i := range serialPred {
		if serialPred[i] != parPred[i] {
			t.Fatalf("prediction %d differs: serial %d vs concurrent %d", i, serialPred[i], parPred[i])
		}
	}
}

// TestEnsembleTrainConcurrently exercises the concurrent path under the
// race detector: many goroutines share the budget while two ensembles
// train at once against the same read-only dataset.
func TestEnsembleTrainConcurrently(t *testing.T) {
	train, test := tinySet(t)
	cfg := fastConfig()
	cfg.Epochs = 2
	parallel.SetBudget(8)
	defer parallel.SetBudget(0)

	type result struct {
		pred []int
		err  error
	}
	results := make([]result, 2)
	done := make(chan int, len(results))
	for i := range results {
		go func(i int) {
			clf, err := smallEnsemble().Train(cfg, TrainSet{Data: train}, xrand.New(5))
			if err == nil {
				results[i] = result{pred: clf.Predict(test.X)}
			} else {
				results[i] = result{err: err}
			}
			done <- i
		}(i)
	}
	for range results {
		<-done
	}
	for i, r := range results {
		if r.err != nil {
			t.Fatalf("concurrent ensemble %d: %v", i, r.err)
		}
	}
	// Same seed, so both concurrent trainings must agree exactly.
	for i := range results[0].pred {
		if results[0].pred[i] != results[1].pred[i] {
			t.Fatalf("concurrent ensembles diverged at prediction %d", i)
		}
	}
}
