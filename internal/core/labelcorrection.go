package core

import (
	"fmt"

	"tdfm/internal/data"
	"tdfm/internal/loss"
	"tdfm/internal/nn"
	"tdfm/internal/opt"
	"tdfm/internal/tensor"
	"tdfm/internal/xrand"
)

// LabelCorrection is the study's Label Correction representative: meta
// label correction (§III-B2). Two models train concurrently:
//
//   - the primary model performs the classification task;
//   - a secondary multilayer perceptron consumes the primary's logits
//     concatenated with the (possibly noisy) one-hot label and emits a
//     corrected soft label the primary trains against.
//
// The secondary is trained on a clean subset of the training data (fraction
// γ, reserved from fault injection) augmented with synthetic label flips so
// it learns the correction mapping. This is the practical first-order
// variant of Zheng et al.'s bi-level formulation; DESIGN.md §5 documents
// the deviation. The properties the paper's findings rest on are preserved:
// a clean subset is required, a second model trains concurrently (high
// overhead), and the MLP secondary degrades as the class count grows
// (GTSRB's 43 classes, §IV-D).
type LabelCorrection struct {
	// Gamma is the fraction of training data reserved as the clean subset
	// when the TrainSet does not already carry clean indices.
	Gamma float64
	// HiddenDim bounds the secondary MLP's capacity; the paper attributes
	// LC's failure on many-class datasets to this bound.
	HiddenDim int
	// SynthFlip is the probability of synthesizing a wrong label when
	// training the secondary on the clean subset.
	SynthFlip float64
}

var _ Technique = (*LabelCorrection)(nil)

// NewLabelCorrection returns label correction with clean fraction gamma and
// the study's secondary-model capacity.
func NewLabelCorrection(gamma float64) *LabelCorrection {
	return &LabelCorrection{Gamma: gamma, HiddenDim: 24, SynthFlip: 0.35}
}

// Name implements Technique.
func (*LabelCorrection) Name() string { return "lc" }

// Description implements Technique.
func (*LabelCorrection) Description() string {
	return "meta label correction (primary + secondary MLP)"
}

// ModelsTrained implements Technique: the primary plus the concurrently
// trained secondary.
func (*LabelCorrection) ModelsTrained() int { return 2 }

// ModelsAtInference implements Technique: only the primary serves.
func (*LabelCorrection) ModelsAtInference() int { return 1 }

// secondary is the correction MLP: [logits ‖ one-hot label] → soft label.
type secondary struct {
	net     *nn.Sequential
	classes int
}

func newSecondary(classes, hidden int, rng *xrand.RNG) *secondary {
	return &secondary{
		net: nn.NewSequential(
			nn.NewDense("lc.sec1", 2*classes, hidden, rng),
			nn.NewReLU(),
			nn.NewDense("lc.sec2", hidden, classes, rng),
		),
		classes: classes,
	}
}

// features builds the secondary's input rows from primary logits and given
// labels.
func (s *secondary) features(logits *tensor.Tensor, labels []int) *tensor.Tensor {
	n := logits.Dim(0)
	k := s.classes
	x := tensor.New(n, 2*k)
	probs := loss.Softmax(logits)
	for r := 0; r < n; r++ {
		copy(x.Data()[r*2*k:r*2*k+k], probs.Data()[r*k:(r+1)*k])
		x.Data()[r*2*k+k+labels[r]] = 1
	}
	return x
}

// correct returns the secondary's soft labels for a batch.
func (s *secondary) correct(logits *tensor.Tensor, labels []int) *tensor.Tensor {
	return loss.Softmax(s.net.Forward(s.features(logits, labels), false))
}

// Train runs the alternating primary/secondary training.
func (l *LabelCorrection) Train(cfg Config, ts TrainSet, rng *xrand.RNG) (Classifier, error) {
	gamma := l.Gamma
	if gamma <= 0 {
		gamma = 0.1
	}
	hidden := l.HiddenDim
	if hidden <= 0 {
		hidden = 24
	}
	ds := ts.Data
	clean := ts.CleanIndices
	if len(clean) == 0 {
		// No reserved subset supplied: reserve one now (trusting its labels,
		// as the paper does when forming clean subsets by manual
		// verification).
		clean = ds.StratifiedIndices(gamma, rng.Split("clean-pick"))
	}
	if len(clean) < ds.NumClasses {
		return nil, fmt.Errorf("core: label correction needs a clean subset with at least one sample per class (got %d for %d classes)",
			len(clean), ds.NumClasses)
	}
	cleanSet := ds.Subset(clean)

	resolved, _, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	classifier, primary, err := cfg.buildFor(ds, rng.Split("primary-init"))
	if err != nil {
		return nil, err
	}
	sec := newSecondary(ds.NumClasses, hidden, rng.Split("secondary-init"))

	primaryOpt := opt.NewAdam(resolved.LR)
	defer primaryOpt.Release()
	secondaryOpt := opt.NewAdam(resolved.LR)
	defer secondaryOpt.Release()
	schedule := opt.CosineDecay{Total: resolved.Epochs}
	shuffleRNG := rng.Split("shuffle")
	flipRNG := rng.Split("synth-flip")
	ce := loss.CrossEntropy{}

	for epoch := 0; epoch < resolved.Epochs; epoch++ {
		lr := resolved.LR * schedule.Factor(epoch)
		primaryOpt.SetLR(lr)
		secondaryOpt.SetLR(lr)

		// Phase 1: train the secondary on the clean subset with synthetic
		// flips. Input: (primary probs, possibly-flipped label); target:
		// the true label.
		cleanShuffled := cleanSet.Shuffled(shuffleRNG)
		for start := 0; start < cleanShuffled.Len(); start += resolved.BatchSize {
			bx, by := cleanShuffled.Batch(start, resolved.BatchSize)
			logits := primary.net.Forward(bx, false) // primary frozen in this phase
			noisy := make([]int, len(by))
			for i, y := range by {
				noisy[i] = y
				if flipRNG.Bernoulli(l.synthFlip()) {
					wrong := flipRNG.IntN(ds.NumClasses - 1)
					if wrong >= y {
						wrong++
					}
					noisy[i] = wrong
				}
			}
			feats := sec.features(logits, noisy)
			secLogits := sec.net.Forward(feats, true)
			_, grad := ce.Forward(secLogits, data.OneHot(by, ds.NumClasses))
			sec.net.Backward(grad)
			secondaryOpt.Step(sec.net.Params())
			nn.ZeroGrads(sec.net)
			// The primary ran inference-only this phase; its activations
			// (already folded into feats) recycle per batch.
			if a := primary.net.Arena(); a != nil {
				a.Reset()
			}
		}

		// Phase 2: train the primary on the full (noisy) data against a blend
		// of the given labels and the secondary's corrected soft labels. The
		// correction weight λ ramps in over training: early on the primary's
		// logits are uninformative and the secondary would only inject noise,
		// so the given labels dominate; as both models converge the corrected
		// labels take over (mirroring the warm-up phase of meta label
		// correction).
		lambda := 0.7 * float64(epoch+1) / float64(resolved.Epochs)
		shuffled := ds.Shuffled(shuffleRNG)
		for start := 0; start < shuffled.Len(); start += resolved.BatchSize {
			bx, by := shuffled.Batch(start, resolved.BatchSize)
			logits := primary.net.Forward(bx, true)
			corrected := sec.correct(logits, by)
			target := data.OneHot(by, ds.NumClasses).ScaleIn(1 - lambda)
			target.AddScaledIn(lambda, corrected)
			_, grad := ce.Forward(logits, target)
			primary.net.Backward(grad)
			primaryOpt.Step(primary.net.Params())
			nn.ZeroGrads(primary.net)
			if a := primary.net.Arena(); a != nil {
				a.Reset()
			}
		}
	}
	return classifier, nil
}

func (l *LabelCorrection) synthFlip() float64 {
	if l.SynthFlip <= 0 || l.SynthFlip >= 1 {
		return 0.35
	}
	return l.SynthFlip
}
