package core

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"tdfm/internal/datagen"
	"tdfm/internal/tensor"
	"tdfm/internal/xrand"
)

// serializeFixture builds a tiny dataset and a probe batch shared by the
// round-trip tests.
func serializeFixture(t *testing.T) (cfg datagen.Config, probe *tensor.Tensor) {
	t.Helper()
	cfg = datagen.Presets(datagen.ScaleTiny, 7)["gtsrblike"]
	_, test, err := datagen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return cfg, test.X.SliceRows(0, 8)
}

// roundTrip exports c, gob-encodes, decodes, and imports it back.
func roundTrip(t *testing.T, c Classifier) Classifier {
	t.Helper()
	saved, err := Export(c)
	if err != nil {
		t.Fatalf("Export: %v", err)
	}
	var buf bytes.Buffer
	if err := saved.Encode(&buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	decoded, err := DecodeSaved(&buf)
	if err != nil {
		t.Fatalf("DecodeSaved: %v", err)
	}
	back, err := Import(decoded)
	if err != nil {
		t.Fatalf("Import: %v", err)
	}
	return back
}

// samePredictions asserts bitwise-equal probabilities and equal argmax
// classes for the probe batch.
func samePredictions(t *testing.T, want, got Classifier, probe *tensor.Tensor) {
	t.Helper()
	wp, gp := want.PredictProbs(probe), got.PredictProbs(probe)
	wd, gd := wp.Data(), gp.Data()
	if len(wd) != len(gd) {
		t.Fatalf("probs size %d != %d", len(gd), len(wd))
	}
	for i := range wd {
		if math.Float64bits(wd[i]) != math.Float64bits(gd[i]) {
			t.Fatalf("probs[%d]: %v != %v (not bit-identical)", i, gd[i], wd[i])
		}
	}
}

// TestExportImportSingleRoundTrip pins the single-network round trip:
// the imported classifier's probabilities are bit-identical.
func TestExportImportSingleRoundTrip(t *testing.T) {
	cfg, probe := serializeFixture(t)
	train, _, err := datagen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	clf, err := Baseline{}.Train(Config{Arch: "convnet", Epochs: 1},
		TrainSet{Data: train}, xrand.New(3).Split("serialize"))
	if err != nil {
		t.Fatal(err)
	}
	samePredictions(t, clf, roundTrip(t, clf), probe)
}

// TestExportImportEnsembleRoundTrip pins the ensemble round trip with
// untrained (fast) members of two different architectures.
func TestExportImportEnsembleRoundTrip(t *testing.T) {
	cfg, probe := serializeFixture(t)
	train, _, err := datagen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(11)
	var members []Classifier
	for _, arch := range []string{"convnet", "deconvnet"} {
		m, err := NewUntrained(Config{Arch: arch}, train, rng.Split("m-"+arch))
		if err != nil {
			t.Fatal(err)
		}
		members = append(members, m)
	}
	ens := &VotingClassifier{Members: members, Classes: train.NumClasses}
	back := roundTrip(t, ens)
	if _, ok := back.(*VotingClassifier); !ok {
		t.Fatalf("imported classifier is %T, want *VotingClassifier", back)
	}
	samePredictions(t, ens, back, probe)
}

// TestExportImportF32RoundTrip pins the ToF32 variant: exporting a
// float32 twin stores the float64 source tagged f32, and Import
// re-derives a twin with bit-identical probabilities.
func TestExportImportF32RoundTrip(t *testing.T) {
	cfg, probe := serializeFixture(t)
	train, _, err := datagen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewUntrained(Config{Arch: "convnet"}, train, xrand.New(5).Split("f32"))
	if err != nil {
		t.Fatal(err)
	}
	twin, err := ToF32(m)
	if err != nil {
		t.Fatal(err)
	}
	saved, err := Export(twin)
	if err != nil {
		t.Fatal(err)
	}
	if saved.Precision != SavedF32 {
		t.Fatalf("precision = %q, want %q", saved.Precision, SavedF32)
	}
	back := roundTrip(t, twin)
	if _, ok := back.(*f32Model); !ok {
		t.Fatalf("imported classifier is %T, want *f32Model", back)
	}
	samePredictions(t, twin, back, probe)
}

// TestExportRejectsUnknownClassifier pins the typed error for classifier
// types outside the serializable family.
func TestExportRejectsUnknownClassifier(t *testing.T) {
	if _, err := Export(unknownClf{}); !errors.Is(err, ErrUnsupportedClassifier) {
		t.Fatalf("err = %v, want ErrUnsupportedClassifier", err)
	}
}

// TestImportRejectsBadArtifacts pins typed errors for malformed saved
// classifiers: unknown kind, unknown precision, unknown architecture,
// and a missing snapshot.
func TestImportRejectsBadArtifacts(t *testing.T) {
	base := SavedClassifier{
		Kind: SavedSingle, Precision: SavedF64,
		Members: []SavedMember{{Arch: "convnet"}},
		Classes: 3, Channels: 1, Height: 8, Width: 8, WidthMult: 1,
	}
	cases := map[string]func(s *SavedClassifier){
		"unknown kind":      func(s *SavedClassifier) { s.Kind = "tree" },
		"unknown precision": func(s *SavedClassifier) { s.Precision = "f16" },
		"unknown arch":      func(s *SavedClassifier) { s.Members[0].Arch = "transformer" },
		"missing snapshot":  func(s *SavedClassifier) {},
	}
	for name, mutate := range cases {
		s := base
		s.Members = []SavedMember{base.Members[0]}
		mutate(&s)
		if _, err := Import(&s); !errors.Is(err, ErrUnsupportedClassifier) {
			t.Errorf("%s: err = %v, want ErrUnsupportedClassifier", name, err)
		}
	}
}

// unknownClf is a Classifier outside the serializable family.
type unknownClf struct{}

func (unknownClf) PredictProbs(x *tensor.Tensor) *tensor.Tensor { return tensor.New(x.Dim(0), 2) }
func (unknownClf) Predict(x *tensor.Tensor) []int               { return make([]int, x.Dim(0)) }

// TestReleaseArenasLeavesClassifierUsable pins the retire contract: after
// ReleaseArenas the classifier still predicts, identically.
func TestReleaseArenasLeavesClassifierUsable(t *testing.T) {
	cfg, probe := serializeFixture(t)
	train, _, err := datagen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewUntrained(Config{Arch: "convnet"}, train, xrand.New(9).Split("release"))
	if err != nil {
		t.Fatal(err)
	}
	before := append([]float64(nil), m.PredictProbs(probe).Data()...)
	ReleaseArenas(m)
	after := m.PredictProbs(probe).Data()
	for i := range before {
		if math.Float64bits(before[i]) != math.Float64bits(after[i]) {
			t.Fatalf("probs[%d] changed after ReleaseArenas: %v != %v", i, after[i], before[i])
		}
	}
}
