package core

import (
	"fmt"

	"tdfm/internal/loss"
	"tdfm/internal/parallel"
	"tdfm/internal/tensor"
	"tdfm/internal/xrand"
)

// Ensemble is the study's Ensemble representative (§III-B5): n
// architecturally diverse models trained independently on the same
// (possibly faulty) data, combined at inference by simple majority vote
// with ties broken by summed softmax mass. The paper's ensemble uses the
// five models with the lowest baseline AD: ConvNet, MobileNet, ResNet18,
// VGG11, VGG16.
type Ensemble struct {
	Members []string // architecture names from the model registry
}

var _ Technique = (*Ensemble)(nil)

// NewEnsemble returns an ensemble over the given member architectures.
func NewEnsemble(members []string) *Ensemble {
	return &Ensemble{Members: append([]string(nil), members...)}
}

// Name implements Technique.
func (*Ensemble) Name() string { return "ens" }

// Description implements Technique.
func (e *Ensemble) Description() string {
	return fmt.Sprintf("majority-vote ensemble of %d diverse architectures", len(e.Members))
}

// ModelsTrained implements Technique.
func (e *Ensemble) ModelsTrained() int { return len(e.Members) }

// ModelsAtInference implements Technique.
func (e *Ensemble) ModelsAtInference() int { return len(e.Members) }

// Train fits every member with cross entropy. The cfg.Arch field is ignored
// (members carry their own architectures); epochs/LR overrides apply to all
// members.
//
// Members train concurrently when the shared worker budget
// (internal/parallel) has headroom, and serially otherwise — nested under
// an already-parallel experiment grid the members simply run inline. The
// result is identical either way: every member's RNG streams are split
// from the parent up front in member order (Split consumes the parent
// stream, so the split order, not the training schedule, must be fixed),
// and each member trains in isolation on the shared read-only dataset.
func (e *Ensemble) Train(cfg Config, ts TrainSet, rng *xrand.RNG) (Classifier, error) {
	if len(e.Members) == 0 {
		return nil, fmt.Errorf("core: ensemble has no members")
	}
	type memberJob struct {
		arch              string
		initRNG, trainRNG *xrand.RNG
		clf               Classifier
		err               error
	}
	jobs := make([]*memberJob, len(e.Members))
	for i, arch := range e.Members {
		jobs[i] = &memberJob{
			arch:     arch,
			initRNG:  rng.Split("init-" + arch),
			trainRNG: rng.Split("train-" + arch),
		}
	}
	tasks := make([]func(), len(jobs))
	for i := range jobs {
		job := jobs[i]
		tasks[i] = func() {
			mcfg := cfg
			mcfg.Arch = job.arch
			// Each member uses its architecture's own default epochs/LR
			// unless explicitly overridden.
			c, bm, err := mcfg.buildFor(ts.Data, job.initRNG)
			if err != nil {
				job.err = fmt.Errorf("core: ensemble member %s: %w", job.arch, err)
				return
			}
			if err := trainLoop(bm.net, ts.Data, loss.CrossEntropy{}, mcfg, job.trainRNG, nil, nil); err != nil {
				job.err = fmt.Errorf("core: ensemble member %s: %w", job.arch, err)
				return
			}
			job.clf = c
		}
	}
	parallel.Run(tasks...)
	members := make([]Classifier, 0, len(jobs))
	for _, job := range jobs {
		if job.err != nil {
			return nil, job.err
		}
		members = append(members, job.clf)
	}
	return &VotingClassifier{Members: members, Classes: ts.Data.NumClasses}, nil
}

// VotingClassifier combines member classifiers by majority vote.
type VotingClassifier struct {
	Members []Classifier
	Classes int
}

var _ Classifier = (*VotingClassifier)(nil)

// PredictProbs returns the mean of the members' probability outputs
// (used for tie-breaking and by callers needing calibrated scores).
func (v *VotingClassifier) PredictProbs(x *tensor.Tensor) *tensor.Tensor {
	if len(v.Members) == 0 {
		panic("core: empty VotingClassifier")
	}
	sum := v.Members[0].PredictProbs(x)
	for _, m := range v.Members[1:] {
		sum.AddIn(m.PredictProbs(x))
	}
	return sum.ScaleIn(1 / float64(len(v.Members)))
}

// Predict returns the simple-majority class per row; ties are broken by the
// summed softmax mass over the tied classes, then by lowest class index
// (see TallyVotes).
func (v *VotingClassifier) Predict(x *tensor.Tensor) []int {
	probs := make([]*tensor.Tensor, len(v.Members))
	for i, m := range v.Members {
		probs[i] = m.PredictProbs(x)
	}
	return TallyVotes(probs, v.Classes)
}

// TallyVotes combines per-member probability outputs (each of shape
// [N, K]) into the ensemble's majority-vote class predictions. Each
// member votes for its argmax class per row; the class with the most
// votes wins. Ties are broken first by the summed probability mass over
// the tied classes and then, when the mass also ties exactly, by the
// lowest class index — so the decision is fully deterministic for a
// given member set and cannot depend on schedule or worker count.
//
// The serving layer calls TallyVotes directly with the subset of members
// that answered before their deadline: dropping members degrades the
// vote (the paper's Ens resilience property) without changing the
// decision rule applied to the survivors. TallyVotes panics when
// memberProbs is empty; callers enforce their quorum floor first.
func TallyVotes(memberProbs []*tensor.Tensor, classes int) []int {
	if len(memberProbs) == 0 {
		panic("core: TallyVotes needs at least one member")
	}
	n := memberProbs[0].Dim(0)
	votes := make([][]int, n)
	for i := range votes {
		votes[i] = make([]int, classes)
	}
	probSum := tensor.New(n, classes)
	for _, probs := range memberProbs {
		probSum.AddIn(probs)
		for i, c := range probs.ArgMaxRows() {
			votes[i][c]++
		}
	}
	out := make([]int, n)
	for i := range out {
		best, bestVotes := 0, -1
		for c, nv := range votes[i] {
			switch {
			case nv > bestVotes:
				best, bestVotes = c, nv
			case nv == bestVotes && probSum.At(i, c) > probSum.At(i, best):
				best = c
			}
		}
		out[i] = best
	}
	return out
}
