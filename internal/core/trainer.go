package core

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"tdfm/internal/chaos"
	"tdfm/internal/data"
	"tdfm/internal/loss"
	"tdfm/internal/nn"
	"tdfm/internal/opt"
	"tdfm/internal/tensor"
	"tdfm/internal/xrand"
)

// builtModel wraps a network as a Classifier and carries its training
// configuration.
type builtModel struct {
	net     *nn.Sequential
	cfg     Config
	classes int
	// inC, inH, inW record the input shape the network was built for, so
	// the model can be serialized (Export) and rebuilt (Import) without
	// the original dataset at hand.
	inC, inH, inW int
	// mu serializes inference: the network's arena recycles activations
	// and is not safe for concurrent use, and the serving layer fans
	// concurrent requests out to shared member models. Fan-out across
	// ensemble members stays parallel — each member owns its own arena.
	mu sync.Mutex
}

var _ Classifier = (*builtModel)(nil)

// predictBatch bounds memory use during inference: the im2col expansion
// of a conv layer is the peak allocation, and it grows linearly with the
// chunk's row count.
const predictBatch = 128

// PredictProbs runs inference and returns softmax probabilities. Inputs
// larger than predictBatch rows run in chunks addressed as zero-copy
// SliceRows views (no staging copy on the serving hot path). Every layer's
// inference forward is row-independent — conv/im2col, pooling, and dense
// act per image, batch norm uses running statistics — so the chunk
// boundaries never influence the result: probabilities are bit-identical
// for any batch size, which is what lets the serving tier stack many
// requests into one forward pass and demux the rows afterwards.
func (m *builtModel) PredictProbs(x *tensor.Tensor) *tensor.Tensor {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := x.Dim(0)
	arena := m.net.Arena()
	if n <= predictBatch {
		probs := loss.Softmax(m.net.Forward(x, false))
		if arena != nil {
			arena.Reset() // probs are fresh storage; activations recycle here
		}
		return probs
	}
	out := tensor.New(n, m.classes)
	for start := 0; start < n; start += predictBatch {
		end := start + predictBatch
		if end > n {
			end = n
		}
		probs := loss.Softmax(m.net.Forward(x.SliceRows(start, end), false))
		copy(out.Data()[start*m.classes:end*m.classes], probs.Data())
		if arena != nil {
			arena.Reset()
		}
	}
	return out
}

// Predict returns argmax classes.
func (m *builtModel) Predict(x *tensor.Tensor) []int {
	return m.PredictProbs(x).ArgMaxRows()
}

// batchTargets lets training loops substitute per-batch targets (label
// correction rewrites them; distillation augments them). The default
// returns one-hot encodings of the dataset labels.
type batchTargets func(batchX *tensor.Tensor, batchLabels []int) *tensor.Tensor

// epochHook runs after each epoch with the epoch index and mean loss.
type epochHook func(epoch int, meanLoss float64)

// ErrDiverged marks a training run whose numerics diverged (NaN/Inf loss
// or exploding gradient norm) and stayed divergent through every bounded
// recovery attempt. Callers classify it as a transient failure: the
// experiment runner retries the cell under its retry policy, and reports
// "divergence" as the failure reason when retries are exhausted.
var ErrDiverged = errors.New("training diverged")

// Numerical-health policy of the trainer (§IV-B "garbage in, garbage out":
// a silently diverged model produces garbage predictions, so divergence is
// detected and surfaced, never returned as a trained classifier).
const (
	// maxRecoveries bounds the deterministic restart attempts after a
	// detected divergence before the run is declared failed.
	maxRecoveries = 2
	// explodeGradNorm is the global gradient-norm threshold treated as
	// divergence when gradient clipping is off (the first, unclipped
	// attempt). Healthy runs in this repository stay orders of magnitude
	// below it.
	explodeGradNorm = 1e6
	// recoveryClipNorm is the gradient clip applied during recovery
	// attempts.
	recoveryClipNorm = 1.0
	// recoveryBackoff multiplies the learning rate per recovery attempt.
	recoveryBackoff = 0.5
)

// trainLoop is the shared SGD loop: shuffle, batch, forward, loss,
// backward, step — guarded by a deterministic divergence detector. A
// NaN/Inf loss or an exploding gradient norm triggers a bounded recovery:
// the weights are restored to their initial snapshot and the run restarts
// with gradient clipping, a backed-off learning rate, and a fresh shuffle
// stream split from the same cell-keyed RNG. Detection and recovery are
// pure functions of the (seed, cell key) randomness, so a recovered run is
// byte-identical at any worker count. If the run is still divergent after
// maxRecoveries restarts, trainLoop returns an error wrapping ErrDiverged.
//
// When cfg.Ctx is non-nil the loop also checks it between batches and
// returns its error (context.Canceled / DeadlineExceeded) promptly, which
// is how per-cell timeouts and CLI interrupts cancel a training run
// cooperatively.
func trainLoop(
	net *nn.Sequential,
	ds *data.Dataset,
	lossFn loss.Loss,
	cfg Config,
	rng *xrand.RNG,
	targets batchTargets,
	hook epochHook,
) error {
	resolved, _, err := cfg.withDefaults()
	if err != nil {
		return err
	}
	if targets == nil {
		// Default one-hot targets draw from the network's arena when one is
		// installed: the target tensor is dead after the batch's loss
		// gradient is computed, so it recycles with the activations.
		targets = func(_ *tensor.Tensor, labels []int) *tensor.Tensor {
			if a := net.Arena(); a != nil {
				return data.FillOneHot(a.Tensor(len(labels), ds.NumClasses), labels)
			}
			return data.OneHot(labels, ds.NumClasses)
		}
	}
	// The initial weights are snapshotted once so every recovery attempt
	// restarts from exactly the same state the first attempt saw.
	var init *nn.Snapshot
	var firstDiv error
	for attempt := 0; attempt <= maxRecoveries; attempt++ {
		lr, clip, shuffleLabel := resolved.LR, 0.0, "shuffle"
		if attempt > 0 {
			lr *= math.Pow(recoveryBackoff, float64(attempt))
			clip = recoveryClipNorm
			// Each restart draws a fresh, deterministically derived shuffle
			// stream; the split order (attempt number) is fixed, never
			// schedule-dependent.
			shuffleLabel = fmt.Sprintf("shuffle-recover%d", attempt)
			if err := init.Restore(net); err != nil {
				return fmt.Errorf("core: restoring weights for divergence recovery: %w", err)
			}
			nn.ZeroGrads(net)
		} else if maxRecoveries > 0 {
			init = nn.TakeSnapshot(net)
		}
		div, err := runEpochs(net, ds, lossFn, resolved, lr, clip, rng.Split(shuffleLabel), targets, hook)
		if err != nil {
			return err
		}
		if div == nil {
			return nil
		}
		if firstDiv == nil {
			firstDiv = div
		}
	}
	return fmt.Errorf("core: %v; still divergent after %d recovery attempts (grad clip %.3g, LR backoff ×%.3g): %w",
		firstDiv, maxRecoveries, recoveryClipNorm, recoveryBackoff, ErrDiverged)
}

// runEpochs executes one full pass of the configured epochs at the given
// learning rate and gradient clip (clip <= 0 disables clipping). It
// returns a divergence observation in div (the attempt can be retried) or
// a hard failure in err (cancellation; not retryable here).
func runEpochs(
	net *nn.Sequential,
	ds *data.Dataset,
	lossFn loss.Loss,
	cfg Config,
	lr, clip float64,
	shuffleRNG *xrand.RNG,
	targets batchTargets,
	hook epochHook,
) (div, err error) {
	optimizer := opt.NewAdam(lr)
	defer optimizer.Release()
	schedule := opt.CosineDecay{Total: cfg.Epochs}
	params := net.Params()
	arena := net.Arena()
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		optimizer.SetLR(lr * schedule.Factor(epoch))
		shuffled := ds.Shuffled(shuffleRNG)
		totalLoss, batches := 0.0, 0
		for start := 0; start < shuffled.Len(); start += cfg.BatchSize {
			if cfg.Ctx != nil {
				if cerr := cfg.Ctx.Err(); cerr != nil {
					return nil, fmt.Errorf("core: training interrupted at epoch %d: %w", epoch, cerr)
				}
			}
			end := start + cfg.BatchSize
			if end > shuffled.Len() {
				end = shuffled.Len()
			}
			// Zero-copy batch views: the shuffled dataset is already a fresh
			// deep copy, so slicing it is as isolated as the old per-batch
			// copy was, without the two allocations per step.
			bx := shuffled.X.SliceRows(start, end)
			by := shuffled.Labels[start:end]
			logits := net.Forward(bx, true)
			l, grad := lossFn.Forward(logits, targets(bx, by))
			if act := chaos.Check("core.trainLoop.loss", cfg.Tag); act != nil {
				if act.Panic {
					panic(fmt.Sprintf("chaos: injected trainer panic (tag %q)", cfg.Tag))
				}
				if act.NaN {
					l = math.NaN()
				}
			}
			if math.IsNaN(l) || math.IsInf(l, 0) {
				return fmt.Errorf("loss diverged to %v at epoch %d", l, epoch), nil
			}
			net.Backward(grad)
			norm := opt.ClipGradNorm(params, clip)
			// With clipping on, any finite explosion is contained by the
			// rescale; only a non-finite norm (NaN/Inf gradients) forces a
			// restart. Without clipping, a finite explosion past the
			// threshold is caught before it degrades into NaN.
			if math.IsInf(norm, 0) || (clip <= 0 && norm > explodeGradNorm) {
				for _, p := range params {
					p.ZeroGrad()
				}
				if arena != nil {
					arena.Reset()
				}
				return fmt.Errorf("gradient norm %.3g exploded at epoch %d", norm, epoch), nil
			}
			optimizer.Step(params)
			// Zero gradients over the hoisted slice: nn.ZeroGrads would
			// rebuild the parameter list on every batch.
			for _, p := range params {
				p.ZeroGrad()
			}
			// All of this batch's activations and scratch are dead once the
			// step is applied; recycle them for the next batch.
			if arena != nil {
				arena.Reset()
			}
			totalLoss += l
			batches++
		}
		if hook != nil && batches > 0 {
			hook(epoch, totalLoss/float64(batches))
		}
	}
	return nil, nil
}

// Accuracy returns the fraction of test examples classified correctly.
func Accuracy(c Classifier, test *data.Dataset) float64 {
	pred := c.Predict(test.X)
	correct := 0
	for i, p := range pred {
		if p == test.Labels[i] {
			correct++
		}
	}
	if len(pred) == 0 {
		return 0
	}
	return float64(correct) / float64(len(pred))
}

// Snapshotter is implemented by classifiers whose weights can be captured
// and restored (single-network classifiers; ensembles are not snapshotable
// as one unit — snapshot their members individually).
type Snapshotter interface {
	Snapshot() *nn.Snapshot
	RestoreSnapshot(*nn.Snapshot) error
}

var _ Snapshotter = (*builtModel)(nil)

// Snapshot captures the model's current weights.
func (m *builtModel) Snapshot() *nn.Snapshot { return nn.TakeSnapshot(m.net) }

// RestoreSnapshot installs previously captured weights.
func (m *builtModel) RestoreSnapshot(s *nn.Snapshot) error { return s.Restore(m.net) }
