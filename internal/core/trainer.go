package core

import (
	"fmt"

	"tdfm/internal/data"
	"tdfm/internal/loss"
	"tdfm/internal/nn"
	"tdfm/internal/opt"
	"tdfm/internal/tensor"
	"tdfm/internal/xrand"
)

// builtModel wraps a network as a Classifier and carries its training
// configuration.
type builtModel struct {
	net     *nn.Sequential
	cfg     Config
	classes int
}

var _ Classifier = (*builtModel)(nil)

// predictBatch bounds memory use during inference.
const predictBatch = 128

// PredictProbs runs inference in batches and returns softmax probabilities.
func (m *builtModel) PredictProbs(x *tensor.Tensor) *tensor.Tensor {
	n := x.Dim(0)
	out := tensor.New(n, m.classes)
	ss := x.Size() / n
	for start := 0; start < n; start += predictBatch {
		end := start + predictBatch
		if end > n {
			end = n
		}
		shape := x.Shape()
		shape[0] = end - start
		chunk := tensor.New(shape...)
		copy(chunk.Data(), x.Data()[start*ss:end*ss])
		probs := loss.Softmax(m.net.Forward(chunk, false))
		copy(out.Data()[start*m.classes:end*m.classes], probs.Data())
	}
	return out
}

// Predict returns argmax classes.
func (m *builtModel) Predict(x *tensor.Tensor) []int {
	return m.PredictProbs(x).ArgMaxRows()
}

// batchTargets lets training loops substitute per-batch targets (label
// correction rewrites them; distillation augments them). The default
// returns one-hot encodings of the dataset labels.
type batchTargets func(batchX *tensor.Tensor, batchLabels []int) *tensor.Tensor

// epochHook runs after each epoch with the epoch index and mean loss.
type epochHook func(epoch int, meanLoss float64)

// trainLoop is the shared SGD loop: shuffle, batch, forward, loss,
// backward, step. It returns an error if the loss diverges to NaN.
func trainLoop(
	net *nn.Sequential,
	ds *data.Dataset,
	lossFn loss.Loss,
	cfg Config,
	rng *xrand.RNG,
	targets batchTargets,
	hook epochHook,
) error {
	resolved, _, err := cfg.withDefaults()
	if err != nil {
		return err
	}
	if targets == nil {
		targets = func(_ *tensor.Tensor, labels []int) *tensor.Tensor {
			return data.OneHot(labels, ds.NumClasses)
		}
	}
	optimizer := opt.NewAdam(resolved.LR)
	schedule := opt.CosineDecay{Total: resolved.Epochs}
	shuffleRNG := rng.Split("shuffle")
	for epoch := 0; epoch < resolved.Epochs; epoch++ {
		optimizer.SetLR(resolved.LR * schedule.Factor(epoch))
		shuffled := ds.Shuffled(shuffleRNG)
		totalLoss, batches := 0.0, 0
		for start := 0; start < shuffled.Len(); start += resolved.BatchSize {
			bx, by := shuffled.Batch(start, resolved.BatchSize)
			logits := net.Forward(bx, true)
			l, grad := lossFn.Forward(logits, targets(bx, by))
			if l != l { // NaN
				return fmt.Errorf("core: loss diverged to NaN at epoch %d", epoch)
			}
			net.Backward(grad)
			optimizer.Step(net.Params())
			nn.ZeroGrads(net)
			totalLoss += l
			batches++
		}
		if hook != nil && batches > 0 {
			hook(epoch, totalLoss/float64(batches))
		}
	}
	return nil
}

// Accuracy returns the fraction of test examples classified correctly.
func Accuracy(c Classifier, test *data.Dataset) float64 {
	pred := c.Predict(test.X)
	correct := 0
	for i, p := range pred {
		if p == test.Labels[i] {
			correct++
		}
	}
	if len(pred) == 0 {
		return 0
	}
	return float64(correct) / float64(len(pred))
}

// Snapshotter is implemented by classifiers whose weights can be captured
// and restored (single-network classifiers; ensembles are not snapshotable
// as one unit — snapshot their members individually).
type Snapshotter interface {
	Snapshot() *nn.Snapshot
	RestoreSnapshot(*nn.Snapshot) error
}

var _ Snapshotter = (*builtModel)(nil)

// Snapshot captures the model's current weights.
func (m *builtModel) Snapshot() *nn.Snapshot { return nn.TakeSnapshot(m.net) }

// RestoreSnapshot installs previously captured weights.
func (m *builtModel) RestoreSnapshot(s *nn.Snapshot) error { return s.Restore(m.net) }
