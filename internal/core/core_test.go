package core

import (
	"testing"

	"tdfm/internal/data"
	"tdfm/internal/datagen"
	"tdfm/internal/faultinject"
	"tdfm/internal/metrics"
	"tdfm/internal/tensor"
	"tdfm/internal/xrand"
)

// fastConfig keeps technique tests quick: shallow model, few epochs.
func fastConfig() Config {
	return Config{Arch: "convnet", Epochs: 6, BatchSize: 32, LR: 0.01}
}

// tinySet generates a small learnable dataset shared by the tests.
func tinySet(t *testing.T) (train, test *data.Dataset) {
	t.Helper()
	cfg := datagen.Config{
		Name: "toy", NumClasses: 4, Channels: 1, Height: 12, Width: 12,
		TrainN: 120, TestN: 60, Signal: 1.5, Clutter: 0.2, Noise: 0.25, Shift: 1, Seed: 5,
	}
	train, test, err := datagen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return train, test
}

func TestRegistryAndOrder(t *testing.T) {
	reg := Registry()
	order := StudyOrder()
	if len(reg) != 6 || len(order) != 6 {
		t.Fatalf("registry %d, order %d", len(reg), len(order))
	}
	for _, name := range order {
		tech, ok := reg[name]
		if !ok {
			t.Fatalf("technique %s missing", name)
		}
		if tech.Name() != name {
			t.Fatalf("technique %s reports name %s", name, tech.Name())
		}
		if tech.Description() == "" {
			t.Fatalf("technique %s has empty description", name)
		}
		if tech.ModelsTrained() < 1 || tech.ModelsAtInference() < 1 {
			t.Fatalf("technique %s has bad overhead metadata", name)
		}
	}
	if _, err := Get("nope"); err == nil {
		t.Fatal("unknown technique accepted")
	}
}

func TestOverheadMetadataMatchesPaper(t *testing.T) {
	reg := Registry()
	if reg["ens"].ModelsAtInference() != 5 {
		t.Fatal("ensemble must consult 5 models (5x inference overhead, §IV-E)")
	}
	if reg["kd"].ModelsTrained() != 2 {
		t.Fatal("KD trains teacher and student")
	}
	if reg["lc"].ModelsTrained() != 2 {
		t.Fatal("LC trains primary and secondary")
	}
	for _, single := range []string{"base", "ls", "rl", "kd", "lc"} {
		if reg[single].ModelsAtInference() != 1 {
			t.Fatalf("%s must have 1x inference overhead", single)
		}
	}
}

func TestBaselineLearns(t *testing.T) {
	train, test := tinySet(t)
	c, err := Baseline{}.Train(fastConfig(), TrainSet{Data: train}, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	acc := metrics.Accuracy(c.Predict(test.X), test.Labels)
	if acc < 0.6 {
		t.Fatalf("baseline accuracy %.2f too low (chance 0.25)", acc)
	}
}

func TestBaselineDeterministic(t *testing.T) {
	train, test := tinySet(t)
	a, err := Baseline{}.Train(fastConfig(), TrainSet{Data: train}, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Baseline{}.Train(fastConfig(), TrainSet{Data: train}, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	pa, pb := a.Predict(test.X), b.Predict(test.X)
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatal("same seed produced different classifiers")
		}
	}
}

func TestAllTechniquesTrainAndPredict(t *testing.T) {
	train, test := tinySet(t)
	faulty, _, err := faultinject.MislabelRate(train, 0.2, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	clean := train.StratifiedIndices(0.15, xrand.New(8))
	ts := TrainSet{Data: faulty, CleanIndices: clean}
	for name, tech := range Registry() {
		if name == "ens" {
			continue // covered separately (slow)
		}
		c, err := tech.Train(fastConfig(), ts, xrand.New(9))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		pred := c.Predict(test.X)
		if len(pred) != test.Len() {
			t.Fatalf("%s: %d predictions for %d test samples", name, len(pred), test.Len())
		}
		acc := metrics.Accuracy(pred, test.Labels)
		if acc < 0.4 { // well above 0.25 chance even with 20% mislabels
			t.Errorf("%s: accuracy %.2f suspiciously low", name, acc)
		}
	}
}

func TestEnsembleVoting(t *testing.T) {
	// Use a 2-member toy ensemble of fast models to keep the test quick.
	train, test := tinySet(t)
	ens := NewEnsemble([]string{"convnet", "deconvnet"})
	if ens.ModelsTrained() != 2 || ens.ModelsAtInference() != 2 {
		t.Fatal("overhead metadata should match member count")
	}
	c, err := ens.Train(Config{Epochs: 6, BatchSize: 32, LR: 0.01}, TrainSet{Data: train}, xrand.New(11))
	if err != nil {
		t.Fatal(err)
	}
	acc := metrics.Accuracy(c.Predict(test.X), test.Labels)
	if acc < 0.6 {
		t.Fatalf("ensemble accuracy %.2f too low", acc)
	}
	probs := c.PredictProbs(test.X)
	if probs.Dim(0) != test.Len() || probs.Dim(1) != 4 {
		t.Fatalf("probs shape %v", probs.Shape())
	}
}

func TestEmptyEnsembleRejected(t *testing.T) {
	train, _ := tinySet(t)
	if _, err := NewEnsemble(nil).Train(fastConfig(), TrainSet{Data: train}, xrand.New(1)); err == nil {
		t.Fatal("empty ensemble accepted")
	}
}

func TestVotingClassifierMajority(t *testing.T) {
	// Three fixed classifiers: two vote class 1, one votes class 0.
	mk := func(class int, conf float64) Classifier {
		return fixedClassifier{class: class, conf: conf, classes: 3}
	}
	v := &VotingClassifier{Members: []Classifier{mk(1, 0.9), mk(1, 0.6), mk(0, 0.99)}, Classes: 3}
	x := tensor.New(2, 1, 1, 1)
	pred := v.Predict(x)
	for _, p := range pred {
		if p != 1 {
			t.Fatalf("majority vote = %d, want 1", p)
		}
	}
}

func TestVotingClassifierTieBreak(t *testing.T) {
	// One vote each for class 0 and class 1; class 1 has more probability
	// mass, so the tie must break to 1.
	v := &VotingClassifier{Members: []Classifier{
		fixedClassifier{class: 0, conf: 0.55, classes: 2},
		fixedClassifier{class: 1, conf: 0.95, classes: 2},
	}, Classes: 2}
	x := tensor.New(1, 1, 1, 1)
	if got := v.Predict(x)[0]; got != 1 {
		t.Fatalf("tie-break picked %d, want 1", got)
	}
}

// fixedClassifier always predicts one class with fixed confidence.
type fixedClassifier struct {
	class   int
	conf    float64
	classes int
}

func (f fixedClassifier) PredictProbs(x *tensor.Tensor) *tensor.Tensor {
	n := x.Dim(0)
	out := tensor.New(n, f.classes)
	rest := (1 - f.conf) / float64(f.classes-1)
	for i := 0; i < n; i++ {
		for c := 0; c < f.classes; c++ {
			if c == f.class {
				out.Set(f.conf, i, c)
			} else {
				out.Set(rest, i, c)
			}
		}
	}
	return out
}

func (f fixedClassifier) Predict(x *tensor.Tensor) []int {
	out := make([]int, x.Dim(0))
	for i := range out {
		out[i] = f.class
	}
	return out
}

func TestLabelCorrectionNeedsClasses(t *testing.T) {
	// A clean subset smaller than the class count must be rejected.
	train, _ := tinySet(t)
	lc := NewLabelCorrection(0.1)
	_, err := lc.Train(fastConfig(), TrainSet{Data: train, CleanIndices: []int{0, 1}}, xrand.New(1))
	if err == nil {
		t.Fatal("undersized clean subset accepted")
	}
}

func TestLabelCorrectionReservesOwnCleanSet(t *testing.T) {
	train, test := tinySet(t)
	lc := NewLabelCorrection(0.2)
	c, err := lc.Train(fastConfig(), TrainSet{Data: train}, xrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Predict(test.X)) != test.Len() {
		t.Fatal("prediction failed")
	}
}

func TestMitigationBeatsBaselineUnderHeavyNoise(t *testing.T) {
	// Statistical smoke check: at 40% mislabelling, label smoothing should
	// not be substantially worse than the unprotected baseline (averaged
	// over 3 seeds to damp variance).
	train, test := tinySet(t)
	faulty, _, err := faultinject.MislabelRate(train, 0.4, xrand.New(13))
	if err != nil {
		t.Fatal(err)
	}
	ts := TrainSet{Data: faulty}
	var baseSum, lsSum float64
	const reps = 3
	for rep := 0; rep < reps; rep++ {
		seed := uint64(100 + rep)
		b, err := Baseline{}.Train(fastConfig(), ts, xrand.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		l, err := LabelSmoothing{Alpha: 0.25}.Train(fastConfig(), ts, xrand.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		baseSum += metrics.Accuracy(b.Predict(test.X), test.Labels)
		lsSum += metrics.Accuracy(l.Predict(test.X), test.Labels)
	}
	if lsSum < baseSum-0.15*reps {
		t.Fatalf("label smoothing (%.2f) much worse than baseline (%.2f) under noise",
			lsSum/reps, baseSum/reps)
	}
}

func TestKnowledgeDistillationStudentDiffers(t *testing.T) {
	train, test := tinySet(t)
	kd := KnowledgeDistillation{Alpha: 0.7, T: 3}
	student, err := kd.Train(fastConfig(), TrainSet{Data: train}, xrand.New(15))
	if err != nil {
		t.Fatal(err)
	}
	base, err := Baseline{}.Train(fastConfig(), TrainSet{Data: train}, xrand.New(15))
	if err != nil {
		t.Fatal(err)
	}
	sp, bp := student.Predict(test.X), base.Predict(test.X)
	same := 0
	for i := range sp {
		if sp[i] == bp[i] {
			same++
		}
	}
	if same == len(sp) {
		t.Log("student identical to baseline on this test set (possible but unusual)")
	}
	if metrics.Accuracy(sp, test.Labels) < 0.5 {
		t.Fatal("distilled student failed to learn")
	}
}

func TestConfigDefaults(t *testing.T) {
	c, info, err := Config{Arch: "convnet"}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if c.Epochs != info.DefaultEpochs || c.LR != info.DefaultLR || c.BatchSize != 32 || c.WidthMult != 1 {
		t.Fatalf("defaults not applied: %+v", c)
	}
	if _, _, err := (Config{Arch: "bogus"}).withDefaults(); err == nil {
		t.Fatal("unknown arch accepted")
	}
}

func TestAccuracyHelper(t *testing.T) {
	train, test := tinySet(t)
	c, err := Baseline{}.Train(fastConfig(), TrainSet{Data: train}, xrand.New(17))
	if err != nil {
		t.Fatal(err)
	}
	a1 := Accuracy(c, test)
	a2 := metrics.Accuracy(c.Predict(test.X), test.Labels)
	if a1 != a2 {
		t.Fatalf("Accuracy helper %v != metrics %v", a1, a2)
	}
}

func TestTrainLoopDivergenceDetection(t *testing.T) {
	train, _ := tinySet(t)
	// An absurd learning rate must either diverge (reported as error) or
	// still return a classifier — never panic.
	_, err := Baseline{}.Train(Config{Arch: "convnet", Epochs: 3, LR: 1e6}, TrainSet{Data: train}, xrand.New(19))
	if err != nil {
		t.Logf("diverged as expected: %v", err)
	}
}
