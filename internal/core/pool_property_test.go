package core

import (
	"math"
	"testing"

	"tdfm/internal/tensor"
	"tdfm/internal/xrand"
)

// TestTrainingPooledMatchesUnpooled is the byte-identity property behind
// the whole pooling design (DESIGN.md §10): training with the buffer pool
// and arena enabled produces bit-for-bit the same model — observed
// through its test-set probabilities — as the reference allocate-per-call
// path with TDFM_POOL=off. Pooled buffers are handed out zero-filled
// exactly like fresh ones, so where memory comes from can never leak into
// the numbers.
func TestTrainingPooledMatchesUnpooled(t *testing.T) {
	train, test := tinySet(t)
	cfg := Config{Arch: "convnet", Epochs: 2, BatchSize: 32, LR: 0.01}

	run := func(pooled bool) []float64 {
		old := tensor.PoolingEnabled()
		tensor.SetPooling(pooled)
		defer tensor.SetPooling(old)
		c, err := Baseline{}.Train(cfg, TrainSet{Data: train}, xrand.New(11))
		if err != nil {
			t.Fatalf("pooled=%v: %v", pooled, err)
		}
		probs := c.PredictProbs(test.X)
		return append([]float64(nil), probs.Data()...)
	}

	on, off := run(true), run(false)
	if len(on) != len(off) {
		t.Fatalf("probability counts differ: %d vs %d", len(on), len(off))
	}
	for i := range on {
		if math.Float64bits(on[i]) != math.Float64bits(off[i]) {
			t.Fatalf("probs[%d] differ: pooled %v vs unpooled %v (not bit-identical)", i, on[i], off[i])
		}
	}
}
