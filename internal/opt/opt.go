// Package opt implements the gradient-descent optimizers and learning-rate
// schedules used to train models in the TDFM study.
package opt

import (
	"fmt"
	"math"

	"tdfm/internal/nn"
	"tdfm/internal/tensor"
)

// Optimizer applies one update step to a set of parameters using their
// accumulated gradients, then the caller zeroes the gradients.
type Optimizer interface {
	Step(params []*nn.Param)
	// SetLR changes the current learning rate (used by schedules).
	SetLR(lr float64)
	// LR returns the current learning rate.
	LR() float64
	// Release returns the optimizer's per-parameter state buffers to the
	// global buffer pool and resets the state. Call it when the training
	// run that owns the optimizer finishes; the optimizer remains usable
	// (its next Step starts from fresh zero state, exactly like a new
	// optimizer).
	Release()
	Name() string
}

// SGD is stochastic gradient descent with classical momentum and decoupled
// L2 weight decay.
type SGD struct {
	lr          float64
	Momentum    float64
	WeightDecay float64

	velocity map[*nn.Param][]float64
}

var _ Optimizer = (*SGD)(nil)

// NewSGD returns an SGD optimizer.
func NewSGD(lr, momentum, weightDecay float64) *SGD {
	if lr <= 0 {
		panic(fmt.Sprintf("opt: NewSGD lr %v must be positive", lr))
	}
	return &SGD{lr: lr, Momentum: momentum, WeightDecay: weightDecay,
		velocity: make(map[*nn.Param][]float64)}
}

// Name implements Optimizer.
func (s *SGD) Name() string { return "sgd" }

// LR implements Optimizer.
func (s *SGD) LR() float64 { return s.lr }

// SetLR implements Optimizer.
func (s *SGD) SetLR(lr float64) { s.lr = lr }

// Step applies v ← m·v - lr·(g + wd·w); w ← w + v.
func (s *SGD) Step(params []*nn.Param) {
	for _, p := range params {
		w, g := p.W.Data(), p.Grad.Data()
		v, ok := s.velocity[p]
		if !ok {
			v = tensor.GetBuf(len(w))
			s.velocity[p] = v //tdfm:allow poolown the optimizer owns velocity state across Step calls; every buffer is returned by SGD.Release
		}
		for i := range w {
			grad := g[i] + s.WeightDecay*w[i]
			v[i] = s.Momentum*v[i] - s.lr*grad
			w[i] += v[i]
		}
	}
}

// Release implements Optimizer: velocity buffers return to the pool.
func (s *SGD) Release() {
	for p, v := range s.velocity {
		delete(s.velocity, p)
		tensor.PutBuf(v)
	}
}

// Adam is the Adam optimizer (Kingma & Ba) with bias correction.
type Adam struct {
	lr          float64
	Beta1       float64
	Beta2       float64
	Eps         float64
	WeightDecay float64

	t int
	m map[*nn.Param][]float64
	v map[*nn.Param][]float64
}

var _ Optimizer = (*Adam)(nil)

// NewAdam returns an Adam optimizer with the standard β₁=0.9, β₂=0.999.
func NewAdam(lr float64) *Adam {
	if lr <= 0 {
		panic(fmt.Sprintf("opt: NewAdam lr %v must be positive", lr))
	}
	return &Adam{
		lr: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: make(map[*nn.Param][]float64),
		v: make(map[*nn.Param][]float64),
	}
}

// Name implements Optimizer.
func (a *Adam) Name() string { return "adam" }

// LR implements Optimizer.
func (a *Adam) LR() float64 { return a.lr }

// SetLR implements Optimizer.
func (a *Adam) SetLR(lr float64) { a.lr = lr }

// Step applies the Adam update with bias correction.
func (a *Adam) Step(params []*nn.Param) {
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		w, g := p.W.Data(), p.Grad.Data()
		m, ok := a.m[p]
		if !ok {
			m = tensor.GetBuf(len(w))
			a.m[p] = m //tdfm:allow poolown the optimizer owns first-moment state across Step calls; every buffer is returned by Adam.Release
		}
		v, ok := a.v[p]
		if !ok {
			v = tensor.GetBuf(len(w))
			a.v[p] = v //tdfm:allow poolown the optimizer owns second-moment state across Step calls; every buffer is returned by Adam.Release
		}
		for i := range w {
			grad := g[i] + a.WeightDecay*w[i]
			m[i] = a.Beta1*m[i] + (1-a.Beta1)*grad
			v[i] = a.Beta2*v[i] + (1-a.Beta2)*grad*grad
			mhat := m[i] / c1
			vhat := v[i] / c2
			w[i] -= a.lr * mhat / (math.Sqrt(vhat) + a.Eps)
		}
	}
}

// Release implements Optimizer: moment buffers return to the pool and the
// bias-correction step counter resets.
func (a *Adam) Release() {
	for p, m := range a.m {
		delete(a.m, p)
		tensor.PutBuf(m)
	}
	for p, v := range a.v {
		delete(a.v, p)
		tensor.PutBuf(v)
	}
	a.t = 0
}

// GradNorm returns the global L2 norm of the accumulated gradients across
// all parameters — the trainer's divergence detector samples it each step
// to catch explosions before they reach NaN. It returns +Inf if any
// gradient entry is NaN or Inf (a NaN gradient has no meaningful norm but
// is certainly divergent).
func GradNorm(params []*nn.Param) float64 {
	sum := 0.0
	for _, p := range params {
		for _, g := range p.Grad.Data() {
			sum += g * g
		}
	}
	if math.IsNaN(sum) || math.IsInf(sum, 0) {
		return math.Inf(1)
	}
	return math.Sqrt(sum)
}

// ClipGradNorm rescales the accumulated gradients so their global L2 norm
// is at most maxNorm, returning the pre-clip norm. Gradients at or under
// the bound (or a non-positive maxNorm) are left untouched. A non-finite
// norm cannot be rescaled; the caller must restart instead (the trainer's
// divergence recovery does).
func ClipGradNorm(params []*nn.Param, maxNorm float64) float64 {
	norm := GradNorm(params)
	if maxNorm <= 0 || norm <= maxNorm || math.IsInf(norm, 0) {
		return norm
	}
	scale := maxNorm / norm
	for _, p := range params {
		g := p.Grad.Data()
		for i := range g {
			g[i] *= scale
		}
	}
	return norm
}

// Schedule maps an epoch index to a learning-rate multiplier.
type Schedule interface {
	// Factor returns the multiplier applied to the base learning rate at
	// the start of the given zero-based epoch.
	Factor(epoch int) float64
}

// ConstSchedule keeps the learning rate fixed.
type ConstSchedule struct{}

// Factor implements Schedule.
func (ConstSchedule) Factor(int) float64 { return 1 }

// StepDecay multiplies the learning rate by Gamma every Every epochs.
type StepDecay struct {
	Every int
	Gamma float64
}

// Factor implements Schedule.
func (s StepDecay) Factor(epoch int) float64 {
	if s.Every <= 0 {
		return 1
	}
	return math.Pow(s.Gamma, float64(epoch/s.Every))
}

// CosineDecay anneals the learning rate to zero over Total epochs following
// a half cosine.
type CosineDecay struct {
	Total int
}

// Factor implements Schedule.
func (c CosineDecay) Factor(epoch int) float64 {
	if c.Total <= 1 {
		return 1
	}
	if epoch >= c.Total {
		return 0
	}
	return 0.5 * (1 + math.Cos(math.Pi*float64(epoch)/float64(c.Total)))
}
