package opt

import (
	"math"
	"testing"

	"tdfm/internal/nn"
	"tdfm/internal/tensor"
	"tdfm/internal/xrand"
)

// quadratic builds a single-parameter "network" whose loss is ½‖w - target‖²
// so that grad = w - target; any sane optimizer must converge to target.
func quadratic(t *testing.T, o Optimizer, steps int, tol float64) {
	t.Helper()
	rng := xrand.New(1)
	d := nn.NewDense("q", 2, 2, rng)
	p := d.Params()[0] // weight matrix only
	target := []float64{1, -2, 3, -4}
	for s := 0; s < steps; s++ {
		w := p.W.Data()
		g := p.Grad.Data()
		for i := range w {
			g[i] = w[i] - target[i]
		}
		o.Step([]*nn.Param{p})
		p.ZeroGrad()
	}
	for i, v := range p.W.Data() {
		if math.Abs(v-target[i]) > tol {
			t.Fatalf("%s did not converge: w[%d]=%v, want %v", o.Name(), i, v, target[i])
		}
	}
}

func TestSGDConvergesOnQuadratic(t *testing.T) {
	quadratic(t, NewSGD(0.1, 0, 0), 200, 1e-6)
}

func TestSGDMomentumConverges(t *testing.T) {
	quadratic(t, NewSGD(0.05, 0.9, 0), 400, 1e-6)
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	quadratic(t, NewAdam(0.05), 2000, 1e-3)
}

func TestSGDWeightDecayShrinksWeights(t *testing.T) {
	rng := xrand.New(2)
	d := nn.NewDense("q", 4, 4, rng)
	p := d.Params()[0]
	before := p.W.L2Norm()
	s := NewSGD(0.1, 0, 0.5)
	// Zero gradient: only decay acts.
	for i := 0; i < 10; i++ {
		s.Step([]*nn.Param{p})
	}
	if after := p.W.L2Norm(); after >= before {
		t.Fatalf("weight decay did not shrink weights: %v -> %v", before, after)
	}
}

func TestSetLR(t *testing.T) {
	s := NewSGD(0.1, 0, 0)
	s.SetLR(0.01)
	if s.LR() != 0.01 {
		t.Fatal("SetLR ignored")
	}
	a := NewAdam(0.1)
	a.SetLR(0.02)
	if a.LR() != 0.02 {
		t.Fatal("Adam SetLR ignored")
	}
}

func TestNewSGDPanicsOnBadLR(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSGD(0, 0, 0)
}

func TestStepDecaySchedule(t *testing.T) {
	s := StepDecay{Every: 10, Gamma: 0.1}
	if s.Factor(0) != 1 || s.Factor(9) != 1 {
		t.Fatal("early factor wrong")
	}
	if math.Abs(s.Factor(10)-0.1) > 1e-12 || math.Abs(s.Factor(25)-0.01) > 1e-12 {
		t.Fatal("decayed factor wrong")
	}
	if (StepDecay{}).Factor(100) != 1 {
		t.Fatal("zero-Every must be constant")
	}
}

func TestCosineDecaySchedule(t *testing.T) {
	c := CosineDecay{Total: 10}
	if c.Factor(0) != 1 {
		t.Fatalf("Factor(0) = %v", c.Factor(0))
	}
	if math.Abs(c.Factor(5)-0.5) > 1e-12 {
		t.Fatalf("Factor(mid) = %v", c.Factor(5))
	}
	if c.Factor(10) != 0 || c.Factor(15) != 0 {
		t.Fatal("post-total factor must be 0")
	}
	mono := ConstSchedule{}
	if mono.Factor(3) != 1 {
		t.Fatal("const schedule wrong")
	}
}

// Adam must make progress even with badly scaled gradients where plain SGD
// with the same LR diverges slowly; sanity check on a 1-d ravine.
func TestAdamHandlesIllConditioning(t *testing.T) {
	rng := xrand.New(3)
	d := nn.NewDense("q", 1, 2, rng)
	p := d.Params()[0]
	p.W.Data()[0], p.W.Data()[1] = 5, 5
	a := NewAdam(0.1)
	for s := 0; s < 3000; s++ {
		g := p.Grad.Data()
		w := p.W.Data()
		g[0] = 100 * w[0]  // steep direction
		g[1] = 0.01 * w[1] // shallow direction
		a.Step([]*nn.Param{p})
		p.ZeroGrad()
	}
	if math.Abs(p.W.Data()[0]) > 0.01 || math.Abs(p.W.Data()[1]) > 0.5 {
		t.Fatalf("Adam failed on ill-conditioned problem: %v", p.W.Data())
	}
}

func TestTensorUnusedImportGuard(t *testing.T) {
	// Keep the tensor import honest (used by other tests indirectly).
	if tensor.New(1).Size() != 1 {
		t.Fatal("tensor broken")
	}
}
