// Package metrics implements the reliability measures of the study:
// classification accuracy and the Accuracy Delta (AD) of §III-C, plus the
// summary statistics (mean, standard deviation, 95% confidence intervals)
// used for the paper's error bars.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Accuracy returns the fraction of predictions matching the labels.
// It panics if the slices differ in length and returns 0 for empty input.
func Accuracy(pred, labels []int) float64 {
	if len(pred) != len(labels) {
		panic(fmt.Sprintf("metrics: %d predictions vs %d labels", len(pred), len(labels)))
	}
	if len(pred) == 0 {
		return 0
	}
	correct := 0
	for i := range pred {
		if pred[i] == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(pred))
}

// AccuracyDelta is the paper's AD metric (§III-C): the proportion of test
// images misclassified by the faulty model out of all test images that the
// golden model classified correctly. Lower is better; a perfectly resilient
// model has AD 0. Images the golden model already misclassified are not
// counted, so AD isolates the damage attributable to the training-data
// faults.
//
// If the golden model classified nothing correctly the AD is defined as 0
// (there is no damage to measure). Panics when the prediction and label
// slices differ in length.
func AccuracyDelta(goldenPred, faultyPred, labels []int) float64 {
	if len(goldenPred) != len(labels) || len(faultyPred) != len(labels) {
		panic(fmt.Sprintf("metrics: prediction/label length mismatch %d/%d/%d",
			len(goldenPred), len(faultyPred), len(labels)))
	}
	goldenCorrect, damaged := 0, 0
	for i := range labels {
		if goldenPred[i] != labels[i] {
			continue
		}
		goldenCorrect++
		if faultyPred[i] != labels[i] {
			damaged++
		}
	}
	if goldenCorrect == 0 {
		return 0
	}
	return float64(damaged) / float64(goldenCorrect)
}

// ReverseDelta is the complementary measure the paper checks and finds
// insignificant (§III-C): the proportion of ALL test images that the golden
// model misclassified but the faulty model classifies correctly. It is
// normalized by the full test size — not by the (often tiny) count of
// golden mistakes — so it is directly comparable with DamageRate, the
// same-normalization forward measure. Panics when the prediction and
// label slices differ in length.
func ReverseDelta(goldenPred, faultyPred, labels []int) float64 {
	if len(goldenPred) != len(labels) || len(faultyPred) != len(labels) {
		panic("metrics: prediction/label length mismatch")
	}
	if len(labels) == 0 {
		return 0
	}
	recovered := 0
	for i := range labels {
		if goldenPred[i] != labels[i] && faultyPred[i] == labels[i] {
			recovered++
		}
	}
	return float64(recovered) / float64(len(labels))
}

// DamageRate is the forward counterpart of ReverseDelta with the same
// normalization: the proportion of ALL test images the golden model got
// right and the faulty model gets wrong. (AD normalizes the same numerator
// by the golden-correct count instead.) Panics when the prediction and
// label slices differ in length.
func DamageRate(goldenPred, faultyPred, labels []int) float64 {
	if len(goldenPred) != len(labels) || len(faultyPred) != len(labels) {
		panic("metrics: prediction/label length mismatch")
	}
	if len(labels) == 0 {
		return 0
	}
	damaged := 0
	for i := range labels {
		if goldenPred[i] == labels[i] && faultyPred[i] != labels[i] {
			damaged++
		}
	}
	return float64(damaged) / float64(len(labels))
}

// ConfusionCounts partitions the test set by (golden correct?, faulty
// correct?) for diagnostic reporting.
type ConfusionCounts struct {
	BothCorrect int
	OnlyGolden  int // golden right, faulty wrong: the AD numerator
	OnlyFaulty  int
	BothWrong   int
}

// Confusion computes the four-way partition.
func Confusion(goldenPred, faultyPred, labels []int) ConfusionCounts {
	var c ConfusionCounts
	for i := range labels {
		g := goldenPred[i] == labels[i]
		f := faultyPred[i] == labels[i]
		switch {
		case g && f:
			c.BothCorrect++
		case g && !f:
			c.OnlyGolden++
		case !g && f:
			c.OnlyFaulty++
		default:
			c.BothWrong++
		}
	}
	return c
}

// Summary holds the replication statistics of one experiment configuration.
type Summary struct {
	N      int
	Mean   float64
	Std    float64 // sample standard deviation
	CI95   float64 // half-width of the 95% confidence interval
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes the replication statistics of a sample. The 95%
// confidence half-width uses Student's t critical value for small samples.
func Summarize(xs []float64) Summary {
	n := len(xs)
	if n == 0 {
		return Summary{}
	}
	sum := 0.0
	mn, mx := xs[0], xs[0]
	for _, v := range xs {
		sum += v
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	mean := sum / float64(n)
	varSum := 0.0
	for _, v := range xs {
		d := v - mean
		varSum += d * d
	}
	std := 0.0
	if n > 1 {
		std = math.Sqrt(varSum / float64(n-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	median := sorted[n/2]
	if n%2 == 0 {
		median = (sorted[n/2-1] + sorted[n/2]) / 2
	}
	ci := 0.0
	if n > 1 {
		ci = tCritical95(n-1) * std / math.Sqrt(float64(n))
	}
	return Summary{N: n, Mean: mean, Std: std, CI95: ci, Min: mn, Max: mx, Median: median}
}

// tCritical95 returns the two-sided 95% Student's t critical value for the
// given degrees of freedom (table lookup with asymptote 1.96).
func tCritical95(df int) float64 {
	table := []float64{
		0, // df=0 unused
		12.706, 4.303, 3.182, 2.776, 2.571,
		2.447, 2.365, 2.306, 2.262, 2.228,
		2.201, 2.179, 2.160, 2.145, 2.131,
		2.120, 2.110, 2.101, 2.093, 2.086,
		2.080, 2.074, 2.069, 2.064, 2.060,
		2.056, 2.052, 2.048, 2.045, 2.042,
	}
	if df <= 0 {
		return 0
	}
	if df < len(table) {
		return table[df]
	}
	return 1.96
}

// OverlapCI reports whether two summaries' 95% confidence intervals
// overlap — the statistical-similarity check the paper applies when
// comparing combined fault types (§IV-C).
func OverlapCI(a, b Summary) bool {
	aLo, aHi := a.Mean-a.CI95, a.Mean+a.CI95
	bLo, bHi := b.Mean-b.CI95, b.Mean+b.CI95
	return aLo <= bHi && bLo <= aHi
}

// PerClassAccuracy returns the accuracy restricted to each true class
// (recall per class). Classes absent from the labels report 0. Panics on
// a prediction/label length mismatch or a label outside [0, numClasses).
func PerClassAccuracy(pred, labels []int, numClasses int) []float64 {
	if len(pred) != len(labels) {
		panic(fmt.Sprintf("metrics: %d predictions vs %d labels", len(pred), len(labels)))
	}
	correct := make([]int, numClasses)
	total := make([]int, numClasses)
	for i, y := range labels {
		if y < 0 || y >= numClasses {
			panic(fmt.Sprintf("metrics: label %d out of [0,%d)", y, numClasses))
		}
		total[y]++
		if pred[i] == y {
			correct[y]++
		}
	}
	out := make([]float64, numClasses)
	for c := range out {
		if total[c] > 0 {
			out[c] = float64(correct[c]) / float64(total[c])
		}
	}
	return out
}

// ConfusionMatrix returns the numClasses×numClasses count matrix
// m[true][predicted]. Panics on a prediction/label length mismatch or a
// class outside [0, numClasses).
func ConfusionMatrix(pred, labels []int, numClasses int) [][]int {
	if len(pred) != len(labels) {
		panic(fmt.Sprintf("metrics: %d predictions vs %d labels", len(pred), len(labels)))
	}
	m := make([][]int, numClasses)
	for i := range m {
		m[i] = make([]int, numClasses)
	}
	for i, y := range labels {
		p := pred[i]
		if y < 0 || y >= numClasses || p < 0 || p >= numClasses {
			panic(fmt.Sprintf("metrics: class out of range (true %d, pred %d)", y, p))
		}
		m[y][p]++
	}
	return m
}
