package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"tdfm/internal/xrand"
)

func TestAccuracy(t *testing.T) {
	if got := Accuracy([]int{1, 2, 3}, []int{1, 0, 3}); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("Accuracy = %v", got)
	}
	if Accuracy(nil, nil) != 0 {
		t.Fatal("empty accuracy should be 0")
	}
}

func TestAccuracyPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Accuracy([]int{1}, []int{1, 2})
}

func TestAccuracyDeltaDefinition(t *testing.T) {
	labels := []int{0, 0, 0, 0, 0}
	golden := []int{0, 0, 0, 1, 1} // correct on 0,1,2
	faulty := []int{0, 1, 1, 0, 1} // wrong on 1,2 of the golden-correct set
	if got := AccuracyDelta(golden, faulty, labels); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("AD = %v, want 2/3", got)
	}
}

func TestAccuracyDeltaPerfectFaulty(t *testing.T) {
	labels := []int{0, 1, 2}
	golden := []int{0, 1, 2}
	if AccuracyDelta(golden, golden, labels) != 0 {
		t.Fatal("identical models must have AD 0")
	}
}

func TestAccuracyDeltaGoldenAllWrong(t *testing.T) {
	labels := []int{0, 0}
	golden := []int{1, 1}
	faulty := []int{1, 1}
	if AccuracyDelta(golden, faulty, labels) != 0 {
		t.Fatal("AD with no golden-correct images must be 0")
	}
}

func TestAccuracyDeltaEmpty(t *testing.T) {
	if AccuracyDelta(nil, nil, nil) != 0 {
		t.Fatal("empty AD should be 0")
	}
	if AccuracyDelta([]int{}, []int{}, []int{}) != 0 {
		t.Fatal("zero-length AD should be 0")
	}
}

func TestAccuracyDeltaPanicsOnMismatch(t *testing.T) {
	cases := []struct {
		name                   string
		golden, faulty, labels []int
	}{
		{"short golden", []int{0}, []int{0, 1}, []int{0, 1}},
		{"short faulty", []int{0, 1}, []int{0}, []int{0, 1}},
		{"short labels", []int{0, 1}, []int{0, 1}, []int{0}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			AccuracyDelta(tc.golden, tc.faulty, tc.labels)
		})
	}
}

func TestAccuracyBounds(t *testing.T) {
	if Accuracy([]int{2, 2}, []int{2, 2}) != 1 {
		t.Fatal("all-correct accuracy should be 1")
	}
	if Accuracy([]int{0, 0}, []int{1, 1}) != 0 {
		t.Fatal("all-wrong accuracy should be 0")
	}
}

// Property: AD is in [0,1] and does not count images the golden model got
// wrong (changing faulty predictions there never alters AD).
func TestQuickADInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed%953 + 1)
		n := 1 + r.IntN(50)
		k := 2 + r.IntN(5)
		labels := make([]int, n)
		golden := make([]int, n)
		faulty := make([]int, n)
		for i := range labels {
			labels[i] = r.IntN(k)
			golden[i] = r.IntN(k)
			faulty[i] = r.IntN(k)
		}
		ad := AccuracyDelta(golden, faulty, labels)
		if ad < 0 || ad > 1 {
			return false
		}
		// Mutate faulty predictions only where golden was wrong.
		mutated := append([]int(nil), faulty...)
		for i := range mutated {
			if golden[i] != labels[i] {
				mutated[i] = r.IntN(k)
			}
		}
		return AccuracyDelta(golden, mutated, labels) == ad
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestReverseDelta(t *testing.T) {
	labels := []int{0, 0, 0, 0}
	golden := []int{1, 1, 0, 0} // wrong on 0,1
	faulty := []int{0, 1, 0, 0} // recovers index 0
	// 1 recovered image out of 4 test images.
	if got := ReverseDelta(golden, faulty, labels); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("ReverseDelta = %v", got)
	}
	if ReverseDelta([]int{0}, []int{0}, []int{0}) != 0 {
		t.Fatal("no golden-wrong images must give 0")
	}
	if ReverseDelta(nil, nil, nil) != 0 {
		t.Fatal("empty input must give 0")
	}
}

func TestDamageRateMatchesConfusion(t *testing.T) {
	labels := []int{0, 0, 0, 0}
	golden := []int{0, 0, 1, 1}
	faulty := []int{0, 1, 0, 1}
	// OnlyGolden = 1 of 4 images.
	if got := DamageRate(golden, faulty, labels); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("DamageRate = %v", got)
	}
	c := Confusion(golden, faulty, labels)
	want := float64(c.OnlyGolden) / float64(len(labels))
	if got := DamageRate(golden, faulty, labels); math.Abs(got-want) > 1e-12 {
		t.Fatal("DamageRate inconsistent with Confusion")
	}
	rev := ReverseDelta(golden, faulty, labels)
	wantRev := float64(c.OnlyFaulty) / float64(len(labels))
	if math.Abs(rev-wantRev) > 1e-12 {
		t.Fatal("ReverseDelta inconsistent with Confusion")
	}
}

func TestConfusionPartition(t *testing.T) {
	labels := []int{0, 0, 0, 0}
	golden := []int{0, 0, 1, 1}
	faulty := []int{0, 1, 0, 1}
	c := Confusion(golden, faulty, labels)
	if c.BothCorrect != 1 || c.OnlyGolden != 1 || c.OnlyFaulty != 1 || c.BothWrong != 1 {
		t.Fatalf("confusion %+v", c)
	}
	if c.BothCorrect+c.OnlyGolden+c.OnlyFaulty+c.BothWrong != len(labels) {
		t.Fatal("partition does not cover all samples")
	}
}

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || math.Abs(s.Mean-5) > 1e-12 {
		t.Fatalf("mean = %v", s.Mean)
	}
	if math.Abs(s.Std-math.Sqrt(32.0/7)) > 1e-9 {
		t.Fatalf("std = %v", s.Std)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatal("min/max wrong")
	}
	if math.Abs(s.Median-4.5) > 1e-12 {
		t.Fatalf("median = %v", s.Median)
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Fatal("empty summary wrong")
	}
	s := Summarize([]float64{3})
	if s.N != 1 || s.Mean != 3 || s.Std != 0 || s.CI95 != 0 || s.Median != 3 {
		t.Fatalf("singleton summary %+v", s)
	}
}

func TestCI95ShrinksWithN(t *testing.T) {
	base := []float64{1, 2, 3, 4, 5}
	small := Summarize(base)
	big := Summarize(append(append(append([]float64{}, base...), base...), base...))
	if big.CI95 >= small.CI95 {
		t.Fatalf("CI should shrink with n: %v vs %v", big.CI95, small.CI95)
	}
}

func TestTCriticalMonotone(t *testing.T) {
	if tCritical95(1) <= tCritical95(5) || tCritical95(5) <= tCritical95(100) {
		t.Fatal("t critical values not decreasing")
	}
	if tCritical95(1000) != 1.96 {
		t.Fatal("asymptote wrong")
	}
}

func TestOverlapCI(t *testing.T) {
	a := Summary{Mean: 0.5, CI95: 0.1}
	b := Summary{Mean: 0.55, CI95: 0.1}
	c := Summary{Mean: 0.9, CI95: 0.05}
	if !OverlapCI(a, b) {
		t.Fatal("overlapping intervals reported disjoint")
	}
	if OverlapCI(a, c) {
		t.Fatal("disjoint intervals reported overlapping")
	}
}

func TestPerClassAccuracy(t *testing.T) {
	labels := []int{0, 0, 1, 1, 2}
	pred := []int{0, 1, 1, 1, 0}
	got := PerClassAccuracy(pred, labels, 3)
	want := []float64{0.5, 1, 0}
	for c := range want {
		if math.Abs(got[c]-want[c]) > 1e-12 {
			t.Fatalf("class %d: %v, want %v", c, got[c], want[c])
		}
	}
	// Class absent from labels reports 0.
	if got := PerClassAccuracy([]int{0}, []int{0}, 4); got[3] != 0 {
		t.Fatal("absent class should report 0")
	}
}

func TestConfusionMatrix(t *testing.T) {
	labels := []int{0, 0, 1, 1}
	pred := []int{0, 1, 1, 1}
	m := ConfusionMatrix(pred, labels, 2)
	if m[0][0] != 1 || m[0][1] != 1 || m[1][1] != 2 || m[1][0] != 0 {
		t.Fatalf("confusion %v", m)
	}
	total := 0
	for _, row := range m {
		for _, v := range row {
			total += v
		}
	}
	if total != len(labels) {
		t.Fatal("matrix does not cover all samples")
	}
}

func TestConfusionMatrixPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ConfusionMatrix([]int{5}, []int{0}, 2)
}
