package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// NoDeterminism flags the four constructs that can silently break the
// repo's byte-identical-results guarantee when they appear in
// result-bearing code:
//
//   - importing math/rand or math/rand/v2: all experiment randomness
//     must flow through internal/xrand, whose streams are keyed by
//     (seed, cell key), never by call order;
//   - reading the wall clock (time.Now, time.Since, time.Until):
//     wall-clock values in a result path make two identical runs differ;
//   - waiting on the wall clock (time.Sleep, time.After, time.AfterFunc,
//     time.Tick, time.NewTimer, time.NewTicker): delays and deadlines
//     must flow through an injected clock (chaos.Clock) so tests drive
//     every timeout path deterministically with a FakeClock;
//   - bare `go` statements: ad-hoc goroutines reorder work; concurrency
//     belongs in internal/parallel, whose pools keep results
//     schedule-independent.
//
// The injected-clock idiom is recognised by construction: the pass flags
// only selectors on the time package itself, so code that calls
// Now/Sleep/NewTimer on a Clock interface value (clock.Sleep(d),
// s.opts.Clock.NewTimer(deadline)) passes clean — which is exactly the
// fix the wait findings ask for.
//
// Packages on the allowlist are exempt wholesale: the sanctioned
// randomness/concurrency/observability layers need these primitives to
// exist, and cmd/ binaries legitimately time and parallelize their own
// UX (progress lines, signal handling). A Deny entry carves a package
// back out of an allowed subtree: it is linted like any other package,
// so its exemptions must be per-line //tdfm:allow directives with
// reasons instead of a blanket pass. Everywhere else a finding needs a
// fix or a reasoned //tdfm:allow.
type NoDeterminism struct {
	// Allow lists module-relative package paths exempt from the pass; a
	// trailing slash entry ("cmd/") exempts the whole subtree.
	Allow []string
	// Deny lists packages excluded from Allow again (same syntax,
	// including trailing-slash subtrees). Deny beats Allow: a package
	// matching both is linted.
	Deny []string
}

// NewNoDeterminism returns the pass with the repo's sanctioned
// allowlist.
func NewNoDeterminism() *NoDeterminism {
	return &NoDeterminism{
		Allow: []string{
			"internal/xrand",    // the sanctioned RNG wraps math/rand/v2's PCG
			"internal/obs",      // journal timestamps, progress ETAs, heartbeats
			"internal/parallel", // the shared worker-pool implementation
			"internal/chaos",    // fault injection arms goroutine-shaped failures
			"cmd/",              // CLIs own their wall-clock UX and signal handling
		},
		Deny: []string{
			// The serving binary hosts hot-swap and member supervision:
			// its backoff and health timers must run on chaos.Clock so the
			// swap-chaos acceptance suite can drive them with a FakeClock.
			// Operator-UX exceptions in it are individually justified with
			// //tdfm:allow.
			"cmd/tdfmserve",
			// The distributed grid's lease deadlines, reissue backoff, and
			// worker heartbeats must run on chaos.Clock so the grid-chaos
			// acceptance suite can expire and reissue leases on a FakeClock
			// with zero wall-clock sleeps. Listing it here keeps the
			// requirement explicit (and binding even if a broader Allow
			// entry ever covers it).
			"internal/dist",
		},
	}
}

// Name implements Pass.
func (p *NoDeterminism) Name() string { return "nodeterminism" }

// Doc implements Pass.
func (p *NoDeterminism) Doc() string {
	return "global math/rand, wall-clock reads and waits, and bare goroutines outside the sanctioned packages"
}

// allowed reports whether the package is exempt: on the allowlist and
// not carved back out by the denylist.
func (p *NoDeterminism) allowed(rel string) bool {
	return !matchPath(p.Deny, rel) && matchPath(p.Allow, rel)
}

// matchPath reports whether rel matches any listed path, exactly or
// under a trailing-slash subtree entry.
func matchPath(list []string, rel string) bool {
	for _, a := range list {
		if rel == a || rel == strings.TrimSuffix(a, "/") {
			return true
		}
		if strings.HasSuffix(a, "/") && strings.HasPrefix(rel, a) {
			return true
		}
	}
	return false
}

// Run implements Pass.
func (p *NoDeterminism) Run(pkg *Package) []Finding {
	if p.allowed(pkg.RelPath) {
		return nil
	}
	var out []Finding
	report := func(n ast.Node, format string, args ...any) {
		out = append(out, Finding{Pass: p.Name(), Pos: pkg.Fset.Position(n.Pos()), Message: fmt.Sprintf(format, args...)})
	}
	for _, f := range pkg.Files {
		timeNames := importNames(f, "time")
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				report(imp, "import of %s: derive randomness from internal/xrand so streams stay keyed by seed and cell", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.GoStmt:
				report(x, "bare go statement: run concurrent work on internal/parallel so results stay schedule-independent")
			case *ast.SelectorExpr:
				id, ok := x.X.(*ast.Ident)
				if !ok || !timeNames[id.Name] || !isPackageRef(pkg, id) {
					return true
				}
				switch x.Sel.Name {
				case "Now", "Since", "Until":
					report(x, "time.%s reads the wall clock; results must not depend on when a run happens", x.Sel.Name)
				case "Sleep", "After", "AfterFunc", "Tick", "NewTimer", "NewTicker":
					report(x, "time.%s waits on the wall clock; inject a clock (chaos.Clock) so delays and deadlines run deterministically in tests", x.Sel.Name)
				}
			}
			return true
		})
	}
	return out
}

// importNames maps the local names under which file f imports path
// (usually just the base name; renamed imports are honoured, dot and
// blank imports are ignored).
func importNames(f *ast.File, path string) map[string]bool {
	names := make(map[string]bool)
	for _, imp := range f.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil || p != path {
			continue
		}
		switch {
		case imp.Name == nil:
			names[path[strings.LastIndex(path, "/")+1:]] = true
		case imp.Name.Name == "_" || imp.Name.Name == ".":
			// nothing addressable by selector
		default:
			names[imp.Name.Name] = true
		}
	}
	return names
}

// isPackageRef reports whether id resolves to a package name (not a
// local variable shadowing one). Without type information it errs on
// the side of treating the identifier as the package.
func isPackageRef(pkg *Package, id *ast.Ident) bool {
	obj, ok := pkg.Info.Uses[id]
	if !ok {
		return true // no type info: assume the import is meant
	}
	_, isPkg := obj.(*types.PkgName)
	return isPkg
}
