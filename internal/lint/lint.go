// Package lint is the pass framework behind cmd/tdfmlint, the repo's
// go vet-style determinism and correctness analyzer. It generalizes the
// original cmd/vetdocs single-check design: a Pass inspects one loaded
// (parsed and optionally type-checked) package and reports Findings;
// Run executes a set of passes over a set of packages, applies
// `//tdfm:allow <pass> <reason>` suppression directives, and flags
// malformed or useless directives as findings of their own.
//
// Every pass uses only the standard library (go/ast, go/parser,
// go/types); cross-package type information comes from go/types'
// source importer, so the analyzer needs no compiled artifacts and no
// third-party modules.
//
// The shipped passes guard the invariants the reproduction's claims
// rest on — byte-identical grids at any worker count, under resume and
// under fault recovery:
//
//   - nodeterminism: unseeded randomness, wall-clock reads, and bare
//     goroutines outside the sanctioned concurrency/observability
//     packages;
//   - maporder: map iteration whose body produces order-sensitive
//     output (slice appends, float accumulation, writer output);
//   - errwrap: sentinel errors compared with == or wrapped without %w;
//   - paniccontract: exported facade functions that can panic but do
//     not document it;
//   - docs: missing godoc on exported identifiers (the old vetdocs
//     check; cmd/vetdocs remains as a thin wrapper over it);
//   - poolown: pooled tensor buffers released on every return path,
//     never used after release, never escaping the owning function
//     (path-sensitive, on the cfg.go/dataflow.go engine);
//   - lockdiscipline: mutex lock/unlock pairing on all paths,
//     double-lock detection, and no blocking operations while a
//     serving/registry hot-path lock is held (same engine).
//
// The last two run on a per-function control-flow graph with a forward
// abstract-interpretation driver — see cfg.go for the engine and
// DESIGN.md §12 for its design; it is the extension point for any
// future path-sensitive pass.
package lint

import (
	"fmt"
	"go/token"
	"sort"
)

// Finding is one problem a pass reports, anchored to a source position.
type Finding struct {
	// Pass is the name of the pass that produced the finding (or the
	// pseudo-pass "directive" for malformed suppressions).
	Pass string
	// Pos locates the finding; suppression directives match on its file
	// and line.
	Pos token.Position
	// Message describes the problem and, where possible, the fix.
	Message string
	// SuppressedBy is the justification of the //tdfm:allow directive
	// that silenced this finding; empty for active findings. RunAll
	// returns suppressed findings so tooling (tdfmlint -json) can show
	// what the directives are excusing.
	SuppressedBy string
}

// String formats the finding in the conventional path:line:col style.
func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Pass, f.Message)
}

// Pass is one analyzer: it inspects a loaded package and reports
// findings. Passes must be stateless across Run calls (they may run
// over many packages) and must not mutate the package.
type Pass interface {
	// Name is the identifier used in output and in //tdfm:allow
	// directives.
	Name() string
	// Doc is a one-line description for -list output.
	Doc() string
	// Run inspects pkg and returns its findings.
	Run(pkg *Package) []Finding
}

// AllPasses returns a fresh instance of every shipped pass with default
// configuration, in the order tdfmlint runs them. The set of names also
// defines which passes a //tdfm:allow directive may reference.
func AllPasses() []Pass {
	return []Pass{
		NewNoDeterminism(),
		NewMapOrder(),
		NewErrWrap(),
		NewPanicContract(),
		NewDocs(),
		NewPoolOwn(),
		NewLockDiscipline(),
	}
}

// KnownPassNames returns the names a //tdfm:allow directive may
// legally reference: every shipped pass, whether or not it is part of
// the current run (cmd/vetdocs runs only the docs pass but must not
// reject the suppressions cmd/tdfmlint relies on).
func KnownPassNames() map[string]bool {
	known := make(map[string]bool)
	for _, p := range AllPasses() {
		known[p.Name()] = true
	}
	return known
}

// Run executes the passes over every package, applies suppression
// directives, and returns the surviving findings plus any directive
// problems (unknown pass, missing reason, suppressing nothing, exact
// duplicates), sorted by position then pass name.
func Run(pkgs []*Package, passes []Pass) []Finding {
	active, _ := RunAll(pkgs, passes)
	return active
}

// RunAll is Run but also returns the findings that //tdfm:allow
// directives suppressed, each carrying the directive's justification in
// SuppressedBy. Only the active findings gate; the suppressed ones
// exist for tooling that audits what the tree's directives excuse.
func RunAll(pkgs []*Package, passes []Pass) (active, suppressed []Finding) {
	known := KnownPassNames()
	ran := make(map[string]bool, len(passes))
	for _, p := range passes {
		ran[p.Name()] = true
	}
	for _, pkg := range pkgs {
		dirs, bad := collectDirectives(pkg, known)
		active = append(active, bad...)
		for _, p := range passes {
			for _, f := range p.Run(pkg) {
				if d := suppressedBy(dirs, f); d != nil {
					f.SuppressedBy = d.Reason
					suppressed = append(suppressed, f)
				} else {
					active = append(active, f)
				}
			}
		}
		// A directive for a pass that ran but suppressed nothing is
		// stale: the code it excused has moved or been fixed.
		for _, d := range dirs {
			if ran[d.Pass] && !d.used && !d.dup {
				active = append(active, Finding{
					Pass: DirectivePass,
					Pos:  d.Pos,
					Message: fmt.Sprintf(
						"//tdfm:allow %s suppresses nothing; delete the stale directive", d.Pass),
				})
			}
		}
	}
	sortFindings(active)
	sortFindings(suppressed)
	return active, suppressed
}

// sortFindings orders findings by file, line, column, then pass.
func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Pass < b.Pass
	})
}
