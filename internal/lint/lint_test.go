package lint

import (
	"errors"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// sharedLoader amortizes source-importer work across the golden tests.
var sharedLoader = NewLoader()

// loadTestdata loads one golden package under testdata/src.
func loadTestdata(t *testing.T, name string) *Package {
	t.Helper()
	pkg, err := sharedLoader.Load(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatal(err)
	}
	if len(pkg.TypeErrors) > 0 {
		t.Fatalf("testdata package %s has type errors: %v", name, pkg.TypeErrors)
	}
	return pkg
}

// wantRe matches a want annotation: `want "substr"` expects a finding
// on the same line, `want@+2 "substr"` two lines below the comment.
var wantRe = regexp.MustCompile(`want(@[+-]\d+)?\s+"((?:[^"\\]|\\.)*)"`)

// parseWants extracts the expected findings (line → substrings) from
// every file of a testdata package directory.
func parseWants(t *testing.T, dir string) map[int][]string {
	t.Helper()
	wants := make(map[int][]string)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				target := i + 1
				if m[1] != "" {
					off, err := parseOffset(m[1][1:])
					if err != nil {
						t.Fatalf("%s:%d: bad want offset %q", e.Name(), i+1, m[1])
					}
					target += off
				}
				wants[target] = append(wants[target], m[2])
			}
		}
	}
	return wants
}

// parseOffset parses the "+2"/"-1" suffix of a want annotation.
func parseOffset(s string) (int, error) {
	neg := strings.HasPrefix(s, "-")
	s = strings.TrimLeft(s, "+-")
	n := 0
	for _, r := range s {
		if r < '0' || r > '9' {
			return 0, os.ErrInvalid
		}
		n = n*10 + int(r-'0')
	}
	if neg {
		n = -n
	}
	return n, nil
}

// checkGolden compares findings against the package's want
// annotations: every finding must be wanted on its line, every want
// must be matched by a finding.
func checkGolden(t *testing.T, dir string, findings []Finding) {
	t.Helper()
	wants := parseWants(t, dir)
	for _, f := range findings {
		matched := false
		rest := wants[f.Pos.Line][:0:0]
		for _, w := range wants[f.Pos.Line] {
			if !matched && strings.Contains(f.Message, w) {
				matched = true
				continue
			}
			rest = append(rest, w)
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
			continue
		}
		wants[f.Pos.Line] = rest
	}
	for line, ws := range wants {
		for _, w := range ws {
			t.Errorf("%s: line %d: expected finding matching %q, got none", dir, line, w)
		}
	}
}

// TestGoldenPasses runs each pass over its seeded-violation package
// and checks every finding (and non-finding) against the `// want`
// annotations.
func TestGoldenPasses(t *testing.T) {
	cases := []struct {
		name string
		pass func(pkg *Package) Pass
	}{
		{"nodeterminism", func(*Package) Pass { return NewNoDeterminism() }},
		{"maporder", func(*Package) Pass { return NewMapOrder() }},
		{"errwrap", func(*Package) Pass { return NewErrWrap() }},
		{"paniccontract", func(pkg *Package) Pass {
			// The golden package stands in for a facade.
			return &PanicContract{Facades: []string{pkg.RelPath}}
		}},
		{"docs", func(*Package) Pass { return NewDocs() }},
		{"poolown", func(*Package) Pass { return NewPoolOwn() }},
		{"lockdiscipline", func(pkg *Package) Pass {
			// The golden package stands in for a hot-path package.
			return &LockDiscipline{BlockingScope: []string{pkg.RelPath}}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pkg := loadTestdata(t, tc.name)
			findings := Run([]*Package{pkg}, []Pass{tc.pass(pkg)})
			checkGolden(t, pkg.Dir, findings)
		})
	}
}

// TestDirectives runs the full pass suite over the directives golden
// package: valid suppressions silence their findings; unknown-pass,
// reason-less, and stale directives surface as findings themselves.
func TestDirectives(t *testing.T) {
	pkg := loadTestdata(t, "directives")
	passes := AllPasses()
	for i, p := range passes {
		if pc, ok := p.(*PanicContract); ok {
			pc.Facades = append(pc.Facades, pkg.RelPath)
			passes[i] = pc
		}
	}
	checkGolden(t, pkg.Dir, Run([]*Package{pkg}, passes))
}

// TestNoDeterminismAllowlist pins the sanctioned package set: the
// randomness/concurrency/observability layers and cmd/ binaries are
// exempt, everything else is not — and cmd/tdfmserve is denied back
// out of the cmd/ subtree, because its supervision and hot-swap timers
// must stay on chaos.Clock for the swap-chaos acceptance suite, as is
// internal/dist, whose lease deadlines and heartbeats the grid-chaos
// suite drives on a FakeClock.
func TestNoDeterminismAllowlist(t *testing.T) {
	p := NewNoDeterminism()
	for _, rel := range []string{"internal/xrand", "internal/obs", "internal/parallel", "internal/chaos", "cmd", "cmd/tdfmbench", "cmd/trainmodel"} {
		if !p.allowed(rel) {
			t.Errorf("%s should be allowlisted", rel)
		}
	}
	for _, rel := range []string{"internal/experiment", "internal/report", "internal/metrics", ".", "internal/obsolete", "commando", "cmd/tdfmserve", "internal/dist"} {
		if p.allowed(rel) {
			t.Errorf("%s should NOT be allowlisted", rel)
		}
	}
}

// TestNoDeterminismDenySubtrees pins Deny semantics: Deny beats Allow,
// subtree entries work on both sides, and an empty Deny changes
// nothing.
func TestNoDeterminismDenySubtrees(t *testing.T) {
	p := &NoDeterminism{Allow: []string{"cmd/"}, Deny: []string{"cmd/serve/"}}
	for rel, want := range map[string]bool{
		"cmd":             true,
		"cmd/other":       true,
		"cmd/serve":       false, // denied exactly (trailing slash matches the bare path too)
		"cmd/serve/child": false, // denied as a subtree
		"internal/x":      false, // never allowed in the first place
	} {
		if got := p.allowed(rel); got != want {
			t.Errorf("allowed(%q) = %v, want %v", rel, got, want)
		}
	}
	if p := (&NoDeterminism{Allow: []string{"cmd/"}}); !p.allowed("cmd/serve") {
		t.Error("empty Deny must leave the allowlist untouched")
	}
}

// TestDirectiveText pins the directive comment syntax.
func TestDirectiveText(t *testing.T) {
	cases := []struct {
		in      string
		payload string
		ok      bool
	}{
		{"//tdfm:allow docs reason", "docs reason", true},
		{"// tdfm:allow docs reason", "docs reason", true},
		{"//tdfm:allow", "", true},
		{"// plain comment", "", false},
		{"/* tdfm:allow docs reason */", "", false},
	}
	for _, tc := range cases {
		payload, ok := directiveText(tc.in)
		if ok != tc.ok || payload != tc.payload {
			t.Errorf("directiveText(%q) = %q, %v; want %q, %v", tc.in, payload, ok, tc.payload, tc.ok)
		}
	}
}

// TestLoadRejectsEmptyDir pins the ErrNoGoFiles sentinel contract that
// cmd/vetdocs relies on for tests-only directories.
func TestLoadRejectsEmptyDir(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "x_test.go"), []byte("package x\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := NewLoader().Load(dir)
	if err == nil {
		t.Fatal("expected an error for a tests-only directory")
	}
	if !errors.Is(err, ErrNoGoFiles) {
		t.Fatalf("error %v does not wrap ErrNoGoFiles", err)
	}
}
