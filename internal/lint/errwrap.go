package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// ErrWrap enforces the repo's sentinel-error discipline: sentinel
// errors exported by the module's internal packages (package-level
// `var ErrX = ...` of type error, e.g. core.ErrDiverged,
// chaos.ErrInjected) must survive wrapping, so they are
//
//   - wrapped with the %w verb when passed to fmt.Errorf, never %v or
//     %s (an unwrapped sentinel breaks errors.Is-based retry
//     classification three layers up);
//   - compared with errors.Is, never == or != or a switch case (the
//     engine wraps every error with cell context, so an identity
//     comparison silently stops matching).
//
// Comparisons against nil are of course fine. The pass relies on type
// information to resolve which identifiers are sentinels; without it,
// it reports nothing.
type ErrWrap struct {
	// SentinelPathPrefixes are the import-path prefixes whose exported
	// Err* package-level error variables count as sentinels.
	SentinelPathPrefixes []string
}

// NewErrWrap returns the pass configured for this module's internal
// packages.
func NewErrWrap() *ErrWrap {
	return &ErrWrap{SentinelPathPrefixes: []string{"tdfm/internal/", "tdfm"}}
}

// Name implements Pass.
func (p *ErrWrap) Name() string { return "errwrap" }

// Doc implements Pass.
func (p *ErrWrap) Doc() string {
	return "sentinel errors compared with == / switch or wrapped without %w"
}

// Run implements Pass.
func (p *ErrWrap) Run(pkg *Package) []Finding {
	var out []Finding
	report := func(n ast.Node, format string, args ...any) {
		out = append(out, Finding{Pass: p.Name(), Pos: pkg.Fset.Position(n.Pos()), Message: fmt.Sprintf(format, args...)})
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.BinaryExpr:
				if x.Op != token.EQL && x.Op != token.NEQ {
					return true
				}
				if name := p.sentinelName(pkg, x.X); name != "" {
					report(x, "sentinel %s compared with %s; use errors.Is so wrapped errors still match", name, x.Op)
				} else if name := p.sentinelName(pkg, x.Y); name != "" {
					report(x, "sentinel %s compared with %s; use errors.Is so wrapped errors still match", name, x.Op)
				}
			case *ast.SwitchStmt:
				if x.Tag == nil || !isErrorExpr(pkg, x.Tag) {
					return true
				}
				for _, stmt := range x.Body.List {
					cc, ok := stmt.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, v := range cc.List {
						if name := p.sentinelName(pkg, v); name != "" {
							report(v, "sentinel %s used as a switch case (an == comparison); use errors.Is so wrapped errors still match", name)
						}
					}
				}
			case *ast.CallExpr:
				p.checkErrorf(pkg, x, report)
			}
			return true
		})
	}
	return out
}

// checkErrorf flags fmt.Errorf calls that pass a sentinel without a %w
// verb in a literal format string.
func (p *ErrWrap) checkErrorf(pkg *Package, call *ast.CallExpr, report func(ast.Node, string, ...any)) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Errorf" || len(call.Args) < 2 {
		return
	}
	obj, ok := pkg.Info.Uses[sel.Sel]
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "fmt" {
		return
	}
	lit, ok := call.Args[0].(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil || strings.Contains(format, "%w") {
		return
	}
	for _, arg := range call.Args[1:] {
		if name := p.sentinelName(pkg, arg); name != "" {
			report(arg, "sentinel %s passed to fmt.Errorf without %%w; callers' errors.Is checks will stop matching", name)
		}
	}
}

// sentinelName returns a display name ("core.ErrDiverged") when the
// expression resolves to a sentinel error variable, else "".
func (p *ErrWrap) sentinelName(pkg *Package, e ast.Expr) string {
	var id *ast.Ident
	switch x := e.(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return ""
	}
	obj, ok := pkg.Info.Uses[id]
	if !ok {
		return ""
	}
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil || !strings.HasPrefix(v.Name(), "Err") {
		return ""
	}
	// Package-level variable of interface type error.
	if v.Parent() != v.Pkg().Scope() {
		return ""
	}
	if !isErrorType(v.Type()) {
		return ""
	}
	path := v.Pkg().Path()
	for _, prefix := range p.SentinelPathPrefixes {
		if path == prefix || strings.HasPrefix(path, prefix) {
			return v.Pkg().Name() + "." + v.Name()
		}
	}
	return ""
}

// isErrorExpr reports whether the expression's static type is error.
func isErrorExpr(pkg *Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[e]
	return ok && tv.Type != nil && isErrorType(tv.Type)
}

// isErrorType reports whether t is the built-in error interface (or an
// alias of it).
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}
