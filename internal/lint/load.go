package lint

import (
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// ErrNoGoFiles marks a directory with no non-test Go files to lint.
// Callers that walk directory trees (cmd/vetdocs over a tests-only
// dir) treat it as "nothing to check" via errors.Is rather than as a
// failure.
var ErrNoGoFiles = errors.New("no non-test Go files")

// Package is one loaded target: the parsed files of a package directory
// plus, when requested, its go/types information.
type Package struct {
	// Dir is the package directory as given to Load.
	Dir string
	// RelPath is the directory relative to the module root ("." for the
	// root package). Path-scoped policies (the nodeterminism allowlist,
	// the paniccontract facade set) key on it. Outside a module it
	// falls back to the package name.
	RelPath string
	// Name is the package name from the package clauses.
	Name string
	// Fset maps AST positions back to source locations; shared across
	// every package a Loader loads.
	Fset *token.FileSet
	// Files are the parsed non-test files, sorted by filename.
	Files []*ast.File
	// Types is the type-checked package, nil when the Loader was built
	// with NoTypes or when checking failed entirely.
	Types *types.Package
	// Info holds the type-checker's expression and identifier facts;
	// empty maps (never nil) when types were not requested.
	Info *types.Info
	// TypeErrors records type-checking problems; passes that depend on
	// type information degrade to what the AST alone supports.
	TypeErrors []error
}

// Loader parses and type-checks package directories. All packages
// loaded by one Loader share a FileSet and an importer, so repeated
// loads amortize the cost of type-checking shared dependencies.
//
// The Loader is itself the types.Importer for packages inside the
// enclosing module: an intra-module import path maps straight to its
// directory and loads through the same cache as a lint target, so each
// module package is parsed and type-checked exactly once per Loader —
// whether it first appears as a target or as a dependency of one.
// (Before this, the source importer re-resolved and re-checked every
// intra-module dependency through the go command, so a tree-wide run
// checked most packages twice.) Everything else — the standard library,
// out-of-module imports — falls through to the stdlib source importer,
// which keeps its own cache.
type Loader struct {
	// Fset is the shared position table.
	Fset *token.FileSet
	// NoTypes skips type-checking; AST-only passes (docs,
	// paniccontract, most of nodeterminism) still get everything they
	// need and loading is much cheaper.
	NoTypes bool

	imp types.Importer
	// pkgs caches fully loaded module packages by import path; loading
	// marks in-flight paths to fail fast on import cycles instead of
	// recursing forever on malformed source.
	pkgs    map[string]*Package
	loading map[string]bool
	// modRoot/modPath describe the module of the most recent Load
	// target; intra-module import paths resolve against them.
	modRoot, modPath string
}

// NewLoader returns a loader with a fresh FileSet and a source-based
// importer (stdlib go/importer in "source" mode: no compiled export
// data needed, module imports resolve through the go command).
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		imp:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom: module-local import paths
// load (cached) through this Loader; everything else goes to the
// source importer.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if sub, ok := l.moduleLocal(path); ok {
		pkg, err := l.Load(filepath.Join(l.modRoot, filepath.FromSlash(sub)))
		if err != nil {
			return nil, err
		}
		if pkg.Types == nil {
			return nil, fmt.Errorf("lint: %s: type information unavailable", path)
		}
		return pkg.Types, nil
	}
	if from, ok := l.imp.(types.ImporterFrom); ok {
		return from.ImportFrom(path, dir, mode)
	}
	return l.imp.Import(path)
}

// moduleLocal reports whether an import path names a package inside the
// current module, returning its module-relative directory ("." for the
// root package).
func (l *Loader) moduleLocal(path string) (string, bool) {
	if l.modPath == "" {
		return "", false
	}
	if path == l.modPath {
		return ".", true
	}
	if sub, ok := strings.CutPrefix(path, l.modPath+"/"); ok {
		return sub, true
	}
	return "", false
}

// Load parses the non-test Go files of dir and, unless NoTypes is set,
// type-checks them. A directory with no buildable Go files or with two
// non-test packages is an error; type-check problems are not (they are
// recorded in Package.TypeErrors).
func (l *Loader) Load(dir string) (*Package, error) {
	if root, path := moduleRootAndPath(dir); path != "" {
		l.modRoot, l.modPath = root, path
	}
	key := importKeyFor(dir)
	if key != "" {
		if pkg, ok := l.pkgs[key]; ok {
			return pkg, nil
		}
		if l.loading[key] {
			return nil, fmt.Errorf("lint: import cycle through %s", key)
		}
		l.loading[key] = true
		defer delete(l.loading, key)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: reading %s: %w", dir, err)
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: %s: %w", dir, ErrNoGoFiles)
	}
	pkg := &Package{Dir: dir, Fset: l.Fset, Info: emptyInfo()}
	for _, n := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		if pkg.Name == "" {
			pkg.Name = f.Name.Name
		} else if f.Name.Name != pkg.Name {
			return nil, fmt.Errorf("lint: %s holds two packages (%s, %s)", dir, pkg.Name, f.Name.Name)
		}
		pkg.Files = append(pkg.Files, f)
	}
	pkg.RelPath = relToModule(dir, pkg.Name)
	if !l.NoTypes {
		l.typecheck(pkg)
	}
	if key != "" {
		l.pkgs[key] = pkg
	}
	return pkg, nil
}

// typecheck runs go/types over the package, collecting rather than
// failing on errors so passes can still use whatever was resolved.
func (l *Loader) typecheck(pkg *Package) {
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	path := importPathFor(pkg)
	tp, err := conf.Check(path, l.Fset, pkg.Files, pkg.Info)
	if err != nil && len(pkg.TypeErrors) == 0 {
		pkg.TypeErrors = append(pkg.TypeErrors, err)
	}
	pkg.Types = tp
}

// emptyInfo allocates every Info map so passes can index them without
// nil checks regardless of whether types were computed.
func emptyInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// relToModule walks up from dir looking for go.mod and returns dir
// relative to it; outside any module it returns the package name so
// path-scoped policies still have something stable to key on.
func relToModule(dir, pkgName string) string {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return pkgName
	}
	for root := abs; ; {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			rel, err := filepath.Rel(root, abs)
			if err != nil {
				return pkgName
			}
			return filepath.ToSlash(rel)
		}
		parent := filepath.Dir(root)
		if parent == root {
			return pkgName
		}
		root = parent
	}
}

// importPathFor derives the import path used for type-checking:
// module path + relative directory inside the module (matching what
// the source importer will use for intra-module imports), or the bare
// package name outside a module.
func importPathFor(pkg *Package) string {
	mod := modulePathFor(pkg.Dir)
	switch {
	case mod == "":
		return pkg.Name
	case pkg.RelPath == ".":
		return mod
	default:
		return mod + "/" + pkg.RelPath
	}
}

// modulePathFor reads the module path from the nearest go.mod above
// dir, or "" when there is none.
func modulePathFor(dir string) string {
	_, path := moduleRootAndPath(dir)
	return path
}

// moduleRootAndPath finds the nearest go.mod above dir, returning the
// module root directory and module path ("", "" outside any module).
func moduleRootAndPath(dir string) (string, string) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", ""
	}
	for root := abs; ; {
		data, err := os.ReadFile(filepath.Join(root, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return root, strings.TrimSpace(rest)
				}
			}
			return "", ""
		}
		parent := filepath.Dir(root)
		if parent == root {
			return "", ""
		}
		root = parent
	}
}

// importKeyFor derives the Loader cache key for a directory: its
// in-module import path (identical to what importPathFor computes for
// the loaded package), or "" — uncached — outside any module.
func importKeyFor(dir string) string {
	root, mod := moduleRootAndPath(dir)
	if mod == "" {
		return ""
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return ""
	}
	rel, err := filepath.Rel(root, abs)
	if err != nil {
		return ""
	}
	if rel == "." {
		return mod
	}
	return mod + "/" + filepath.ToSlash(rel)
}
