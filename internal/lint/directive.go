package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// DirectivePass is the pseudo-pass name under which problems with
// //tdfm:allow directives themselves are reported. It is not a real
// pass and cannot be suppressed.
const DirectivePass = "directive"

// directivePrefix introduces a suppression comment. Canonical form
// (no space after //, like //go:generate):
//
//	//tdfm:allow <pass> <reason...>
type directive struct {
	// Pass is the pass the directive silences.
	Pass string
	// Reason is the mandatory free-text justification.
	Reason string
	// Pos is where the directive comment starts.
	Pos token.Position
	// target is the line the directive covers: its own line for a
	// trailing comment, otherwise the next non-directive line below it
	// (so directives for different passes stack).
	target int
	used   bool
	// dup marks a directive already reported as a duplicate, so the
	// stale check does not pile a second finding onto it.
	dup bool
}

// collectDirectives parses every //tdfm:allow comment in the package.
// Malformed directives — unknown pass name, or no reason — are
// returned as findings: a suppression that does not say which check it
// silences and why is exactly the kind of silent drift the linter
// exists to prevent.
func collectDirectives(pkg *Package, known map[string]bool) ([]*directive, []Finding) {
	var dirs []*directive
	var bad []Finding
	for _, f := range pkg.Files {
		lines := make(map[int]bool) // lines holding a directive, for stacking
		var fileDirs []*directive
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := directiveText(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(text)
				switch {
				case len(fields) == 0:
					bad = append(bad, Finding{
						Pass: DirectivePass, Pos: pos,
						Message: "//tdfm:allow needs a pass name and a reason: //tdfm:allow <pass> <reason>",
					})
					continue
				case !known[fields[0]]:
					bad = append(bad, Finding{
						Pass: DirectivePass, Pos: pos,
						Message: fmt.Sprintf("//tdfm:allow names unknown pass %q (known: %s)",
							fields[0], strings.Join(sortedNames(known), ", ")),
					})
					continue
				case len(fields) < 2:
					bad = append(bad, Finding{
						Pass: DirectivePass, Pos: pos,
						Message: fmt.Sprintf("//tdfm:allow %s has no reason; a justification is mandatory", fields[0]),
					})
					continue
				}
				d := &directive{
					Pass:   fields[0],
					Reason: strings.Join(fields[1:], " "),
					Pos:    pos,
				}
				lines[pos.Line] = true
				fileDirs = append(fileDirs, d)
			}
		}
		// Resolve targets after all of the file's directive lines are
		// known: a directive on its own line covers the next line that
		// is not itself a directive, so stacked allows all reach the
		// statement below them. A trailing directive covers its own
		// line (which is not in lines only when the code shares it —
		// comment positions alone cannot distinguish the two, so a
		// directive always covers its own line as well).
		for _, d := range fileDirs {
			t := d.Pos.Line + 1
			for lines[t] {
				t++
			}
			d.target = t
		}
		// Two directives for the same pass covering the same line: the
		// second can never suppress anything the first did not, so it is
		// dead weight even when its pass is not part of this run (the
		// stale-directive check in Run only sees passes that ran).
		covered := make(map[string]int) // pass+target line → directive line
		for _, d := range fileDirs {
			key := fmt.Sprintf("%s@%d", d.Pass, d.target)
			if first, dup := covered[key]; dup {
				d.dup = true
				bad = append(bad, Finding{
					Pass: DirectivePass, Pos: d.Pos,
					Message: fmt.Sprintf("duplicate //tdfm:allow %s: the directive on line %d already covers this line", d.Pass, first),
				})
				continue
			}
			covered[key] = d.Pos.Line
		}
		dirs = append(dirs, fileDirs...)
	}
	return dirs, bad
}

// suppressedBy returns the first directive covering the finding
// (marking it used), or nil.
func suppressedBy(dirs []*directive, f Finding) *directive {
	for _, d := range dirs {
		if d.Pass != f.Pass {
			continue
		}
		if d.Pos.Filename != f.Pos.Filename {
			continue
		}
		if f.Pos.Line == d.Pos.Line || f.Pos.Line == d.target {
			d.used = true
			return d
		}
	}
	return nil
}

// directiveText extracts the payload of a //tdfm:allow comment, if the
// comment is one. Block comments are not directives.
func directiveText(comment string) (string, bool) {
	rest, ok := strings.CutPrefix(comment, "//")
	if !ok {
		return "", false
	}
	rest = strings.TrimSpace(rest)
	payload, ok := strings.CutPrefix(rest, "tdfm:allow")
	if !ok {
		return "", false
	}
	return strings.TrimSpace(payload), true
}

// sortedNames lists the map's keys in order, for stable messages.
func sortedNames(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
