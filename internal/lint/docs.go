package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Docs is the documentation gate formerly implemented by cmd/vetdocs,
// refactored as a pass: every package needs a package comment, and
// every exported top-level identifier — function, method on an
// exported type, type, constant, or variable — needs a doc comment.
// Test files are never loaded, so test helpers stay exempt by
// construction. cmd/vetdocs remains as a thin wrapper running just
// this pass.
type Docs struct{}

// NewDocs returns the pass.
func NewDocs() *Docs { return &Docs{} }

// Name implements Pass.
func (p *Docs) Name() string { return "docs" }

// Doc implements Pass.
func (p *Docs) Doc() string {
	return "missing package comments and missing godoc on exported identifiers"
}

// Run implements Pass.
func (p *Docs) Run(pkg *Package) []Finding {
	var out []Finding
	report := func(pos token.Position, format string, args ...any) {
		out = append(out, Finding{Pass: p.Name(), Pos: pos, Message: fmt.Sprintf(format, args...)})
	}
	hasPkgDoc := false
	for _, f := range pkg.Files {
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			hasPkgDoc = true
			break
		}
	}
	if !hasPkgDoc && len(pkg.Files) > 0 {
		report(pkg.Fset.Position(pkg.Files[0].Name.Pos()), "package %s has no package comment", pkg.Name)
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				p.checkFunc(pkg, d, report)
			case *ast.GenDecl:
				p.checkGen(pkg, d, report)
			}
		}
	}
	return out
}

// checkFunc flags exported functions, and exported methods on exported
// receivers, that have no doc comment.
func (p *Docs) checkFunc(pkg *Package, d *ast.FuncDecl, report func(token.Position, string, ...any)) {
	if !d.Name.IsExported() || documented(d.Doc) {
		return
	}
	if d.Recv != nil {
		recv := receiverTypeName(d.Recv)
		if recv != "" && !ast.IsExported(recv) {
			return // method on an unexported type: not part of the API
		}
		report(pkg.Fset.Position(d.Pos()), "exported method %s.%s has no doc comment", recv, d.Name.Name)
		return
	}
	report(pkg.Fset.Position(d.Pos()), "exported function %s has no doc comment", d.Name.Name)
}

// checkGen flags exported type/const/var specs documented neither on
// the spec nor on the enclosing declaration group.
func (p *Docs) checkGen(pkg *Package, d *ast.GenDecl, report func(token.Position, string, ...any)) {
	if d.Tok != token.TYPE && d.Tok != token.CONST && d.Tok != token.VAR {
		return
	}
	groupDoc := documented(d.Doc)
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && !groupDoc && !documented(s.Doc) {
				report(pkg.Fset.Position(s.Pos()), "exported type %s has no doc comment", s.Name.Name)
			}
		case *ast.ValueSpec:
			if groupDoc || documented(s.Doc) || documented(s.Comment) {
				continue
			}
			for _, name := range s.Names {
				if name.IsExported() {
					report(pkg.Fset.Position(name.Pos()), "exported %s %s has no doc comment", d.Tok, name.Name)
				}
			}
		}
	}
}

// documented reports whether a comment group carries actual text.
func documented(doc *ast.CommentGroup) bool {
	return doc != nil && strings.TrimSpace(doc.Text()) != ""
}
