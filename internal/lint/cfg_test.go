package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// buildCFG parses `func f(...) { body }` with no type information (the
// builder must degrade gracefully) and lowers it.
func buildCFG(t *testing.T, body string) *CFG {
	t.Helper()
	src := "package p\n\nfunc f(c bool, n int, xs []int, ch chan int) {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "cfg_test_src.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fn := file.Decls[0].(*ast.FuncDecl)
	pkg := &Package{Fset: fset, Info: emptyInfo()}
	return BuildCFG(pkg, fn.Body)
}

// blockCalling finds the unique block containing a call to the named
// function.
func blockCalling(t *testing.T, cfg *CFG, name string) *Block {
	t.Helper()
	var found *Block
	for _, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			// Shallow, like the passes: a RangeStmt or SelectStmt head
			// node carries its body in the AST, but those statements
			// execute in successor blocks.
			inspectShallow(n, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name {
					if found != nil && found != b {
						t.Fatalf("call to %s appears in blocks %d and %d", name, found.Index, b.Index)
					}
					found = b
				}
				return true
			})
		}
	}
	if found == nil {
		t.Fatalf("no block calls %s", name)
	}
	return found
}

// hasEdge reports a direct from → to edge.
func hasEdge(from, to *Block) bool {
	for _, s := range from.Succs {
		if s == to {
			return true
		}
	}
	return false
}

func TestCFGIfElseJoin(t *testing.T) {
	cfg := buildCFG(t, `
	if c {
		a()
	} else {
		b()
	}
	d()`)
	cond := cfg.Entry.Succs[0]
	if len(cond.Succs) != 2 {
		t.Fatalf("condition block has %d successors, want 2 (then, else)", len(cond.Succs))
	}
	join := blockCalling(t, cfg, "d")
	for _, arm := range []string{"a", "b"} {
		if b := blockCalling(t, cfg, arm); !hasEdge(b, join) {
			t.Errorf("branch calling %s does not join at the block calling d", arm)
		}
	}
	if !hasEdge(join, cfg.Exit) {
		t.Error("join block does not reach Exit")
	}
	if got := len(cfg.Exit.Preds); got != 1 {
		t.Errorf("Exit has %d predecessors, want 1 (only the join)", got)
	}
}

func TestCFGIfWithoutElse(t *testing.T) {
	cfg := buildCFG(t, `
	if c {
		a()
	}
	d()`)
	cond := cfg.Entry.Succs[0]
	join := blockCalling(t, cfg, "d")
	if !hasEdge(cond, join) {
		t.Error("missing fall-through edge from the condition to the block after the if")
	}
	if !hasEdge(blockCalling(t, cfg, "a"), join) {
		t.Error("then-branch does not join after the if")
	}
}

func TestCFGEarlyReturn(t *testing.T) {
	cfg := buildCFG(t, `
	if c {
		return
	}
	d()`)
	if got := len(cfg.Exit.Preds); got != 2 {
		t.Fatalf("Exit has %d predecessors, want 2 (early return and fall-off)", got)
	}
	reached := cfg.Reachable()
	if !reached[blockCalling(t, cfg, "d").Index] {
		t.Error("code after a conditional return must stay reachable")
	}
}

func TestCFGForLoopBackEdge(t *testing.T) {
	cfg := buildCFG(t, `
	for i := 0; i < n; i++ {
		a()
	}
	d()`)
	body := blockCalling(t, cfg, "a")
	after := blockCalling(t, cfg, "d")
	// body → post → head → body must form a cycle.
	if len(body.Succs) != 1 {
		t.Fatalf("loop body has %d successors, want 1 (the post block)", len(body.Succs))
	}
	post := body.Succs[0]
	if len(post.Succs) != 1 {
		t.Fatalf("post block has %d successors, want 1 (the head)", len(post.Succs))
	}
	head := post.Succs[0]
	if !hasEdge(head, body) {
		t.Error("loop head does not re-enter the body (missing back edge)")
	}
	if !hasEdge(head, after) {
		t.Error("loop head does not exit to the block after the loop")
	}
}

func TestCFGRangeLoop(t *testing.T) {
	cfg := buildCFG(t, `
	for _, v := range xs {
		a(v)
	}
	d()`)
	body := blockCalling(t, cfg, "a")
	if len(body.Succs) != 1 {
		t.Fatalf("range body has %d successors, want 1 (the head)", len(body.Succs))
	}
	head := body.Succs[0]
	isRangeNode := false
	for _, n := range head.Nodes {
		if _, ok := n.(*ast.RangeStmt); ok {
			isRangeNode = true
		}
	}
	if !isRangeNode {
		t.Error("loop head does not carry the RangeStmt node (per-iteration binding)")
	}
	if !hasEdge(head, blockCalling(t, cfg, "d")) {
		t.Error("range head does not exit to the block after the loop")
	}
}

func TestCFGDeferInLoop(t *testing.T) {
	cfg := buildCFG(t, `
	for _, v := range xs {
		defer a(v)
	}
	d()`)
	var deferBlock *Block
	for _, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.DeferStmt); ok {
				deferBlock = b
			}
		}
	}
	if deferBlock == nil {
		t.Fatal("DeferStmt does not appear as a CFG node")
	}
	// The defer registers once per iteration: its block must sit on the
	// loop cycle, i.e. lead back to the range head.
	head := deferBlock.Succs[0]
	if !hasEdge(head, deferBlock) {
		t.Error("defer-in-loop block is not on the loop cycle (missing back edge)")
	}
}

func TestCFGBreakContinue(t *testing.T) {
	cfg := buildCFG(t, `
	for i := 0; i < n; i++ {
		if c {
			continue
		}
		if n > 1 {
			break
		}
		a()
	}
	d()`)
	after := blockCalling(t, cfg, "d")
	reached := cfg.Reachable()
	if !reached[after.Index] || !reached[blockCalling(t, cfg, "a").Index] {
		t.Error("loop tail and after-loop block must both be reachable")
	}
	// Find the break and continue blocks and check their targets.
	for _, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			br, ok := n.(*ast.BranchStmt)
			if !ok {
				continue
			}
			switch br.Tok {
			case token.BREAK:
				if !hasEdge(b, after) {
					t.Error("break does not edge to the block after the loop")
				}
			case token.CONTINUE:
				if hasEdge(b, after) {
					t.Error("continue must not edge to the block after the loop")
				}
			}
		}
	}
}

func TestCFGPanicEdge(t *testing.T) {
	cfg := buildCFG(t, `
	if c {
		panic("boom")
	}
	d()`)
	if got := len(cfg.Panic.Preds); got != 1 {
		t.Fatalf("Panic has %d predecessors, want 1", got)
	}
	if got := len(cfg.Exit.Preds); got != 1 {
		t.Fatalf("Exit has %d predecessors, want 1 (the panic path must not reach Exit)", got)
	}
	if !cfg.Reachable()[blockCalling(t, cfg, "d").Index] {
		t.Error("code after a conditional panic must stay reachable")
	}
}

func TestCFGGoto(t *testing.T) {
	cfg := buildCFG(t, `
	a()
L:
	b()
	if c {
		goto L
	}
	d()`)
	label := blockCalling(t, cfg, "b")
	var gotoBlock *Block
	for _, blk := range cfg.Blocks {
		for _, n := range blk.Nodes {
			if br, ok := n.(*ast.BranchStmt); ok && br.Tok == token.GOTO {
				gotoBlock = blk
			}
		}
	}
	if gotoBlock == nil {
		t.Fatal("goto does not appear as a CFG node")
	}
	if !hasEdge(gotoBlock, label) {
		t.Error("goto does not edge to its label's block")
	}
	if !hasEdge(blockCalling(t, cfg, "a"), label) {
		t.Error("fall-through into the labeled statement is missing")
	}
	if !cfg.Reachable()[blockCalling(t, cfg, "d").Index] {
		t.Error("code after the conditional goto must stay reachable")
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	cfg := buildCFG(t, `
	switch n {
	case 1:
		a()
		fallthrough
	case 2:
		b()
	}
	d()`)
	if !hasEdge(blockCalling(t, cfg, "a"), blockCalling(t, cfg, "b")) {
		t.Error("fallthrough does not edge into the next case body")
	}
	after := blockCalling(t, cfg, "d")
	if !hasEdge(blockCalling(t, cfg, "b"), after) {
		t.Error("final case does not join after the switch")
	}
	// No default: the head must be able to skip every case.
	head := cfg.Entry.Succs[0]
	if !hasEdge(head, after) {
		t.Error("switch without default is missing the head → after edge")
	}
}

func TestCFGSelect(t *testing.T) {
	cfg := buildCFG(t, `
	select {
	case <-ch:
		a()
	default:
		b()
	}
	d()`)
	if len(cfg.SelectComms) != 1 {
		t.Fatalf("SelectComms has %d entries, want 1 (the receive comm)", len(cfg.SelectComms))
	}
	var head *Block
	for _, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.SelectStmt); ok {
				head = b
			}
		}
	}
	if head == nil {
		t.Fatal("SelectStmt does not appear as a CFG node")
	}
	if len(head.Succs) != 2 {
		t.Fatalf("select head has %d successors, want 2 (one per clause)", len(head.Succs))
	}
	after := blockCalling(t, cfg, "d")
	for _, arm := range []string{"a", "b"} {
		if !hasEdge(blockCalling(t, cfg, arm), after) {
			t.Errorf("select clause calling %s does not join after the select", arm)
		}
	}
}

func TestCFGUnreachableAfterReturn(t *testing.T) {
	cfg := buildCFG(t, `
	a()
	return
	d()`) //nolint:govet // unreachable on purpose
	reached := cfg.Reachable()
	if !reached[blockCalling(t, cfg, "a").Index] {
		t.Error("pre-return block must be reachable")
	}
	if reached[blockCalling(t, cfg, "d").Index] {
		t.Error("code after an unconditional return must be unreachable")
	}
}
