// Package poolown seeds pooled-buffer ownership violations for the
// dataflow pass: leaks on early-return paths, use after release,
// double release, escapes out of the owning function, and arena
// use-after-reset — next to the clean idioms (defer, all-path release,
// ownership transfer by return) that must stay silent.
package poolown

import (
	"errors"

	"tdfm/internal/tensor"
)

// sink keeps otherwise-dead values alive for the fixtures.
var sink []float64

// LeakOnErrorPath is the acceptance case: the buffer is returned to
// the pool on the happy path but leaks when the work fails.
func LeakOnErrorPath(n int) error {
	buf := tensor.GetBuf(n) // want "may not be released on every return path"
	if n > 1024 {
		return errors.New("too big") // leaks buf
	}
	work(buf)
	tensor.PutBuf(buf)
	return nil
}

// DeferRelease is the canonical clean shape: one defer covers every
// path, early returns included.
func DeferRelease(n int) error {
	buf := tensor.GetBuf(n)
	defer tensor.PutBuf(buf)
	if n > 1024 {
		return errors.New("too big")
	}
	work(buf)
	return nil
}

// BranchRelease releases on both arms explicitly: clean.
func BranchRelease(n int) {
	buf := tensor.GetBuf(n)
	if n%2 == 0 {
		work(buf)
		tensor.PutBuf(buf)
		return
	}
	tensor.PutBuf(buf)
}

// UseAfterRelease touches the buffer after it went back to the pool.
func UseAfterRelease(n int) float64 {
	buf := tensor.GetBuf(n)
	tensor.PutBuf(buf)
	return buf[0] // want "used after release"
}

// DoubleRelease returns the same buffer twice.
func DoubleRelease(n int) {
	buf := tensor.GetBuf(n)
	tensor.PutBuf(buf)
	tensor.PutBuf(buf) // want "double release"
}

// ConditionalRelease releases on one path and then again
// unconditionally: a may-double-release.
func ConditionalRelease(n int) {
	buf := tensor.GetBuf(n)
	if n > 4 {
		tensor.PutBuf(buf)
	}
	tensor.PutBuf(buf) // want "already have been released on some path"
}

// EscapeToGlobal parks a pooled buffer in a global.
func EscapeToGlobal(n int) {
	buf := tensor.GetBuf(n)
	sink = buf // want "stored into sink; it escapes"
}

// EscapeAtBirth stores the fresh allocation straight into a field.
type holder struct{ buf []float64 }

// Fill stores the allocation directly into its receiver.
func (h *holder) Fill(n int) {
	h.buf = tensor.GetBuf(n) // want "stored directly into h.buf"
}

// EscapeToChannel sends a pooled buffer away.
func EscapeToChannel(n int, ch chan []float64) {
	buf := tensor.GetBuf(n)
	ch <- buf // want "sent on a channel"
}

// EscapeToGoroutine hands a pooled buffer to a goroutine.
func EscapeToGoroutine(n int) {
	buf := tensor.GetBuf(n)
	go work(buf) // want "passed to a goroutine"
}

// EscapeToClosure captures a pooled buffer in a closure that leaves.
func EscapeToClosure(n int) func() {
	buf := tensor.GetBuf(n)
	return func() { work(buf) } // want "captured by a closure"
}

// TransferByReturn hands ownership to the caller: clean.
func TransferByReturn(n int) []float64 {
	buf := tensor.GetBuf(n)
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// AliasBorrow copies into another local; the original still owns and
// releases: clean.
func AliasBorrow(n int) {
	buf := tensor.GetBuf(n)
	view := buf
	work(view)
	tensor.PutBuf(buf)
}

// Discarded drops the only handle on the spot.
func Discarded(n int) {
	tensor.GetBuf(n) // want "result is discarded"
}

// Float32Leak checks the float32 twin is tracked too.
func Float32Leak(n int) []float32 {
	tmp := tensor.GetBuf32(n) // want "may not be released on every return path"
	out := tensor.GetBuf32(n)
	copy(out, tmp)
	return out // out's ownership transfers; tmp leaks
}

// PooledTensorLeak loses a NewPooled tensor on the error path.
func PooledTensorLeak(rows, cols int) (*tensor.Tensor, error) {
	t := tensor.NewPooled(rows, cols) // want "may not be released on every return path"
	if rows*cols > 1<<20 {
		return nil, errors.New("too big") // leaks t
	}
	return t, nil
}

// PooledTensorDefer releases through a deferred method call: clean.
func PooledTensorDefer(rows, cols int) float64 {
	t := tensor.NewPooled(rows, cols)
	defer t.Release()
	return t.Data()[0]
}

// ArenaUseAfterReset reads arena storage after the arena recycled it.
func ArenaUseAfterReset(a *tensor.Arena, n int) float64 {
	buf := a.Buf(n)
	work(buf)
	a.Reset()
	return buf[0] // want "used after a.Reset()"
}

// ArenaIndividualRelease calls Release on an arena tensor.
func ArenaIndividualRelease(a *tensor.Arena, n int) {
	t := a.Tensor(n, n)
	t.Release() // want "must not be released individually"
}

// ArenaScoped allocates, uses, and lets Reset reclaim: clean.
func ArenaScoped(a *tensor.Arena, n int) float64 {
	buf := a.Buf(n)
	for i := range buf {
		buf[i] = float64(i)
	}
	out := buf[n-1]
	a.Reset()
	return out
}

// PanicPathExempt only leaks on a panicking path: clean by policy (the
// GC reclaims pool storage during unwind).
func PanicPathExempt(n int) {
	buf := tensor.GetBuf(n)
	if n < 0 {
		panic("negative size")
	}
	tensor.PutBuf(buf)
}

// LoopDeferRelease registers one release per iteration: clean (the
// defer is on every path out of the loop).
func LoopDeferRelease(sizes []int) {
	for _, n := range sizes {
		buf := tensor.GetBuf(n)
		defer tensor.PutBuf(buf)
		work(buf)
	}
}

// work stands in for a callee that borrows the buffer.
func work(buf any) { _ = buf }
