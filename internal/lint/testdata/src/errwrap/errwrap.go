// Package errwrap seeds sentinel-error misuse: identity comparisons,
// switch cases, and %v-wrapping of a module-internal sentinel. This
// package lives under tdfm/internal/, so its own ErrBoom counts as a
// sentinel exactly like core.ErrDiverged does in the real tree.
package errwrap

import (
	"errors"
	"fmt"
)

// ErrBoom is the seeded sentinel.
var ErrBoom = errors.New("boom")

// Identity compares the sentinel with == and !=.
func Identity(err error) bool {
	if err == ErrBoom { // want "sentinel errwrap.ErrBoom compared with =="
		return true
	}
	return err != ErrBoom // want "sentinel errwrap.ErrBoom compared with !="
}

// Switched compares the sentinel via a switch case.
func Switched(err error) bool {
	switch err {
	case ErrBoom: // want "switch case"
		return true
	}
	return false
}

// Wrapped loses the sentinel behind %v.
func Wrapped(key string) error {
	return fmt.Errorf("cell %s: %v", key, ErrBoom) // want "without %w"
}

// Proper uses errors.Is and %w: never flagged.
func Proper(err error, key string) error {
	if errors.Is(err, ErrBoom) {
		return fmt.Errorf("cell %s: %w", key, ErrBoom)
	}
	if err == nil { // nil comparison is fine
		return nil
	}
	return err
}
