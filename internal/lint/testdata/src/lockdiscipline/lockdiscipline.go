// Package lockdiscipline seeds mutex-discipline violations for the
// dataflow pass: locks that miss their unlock on an early-return path,
// double locks, read/write mixing, unlock-of-unlocked, and blocking
// operations under a held lock — next to the clean idioms (defer,
// branch-complete pairing, select with default) that must stay silent.
package lockdiscipline

import (
	"errors"
	"sync"
)

// box is the shared fixture receiver.
type box struct {
	mu  sync.Mutex
	rw  sync.RWMutex
	wg  sync.WaitGroup
	ch  chan int
	val int
}

// LockWithoutUnlockOnEarlyReturn is the acceptance case: the happy
// path unlocks, the error path forgets.
func (b *box) LockWithoutUnlockOnEarlyReturn(n int) error {
	b.mu.Lock() // want "not released on every return path"
	if n < 0 {
		return errors.New("negative") // leaks the lock
	}
	b.val = n
	b.mu.Unlock()
	return nil
}

// DeferUnlock covers every path with one defer: clean.
func (b *box) DeferUnlock(n int) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if n < 0 {
		return errors.New("negative")
	}
	b.val = n
	return nil
}

// BranchUnlock pairs the lock on both arms explicitly: clean.
func (b *box) BranchUnlock(n int) {
	b.mu.Lock()
	if n%2 == 0 {
		b.val = n
		b.mu.Unlock()
		return
	}
	b.mu.Unlock()
}

// DoubleLock locks the same mutex twice on one path (the abstract
// state is a held/not-held bitset, not a recursion counter, so the
// single unlock below closes the function cleanly).
func (b *box) DoubleLock() {
	b.mu.Lock()
	b.mu.Lock() // want "double b.mu.Lock"
	b.val++
	b.mu.Unlock()
}

// UpgradeDeadlock write-locks while read-holding the same RWMutex.
func (b *box) UpgradeDeadlock() {
	b.rw.RLock()
	b.rw.Lock() // want "lock upgrades deadlock"
	b.rw.Unlock()
	b.rw.RUnlock()
}

// RecursiveRLock re-acquires a read lock it already holds.
func (b *box) RecursiveRLock() int {
	b.rw.RLock()
	defer b.rw.RUnlock()
	b.rw.RLock() // want "recursive b.rw.RLock"
	v := b.val
	b.rw.RUnlock()
	return v
}

// ReadThenWrite releases the read lock before write-locking: clean.
func (b *box) ReadThenWrite(n int) {
	b.rw.RLock()
	stale := b.val != n
	b.rw.RUnlock()
	if stale {
		b.rw.Lock()
		b.val = n
		b.rw.Unlock()
	}
}

// UnlockOfUnlocked unlocks twice on one path.
func (b *box) UnlockOfUnlocked() {
	b.mu.Lock()
	b.val++
	b.mu.Unlock()
	b.mu.Unlock() // want "no path still holds"
}

// DeferAfterManualUnlock registers a deferred unlock and then also
// unlocks by hand: the defer will fire on an unlocked mutex.
func (b *box) DeferAfterManualUnlock() {
	b.mu.Lock() // want "will fire on a mutex this function already unlocked"
	defer b.mu.Unlock()
	b.val++
	b.mu.Unlock()
}

// HelperUnlock unlocks a mutex its caller acquired: outside this
// function's obligations, clean by policy.
func (b *box) HelperUnlock() {
	b.val++
	b.mu.Unlock()
}

// SendUnderLock blocks on a channel send while holding the lock.
func (b *box) SendUnderLock(n int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ch <- n // want "channel send while b.mu is held"
}

// ReceiveUnderLock blocks on a receive while holding the lock.
func (b *box) ReceiveUnderLock() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return <-b.ch // want "channel receive while b.mu is held"
}

// SelectUnderLock has no default: it parks while holding the lock.
func (b *box) SelectUnderLock(done chan struct{}) {
	b.mu.Lock()
	defer b.mu.Unlock()
	select { // want "select with no default case while b.mu is held"
	case v := <-b.ch:
		b.val = v
	case <-done:
	}
}

// NonBlockingSelect drains opportunistically with a default: clean.
func (b *box) NonBlockingSelect() {
	b.mu.Lock()
	defer b.mu.Unlock()
	select {
	case v := <-b.ch:
		b.val = v
	default:
	}
}

// RangeChannelUnderLock consumes a channel while holding the lock.
func (b *box) RangeChannelUnderLock() {
	b.mu.Lock()
	defer b.mu.Unlock()
	for v := range b.ch { // want "range over a channel while b.mu is held"
		b.val += v
	}
}

// WaitUnderLock waits out a WaitGroup while holding the lock.
func (b *box) WaitUnderLock() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.wg.Wait() // want "sync.WaitGroup.Wait while b.mu is held"
}

// UnlockBeforeBlocking releases the lock first: clean.
func (b *box) UnlockBeforeBlocking(n int) {
	b.mu.Lock()
	b.val = n
	b.mu.Unlock()
	b.ch <- n
}

// SpawnUnderLock starts the blocking work on its own goroutine: clean
// (the send executes elsewhere).
func (b *box) SpawnUnderLock(n int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	go b.deliver(n)
}

// deliver is SpawnUnderLock's goroutine body.
func (b *box) deliver(n int) {
	b.ch <- n
}

// TwoLocks tracks distinct mutex references independently: clean.
type pair struct {
	a, b sync.Mutex
	n    int
}

// Cross locks both members and releases both: clean.
func (p *pair) Cross() {
	p.a.Lock()
	p.b.Lock()
	p.n++
	p.b.Unlock()
	p.a.Unlock()
}

// IndexedLocks distinguishes striped locks by index expression.
type striped struct {
	mu [8]sync.Mutex
	n  [8]int
}

// Bump pairs the same stripe: clean.
func (s *striped) Bump(i int) {
	s.mu[i].Lock()
	s.n[i]++
	s.mu[i].Unlock()
}

// LoopRelock pairs a lock inside each iteration: clean.
func (b *box) LoopRelock(xs []int) {
	for _, x := range xs {
		b.mu.Lock()
		b.val += x
		b.mu.Unlock()
	}
}
