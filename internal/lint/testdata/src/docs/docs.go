package docs // want "package docs has no package comment"

func Exported() {} // want "exported function Exported has no doc comment"

// Documented does something and is never flagged.
func Documented() {}

type Thing struct{} // want "exported type Thing has no doc comment"

// Method acts on a Thing.
func (t *Thing) Method() {}

func (t *Thing) Bare() {} // want "exported method Thing.Bare has no doc comment"

// A detached comment (blank line between) does not document a
// declaration, so the const below is flagged.
// want@+2 "exported const Answer has no doc comment"

const Answer = 42

// want@+2 "exported var Config has no doc comment"

var Config = "x"

// Grouped declarations share one doc comment: never flagged.
const (
	A = 1
	B = 2
)

type hidden struct{}

// Exposed is a method on an unexported type: exempt even undocumented.
func (h hidden) Exposed() {}

func internal() {}
