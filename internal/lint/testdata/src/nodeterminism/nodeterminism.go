// Package nodeterminism seeds one violation of each kind the
// nodeterminism pass detects: a math/rand import, wall-clock reads,
// wall-clock waits, and a bare go statement — plus the injected-clock
// idiom, which must pass clean.
package nodeterminism

import (
	"math/rand" // want "import of math/rand"
	"time"
)

// Roll draws from the global generator.
func Roll() int {
	return rand.Intn(6)
}

// Stamp reads the wall clock twice.
func Stamp() time.Duration {
	start := time.Now()      // want "time.Now reads the wall clock"
	return time.Since(start) // want "time.Since reads the wall clock"
}

// Fire launches a bare goroutine.
func Fire(done chan struct{}) {
	go func() { // want "bare go statement"
		close(done)
	}()
}

// Nap sleeps on the wall clock.
func Nap() {
	time.Sleep(time.Millisecond) // want "time.Sleep waits on the wall clock"
}

// Deadline builds wall-clock timers.
func Deadline() {
	t := time.NewTimer(time.Second) // want "time.NewTimer waits on the wall clock"
	defer t.Stop()
	<-time.After(time.Second) // want "time.After waits on the wall clock"
}

// Supervise mirrors a member-supervisor loop pacing restarts with a
// bare wall-clock timer: exactly the construct that makes a
// backoff-under-chaos test impossible to drive deterministically. The
// fix is the injected-clock idiom below.
func Supervise(exit <-chan error, stop <-chan struct{}) {
	for {
		t := time.NewTimer(time.Second) // want "time.NewTimer waits on the wall clock"
		select {
		case <-stop:
			t.Stop()
			return
		case <-exit:
			t.Stop()
		case <-t.C:
		}
	}
}

// LeaseLoop mirrors a grid coordinator arming a cell-lease deadline on
// the wall clock: a partitioned-worker test would have to truly wait out
// the TTL. internal/dist is denied back out of the allowlist precisely
// so this construct is a finding there; the fix is the injected-clock
// idiom below (the deadline timer comes from a chaos.Clock).
func LeaseLoop(ttl time.Duration, complete <-chan struct{}) bool {
	t := time.NewTimer(ttl) // want "time.NewTimer waits on the wall clock"
	select {
	case <-complete:
		t.Stop()
		return true
	case <-t.C:
		return false // lease expired: reissue the cell
	}
}

// Clock mirrors the injected-clock idiom (chaos.Clock): code that takes
// its time source as an interface is deterministic under a fake clock.
type Clock interface {
	Now() time.Time
	Sleep(d time.Duration)
}

// Patient waits through an injected Clock — no findings: the pass flags
// selectors on package time only, never interface calls.
func Patient(c Clock, d time.Duration) time.Time {
	c.Sleep(d)
	return c.Now()
}

// Scheduled is fine: no wall clock, no goroutines, no global rand.
func Scheduled(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}
