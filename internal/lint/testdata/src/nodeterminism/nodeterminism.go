// Package nodeterminism seeds one violation of each kind the
// nodeterminism pass detects: a math/rand import, wall-clock reads,
// and a bare go statement.
package nodeterminism

import (
	"math/rand" // want "import of math/rand"
	"time"
)

// Roll draws from the global generator.
func Roll() int {
	return rand.Intn(6)
}

// Stamp reads the wall clock twice.
func Stamp() time.Duration {
	start := time.Now()      // want "time.Now reads the wall clock"
	return time.Since(start) // want "time.Since reads the wall clock"
}

// Fire launches a bare goroutine.
func Fire(done chan struct{}) {
	go func() { // want "bare go statement"
		close(done)
	}()
}

// Scheduled is fine: no wall clock, no goroutines, no global rand.
func Scheduled(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}
