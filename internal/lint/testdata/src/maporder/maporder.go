// Package maporder seeds map-iteration-order violations: appends,
// float accumulation, and writer output inside map-ranged loops, plus
// the sanctioned collect-then-sort idiom that must stay clean.
package maporder

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Collect appends map values in iteration order.
func Collect(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v) // want "appends to a slice in map-iteration order"
	}
	return out
}

// SortedKeys collects then sorts: the sanctioned idiom, never flagged.
func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Sum accumulates a float in map-iteration order.
func Sum(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v // want "accumulates a float in map-iteration order"
	}
	return total
}

// Mean re-assigns a float accumulator in map-iteration order.
func Mean(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total = total + v // want "accumulates a float in map-iteration order"
	}
	return total / float64(len(m))
}

// Count accumulates an int: order-independent, never flagged.
func Count(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// Dump writes rows in map-iteration order.
func Dump(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want "fmt.Fprintf inside a map-ordered loop"
	}
}

// Build appends builder output in map-iteration order.
func Build(m map[string]string) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want "WriteString inside a map-ordered loop"
	}
	return b.String()
}

// Sliced ranges a slice, not a map: never flagged.
func Sliced(w io.Writer, xs []string) {
	var out []string
	for _, x := range xs {
		out = append(out, x)
		fmt.Fprintln(w, x)
	}
}
