// Package paniccontract seeds an undocumented panic in an exported
// function; the golden test runs the pass with this package configured
// as a facade.
package paniccontract

// Documented panics when n is negative — the contract is stated, so
// this function is never flagged.
func Documented(n int) int {
	if n < 0 {
		panic("negative")
	}
	return n
}

// Quiet has a doc comment that fails to mention the contract.
func Quiet(n int) int { // want "exported Quiet can panic"
	if n < 0 {
		panic("negative")
	}
	return n
}

// Calm never panics: never flagged.
func Calm(n int) int { return n + 1 }

func hidden() { panic("unexported functions are exempt") }

type inner struct{}

// Boom is a method on an unexported type: exempt.
func (inner) Boom() { panic("not API") }
