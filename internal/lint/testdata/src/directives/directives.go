// Package directives exercises the //tdfm:allow suppression
// machinery: valid trailing and preceding directives silence their
// findings, while unknown passes, missing reasons, and stale
// directives are findings of their own.
package directives

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Trailing suppresses the wall-clock finding on its own line.
func Trailing() time.Time {
	return time.Now() //tdfm:allow nodeterminism directive-test fixture: trailing suppression
}

// Preceding suppresses the finding on the next code line.
func Preceding() time.Time {
	//tdfm:allow nodeterminism directive-test fixture: preceding-line suppression
	return time.Now()
}

// Stacked shows two directives for different passes above one line,
// both reaching past each other to the code below.
func Stacked(w io.Writer, m map[string]int) {
	for k, v := range m {
		//tdfm:allow maporder directive-test fixture: stacked above one line
		//tdfm:allow nodeterminism directive-test fixture: stacked above one line
		fmt.Fprintf(w, "%s=%d at %v\n", k, v, time.Now())
	}
}

// Unjustified carries malformed directives.
func Unjustified() {
	// want@+1 "names unknown pass"
	//tdfm:allow nosuchpass the pass name is wrong
	// want@+1 "has no reason; a justification is mandatory"
	//tdfm:allow nodeterminism
}

// Stale carries a directive with nothing to suppress.
func Stale() int {
	// want@+1 "suppresses nothing"
	//tdfm:allow errwrap directive-test fixture: nothing here fails errwrap
	return 1
}

// StaleDataflow carries directives for the dataflow passes with
// nothing left to suppress: the lock below is correctly paired and
// nothing is pooled.
func StaleDataflow(mu *sync.Mutex) int {
	// want@+1 "suppresses nothing"
	//tdfm:allow poolown directive-test fixture: nothing here allocates from the pool
	// want@+1 "suppresses nothing"
	//tdfm:allow lockdiscipline directive-test fixture: the pairing below is complete
	mu.Lock()
	defer mu.Unlock()
	return 2
}

// Duplicated stacks the same pass twice over one line; the second
// directive can never add anything and is reported once, as a
// duplicate (not also as stale).
func Duplicated() time.Time {
	// want@+2 "duplicate //tdfm:allow nodeterminism"
	//tdfm:allow nodeterminism directive-test fixture: first of a duplicate pair
	//tdfm:allow nodeterminism directive-test fixture: second of a duplicate pair
	return time.Now()
}
