package lint

// Shared go/types plumbing for the dataflow passes: resolving what a
// call expression actually calls, and producing stable intraprocedural
// keys for the storage locations (a local, a field chain, an indexed
// element) that abstract states are keyed on.

import (
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"
)

// calleeFunc resolves the *types.Func a call invokes, or nil for
// builtins, conversions, function-typed variables, and calls the
// checker could not resolve.
func calleeFunc(pkg *Package, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pkg.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pkg.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// isPkgCall reports whether call invokes the package-level function
// pkgPath.name (e.g. tdfm/internal/tensor.GetBuf).
func isPkgCall(pkg *Package, call *ast.CallExpr, pkgPath, name string) bool {
	fn := calleeFunc(pkg, call)
	if fn == nil || fn.Name() != name {
		return false
	}
	return fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Type().(*types.Signature).Recv() == nil
}

// methodOn reports whether call invokes a method with the given name
// whose receiver's core named type is pkgPath.typeName (through
// pointers). An empty typeName matches any receiver type in pkgPath.
func methodOn(pkg *Package, call *ast.CallExpr, pkgPath, typeName, name string) bool {
	fn := calleeFunc(pkg, call)
	if fn == nil || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	named := namedOf(sig.Recv().Type())
	if named == nil || named.Obj().Pkg() == nil {
		return false
	}
	if named.Obj().Pkg().Path() != pkgPath {
		return false
	}
	return typeName == "" || named.Obj().Name() == typeName
}

// namedOf unwraps pointers (and aliases) down to the named type, or nil.
func namedOf(t types.Type) *types.Named {
	for {
		switch x := t.(type) {
		case *types.Pointer:
			t = x.Elem()
		case *types.Named:
			return x
		case *types.Alias:
			t = types.Unalias(x)
		default:
			return nil
		}
	}
}

// recvExpr returns the receiver expression of a method call
// (x in x.M(…)), or nil for non-selector calls.
func recvExpr(call *ast.CallExpr) ast.Expr {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	return sel.X
}

// refKey produces a stable intraprocedural key for a reference
// expression: an identifier, a field-selection chain, or an indexed
// element rooted in one. The root identifier contributes its defining
// position (so distinct shadowed variables of the same name get
// distinct keys) and fields/indices contribute their printed path.
// The second result is false for expressions that are not trackable
// references (call results, literals, arithmetic).
func refKey(pkg *Package, e ast.Expr) (string, bool) {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := pkg.Info.Uses[x]
		if obj == nil {
			obj = pkg.Info.Defs[x]
		}
		if obj == nil {
			// No type info: the bare name is the best stable key we have.
			return x.Name, true
		}
		if _, isPkg := obj.(*types.PkgName); isPkg {
			return "", false // package qualifiers root nothing trackable
		}
		return fmt.Sprintf("%s@%d", obj.Name(), obj.Pos()), true
	case *ast.SelectorExpr:
		base, ok := refKey(pkg, x.X)
		if !ok {
			return "", false
		}
		return base + "." + x.Sel.Name, true
	case *ast.IndexExpr:
		base, ok := refKey(pkg, x.X)
		if !ok {
			return "", false
		}
		return base + "[" + exprText(x.Index) + "]", true
	case *ast.StarExpr:
		return refKey(pkg, x.X)
	}
	return "", false
}

// rootIdent returns the identifier at the base of a reference chain
// (v in v.a.b[i]), or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// isLocalRoot reports whether a reference chain is rooted in a variable
// local to the analyzed function body (parameters included): the only
// storage an intraprocedural pass can reason about. fnPos..fnEnd bound
// the body.
func isLocalRoot(pkg *Package, e ast.Expr, fnPos, fnEnd token.Pos) bool {
	id := rootIdent(e)
	if id == nil {
		return false
	}
	obj := pkg.Info.Uses[id]
	if obj == nil {
		obj = pkg.Info.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	return v.Pos() >= fnPos && v.Pos() < fnEnd
}

// exprText renders an expression compactly for keys and messages.
func exprText(e ast.Expr) string {
	var sb strings.Builder
	_ = printer.Fprint(&sb, token.NewFileSet(), e)
	s := sb.String()
	if len(s) > 40 {
		s = s[:37] + "..."
	}
	return s
}

// funcBodies yields every function body in a file — declarations and
// function literals — each of which is analyzed as its own unit by the
// dataflow passes. Literals nested inside a body are both (a) skipped
// by that body's CFG (they are values there) and (b) visited here as
// bodies in their own right. fn is the whole function node, whose
// position range bounds the function's local declarations.
func funcBodies(f *ast.File, visit func(fn ast.Node, body *ast.BlockStmt, name string)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncDecl:
			if x.Body != nil {
				visit(x, x.Body, x.Name.Name)
			}
		case *ast.FuncLit:
			visit(x, x.Body, "func literal")
		}
		return true
	})
}

// inspectShallow walks the expression tree of one CFG node without
// descending into function literals (their bodies are separate
// analysis units) or into nested statement bodies (a SelectStmt or
// RangeStmt node in a block head carries its body in the AST, but the
// CFG lowers that body into successor blocks of its own — applying its
// effects at the head would double-count them on the wrong path).
func inspectShallow(n ast.Node, visit func(ast.Node) bool) {
	var top ast.Node
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil {
			return true
		}
		if top == nil {
			top = m
		}
		if _, isLit := m.(*ast.FuncLit); isLit {
			return false
		}
		if m != top {
			switch m.(type) {
			case *ast.BlockStmt, *ast.CommClause, *ast.CaseClause:
				return false
			}
		}
		return visit(m)
	})
}
