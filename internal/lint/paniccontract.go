package lint

import (
	"fmt"
	"go/ast"
	"strings"
)

// PanicContract pins the facade packages' panic contracts: an exported
// function (or method on an exported type) in a facade package whose
// body can reach an explicit panic must say so in its doc comment (any
// mention of "panic" satisfies the contract — "panics if…", "…are a
// caller bug and panic"). PR 3 documented these contracts for
// internal/metrics by hand; this pass keeps them from silently rotting
// as the facades grow.
//
// Only lexically visible `panic(...)` calls count; a panic that
// escapes from a callee is the callee's contract to document.
type PanicContract struct {
	// Facades lists the module-relative package paths whose exported
	// API must document panics ("." is the root facade).
	Facades []string
}

// NewPanicContract returns the pass covering the repo's facades: the
// root tdfm package and internal/metrics (whose length-mismatch panics
// are the documented caller-bug contract of PR 3).
func NewPanicContract() *PanicContract {
	return &PanicContract{Facades: []string{".", "internal/metrics"}}
}

// Name implements Pass.
func (p *PanicContract) Name() string { return "paniccontract" }

// Doc implements Pass.
func (p *PanicContract) Doc() string {
	return "exported facade functions that panic without documenting it"
}

// covers reports whether the package is one of the guarded facades.
func (p *PanicContract) covers(rel string) bool {
	for _, f := range p.Facades {
		if rel == f {
			return true
		}
	}
	return false
}

// Run implements Pass.
func (p *PanicContract) Run(pkg *Package) []Finding {
	if !p.covers(pkg.RelPath) {
		return nil
	}
	var out []Finding
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			if fd.Recv != nil {
				if recv := receiverTypeName(fd.Recv); recv != "" && !ast.IsExported(recv) {
					continue // method on an unexported type: not API
				}
			}
			if !bodyPanics(fd.Body) {
				continue
			}
			if doc := fd.Doc.Text(); strings.Contains(strings.ToLower(doc), "panic") {
				continue
			}
			out = append(out, Finding{
				Pass: p.Name(),
				Pos:  pkg.Fset.Position(fd.Pos()),
				Message: fmt.Sprintf(
					"exported %s can panic but its doc comment does not say so; document the panic contract",
					fd.Name.Name),
			})
		}
	}
	return out
}

// bodyPanics reports whether the body lexically contains a call to the
// panic builtin.
func bodyPanics(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
			found = true
			return false
		}
		return true
	})
	return found
}

// receiverTypeName extracts the receiver's base type name, stripping
// pointers and type parameters.
func receiverTypeName(recv *ast.FieldList) string {
	if recv == nil || len(recv.List) == 0 {
		return ""
	}
	t := recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.Ident:
			return x.Name
		default:
			return ""
		}
	}
}
