package lint

// The forward abstract-interpretation driver over a CFG (DESIGN.md
// §12). A pass supplies a small lattice — an abstract state type, a
// per-node transfer function, and a join — and the driver computes the
// fixpoint of block-entry states with a worklist. Passes then replay
// the transfer function through each reachable block (simulate) to make
// per-node observations with the exact state in force at that node.
//
// The driver is generic so each pass keeps its own concrete state type;
// states must behave as values (transfer returns a new state rather
// than mutating its input) or the worklist's convergence check breaks.

import "go/ast"

// flowLattice packages a pass's abstract domain for the driver.
type flowLattice[S any] struct {
	// entry is the state on function entry.
	entry S
	// transfer applies one node's effect, returning the post-state. It
	// must not mutate the input state.
	transfer func(S, ast.Node) S
	// join merges the states of two incoming edges at a block head.
	join func(S, S) S
	// equal detects convergence.
	equal func(S, S) bool
}

// forward computes the entry state of every block as the least fixpoint
// of the lattice over the CFG, keyed by Block.Index. Unreachable blocks
// keep the zero S and are reported false in the second result.
func forward[S any](cfg *CFG, lat flowLattice[S]) (in []S, reached []bool) {
	n := len(cfg.Blocks)
	in = make([]S, n)
	reached = make([]bool, n)
	in[cfg.Entry.Index] = lat.entry
	reached[cfg.Entry.Index] = true

	work := []*Block{cfg.Entry}
	queued := make([]bool, n)
	queued[cfg.Entry.Index] = true
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b.Index] = false
		out := blockOut(lat, in[b.Index], b)
		for _, s := range b.Succs {
			next := out
			if reached[s.Index] {
				next = lat.join(in[s.Index], out)
				if lat.equal(next, in[s.Index]) {
					continue
				}
			}
			in[s.Index] = next
			reached[s.Index] = true
			if !queued[s.Index] {
				queued[s.Index] = true
				work = append(work, s)
			}
		}
	}
	return in, reached
}

// blockOut pushes a state through every node of a block.
func blockOut[S any](lat flowLattice[S], s S, b *Block) S {
	for _, n := range b.Nodes {
		s = lat.transfer(s, n)
	}
	return s
}

// simulate replays the fixpoint through each reachable block, invoking
// visit with the state in force immediately before each node. Passes
// use it to anchor findings: the fixpoint says what may hold, simulate
// says where.
func simulate[S any](cfg *CFG, lat flowLattice[S], in []S, reached []bool, visit func(S, ast.Node) S) {
	for _, b := range cfg.Blocks {
		if !reached[b.Index] {
			continue
		}
		s := in[b.Index]
		for _, n := range b.Nodes {
			s = visit(s, n)
		}
	}
}

// exitStates returns the state flowing into Exit along each normal
// (non-panic) path: one state per Exit predecessor, after that block's
// nodes have been applied. Passes check end-of-function obligations
// against each of these, so a violation on one path is found even when
// another path is clean.
func exitStates[S any](cfg *CFG, lat flowLattice[S], in []S, reached []bool) []S {
	var out []S
	for _, p := range cfg.Exit.Preds {
		if !reached[p.Index] {
			continue
		}
		out = append(out, blockOut(lat, in[p.Index], p))
	}
	return out
}
