package lint

// Control-flow graphs over go/ast function bodies (DESIGN.md §12).
//
// This file is the foundation of the dataflow-aware passes (poolown,
// lockdiscipline): BuildCFG lowers one function body into basic blocks
// connected by control edges, and dataflow.go runs a forward abstract
// interpretation over the result. The engine is deliberately
// intraprocedural and stdlib-only — it is the extension point for any
// future pass that needs path sensitivity (and, later, for
// interprocedural summaries layered on top of per-function CFGs).
//
// Shape of the graph:
//
//   - Every CFG has a synthetic Entry, Exit, and Panic block. Entry
//     leads to the first statement block; every return statement (and a
//     body that falls off its end) edges to Exit; calls to panic and
//     os.Exit edge to Panic. Passes that enforce "on all exit paths"
//     obligations check the predecessors of Exit and, by policy, ignore
//     Panic (a panicking path unwinds through deferred calls and the
//     process is usually gone — demanding releases there is noise).
//   - Block.Nodes holds the statements and control expressions of the
//     block in evaluation order. Control statements contribute their
//     scrutinee (an if condition, a switch tag, a range operand) to the
//     block that evaluates it; their bodies become successor blocks.
//   - defer statements appear as ordinary DeferStmt nodes in the block
//     that registers them. Deferred work is a runtime fact, not a
//     control edge: a pass models it by recording "release/unlock is
//     registered" in its abstract state, which makes conditional defers
//     (defer inside an if) come out path-sensitive for free.
//   - for/range loops produce a head block with a back edge from the
//     body, so loop-carried state reaches a fixpoint in the driver.
//     break/continue (labeled included) and goto resolve to real edges;
//     fallthrough edges into the next case body.
//   - select lowers to one node for the SelectStmt itself (the blocking
//     point) in the current block plus one successor block per comm
//     clause; the comm statements are recorded in SelectComms so passes
//     can tell a nonblocking send inside a select-with-default from a
//     bare channel operation.
//
// Function literals are values, not control flow: BuildCFG does not
// descend into a FuncLit body. Passes analyze each literal as its own
// function (funcBodies collects them all).

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Block is one basic block: a maximal straight-line node sequence with
// control edges to its successors.
type Block struct {
	// Index is the block's position in CFG.Blocks (stable, creation
	// order; Entry is 0).
	Index int
	// Nodes are the statements and control expressions evaluated in this
	// block, in order.
	Nodes []ast.Node
	// Succs are the control-flow successors.
	Succs []*Block
	// Preds are the control-flow predecessors (derived from Succs).
	Preds []*Block
}

// addSucc links b → s once (duplicate edges carry no extra information
// for a dataflow join).
func (b *Block) addSucc(s *Block) {
	for _, e := range b.Succs {
		if e == s {
			return
		}
	}
	b.Succs = append(b.Succs, s)
	s.Preds = append(s.Preds, b)
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	// Blocks lists every block in creation order; Blocks[0] is Entry.
	Blocks []*Block
	// Entry is the synthetic entry block (no nodes of its own).
	Entry *Block
	// Exit is the synthetic normal-exit block: every return edges here,
	// as does a body that falls off its end.
	Exit *Block
	// Panic is the synthetic panicking-exit block: calls to panic and
	// os.Exit edge here. Passes decide whether obligations apply on
	// panicking paths (the shipped ones say no).
	Panic *Block
	// SelectComms marks the comm statements of select cases: channel
	// operations that block (or not, with a default clause) inside the
	// select machinery rather than as bare statements.
	SelectComms map[ast.Stmt]bool
}

// Reachable reports which blocks are reachable from Entry, indexed by
// Block.Index.
func (c *CFG) Reachable() []bool {
	seen := make([]bool, len(c.Blocks))
	var walk func(b *Block)
	walk = func(b *Block) {
		if seen[b.Index] {
			return
		}
		seen[b.Index] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(c.Entry)
	return seen
}

// cfgBuilder carries the construction state of one BuildCFG call.
type cfgBuilder struct {
	cfg *CFG
	// cur is the block under construction; nil after a terminating
	// statement (return, panic, break…) until the next statement opens a
	// fresh — then unreachable — block.
	cur *Block
	// loops is the stack of enclosing breakable/continuable constructs.
	loops []loopFrame
	// labels maps label names to their resolution state (target blocks
	// for goto and labeled break/continue).
	labels map[string]*labelFrame
	// info resolves panic/os.Exit callees; may be an empty Info.
	info *infoView
}

// loopFrame records where break and continue jump for one enclosing
// construct. continueTo is nil for switch/select (continue skips them).
type loopFrame struct {
	label      string
	breakTo    *Block
	continueTo *Block
}

// labelFrame is one declared (or forward-referenced) label.
type labelFrame struct {
	// block is the labeled statement's block; goto L edges here.
	block *Block
}

// infoView is the slice of type information the builder needs; split
// out so tests can build CFGs from bare parsed files.
type infoView struct {
	pkg *Package
}

// BuildCFG lowers a function body into a control-flow graph. body must
// not be nil; pkg supplies type information for terminator detection
// (panic vs a local function named panic) and may carry an empty Info.
func BuildCFG(pkg *Package, body *ast.BlockStmt) *CFG {
	cfg := &CFG{SelectComms: make(map[ast.Stmt]bool)}
	b := &cfgBuilder{cfg: cfg, labels: make(map[string]*labelFrame), info: &infoView{pkg: pkg}}
	cfg.Entry = b.newBlock()
	cfg.Exit = b.newBlock()
	cfg.Panic = b.newBlock()
	first := b.newBlock()
	cfg.Entry.addSucc(first)
	b.cur = first
	b.stmtList(body.List)
	if b.cur != nil {
		b.cur.addSucc(cfg.Exit)
	}
	return cfg
}

// newBlock appends a fresh block to the graph.
func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// startBlock returns cur, opening a fresh (unreachable until linked)
// block when the previous statement terminated control flow.
func (b *cfgBuilder) startBlock() *Block {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	return b.cur
}

// add appends a node to the current block.
func (b *cfgBuilder) add(n ast.Node) {
	blk := b.startBlock()
	blk.Nodes = append(blk.Nodes, n)
}

// stmtList lowers a statement sequence.
func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

// stmt lowers one statement. label is the non-empty label name when the
// statement is the body of a LabeledStmt (so labeled break/continue on
// loops and switches resolve).
func (b *cfgBuilder) stmt(s ast.Stmt, label string) {
	switch x := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(x.List)

	case *ast.LabeledStmt:
		lf := b.labelFrame(x.Label.Name)
		b.startBlock().addSucc(lf.block)
		b.cur = lf.block
		b.stmt(x.Stmt, x.Label.Name)

	case *ast.IfStmt:
		if x.Init != nil {
			b.add(x.Init)
		}
		b.add(x.Cond)
		cond := b.cur
		after := b.newBlock()
		then := b.newBlock()
		cond.addSucc(then)
		b.cur = then
		b.stmtList(x.Body.List)
		if b.cur != nil {
			b.cur.addSucc(after)
		}
		if x.Else != nil {
			els := b.newBlock()
			cond.addSucc(els)
			b.cur = els
			b.stmt(x.Else, "")
			if b.cur != nil {
				b.cur.addSucc(after)
			}
		} else {
			cond.addSucc(after)
		}
		b.cur = after

	case *ast.ForStmt:
		if x.Init != nil {
			b.add(x.Init)
		}
		head := b.newBlock()
		b.startBlock().addSucc(head)
		if x.Cond != nil {
			head.Nodes = append(head.Nodes, x.Cond)
		}
		after := b.newBlock()
		post := head
		if x.Post != nil {
			post = b.newBlock()
			post.Nodes = append(post.Nodes, x.Post)
			post.addSucc(head)
		}
		if x.Cond != nil {
			head.addSucc(after)
		}
		body := b.newBlock()
		head.addSucc(body)
		b.pushLoop(label, after, post)
		b.cur = body
		b.stmtList(x.Body.List)
		if b.cur != nil {
			b.cur.addSucc(post)
		}
		b.popLoop()
		b.cur = after

	case *ast.RangeStmt:
		b.add(x.X)
		head := b.newBlock()
		b.startBlock().addSucc(head)
		// The RangeStmt node itself stands for the per-iteration key/value
		// binding (and, for a channel operand, the blocking receive).
		head.Nodes = append(head.Nodes, x)
		after := b.newBlock()
		head.addSucc(after)
		body := b.newBlock()
		head.addSucc(body)
		b.pushLoop(label, after, head)
		b.cur = body
		b.stmtList(x.Body.List)
		if b.cur != nil {
			b.cur.addSucc(head)
		}
		b.popLoop()
		b.cur = after

	case *ast.SwitchStmt:
		if x.Init != nil {
			b.add(x.Init)
		}
		if x.Tag != nil {
			b.add(x.Tag)
		}
		b.switchClauses(x.Body.List, label, func(cc *ast.CaseClause) []ast.Stmt {
			for _, e := range cc.List {
				b.add(e)
			}
			return cc.Body
		})

	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			b.add(x.Init)
		}
		b.add(x.Assign)
		b.switchClauses(x.Body.List, label, func(cc *ast.CaseClause) []ast.Stmt {
			return cc.Body
		})

	case *ast.SelectStmt:
		b.add(x)
		head := b.cur
		after := b.newBlock()
		for _, cl := range x.Body.List {
			cc := cl.(*ast.CommClause)
			blk := b.newBlock()
			head.addSucc(blk)
			b.cur = blk
			if cc.Comm != nil {
				b.cfg.SelectComms[cc.Comm] = true
				b.add(cc.Comm)
			}
			b.pushLoop(label, after, nil)
			b.stmtList(cc.Body)
			b.popLoop()
			if b.cur != nil {
				b.cur.addSucc(after)
			}
		}
		if len(x.Body.List) == 0 {
			// An empty select blocks forever: no successors.
			b.cur = nil
			return
		}
		b.cur = after

	case *ast.ReturnStmt:
		b.add(x)
		b.cur.addSucc(b.cfg.Exit)
		b.cur = nil

	case *ast.BranchStmt:
		b.add(x)
		switch x.Tok {
		case token.BREAK:
			if t := b.branchTarget(x, false); t != nil {
				b.cur.addSucc(t)
			}
		case token.CONTINUE:
			if t := b.branchTarget(x, true); t != nil {
				b.cur.addSucc(t)
			}
		case token.GOTO:
			b.cur.addSucc(b.labelFrame(x.Label.Name).block)
		case token.FALLTHROUGH:
			// Resolved by switchClauses (the edge to the next case body);
			// nothing to do here.
			return
		}
		b.cur = nil

	case *ast.ExprStmt:
		b.add(x)
		if isTerminatingCall(b.info.pkg, x.X) {
			b.cur.addSucc(b.cfg.Panic)
			b.cur = nil
		}

	case nil:
		// Nothing: a missing init/post slot.

	default:
		// Assignments, declarations, sends, inc/dec, defer, go, empty
		// statements: straight-line nodes.
		b.add(s)
	}
}

// switchClauses lowers the shared (expr and type) switch shape: the
// current block fans out to one body block per case, every body joins
// after the switch, fallthrough edges into the next body, and a missing
// default adds a head→after edge.
func (b *cfgBuilder) switchClauses(clauses []ast.Stmt, label string, open func(*ast.CaseClause) []ast.Stmt) {
	head := b.startBlock()
	after := b.newBlock()
	hasDefault := false
	// Body blocks are pre-created so fallthrough can edge forward.
	bodies := make([]*Block, len(clauses))
	for i := range clauses {
		bodies[i] = b.newBlock()
	}
	for i, cl := range clauses {
		cc := cl.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		b.cur = bodies[i]
		head.addSucc(bodies[i])
		body := open(cc)
		b.pushLoop(label, after, nil)
		b.stmtList(body)
		b.popLoop()
		if b.cur != nil {
			if fallsThrough(body) && i+1 < len(clauses) {
				b.cur.addSucc(bodies[i+1])
			} else {
				b.cur.addSucc(after)
			}
		}
	}
	if !hasDefault {
		head.addSucc(after)
	}
	b.cur = after
}

// fallsThrough reports whether a case body ends in a fallthrough.
func fallsThrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

// pushLoop/popLoop maintain the break/continue resolution stack.
func (b *cfgBuilder) pushLoop(label string, breakTo, continueTo *Block) {
	b.loops = append(b.loops, loopFrame{label: label, breakTo: breakTo, continueTo: continueTo})
}

func (b *cfgBuilder) popLoop() { b.loops = b.loops[:len(b.loops)-1] }

// branchTarget resolves a break or continue to its jump target.
func (b *cfgBuilder) branchTarget(x *ast.BranchStmt, isContinue bool) *Block {
	want := ""
	if x.Label != nil {
		want = x.Label.Name
	}
	for i := len(b.loops) - 1; i >= 0; i-- {
		fr := b.loops[i]
		if isContinue && fr.continueTo == nil {
			continue // switch/select frames are transparent to continue
		}
		if want != "" && fr.label != want {
			continue
		}
		if isContinue {
			return fr.continueTo
		}
		return fr.breakTo
	}
	return nil // malformed source; the type checker reports it
}

// labelFrame returns (creating on first reference) the frame for a
// label, so forward gotos resolve to the same block the LabeledStmt
// later opens.
func (b *cfgBuilder) labelFrame(name string) *labelFrame {
	if lf, ok := b.labels[name]; ok {
		return lf
	}
	lf := &labelFrame{block: b.newBlock()}
	b.labels[name] = lf
	return lf
}

// isTerminatingCall reports whether an expression statement never
// returns: the panic builtin or os.Exit.
func isTerminatingCall(pkg *Package, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fun.Name != "panic" {
			return false
		}
		// With type info, make sure it is the builtin, not a shadowing
		// local; without, assume the builtin.
		if obj, ok := pkg.Info.Uses[fun]; ok {
			_, isBuiltin := obj.(*types.Builtin)
			return isBuiltin
		}
		return true
	case *ast.SelectorExpr:
		id, ok := fun.X.(*ast.Ident)
		if !ok || fun.Sel.Name != "Exit" || id.Name != "os" {
			return false
		}
		return isPackageRef(pkg, id)
	}
	return false
}
