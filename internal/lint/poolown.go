package lint

// PoolOwn: dataflow ownership checking for pooled tensor storage
// (DESIGN.md §10 contract, §12 engine).

import (
	"fmt"
	"go/ast"
	"go/token"
	"maps"
)

// tensorPkg is the import path of the buffer-pool package whose
// ownership contract the pass enforces.
const tensorPkg = "tdfm/internal/tensor"

// Ownership kinds a tracked value can have.
const (
	ownBuf      = iota // GetBuf/GetBuf32 slice: released by PutBuf/PutBuf32
	ownTensor          // NewPooled/ConcatRowsPooled tensor: released by Release
	ownArenaVal        // Arena-allocated value: invalidated by its arena's Reset/Release
)

// Abstract facts about one tracked value (a bitset: paths may disagree).
const (
	fOwned    = 1 << iota // some path still holds the release obligation
	fReleased             // some path has already released/invalidated it
	fEscaped              // ownership left the function (return, justified store)
)

// ownEntry is the abstract state of one tracked allocation.
type ownEntry struct {
	kind   int
	bits   int
	origin token.Pos // the allocating call, where obligations anchor
	label  string    // "tensor.GetBuf", "tensor.NewPooled", …
	// deferRel records a registered deferred release (defer
	// tensor.PutBuf(v), defer t.Release()), which satisfies the exit
	// obligation on every path that executed the defer statement.
	deferRel bool
	// arena is the owning arena's key for ownArenaVal entries; their
	// "release" is the arena's Reset/Release.
	arena string
	// resetLabel names what invalidated an arena value, for messages.
	resetLabel string
}

// ownState maps value keys (refKey) to their abstract entry.
type ownState map[string]ownEntry

// PoolOwn enforces the pooled-buffer ownership contract on every
// function, path-sensitively over the CFG engine:
//
//   - every tensor.GetBuf/GetBuf32 buffer and NewPooled/ConcatRowsPooled
//     tensor must reach its release (PutBuf/PutBuf32, Release — directly
//     or via defer) on every return path, unless ownership escapes by
//     being returned;
//   - no use after release, and no double release;
//   - pooled values must not be stored into fields, globals, element
//     stores, or channels, or be captured by closures — those escapes
//     outlive the function and defeat intraprocedural ownership (a
//     deliberate long-lived handoff is justified with //tdfm:allow);
//   - values allocated from a tensor.Arena (Buf, Buf32, Tensor,
//     TensorLike, F32) must not be used after that arena's Reset or
//     Release in the same function: the storage is rezeroed and reissued.
//
// The analysis is intraprocedural: passing a tracked value to a callee
// is a borrow (the obligation stays here), receiving one from a callee
// is untracked (the callee owns it), and aliasing through a local copy
// is a borrow too. Panicking paths are exempt — the pool never leaks
// buffers into live data, so the GC reclaims them during unwind.
type PoolOwn struct {
	// Allow lists module-relative package paths exempt from the pass
	// (same syntax as NoDeterminism.Allow).
	Allow []string
}

// NewPoolOwn returns the pass with the repo's exemptions: the pool
// implementation itself owns raw storage in ways client rules forbid.
func NewPoolOwn() *PoolOwn {
	return &PoolOwn{Allow: []string{
		"internal/tensor", // the pool/arena implementation is the contract, not a client
	}}
}

// Name implements Pass.
func (p *PoolOwn) Name() string { return "poolown" }

// Doc implements Pass.
func (p *PoolOwn) Doc() string {
	return "pooled buffers released on all paths, never used after release, never escaping the owning function"
}

// Run implements Pass.
func (p *PoolOwn) Run(pkg *Package) []Finding {
	if matchPath(p.Allow, pkg.RelPath) || pkg.Types == nil {
		return nil
	}
	var out []Finding
	for _, f := range pkg.Files {
		funcBodies(f, func(fn ast.Node, body *ast.BlockStmt, name string) {
			out = append(out, p.checkFunc(pkg, fn, body)...)
		})
	}
	return out
}

// checkFunc analyzes one function body.
func (p *PoolOwn) checkFunc(pkg *Package, fn ast.Node, body *ast.BlockStmt) []Finding {
	cfg := BuildCFG(pkg, body)
	a := &ownAnalysis{pkg: pkg, pass: p, fnPos: fn.Pos(), fnEnd: fn.End()}
	lat := flowLattice[ownState]{
		entry:    ownState{},
		transfer: func(s ownState, n ast.Node) ownState { return a.step(s, n, nil) },
		join:     joinOwn,
		equal: func(x, y ownState) bool {
			return maps.Equal(x, y)
		},
	}
	in, reached := forward(cfg, lat)

	var out []Finding
	seen := make(map[string]bool)
	report := func(pos token.Pos, format string, args ...any) {
		f := Finding{Pass: p.Name(), Pos: pkg.Fset.Position(pos), Message: fmt.Sprintf(format, args...)}
		key := f.Pos.String() + f.Message
		if !seen[key] {
			seen[key] = true
			out = append(out, f)
		}
	}
	simulate(cfg, lat, in, reached, func(s ownState, n ast.Node) ownState {
		return a.step(s, n, report)
	})
	// End-of-function obligations, one check per normal exit path.
	for _, s := range exitStates(cfg, lat, in, reached) {
		for _, e := range s {
			if e.kind == ownArenaVal {
				continue
			}
			if e.bits&fOwned != 0 && e.bits&fEscaped == 0 && !e.deferRel {
				report(e.origin, "%s result may not be released on every return path; pair it with %s (defer works) or justify with //tdfm:allow",
					e.label, releaserName(e))
			}
		}
	}
	sortFindings(out)
	return out
}

// releaserName names the missing release call for a leak message.
func releaserName(e ownEntry) string {
	switch {
	case e.kind == ownTensor:
		return "Release"
	case e.label == "tensor.GetBuf32":
		return "tensor.PutBuf32"
	default:
		return "tensor.PutBuf"
	}
}

// joinOwn merges two path states: union of tracked values, bitwise-OR
// of path facts, and a deferred release only counts if both paths
// registered it.
func joinOwn(a, b ownState) ownState {
	out := make(ownState, len(a))
	maps.Copy(out, a)
	for k, eb := range b {
		ea, ok := out[k]
		if !ok {
			out[k] = eb
			continue
		}
		ea.bits |= eb.bits
		ea.deferRel = ea.deferRel && eb.deferRel
		if eb.resetLabel != "" {
			ea.resetLabel = eb.resetLabel
		}
		out[k] = ea
	}
	return out
}

// ownAnalysis carries per-function context for the transfer function.
type ownAnalysis struct {
	pkg          *Package
	pass         *PoolOwn
	fnPos, fnEnd token.Pos
}

// step is the transfer function; with report non-nil it also emits
// findings (the simulate phase). It never mutates s.
func (a *ownAnalysis) step(s ownState, n ast.Node, report func(token.Pos, string, ...any)) ownState {
	st := maps.Clone(s)
	// consumed collects identifier positions already handled as part of
	// a release, origin, or escape structure, so the generic
	// use-after-release scan does not double-report them.
	consumed := make(map[token.Pos]bool)

	switch x := n.(type) {
	case *ast.DeferStmt:
		a.applyDeferred(st, x.Call)
		return st
	case *ast.ReturnStmt:
		// Returning a tracked value transfers ownership to the caller.
		for _, res := range x.Results {
			if key, ok := refKey(a.pkg, res); ok {
				if e, tracked := st[key]; tracked {
					e.bits |= fEscaped
					st[key] = e
					if id := rootIdent(res); id != nil {
						consumed[id.Pos()] = true
					}
				}
			}
		}
	case *ast.SendStmt:
		a.escapeIfTracked(st, x.Value, "sent on a channel", report)
	case *ast.GoStmt:
		// A goroutine may outlive this frame; handing it a pooled value
		// defeats intraprocedural ownership just like a field store.
		for _, arg := range x.Call.Args {
			a.escapeIfTracked(st, arg, "passed to a goroutine", report)
		}
	case *ast.AssignStmt:
		a.assign(st, x, consumed, report)
	}

	// Releases, arena invalidations, and discarded allocations anywhere
	// in the node's expression tree.
	inspectShallow(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		a.call(st, n, call, consumed, report)
		return true
	})

	// Closure captures: a tracked value referenced inside a function
	// literal outlives this frame's reasoning. Deferred literals were
	// already credited as releases by applyDeferred.
	if _, isDefer := n.(*ast.DeferStmt); !isDefer {
		ast.Inspect(n, func(m ast.Node) bool {
			lit, ok := m.(*ast.FuncLit)
			if !ok {
				return true
			}
			a.closureCaptures(st, lit, report)
			return false
		})
	}

	// Generic use check: any remaining reference to a released value.
	a.checkUses(st, n, consumed, report)
	return st
}

// assign handles bindings of tracked origins and escaping stores.
func (a *ownAnalysis) assign(st ownState, x *ast.AssignStmt, consumed map[token.Pos]bool, report func(token.Pos, string, ...any)) {
	rhs := x.Rhs
	if len(x.Lhs) != len(rhs) {
		rhs = nil // multi-value calls and comma-ok forms bind no origin
	}
	for i, lh := range x.Lhs {
		// Escaping store: a tracked value written anywhere but a plain
		// local variable (a field, an element, a global) outlives the
		// function's ownership reasoning.
		if rhs != nil {
			if key, ok := refKey(a.pkg, rhs[i]); ok {
				if _, tracked := st[key]; tracked {
					if !isBareLocal(a.pkg, lh, a.fnPos, a.fnEnd) {
						a.escapeIfTracked(st, rhs[i], fmt.Sprintf("stored into %s", exprText(lh)), report)
					}
					// A copy into another local is a borrow: the original
					// key keeps the obligation; the copy is untracked.
					if id := rootIdent(rhs[i]); id != nil {
						consumed[id.Pos()] = true
					}
					continue
				}
			}
			if call, ok := ast.Unparen(rhs[i]).(*ast.CallExpr); ok {
				if kind, label, arena, isOrigin := a.origin(call); isOrigin {
					consumed[call.Pos()] = true // handled; not a discarded origin
					if isBareLocal(a.pkg, lh, a.fnPos, a.fnEnd) {
						key, ok := refKey(a.pkg, lh)
						if !ok {
							continue
						}
						st[key] = ownEntry{kind: kind, bits: fOwned, origin: call.Pos(), label: label, arena: arena}
					} else if kind != ownArenaVal {
						// Direct store of a fresh pooled value into a field,
						// global, or element: an escape at birth.
						if report != nil {
							report(call.Pos(), "%s result stored directly into %s; pooled storage must stay function-local (or carry a justified //tdfm:allow for a long-lived handoff)",
								label, exprText(lh))
						}
					}
				}
			}
		}
	}
}

// call handles release calls, arena invalidation, and discarded
// origins for one call expression found anywhere in a node.
func (a *ownAnalysis) call(st ownState, node ast.Node, call *ast.CallExpr, consumed map[token.Pos]bool, report func(token.Pos, string, ...any)) {
	pkg := a.pkg
	// PutBuf/PutBuf32(v): release of a tracked buffer.
	if isPkgCall(pkg, call, tensorPkg, "PutBuf") || isPkgCall(pkg, call, tensorPkg, "PutBuf32") {
		if len(call.Args) == 1 {
			a.release(st, call.Args[0], call, consumed, report)
		}
		return
	}
	// t.Release() on a tracked pooled tensor.
	if methodOn(pkg, call, tensorPkg, "Tensor", "Release") {
		if recv := recvExpr(call); recv != nil {
			a.release(st, recv, call, consumed, report)
		}
		return
	}
	// Arena Reset/Release invalidates every value allocated from it here.
	if methodOn(pkg, call, tensorPkg, "Arena", "Reset") || methodOn(pkg, call, tensorPkg, "Arena", "Release") {
		recv := recvExpr(call)
		if recv == nil {
			return
		}
		key, ok := refKey(pkg, recv)
		if !ok {
			return
		}
		what := exprText(recv) + "." + calleeFunc(pkg, call).Name() + "()"
		for k, e := range st {
			if e.kind == ownArenaVal && e.arena == key {
				e.bits = (e.bits &^ fOwned) | fReleased
				e.resetLabel = what
				st[k] = e
			}
		}
		return
	}
	// A discarded origin call (statement position, result unused) drops
	// the only handle to the buffer: legal per the pool contract (GC
	// reclaims it) but certainly a mistake worth flagging.
	if _, _, _, isOrigin := a.origin(call); isOrigin && !consumed[call.Pos()] {
		if stmt, ok := node.(*ast.ExprStmt); ok && ast.Unparen(stmt.X) == call && report != nil {
			report(call.Pos(), "pooled allocation result is discarded; bind it and release it, or drop the call")
		}
	}
}

// release transitions a tracked value to released, reporting double
// releases. Untracked arguments are a caller-owned borrow and stay
// silent.
func (a *ownAnalysis) release(st ownState, arg ast.Expr, call *ast.CallExpr, consumed map[token.Pos]bool, report func(token.Pos, string, ...any)) {
	key, ok := refKey(a.pkg, arg)
	if !ok {
		return
	}
	e, tracked := st[key]
	if !tracked {
		return
	}
	if id := rootIdent(arg); id != nil {
		consumed[id.Pos()] = true
	}
	if e.kind == ownArenaVal {
		if report != nil {
			report(call.Pos(), "%s allocated %s from an arena; arena storage is recycled by Reset and must not be released individually",
				exprText(arg), e.label)
		}
		return
	}
	if e.bits&fReleased != 0 && report != nil {
		if e.bits&fOwned != 0 {
			report(call.Pos(), "%s may already have been released on some path (double release corrupts the pool)", exprText(arg))
		} else {
			report(call.Pos(), "double release of %s (its storage may already be handed out again)", exprText(arg))
		}
	}
	e.bits = (e.bits &^ fOwned) | fReleased
	st[key] = e
}

// applyDeferred credits deferred release calls: a direct deferred call
// or any release calls inside a deferred closure body.
func (a *ownAnalysis) applyDeferred(st ownState, call *ast.CallExpr) {
	credit := func(c *ast.CallExpr) {
		var arg ast.Expr
		switch {
		case isPkgCall(a.pkg, c, tensorPkg, "PutBuf") || isPkgCall(a.pkg, c, tensorPkg, "PutBuf32"):
			if len(c.Args) == 1 {
				arg = c.Args[0]
			}
		case methodOn(a.pkg, c, tensorPkg, "Tensor", "Release"):
			arg = recvExpr(c)
		}
		if arg == nil {
			return
		}
		if key, ok := refKey(a.pkg, arg); ok {
			if e, tracked := st[key]; tracked && e.kind != ownArenaVal {
				e.deferRel = true
				st[key] = e
			}
		}
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			if c, ok := m.(*ast.CallExpr); ok {
				credit(c)
			}
			return true
		})
		return
	}
	credit(call)
}

// escapeIfTracked reports and records an ownership escape.
func (a *ownAnalysis) escapeIfTracked(st ownState, e ast.Expr, how string, report func(token.Pos, string, ...any)) {
	key, ok := refKey(a.pkg, e)
	if !ok {
		return
	}
	ent, tracked := st[key]
	if !tracked || ent.bits&fEscaped != 0 {
		return
	}
	if ent.kind == ownArenaVal {
		how += " (arena storage is recycled at the next Reset)"
	}
	if report != nil {
		report(e.Pos(), "pooled value %s (from %s) %s; it escapes the owning function", exprText(e), ent.label, how)
	}
	ent.bits |= fEscaped
	st[key] = ent
}

// closureCaptures flags tracked values referenced inside a (non-defer)
// function literal.
func (a *ownAnalysis) closureCaptures(st ownState, lit *ast.FuncLit, report func(token.Pos, string, ...any)) {
	ast.Inspect(lit.Body, func(m ast.Node) bool {
		id, ok := m.(*ast.Ident)
		if !ok {
			return true
		}
		key, ok := refKey(a.pkg, id)
		if !ok {
			return true
		}
		if e, tracked := st[key]; tracked && e.bits&fEscaped == 0 {
			if report != nil {
				report(id.Pos(), "pooled value %s (from %s) is captured by a closure that may outlive the function; release before capture or justify", id.Name, e.label)
			}
			e.bits |= fEscaped
			st[key] = e
		}
		return true
	})
}

// checkUses reports reads of released values.
func (a *ownAnalysis) checkUses(st ownState, n ast.Node, consumed map[token.Pos]bool, report func(token.Pos, string, ...any)) {
	if report == nil {
		return
	}
	inspectShallow(n, func(m ast.Node) bool {
		id, ok := m.(*ast.Ident)
		if !ok || consumed[id.Pos()] {
			return true
		}
		key, ok := refKey(a.pkg, id)
		if !ok {
			return true
		}
		e, tracked := st[key]
		if !tracked || e.bits&fReleased == 0 || e.bits&fEscaped != 0 {
			return true
		}
		switch {
		case e.kind == ownArenaVal:
			report(id.Pos(), "%s is used after %s; arena storage is rezeroed and reissued after a reset", id.Name, e.resetLabel)
		case e.bits&fOwned != 0:
			report(id.Pos(), "%s may be used after release on some path", id.Name)
		default:
			report(id.Pos(), "%s is used after release; its storage may already be handed out again", id.Name)
		}
		return true
	})
}

// origin classifies a call as a tracked allocation: kind, message
// label, and (for arena values) the owning arena's key.
func (a *ownAnalysis) origin(call *ast.CallExpr) (kind int, label, arena string, ok bool) {
	pkg := a.pkg
	switch {
	case isPkgCall(pkg, call, tensorPkg, "GetBuf"):
		return ownBuf, "tensor.GetBuf", "", true
	case isPkgCall(pkg, call, tensorPkg, "GetBuf32"):
		return ownBuf, "tensor.GetBuf32", "", true
	case isPkgCall(pkg, call, tensorPkg, "NewPooled"):
		return ownTensor, "tensor.NewPooled", "", true
	case isPkgCall(pkg, call, tensorPkg, "ConcatRowsPooled"):
		return ownTensor, "tensor.ConcatRowsPooled", "", true
	}
	for _, m := range [...]string{"Buf", "Buf32", "Tensor", "TensorLike", "F32"} {
		if methodOn(pkg, call, tensorPkg, "Arena", m) {
			recv := recvExpr(call)
			if recv == nil {
				return 0, "", "", false
			}
			key, ok := refKey(pkg, recv)
			if !ok {
				return 0, "", "", false
			}
			return ownArenaVal, exprText(recv) + "." + m, key, true
		}
	}
	return 0, "", "", false
}

// isBareLocal reports whether an assignment target is a plain
// identifier naming a function-local variable (including the blank
// identifier, which discards rather than stores).
func isBareLocal(pkg *Package, e ast.Expr, fnPos, fnEnd token.Pos) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	if id.Name == "_" {
		return true
	}
	return isLocalRoot(pkg, id, fnPos, fnEnd)
}
