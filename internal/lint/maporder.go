package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags `for range` loops over maps whose bodies produce
// order-sensitive results — the classic nondeterministic-output bug in
// report and render code, where a map-ordered loop writes rows or
// accumulates floats and two runs of the same binary disagree:
//
//   - appending to a slice, unless the same function sorts that slice
//     after the loop (the sanctioned collect-then-sort idiom);
//   - accumulating into a float with +=, -=, *=, /= (float addition is
//     not associative, so even a sum depends on iteration order);
//   - writing output (fmt.Print*/Fprint* or a Write/WriteString
//     method) from inside the loop body.
//
// Integer accumulation, counting, and map-to-map copies are
// order-independent and not flagged. The pass needs type information
// to know the ranged expression is a map; without it (load errors) it
// reports nothing rather than guessing.
type MapOrder struct{}

// NewMapOrder returns the pass.
func NewMapOrder() *MapOrder { return &MapOrder{} }

// Name implements Pass.
func (p *MapOrder) Name() string { return "maporder" }

// Doc implements Pass.
func (p *MapOrder) Doc() string {
	return "map-ordered loops that append, accumulate floats, or write output"
}

// Run implements Pass.
func (p *MapOrder) Run(pkg *Package) []Finding {
	var out []Finding
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			out = append(out, p.checkFunc(pkg, fd)...)
		}
	}
	return out
}

// checkFunc scans one function for map-ordered loops with
// order-sensitive bodies.
func (p *MapOrder) checkFunc(pkg *Package, fd *ast.FuncDecl) []Finding {
	var out []Finding
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok || !p.rangesOverMap(pkg, rs) {
			return true
		}
		out = append(out, p.checkBody(pkg, fd, rs)...)
		return true
	})
	return out
}

// rangesOverMap reports whether the range statement iterates a map.
func (p *MapOrder) rangesOverMap(pkg *Package, rs *ast.RangeStmt) bool {
	tv, ok := pkg.Info.Types[rs.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// checkBody flags the order-sensitive operations inside one map-ranged
// loop body.
func (p *MapOrder) checkBody(pkg *Package, fd *ast.FuncDecl, rs *ast.RangeStmt) []Finding {
	var out []Finding
	report := func(n ast.Node, format string, args ...any) {
		out = append(out, Finding{Pass: p.Name(), Pos: pkg.Fset.Position(n.Pos()), Message: fmt.Sprintf(format, args...)})
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if f := p.checkAssign(pkg, fd, rs, x); f != "" {
				report(x, "%s", f)
			}
		case *ast.ExprStmt:
			if call, ok := x.X.(*ast.CallExpr); ok {
				if f := p.checkWrite(pkg, call); f != "" {
					report(x, "%s", f)
				}
			}
		}
		return true
	})
	return out
}

// checkAssign classifies one assignment inside a map-ranged body:
// slice append (minus the sorted-keys idiom) or float accumulation.
func (p *MapOrder) checkAssign(pkg *Package, fd *ast.FuncDecl, rs *ast.RangeStmt, as *ast.AssignStmt) string {
	// Float accumulation: x += v and friends where x is a float.
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		if len(as.Lhs) == 1 && isFloat(pkg, as.Lhs[0]) {
			return "accumulates a float in map-iteration order; float arithmetic is not associative — iterate sorted keys"
		}
		return ""
	}
	// Appends: x = append(x, ...).
	for i, rhs := range as.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok || !isBuiltinAppend(pkg, call) || i >= len(as.Lhs) {
			continue
		}
		target := identObject(pkg, as.Lhs[i])
		// Collect-then-sort idiom: appending into a slice that the
		// same function later sorts (sort.Strings on collected keys,
		// sort.Slice on collected values) restores a deterministic
		// order and is the sanctioned way to iterate a map.
		if target != nil && sortedAfter(pkg, fd, rs, target) {
			continue
		}
		return "appends to a slice in map-iteration order; collect and sort (or iterate sorted keys) instead"
	}
	// Plain re-assignment accumulation: x = x + v with float x.
	if as.Tok == token.ASSIGN && len(as.Lhs) == 1 && len(as.Rhs) == 1 {
		if bin, ok := as.Rhs[0].(*ast.BinaryExpr); ok &&
			(bin.Op == token.ADD || bin.Op == token.SUB || bin.Op == token.MUL || bin.Op == token.QUO) &&
			isFloat(pkg, as.Lhs[0]) && sameObject(pkg, as.Lhs[0], bin.X) {
			return "accumulates a float in map-iteration order; float arithmetic is not associative — iterate sorted keys"
		}
	}
	return ""
}

// checkWrite flags output calls inside a map-ranged body: fmt
// print/fprint helpers and Write/WriteString methods.
func (p *MapOrder) checkWrite(pkg *Package, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	name := sel.Sel.Name
	if obj, ok := pkg.Info.Uses[sel.Sel]; ok && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
		switch name {
		case "Fprint", "Fprintf", "Fprintln", "Print", "Printf", "Println":
			return fmt.Sprintf("fmt.%s inside a map-ordered loop emits lines in nondeterministic order; iterate sorted keys", name)
		}
		return ""
	}
	if name == "Write" || name == "WriteString" {
		return fmt.Sprintf("%s inside a map-ordered loop emits bytes in nondeterministic order; iterate sorted keys", name)
	}
	return ""
}

// sortedAfter reports whether fd sorts the slice object via the sort
// or slices package somewhere after the range statement.
func sortedAfter(pkg *Package, fd *ast.FuncDecl, rs *ast.RangeStmt, slice types.Object) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() || found {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		obj, ok := pkg.Info.Uses[sel.Sel]
		if !ok || obj.Pkg() == nil {
			return true
		}
		if path := obj.Pkg().Path(); path != "sort" && path != "slices" {
			return true
		}
		if id, ok := call.Args[0].(*ast.Ident); ok && pkg.Info.Uses[id] == slice {
			found = true
		}
		return true
	})
	return found
}

// identObject resolves an expression to the object it names, nil for
// anything but a plain identifier (including the blank identifier).
func identObject(pkg *Package, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj, ok := pkg.Info.Uses[id]; ok {
		return obj
	}
	return pkg.Info.Defs[id]
}

// sameObject reports whether two expressions are identifiers naming
// the same object.
func sameObject(pkg *Package, a, b ast.Expr) bool {
	oa, ob := identObject(pkg, a), identObject(pkg, b)
	return oa != nil && oa == ob
}

// isFloat reports whether the expression's type is a floating-point
// basic type.
func isFloat(pkg *Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isBuiltinAppend reports whether the call is the append builtin.
func isBuiltinAppend(pkg *Package, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	if obj, ok := pkg.Info.Uses[id]; ok {
		_, isBuiltin := obj.(*types.Builtin)
		return isBuiltin
	}
	return true
}
