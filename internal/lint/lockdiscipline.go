package lint

// LockDiscipline: dataflow lock checking over the CFG engine
// (DESIGN.md §11 serving contracts, §12 engine).

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"maps"
)

// chaosPkg is the injected-clock package whose wait primitives count as
// blocking operations.
const chaosPkg = "tdfm/internal/chaos"

// Lock-state facts (a bitset: paths may disagree).
const (
	lLocked  = 1 << iota // some path holds the write lock
	lRLocked             // some path holds a read lock
)

// lockEntry is the abstract state of one mutex reference.
type lockEntry struct {
	bits   int
	origin token.Pos // most recent acquisition, where findings anchor
	label  string    // printable receiver, "s.mu", "s.memberMu[idx]"
	// everHeld distinguishes "we saw this function unlock a lock it
	// acquired" from the helper idiom of unlocking a caller-held lock
	// (which the pass leaves alone).
	everHeld bool
	// deferUnlock/deferRUnlock record registered deferred releases.
	deferUnlock  bool
	deferRUnlock bool
}

// lockState maps mutex keys (refKey of the receiver) to their entry.
type lockState map[string]lockEntry

// LockDiscipline enforces mutex discipline on every function,
// path-sensitively over the CFG engine:
//
//   - every sync.Mutex/RWMutex Lock and RLock must reach its Unlock or
//     RUnlock (directly or via defer) on every return path;
//   - no double Lock of the same mutex reference on any path, no
//     Lock/RLock mixing on the same reference (a goroutine that
//     write-locks while read-locking deadlocks itself), and no
//     recursive RLock (a blocked writer makes it deadlock);
//   - a deferred Unlock must not fire on a mutex the function already
//     unlocked (an unlock-of-unlocked panic at runtime);
//   - in the hot-path packages listed in BlockingScope, no blocking
//     operation while any lock is held: channel sends and receives
//     (select cases with a default are exempt — they do not block),
//     selects without a default, ranging over a channel,
//     sync.WaitGroup.Wait, chaos.Clock waits (Sleep, BlockUntil), and
//     ensemble-member inference dispatch (PredictProbs,
//     PredictProbsErr). A deliberate block-while-held design carries a
//     justified //tdfm:allow.
//
// The analysis is intraprocedural and keyed on receiver reference
// chains (s.mu, t.clock.mu, s.memberMu[idx]): distinct chains are
// distinct locks, and a helper that unlocks a lock its caller acquired
// is left alone (the pass only tracks locks it saw acquired).
type LockDiscipline struct {
	// BlockingScope lists module-relative package paths where the
	// blocking-under-lock check applies (same syntax as
	// NoDeterminism.Allow). Pairing and double-lock checks always run.
	BlockingScope []string
}

// NewLockDiscipline returns the pass with the repo's hot-path scope:
// the serving tier and the model registry, where a lock held across a
// blocking call stalls request admission or a hot swap.
func NewLockDiscipline() *LockDiscipline {
	return &LockDiscipline{BlockingScope: []string{
		"internal/serve",
		"internal/registry",
		"cmd/tdfmserve",
	}}
}

// Name implements Pass.
func (p *LockDiscipline) Name() string { return "lockdiscipline" }

// Doc implements Pass.
func (p *LockDiscipline) Doc() string {
	return "Lock/Unlock pairing on all paths, double-lock detection, and no blocking calls under hot-path locks"
}

// Run implements Pass.
func (p *LockDiscipline) Run(pkg *Package) []Finding {
	if pkg.Types == nil {
		return nil
	}
	blockingScoped := matchPath(p.BlockingScope, pkg.RelPath)
	var out []Finding
	for _, f := range pkg.Files {
		funcBodies(f, func(fn ast.Node, body *ast.BlockStmt, name string) {
			out = append(out, p.checkFunc(pkg, body, blockingScoped)...)
		})
	}
	return out
}

// checkFunc analyzes one function body.
func (p *LockDiscipline) checkFunc(pkg *Package, body *ast.BlockStmt, blockingScoped bool) []Finding {
	cfg := BuildCFG(pkg, body)
	a := &lockAnalysis{pkg: pkg, cfg: cfg, blockingScoped: blockingScoped}
	lat := flowLattice[lockState]{
		entry:    lockState{},
		transfer: func(s lockState, n ast.Node) lockState { return a.step(s, n, nil) },
		join:     joinLock,
		equal: func(x, y lockState) bool {
			return maps.Equal(x, y)
		},
	}
	in, reached := forward(cfg, lat)

	var out []Finding
	seen := make(map[string]bool)
	report := func(pos token.Pos, format string, args ...any) {
		f := Finding{Pass: p.Name(), Pos: pkg.Fset.Position(pos), Message: fmt.Sprintf(format, args...)}
		key := f.Pos.String() + f.Message
		if !seen[key] {
			seen[key] = true
			out = append(out, f)
		}
	}
	simulate(cfg, lat, in, reached, func(s lockState, n ast.Node) lockState {
		return a.step(s, n, report)
	})
	// End-of-function obligations, one check per normal exit path.
	for _, s := range exitStates(cfg, lat, in, reached) {
		for _, e := range s {
			if e.bits&lLocked != 0 && !e.deferUnlock {
				report(e.origin, "%s.Lock() is not released on every return path; add the missing Unlock (defer works) on the early-return path", e.label)
			}
			if e.bits&lRLocked != 0 && !e.deferRUnlock {
				report(e.origin, "%s.RLock() is not released on every return path; add the missing RUnlock (defer works) on the early-return path", e.label)
			}
			if e.deferUnlock && e.everHeld && e.bits&(lLocked|lRLocked) == 0 {
				report(e.origin, "deferred %s.Unlock() will fire on a mutex this function already unlocked (unlock-of-unlocked panics at runtime)", e.label)
			}
		}
	}
	sortFindings(out)
	return out
}

// joinLock merges two path states: union of locks, bitwise-OR of held
// facts, and a deferred unlock only counts if both paths registered it.
func joinLock(a, b lockState) lockState {
	out := make(lockState, len(a))
	maps.Copy(out, a)
	for k, eb := range b {
		ea, ok := out[k]
		if !ok {
			out[k] = eb
			continue
		}
		ea.bits |= eb.bits
		ea.everHeld = ea.everHeld || eb.everHeld
		ea.deferUnlock = ea.deferUnlock && eb.deferUnlock
		ea.deferRUnlock = ea.deferRUnlock && eb.deferRUnlock
		if eb.origin > ea.origin {
			ea.origin, ea.label = eb.origin, eb.label
		}
		out[k] = ea
	}
	return out
}

// lockAnalysis carries per-function context for the transfer function.
type lockAnalysis struct {
	pkg            *Package
	cfg            *CFG
	blockingScoped bool
}

// step is the transfer function; with report non-nil it also emits
// findings (the simulate phase). It never mutates s.
func (a *lockAnalysis) step(s lockState, n ast.Node, report func(token.Pos, string, ...any)) lockState {
	st := maps.Clone(s)

	if d, isDefer := n.(*ast.DeferStmt); isDefer {
		a.applyDeferred(st, d.Call)
		return st
	}

	// Mutex transitions anywhere in the node.
	inspectShallow(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		a.mutexCall(st, call, report)
		return true
	})

	// Blocking operations while a lock is held (hot-path packages only).
	if a.blockingScoped && report != nil {
		if held, label := anyHeld(st); held {
			a.checkBlocking(st, n, label, report)
		}
	}
	return st
}

// anyHeld reports whether any tracked lock may be held, returning a
// printable name for messages.
func anyHeld(st lockState) (bool, string) {
	best := ""
	var bestPos token.Pos
	for _, e := range st {
		if e.bits&(lLocked|lRLocked) == 0 {
			continue
		}
		// Prefer the most recently acquired lock for the message, and
		// make the pick deterministic across map iteration order.
		if e.origin > bestPos || (e.origin == bestPos && e.label < best) || best == "" {
			best, bestPos = e.label, e.origin
		}
	}
	return best != "", best
}

// mutexCall applies one Lock/Unlock/RLock/RUnlock transition.
func (a *lockAnalysis) mutexCall(st lockState, call *ast.CallExpr, report func(token.Pos, string, ...any)) {
	name, ok := mutexMethod(a.pkg, call)
	if !ok {
		return
	}
	recv := recvExpr(call)
	if recv == nil {
		return
	}
	key, ok := refKey(a.pkg, recv)
	if !ok {
		return
	}
	label := exprText(recv)
	e := st[key]
	switch name {
	case "Lock":
		if report != nil {
			if e.bits&lLocked != 0 {
				report(call.Pos(), "possible double %s.Lock() (already locked at %s); this deadlocks the goroutine", label, a.line(e.origin))
			} else if e.bits&lRLocked != 0 {
				report(call.Pos(), "%s.Lock() while holding %s.RLock() (read lock taken at %s); lock upgrades deadlock", label, label, a.line(e.origin))
			}
		}
		e.bits |= lLocked
		e.origin, e.label, e.everHeld = call.Pos(), label, true
	case "RLock":
		if report != nil {
			if e.bits&lLocked != 0 {
				report(call.Pos(), "%s.RLock() while holding %s.Lock() (write lock taken at %s); this deadlocks the goroutine", label, label, a.line(e.origin))
			} else if e.bits&lRLocked != 0 {
				report(call.Pos(), "recursive %s.RLock() (already read-locked at %s); a writer between the two deadlocks both", label, a.line(e.origin))
			}
		}
		e.bits |= lRLocked
		e.origin, e.label, e.everHeld = call.Pos(), label, true
	case "Unlock":
		if report != nil && e.everHeld && e.bits&lLocked == 0 {
			report(call.Pos(), "%s.Unlock() of a mutex no path still holds (unlock-of-unlocked panics at runtime)", label)
		}
		e.bits &^= lLocked
		if e.label == "" {
			e.label = label
		}
	case "RUnlock":
		if report != nil && e.everHeld && e.bits&lRLocked == 0 {
			report(call.Pos(), "%s.RUnlock() of a mutex no path still read-holds (runtime fatal)", label)
		}
		e.bits &^= lRLocked
		if e.label == "" {
			e.label = label
		}
	}
	st[key] = e
}

// applyDeferred credits deferred unlocks: a direct deferred call or any
// unlock calls inside a deferred closure body.
func (a *lockAnalysis) applyDeferred(st lockState, call *ast.CallExpr) {
	credit := func(c *ast.CallExpr) {
		name, ok := mutexMethod(a.pkg, c)
		if !ok || (name != "Unlock" && name != "RUnlock") {
			return
		}
		recv := recvExpr(c)
		if recv == nil {
			return
		}
		key, ok := refKey(a.pkg, recv)
		if !ok {
			return
		}
		e := st[key]
		if e.label == "" {
			e.label = exprText(recv)
		}
		if name == "Unlock" {
			e.deferUnlock = true
		} else {
			e.deferRUnlock = true
		}
		st[key] = e
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			if c, ok := m.(*ast.CallExpr); ok {
				credit(c)
			}
			return true
		})
		return
	}
	credit(call)
}

// checkBlocking reports blocking operations inside a node while label's
// lock is held.
func (a *lockAnalysis) checkBlocking(st lockState, n ast.Node, label string, report func(token.Pos, string, ...any)) {
	// Select comm statements are the select machinery's own channel
	// operations; the SelectStmt node decides blocking-ness wholesale.
	if stmt, ok := n.(ast.Stmt); ok && a.cfg.SelectComms[stmt] {
		return
	}
	blame := func(pos token.Pos, what string) {
		report(pos, "%s while %s is held; release the lock before blocking (or justify the wait with //tdfm:allow)", what, label)
	}
	switch x := n.(type) {
	case *ast.SelectStmt:
		if !selectHasDefault(x) {
			blame(x.Pos(), "select with no default case")
		}
		return
	case *ast.RangeStmt:
		if t, ok := a.pkg.Info.Types[x.X]; ok {
			if _, isChan := t.Type.Underlying().(*types.Chan); isChan {
				blame(x.Pos(), "range over a channel")
			}
		}
		return
	case *ast.GoStmt:
		// The spawned call runs in its own goroutine; only the argument
		// expressions execute (and can block) here.
		for _, arg := range x.Call.Args {
			a.checkBlocking(st, arg, label, report)
		}
		return
	}
	inspectShallow(n, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.SendStmt:
			blame(x.Arrow, "channel send")
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				blame(x.OpPos, "channel receive")
			}
		case *ast.CallExpr:
			if what, blocking := a.blockingCall(x); blocking {
				blame(x.Pos(), what)
			}
		}
		return true
	})
}

// blockingCall classifies calls that can block indefinitely.
func (a *lockAnalysis) blockingCall(call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(a.pkg, call)
	if fn == nil {
		return "", false
	}
	switch fn.Name() {
	case "Wait":
		if methodOn(a.pkg, call, "sync", "WaitGroup", "Wait") {
			return "sync.WaitGroup.Wait", true
		}
	case "Sleep", "BlockUntil":
		if methodOn(a.pkg, call, chaosPkg, "", fn.Name()) {
			return "chaos clock " + fn.Name(), true
		}
	case "PredictProbs", "PredictProbsErr":
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return "member inference dispatch (" + fn.Name() + ")", true
		}
	}
	return "", false
}

// mutexMethod resolves a call to one of the sync mutex transitions.
func mutexMethod(pkg *Package, call *ast.CallExpr) (string, bool) {
	for _, name := range [...]string{"Lock", "Unlock", "RLock", "RUnlock"} {
		if methodOn(pkg, call, "sync", "Mutex", name) || methodOn(pkg, call, "sync", "RWMutex", name) {
			return name, true
		}
	}
	return "", false
}

// selectHasDefault reports whether a select has a default clause.
func selectHasDefault(s *ast.SelectStmt) bool {
	for _, cl := range s.Body.List {
		if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// line renders a position's line for in-message cross references.
func (a *lockAnalysis) line(pos token.Pos) string {
	return fmt.Sprintf("line %d", a.pkg.Fset.Position(pos).Line)
}
