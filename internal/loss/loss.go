// Package loss implements the loss functions used by the TDFM study:
// cross entropy (the baseline), smoothed cross entropy and label relaxation
// (the Label Smoothing technique), normalized and reverse cross entropy and
// their Active-Passive combination (the Robust Loss technique), and the
// temperature-softened distillation loss (the Knowledge Distillation
// technique).
//
// All losses consume raw logits of shape [N, K] and soft targets of shape
// [N, K] (one-hot rows for hard labels), and return the mean loss over the
// batch together with the gradient of that mean with respect to the logits.
// Folding the softmax into each loss keeps the gradients numerically stable.
package loss

import (
	"fmt"
	"math"

	"tdfm/internal/tensor"
)

// Loss maps (logits, targets) to a scalar and its logits gradient.
type Loss interface {
	// Forward returns the mean loss over the batch and dL/dlogits.
	Forward(logits, targets *tensor.Tensor) (float64, *tensor.Tensor)
	Name() string
}

func checkPair(logits, targets *tensor.Tensor, name string) (n, k int) {
	if logits.Dims() != 2 || targets.Dims() != 2 || !logits.SameShape(targets) {
		panic(fmt.Sprintf("loss: %s needs matching [N,K] logits/targets, got %v and %v",
			name, logits.Shape(), targets.Shape()))
	}
	return logits.Dim(0), logits.Dim(1)
}

// Softmax computes row-wise softmax of a [N, K] tensor with the max-shift
// trick for numerical stability.
func Softmax(logits *tensor.Tensor) *tensor.Tensor {
	if logits.Dims() != 2 {
		panic(fmt.Sprintf("loss: Softmax needs [N,K], got %v", logits.Shape()))
	}
	n, k := logits.Dim(0), logits.Dim(1)
	out := tensor.New(n, k)
	ld, od := logits.Data(), out.Data()
	for r := 0; r < n; r++ {
		row := ld[r*k : (r+1)*k]
		m := row[0]
		for _, v := range row[1:] {
			if v > m {
				m = v
			}
		}
		s := 0.0
		orow := od[r*k : (r+1)*k]
		for i, v := range row {
			e := math.Exp(v - m)
			orow[i] = e
			s += e
		}
		inv := 1 / s
		for i := range orow {
			orow[i] *= inv
		}
	}
	return out
}

// SoftmaxT computes row-wise softmax at temperature T (T > 1 softens the
// distribution, as used by knowledge distillation).
func SoftmaxT(logits *tensor.Tensor, t float64) *tensor.Tensor {
	if t <= 0 {
		panic("loss: SoftmaxT needs positive temperature")
	}
	return Softmax(logits.Scale(1 / t))
}

// LogSumExp returns the row-wise log-sum-exp of a [N, K] tensor.
func LogSumExp(logits *tensor.Tensor) []float64 {
	n, k := logits.Dim(0), logits.Dim(1)
	out := make([]float64, n)
	ld := logits.Data()
	for r := 0; r < n; r++ {
		row := ld[r*k : (r+1)*k]
		m := row[0]
		for _, v := range row[1:] {
			if v > m {
				m = v
			}
		}
		s := 0.0
		for _, v := range row {
			s += math.Exp(v - m)
		}
		out[r] = m + math.Log(s)
	}
	return out
}

// CrossEntropy is the standard softmax cross-entropy loss, the paper's
// baseline (and the loss the paper notes is not robust to label noise).
type CrossEntropy struct{}

var _ Loss = CrossEntropy{}

// Name implements Loss.
func (CrossEntropy) Name() string { return "cross-entropy" }

// Forward computes mean CE and gradient (softmax(z) - y)/N.
func (CrossEntropy) Forward(logits, targets *tensor.Tensor) (float64, *tensor.Tensor) {
	n, k := checkPair(logits, targets, "CrossEntropy")
	probs := Softmax(logits)
	lse := LogSumExp(logits)
	ld, td, pd := logits.Data(), targets.Data(), probs.Data()
	total := 0.0
	grad := tensor.New(n, k)
	gd := grad.Data()
	invN := 1 / float64(n)
	for r := 0; r < n; r++ {
		for c := 0; c < k; c++ {
			i := r*k + c
			y := td[i]
			if y != 0 {
				total += y * (lse[r] - ld[i])
			}
			gd[i] = (pd[i] - y) * invN
		}
	}
	return total * invN, grad
}

// SmoothedCE applies classic label smoothing with coefficient Alpha before
// cross entropy: q = (1-α)·y + α/K.
type SmoothedCE struct {
	Alpha float64
}

var _ Loss = SmoothedCE{}

// Name implements Loss.
func (s SmoothedCE) Name() string { return fmt.Sprintf("smoothed-ce(α=%g)", s.Alpha) }

// Smooth returns the smoothed version of the targets.
func (s SmoothedCE) Smooth(targets *tensor.Tensor) *tensor.Tensor {
	k := targets.Dim(1)
	uniform := s.Alpha / float64(k)
	out := targets.Scale(1 - s.Alpha)
	out.ApplyIn(func(v float64) float64 { return v + uniform })
	return out
}

// Forward smooths the targets and defers to cross entropy.
func (s SmoothedCE) Forward(logits, targets *tensor.Tensor) (float64, *tensor.Tensor) {
	checkPair(logits, targets, "SmoothedCE")
	return CrossEntropy{}.Forward(logits, s.Smooth(targets))
}

// LabelRelaxation implements the representative Label Smoothing technique of
// the paper (Lienen & Hüllermeier, AAAI'21). Instead of a fixed smoothed
// target, the target is the projection of the model's own prediction onto
// the credal set of distributions that give the labelled class at least
// probability 1-α:
//
//   - if p_y ≥ 1-α the prediction is consistent with the relaxed label and
//     the loss (and gradient) is zero;
//   - otherwise the loss is the KL divergence from the projected target
//     ŷ (ŷ_y = 1-α, ŷ_j ∝ α·p_j for j ≠ y) to p, whose logits gradient is
//     (p - ŷ)/N with ŷ treated as constant.
//
// This reduces the distance between correct and incorrect encodings exactly
// as §III-B1 describes.
type LabelRelaxation struct {
	Alpha float64
}

var _ Loss = LabelRelaxation{}

// Name implements Loss.
func (l LabelRelaxation) Name() string { return fmt.Sprintf("label-relaxation(α=%g)", l.Alpha) }

// Forward computes the relaxed loss. Targets must be one-hot rows.
func (l LabelRelaxation) Forward(logits, targets *tensor.Tensor) (float64, *tensor.Tensor) {
	n, k := checkPair(logits, targets, "LabelRelaxation")
	probs := Softmax(logits)
	pd, td := probs.Data(), targets.Data()
	grad := tensor.New(n, k)
	gd := grad.Data()
	total := 0.0
	invN := 1 / float64(n)
	const eps = 1e-12
	for r := 0; r < n; r++ {
		// Locate the labelled class (row argmax of the one-hot target).
		y, best := 0, td[r*k]
		for c := 1; c < k; c++ {
			if td[r*k+c] > best {
				y, best = c, td[r*k+c]
			}
		}
		py := pd[r*k+y]
		if py >= 1-l.Alpha {
			continue // credal constraint satisfied: zero loss, zero gradient
		}
		// Project p onto the credal set boundary.
		rest := 1 - py // probability mass on non-target classes
		for c := 0; c < k; c++ {
			i := r*k + c
			var yhat float64
			if c == y {
				yhat = 1 - l.Alpha
			} else {
				yhat = l.Alpha * pd[i] / math.Max(rest, eps)
			}
			if yhat > 0 {
				total += yhat * math.Log(math.Max(yhat, eps)/math.Max(pd[i], eps))
			}
			gd[i] = (pd[i] - yhat) * invN
		}
	}
	return total * invN, grad
}

// NCE is Normalized Cross Entropy (Ma et al., ICML'20): CE divided by the
// sum of CEs against every class, which is provably robust to symmetric
// label noise. Used as the "active" part of the Active-Passive loss.
type NCE struct{}

var _ Loss = NCE{}

// Name implements Loss.
func (NCE) Name() string { return "nce" }

// Forward computes mean NCE and its exact logits gradient.
func (NCE) Forward(logits, targets *tensor.Tensor) (float64, *tensor.Tensor) {
	n, k := checkPair(logits, targets, "NCE")
	probs := Softmax(logits)
	lse := LogSumExp(logits)
	ld, td, pd := logits.Data(), targets.Data(), probs.Data()
	grad := tensor.New(n, k)
	gd := grad.Data()
	total := 0.0
	invN := 1 / float64(n)
	for r := 0; r < n; r++ {
		// u = -Σ_c y_c log p_c ; v = -Σ_j log p_j
		u, v := 0.0, 0.0
		for c := 0; c < k; c++ {
			i := r*k + c
			logp := ld[i] - lse[r]
			u -= td[i] * logp
			v -= logp
		}
		total += u / v
		// dL/dz_i = (p_i - y_i)/v - u·(K·p_i - 1)/v².
		for c := 0; c < k; c++ {
			i := r*k + c
			gd[i] = ((pd[i]-td[i])/v - u*(float64(k)*pd[i]-1)/(v*v)) * invN
		}
	}
	return total * invN, grad
}

// RCE is Reverse Cross Entropy: -Σ p_c · log y_c with log 0 clipped to
// ClipA (a negative constant, -4 in Ma et al.). Robust to label noise; used
// as the "passive" part of the Active-Passive loss.
type RCE struct {
	ClipA float64 // clip value for log 0; must be negative
}

var _ Loss = RCE{}

// Name implements Loss.
func (r RCE) Name() string { return fmt.Sprintf("rce(A=%g)", r.clip()) }

func (r RCE) clip() float64 {
	if r.ClipA >= 0 {
		return -4
	}
	return r.ClipA
}

// Forward computes mean RCE and its logits gradient.
func (r RCE) Forward(logits, targets *tensor.Tensor) (float64, *tensor.Tensor) {
	n, k := checkPair(logits, targets, "RCE")
	a := r.clip()
	probs := Softmax(logits)
	td, pd := targets.Data(), probs.Data()
	grad := tensor.New(n, k)
	gd := grad.Data()
	total := 0.0
	invN := 1 / float64(n)
	const eps = 1e-7
	for row := 0; row < n; row++ {
		// logy_c = log y_c, clipped to A where y_c ≈ 0.
		// L = -Σ_c p_c logy_c ; dL/dz_i = -p_i (logy_i - Σ_c p_c logy_c).
		dot := 0.0
		for c := 0; c < k; c++ {
			i := row*k + c
			ly := a
			if td[i] > eps {
				ly = math.Log(td[i])
			}
			dot += pd[i] * ly
		}
		total += -dot
		for c := 0; c < k; c++ {
			i := row*k + c
			ly := a
			if td[i] > eps {
				ly = math.Log(td[i])
			}
			gd[i] = -pd[i] * (ly - dot) * invN
		}
	}
	return total * invN, grad
}

// ActivePassive is the Active-Passive Loss of the Robust Loss technique
// (§III-B3): L = α·NCE + β·RCE. The active term fits the target class; the
// passive term counteracts the underfitting the active term induces.
type ActivePassive struct {
	Alpha, Beta float64
	Active      Loss
	Passive     Loss
}

var _ Loss = (*ActivePassive)(nil)

// NewActivePassive returns the paper's NCE+RCE instantiation with the given
// weights.
func NewActivePassive(alpha, beta float64) *ActivePassive {
	return &ActivePassive{Alpha: alpha, Beta: beta, Active: NCE{}, Passive: RCE{}}
}

// Name implements Loss.
func (a *ActivePassive) Name() string {
	return fmt.Sprintf("apl(α=%g·%s + β=%g·%s)", a.Alpha, a.Active.Name(), a.Beta, a.Passive.Name())
}

// Forward computes the weighted sum of the active and passive losses.
func (a *ActivePassive) Forward(logits, targets *tensor.Tensor) (float64, *tensor.Tensor) {
	la, ga := a.Active.Forward(logits, targets)
	lp, gp := a.Passive.Forward(logits, targets)
	grad := ga.Scale(a.Alpha)
	grad.AddScaledIn(a.Beta, gp)
	return a.Alpha*la + a.Beta*lp, grad
}

// Distillation is the knowledge-distillation student loss (§III-B4):
//
//	L = (1-α)·CE(student, hard labels) + α·T²·KL(teacher_T ‖ student_T)
//
// where the subscript T denotes temperature-softened softmax. The teacher's
// softened probabilities for the current batch must be supplied alongside
// the hard targets via ForwardKD; the plain Forward method (required by the
// Loss interface) treats the soft targets as absent and reduces to CE,
// which is the teacher's own training mode.
type Distillation struct {
	Alpha float64 // weight on the distilled term
	T     float64 // temperature (> 1 softens)
}

var _ Loss = Distillation{}

// Name implements Loss.
func (d Distillation) Name() string { return fmt.Sprintf("distillation(α=%g,T=%g)", d.Alpha, d.T) }

// Forward without teacher probabilities reduces to plain cross entropy.
func (d Distillation) Forward(logits, targets *tensor.Tensor) (float64, *tensor.Tensor) {
	return CrossEntropy{}.Forward(logits, targets)
}

// ForwardKD computes the full distillation loss given the teacher's
// temperature-softened probabilities for the batch.
func (d Distillation) ForwardKD(logits, hardTargets, teacherProbsT *tensor.Tensor) (float64, *tensor.Tensor) {
	n, k := checkPair(logits, hardTargets, "Distillation")
	if !teacherProbsT.SameShape(logits) {
		panic(fmt.Sprintf("loss: teacher probs shape %v != logits shape %v",
			teacherProbsT.Shape(), logits.Shape()))
	}
	ceLoss, ceGrad := CrossEntropy{}.Forward(logits, hardTargets)

	studentT := SoftmaxT(logits, d.T)
	sd, tdp := studentT.Data(), teacherProbsT.Data()
	kl := 0.0
	const eps = 1e-12
	for i := range sd {
		if tdp[i] > eps {
			kl += tdp[i] * math.Log(tdp[i]/math.Max(sd[i], eps))
		}
	}
	invN := 1 / float64(n)
	kl *= invN
	// d/dz of T²·KL(teacher_T ‖ student_T) = T·(student_T - teacher_T).
	grad := tensor.New(n, k)
	gd := grad.Data()
	for i := range gd {
		gd[i] = d.Alpha*d.T*(sd[i]-tdp[i])*invN + (1-d.Alpha)*ceGrad.Data()[i]
	}
	return (1-d.Alpha)*ceLoss + d.Alpha*d.T*d.T*kl, grad
}

// MAE is the mean absolute error over probability vectors, another
// noise-robust loss kept for ablation experiments.
type MAE struct{}

var _ Loss = MAE{}

// Name implements Loss.
func (MAE) Name() string { return "mae" }

// Forward computes mean |p - y| and its logits gradient.
func (MAE) Forward(logits, targets *tensor.Tensor) (float64, *tensor.Tensor) {
	n, k := checkPair(logits, targets, "MAE")
	probs := Softmax(logits)
	pd, td := probs.Data(), targets.Data()
	grad := tensor.New(n, k)
	gd := grad.Data()
	total := 0.0
	invN := 1 / float64(n)
	for r := 0; r < n; r++ {
		// s_i = sign(p_i - y_i); dL/dz_j = p_j(s_j - Σ_i s_i p_i).
		dot := 0.0
		for c := 0; c < k; c++ {
			i := r*k + c
			d := pd[i] - td[i]
			total += math.Abs(d)
			dot += sign(d) * pd[i]
		}
		for c := 0; c < k; c++ {
			i := r*k + c
			gd[i] = pd[i] * (sign(pd[i]-td[i]) - dot) * invN
		}
	}
	return total * invN, grad
}

func sign(v float64) float64 {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	default:
		return 0
	}
}
