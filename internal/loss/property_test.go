package loss

import (
	"math"
	"testing"
	"testing/quick"

	"tdfm/internal/tensor"
	"tdfm/internal/xrand"
)

// Property: for any soft target y', CE(z, y') = -Σ y'_c log p_c is at
// least -log(max_c p_c), with the minimum attained by the one-hot target
// at the argmax of p.
func TestQuickCELowerBound(t *testing.T) {
	rng := xrand.New(51)
	f := func(seed uint64) bool {
		r := xrand.New(seed%883 + 1)
		k := 2 + r.IntN(5)
		logits := tensor.New(1, k)
		rng.FillNormal(logits.Data(), 0, 2)
		p := Softmax(logits)
		bound := -math.Log(p.Max())
		// Random soft target distribution.
		other := tensor.New(1, k)
		s := 0.0
		for c := 0; c < k; c++ {
			v := r.Float64() + 1e-3
			other.Set(v, 0, c)
			s += v
		}
		other.ScaleIn(1 / s)
		ceOther, _ := CrossEntropy{}.Forward(logits, other)
		// One-hot at argmax attains the bound.
		oneHot := tensor.New(1, k)
		oneHot.Set(1, 0, p.ArgMaxRows()[0])
		ceBest, _ := CrossEntropy{}.Forward(logits, oneHot)
		return ceOther >= bound-1e-9 && math.Abs(ceBest-bound) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: softmax is shift-invariant — softmax(z + c) == softmax(z).
func TestQuickSoftmaxShiftInvariance(t *testing.T) {
	rng := xrand.New(53)
	f := func(seed uint64) bool {
		r := xrand.New(seed%881 + 1)
		k := 2 + r.IntN(6)
		z := tensor.New(2, k)
		rng.FillNormal(z.Data(), 0, 3)
		c := r.Uniform(-50, 50)
		shifted := z.Apply(func(v float64) float64 { return v + c })
		return Softmax(z).Equal(Softmax(shifted), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: temperature ordering — higher T gives strictly lower max
// probability (softer distribution) for non-uniform logits.
func TestQuickTemperatureSoftens(t *testing.T) {
	rng := xrand.New(55)
	f := func(seed uint64) bool {
		r := xrand.New(seed%877 + 1)
		k := 3 + r.IntN(5)
		z := tensor.New(1, k)
		rng.FillNormal(z.Data(), 0, 2)
		// Force non-uniform logits.
		z.Set(z.Max()+1, 0, 0)
		p1 := SoftmaxT(z, 1)
		p4 := SoftmaxT(z, 4)
		return p4.Max() < p1.Max()+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: every loss's gradient has zero row sums (logit gradients of
// softmax-based losses live on the simplex tangent space).
func TestQuickAllLossGradientsSumToZeroPerRow(t *testing.T) {
	rng := xrand.New(57)
	losses := []Loss{
		CrossEntropy{},
		SmoothedCE{Alpha: 0.15},
		NCE{},
		RCE{},
		NewActivePassive(1, 1),
		MAE{},
		LabelRelaxation{Alpha: 0.2},
	}
	f := func(seed uint64) bool {
		r := xrand.New(seed%863 + 1)
		n, k := 1+r.IntN(3), 2+r.IntN(5)
		logits := tensor.New(n, k)
		rng.FillNormal(logits.Data(), 0, 2)
		labels := make([]int, n)
		for i := range labels {
			labels[i] = r.IntN(k)
		}
		targets := tensor.New(n, k)
		for i, y := range labels {
			targets.Set(1, i, y)
		}
		for _, l := range losses {
			_, g := l.Forward(logits, targets)
			for row := 0; row < n; row++ {
				s := 0.0
				for c := 0; c < k; c++ {
					s += g.At(row, c)
				}
				if math.Abs(s) > 1e-8 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: all losses are non-negative on one-hot targets.
func TestQuickLossesNonNegative(t *testing.T) {
	rng := xrand.New(59)
	losses := []Loss{
		CrossEntropy{}, SmoothedCE{Alpha: 0.1}, NCE{}, RCE{},
		NewActivePassive(1, 1), MAE{}, LabelRelaxation{Alpha: 0.1},
	}
	f := func(seed uint64) bool {
		r := xrand.New(seed%859 + 1)
		n, k := 1+r.IntN(3), 2+r.IntN(5)
		logits := tensor.New(n, k)
		rng.FillNormal(logits.Data(), 0, 3)
		targets := tensor.New(n, k)
		for i := 0; i < n; i++ {
			targets.Set(1, i, r.IntN(k))
		}
		for _, l := range losses {
			v, _ := l.Forward(logits, targets)
			if v < -1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// The distillation loss at α=0 must reduce exactly to CE regardless of the
// teacher.
func TestDistillationAlphaZeroIsCE(t *testing.T) {
	rng := xrand.New(61)
	logits := tensor.New(3, 4)
	rng.FillNormal(logits.Data(), 0, 1)
	targets := tensor.New(3, 4)
	for i := 0; i < 3; i++ {
		targets.Set(1, i, i)
	}
	teacher := Softmax(tensor.Full(0.5, 3, 4))
	// Alpha <= 0 falls back to defaults inside the technique, so test the
	// loss directly with an explicit tiny alpha.
	d := Distillation{Alpha: 1e-12, T: 3}
	l1, g1 := d.ForwardKD(logits, targets, teacher)
	l2, g2 := CrossEntropy{}.Forward(logits, targets)
	if math.Abs(l1-l2) > 1e-9 || !g1.Equal(g2, 1e-9) {
		t.Fatal("α→0 distillation should converge to CE")
	}
}

// KL divergence inside the distillation loss must be zero when the student
// matches the teacher.
func TestDistillationZeroWhenMatched(t *testing.T) {
	rng := xrand.New(63)
	logits := tensor.New(2, 3)
	rng.FillNormal(logits.Data(), 0, 1)
	targets := tensor.New(2, 3)
	targets.Set(1, 0, 0)
	targets.Set(1, 1, 1)
	teacher := SoftmaxT(logits, 4)
	d := Distillation{Alpha: 1, T: 4}
	l, g := d.ForwardKD(logits, targets, teacher)
	if math.Abs(l) > 1e-9 {
		t.Fatalf("matched-teacher loss %v, want 0", l)
	}
	if g.L2Norm() > 1e-9 {
		t.Fatalf("matched-teacher grad norm %v, want 0", g.L2Norm())
	}
}

// NCE must be invariant to logit shifts (inherited from softmax).
func TestQuickNCEShiftInvariant(t *testing.T) {
	rng := xrand.New(65)
	f := func(seed uint64) bool {
		r := xrand.New(seed%857 + 1)
		k := 2 + r.IntN(5)
		z := tensor.New(1, k)
		rng.FillNormal(z.Data(), 0, 2)
		targets := tensor.New(1, k)
		targets.Set(1, 0, r.IntN(k))
		l1, _ := NCE{}.Forward(z, targets)
		shifted := z.Apply(func(v float64) float64 { return v + 13.5 })
		l2, _ := NCE{}.Forward(shifted, targets)
		return math.Abs(l1-l2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
