package loss

import (
	"math"
	"testing"
	"testing/quick"

	"tdfm/internal/tensor"
	"tdfm/internal/xrand"
)

func oneHot(labels []int, k int) *tensor.Tensor {
	t := tensor.New(len(labels), k)
	for i, y := range labels {
		t.Set(1, i, y)
	}
	return t
}

func randLogits(seed uint64, n, k int) *tensor.Tensor {
	t := tensor.New(n, k)
	xrand.New(seed).FillNormal(t.Data(), 0, 2)
	return t
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	z := randLogits(1, 5, 7)
	p := Softmax(z)
	for r := 0; r < 5; r++ {
		s := 0.0
		for c := 0; c < 7; c++ {
			v := p.At(r, c)
			if v < 0 || v > 1 {
				t.Fatalf("probability out of range: %v", v)
			}
			s += v
		}
		if math.Abs(s-1) > 1e-12 {
			t.Fatalf("row %d sums to %v", r, s)
		}
	}
}

func TestSoftmaxStableUnderLargeLogits(t *testing.T) {
	z := tensor.FromSlice([]float64{1000, 1001, 999}, 1, 3)
	p := Softmax(z)
	if p.HasNaN() {
		t.Fatal("softmax overflowed")
	}
	if p.At(0, 1) < p.At(0, 0) {
		t.Fatal("ordering lost")
	}
}

func TestSoftmaxTSoftens(t *testing.T) {
	z := tensor.FromSlice([]float64{3, 0, 0}, 1, 3)
	p1 := Softmax(z)
	p5 := SoftmaxT(z, 5)
	if p5.At(0, 0) >= p1.At(0, 0) {
		t.Fatalf("T=5 should soften: %v vs %v", p5.At(0, 0), p1.At(0, 0))
	}
	s := 0.0
	for c := 0; c < 3; c++ {
		s += p5.At(0, c)
	}
	if math.Abs(s-1) > 1e-12 {
		t.Fatalf("softened row sums to %v", s)
	}
}

// lossGradCheck compares a loss's analytic logits gradient against central
// finite differences.
func lossGradCheck(t *testing.T, l Loss, logits, targets *tensor.Tensor, tol float64) {
	t.Helper()
	_, grad := l.Forward(logits, targets)
	const h = 1e-6
	zd := logits.Data()
	for i := range zd {
		orig := zd[i]
		zd[i] = orig + h
		lp, _ := l.Forward(logits, targets)
		zd[i] = orig - h
		lm, _ := l.Forward(logits, targets)
		zd[i] = orig
		num := (lp - lm) / (2 * h)
		if d := math.Abs(num - grad.Data()[i]); d > tol && d > tol*math.Abs(num) {
			t.Fatalf("%s grad[%d]: analytic %g vs numeric %g", l.Name(), i, grad.Data()[i], num)
		}
	}
}

func TestGradCheckCrossEntropy(t *testing.T) {
	lossGradCheck(t, CrossEntropy{}, randLogits(2, 4, 5), oneHot([]int{0, 2, 4, 1}, 5), 1e-6)
}

func TestGradCheckCrossEntropySoftTargets(t *testing.T) {
	targets := tensor.FromSlice([]float64{
		0.7, 0.2, 0.1,
		0.1, 0.8, 0.1,
	}, 2, 3)
	lossGradCheck(t, CrossEntropy{}, randLogits(3, 2, 3), targets, 1e-6)
}

func TestGradCheckSmoothedCE(t *testing.T) {
	lossGradCheck(t, SmoothedCE{Alpha: 0.1}, randLogits(4, 3, 4), oneHot([]int{1, 3, 0}, 4), 1e-6)
}

func TestGradCheckNCE(t *testing.T) {
	lossGradCheck(t, NCE{}, randLogits(5, 4, 6), oneHot([]int{0, 5, 2, 3}, 6), 1e-5)
}

func TestGradCheckRCE(t *testing.T) {
	lossGradCheck(t, RCE{}, randLogits(6, 4, 5), oneHot([]int{1, 0, 4, 2}, 5), 1e-5)
}

func TestGradCheckActivePassive(t *testing.T) {
	lossGradCheck(t, NewActivePassive(1, 1), randLogits(7, 3, 4), oneHot([]int{2, 0, 3}, 4), 1e-5)
}

func TestGradCheckMAE(t *testing.T) {
	lossGradCheck(t, MAE{}, randLogits(8, 3, 4), oneHot([]int{0, 1, 2}, 4), 1e-5)
}

// Label relaxation has a kink at p_y = 1-α; keep samples away from it by
// using α = 0.25 and random logits (probability of landing on the boundary
// is negligible, and we check it's not active).
func TestGradCheckLabelRelaxation(t *testing.T) {
	lr := LabelRelaxation{Alpha: 0.25}
	logits := randLogits(9, 4, 5)
	targets := oneHot([]int{0, 2, 4, 1}, 5)
	lossGradCheck(t, lr, logits, targets, 1e-5)
}

func TestLabelRelaxationZeroWhenSatisfied(t *testing.T) {
	// Logits strongly favouring the labelled class: p_y > 1-α, loss must be 0.
	logits := tensor.FromSlice([]float64{10, 0, 0}, 1, 3)
	targets := oneHot([]int{0}, 3)
	l, g := LabelRelaxation{Alpha: 0.1}.Forward(logits, targets)
	if l != 0 {
		t.Fatalf("loss = %v, want 0", l)
	}
	if g.L2Norm() != 0 {
		t.Fatalf("grad norm = %v, want 0", g.L2Norm())
	}
}

func TestGradCheckDistillationKD(t *testing.T) {
	d := Distillation{Alpha: 0.6, T: 3}
	logits := randLogits(10, 3, 4)
	targets := oneHot([]int{1, 2, 0}, 4)
	teacher := Softmax(randLogits(11, 3, 4).Scale(1.0 / 3))
	_, grad := d.ForwardKD(logits, targets, teacher)
	const h = 1e-6
	zd := logits.Data()
	for i := range zd {
		orig := zd[i]
		zd[i] = orig + h
		lp, _ := d.ForwardKD(logits, targets, teacher)
		zd[i] = orig - h
		lm, _ := d.ForwardKD(logits, targets, teacher)
		zd[i] = orig
		num := (lp - lm) / (2 * h)
		if diff := math.Abs(num - grad.Data()[i]); diff > 1e-5 && diff > 1e-5*math.Abs(num) {
			t.Fatalf("KD grad[%d]: analytic %g vs numeric %g", i, grad.Data()[i], num)
		}
	}
}

func TestDistillationPlainForwardIsCE(t *testing.T) {
	logits := randLogits(12, 3, 4)
	targets := oneHot([]int{0, 1, 2}, 4)
	l1, g1 := Distillation{Alpha: 0.5, T: 4}.Forward(logits, targets)
	l2, g2 := CrossEntropy{}.Forward(logits, targets)
	if l1 != l2 || !g1.Equal(g2, 0) {
		t.Fatal("Distillation.Forward must equal plain CE")
	}
}

func TestSmoothedCESmoothValues(t *testing.T) {
	// α=0.1, K=3 must transform [0,1,0] into [0.0333…, 0.9333…, 0.0333…]
	// (the paper's worked example in §III-B1).
	targets := oneHot([]int{1}, 3)
	sm := SmoothedCE{Alpha: 0.1}.Smooth(targets)
	want := []float64{0.1 / 3, 0.9 + 0.1/3, 0.1 / 3}
	for c, w := range want {
		if math.Abs(sm.At(0, c)-w) > 1e-12 {
			t.Fatalf("smoothed[%d] = %v, want %v", c, sm.At(0, c), w)
		}
	}
}

// Property: smoothing preserves the row-sum of 1 and the argmax.
func TestQuickSmoothingInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed%991 + 1)
		k := 2 + r.IntN(10)
		y := r.IntN(k)
		targets := oneHot([]int{y}, k)
		alpha := r.Float64() * 0.5
		sm := SmoothedCE{Alpha: alpha}.Smooth(targets)
		s := 0.0
		for c := 0; c < k; c++ {
			s += sm.At(0, c)
		}
		return math.Abs(s-1) < 1e-9 && sm.ArgMaxRows()[0] == y
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: CE loss is non-negative and zero gradient sums per row
// (gradient rows sum to 0 because softmax and targets both sum to 1).
func TestQuickCEGradientRowsSumToZero(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed%997 + 1)
		n, k := 1+r.IntN(4), 2+r.IntN(5)
		logits := tensor.New(n, k)
		r.FillNormal(logits.Data(), 0, 3)
		labels := make([]int, n)
		for i := range labels {
			labels[i] = r.IntN(k)
		}
		l, g := CrossEntropy{}.Forward(logits, oneHot(labels, k))
		if l < 0 {
			return false
		}
		for row := 0; row < n; row++ {
			s := 0.0
			for c := 0; c < k; c++ {
				s += g.At(row, c)
			}
			if math.Abs(s) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// RCE on a one-hot target must equal -A·(1 - p_y): verify the closed form.
func TestRCEClosedForm(t *testing.T) {
	logits := randLogits(13, 4, 5)
	labels := []int{0, 2, 4, 1}
	targets := oneHot(labels, 5)
	got, _ := RCE{}.Forward(logits, targets)
	probs := Softmax(logits)
	want := 0.0
	for i, y := range labels {
		want += 4 * (1 - probs.At(i, y))
	}
	want /= 4
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("RCE = %v, want %v", got, want)
	}
}

// NCE must be bounded in [0, 1] for one-hot targets (property from Ma et
// al.: normalized losses are bounded).
func TestQuickNCEBounded(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed%983 + 1)
		n, k := 1+r.IntN(4), 2+r.IntN(6)
		logits := tensor.New(n, k)
		r.FillNormal(logits.Data(), 0, 4)
		labels := make([]int, n)
		for i := range labels {
			labels[i] = r.IntN(k)
		}
		l, _ := NCE{}.Forward(logits, oneHot(labels, k))
		return l >= 0 && l <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	CrossEntropy{}.Forward(tensor.New(2, 3), tensor.New(2, 4))
}
