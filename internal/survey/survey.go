// Package survey encodes the paper's literature survey (§III-A): the top
// three candidate techniques per TDFM approach, the five selection criteria
// they are screened against, and the selection logic that picks one
// representative per approach. Table I of the paper is reproduced from this
// data.
package survey

import (
	"fmt"
	"sort"
)

// Approach is one of the five TDFM approaches of the study.
type Approach string

// The five TDFM approaches.
const (
	LabelSmoothing        Approach = "Label Smoothing"
	LabelCorrection       Approach = "Label Correction"
	RobustLoss            Approach = "Robust Loss"
	KnowledgeDistillation Approach = "Knowledge Distillation"
	Ensemble              Approach = "Ensemble"
)

// Approaches returns the five approaches in the paper's table order.
func Approaches() []Approach {
	return []Approach{LabelSmoothing, LabelCorrection, RobustLoss, KnowledgeDistillation, Ensemble}
}

// Criteria are the five selection criteria of §III-A. A technique must meet
// all of them to be selected as an approach's representative:
//
//  1. code is available and easily modifiable;
//  2. evaluated on more than one architecture type and dataset;
//  3. capable of tolerating artificial noise;
//  4. does not rely on pre-trained weights;
//  5. standalone (not a combination of other techniques).
type Criteria struct {
	CodeAvailable   bool
	ArchAgnostic    bool
	ArtificialNoise bool
	NotPreTrained   bool
	Standalone      bool
}

// MeetsAll reports whether every criterion is satisfied.
func (c Criteria) MeetsAll() bool {
	return c.CodeAvailable && c.ArchAgnostic && c.ArtificialNoise && c.NotPreTrained && c.Standalone
}

// Candidate is one surveyed technique.
type Candidate struct {
	Approach  Approach
	Technique string
	Reference string // citation tag from the paper
	Criteria  Criteria
	// Reimplemented marks approaches for which no candidate met every
	// criterion and the authors re-implemented a representative from the
	// articles' descriptions (§III-A: KD and Ensemble).
	Reimplemented bool
}

// Candidates returns the 15 surveyed techniques of Table I, three per
// approach, in table order.
func Candidates() []Candidate {
	return []Candidate{
		{Approach: LabelSmoothing, Technique: "Label Relaxation", Reference: "[16]",
			Criteria: Criteria{true, true, true, true, true}},
		{Approach: LabelSmoothing, Technique: "Lukasik et al.", Reference: "[27]",
			Criteria: Criteria{false, false, true, true, false}},
		{Approach: LabelSmoothing, Technique: "OLS", Reference: "[28]",
			Criteria: Criteria{false, true, true, true, true}},

		{Approach: LabelCorrection, Technique: "Meta Label Correction", Reference: "[17]",
			Criteria: Criteria{true, true, true, true, true}},
		{Approach: LabelCorrection, Technique: "ProSelfLC", Reference: "[29]",
			Criteria: Criteria{false, false, true, true, true}},
		{Approach: LabelCorrection, Technique: "SMP", Reference: "[30]",
			Criteria: Criteria{true, false, false, false, true}},

		{Approach: RobustLoss, Technique: "Active-Passive Losses", Reference: "[18]",
			Criteria: Criteria{true, true, true, true, true}},
		{Approach: RobustLoss, Technique: "Charoenphakdee et al.", Reference: "[31]",
			Criteria: Criteria{true, false, true, true, true}},
		{Approach: RobustLoss, Technique: "Zhang et al.", Reference: "[32]",
			Criteria: Criteria{true, false, true, true, true}},

		{Approach: KnowledgeDistillation, Technique: "CMD-P", Reference: "[33]",
			Criteria: Criteria{false, true, true, false, true}},
		{Approach: KnowledgeDistillation, Technique: "KD-Lib", Reference: "[34]",
			Criteria: Criteria{true, true, false, true, false}},
		{Approach: KnowledgeDistillation, Technique: "Self Distillation", Reference: "[19]",
			Criteria: Criteria{true, true, false, true, true}, Reimplemented: true},

		{Approach: Ensemble, Technique: "LTEC", Reference: "[35]",
			Criteria: Criteria{true, false, true, true, true}},
		{Approach: Ensemble, Technique: "SELF", Reference: "[36]",
			Criteria: Criteria{false, false, true, true, false}},
		{Approach: Ensemble, Technique: "Super-Learner", Reference: "[20]",
			Criteria: Criteria{false, true, false, true, true}, Reimplemented: true},
	}
}

// Selection maps each approach to its chosen representative.
type Selection struct {
	Approach       Approach
	Representative Candidate
	// ByCriteria is true when the representative met all five criteria;
	// false when it was re-implemented from descriptions because no
	// candidate qualified.
	ByCriteria bool
}

// Select applies the paper's selection process: per approach, pick the
// candidate meeting all criteria; if none qualifies, pick the candidate the
// authors re-implemented.
func Select(candidates []Candidate) ([]Selection, error) {
	byApproach := make(map[Approach][]Candidate)
	for _, c := range candidates {
		byApproach[c.Approach] = append(byApproach[c.Approach], c)
	}
	var out []Selection
	for _, a := range Approaches() {
		group := byApproach[a]
		if len(group) == 0 {
			return nil, fmt.Errorf("survey: no candidates for approach %q", a)
		}
		var qualified []Candidate
		for _, c := range group {
			if c.Criteria.MeetsAll() {
				qualified = append(qualified, c)
			}
		}
		switch {
		case len(qualified) == 1:
			out = append(out, Selection{Approach: a, Representative: qualified[0], ByCriteria: true})
		case len(qualified) > 1:
			// Deterministic tie-break (does not occur in the paper's data).
			sort.Slice(qualified, func(i, j int) bool { return qualified[i].Technique < qualified[j].Technique })
			out = append(out, Selection{Approach: a, Representative: qualified[0], ByCriteria: true})
		default:
			var reimpl []Candidate
			for _, c := range group {
				if c.Reimplemented {
					reimpl = append(reimpl, c)
				}
			}
			if len(reimpl) == 0 {
				return nil, fmt.Errorf("survey: approach %q has no qualified or re-implemented candidate", a)
			}
			out = append(out, Selection{Approach: a, Representative: reimpl[0], ByCriteria: false})
		}
	}
	return out, nil
}

// StudySelection returns the paper's final representative per approach.
func StudySelection() ([]Selection, error) { return Select(Candidates()) }
