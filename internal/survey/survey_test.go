package survey

import "testing"

func TestCandidatesShape(t *testing.T) {
	cs := Candidates()
	if len(cs) != 15 {
		t.Fatalf("Table I has %d rows, want 15", len(cs))
	}
	perApproach := map[Approach]int{}
	for _, c := range cs {
		perApproach[c.Approach]++
		if c.Technique == "" || c.Reference == "" {
			t.Fatalf("incomplete candidate %+v", c)
		}
	}
	for _, a := range Approaches() {
		if perApproach[a] != 3 {
			t.Fatalf("approach %s has %d candidates, want 3", a, perApproach[a])
		}
	}
}

func TestMeetsAll(t *testing.T) {
	all := Criteria{true, true, true, true, true}
	if !all.MeetsAll() {
		t.Fatal("all-true must qualify")
	}
	for i := 0; i < 5; i++ {
		c := all
		switch i {
		case 0:
			c.CodeAvailable = false
		case 1:
			c.ArchAgnostic = false
		case 2:
			c.ArtificialNoise = false
		case 3:
			c.NotPreTrained = false
		case 4:
			c.Standalone = false
		}
		if c.MeetsAll() {
			t.Fatalf("criterion %d ignored", i)
		}
	}
}

// The selection must reproduce the paper's representatives: the asterisked
// rows of Table I for LS/LC/RL and the re-implemented techniques for KD and
// Ensemble.
func TestStudySelectionMatchesPaper(t *testing.T) {
	sel, err := StudySelection()
	if err != nil {
		t.Fatal(err)
	}
	want := map[Approach]struct {
		tech       string
		byCriteria bool
	}{
		LabelSmoothing:        {"Label Relaxation", true},
		LabelCorrection:       {"Meta Label Correction", true},
		RobustLoss:            {"Active-Passive Losses", true},
		KnowledgeDistillation: {"Self Distillation", false},
		Ensemble:              {"Super-Learner", false},
	}
	if len(sel) != 5 {
		t.Fatalf("selected %d representatives", len(sel))
	}
	for _, s := range sel {
		w := want[s.Approach]
		if s.Representative.Technique != w.tech {
			t.Errorf("%s: selected %q, want %q", s.Approach, s.Representative.Technique, w.tech)
		}
		if s.ByCriteria != w.byCriteria {
			t.Errorf("%s: byCriteria = %v, want %v", s.Approach, s.ByCriteria, w.byCriteria)
		}
	}
}

func TestSelectErrorsOnEmptyApproach(t *testing.T) {
	if _, err := Select(nil); err == nil {
		t.Fatal("empty candidate list accepted")
	}
}

func TestSelectErrorsWithoutFallback(t *testing.T) {
	cs := []Candidate{{
		Approach: LabelSmoothing, Technique: "X", Reference: "[0]",
		Criteria: Criteria{}, // fails criteria, not reimplemented
	}}
	// Other approaches missing entirely → error either way.
	if _, err := Select(cs); err == nil {
		t.Fatal("expected error")
	}
}

func TestSelectDeterministicTieBreak(t *testing.T) {
	all := Criteria{true, true, true, true, true}
	cs := []Candidate{
		{Approach: LabelSmoothing, Technique: "Zeta", Reference: "[1]", Criteria: all},
		{Approach: LabelSmoothing, Technique: "Alpha", Reference: "[2]", Criteria: all},
	}
	for _, a := range Approaches()[1:] {
		cs = append(cs, Candidate{Approach: a, Technique: "T", Reference: "[3]", Criteria: all})
	}
	sel, err := Select(cs)
	if err != nil {
		t.Fatal(err)
	}
	if sel[0].Representative.Technique != "Alpha" {
		t.Fatalf("tie-break picked %q", sel[0].Representative.Technique)
	}
}

// TestSelectOrderInsensitive pins that Select's output order follows
// Approaches(), not the candidate input order or the grouping map's
// iteration order: reversing the input must produce an identical
// selection sequence. Guarded by the maporder lint pass; this test keeps
// the behaviour pinned if Select is rewritten.
func TestSelectOrderInsensitive(t *testing.T) {
	forward := Candidates()
	reversed := make([]Candidate, len(forward))
	for i, c := range forward {
		reversed[len(forward)-1-i] = c
	}
	a, err := Select(forward)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Select(reversed)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("selection lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Approach != b[i].Approach || a[i].Representative.Technique != b[i].Representative.Technique {
			t.Errorf("selection %d differs: %s/%s vs %s/%s", i,
				a[i].Approach, a[i].Representative.Technique,
				b[i].Approach, b[i].Representative.Technique)
		}
	}
	for i, s := range a {
		if s.Approach != Approaches()[i] {
			t.Errorf("selection %d is %s, want Approaches() order %s", i, s.Approach, Approaches()[i])
		}
	}
}
