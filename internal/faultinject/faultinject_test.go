package faultinject

import (
	"testing"
	"testing/quick"

	"tdfm/internal/data"
	"tdfm/internal/tensor"
	"tdfm/internal/xrand"
)

func makeDS(n, classes int) *data.Dataset {
	x := tensor.New(n, 1, 2, 2)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		labels[i] = i % classes
		for j := 0; j < 4; j++ {
			x.Data()[i*4+j] = float64(i)
		}
	}
	return data.MustNew("toy", x, labels, classes)
}

func TestParseType(t *testing.T) {
	for _, s := range []string{"mislabel", "mislabelling", "mislabeling"} {
		if ty, err := ParseType(s); err != nil || ty != Mislabel {
			t.Fatalf("ParseType(%q) = %v, %v", s, ty, err)
		}
	}
	if ty, _ := ParseType("repetition"); ty != Repeat {
		t.Fatal("repetition alias broken")
	}
	if ty, _ := ParseType("removal"); ty != Remove {
		t.Fatal("removal alias broken")
	}
	if _, err := ParseType("bogus"); err == nil {
		t.Fatal("bogus type accepted")
	}
}

func TestSpecValidate(t *testing.T) {
	if (Spec{Type: Mislabel, Rate: 0.5}).Validate() != nil {
		t.Fatal("valid spec rejected")
	}
	if (Spec{Type: Mislabel, Rate: 1.5}).Validate() == nil {
		t.Fatal("rate > 1 accepted")
	}
	if (Spec{Type: Type(0), Rate: 0.5}).Validate() == nil {
		t.Fatal("zero type accepted")
	}
}

func TestMislabelRateAndCount(t *testing.T) {
	ds := makeDS(100, 5)
	out, rep, err := MislabelRate(ds, 0.3, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Affected) != 30 {
		t.Fatalf("affected %d, want 30", len(rep.Affected))
	}
	changed := 0
	for i := range out.Labels {
		if out.Labels[i] != ds.Labels[i] {
			changed++
		}
	}
	// Every affected index must actually carry a different label.
	if changed != 30 {
		t.Fatalf("%d labels changed, want 30", changed)
	}
	// Inputs untouched.
	if !out.X.Equal(ds.X, 0) {
		t.Fatal("mislabel touched inputs")
	}
}

func TestMislabelNeverKeepsLabel(t *testing.T) {
	ds := makeDS(50, 2)
	out, rep, err := MislabelRate(ds, 1.0, xrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Affected) != 50 {
		t.Fatalf("affected %d", len(rep.Affected))
	}
	for i := range out.Labels {
		if out.Labels[i] == ds.Labels[i] {
			t.Fatalf("index %d kept its label under 100%% mislabel", i)
		}
	}
}

func TestRepeatGrowsDataset(t *testing.T) {
	ds := makeDS(40, 4)
	out, reps, err := New(xrand.New(3)).Inject(ds, Spec{Type: Repeat, Rate: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 50 {
		t.Fatalf("len %d, want 50", out.Len())
	}
	if reps[0].SizeBefore != 40 || reps[0].SizeAfter != 50 {
		t.Fatalf("report sizes %d/%d", reps[0].SizeBefore, reps[0].SizeAfter)
	}
	// Appended rows must be copies of the affected originals.
	for i, idx := range reps[0].Affected {
		appended := out.X.Data()[(40+i)*4]
		orig := ds.X.Data()[idx*4]
		if appended != orig {
			t.Fatalf("appended row %d = %v, want copy of row %d = %v", i, appended, idx, orig)
		}
		if out.Labels[40+i] != ds.Labels[idx] {
			t.Fatal("appended label mismatch")
		}
	}
}

func TestRemoveShrinksDataset(t *testing.T) {
	ds := makeDS(40, 4)
	out, reps, err := New(xrand.New(4)).Inject(ds, Spec{Type: Remove, Rate: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 20 {
		t.Fatalf("len %d, want 20", out.Len())
	}
	removed := map[int]bool{}
	for _, i := range reps[0].Affected {
		removed[i] = true
	}
	// Survivors appear in original order, skipping removed ones.
	want := 0
	for i := 0; i < out.Len(); i++ {
		for removed[want] {
			want++
		}
		if int(out.X.Data()[i*4]) != want {
			t.Fatalf("survivor %d is row %v, want %d", i, out.X.Data()[i*4], want)
		}
		want++
	}
}

func TestInjectDoesNotMutateInput(t *testing.T) {
	ds := makeDS(30, 3)
	orig := ds.Clone()
	_, _, err := New(xrand.New(5)).Inject(ds,
		Spec{Type: Mislabel, Rate: 0.5},
		Spec{Type: Remove, Rate: 0.3},
		Spec{Type: Repeat, Rate: 0.2},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !ds.X.Equal(orig.X, 0) {
		t.Fatal("input X mutated")
	}
	for i := range ds.Labels {
		if ds.Labels[i] != orig.Labels[i] {
			t.Fatal("input labels mutated")
		}
	}
}

func TestProtectedIndicesUntouched(t *testing.T) {
	ds := makeDS(100, 4)
	inj := New(xrand.New(6))
	protected := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	inj.Protect(protected)
	out, reps, err := inj.Inject(ds, Spec{Type: Mislabel, Rate: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range protected {
		if out.Labels[p] != ds.Labels[p] {
			t.Fatalf("protected index %d was mislabelled", p)
		}
	}
	// The other 90 must all be faulted (rate 1.0 clamps to eligible set).
	if len(reps[0].Affected) != 90 {
		t.Fatalf("affected %d, want 90", len(reps[0].Affected))
	}
}

func TestProtectedSurvivesRemoval(t *testing.T) {
	ds := makeDS(50, 5)
	inj := New(xrand.New(7))
	inj.Protect([]int{10, 20, 30})
	out, _, err := inj.Inject(ds,
		Spec{Type: Remove, Rate: 0.5},
		Spec{Type: Mislabel, Rate: 1.0},
	)
	if err != nil {
		t.Fatal(err)
	}
	// Rows 10, 20, 30 (identifiable by pixel value) must survive removal AND
	// keep their original labels through the second step.
	found := 0
	for i := 0; i < out.Len(); i++ {
		v := int(out.X.Data()[i*4])
		if v == 10 || v == 20 || v == 30 {
			found++
			if out.Labels[i] != v%5 {
				t.Fatalf("protected row %d lost its label", v)
			}
		}
	}
	if found != 3 {
		t.Fatalf("found %d protected rows after removal, want 3", found)
	}
}

func TestProtectOutOfRangeRejected(t *testing.T) {
	ds := makeDS(10, 2)
	inj := New(xrand.New(8))
	inj.Protect([]int{99})
	if _, _, err := inj.Inject(ds, Spec{Type: Mislabel, Rate: 0.1}); err == nil {
		t.Fatal("out-of-range protected index accepted")
	}
}

func TestCombinedFaultsSizes(t *testing.T) {
	ds := makeDS(100, 4)
	out, reps, err := New(xrand.New(9)).Inject(ds,
		Spec{Type: Mislabel, Rate: 0.1},
		Spec{Type: Repeat, Rate: 0.1},
	)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 110 {
		t.Fatalf("combined size %d, want 110", out.Len())
	}
	if len(reps) != 2 {
		t.Fatalf("reports %d", len(reps))
	}
}

func TestDeterministicInjection(t *testing.T) {
	ds := makeDS(60, 3)
	a, _, _ := New(xrand.New(11)).Inject(ds, Spec{Type: Mislabel, Rate: 0.4})
	b, _, _ := New(xrand.New(11)).Inject(ds, Spec{Type: Mislabel, Rate: 0.4})
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("same seed produced different injections")
		}
	}
}

func TestInvalidSpecRejected(t *testing.T) {
	ds := makeDS(10, 2)
	if _, _, err := New(xrand.New(12)).Inject(ds, Spec{Type: Mislabel, Rate: -0.1}); err == nil {
		t.Fatal("negative rate accepted")
	}
}

// Property: for any rate, mislabelling changes exactly round(rate·N) labels
// and never alters inputs; repetition/removal change the size by exactly
// that count.
func TestQuickInjectionInvariants(t *testing.T) {
	ds := makeDS(80, 4)
	f := func(seed uint64) bool {
		r := xrand.New(seed%971 + 1)
		rate := r.Float64()
		want := int(rate*80 + 0.5)

		mis, repM, err := MislabelRate(ds, rate, r)
		if err != nil || len(repM.Affected) != want || mis.Len() != 80 {
			return false
		}
		changed := 0
		for i := range mis.Labels {
			if mis.Labels[i] != ds.Labels[i] {
				changed++
			}
		}
		if changed != want {
			return false
		}

		rep, reps, err := New(r).Inject(ds, Spec{Type: Repeat, Rate: rate})
		if err != nil || rep.Len() != 80+want || reps[0].SizeAfter != 80+want {
			return false
		}

		rem, _, err := New(r).Inject(ds, Spec{Type: Remove, Rate: rate})
		return err == nil && rem.Len() == 80-want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMislabelSingleClassRejected(t *testing.T) {
	// data.New refuses single-class datasets, but the struct fields are
	// exported, so one can still reach the injector; construct it directly.
	ds := &data.Dataset{Name: "mono", X: tensor.New(10, 1, 2, 2), Labels: make([]int, 10), NumClasses: 1}
	// No wrong label exists with one class: the injector must refuse
	// rather than panic inside the RNG.
	if _, _, err := New(xrand.New(1)).Inject(ds, Spec{Type: Mislabel, Rate: 0.5}); err == nil {
		t.Fatal("mislabelling a single-class dataset accepted")
	}
	// Size-changing faults remain valid on a single class.
	for _, ty := range []Type{Repeat, Remove} {
		if _, _, err := New(xrand.New(1)).Inject(ds, Spec{Type: ty, Rate: 0.5}); err != nil {
			t.Fatalf("%s on single-class dataset: %v", ty, err)
		}
	}
}

// rowSignature identifies a row by its first pixel; makeDS gives every row
// a unique constant pixel value, so the signature tracks rows across
// repetition and removal reindexing.
func rowSignature(ds *data.Dataset, i int) float64 {
	return ds.X.At(i, 0, 0, 0)
}

// Property: every ordered combination of fault specs preserves the dataset
// invariants — tensor/label shapes agree, labels stay in range, the input
// is never mutated, report sizes chain correctly, and protected rows
// survive every step with their original labels.
func TestQuickCombinedSpecInvariants(t *testing.T) {
	const n, classes = 40, 4
	types := []Type{Mislabel, Repeat, Remove}
	var combos [][]Type
	for _, a := range types {
		combos = append(combos, []Type{a})
		for _, b := range types {
			combos = append(combos, []Type{a, b})
			for _, c := range types {
				combos = append(combos, []Type{a, b, c})
			}
		}
	}
	protected := []int{0, 7, 19}

	f := func(seed uint64, comboIdx uint, rateSeed uint64) bool {
		ds := makeDS(n, classes)
		orig := ds.Clone()
		combo := combos[comboIdx%uint(len(combos))]
		rr := xrand.New(rateSeed%997 + 1)
		specs := make([]Spec, len(combo))
		for i, ty := range combo {
			specs[i] = Spec{Type: ty, Rate: rr.Float64() * 0.5}
		}
		inj := New(xrand.New(seed%971 + 1))
		inj.Protect(protected)
		out, reports, err := inj.Inject(ds, specs...)
		if err != nil {
			return false
		}
		// Shape agreement: tensor rows, length, and labels all line up.
		if out.X.Shape()[0] != out.Len() || len(out.Labels) != out.Len() {
			return false
		}
		// Labels stay in range for every surviving row.
		for _, l := range out.Labels {
			if l < 0 || l >= out.NumClasses {
				return false
			}
		}
		// Report sizes chain: each step starts where the previous ended.
		size := n
		for _, rep := range reports {
			if rep.SizeBefore != size {
				return false
			}
			size = rep.SizeAfter
		}
		if size != out.Len() {
			return false
		}
		// The input dataset is never mutated.
		if !ds.X.Equal(orig.X, 0) {
			return false
		}
		for i := range ds.Labels {
			if ds.Labels[i] != orig.Labels[i] {
				return false
			}
		}
		// Protected rows survive every combination with their original
		// labels (removal may not delete them, mislabelling may not touch
		// them). Rows are tracked by their unique pixel signature.
		for _, p := range protected {
			found := false
			for i := 0; i < out.Len(); i++ {
				if rowSignature(out, i) == rowSignature(ds, p) {
					if out.Labels[i] != ds.Labels[p] {
						return false
					}
					found = true
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestTypeString(t *testing.T) {
	if Mislabel.String() != "mislabel" || Repeat.String() != "repeat" || Remove.String() != "remove" {
		t.Fatal("String names wrong")
	}
	if Type(99).String() == "" {
		t.Fatal("unknown type should still render")
	}
}
