// Package faultinject reimplements the semantics of the TF-DM training-data
// fault injector used by the paper (Narayanan & Pattabiraman, DeepTest'21).
// It injects three fault types into a labelled dataset, uniformly at
// random, at a configurable rate:
//
//   - Mislabel: a fraction of examples get a wrong label (uniform over the
//     other classes);
//   - Repeat: a fraction of examples is duplicated and appended;
//   - Remove: a fraction of examples is deleted.
//
// Fault types compose (§IV-C of the paper studies combinations); Inject
// applies a sequence in order. Injection never mutates its input dataset,
// and a set of protected indices can be excluded — the label-correction
// technique reserves a clean subset this way (§III-B2).
package faultinject

import (
	"fmt"
	"sort"

	"tdfm/internal/data"
	"tdfm/internal/xrand"
)

// Type enumerates the training-data fault types of the study.
type Type int

// Fault types. Values start at 1 so the zero value is invalid.
const (
	Mislabel Type = iota + 1
	Repeat
	Remove
)

// String returns the fault-type name used in reports and CLI flags.
func (t Type) String() string {
	switch t {
	case Mislabel:
		return "mislabel"
	case Repeat:
		return "repeat"
	case Remove:
		return "remove"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// ParseType converts a CLI name to a Type.
func ParseType(s string) (Type, error) {
	switch s {
	case "mislabel", "mislabelling", "mislabeling":
		return Mislabel, nil
	case "repeat", "repetition":
		return Repeat, nil
	case "remove", "removal":
		return Remove, nil
	default:
		return 0, fmt.Errorf("faultinject: unknown fault type %q", s)
	}
}

// Spec is one fault-injection step.
type Spec struct {
	Type Type
	Rate float64 // fraction of the dataset affected, in [0, 1]
}

// Validate checks the spec.
func (s Spec) Validate() error {
	switch s.Type {
	case Mislabel, Repeat, Remove:
	default:
		return fmt.Errorf("faultinject: invalid fault type %d", int(s.Type))
	}
	if s.Rate < 0 || s.Rate > 1 {
		return fmt.Errorf("faultinject: rate %v out of [0,1]", s.Rate)
	}
	return nil
}

// Report records what one injection step did.
type Report struct {
	Spec     Spec
	Affected []int // indices (into the step's input dataset) that were faulted
	// SizeBefore and SizeAfter track dataset growth/shrinkage for
	// repetition and removal faults.
	SizeBefore int
	SizeAfter  int
}

// Injector applies fault specs to datasets with deterministic randomness.
type Injector struct {
	rng *xrand.RNG
	// protected indices (in the ORIGINAL dataset's indexing) never faulted.
	protected map[int]bool
}

// New returns an injector drawing randomness from rng.
func New(rng *xrand.RNG) *Injector {
	return &Injector{rng: rng, protected: map[int]bool{}}
}

// Protect marks indices of the input dataset as exempt from injection.
// Protection is tracked across steps of a single Inject call as indices
// shift under removal/repetition.
func (in *Injector) Protect(indices []int) {
	for _, i := range indices {
		in.protected[i] = true
	}
}

// eligible returns the non-protected indices of a dataset of length n given
// the current protected-set mapping.
func (in *Injector) eligible(protected map[int]bool, n int) []int {
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if !protected[i] {
			out = append(out, i)
		}
	}
	return out
}

// Inject applies the specs in order to a copy of ds and returns the faulted
// dataset plus one report per step. The input dataset is never modified.
func (in *Injector) Inject(ds *data.Dataset, specs ...Spec) (*data.Dataset, []Report, error) {
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			return nil, nil, err
		}
	}
	cur := ds.Clone()
	// Copy the protected set; steps remap it as indices shift.
	protected := make(map[int]bool, len(in.protected))
	for i := range in.protected {
		if i < 0 || i >= ds.Len() {
			return nil, nil, fmt.Errorf("faultinject: protected index %d out of range [0,%d)", i, ds.Len())
		}
		protected[i] = true
	}
	reports := make([]Report, 0, len(specs))
	for _, spec := range specs {
		var rep Report
		var err error
		cur, protected, rep, err = in.step(cur, protected, spec)
		if err != nil {
			return nil, nil, err
		}
		reports = append(reports, rep)
	}
	return cur, reports, nil
}

func (in *Injector) step(ds *data.Dataset, protected map[int]bool, spec Spec) (*data.Dataset, map[int]bool, Report, error) {
	rep := Report{Spec: spec, SizeBefore: ds.Len()}
	elig := in.eligible(protected, ds.Len())
	count := int(spec.Rate*float64(ds.Len()) + 0.5)
	if count > len(elig) {
		count = len(elig)
	}
	chosen := in.rng.Choice(len(elig), count)
	affected := make([]int, count)
	for i, c := range chosen {
		affected[i] = elig[c]
	}
	sort.Ints(affected)
	rep.Affected = affected

	switch spec.Type {
	case Mislabel:
		if ds.NumClasses < 2 {
			return nil, nil, rep, fmt.Errorf("faultinject: cannot mislabel dataset %q with %d class(es); a wrong label needs at least 2",
				ds.Name, ds.NumClasses)
		}
		out := ds.Clone()
		for _, idx := range affected {
			// Uniform over the K-1 wrong classes.
			wrong := in.rng.IntN(ds.NumClasses - 1)
			if wrong >= out.Labels[idx] {
				wrong++
			}
			out.Labels[idx] = wrong
		}
		rep.SizeAfter = out.Len()
		return out, protected, rep, nil

	case Repeat:
		// Duplicate the chosen rows, appending them at the end.
		indices := make([]int, 0, ds.Len()+count)
		for i := 0; i < ds.Len(); i++ {
			indices = append(indices, i)
		}
		indices = append(indices, affected...)
		out := ds.Subset(indices)
		// Appended duplicates of protected rows cannot exist (protected rows
		// are never chosen), so the protected map carries over unchanged.
		rep.SizeAfter = out.Len()
		return out, protected, rep, nil

	case Remove:
		removed := make(map[int]bool, count)
		for _, idx := range affected {
			removed[idx] = true
		}
		keep := make([]int, 0, ds.Len()-count)
		newProtected := make(map[int]bool)
		for i := 0; i < ds.Len(); i++ {
			if removed[i] {
				continue
			}
			if protected[i] {
				newProtected[len(keep)] = true
			}
			keep = append(keep, i)
		}
		out := ds.Subset(keep)
		rep.SizeAfter = out.Len()
		return out, newProtected, rep, nil

	default:
		return nil, nil, rep, fmt.Errorf("faultinject: unreachable fault type %d", int(spec.Type))
	}
}

// MislabelRate is a convenience for the most common single-step injection.
func MislabelRate(ds *data.Dataset, rate float64, rng *xrand.RNG) (*data.Dataset, Report, error) {
	out, reps, err := New(rng).Inject(ds, Spec{Type: Mislabel, Rate: rate})
	if err != nil {
		return nil, Report{}, err
	}
	return out, reps[0], nil
}
