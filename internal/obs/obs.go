// Package obs makes long experiment runs crash-safe and observable.
//
// The package has two halves:
//
//   - A run journal (Journal): an append-only JSONL file plus one
//     atomically written prediction checkpoint per completed experiment
//     cell, stored under an artifacts directory. A killed grid run can be
//     resumed from the journal, recomputing only the cells that had not
//     finished; because every cell derives its randomness from the root
//     seed by cell key (never by schedule), the resumed run's outputs are
//     byte-identical to an uninterrupted run's.
//
//   - Observability sinks (Sink): structured progress events emitted by
//     the experiment runner — cell start/finish, memo cache hit/miss,
//     checkpoint restores, journal problems — and by the serving layer
//     (internal/serve: request admission and shedding, member timeouts
//     and panics, breaker transitions), which feed the CLIs' periodic
//     progress line (Progress, with pool occupancy and an ETA derived
//     from completed-cell timings) or any custom consumer.
//
// Emitting an event must never perturb results: sinks only observe, and
// the runner emits outside of any result-bearing computation.
package obs

import (
	"fmt"
	"time"
)

// Kind classifies an Event.
type Kind int

// Event kinds emitted by the experiment runner.
const (
	// KindGridPlan announces that a batch of cells has been scheduled;
	// Event.N is the number of not-yet-cached cells in the batch.
	KindGridPlan Kind = iota
	// KindCellStart marks the beginning of one cell's training.
	KindCellStart
	// KindCellFinish marks the end of one cell's training; Event.Dur is
	// the training wall-clock and Event.Err any training failure.
	KindCellFinish
	// KindCacheHit marks a Predictions call served from the memo cache.
	KindCacheHit
	// KindCacheMiss marks a Predictions call that must train.
	KindCacheMiss
	// KindCellRestored marks a cell loaded from a journal checkpoint
	// instead of being recomputed; Event.Dur is the original training
	// wall-clock recorded in the journal.
	KindCellRestored
	// KindJournalError reports a non-fatal journal problem (corrupt
	// record, unreadable checkpoint, failed append); the run continues
	// and the affected cell is recomputed.
	KindJournalError
	// KindCellRetry reports a transiently failed cell about to be retrained;
	// Event.N is the attempt number that failed and Event.Err the failure.
	KindCellRetry
	// KindCellPanic reports a cell that ultimately failed with a recovered
	// panic (Event.Err carries the structured failure with its stack).
	KindCellPanic
	// KindCellDiverged reports a cell whose training stayed numerically
	// divergent through the trainer's bounded recovery and the runner's
	// retries.
	KindCellDiverged
	// KindCellCancelled reports a cell stopped by cooperative cancellation
	// (interrupt or per-cell timeout) rather than by its own failure.
	KindCellCancelled
	// KindReqAdmit marks an inference request admitted past the serving
	// layer's bounded queue; Event.Key is the request ID.
	KindReqAdmit
	// KindReqShed marks an inference request rejected at admission because
	// the queue was full (load shedding) — the 429 path.
	KindReqShed
	// KindReqDone marks an inference request finishing; Event.Detail
	// carries the achieved quorum as "k/n" and Event.Err any typed
	// failure (quorum floor, for example).
	KindReqDone
	// KindMemberTimeout reports an ensemble member dropped from a vote
	// because it missed its per-member deadline; Event.Member names it.
	KindMemberTimeout
	// KindMemberPanic reports an ensemble member dropped from a vote
	// because its dispatch panicked; Event.Err carries the recovered
	// panic with its stack.
	KindMemberPanic
	// KindMemberError reports an ensemble member dropped from a vote
	// because its dispatch returned an error.
	KindMemberError
	// KindBreakerChange reports a member circuit breaker transition;
	// Event.Member names the member and Event.Detail the transition
	// ("closed→open", "open→half-open", "half-open→closed", …).
	KindBreakerChange
	// KindBatchFlush reports the micro-batcher flushing one batch of
	// admitted requests through a shared ensemble fan-out; Event.Key is
	// the batch ID, Event.N the request count, and Event.Detail the flush
	// reason plus row total ("window rows=12", "cap rows=32", …).
	KindBatchFlush
	// KindPoolStats reports a snapshot of the tensor buffer-pool reuse
	// counters in Event.Detail ("pool-hit=… pool-miss=… pool-bytes=…"),
	// emitted by the serving layer's Drain — at shutdown and on every
	// model hot-swap, where Event.Key names the retiring model version —
	// so arena leaks across swaps are observable, not just at exit.
	KindPoolStats
	// KindPublish reports a model version published to the registry;
	// Event.Key is the version label ("v3") and Event.Detail the artifact
	// digest.
	KindPublish
	// KindSwap reports an atomic model hot-swap in the serving layer;
	// Event.Key is the incoming version label and Event.Detail the
	// transition ("v2→v3 digest=sha256:…"). The swap is complete — the old
	// version drained — when the event is emitted.
	KindSwap
	// KindMemberRestart reports the member supervisor reacting to a dead
	// or unhealthy member process: Event.Member names the member, Event.N
	// is the consecutive-failure count, Event.Dur the backoff before the
	// next start attempt, Event.Err the exit or health-probe error, and
	// Event.Detail the phase ("exited", "unhealthy", "start-failed",
	// "restarted").
	KindMemberRestart
	// KindLeaseGrant reports the grid coordinator leasing a cell to a
	// worker: Event.Key is the cell key, Event.Member the worker ID,
	// Event.N the issue attempt (1 for the first lease of a cell), and
	// Event.Detail the lease ID.
	KindLeaseGrant
	// KindLeaseExpire reports a cell lease whose deadline passed without
	// a completion or heartbeat — the holding worker crashed, hung, or
	// was partitioned. Event.Key is the cell key and Event.Member the
	// worker that held the lease.
	KindLeaseExpire
	// KindLeaseReissue reports an expired, released, or rejected cell
	// re-entering the lease queue: Event.Key is the cell key, Event.N the
	// issue attempts so far, Event.Dur the reissue backoff that was
	// applied, and Event.Detail the cause ("expired", "released",
	// "rejected", "worker-failed").
	KindLeaseReissue
	// KindCellFlowback reports a worker-produced cell record durably
	// appended to the coordinator's journal: Event.Key is the cell key,
	// Event.Member the completing worker, Event.Dur the worker's training
	// wall-clock, and Event.Detail the verified prediction digest.
	KindCellFlowback
	// KindWorkerJoin reports the first lease request from a worker ID
	// (or the first after the worker was declared lost); Event.Member
	// names the worker.
	KindWorkerJoin
	// KindWorkerLost reports a worker declared lost because a lease it
	// held expired; Event.Member names the worker. A later lease request
	// from the same ID re-joins it.
	KindWorkerLost
)

// String returns a stable lower-case name for the kind.
func (k Kind) String() string {
	switch k {
	case KindGridPlan:
		return "grid-plan"
	case KindCellStart:
		return "cell-start"
	case KindCellFinish:
		return "cell-finish"
	case KindCacheHit:
		return "cache-hit"
	case KindCacheMiss:
		return "cache-miss"
	case KindCellRestored:
		return "cell-restored"
	case KindJournalError:
		return "journal-error"
	case KindCellRetry:
		return "cell-retry"
	case KindCellPanic:
		return "cell-panic"
	case KindCellDiverged:
		return "cell-diverged"
	case KindCellCancelled:
		return "cell-cancelled"
	case KindReqAdmit:
		return "req-admit"
	case KindReqShed:
		return "req-shed"
	case KindReqDone:
		return "req-done"
	case KindMemberTimeout:
		return "member-timeout"
	case KindMemberPanic:
		return "member-panic"
	case KindMemberError:
		return "member-error"
	case KindBreakerChange:
		return "breaker-change"
	case KindBatchFlush:
		return "batch-flush"
	case KindPoolStats:
		return "pool-stats"
	case KindPublish:
		return "publish"
	case KindSwap:
		return "swap"
	case KindMemberRestart:
		return "member-restart"
	case KindLeaseGrant:
		return "lease-grant"
	case KindLeaseExpire:
		return "lease-expire"
	case KindLeaseReissue:
		return "lease-reissue"
	case KindCellFlowback:
		return "cell-flowback"
	case KindWorkerJoin:
		return "worker-join"
	case KindWorkerLost:
		return "worker-lost"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is one structured progress notification from the experiment
// runner or the serving layer. Only the fields relevant to the Kind are
// populated.
type Event struct {
	Kind Kind
	// Key is the cell key for cell-scoped events and the request ID for
	// serving-layer events.
	Key string
	// Dur is the training wall-clock for KindCellFinish and
	// KindCellRestored.
	Dur time.Duration
	// N is the scheduled-cell count for KindGridPlan, the failed attempt
	// number for KindCellRetry, and the batched request count for
	// KindBatchFlush.
	N int
	// Err carries the failure for KindJournalError, failed KindCellFinish,
	// and the cell-failure kinds (retry, panic, diverged, cancelled), plus
	// serving-layer member failures and failed KindReqDone.
	Err error
	// Member names the ensemble member for the serving layer's member and
	// breaker events, and the worker ID for the distributed grid's lease
	// and worker events.
	Member string
	// Detail is a short structured annotation: the achieved quorum "k/n"
	// on KindReqDone, the state transition on KindBreakerChange.
	Detail string
}

// Sink consumes runner and serving-layer events. Implementations must be
// safe for concurrent use: grid cells finish on multiple workers, and
// concurrent inference requests emit interleaved — though per request ID
// internally ordered — event sequences.
type Sink interface {
	Emit(Event)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Event)

// Emit calls f(e).
func (f SinkFunc) Emit(e Event) { f(e) }

// Sinks fans every event out to each member in order.
type Sinks []Sink

// Emit forwards e to every member sink.
func (s Sinks) Emit(e Event) {
	for _, sink := range s {
		sink.Emit(e)
	}
}
