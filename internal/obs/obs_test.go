package obs

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestKindString(t *testing.T) {
	kinds := []Kind{KindGridPlan, KindCellStart, KindCellFinish, KindCacheHit,
		KindCacheMiss, KindCellRestored, KindJournalError,
		KindCellRetry, KindCellPanic, KindCellDiverged, KindCellCancelled,
		KindReqAdmit, KindReqShed, KindReqDone, KindMemberTimeout,
		KindMemberPanic, KindMemberError, KindBreakerChange, KindBatchFlush,
		KindPoolStats, KindPublish, KindSwap, KindMemberRestart}
	seen := make(map[string]bool)
	for _, k := range kinds {
		s := k.String()
		if s == "" || strings.HasPrefix(s, "kind(") || seen[s] {
			t.Errorf("kind %d has bad or duplicate name %q", int(k), s)
		}
		seen[s] = true
	}
	if !strings.HasPrefix(Kind(99).String(), "kind(") {
		t.Error("unknown kind should render as kind(n)")
	}
}

func TestSinksFanOut(t *testing.T) {
	var got []string
	mk := func(tag string) Sink {
		return SinkFunc(func(e Event) { got = append(got, tag+":"+e.Kind.String()) })
	}
	s := Sinks{mk("a"), mk("b")}
	s.Emit(Event{Kind: KindCellStart})
	if len(got) != 2 || got[0] != "a:cell-start" || got[1] != "b:cell-start" {
		t.Fatalf("fan-out got %v", got)
	}
}

func TestProgressLine(t *testing.T) {
	var buf strings.Builder
	var mu sync.Mutex
	w := lockedWriter{mu: &mu, b: &buf}
	p := NewProgress(w, 0, 2)
	p.Emit(Event{Kind: KindGridPlan, N: 3})
	p.Emit(Event{Kind: KindCellRestored, Dur: time.Second})
	p.Emit(Event{Kind: KindCacheHit})
	p.Emit(Event{Kind: KindCellFinish, Dur: 2 * time.Second})
	p.Flush()
	out := buf.String()
	for _, want := range []string{"progress: 2/3 cells", "(1 restored)", "cache hits 1", "pool ", "avg 2s/cell", "ETA "} {
		if !strings.Contains(out, want) {
			t.Errorf("progress output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "FAILED") {
		t.Errorf("no failures occurred, output: %s", out)
	}
}

func TestProgressReportsFailures(t *testing.T) {
	var buf strings.Builder
	var mu sync.Mutex
	p := NewProgress(lockedWriter{mu: &mu, b: &buf}, 0, 1)
	p.Emit(Event{Kind: KindCellFinish, Err: errors.New("boom")})
	p.Emit(Event{Kind: KindJournalError, Err: errors.New("disk full")})
	p.Flush()
	out := buf.String()
	if !strings.Contains(out, "1 FAILED") || !strings.Contains(out, "journal warning: disk full") {
		t.Fatalf("failure reporting missing from:\n%s", out)
	}
}

// lockedWriter serializes writes for the race detector; Progress callers
// may emit from many goroutines.
type lockedWriter struct {
	mu *sync.Mutex
	b  *strings.Builder
}

func (w lockedWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.Write(p)
}

func TestHeartbeat(t *testing.T) {
	var buf strings.Builder
	var mu sync.Mutex
	stop := Heartbeat(lockedWriter{mu: &mu, b: &buf}, "working", 5*time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := buf.Len()
		mu.Unlock()
		if n > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	stop()
	stop() // stopping twice must be safe
	mu.Lock()
	out := buf.String()
	mu.Unlock()
	if !strings.Contains(out, "working … elapsed") {
		t.Fatalf("heartbeat output %q", out)
	}
}
