package obs

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// appendCells writes n records with distinct keys and predictable preds.
func appendCells(t *testing.T, j *Journal, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		rec := Record{Key: fmt.Sprintf("cell%d|scale0|seed1|ep2", i), TrainNS: int64(i+1) * 1e6, Workers: 2, Seed: 1}
		if err := j.Append(rec, []int{i, i + 1, i + 2}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	appendCells(t, j, 3)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := Load(dir, func(line int, err error) { t.Errorf("unexpected warning on line %d: %v", line, err) })
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("loaded %d records, want 3", len(recs))
	}
	for i, rec := range recs {
		if rec.V != RecordVersion {
			t.Errorf("record %d version %d, want %d", i, rec.V, RecordVersion)
		}
		if rec.N != 3 || rec.Wall == "" || !strings.HasPrefix(rec.Digest, "fnv1a:") {
			t.Errorf("record %d not fully stamped: %+v", i, rec)
		}
		pred, err := LoadPred(dir, rec)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		want := []int{i, i + 1, i + 2}
		for k := range want {
			if pred[k] != want[k] {
				t.Fatalf("record %d predictions %v, want %v", i, pred, want)
			}
		}
	}
}

func TestJournalOpenPreservesExisting(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	appendCells(t, j, 2)
	j.Close()
	j2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.Append(Record{Key: "late"}, []int{9}); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	recs, err := Load(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("reopened journal has %d records, want 3 (append must not truncate)", len(recs))
	}
}

func TestJournalCorruptLineSkipped(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	appendCells(t, j, 2)
	j.Close()
	// Simulate a crash mid-append: a truncated, unparseable trailing line.
	path := filepath.Join(dir, "journal.jsonl")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(raw), "\n")
	corrupted := lines[0] + `{"v":1,"key":"torn` + "\n" + lines[1]
	if err := os.WriteFile(path, []byte(corrupted), 0o644); err != nil {
		t.Fatal(err)
	}
	warned := 0
	recs, err := Load(dir, func(line int, err error) {
		warned++
		if line != 2 {
			t.Errorf("warning on line %d, want 2", line)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if warned != 1 || len(recs) != 2 {
		t.Fatalf("got %d records with %d warnings, want 2 records and 1 warning", len(recs), warned)
	}
}

func TestJournalNewerVersionSkipped(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	line := fmt.Sprintf(`{"v":%d,"key":"future"}`+"\n", RecordVersion+1)
	if err := os.WriteFile(filepath.Join(dir, "journal.jsonl"), []byte(line), 0o644); err != nil {
		t.Fatal(err)
	}
	warned := 0
	recs, err := Load(dir, func(int, error) { warned++ })
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 || warned != 1 {
		t.Fatalf("got %d records with %d warnings, want 0 and 1", len(recs), warned)
	}
}

func TestJournalDuplicateKeyLastWins(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Key: "dup", TrainNS: 1}, []int{1}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Key: "dup", TrainNS: 2}, []int{2}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	recs, err := Load(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].TrainNS != 2 {
		t.Fatalf("got %+v, want one record with TrainNS 2", recs)
	}
}

func TestLoadPredDetectsTampering(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Key: "cell"}, []int{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	recs, err := Load(dir, nil)
	if err != nil || len(recs) != 1 {
		t.Fatalf("load: %v (%d records)", err, len(recs))
	}
	path := CellFile(dir, "cell")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(string(raw), "[1,2,3]", "[1,2,4]", 1)
	if tampered == string(raw) {
		t.Fatal("test could not tamper with the checkpoint payload")
	}
	if err := os.WriteFile(path, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPred(dir, recs[0]); err == nil {
		t.Fatal("tampered checkpoint accepted")
	}
}

func TestLoadMissingJournal(t *testing.T) {
	recs, err := Load(t.TempDir(), nil)
	if err != nil || recs != nil {
		t.Fatalf("missing journal: got %v, %v; want nil, nil", recs, err)
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	j, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if err := j.Append(Record{Key: "x"}, []int{1}); err == nil {
		t.Fatal("append after close succeeded")
	}
}

func TestDigestDistinguishes(t *testing.T) {
	if Digest([]int{1, 2}) == Digest([]int{2, 1}) {
		t.Fatal("digest ignores order")
	}
	if Digest([]int{12}) == Digest([]int{1, 2}) {
		t.Fatal("digest ignores element boundaries")
	}
	if Digest(nil) != Digest([]int{}) {
		t.Fatal("nil and empty predictions should digest equally")
	}
}

// TestAppendVerifiedRejectsCorruptFlowback pins the distributed-grid
// safety property: a foreign (worker-produced) record whose digest,
// length, or key does not match its predictions is refused — nothing is
// journaled, so the coordinator reissues the cell instead of poisoning a
// later resume.
func TestAppendVerifiedRejectsCorruptFlowback(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	pred := []int{3, 1, 4, 1, 5}
	good := Record{Key: "cellA|scale0|seed1|ep2", Digest: Digest(pred), N: len(pred), Seed: 1}

	bad := []struct {
		name string
		rec  Record
		pred []int
	}{
		{"tampered digest", Record{Key: good.Key, Digest: "fnv1a:00000000deadbeef", N: len(pred)}, pred},
		{"length mismatch", Record{Key: good.Key, Digest: good.Digest, N: len(pred) - 1}, pred},
		{"truncated predictions", Record{Key: good.Key, Digest: good.Digest, N: len(pred)}, pred[:3]},
		{"missing key", Record{Digest: good.Digest, N: len(pred)}, pred},
	}
	for _, tc := range bad {
		err := j.AppendVerified(tc.rec, tc.pred)
		if err == nil {
			t.Fatalf("%s: corrupt flowback was journaled", tc.name)
		}
		if !errors.Is(err, ErrFlowback) {
			t.Fatalf("%s: error %v does not wrap ErrFlowback", tc.name, err)
		}
	}
	if recs, err := Load(dir, nil); err != nil || len(recs) != 0 {
		t.Fatalf("journal after rejected flowbacks: %d records, err %v; want empty", len(recs), err)
	}

	// The verified append of a consistent record is byte-for-byte what a
	// local Append would have written (modulo the wall timestamp).
	if err := j.AppendVerified(good, pred); err != nil {
		t.Fatal(err)
	}
	recs, err := Load(dir, func(line int, err error) { t.Errorf("warning on line %d: %v", line, err) })
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Digest != good.Digest || recs[0].N != good.N {
		t.Fatalf("verified append loaded back as %+v", recs)
	}
	got, err := LoadPred(dir, recs[0])
	if err != nil {
		t.Fatal(err)
	}
	for i := range pred {
		if got[i] != pred[i] {
			t.Fatalf("checkpoint round-trip %v, want %v", got, pred)
		}
	}
}
