package obs

import (
	"fmt"
	"io"
	"sync"
	"time"

	"tdfm/internal/parallel"
)

// Progress is a Sink that maintains run counters and prints a throttled
// one-line status to w: cells done vs planned, restores and cache hits,
// shared-pool occupancy (from internal/parallel), the mean wall-clock per
// trained cell, and an ETA for the remaining planned cells. Lines are
// printed at most once per interval, on cell completion; call Flush for a
// final unconditional line when the run ends.
type Progress struct {
	w        io.Writer
	interval time.Duration
	workers  int

	mu       sync.Mutex
	start    time.Time
	last     time.Time
	planned  int
	trained  int
	restored int
	hits     int
	failed   int
	trainSum time.Duration
}

// NewProgress returns a Progress writing to w at most once per interval.
// workers is the runner pool size used for the ETA estimate; values < 1
// are treated as 1. A non-positive interval prints on every completion.
func NewProgress(w io.Writer, interval time.Duration, workers int) *Progress {
	if workers < 1 {
		workers = 1
	}
	return &Progress{w: w, interval: interval, workers: workers, start: time.Now()}
}

// Emit updates the counters and, on cell completion, prints the status
// line if the throttle interval has elapsed.
func (p *Progress) Emit(e Event) {
	p.mu.Lock()
	defer p.mu.Unlock()
	switch e.Kind {
	case KindGridPlan:
		p.planned += e.N
	case KindCellFinish:
		if e.Err != nil {
			p.failed++
		} else {
			p.trained++
			p.trainSum += e.Dur
		}
	case KindCellRestored:
		p.restored++
	case KindCacheHit:
		p.hits++
		return // cache hits are frequent and not worth a line
	case KindJournalError:
		fmt.Fprintf(p.w, "journal warning: %v\n", e.Err)
		return
	default:
		return
	}
	if time.Since(p.last) >= p.interval {
		p.line()
		p.last = time.Now()
	}
}

// Flush prints a final status line regardless of the throttle.
func (p *Progress) Flush() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.line()
}

// line prints the status; callers hold p.mu.
func (p *Progress) line() {
	done := p.trained + p.restored
	fmt.Fprintf(p.w, "progress: %d/%d cells", done, max(p.planned, done))
	if p.restored > 0 {
		fmt.Fprintf(p.w, " (%d restored)", p.restored)
	}
	if p.failed > 0 {
		fmt.Fprintf(p.w, ", %d FAILED", p.failed)
	}
	fmt.Fprintf(p.w, ", cache hits %d, pool %d/%d busy", p.hits, parallel.InUse()+1, parallel.Budget())
	if p.trained > 0 {
		avg := p.trainSum / time.Duration(p.trained)
		fmt.Fprintf(p.w, ", avg %s/cell", avg.Round(time.Millisecond))
		if remaining := p.planned - done; remaining > 0 {
			eta := avg * time.Duration(remaining) / time.Duration(min(p.workers, remaining))
			fmt.Fprintf(p.w, ", ETA %s", eta.Round(time.Second))
		}
	}
	fmt.Fprintf(p.w, ", elapsed %s\n", time.Since(p.start).Round(time.Second))
}

// Heartbeat prints "label … elapsed Ns" to w every interval until the
// returned stop function is called. trainmodel uses it to show liveness
// during a long single training run; it is a no-op observer and never
// affects results.
func Heartbeat(w io.Writer, label string, interval time.Duration) (stop func()) {
	done := make(chan struct{})
	var once sync.Once
	start := time.Now()
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				fmt.Fprintf(w, "%s … elapsed %s\n", label, time.Since(start).Round(time.Second))
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}
