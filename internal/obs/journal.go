package obs

import (
	"bufio"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"tdfm/internal/chaos"
	"tdfm/internal/data"
)

// RecordVersion is the journal record schema version written by this
// package. Load skips records with a newer version (forward compatibility)
// rather than failing the run.
const RecordVersion = 1

const (
	journalFile = "journal.jsonl"
	cellDir     = "cells"
)

// Record is one line of the run journal: the durable metadata of one
// completed experiment cell. The cell's test-set predictions — the inputs
// to every accuracy and Accuracy Delta computation — live in a separate
// checkpoint file (see CellFile) referenced by Key and guarded by Digest.
type Record struct {
	// V is the record schema version (RecordVersion at write time).
	V int `json:"v"`
	// Key is the runner's cell key: dataset, technique, architecture,
	// fault specs, repetition, scale, seed, and epoch override.
	Key string `json:"key"`
	// Digest is the prediction digest (see Digest) used to verify the
	// checkpoint file on resume.
	Digest string `json:"digest"`
	// N is the number of test-set predictions in the checkpoint.
	N int `json:"n"`
	// TrainNS is the cell's training wall-clock in nanoseconds.
	TrainNS int64 `json:"train_ns"`
	// Workers is the runner pool size that trained the cell (diagnostic
	// only: results are worker-count invariant).
	Workers int `json:"workers"`
	// Seed is the root experiment seed.
	Seed uint64 `json:"seed"`
	// WidthMult and CleanFrac pin the runner knobs that affect results
	// but are not part of the cell key; Resume refuses records whose
	// values differ from the resuming runner's.
	WidthMult float64 `json:"width_mult"`
	CleanFrac float64 `json:"clean_frac"`
	// Wall is the completion time in RFC 3339 format (diagnostic only).
	Wall string `json:"wall"`
}

// Digest returns the prediction digest stored in journal records: a
// 64-bit FNV-1a hash over the decimal predictions. It detects checkpoint
// files that were truncated, tampered with, or mismatched against the
// journal, in which case the cell is recomputed.
func Digest(pred []int) string {
	h := fnv.New64a()
	var buf [20]byte
	for _, p := range pred {
		b := strconv.AppendInt(buf[:0], int64(p), 10)
		b = append(b, ',')
		_, _ = h.Write(b)
	}
	return fmt.Sprintf("fnv1a:%016x", h.Sum64())
}

// CellFile returns the checkpoint path for a cell key under dir: a SHA-256
// hex name (cell keys contain characters that are unsafe in file names).
func CellFile(dir, key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(dir, cellDir, fmt.Sprintf("%x.json", sum))
}

// cellCheckpoint is the JSON schema of one prediction checkpoint file.
type cellCheckpoint struct {
	Key  string `json:"key"`
	Pred []int  `json:"pred"`
}

// Journal is a crash-safe record of completed experiment cells under an
// artifacts directory:
//
//	<dir>/journal.jsonl   append-only, one JSON record per completed cell
//	<dir>/cells/<sha>.json  per-cell prediction checkpoints
//
// Appends write the checkpoint first (atomic rename-on-write via
// internal/data), then the journal line in a single synced write, so a
// crash at any instant leaves either a fully recorded cell or no record —
// never a record pointing at a partial checkpoint. Append is safe for
// concurrent use by pool workers.
type Journal struct {
	dir string

	mu sync.Mutex
	f  *os.File
}

// Open creates (if needed) the artifacts layout under dir and opens the
// journal for appending. An existing journal is preserved: Open never
// truncates, so re-running with the same directory accumulates records and
// Load sees both the old and new cells.
func Open(dir string) (*Journal, error) {
	if err := os.MkdirAll(filepath.Join(dir, cellDir), 0o755); err != nil {
		return nil, fmt.Errorf("obs: creating artifacts dir: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(dir, journalFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("obs: opening journal: %w", err)
	}
	return &Journal{dir: dir, f: f}, nil
}

// Dir returns the artifacts directory the journal writes under.
func (j *Journal) Dir() string { return j.dir }

// ErrFlowback marks a foreign record rejected by AppendVerified: the
// record's key, digest, or length does not match the predictions it
// arrived with, so journaling it would poison a later resume. Callers
// (the grid coordinator) match it with errors.Is and reissue the cell
// instead of recording it.
var ErrFlowback = errors.New("obs: flowback record does not match its predictions")

// Append durably records one completed cell: it checkpoints pred
// atomically, then appends rec (stamped with RecordVersion, pred's digest
// and length, and the completion time) as one synced JSONL line.
func (j *Journal) Append(rec Record, pred []int) error {
	rec.Digest = Digest(pred)
	rec.N = len(pred)
	return j.append(rec, pred)
}

// AppendVerified durably records a cell produced elsewhere — a worker's
// flowback in the distributed grid. Unlike Append, which stamps the
// digest itself, AppendVerified re-verifies the foreign record against
// the predictions it arrived with (key present, length and digest match)
// and refuses to journal on any mismatch, returning an error wrapping
// ErrFlowback. A verified append is byte-for-byte what a local Append of
// the same predictions would have written, so a distributed run's journal
// resumes, renders, and digests exactly like a local one.
func (j *Journal) AppendVerified(rec Record, pred []int) error {
	if rec.Key == "" {
		return fmt.Errorf("obs: %w: record has no cell key", ErrFlowback)
	}
	if rec.N != len(pred) {
		return fmt.Errorf("obs: %s: %w: record says %d predictions, got %d",
			rec.Key, ErrFlowback, rec.N, len(pred))
	}
	if got := Digest(pred); got != rec.Digest {
		return fmt.Errorf("obs: %s: %w: prediction digest %s does not match record %s",
			rec.Key, ErrFlowback, got, rec.Digest)
	}
	return j.append(rec, pred)
}

// append is the shared durable-append path: checkpoint first (atomic
// rename), then one synced journal line. rec's digest and length must
// already be consistent with pred.
func (j *Journal) append(rec Record, pred []int) error {
	// Chaos faultpoint: lets tests fail the durable append for chosen cells
	// and assert the run survives (the cell stays unrecorded and a -resume
	// rerun recomputes it).
	if act := chaos.Check("obs.journal.append", rec.Key); act != nil && act.Err != nil {
		return fmt.Errorf("obs: appending record for %s: %w", rec.Key, act.Err)
	}
	rec.V = RecordVersion
	rec.Wall = time.Now().UTC().Format(time.RFC3339)
	err := data.WriteFileAtomic(CellFile(j.dir, rec.Key), func(w io.Writer) error {
		return json.NewEncoder(w).Encode(cellCheckpoint{Key: rec.Key, Pred: pred})
	})
	if err != nil {
		return fmt.Errorf("obs: checkpointing %s: %w", rec.Key, err)
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("obs: encoding record for %s: %w", rec.Key, err)
	}
	line = append(line, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("obs: journal is closed")
	}
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("obs: appending record for %s: %w", rec.Key, err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("obs: syncing journal: %w", err)
	}
	return nil
}

// Close closes the journal file. Further Appends fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// Load reads every valid record from the journal under dir. Lines that do
// not parse, carry a newer schema version, or lack a key — the possible
// remains of a crash mid-append or of manual editing — are skipped after
// calling warn (if non-nil) with the 1-based line number; the run then
// simply recomputes those cells. A missing journal loads as empty. When
// the same key appears more than once the last record wins.
func Load(dir string, warn func(line int, err error)) ([]Record, error) {
	f, err := os.Open(filepath.Join(dir, journalFile))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("obs: opening journal: %w", err)
	}
	defer f.Close()
	var (
		recs  []Record
		index = make(map[string]int)
	)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Bytes()
		if len(text) == 0 {
			continue
		}
		var rec Record
		bad := json.Unmarshal(text, &rec)
		if bad == nil && rec.V > RecordVersion {
			bad = fmt.Errorf("record version %d newer than supported %d", rec.V, RecordVersion)
		}
		if bad == nil && rec.Key == "" {
			bad = fmt.Errorf("record has no cell key")
		}
		if bad != nil {
			if warn != nil {
				warn(line, bad)
			}
			continue
		}
		if i, ok := index[rec.Key]; ok {
			recs[i] = rec
			continue
		}
		index[rec.Key] = len(recs)
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading journal: %w", err)
	}
	return recs, nil
}

// LoadPred reads the prediction checkpoint for rec from the artifacts
// directory and verifies its key, length, and digest against the record.
// Any mismatch returns an error and the caller recomputes the cell.
func LoadPred(dir string, rec Record) ([]int, error) {
	path := CellFile(dir, rec.Key)
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("obs: reading checkpoint for %s: %w", rec.Key, err)
	}
	var cp cellCheckpoint
	if err := json.Unmarshal(raw, &cp); err != nil {
		return nil, fmt.Errorf("obs: decoding checkpoint %s: %w", path, err)
	}
	if cp.Key != rec.Key {
		return nil, fmt.Errorf("obs: checkpoint %s holds cell %q, journal expects %q", path, cp.Key, rec.Key)
	}
	if len(cp.Pred) != rec.N {
		return nil, fmt.Errorf("obs: checkpoint for %s has %d predictions, journal recorded %d", rec.Key, len(cp.Pred), rec.N)
	}
	if got := Digest(cp.Pred); got != rec.Digest {
		return nil, fmt.Errorf("obs: checkpoint for %s digest %s does not match journal %s", rec.Key, got, rec.Digest)
	}
	return cp.Pred, nil
}
