package parallel

import (
	"sync"
	"sync/atomic"
	"testing"
)

// withBudget runs the test body with a fixed budget and restores the
// default afterwards (the budget is process-global).
func withBudget(t *testing.T, n int, body func()) {
	t.Helper()
	SetBudget(n)
	defer SetBudget(0)
	body()
}

func TestBudgetAccounting(t *testing.T) {
	withBudget(t, 4, func() {
		if Budget() != 4 {
			t.Fatalf("budget %d, want 4", Budget())
		}
		g1 := TryAcquire(2)
		if g1 != 2 {
			t.Fatalf("first acquire granted %d, want 2", g1)
		}
		g2 := TryAcquire(5)
		if g2 != 1 {
			t.Fatalf("second acquire granted %d, want the remaining 1", g2)
		}
		if g := TryAcquire(1); g != 0 {
			t.Fatalf("exhausted budget granted %d", g)
		}
		Release(g1)
		Release(g2)
		if g := TryAcquire(3); g != 3 {
			t.Fatalf("after release granted %d, want 3", g)
		}
		Release(3)
	})
}

func TestTryAcquireEdgeCases(t *testing.T) {
	withBudget(t, 1, func() {
		if g := TryAcquire(4); g != 0 {
			t.Fatalf("budget 1 must grant no extra workers, got %d", g)
		}
	})
	if g := TryAcquire(0); g != 0 {
		t.Fatalf("TryAcquire(0) = %d", g)
	}
	if g := TryAcquire(-3); g != 0 {
		t.Fatalf("TryAcquire(-3) = %d", g)
	}
	Release(0) // must be a no-op
}

func TestForCoversRangeExactlyOnce(t *testing.T) {
	withBudget(t, 8, func() {
		for _, n := range []int{0, 1, 2, 3, 7, 8, 97, 1000} {
			hits := make([]int32, n)
			For(n, 8, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("n=%d: index %d visited %d times", n, i, h)
				}
			}
		}
	})
}

func TestForSerialWhenBudgetSpent(t *testing.T) {
	withBudget(t, 4, func() {
		g := TryAcquire(3)
		if g != 3 {
			t.Fatalf("setup acquire got %d", g)
		}
		defer Release(g)
		covered := 0
		For(100, 4, func(lo, hi int) { covered += hi - lo })
		if covered != 100 {
			t.Fatalf("serial fallback covered %d of 100", covered)
		}
	})
}

func TestNestedForNeverExceedsBudget(t *testing.T) {
	const total = 3
	withBudget(t, total, func() {
		var active, peak atomic.Int64
		enter := func() {
			a := active.Add(1)
			for {
				p := peak.Load()
				if a <= p || peak.CompareAndSwap(p, a) {
					break
				}
			}
		}
		var wg sync.WaitGroup
		// Two concurrent top-level fan-outs, each nesting another For.
		for g := 0; g < 2; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				For(64, 4, func(lo, hi int) {
					enter()
					defer active.Add(-1)
					For(hi-lo, 4, func(_, _ int) {})
				})
			}()
		}
		wg.Wait()
		// Two caller goroutines plus at most total-1 extra workers.
		if p := peak.Load(); p > total+1 {
			t.Fatalf("peak concurrency %d exceeds budget headroom", p)
		}
	})
}

func TestRunExecutesAllTasks(t *testing.T) {
	withBudget(t, 4, func() {
		var done [9]atomic.Int32
		tasks := make([]func(), len(done))
		for i := range tasks {
			i := i
			tasks[i] = func() { done[i].Add(1) }
		}
		Run(tasks...)
		for i := range done {
			if done[i].Load() != 1 {
				t.Fatalf("task %d ran %d times", i, done[i].Load())
			}
		}
	})
	Run() // no tasks: must not panic
}

func TestRunSerialOrderWithoutBudget(t *testing.T) {
	withBudget(t, 1, func() {
		var order []int
		Run(
			func() { order = append(order, 0) },
			func() { order = append(order, 1) },
			func() { order = append(order, 2) },
		)
		for i, v := range order {
			if i != v {
				t.Fatalf("serial Run out of order: %v", order)
			}
		}
		if len(order) != 3 {
			t.Fatalf("serial Run executed %d tasks", len(order))
		}
	})
}

// recoverPanicError runs body expecting a panic and returns it as a
// *PanicError (nil if body returned normally).
func recoverPanicError(t *testing.T, body func()) (pe *PanicError) {
	t.Helper()
	defer func() {
		if v := recover(); v != nil {
			var ok bool
			if pe, ok = v.(*PanicError); !ok {
				t.Fatalf("re-panicked value is %T, want *PanicError", v)
			}
		}
	}()
	body()
	return nil
}

func TestRunIsolatesWorkerPanic(t *testing.T) {
	withBudget(t, 4, func() {
		var ran atomic.Int64
		tasks := make([]func(), 6)
		for i := range tasks {
			i := i
			tasks[i] = func() {
				if i == 2 {
					panic("task 2 exploded")
				}
				ran.Add(1)
			}
		}
		pe := recoverPanicError(t, func() { Run(tasks...) })
		if pe == nil {
			t.Fatal("worker panic was swallowed")
		}
		if pe.Value != "task 2 exploded" {
			t.Fatalf("panic value %v", pe.Value)
		}
		if len(pe.Stack) == 0 {
			t.Fatal("panic carries no worker stack")
		}
		// Panic isolation: the sibling tasks all still ran.
		if ran.Load() != 5 {
			t.Fatalf("%d sibling tasks ran, want 5", ran.Load())
		}
		if InUse() != 0 {
			t.Fatalf("budget leaked: %d slots in use after panic", InUse())
		}
	})
}

func TestRunRepanicsLowestIndexDeterministically(t *testing.T) {
	withBudget(t, 4, func() {
		for trial := 0; trial < 20; trial++ {
			pe := recoverPanicError(t, func() {
				Run(
					func() { panic("first") },
					func() {},
					func() { panic("third") },
				)
			})
			if pe == nil || pe.Value != "first" {
				t.Fatalf("trial %d: surfaced %v, want the lowest-indexed panic", trial, pe)
			}
		}
	})
}

func TestRunSerialPathIsolatesPanic(t *testing.T) {
	withBudget(t, 1, func() {
		var ran int
		pe := recoverPanicError(t, func() {
			Run(func() { panic("inline") }, func() { ran++ })
		})
		if pe == nil || pe.Value != "inline" {
			t.Fatalf("serial panic not surfaced: %v", pe)
		}
		if ran != 1 {
			t.Fatal("serial sibling task skipped after panic")
		}
	})
}

func TestForIsolatesShardPanic(t *testing.T) {
	withBudget(t, 4, func() {
		const n = 64
		touched := make([]int32, n)
		pe := recoverPanicError(t, func() {
			For(n, 4, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&touched[i], 1)
				}
				if lo == 0 {
					panic("shard 0")
				}
			})
		})
		if pe == nil || pe.Value != "shard 0" {
			t.Fatalf("shard panic not surfaced: %v", pe)
		}
		for i, c := range touched {
			if c != 1 {
				t.Fatalf("index %d visited %d times; sibling shards must complete", i, c)
			}
		}
		if InUse() != 0 {
			t.Fatalf("budget leaked: %d slots in use after panic", InUse())
		}
	})
}

func TestAsPanicErrorPassthrough(t *testing.T) {
	orig := &PanicError{Value: "x", Stack: []byte("s")}
	if AsPanicError(orig) != orig {
		t.Fatal("AsPanicError rewrapped an existing PanicError")
	}
	wrapped := AsPanicError("raw")
	if wrapped.Value != "raw" || len(wrapped.Stack) == 0 {
		t.Fatalf("AsPanicError(raw) = %+v", wrapped)
	}
}
