// Package parallel owns the process-wide worker budget shared by every
// layer of the system that fans work out to goroutines: tensor kernels
// shard matrix rows, core trains ensemble members concurrently, and the
// experiment runner executes independent grid cells on a worker pool.
//
// The budget counts workers including the goroutine that initiates a
// fan-out, so a budget of N never adds more than N-1 goroutines at once no
// matter how the layers nest. Fan-out sites request extra workers with
// TryAcquire, which never blocks: when the budget is exhausted (for
// example, a matrix product inside an ensemble member inside an experiment
// cell), the site simply runs its work inline on the calling goroutine.
// Because every site always makes progress on its own goroutine, nesting
// cannot deadlock; and because every sharding in this repository is
// result-invariant (each output region is written by exactly one worker,
// with the same per-element accumulation order as the serial loop), the
// number of workers granted never changes a computed value — only
// wall-clock time.
package parallel

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// PanicError is a panic recovered from a pooled worker goroutine, carrying
// the panicking goroutine's stack. For and Run convert worker panics into
// PanicErrors and re-panic them on the calling goroutine once every worker
// has finished, so a panic inside a shard or task unwinds the caller (where
// it can be recovered and classified — the experiment runner turns it into
// a structured cell failure) instead of killing the whole process from an
// anonymous goroutine.
type PanicError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack at recovery time.
	Stack []byte
}

// Error formats the panic value with its originating stack.
func (e *PanicError) Error() string {
	return fmt.Sprintf("panic: %v\n\nworker stack:\n%s", e.Value, e.Stack)
}

// AsPanicError unwraps v (a recovered panic value) to a *PanicError,
// wrapping raw values so callers always get the stack of the original
// panic: a re-panicked PanicError keeps its worker stack, a direct panic
// gets the current goroutine's.
func AsPanicError(v any) *PanicError {
	if pe, ok := v.(*PanicError); ok {
		return pe
	}
	return &PanicError{Value: v, Stack: debug.Stack()}
}

// capture runs fn and records a recovered panic into slot (used by For and
// Run to collect worker panics deterministically by index).
func capture(fn func(), slot **PanicError) {
	defer func() {
		if v := recover(); v != nil {
			*slot = AsPanicError(v)
		}
	}()
	fn()
}

var (
	mu     sync.Mutex
	budget = runtime.GOMAXPROCS(0) // total workers, including callers
	inUse  int                     // extra-worker slots currently granted
)

// SetBudget sets the total worker budget, including calling goroutines.
// n <= 0 resets to runtime.GOMAXPROCS(0); n == 1 disables all fan-out.
// Slots already granted are unaffected (the new budget applies as they are
// released). Tests may raise the budget above GOMAXPROCS to force
// concurrency on small machines.
func SetBudget(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	mu.Lock()
	budget = n
	mu.Unlock()
}

// Budget returns the current total worker budget.
func Budget() int {
	mu.Lock()
	defer mu.Unlock()
	return budget
}

// InUse returns the number of extra-worker slots currently granted (pool
// occupancy). Observability sinks sample it to report how busy the shared
// budget is; 0 means every fan-out site is currently running inline.
func InUse() int {
	mu.Lock()
	defer mu.Unlock()
	return inUse
}

// TryAcquire grants up to k extra-worker slots without blocking and
// returns how many were granted (possibly 0). Every granted slot must be
// returned with Release.
func TryAcquire(k int) int {
	if k <= 0 {
		return 0
	}
	mu.Lock()
	defer mu.Unlock()
	free := budget - 1 - inUse
	if free <= 0 {
		return 0
	}
	if k > free {
		k = free
	}
	inUse += k
	return k
}

// Release returns k previously granted extra-worker slots.
func Release(k int) {
	if k <= 0 {
		return
	}
	mu.Lock()
	inUse -= k
	if inUse < 0 {
		inUse = 0
	}
	mu.Unlock()
}

// For runs fn over [0, n) split into at most maxShards contiguous ranges,
// one range per worker. Extra workers beyond the caller are drawn from the
// budget with TryAcquire, so For degrades to a single inline fn(0, n) call
// when the budget is spent. fn must write only state owned by its [lo, hi)
// range; under that contract the result is identical for any worker count.
//
// A panic in any shard is isolated: every shard still runs to completion
// (their outputs are independent), and For then re-panics the
// lowest-indexed shard's panic on the calling goroutine as a *PanicError
// carrying the worker stack. The choice of re-panicked shard is by index,
// not by timing, so the surfaced failure is schedule-independent.
func For(n, maxShards int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	w := maxShards
	if w > n {
		w = n
	}
	if w < 2 {
		fn(0, n)
		return
	}
	granted := TryAcquire(w - 1)
	if granted == 0 {
		fn(0, n)
		return
	}
	defer Release(granted)
	w = granted + 1
	panics := make([]*PanicError, w)
	var wg sync.WaitGroup
	wg.Add(w - 1)
	for s := 1; s < w; s++ {
		lo, hi, slot := s*n/w, (s+1)*n/w, &panics[s]
		go func() {
			defer wg.Done()
			capture(func() { fn(lo, hi) }, slot)
		}()
	}
	capture(func() { fn(0, n/w) }, &panics[0])
	wg.Wait()
	for _, pe := range panics {
		if pe != nil {
			panic(pe)
		}
	}
}

// Run executes the tasks, running up to Budget() of them concurrently.
// The calling goroutine always participates; with no budget available the
// tasks run serially inline, in order. Tasks must be independent.
//
// A panic in any task is isolated: the remaining tasks still run (they
// share no state), and Run then re-panics the lowest-indexed task's panic
// on the calling goroutine as a *PanicError carrying the worker stack —
// one crashing ensemble member can therefore never take down its siblings
// or the process, and the surfaced failure is schedule-independent.
func Run(tasks ...func()) {
	if len(tasks) == 0 {
		return
	}
	panics := make([]*PanicError, len(tasks))
	rethrow := func() {
		for _, pe := range panics {
			if pe != nil {
				panic(pe)
			}
		}
	}
	granted := TryAcquire(len(tasks) - 1)
	if granted == 0 {
		for i, task := range tasks {
			capture(task, &panics[i])
		}
		rethrow()
		return
	}
	defer Release(granted)
	var next atomic.Int64
	work := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= len(tasks) {
				return
			}
			capture(tasks[i], &panics[i])
		}
	}
	var wg sync.WaitGroup
	wg.Add(granted)
	for s := 0; s < granted; s++ {
		go func() {
			defer wg.Done()
			work()
		}()
	}
	work()
	wg.Wait()
	rethrow()
}
