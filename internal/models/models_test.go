package models

import (
	"testing"

	"tdfm/internal/nn"
	"tdfm/internal/tensor"
	"tdfm/internal/xrand"
)

func cfg(seed uint64) BuildConfig {
	return BuildConfig{
		InChannels: 3, Height: 12, Width: 12, NumClasses: 5,
		WidthMult: 1, RNG: xrand.New(seed),
	}
}

func TestRegistryComplete(t *testing.T) {
	names := Names()
	if len(names) != 7 {
		t.Fatalf("registry has %d models, want 7: %v", len(names), names)
	}
	for _, want := range StudyModels() {
		if _, err := Get(want); err != nil {
			t.Fatalf("missing study model %s: %v", want, err)
		}
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("alexnet"); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestAllSorted(t *testing.T) {
	all := All()
	if len(all) != 7 {
		t.Fatalf("All returned %d", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].Name >= all[i].Name {
			t.Fatal("All not sorted")
		}
	}
}

// Table III fidelity: each architecture must have exactly the layer counts
// the paper reports.
func TestTableIIILayerCounts(t *testing.T) {
	wantConv := map[string]int{
		ConvNet: 3, DeconvNet: 4, VGG11: 8, VGG16: 13,
		ResNet18: 17, ResNet50: 49, MobileNet: 27,
	}
	wantFC := map[string]int{
		ConvNet: 3, DeconvNet: 2, VGG11: 3, VGG16: 3,
		ResNet18: 1, ResNet50: 1, MobileNet: 1,
	}
	for name, wc := range wantConv {
		net, err := Build(name, cfg(1))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := CountConvs(net); got != wc {
			t.Errorf("%s: %d convs, want %d", name, got, wc)
		}
		if got := CountDense(net); got != wantFC[name] {
			t.Errorf("%s: %d dense, want %d", name, got, wantFC[name])
		}
	}
}

func TestForwardShapesAllModels(t *testing.T) {
	x := tensor.New(2, 3, 12, 12)
	xrand.New(5).FillNormal(x.Data(), 0, 1)
	for _, name := range StudyModels() {
		net, err := Build(name, cfg(2))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		y := net.Forward(x, false)
		if y.Dims() != 2 || y.Dim(0) != 2 || y.Dim(1) != 5 {
			t.Errorf("%s: output shape %v, want [2,5]", name, y.Shape())
		}
		if y.HasNaN() {
			t.Errorf("%s: NaN in forward pass", name)
		}
	}
}

func TestForwardBackwardAllModels(t *testing.T) {
	x := tensor.New(2, 3, 12, 12)
	xrand.New(6).FillNormal(x.Data(), 0, 1)
	for _, name := range StudyModels() {
		net, err := Build(name, cfg(3))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		y := net.Forward(x, true)
		grad := tensor.New(y.Shape()...)
		xrand.New(7).FillNormal(grad.Data(), 0, 1)
		dx := net.Backward(grad)
		if !dx.SameShape(x) {
			t.Errorf("%s: input grad shape %v", name, dx.Shape())
		}
		if dx.HasNaN() {
			t.Errorf("%s: NaN in backward pass", name)
		}
		// At least one parameter must receive gradient.
		total := 0.0
		for _, p := range net.Params() {
			total += p.Grad.L2Norm()
		}
		if total == 0 {
			t.Errorf("%s: all parameter gradients zero", name)
		}
	}
}

func TestGreyscaleInput(t *testing.T) {
	c := cfg(8)
	c.InChannels = 1
	c.NumClasses = 2
	x := tensor.New(2, 1, 12, 12)
	for _, name := range []string{ConvNet, ResNet50, MobileNet} {
		net, err := Build(name, c)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		y := net.Forward(x, false)
		if y.Dim(1) != 2 {
			t.Errorf("%s greyscale output %v", name, y.Shape())
		}
	}
}

func TestWidthMultShrinksParams(t *testing.T) {
	big, _ := Build(VGG16, cfg(9))
	small := cfg(10)
	small.WidthMult = 0.5
	smallNet, _ := Build(VGG16, small)
	if nn.ParamCount(smallNet) >= nn.ParamCount(big) {
		t.Fatalf("WidthMult 0.5 did not shrink: %d vs %d",
			nn.ParamCount(smallNet), nn.ParamCount(big))
	}
}

func TestBuildRejectsBadConfig(t *testing.T) {
	bad := cfg(11)
	bad.Height = 4
	if _, err := Build(ConvNet, bad); err == nil {
		t.Fatal("tiny input accepted")
	}
	bad = cfg(12)
	bad.RNG = nil
	if _, err := Build(ConvNet, bad); err == nil {
		t.Fatal("nil RNG accepted")
	}
	bad = cfg(13)
	bad.NumClasses = 1
	if _, err := Build(ResNet18, bad); err == nil {
		t.Fatal("single class accepted")
	}
}

func TestEnsembleMembersAreRegistered(t *testing.T) {
	members := EnsembleMembers()
	if len(members) != 5 {
		t.Fatalf("ensemble has %d members, want 5", len(members))
	}
	for _, m := range members {
		if _, err := Get(m); err != nil {
			t.Fatalf("ensemble member %s not registered", m)
		}
	}
}

func TestDeterministicBuild(t *testing.T) {
	a, _ := Build(ResNet18, cfg(20))
	b, _ := Build(ResNet18, cfg(20))
	x := tensor.New(1, 3, 12, 12)
	xrand.New(21).FillNormal(x.Data(), 0, 1)
	if !a.Forward(x, false).Equal(b.Forward(x, false), 0) {
		t.Fatal("same seed produced different models")
	}
}

func TestInfoMetadata(t *testing.T) {
	for _, info := range All() {
		if info.Depth != "moderate" && info.Depth != "deep" {
			t.Errorf("%s: depth %q", info.Name, info.Depth)
		}
		if info.Summary == "" || info.DefaultEpochs <= 0 || info.DefaultLR <= 0 {
			t.Errorf("%s: incomplete metadata %+v", info.Name, info)
		}
	}
}
