// Package models implements the seven neural-network architectures of the
// study (Table III of the paper), width-scaled to train on a single CPU
// core while preserving each architecture's *class*: plain shallow
// convolutional stacks (ConvNet, DeconvNet), deep VGG-style stacks with
// max pooling and a 3-layer dense head (VGG11, VGG16), residual networks
// with global average pooling (ResNet18 basic blocks, ResNet50 bottleneck
// blocks), and a depthwise-separable network (MobileNet).
//
// The per-model layer counts match Table III:
//
//	ConvNet    moderate   3 conv + 3 FC + max pooling
//	DeconvNet  moderate   4 conv + 2 FC with 0.5 dropout
//	VGG11      deep       8 conv + 3 FC + max pooling
//	VGG16      deep      13 conv + 3 FC + max pooling
//	ResNet18   deep      17 conv + 1 FC + avg pooling
//	ResNet50   deep      49 conv + 1 FC + avg pooling
//	MobileNet  deep      27 conv + 1 FC + avg pooling
//
// (The paper's table lists VGG11 with "13 Conv", which is the canonical
// VGG16 count; we use the canonical 8-conv VGG11.) Batch normalization is
// inserted in the deep architectures — at these widths and dataset sizes it
// is required for trainability, mirroring its role in the full-size
// originals.
package models

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"tdfm/internal/nn"
	"tdfm/internal/tensor"
	"tdfm/internal/xrand"
)

// BuildConfig describes the input geometry and capacity of a model build.
type BuildConfig struct {
	InChannels int
	Height     int
	Width      int
	NumClasses int
	// WidthMult scales channel counts; 1.0 is the study default. Values
	// below 1 shrink models for fast tests.
	WidthMult float64
	RNG       *xrand.RNG
}

func (c BuildConfig) validate() error {
	if c.InChannels < 1 || c.NumClasses < 2 {
		return fmt.Errorf("models: invalid channels/classes %d/%d", c.InChannels, c.NumClasses)
	}
	if c.Height < 8 || c.Width < 8 {
		return fmt.Errorf("models: input %dx%d too small (min 8x8)", c.Height, c.Width)
	}
	if c.RNG == nil {
		return fmt.Errorf("models: nil RNG")
	}
	return nil
}

func (c BuildConfig) ch(base int) int {
	m := c.WidthMult
	if m <= 0 {
		m = 1
	}
	n := int(math.Round(float64(base) * m))
	if n < 1 {
		n = 1
	}
	return n
}

// Builder constructs a model for a build config.
type Builder func(cfg BuildConfig) (*nn.Sequential, error)

// Info describes a registered architecture.
type Info struct {
	Name    string
	Depth   string // "moderate" or "deep" (Table III)
	Summary string // architecture summary string matching Table III
	Build   Builder
	// DefaultEpochs and DefaultLR are tuned per-architecture training
	// settings for the synthetic datasets.
	DefaultEpochs int
	DefaultLR     float64
}

var registry = map[string]Info{}

func register(info Info) {
	if _, dup := registry[info.Name]; dup {
		panic("models: duplicate registration of " + info.Name)
	}
	registry[info.Name] = info
}

// Get returns the registered architecture by name.
func Get(name string) (Info, error) {
	info, ok := registry[name]
	if !ok {
		return Info{}, fmt.Errorf("models: unknown architecture %q (have %v)", name, Names())
	}
	return info, nil
}

// Names returns the registered architecture names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// All returns every registered architecture, sorted by name.
func All() []Info {
	names := Names()
	out := make([]Info, 0, len(names))
	for _, n := range names {
		out = append(out, registry[n])
	}
	return out
}

// Build constructs the named architecture.
func Build(name string, cfg BuildConfig) (*nn.Sequential, error) {
	info, err := Get(name)
	if err != nil {
		return nil, err
	}
	return info.Build(cfg)
}

func convBNReLU(name string, in, out, k, stride int, rng *xrand.RNG) []nn.Layer {
	return []nn.Layer{
		nn.NewConv2D(name, in, out, k, stride, tensor.SamePad(k), rng),
		nn.NewBatchNorm2D(name+".bn", out),
		nn.NewReLU(),
	}
}

// ConvNet: 3 conv + 3 FC + max pooling (moderate depth).
func buildConvNet(cfg BuildConfig) (*nn.Sequential, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	r := cfg.RNG
	c1, c2, c3 := cfg.ch(8), cfg.ch(16), cfg.ch(16)
	h, w := cfg.Height/2/2, cfg.Width/2/2
	net := nn.NewSequential(
		nn.NewConv2D("conv1", cfg.InChannels, c1, 3, 1, 1, r),
		nn.NewReLU(),
		nn.NewMaxPool2D(2, 2),
		nn.NewConv2D("conv2", c1, c2, 3, 1, 1, r),
		nn.NewReLU(),
		nn.NewMaxPool2D(2, 2),
		nn.NewConv2D("conv3", c2, c3, 3, 1, 1, r),
		nn.NewReLU(),
		nn.NewFlatten(),
		nn.NewDense("fc1", c3*h*w, cfg.ch(48), r),
		nn.NewReLU(),
		nn.NewDense("fc2", cfg.ch(48), cfg.ch(24), r),
		nn.NewReLU(),
		nn.NewDense("fc3", cfg.ch(24), cfg.NumClasses, r),
	)
	return net, nil
}

// DeconvNet: 4 conv + 2 FC with 0.5 dropout (moderate depth).
func buildDeconvNet(cfg BuildConfig) (*nn.Sequential, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	r := cfg.RNG
	c1, c2, c3, c4 := cfg.ch(8), cfg.ch(16), cfg.ch(16), cfg.ch(32)
	h, w := cfg.Height/2/2, cfg.Width/2/2
	net := nn.NewSequential(
		nn.NewConv2D("conv1", cfg.InChannels, c1, 3, 1, 1, r),
		nn.NewReLU(),
		nn.NewMaxPool2D(2, 2),
		nn.NewConv2D("conv2", c1, c2, 3, 1, 1, r),
		nn.NewReLU(),
		nn.NewConv2D("conv3", c2, c3, 3, 1, 1, r),
		nn.NewReLU(),
		nn.NewMaxPool2D(2, 2),
		nn.NewConv2D("conv4", c3, c4, 3, 1, 1, r),
		nn.NewReLU(),
		nn.NewFlatten(),
		nn.NewDropout(0.5, r.Split("dropout1")),
		nn.NewDense("fc1", c4*h*w, cfg.ch(64), r),
		nn.NewReLU(),
		nn.NewDropout(0.5, r.Split("dropout2")),
		nn.NewDense("fc2", cfg.ch(64), cfg.NumClasses, r),
	)
	return net, nil
}

// vgg builds a VGG-style stack from a block spec: convsPerBlock[i] convs at
// width widths[i], with a max pool after each of the first two blocks.
func vgg(cfg BuildConfig, convsPerBlock, widths []int) (*nn.Sequential, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	r := cfg.RNG
	net := nn.NewSequential()
	in := cfg.InChannels
	h, w := cfg.Height, cfg.Width
	idx := 0
	for b, n := range convsPerBlock {
		out := cfg.ch(widths[b])
		for i := 0; i < n; i++ {
			idx++
			net.Add(convBNReLU(fmt.Sprintf("conv%d", idx), in, out, 3, 1, r)...)
			in = out
		}
		if b < 2 { // two pooling stages keep ≥3×3 spatial size on 12×12 inputs
			net.Add(nn.NewMaxPool2D(2, 2))
			h, w = h/2, w/2
		}
	}
	net.Add(
		nn.NewFlatten(),
		nn.NewDense("fc1", in*h*w, cfg.ch(64), r),
		nn.NewReLU(),
		nn.NewDense("fc2", cfg.ch(64), cfg.ch(32), r),
		nn.NewReLU(),
		nn.NewDense("fc3", cfg.ch(32), cfg.NumClasses, r),
	)
	return net, nil
}

// VGG11: 8 conv + 3 FC + max pooling (deep).
func buildVGG11(cfg BuildConfig) (*nn.Sequential, error) {
	return vgg(cfg, []int{1, 1, 2, 2, 2}, []int{8, 16, 32, 32, 32})
}

// VGG16: 13 conv + 3 FC + max pooling (deep).
func buildVGG16(cfg BuildConfig) (*nn.Sequential, error) {
	return vgg(cfg, []int{2, 2, 3, 3, 3}, []int{8, 16, 32, 32, 32})
}

// basicBlock is the ResNet18 residual unit: two 3×3 convs with BN.
func basicBlock(name string, in, out, stride int, r *xrand.RNG) *nn.Residual {
	main := nn.NewSequential(
		nn.NewConv2D(name+".c1", in, out, 3, stride, 1, r),
		nn.NewBatchNorm2D(name+".bn1", out),
		nn.NewReLU(),
		nn.NewConv2D(name+".c2", out, out, 3, 1, 1, r),
		nn.NewBatchNorm2D(name+".bn2", out),
	)
	var shortcut nn.Layer
	if stride != 1 || in != out {
		shortcut = nn.NewSequential(
			nn.NewConv2D(name+".proj", in, out, 1, stride, 0, r),
			nn.NewBatchNorm2D(name+".projbn", out),
		)
	}
	return nn.NewResidual(main, shortcut)
}

// bottleneckBlock is the ResNet50 residual unit: 1×1 reduce, 3×3, 1×1
// expand, with BN.
func bottleneckBlock(name string, in, mid, out, stride int, r *xrand.RNG) *nn.Residual {
	main := nn.NewSequential(
		nn.NewConv2D(name+".c1", in, mid, 1, 1, 0, r),
		nn.NewBatchNorm2D(name+".bn1", mid),
		nn.NewReLU(),
		nn.NewConv2D(name+".c2", mid, mid, 3, stride, 1, r),
		nn.NewBatchNorm2D(name+".bn2", mid),
		nn.NewReLU(),
		nn.NewConv2D(name+".c3", mid, out, 1, 1, 0, r),
		nn.NewBatchNorm2D(name+".bn3", out),
	)
	var shortcut nn.Layer
	if stride != 1 || in != out {
		shortcut = nn.NewSequential(
			nn.NewConv2D(name+".proj", in, out, 1, stride, 0, r),
			nn.NewBatchNorm2D(name+".projbn", out),
		)
	}
	return nn.NewResidual(main, shortcut)
}

// ResNet18: stem + 2/2/2/2 basic blocks = 17 conv + 1 FC + avg pooling.
func buildResNet18(cfg BuildConfig) (*nn.Sequential, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	r := cfg.RNG
	widths := []int{cfg.ch(4), cfg.ch(8), cfg.ch(16), cfg.ch(32)}
	net := nn.NewSequential(convBNReLU("stem", cfg.InChannels, widths[0], 3, 1, r)...)
	in := widths[0]
	for stage, w := range widths {
		stride := 1
		if stage > 0 {
			stride = 2
		}
		for blk := 0; blk < 2; blk++ {
			s := 1
			if blk == 0 {
				s = stride
			}
			name := fmt.Sprintf("s%db%d", stage+1, blk+1)
			net.Add(basicBlock(name, in, w, s, r))
			in = w
		}
	}
	net.Add(nn.NewGlobalAvgPool2D(), nn.NewDense("fc", in, cfg.NumClasses, r))
	return net, nil
}

// ResNet50: stem + 3/4/6/3 bottleneck blocks = 49 conv + 1 FC + avg pooling.
func buildResNet50(cfg BuildConfig) (*nn.Sequential, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	r := cfg.RNG
	mids := []int{cfg.ch(2), cfg.ch(4), cfg.ch(8), cfg.ch(16)}
	outs := []int{cfg.ch(8), cfg.ch(16), cfg.ch(32), cfg.ch(64)}
	blocks := []int{3, 4, 6, 3}
	net := nn.NewSequential(convBNReLU("stem", cfg.InChannels, outs[0], 3, 1, r)...)
	in := outs[0]
	for stage := range blocks {
		stride := 1
		if stage > 0 {
			stride = 2
		}
		for blk := 0; blk < blocks[stage]; blk++ {
			s := 1
			if blk == 0 {
				s = stride
			}
			name := fmt.Sprintf("s%db%d", stage+1, blk+1)
			net.Add(bottleneckBlock(name, in, mids[stage], outs[stage], s, r))
			in = outs[stage]
		}
	}
	net.Add(nn.NewGlobalAvgPool2D(), nn.NewDense("fc", in, cfg.NumClasses, r))
	return net, nil
}

// dsBlock is a depthwise-separable block: depthwise 3×3 + BN + ReLU, then
// pointwise 1×1 + BN + ReLU (two convs).
func dsBlock(name string, in, out, stride int, r *xrand.RNG) []nn.Layer {
	return []nn.Layer{
		nn.NewDepthwiseConv2D(name+".dw", in, 3, stride, 1, r),
		nn.NewBatchNorm2D(name+".dwbn", in),
		nn.NewReLU(),
		nn.NewConv2D(name+".pw", in, out, 1, 1, 0, r),
		nn.NewBatchNorm2D(name+".pwbn", out),
		nn.NewReLU(),
	}
}

// MobileNet: stem + 13 depthwise-separable blocks = 27 conv + 1 FC + avg
// pooling.
func buildMobileNet(cfg BuildConfig) (*nn.Sequential, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	r := cfg.RNG
	w12, w24, w48, w64 := cfg.ch(12), cfg.ch(24), cfg.ch(48), cfg.ch(64)
	net := nn.NewSequential(convBNReLU("stem", cfg.InChannels, w12, 3, 1, r)...)
	type blockSpec struct {
		out    int
		stride int
	}
	specs := []blockSpec{
		{w24, 2}, // 12 -> 6
		{w24, 1},
		{w48, 2}, // 6 -> 3
		{w48, 1}, {w48, 1}, {w48, 1}, {w48, 1},
		{w48, 1}, {w48, 1},
		{w64, 2}, // 3 -> 2
		{w64, 1}, {w64, 1}, {w64, 1},
	}
	in := w12
	for i, s := range specs {
		net.Add(dsBlock(fmt.Sprintf("ds%d", i+1), in, s.out, s.stride, r)...)
		in = s.out
	}
	net.Add(nn.NewGlobalAvgPool2D(), nn.NewDense("fc", in, cfg.NumClasses, r))
	return net, nil
}

// CountConvs returns the number of convolution layers (standard plus
// depthwise) in a network, used to check Table III fidelity. Following the
// canonical ResNet depth convention (ResNet18 = 17 conv + 1 FC), the 1×1
// projection convolutions on residual shortcuts are not counted.
func CountConvs(l nn.Layer) int {
	n := 0
	nn.Walk(l, func(layer nn.Layer) {
		switch v := layer.(type) {
		case *nn.Conv2D:
			if len(v.Params()) > 0 && strings.Contains(v.Params()[0].Name, ".proj") {
				return
			}
			n++
		case *nn.DepthwiseConv2D:
			n++
		}
	})
	return n
}

// CountDense returns the number of fully connected layers in a network.
func CountDense(l nn.Layer) int {
	n := 0
	nn.Walk(l, func(layer nn.Layer) {
		if _, ok := layer.(*nn.Dense); ok {
			n++
		}
	})
	return n
}

// The study's canonical model names.
const (
	ConvNet   = "convnet"
	DeconvNet = "deconvnet"
	VGG11     = "vgg11"
	VGG16     = "vgg16"
	ResNet18  = "resnet18"
	ResNet50  = "resnet50"
	MobileNet = "mobilenet"
)

// StudyModels lists the seven architectures in the order used by the
// paper's tables.
func StudyModels() []string {
	return []string{ConvNet, DeconvNet, VGG11, VGG16, ResNet18, ResNet50, MobileNet}
}

// EnsembleMembers lists the five models the paper selects for its ensemble
// (the five with the lowest baseline AD, §IV).
func EnsembleMembers() []string {
	return []string{ConvNet, MobileNet, ResNet18, VGG11, VGG16}
}

func mustRegisterAll() {
	register(Info{Name: ConvNet, Depth: "moderate", Summary: "3 Conv + 3 FC + Max Pooling",
		Build: buildConvNet, DefaultEpochs: 12, DefaultLR: 0.01})
	register(Info{Name: DeconvNet, Depth: "moderate", Summary: "4 Conv + 2 FC w/ 0.5 Dropout",
		Build: buildDeconvNet, DefaultEpochs: 16, DefaultLR: 0.01})
	register(Info{Name: VGG11, Depth: "deep", Summary: "8 Conv + 3 FC + Max Pooling",
		Build: buildVGG11, DefaultEpochs: 16, DefaultLR: 0.005})
	register(Info{Name: VGG16, Depth: "deep", Summary: "13 Conv + 3 FC + Max Pooling",
		Build: buildVGG16, DefaultEpochs: 14, DefaultLR: 0.003})
	register(Info{Name: ResNet18, Depth: "deep", Summary: "17 Conv + 1 FC + Avg Pooling",
		Build: buildResNet18, DefaultEpochs: 16, DefaultLR: 0.02})
	register(Info{Name: ResNet50, Depth: "deep", Summary: "49 Conv + 1 FC + Avg Pooling",
		Build: buildResNet50, DefaultEpochs: 20, DefaultLR: 0.015})
	register(Info{Name: MobileNet, Depth: "deep", Summary: "27 Conv + 1 FC + Avg Pooling",
		Build: buildMobileNet, DefaultEpochs: 16, DefaultLR: 0.02})
}

func init() { mustRegisterAll() } //nolint:gochecknoinits // registry is static data
