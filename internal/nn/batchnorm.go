package nn

import (
	"fmt"
	"math"

	"tdfm/internal/tensor"
)

// BatchNorm2D normalizes each channel of an [N, C, H, W] activation over the
// batch and spatial dimensions, then applies a learnable affine transform
// (gamma, beta). Running statistics collected during training are used at
// inference, following the standard formulation.
type BatchNorm2D struct {
	arenaHolder
	gamma, beta *Param

	ch       int
	momentum float64
	eps      float64

	runningMean []float64
	runningVar  []float64

	// Backward caches.
	xhat    *tensor.Tensor
	invStd  []float64
	n, h, w int
}

var _ Layer = (*BatchNorm2D)(nil)

// NewBatchNorm2D returns a batch-normalization layer for ch channels with
// gamma initialized to 1 and beta to 0.
func NewBatchNorm2D(name string, ch int) *BatchNorm2D {
	if ch <= 0 {
		panic("nn: NewBatchNorm2D needs positive channels")
	}
	b := &BatchNorm2D{
		gamma:       newParam(name+".gamma", ch),
		beta:        newParam(name+".beta", ch),
		ch:          ch,
		momentum:    0.9,
		eps:         1e-5,
		runningMean: make([]float64, ch),
		runningVar:  make([]float64, ch),
	}
	b.gamma.W.Fill(1)
	for i := range b.runningVar {
		b.runningVar[i] = 1
	}
	return b
}

// Forward normalizes with batch statistics (training) or running statistics
// (inference).
func (b *BatchNorm2D) Forward(x *tensor.Tensor, training bool) *tensor.Tensor {
	if x.Dims() != 4 || x.Dim(1) != b.ch {
		panic(fmt.Sprintf("nn: BatchNorm2D %s expects [N,%d,H,W], got %v", b.gamma.Name, b.ch, x.Shape()))
	}
	n, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	out := b.alloc(n, b.ch, h, w)
	xd, od := x.Data(), out.Data()
	gd, bd := b.gamma.W.Data(), b.beta.W.Data()
	plane := h * w
	cnt := float64(n * plane)

	if !training {
		for ch := 0; ch < b.ch; ch++ {
			invStd := 1 / math.Sqrt(b.runningVar[ch]+b.eps)
			mean := b.runningMean[ch]
			g, bt := gd[ch], bd[ch]
			for img := 0; img < n; img++ {
				base := (img*b.ch + ch) * plane
				for i := 0; i < plane; i++ {
					od[base+i] = g*(xd[base+i]-mean)*invStd + bt
				}
			}
		}
		return out
	}

	xhat := b.alloc(n, b.ch, h, w)
	xh := xhat.Data()
	invStds := b.allocBuf(b.ch)
	for ch := 0; ch < b.ch; ch++ {
		sum := 0.0
		for img := 0; img < n; img++ {
			base := (img*b.ch + ch) * plane
			for i := 0; i < plane; i++ {
				sum += xd[base+i]
			}
		}
		mean := sum / cnt
		vs := 0.0
		for img := 0; img < n; img++ {
			base := (img*b.ch + ch) * plane
			for i := 0; i < plane; i++ {
				d := xd[base+i] - mean
				vs += d * d
			}
		}
		variance := vs / cnt
		invStd := 1 / math.Sqrt(variance+b.eps)
		invStds[ch] = invStd
		g, bt := gd[ch], bd[ch]
		for img := 0; img < n; img++ {
			base := (img*b.ch + ch) * plane
			for i := 0; i < plane; i++ {
				xn := (xd[base+i] - mean) * invStd
				xh[base+i] = xn
				od[base+i] = g*xn + bt
			}
		}
		b.runningMean[ch] = b.momentum*b.runningMean[ch] + (1-b.momentum)*mean
		b.runningVar[ch] = b.momentum*b.runningVar[ch] + (1-b.momentum)*variance
	}
	b.xhat, b.invStd, b.n, b.h, b.w = xhat, invStds, n, h, w
	return out
}

// Backward implements the standard batch-norm gradient.
func (b *BatchNorm2D) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if b.xhat == nil {
		panic("nn: BatchNorm2D Backward before training Forward")
	}
	n, h, w := b.n, b.h, b.w
	plane := h * w
	cnt := float64(n * plane)
	dx := b.alloc(n, b.ch, h, w)
	dxd, dod, xh := dx.Data(), dout.Data(), b.xhat.Data()
	gg, gb := b.gamma.Grad.Data(), b.beta.Grad.Data()
	gd := b.gamma.W.Data()
	for ch := 0; ch < b.ch; ch++ {
		sumDy, sumDyXhat := 0.0, 0.0
		for img := 0; img < n; img++ {
			base := (img*b.ch + ch) * plane
			for i := 0; i < plane; i++ {
				dy := dod[base+i]
				sumDy += dy
				sumDyXhat += dy * xh[base+i]
			}
		}
		gg[ch] += sumDyXhat
		gb[ch] += sumDy
		k := gd[ch] * b.invStd[ch]
		for img := 0; img < n; img++ {
			base := (img*b.ch + ch) * plane
			for i := 0; i < plane; i++ {
				dy := dod[base+i]
				dxd[base+i] = k * (dy - sumDy/cnt - xh[base+i]*sumDyXhat/cnt)
			}
		}
	}
	return dx
}

// Params returns gamma and beta.
func (b *BatchNorm2D) Params() []*Param { return []*Param{b.gamma, b.beta} }

// RunningStats returns copies of the running mean and variance, used by
// serialization.
func (b *BatchNorm2D) RunningStats() (mean, variance []float64) {
	return append([]float64(nil), b.runningMean...), append([]float64(nil), b.runningVar...)
}

// SetRunningStats installs running statistics (used when loading weights).
func (b *BatchNorm2D) SetRunningStats(mean, variance []float64) error {
	if len(mean) != b.ch || len(variance) != b.ch {
		return fmt.Errorf("nn: SetRunningStats wants %d channels, got %d/%d", b.ch, len(mean), len(variance))
	}
	copy(b.runningMean, mean)
	copy(b.runningVar, variance)
	return nil
}
