package nn

import (
	"fmt"
	"math"

	"tdfm/internal/tensor"
	"tdfm/internal/xrand"
)

// Dense is a fully connected layer computing y = xW + b for inputs of shape
// [N, in] and outputs of shape [N, out].
type Dense struct {
	arenaHolder
	w, b *Param

	in, out int
	x       *tensor.Tensor // cached input for Backward
}

var _ Layer = (*Dense)(nil)

// NewDense returns a dense layer with He-normal initialized weights and zero
// biases, drawing initialization randomness from rng.
func NewDense(name string, in, out int, rng *xrand.RNG) *Dense {
	if in <= 0 || out <= 0 {
		panic(fmt.Sprintf("nn: NewDense(%d, %d) invalid", in, out))
	}
	d := &Dense{
		w:   newParam(name+".w", in, out),
		b:   newParam(name+".b", out),
		in:  in,
		out: out,
	}
	std := math.Sqrt(2.0 / float64(in))
	rng.FillNormal(d.w.W.Data(), 0, std)
	return d
}

// InDim returns the input feature size.
func (d *Dense) InDim() int { return d.in }

// OutDim returns the output feature size.
func (d *Dense) OutDim() int { return d.out }

// Forward computes xW + b.
func (d *Dense) Forward(x *tensor.Tensor, training bool) *tensor.Tensor {
	if x.Dims() != 2 || x.Dim(1) != d.in {
		panic(fmt.Sprintf("nn: Dense %s expects [N,%d], got %v", d.w.Name, d.in, x.Shape()))
	}
	if training {
		d.x = x
	}
	y := x.MatMulInto(d.alloc(x.Dim(0), d.out), d.w.W)
	y.AddRowVectorIn(d.b.W)
	return y
}

// Backward accumulates dW = xᵀ·dout and db = Σ dout rows, and returns
// dx = dout·Wᵀ.
func (d *Dense) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if d.x == nil {
		panic("nn: Dense Backward before training Forward")
	}
	d.w.Grad.AddIn(d.x.MatMulTransAInto(d.alloc(d.in, d.out), dout))
	d.b.Grad.AddIn(dout.SumRowsInto(d.alloc(d.out)))
	return dout.MatMulTransBInto(d.alloc(dout.Dim(0), d.in), d.w.W)
}

// Params returns the weight and bias parameters.
func (d *Dense) Params() []*Param { return []*Param{d.w, d.b} }
