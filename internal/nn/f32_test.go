package nn

import (
	"math"
	"testing"

	"tdfm/internal/tensor"
	"tdfm/internal/xrand"
)

// buildMixedNet exercises every layer type that has a float32 twin:
// standard and depthwise convolution, batch norm, ReLU, dropout, max and
// global average pooling, a residual block with projection shortcut, and a
// dense head.
func buildMixedNet(rng *xrand.RNG) *Sequential {
	main := NewSequential(
		NewConv2D("res.c1", 8, 8, 3, 1, tensor.SamePad(3), rng),
		NewBatchNorm2D("res.bn1", 8),
	)
	shortcut := NewConv2D("res.sc", 8, 8, 1, 1, 0, rng)
	return NewSequential(
		NewConv2D("c1", 3, 8, 3, 1, tensor.SamePad(3), rng),
		NewBatchNorm2D("bn1", 8),
		NewReLU(),
		NewMaxPool2D(2, 2),
		NewDepthwiseConv2D("dw1", 8, 3, 1, tensor.SamePad(3), rng),
		NewResidual(main, shortcut),
		NewDropout(0.25, rng.Split("dropout")),
		NewGlobalAvgPool2D(),
		NewFlatten(),
		NewDense("fc", 8, 5, rng),
	)
}

// TestF32NetMatchesF64 checks the float32 twin of a mixed-layer network
// against the float64 original: logits agree within single-precision
// tolerance and every row's argmax matches (the vote-invariance property
// serving relies on).
func TestF32NetMatchesF64(t *testing.T) {
	rng := xrand.New(7).Split("f32net")
	net := buildMixedNet(rng)

	// A couple of training steps give batch norm non-trivial running
	// statistics, so the twin's folded scale/shift path is exercised.
	xTrain := tensor.New(4, 3, 8, 8)
	for i := range xTrain.Data() {
		xTrain.Data()[i] = rng.NormFloat64()
	}
	for step := 0; step < 2; step++ {
		net.Forward(xTrain, true)
	}

	f32net, err := NewF32Net(net)
	if err != nil {
		t.Fatalf("NewF32Net: %v", err)
	}

	x := tensor.New(6, 3, 8, 8)
	for i := range x.Data() {
		x.Data()[i] = rng.NormFloat64()
	}
	want := net.Forward(x, false)
	got := f32net.Forward(x)

	if !got.SameShape(want) {
		t.Fatalf("f32 logits shape %v, want %v", got.Shape(), want.Shape())
	}
	for i := range want.Data() {
		w, g := want.Data()[i], got.Data()[i]
		if math.Abs(g-w) > 1e-4*(1+math.Abs(w)) {
			t.Fatalf("f32 logit drift at %d: %v vs %v", i, g, w)
		}
	}
	wantArg, gotArg := want.ArgMaxRows(), got.ArgMaxRows()
	for row := range wantArg {
		if gotArg[row] != wantArg[row] {
			t.Fatalf("row %d: f32 argmax %d, f64 argmax %d", row, gotArg[row], wantArg[row])
		}
	}

	// A second forward through the same twin (arena now recycling) must
	// reproduce the first bit for bit.
	again := f32net.Forward(x)
	for i := range got.Data() {
		if again.Data()[i] != got.Data()[i] {
			t.Fatalf("second f32 forward differs at %d", i)
		}
	}
}

// TestNewF32NetRejectsUnknownLayer pins the conversion error for layer
// types without a float32 twin.
func TestNewF32NetRejectsUnknownLayer(t *testing.T) {
	if _, err := NewF32Net(NewSequential(unknownLayer{})); err == nil {
		t.Fatal("NewF32Net accepted a layer type with no float32 twin")
	}
}

type unknownLayer struct{}

func (unknownLayer) Forward(x *tensor.Tensor, training bool) *tensor.Tensor { return x }
func (unknownLayer) Backward(dout *tensor.Tensor) *tensor.Tensor            { return dout }
func (unknownLayer) Params() []*Param                                       { return nil }
