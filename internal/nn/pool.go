package nn

import (
	"fmt"
	"math"

	"tdfm/internal/tensor"
)

// MaxPool2D is a max-pooling layer over [N, C, H, W] inputs.
type MaxPool2D struct {
	arenaHolder
	geom tensor.ConvGeom

	argmax             []int // flat input index of each output element
	inLen              int
	inN, inC, inH, inW int
}

var _ Layer = (*MaxPool2D)(nil)

// NewMaxPool2D returns a max-pool layer with a square window of size k and
// the given stride (no padding).
func NewMaxPool2D(k, stride int) *MaxPool2D {
	return &MaxPool2D{geom: tensor.ConvGeom{KH: k, KW: k, StrideH: stride, StrideW: stride}}
}

// Forward computes per-window maxima, recording argmax positions for
// Backward when training.
func (m *MaxPool2D) Forward(x *tensor.Tensor, training bool) *tensor.Tensor {
	if x.Dims() != 4 {
		panic(fmt.Sprintf("nn: MaxPool2D expects [N,C,H,W], got %v", x.Shape()))
	}
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	oh, ow := m.geom.OutSize(h, w)
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("nn: MaxPool2D window %dx%d too large for %dx%d input", m.geom.KH, m.geom.KW, h, w))
	}
	out := m.alloc(n, c, oh, ow)
	var arg []int
	if training {
		// Reuse the previous batch's argmax storage when it fits: every
		// element is overwritten below, so stale contents cannot leak.
		if cap(m.argmax) >= out.Size() {
			arg = m.argmax[:out.Size()]
		} else {
			arg = make([]int, out.Size())
		}
	}
	xd, od := x.Data(), out.Data()
	// Batch-first sharding: each image's output (and argmax) block is
	// written by exactly one worker, so any worker count and batch size
	// reproduce the serial result bit for bit.
	tensor.Shard(n, n*c*oh*ow*m.geom.KH*m.geom.KW, func(imgLo, imgHi int) {
		for img := imgLo; img < imgHi; img++ {
			for ch := 0; ch < c; ch++ {
				inBase := (img*c + ch) * h * w
				outBase := (img*c + ch) * oh * ow
				for oy := 0; oy < oh; oy++ {
					iy0 := oy * m.geom.StrideH
					for ox := 0; ox < ow; ox++ {
						ix0 := ox * m.geom.StrideW
						best := math.Inf(-1)
						bestIdx := -1
						for ky := 0; ky < m.geom.KH; ky++ {
							iy := iy0 + ky
							if iy >= h {
								break
							}
							for kx := 0; kx < m.geom.KW; kx++ {
								ix := ix0 + kx
								if ix >= w {
									break
								}
								idx := inBase + iy*w + ix
								if xd[idx] > best {
									best, bestIdx = xd[idx], idx
								}
							}
						}
						o := outBase + oy*ow + ox
						od[o] = best
						if training {
							arg[o] = bestIdx
						}
					}
				}
			}
		}
	})
	if training {
		m.argmax = arg
		m.inLen = x.Size()
		m.inN, m.inC, m.inH, m.inW = n, c, h, w
	}
	return out
}

// Backward routes each output gradient to the input position that won the
// max in Forward.
func (m *MaxPool2D) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if m.argmax == nil {
		panic("nn: MaxPool2D Backward before training Forward")
	}
	dx := m.alloc(m.inN, m.inC, m.inH, m.inW)
	dxd, dod := dx.Data(), dout.Data()
	for o, idx := range m.argmax {
		dxd[idx] += dod[o]
	}
	return dx
}

// Params returns nil; pooling has no parameters.
func (m *MaxPool2D) Params() []*Param { return nil }

// GlobalAvgPool2D averages each channel's spatial plane, mapping
// [N, C, H, W] to [N, C]. Used by the ResNet and MobileNet heads.
type GlobalAvgPool2D struct {
	arenaHolder
	inN, inC, inH, inW int
}

var _ Layer = (*GlobalAvgPool2D)(nil)

// NewGlobalAvgPool2D returns a global average pooling layer.
func NewGlobalAvgPool2D() *GlobalAvgPool2D { return &GlobalAvgPool2D{} }

// Forward averages over the spatial dimensions.
func (g *GlobalAvgPool2D) Forward(x *tensor.Tensor, training bool) *tensor.Tensor {
	if x.Dims() != 4 {
		panic(fmt.Sprintf("nn: GlobalAvgPool2D expects [N,C,H,W], got %v", x.Shape()))
	}
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	out := g.alloc(n, c)
	xd, od := x.Data(), out.Data()
	area := float64(h * w)
	// Batch-first sharding with per-image output rows; bit-identical at
	// any worker count (the per-channel accumulation stays serial).
	tensor.Shard(n, n*c*h*w, func(imgLo, imgHi int) {
		for img := imgLo; img < imgHi; img++ {
			for ch := 0; ch < c; ch++ {
				base := (img*c + ch) * h * w
				s := 0.0
				for i := 0; i < h*w; i++ {
					s += xd[base+i]
				}
				od[img*c+ch] = s / area
			}
		}
	})
	if training {
		g.inN, g.inC, g.inH, g.inW = n, c, h, w
	}
	return out
}

// Backward spreads each channel gradient uniformly over its spatial plane.
func (g *GlobalAvgPool2D) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if g.inH == 0 {
		panic("nn: GlobalAvgPool2D Backward before training Forward")
	}
	dx := g.alloc(g.inN, g.inC, g.inH, g.inW)
	dxd, dod := dx.Data(), dout.Data()
	area := float64(g.inH * g.inW)
	for img := 0; img < g.inN; img++ {
		for ch := 0; ch < g.inC; ch++ {
			v := dod[img*g.inC+ch] / area
			base := (img*g.inC + ch) * g.inH * g.inW
			for i := 0; i < g.inH*g.inW; i++ {
				dxd[base+i] = v
			}
		}
	}
	return dx
}

// Params returns nil; pooling has no parameters.
func (g *GlobalAvgPool2D) Params() []*Param { return nil }
