package nn

import (
	"fmt"

	"tdfm/internal/tensor"
	"tdfm/internal/xrand"
)

// ReLU is the rectified-linear activation, applied elementwise.
type ReLU struct {
	arenaHolder
	// out caches the training-mode output: out[i] > 0 exactly where the
	// input was positive, so it doubles as the backward mask without a
	// separate allocation.
	out *tensor.Tensor
}

var _ Layer = (*ReLU)(nil)

// NewReLU returns a ReLU activation layer.
func NewReLU() *ReLU { return &ReLU{} }

// Forward zeroes negative elements.
func (r *ReLU) Forward(x *tensor.Tensor, training bool) *tensor.Tensor {
	out := r.allocLike(x)
	od := out.Data()
	copy(od, x.Data())
	for i, v := range od {
		if v <= 0 {
			od[i] = 0
		}
	}
	if training {
		r.out = out
	}
	return out
}

// Backward zeroes gradients where the forward input was non-positive.
func (r *ReLU) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if r.out == nil {
		panic("nn: ReLU Backward before training Forward")
	}
	dx := r.allocLike(dout)
	dxd, dod, od := dx.Data(), dout.Data(), r.out.Data()
	for i := range dxd {
		if od[i] > 0 {
			dxd[i] = dod[i]
		}
	}
	return dx
}

// Params returns nil; ReLU has no parameters.
func (r *ReLU) Params() []*Param { return nil }

// Dropout randomly zeroes activations during training with probability Rate
// and rescales survivors by 1/(1-Rate) ("inverted dropout"), so inference
// needs no adjustment.
type Dropout struct {
	arenaHolder
	rate float64
	rng  *xrand.RNG
	mask []float64
}

var _ Layer = (*Dropout)(nil)

// NewDropout returns a dropout layer with the given drop probability,
// drawing masks from rng. Rate must lie in [0, 1).
func NewDropout(rate float64, rng *xrand.RNG) *Dropout {
	if rate < 0 || rate >= 1 {
		panic(fmt.Sprintf("nn: NewDropout rate %v out of [0,1)", rate))
	}
	return &Dropout{rate: rate, rng: rng}
}

// Forward applies a fresh mask when training; it is the identity otherwise.
func (d *Dropout) Forward(x *tensor.Tensor, training bool) *tensor.Tensor {
	if !training || d.rate == 0 {
		d.mask = nil
		return x
	}
	out := d.allocLike(x)
	od := out.Data()
	copy(od, x.Data())
	mask := d.allocBuf(len(od))
	keep := 1 - d.rate
	scale := 1 / keep
	for i := range od {
		if d.rng.Float64() < keep {
			mask[i] = scale
			od[i] *= scale
		} else {
			od[i] = 0
		}
	}
	d.mask = mask
	return out
}

// Backward applies the same mask to the gradient.
func (d *Dropout) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if d.mask == nil {
		// Dropout was an identity in Forward (rate 0); pass through.
		return dout
	}
	dx := d.allocLike(dout)
	dxd, dod := dx.Data(), dout.Data()
	for i := range dxd {
		dxd[i] = dod[i] * d.mask[i]
	}
	return dx
}

// Params returns nil; dropout has no parameters.
func (d *Dropout) Params() []*Param { return nil }

// Flatten reshapes [N, C, H, W] activations to [N, C*H*W] for the dense
// head of a convolutional network.
type Flatten struct {
	inShape []int
}

var _ Layer = (*Flatten)(nil)

// NewFlatten returns a flattening layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Forward flattens all but the batch dimension.
func (f *Flatten) Forward(x *tensor.Tensor, training bool) *tensor.Tensor {
	if training {
		f.inShape = x.Shape()
	}
	n := x.Dim(0)
	return x.Reshape(n, -1)
}

// Backward restores the cached input shape.
func (f *Flatten) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if f.inShape == nil {
		panic("nn: Flatten Backward before training Forward")
	}
	return dout.Reshape(f.inShape...)
}

// Params returns nil; flatten has no parameters.
func (f *Flatten) Params() []*Param { return nil }
