package nn

import (
	"testing"

	"tdfm/internal/tensor"
	"tdfm/internal/xrand"
)

func TestMaxPoolUnevenInput(t *testing.T) {
	// 5x5 input with a 2x2/2 pool truncates to 2x2 output (no padding).
	p := NewMaxPool2D(2, 2)
	x := tensor.New(1, 1, 5, 5)
	for i := range x.Data() {
		x.Data()[i] = float64(i)
	}
	y := p.Forward(x, false)
	if y.Dim(2) != 2 || y.Dim(3) != 2 {
		t.Fatalf("pool output %v", y.Shape())
	}
	// Top-left window covers values {0,1,5,6} → max 6.
	if y.At(0, 0, 0, 0) != 6 {
		t.Fatalf("pool value %v", y.At(0, 0, 0, 0))
	}
}

func TestMaxPoolBackwardRoutesToArgmax(t *testing.T) {
	p := NewMaxPool2D(2, 2)
	x := tensor.FromSlice([]float64{
		1, 9,
		3, 4,
	}, 1, 1, 2, 2)
	p.Forward(x, true)
	dx := p.Backward(tensor.Full(5, 1, 1, 1, 1))
	// Only index 1 (value 9) receives gradient.
	want := []float64{0, 5, 0, 0}
	for i, v := range want {
		if dx.Data()[i] != v {
			t.Fatalf("dx = %v", dx.Data())
		}
	}
}

func TestConvDeterministicGivenSeed(t *testing.T) {
	a := NewConv2D("c", 2, 3, 3, 1, 1, xrand.New(5))
	b := NewConv2D("c", 2, 3, 3, 1, 1, xrand.New(5))
	x := tensor.New(1, 2, 4, 4)
	xrand.New(6).FillNormal(x.Data(), 0, 1)
	if !a.Forward(x, false).Equal(b.Forward(x, false), 0) {
		t.Fatal("same-seed convs differ")
	}
}

func TestBatchNormSingleSpatialElement(t *testing.T) {
	// 1x1 spatial planes with batch > 1 must still normalize over the batch.
	bn := NewBatchNorm2D("bn", 2)
	x := tensor.New(8, 2, 1, 1)
	xrand.New(7).FillNormal(x.Data(), 3, 2)
	y := bn.Forward(x, true)
	if y.HasNaN() {
		t.Fatal("NaN in 1x1 batch norm")
	}
	// Output mean per channel ≈ 0.
	for ch := 0; ch < 2; ch++ {
		s := 0.0
		for img := 0; img < 8; img++ {
			s += y.At(img, ch, 0, 0)
		}
		if s/8 > 1e-9 || s/8 < -1e-9 {
			t.Fatalf("channel %d mean %v", ch, s/8)
		}
	}
}

func TestDropoutDeterministicGivenSeed(t *testing.T) {
	x := tensor.Full(1, 100)
	d1 := NewDropout(0.5, xrand.New(9))
	d2 := NewDropout(0.5, xrand.New(9))
	if !d1.Forward(x, true).Equal(d2.Forward(x, true), 0) {
		t.Fatal("same-seed dropout masks differ")
	}
}

func TestEmptySequentialIsIdentity(t *testing.T) {
	s := NewSequential()
	x := tensor.FromSlice([]float64{1, 2, 3}, 1, 3)
	if !s.Forward(x, true).Equal(x, 0) {
		t.Fatal("empty Sequential changed input")
	}
	g := tensor.FromSlice([]float64{4, 5, 6}, 1, 3)
	if !s.Backward(g).Equal(g, 0) {
		t.Fatal("empty Sequential changed gradient")
	}
	if s.Params() != nil {
		t.Fatal("empty Sequential has params")
	}
}

func TestResidualIdentityShapePreserved(t *testing.T) {
	rng := xrand.New(11)
	res := NewResidual(NewSequential(
		NewConv2D("c", 2, 2, 3, 1, 1, rng),
	), nil)
	x := tensor.New(2, 2, 5, 5)
	y := res.Forward(x, false)
	if !y.SameShape(x) {
		t.Fatalf("residual changed shape: %v", y.Shape())
	}
}

func TestGradAccumulationAcrossBackwards(t *testing.T) {
	// Two backward passes without ZeroGrads must accumulate (sum) into Grad.
	rng := xrand.New(13)
	d := NewDense("fc", 3, 2, rng)
	x := tensor.New(2, 3)
	rng.FillNormal(x.Data(), 0, 1)
	g := tensor.Full(1, 2, 2)

	d.Forward(x, true)
	d.Backward(g)
	once := d.Params()[0].Grad.Clone()

	d.Forward(x, true)
	d.Backward(g)
	twice := d.Params()[0].Grad

	if !twice.Equal(once.Scale(2), 1e-12) {
		t.Fatal("gradients do not accumulate additively")
	}
}

func TestBackwardBeforeForwardPanics(t *testing.T) {
	cases := map[string]Layer{
		"dense":   NewDense("d", 2, 2, xrand.New(1)),
		"conv":    NewConv2D("c", 1, 1, 3, 1, 1, xrand.New(1)),
		"dwconv":  NewDepthwiseConv2D("dw", 1, 3, 1, 1, xrand.New(1)),
		"maxpool": NewMaxPool2D(2, 2),
		"gap":     NewGlobalAvgPool2D(),
		"relu":    NewReLU(),
		"flatten": NewFlatten(),
		"bn":      NewBatchNorm2D("bn", 1),
	}
	for name, l := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: Backward before Forward did not panic", name)
				}
			}()
			l.Backward(tensor.New(1, 1))
		}()
	}
}

func TestParamCountKnownNetwork(t *testing.T) {
	rng := xrand.New(15)
	net := NewSequential(
		NewConv2D("c", 1, 2, 3, 1, 1, rng), // 1*3*3*2 + 2 = 20
		NewFlatten(),
		NewDense("d", 2*4*4, 3, rng), // 32*3 + 3 = 99
	)
	if got := ParamCount(net); got != 119 {
		t.Fatalf("ParamCount = %d, want 119", got)
	}
}
