package nn

import (
	"fmt"
	"math"

	"tdfm/internal/tensor"
)

// f32Layer is the inference-only float32 counterpart of Layer: no training
// mode, no backward pass, and all activations drawn from the net's arena.
type f32Layer interface {
	forward(x *tensor.F32, a *tensor.Arena) *tensor.F32
}

// F32Net is a float32 inference twin of a trained float64 network: weights
// are converted once at construction and every forward pass runs entirely
// in float32, halving the activation and weight memory traffic. Training
// never uses F32Net — the float64 network remains the source of truth.
//
// Like Layer, an F32Net is not safe for concurrent use: one goroutine
// drives Forward at a time (each serving member owns its twin).
//
// Numerical contract: logits drift from the float64 network by ordinary
// single-precision rounding (relative error ~1e-6 per operation chain);
// DESIGN.md §10 documents the tolerance. Softmax over the returned float64
// logits is monotone, so the argmax — and therefore every ensemble vote —
// matches the float64 member whenever the logit margin exceeds the drift,
// which holds for all seven study architectures (see core's
// TestF32VotesMatchF64).
type F32Net struct {
	layers []f32Layer
	arena  *tensor.Arena
}

// NewF32Net converts a trained float64 network into its float32 inference
// twin. It returns an error for layer types without a float32 counterpart.
// Dropout layers convert to the identity (their inference behaviour).
func NewF32Net(l Layer) (*F32Net, error) {
	fl, err := convertF32(l)
	if err != nil {
		return nil, err
	}
	return &F32Net{layers: []f32Layer{fl}, arena: tensor.NewArena()}, nil
}

// Arena returns the twin's activation arena so owners that retire the
// network (a hot-swapped model version) can Release its pooled storage
// back to the global pool.
func (n *F32Net) Arena() *tensor.Arena { return n.arena }

// Forward runs float32 inference on a float64 input batch and returns the
// logits converted back to float64 (fresh storage, safe to retain). All
// intermediate activations are recycled before returning.
func (n *F32Net) Forward(x *tensor.Tensor) *tensor.Tensor {
	x32 := tensor.ConvertToF32(n.arena.F32(x.Shape()...), x)
	for _, l := range n.layers {
		x32 = l.forward(x32, n.arena)
	}
	out := x32.ToTensor()
	n.arena.Reset()
	return out
}

// convertF32 builds the float32 twin of one layer (recursively for
// containers).
func convertF32(l Layer) (f32Layer, error) {
	switch v := l.(type) {
	case *Sequential:
		seq := &f32Sequential{}
		for _, child := range v.layers {
			fc, err := convertF32(child)
			if err != nil {
				return nil, err
			}
			seq.layers = append(seq.layers, fc)
		}
		return seq, nil
	case *Residual:
		main, err := convertF32(v.main)
		if err != nil {
			return nil, err
		}
		r := &f32Residual{main: main}
		if v.shortcut != nil {
			if r.shortcut, err = convertF32(v.shortcut); err != nil {
				return nil, err
			}
		}
		return r, nil
	case *Dense:
		return &f32Dense{
			w:   tensor.F32FromTensor(v.w.W),
			b:   tensor.F32FromTensor(v.b.W),
			out: v.out,
		}, nil
	case *Conv2D:
		return &f32Conv{
			w:    tensor.F32FromTensor(v.w.W),
			b:    tensor.F32FromTensor(v.b.W),
			inC:  v.inC,
			outC: v.outC,
			geom: v.geom,
		}, nil
	case *DepthwiseConv2D:
		return &f32Depthwise{
			w:    toF32Slice(v.w.W.Data()),
			b:    toF32Slice(v.b.W.Data()),
			ch:   v.ch,
			geom: v.geom,
		}, nil
	case *BatchNorm2D:
		// Fold the affine transform with the running statistics once, in
		// float64: y = scale*x + shift with scale = gamma/sqrt(var+eps)
		// and shift = beta - mean*scale.
		f := &f32BatchNorm{
			scale: make([]float32, v.ch),
			shift: make([]float32, v.ch),
		}
		gd, bd := v.gamma.W.Data(), v.beta.W.Data()
		for ch := 0; ch < v.ch; ch++ {
			scale := gd[ch] / math.Sqrt(v.runningVar[ch]+v.eps)
			f.scale[ch] = float32(scale)
			f.shift[ch] = float32(bd[ch] - v.runningMean[ch]*scale)
		}
		return f, nil
	case *ReLU:
		return f32ReLU{}, nil
	case *Dropout:
		return f32Identity{}, nil
	case *Flatten:
		return f32Flatten{}, nil
	case *MaxPool2D:
		return &f32MaxPool{geom: v.geom}, nil
	case *GlobalAvgPool2D:
		return f32GlobalAvgPool{}, nil
	default:
		return nil, fmt.Errorf("nn: NewF32Net: no float32 twin for layer type %T", l)
	}
}

// toF32Slice converts a float64 slice to a fresh float32 slice.
func toF32Slice(src []float64) []float32 {
	dst := make([]float32, len(src))
	for i, v := range src {
		dst[i] = float32(v)
	}
	return dst
}

type f32Sequential struct {
	layers []f32Layer
}

func (s *f32Sequential) forward(x *tensor.F32, a *tensor.Arena) *tensor.F32 {
	for _, l := range s.layers {
		x = l.forward(x, a)
	}
	return x
}

type f32Dense struct {
	w, b *tensor.F32
	out  int
}

func (d *f32Dense) forward(x *tensor.F32, a *tensor.Arena) *tensor.F32 {
	y := x.MatMulInto(a.F32(x.Dim(0), d.out), d.w)
	y.AddRowVectorIn(d.b)
	return y
}

type f32Conv struct {
	w, b      *tensor.F32
	inC, outC int
	geom      tensor.ConvGeom
}

func (c *f32Conv) forward(x *tensor.F32, a *tensor.Arena) *tensor.F32 {
	n, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	oh, ow := c.geom.OutSize(h, w)
	cols := tensor.Im2ColF32Into(a.F32(n*oh*ow, c.inC*c.geom.KH*c.geom.KW), x, c.geom)
	rows := cols.MatMulInto(a.F32(n*oh*ow, c.outC), c.w)
	rows.AddRowVectorIn(c.b)
	return tensor.RowsToNCHWF32Into(a.F32(n, c.outC, oh, ow), rows)
}

type f32Depthwise struct {
	w, b []float32
	ch   int
	geom tensor.ConvGeom
}

func (d *f32Depthwise) forward(x *tensor.F32, a *tensor.Arena) *tensor.F32 {
	n, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	oh, ow := d.geom.OutSize(h, w)
	out := a.F32(n, d.ch, oh, ow)
	xd, od := x.Data(), out.Data()
	k := d.geom.KH
	for img := 0; img < n; img++ {
		for ch := 0; ch < d.ch; ch++ {
			inBase := (img*d.ch + ch) * h * w
			outBase := (img*d.ch + ch) * oh * ow
			kBase := ch * k * k
			for oy := 0; oy < oh; oy++ {
				iy0 := oy*d.geom.StrideH - d.geom.PadH
				for ox := 0; ox < ow; ox++ {
					ix0 := ox*d.geom.StrideW - d.geom.PadW
					s := d.b[ch]
					for ky := 0; ky < k; ky++ {
						iy := iy0 + ky
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < k; kx++ {
							ix := ix0 + kx
							if ix < 0 || ix >= w {
								continue
							}
							s += xd[inBase+iy*w+ix] * d.w[kBase+ky*k+kx]
						}
					}
					od[outBase+oy*ow+ox] = s
				}
			}
		}
	}
	return out
}

type f32BatchNorm struct {
	scale, shift []float32
}

func (b *f32BatchNorm) forward(x *tensor.F32, a *tensor.Arena) *tensor.F32 {
	n, c := x.Dim(0), x.Dim(1)
	plane := x.Dim(2) * x.Dim(3)
	out := a.F32(x.Shape()...)
	xd, od := x.Data(), out.Data()
	for img := 0; img < n; img++ {
		for ch := 0; ch < c; ch++ {
			base := (img*c + ch) * plane
			s, sh := b.scale[ch], b.shift[ch]
			for i := 0; i < plane; i++ {
				od[base+i] = s*xd[base+i] + sh
			}
		}
	}
	return out
}

type f32ReLU struct{}

func (f32ReLU) forward(x *tensor.F32, a *tensor.Arena) *tensor.F32 {
	out := a.F32(x.Shape()...)
	od := out.Data()
	copy(od, x.Data())
	for i, v := range od {
		if v < 0 {
			od[i] = 0
		}
	}
	return out
}

// f32Identity is the inference form of Dropout.
type f32Identity struct{}

func (f32Identity) forward(x *tensor.F32, _ *tensor.Arena) *tensor.F32 { return x }

type f32Flatten struct{}

func (f32Flatten) forward(x *tensor.F32, _ *tensor.Arena) *tensor.F32 {
	n := x.Dim(0)
	return x.Reshape(n, x.Size()/n)
}

type f32MaxPool struct {
	geom tensor.ConvGeom
}

func (m *f32MaxPool) forward(x *tensor.F32, a *tensor.Arena) *tensor.F32 {
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	oh, ow := m.geom.OutSize(h, w)
	out := a.F32(n, c, oh, ow)
	xd, od := x.Data(), out.Data()
	for img := 0; img < n; img++ {
		for ch := 0; ch < c; ch++ {
			inBase := (img*c + ch) * h * w
			outBase := (img*c + ch) * oh * ow
			for oy := 0; oy < oh; oy++ {
				iy0 := oy * m.geom.StrideH
				for ox := 0; ox < ow; ox++ {
					ix0 := ox * m.geom.StrideW
					best := float32(math.Inf(-1))
					for ky := 0; ky < m.geom.KH; ky++ {
						iy := iy0 + ky
						if iy >= h {
							break
						}
						for kx := 0; kx < m.geom.KW; kx++ {
							ix := ix0 + kx
							if ix >= w {
								break
							}
							if v := xd[inBase+iy*w+ix]; v > best {
								best = v
							}
						}
					}
					od[outBase+oy*ow+ox] = best
				}
			}
		}
	}
	return out
}

type f32GlobalAvgPool struct{}

func (f32GlobalAvgPool) forward(x *tensor.F32, a *tensor.Arena) *tensor.F32 {
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	out := a.F32(n, c)
	xd, od := x.Data(), out.Data()
	area := float32(h * w)
	for img := 0; img < n; img++ {
		for ch := 0; ch < c; ch++ {
			base := (img*c + ch) * h * w
			var s float32
			for i := 0; i < h*w; i++ {
				s += xd[base+i]
			}
			od[img*c+ch] = s / area
		}
	}
	return out
}

type f32Residual struct {
	main     f32Layer
	shortcut f32Layer // nil means identity
}

func (r *f32Residual) forward(x *tensor.F32, a *tensor.Arena) *tensor.F32 {
	m := r.main.forward(x, a)
	s := x
	if r.shortcut != nil {
		s = r.shortcut.forward(x, a)
	}
	sum := a.F32(m.Shape()...)
	copy(sum.Data(), m.Data())
	sum.AddIn(s)
	sd := sum.Data()
	for i, v := range sd {
		if v < 0 {
			sd[i] = 0
		}
	}
	return sum
}
