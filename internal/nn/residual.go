package nn

import (
	"tdfm/internal/tensor"
)

// Residual implements a ResNet-style skip connection:
//
//	y = ReLU(main(x) + shortcut(x))
//
// where shortcut is the identity when nil (shapes must then match) or a
// projection (typically a strided 1×1 convolution) when the main path
// changes channel count or spatial size. The trailing ReLU follows the
// original ResNet formulation.
type Residual struct {
	arenaHolder
	main     Layer
	shortcut Layer // nil means identity

	relu *ReLU
}

var _ Layer = (*Residual)(nil)

// NewResidual returns a residual block with the given main path and optional
// projection shortcut (pass nil for identity).
func NewResidual(main Layer, shortcut Layer) *Residual {
	return &Residual{main: main, shortcut: shortcut, relu: NewReLU()}
}

// setArena installs the arena on the block itself and on its trailing ReLU,
// which Walk does not reach (it only recurses into main and shortcut).
func (r *Residual) setArena(a *tensor.Arena) {
	r.arenaHolder.setArena(a)
	r.relu.setArena(a)
}

// Forward computes ReLU(main(x) + shortcut(x)).
func (r *Residual) Forward(x *tensor.Tensor, training bool) *tensor.Tensor {
	m := r.main.Forward(x, training)
	s := x
	if r.shortcut != nil {
		s = r.shortcut.Forward(x, training)
	}
	sum := r.allocLike(m)
	copy(sum.Data(), m.Data())
	sum.AddIn(s)
	return r.relu.Forward(sum, training)
}

// Backward propagates through the ReLU, then through both branches, summing
// their input gradients.
func (r *Residual) Backward(dout *tensor.Tensor) *tensor.Tensor {
	d := r.relu.Backward(dout)
	dx := r.main.Backward(d)
	if r.shortcut != nil {
		dx.AddIn(r.shortcut.Backward(d))
	} else {
		dx.AddIn(d)
	}
	return dx
}

// Params returns the parameters of both branches.
func (r *Residual) Params() []*Param {
	ps := r.main.Params()
	if r.shortcut != nil {
		ps = append(ps, r.shortcut.Params()...)
	}
	return ps
}
