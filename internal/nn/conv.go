package nn

import (
	"fmt"
	"math"

	"tdfm/internal/tensor"
	"tdfm/internal/xrand"
)

// Conv2D is a standard 2-D convolution over [N, C, H, W] inputs, implemented
// as im2col followed by a matrix product. Weights have shape
// [C*KH*KW, OutC]; bias has shape [OutC].
type Conv2D struct {
	arenaHolder
	w, b *Param

	inC, outC int
	geom      tensor.ConvGeom

	// Backward caches.
	cols      *tensor.Tensor
	n, h, wIn int
	oh, ow    int
}

var _ Layer = (*Conv2D)(nil)

// NewConv2D returns a convolution layer with He-normal initialization.
// Kernel k is square; pad chooses symmetric zero padding (use
// tensor.SamePad(k) to preserve spatial size at stride 1).
func NewConv2D(name string, inC, outC, k, stride, pad int, rng *xrand.RNG) *Conv2D {
	if inC <= 0 || outC <= 0 {
		panic(fmt.Sprintf("nn: NewConv2D(%d, %d) invalid channels", inC, outC))
	}
	c := &Conv2D{
		w:    newParam(name+".w", inC*k*k, outC),
		b:    newParam(name+".b", outC),
		inC:  inC,
		outC: outC,
		geom: tensor.ConvGeom{KH: k, KW: k, StrideH: stride, StrideW: stride, PadH: pad, PadW: pad},
	}
	fanIn := float64(inC * k * k)
	rng.FillNormal(c.w.W.Data(), 0, math.Sqrt(2.0/fanIn))
	return c
}

// OutChannels returns the number of output channels.
func (c *Conv2D) OutChannels() int { return c.outC }

// Forward computes the convolution.
func (c *Conv2D) Forward(x *tensor.Tensor, training bool) *tensor.Tensor {
	if x.Dims() != 4 || x.Dim(1) != c.inC {
		panic(fmt.Sprintf("nn: Conv2D %s expects [N,%d,H,W], got %v", c.w.Name, c.inC, x.Shape()))
	}
	n, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	oh, ow := c.geom.OutSize(h, w)
	cols := tensor.Im2ColInto(c.alloc(n*oh*ow, c.inC*c.geom.KH*c.geom.KW), x, c.geom)
	rows := cols.MatMulInto(c.alloc(n*oh*ow, c.outC), c.w.W)
	rows.AddRowVectorIn(c.b.W)
	if training {
		c.cols, c.n, c.h, c.wIn, c.oh, c.ow = cols, n, h, w, oh, ow
	}
	return tensor.RowsToNCHWInto(c.alloc(n, c.outC, oh, ow), rows)
}

// Backward accumulates weight/bias gradients and returns the input gradient.
func (c *Conv2D) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if c.cols == nil {
		panic("nn: Conv2D Backward before training Forward")
	}
	doutRows := tensor.NCHWToRowsInto(c.alloc(c.n*c.oh*c.ow, c.outC), dout) // [N*OH*OW, outC]
	c.w.Grad.AddIn(c.cols.MatMulTransAInto(c.alloc(c.inC*c.geom.KH*c.geom.KW, c.outC), doutRows))
	c.b.Grad.AddIn(doutRows.SumRowsInto(c.alloc(c.outC)))
	dcols := doutRows.MatMulTransBInto(c.alloc(c.n*c.oh*c.ow, c.inC*c.geom.KH*c.geom.KW), c.w.W)
	return tensor.Col2ImInto(c.alloc(c.n, c.inC, c.h, c.wIn), dcols, c.geom)
}

// Params returns the kernel and bias parameters.
func (c *Conv2D) Params() []*Param { return []*Param{c.w, c.b} }

// DepthwiseConv2D applies one k×k filter per input channel (channel
// multiplier 1), the spatial half of a depthwise-separable convolution as
// used by MobileNet. Weights have shape [C, KH, KW]; bias has shape [C].
type DepthwiseConv2D struct {
	arenaHolder
	w, b *Param

	ch   int
	geom tensor.ConvGeom

	x      *tensor.Tensor
	oh, ow int
}

var _ Layer = (*DepthwiseConv2D)(nil)

// NewDepthwiseConv2D returns a depthwise convolution with He-normal
// initialization.
func NewDepthwiseConv2D(name string, ch, k, stride, pad int, rng *xrand.RNG) *DepthwiseConv2D {
	if ch <= 0 {
		panic("nn: NewDepthwiseConv2D needs positive channels")
	}
	d := &DepthwiseConv2D{
		w:    newParam(name+".w", ch, k, k),
		b:    newParam(name+".b", ch),
		ch:   ch,
		geom: tensor.ConvGeom{KH: k, KW: k, StrideH: stride, StrideW: stride, PadH: pad, PadW: pad},
	}
	rng.FillNormal(d.w.W.Data(), 0, math.Sqrt(2.0/float64(k*k)))
	return d
}

// Forward computes the per-channel convolution with direct loops (channel
// counts in the scaled model zoo are small, so im2col would not pay off).
// The batch dimension shards across the worker budget: each image's
// output plane is written by exactly one worker, so results are
// bit-identical at any worker count and batch size.
func (d *DepthwiseConv2D) Forward(x *tensor.Tensor, training bool) *tensor.Tensor {
	if x.Dims() != 4 || x.Dim(1) != d.ch {
		panic(fmt.Sprintf("nn: DepthwiseConv2D %s expects [N,%d,H,W], got %v", d.w.Name, d.ch, x.Shape()))
	}
	n, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	oh, ow := d.geom.OutSize(h, w)
	out := d.alloc(n, d.ch, oh, ow)
	xd, od, wd, bd := x.Data(), out.Data(), d.w.W.Data(), d.b.W.Data()
	k := d.geom.KH
	tensor.Shard(n, n*d.ch*oh*ow*k*k, func(imgLo, imgHi int) {
		for img := imgLo; img < imgHi; img++ {
			d.forwardImage(img, h, w, oh, ow, xd, od, wd, bd)
		}
	})
	if training {
		d.x, d.oh, d.ow = x, oh, ow
	}
	return out
}

// forwardImage computes one image's depthwise convolution.
func (d *DepthwiseConv2D) forwardImage(img, h, w, oh, ow int, xd, od, wd, bd []float64) {
	k := d.geom.KH
	for ch := 0; ch < d.ch; ch++ {
		inBase := (img*d.ch + ch) * h * w
		outBase := (img*d.ch + ch) * oh * ow
		kBase := ch * k * k
		for oy := 0; oy < oh; oy++ {
			iy0 := oy*d.geom.StrideH - d.geom.PadH
			for ox := 0; ox < ow; ox++ {
				ix0 := ox*d.geom.StrideW - d.geom.PadW
				s := bd[ch]
				for ky := 0; ky < k; ky++ {
					iy := iy0 + ky
					if iy < 0 || iy >= h {
						continue
					}
					for kx := 0; kx < k; kx++ {
						ix := ix0 + kx
						if ix < 0 || ix >= w {
							continue
						}
						s += xd[inBase+iy*w+ix] * wd[kBase+ky*k+kx]
					}
				}
				od[outBase+oy*ow+ox] = s
			}
		}
	}
}

// Backward accumulates filter/bias gradients and returns the input gradient.
func (d *DepthwiseConv2D) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if d.x == nil {
		panic("nn: DepthwiseConv2D Backward before training Forward")
	}
	n, h, w := d.x.Dim(0), d.x.Dim(2), d.x.Dim(3)
	oh, ow := d.oh, d.ow
	dx := d.alloc(n, d.ch, h, w)
	xd, dxd := d.x.Data(), dx.Data()
	dod, wd := dout.Data(), d.w.W.Data()
	gw, gb := d.w.Grad.Data(), d.b.Grad.Data()
	k := d.geom.KH
	for img := 0; img < n; img++ {
		for ch := 0; ch < d.ch; ch++ {
			inBase := (img*d.ch + ch) * h * w
			outBase := (img*d.ch + ch) * oh * ow
			kBase := ch * k * k
			for oy := 0; oy < oh; oy++ {
				iy0 := oy*d.geom.StrideH - d.geom.PadH
				for ox := 0; ox < ow; ox++ {
					g := dod[outBase+oy*ow+ox]
					if g == 0 {
						continue
					}
					gb[ch] += g
					ix0 := ox*d.geom.StrideW - d.geom.PadW
					for ky := 0; ky < k; ky++ {
						iy := iy0 + ky
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < k; kx++ {
							ix := ix0 + kx
							if ix < 0 || ix >= w {
								continue
							}
							gw[kBase+ky*k+kx] += g * xd[inBase+iy*w+ix]
							dxd[inBase+iy*w+ix] += g * wd[kBase+ky*k+kx]
						}
					}
				}
			}
		}
	}
	return dx
}

// Params returns the filter and bias parameters.
func (d *DepthwiseConv2D) Params() []*Param { return []*Param{d.w, d.b} }
