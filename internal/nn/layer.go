// Package nn implements the neural-network substrate for the TDFM study: a
// layer abstraction with explicit forward/backward passes, the layer types
// required by the paper's seven architectures (dense, convolution,
// depthwise convolution, batch normalization, pooling, dropout, residual
// blocks), parameter management, and weight serialization.
//
// Layers cache activations between Forward and Backward, so a layer (and any
// network built from layers) is NOT safe for concurrent use: one goroutine
// drives a given model's train/predict loop at a time. Parallelism happens
// at two other levels, both coordinated through the shared worker budget in
// internal/parallel: across independent models (experiment grid cells and
// ensemble members train concurrently), and inside individual tensor
// operations (matrix products and im2col transforms shard rows across
// workers; see tensor.SetParallelism). Both levels are result-invariant —
// any worker count produces bit-identical numbers — so the layer contract
// callers rely on is unchanged: same inputs, same weights, same outputs.
package nn

import (
	"fmt"

	"tdfm/internal/tensor"
)

// Param is a trainable parameter tensor with its accumulated gradient.
// Optimizers mutate W in place and zero Grad between steps.
type Param struct {
	Name string
	W    *tensor.Tensor
	Grad *tensor.Tensor
}

func newParam(name string, shape ...int) *Param {
	return &Param{Name: name, W: tensor.New(shape...), Grad: tensor.New(shape...)}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// arenaHolder embeds an optional tensor.Arena into a layer. When an arena
// is installed (see InstallArena), every activation and scratch tensor the
// layer allocates comes from the arena and is recycled wholesale by the
// owner's Arena.Reset at batch/chunk boundaries; without one, alloc is
// plain tensor.New and behaviour is exactly the historical
// allocate-per-call path. Buffers are zero-filled either way, so the two
// modes are byte-identical.
type arenaHolder struct {
	arena *tensor.Arena
}

// setArena installs (or clears, with nil) the layer's arena.
func (h *arenaHolder) setArena(a *tensor.Arena) { h.arena = a }

// alloc returns a zero-filled tensor from the arena when one is installed,
// else a fresh tensor.
func (h *arenaHolder) alloc(shape ...int) *tensor.Tensor {
	if h.arena != nil {
		return h.arena.Tensor(shape...)
	}
	return tensor.New(shape...)
}

// allocLike is alloc with x's shape, avoiding the shape copy that an
// x.Shape() spread would allocate on every call.
func (h *arenaHolder) allocLike(x *tensor.Tensor) *tensor.Tensor {
	if h.arena != nil {
		return h.arena.TensorLike(x)
	}
	return tensor.NewLike(x)
}

// allocBuf returns a zero-filled []float64 from the arena when one is
// installed, else a fresh slice.
func (h *arenaHolder) allocBuf(n int) []float64 {
	if h.arena != nil {
		return h.arena.Buf(n)
	}
	return make([]float64, n)
}

// arenaUser is implemented (via arenaHolder embedding) by every layer that
// allocates activations or scratch.
type arenaUser interface {
	setArena(*tensor.Arena)
}

// InstallArena walks the network and installs a on every layer that
// allocates, so all activations and scratch of one model share one
// allocation scope. Callers own the reset cadence: the training loop
// resets after each optimizer step, the inference path after each
// predicted chunk (DESIGN.md §10). Pass nil to detach the network from its
// arena. Installing an arena does not change any numeric result — arena
// buffers are zero-filled exactly like fresh ones.
func InstallArena(l Layer, a *tensor.Arena) {
	Walk(l, func(layer Layer) {
		if u, ok := layer.(arenaUser); ok {
			u.setArena(a)
		}
	})
}

// Layer is a differentiable network stage.
//
// Forward consumes a batch and returns the layer output; when training is
// true, layers cache whatever they need for Backward and apply
// training-only behaviour (dropout masks, batch statistics). Backward
// consumes the gradient of the loss with respect to the layer output,
// accumulates parameter gradients, and returns the gradient with respect to
// the layer input.
type Layer interface {
	Forward(x *tensor.Tensor, training bool) *tensor.Tensor
	Backward(dout *tensor.Tensor) *tensor.Tensor
	Params() []*Param
}

// Sequential chains layers in order. The zero value is an empty network.
type Sequential struct {
	arenaHolder
	layers []Layer
}

var _ Layer = (*Sequential)(nil)

// NewSequential returns a network composed of the given layers.
func NewSequential(layers ...Layer) *Sequential {
	return &Sequential{layers: append([]Layer(nil), layers...)}
}

// Add appends layers to the network.
func (s *Sequential) Add(layers ...Layer) { s.layers = append(s.layers, layers...) }

// Len returns the number of layers.
func (s *Sequential) Len() int { return len(s.layers) }

// Layers returns the underlying layer slice (not a copy; treat as read-only).
func (s *Sequential) Layers() []Layer { return s.layers }

// Arena returns the allocation arena installed on this network by
// InstallArena, or nil when the network allocates per call. The training
// loop and chunked inference use it to recycle activations at safe points.
func (s *Sequential) Arena() *tensor.Arena { return s.arena }

// Forward runs the layers in order.
func (s *Sequential) Forward(x *tensor.Tensor, training bool) *tensor.Tensor {
	for _, l := range s.layers {
		x = l.Forward(x, training)
	}
	return x
}

// Backward runs the layers in reverse order.
func (s *Sequential) Backward(dout *tensor.Tensor) *tensor.Tensor {
	for i := len(s.layers) - 1; i >= 0; i-- {
		dout = s.layers[i].Backward(dout)
	}
	return dout
}

// Params returns all trainable parameters in layer order.
func (s *Sequential) Params() []*Param {
	var ps []*Param
	for _, l := range s.layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// ZeroGrads clears every parameter gradient in the network.
func ZeroGrads(l Layer) {
	for _, p := range l.Params() {
		p.ZeroGrad()
	}
}

// ParamCount returns the total number of scalar weights in the network.
func ParamCount(l Layer) int {
	n := 0
	for _, p := range l.Params() {
		n += p.W.Size()
	}
	return n
}

// CopyWeights copies parameter values from src to dst. The two networks must
// have identical parameter lists (same order, names, and shapes); this is
// used to clone teacher weights in self-distillation and to restore
// snapshots.
func CopyWeights(dst, src Layer) error {
	dp, sp := dst.Params(), src.Params()
	if len(dp) != len(sp) {
		return fmt.Errorf("nn: CopyWeights parameter count mismatch %d vs %d", len(dp), len(sp))
	}
	for i := range dp {
		if !dp[i].W.SameShape(sp[i].W) {
			return fmt.Errorf("nn: CopyWeights shape mismatch at %q: %v vs %v",
				dp[i].Name, dp[i].W.Shape(), sp[i].W.Shape())
		}
		copy(dp[i].W.Data(), sp[i].W.Data())
	}
	return nil
}
