// Package nn implements the neural-network substrate for the TDFM study: a
// layer abstraction with explicit forward/backward passes, the layer types
// required by the paper's seven architectures (dense, convolution,
// depthwise convolution, batch normalization, pooling, dropout, residual
// blocks), parameter management, and weight serialization.
//
// Layers cache activations between Forward and Backward, so a layer (and any
// network built from layers) is NOT safe for concurrent use: one goroutine
// drives a given model's train/predict loop at a time. Parallelism happens
// at two other levels, both coordinated through the shared worker budget in
// internal/parallel: across independent models (experiment grid cells and
// ensemble members train concurrently), and inside individual tensor
// operations (matrix products and im2col transforms shard rows across
// workers; see tensor.SetParallelism). Both levels are result-invariant —
// any worker count produces bit-identical numbers — so the layer contract
// callers rely on is unchanged: same inputs, same weights, same outputs.
package nn

import (
	"fmt"

	"tdfm/internal/tensor"
)

// Param is a trainable parameter tensor with its accumulated gradient.
// Optimizers mutate W in place and zero Grad between steps.
type Param struct {
	Name string
	W    *tensor.Tensor
	Grad *tensor.Tensor
}

func newParam(name string, shape ...int) *Param {
	return &Param{Name: name, W: tensor.New(shape...), Grad: tensor.New(shape...)}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// Layer is a differentiable network stage.
//
// Forward consumes a batch and returns the layer output; when training is
// true, layers cache whatever they need for Backward and apply
// training-only behaviour (dropout masks, batch statistics). Backward
// consumes the gradient of the loss with respect to the layer output,
// accumulates parameter gradients, and returns the gradient with respect to
// the layer input.
type Layer interface {
	Forward(x *tensor.Tensor, training bool) *tensor.Tensor
	Backward(dout *tensor.Tensor) *tensor.Tensor
	Params() []*Param
}

// Sequential chains layers in order. The zero value is an empty network.
type Sequential struct {
	layers []Layer
}

var _ Layer = (*Sequential)(nil)

// NewSequential returns a network composed of the given layers.
func NewSequential(layers ...Layer) *Sequential {
	return &Sequential{layers: append([]Layer(nil), layers...)}
}

// Add appends layers to the network.
func (s *Sequential) Add(layers ...Layer) { s.layers = append(s.layers, layers...) }

// Len returns the number of layers.
func (s *Sequential) Len() int { return len(s.layers) }

// Layers returns the underlying layer slice (not a copy; treat as read-only).
func (s *Sequential) Layers() []Layer { return s.layers }

// Forward runs the layers in order.
func (s *Sequential) Forward(x *tensor.Tensor, training bool) *tensor.Tensor {
	for _, l := range s.layers {
		x = l.Forward(x, training)
	}
	return x
}

// Backward runs the layers in reverse order.
func (s *Sequential) Backward(dout *tensor.Tensor) *tensor.Tensor {
	for i := len(s.layers) - 1; i >= 0; i-- {
		dout = s.layers[i].Backward(dout)
	}
	return dout
}

// Params returns all trainable parameters in layer order.
func (s *Sequential) Params() []*Param {
	var ps []*Param
	for _, l := range s.layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// ZeroGrads clears every parameter gradient in the network.
func ZeroGrads(l Layer) {
	for _, p := range l.Params() {
		p.ZeroGrad()
	}
}

// ParamCount returns the total number of scalar weights in the network.
func ParamCount(l Layer) int {
	n := 0
	for _, p := range l.Params() {
		n += p.W.Size()
	}
	return n
}

// CopyWeights copies parameter values from src to dst. The two networks must
// have identical parameter lists (same order, names, and shapes); this is
// used to clone teacher weights in self-distillation and to restore
// snapshots.
func CopyWeights(dst, src Layer) error {
	dp, sp := dst.Params(), src.Params()
	if len(dp) != len(sp) {
		return fmt.Errorf("nn: CopyWeights parameter count mismatch %d vs %d", len(dp), len(sp))
	}
	for i := range dp {
		if !dp[i].W.SameShape(sp[i].W) {
			return fmt.Errorf("nn: CopyWeights shape mismatch at %q: %v vs %v",
				dp[i].Name, dp[i].W.Shape(), sp[i].W.Shape())
		}
		copy(dp[i].W.Data(), sp[i].W.Data())
	}
	return nil
}
