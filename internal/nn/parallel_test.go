package nn

import (
	"testing"

	"tdfm/internal/parallel"
	"tdfm/internal/tensor"
	"tdfm/internal/xrand"
)

// TestGradCheckConv2DParallel reruns the convolution gradient check with
// intra-op tensor parallelism enabled: the analytic gradients must agree
// with finite differences regardless of how the matrix products and
// im2col transforms are sharded.
func TestGradCheckConv2DParallel(t *testing.T) {
	parallel.SetBudget(8)
	tensor.SetParallelism(4)
	defer func() {
		tensor.SetParallelism(0)
		parallel.SetBudget(0)
	}()
	rng := xrand.New(3)
	l := NewConv2D("conv", 2, 3, 3, 1, 1, rng)
	gradCheck(t, l, randInput(2, 2, 2, 5, 5), 1e-5)
}

// TestForwardBitIdenticalUnderParallelism trains nothing: it checks that a
// small CNN's forward pass produces bit-identical outputs at 1 and 4
// tensor workers, which is the substrate-level half of the experiment
// engine's schedule-invariance contract.
func TestForwardBitIdenticalUnderParallelism(t *testing.T) {
	build := func() *Sequential {
		rng := xrand.New(42)
		return NewSequential(
			NewConv2D("c1", 3, 4, 3, 1, 1, rng.Split("c1")),
			NewReLU(),
			NewConv2D("c2", 4, 6, 3, 2, 0, rng.Split("c2")),
			NewReLU(),
			NewFlatten(),
			NewDense("fc", 6*5*5, 10, rng.Split("fc")),
		)
	}
	x := randInput(9, 8, 3, 11, 11)

	tensor.SetParallelism(1)
	serial := build().Forward(x, false)

	parallel.SetBudget(8)
	tensor.SetParallelism(4)
	defer func() {
		tensor.SetParallelism(0)
		parallel.SetBudget(0)
	}()
	par := build().Forward(x, false)

	if !par.Equal(serial, 0) {
		t.Fatal("forward pass differs between 1 and 4 tensor workers")
	}
}
