package nn

import (
	"math"
	"testing"

	"tdfm/internal/tensor"
	"tdfm/internal/xrand"
)

// gradCheck verifies a layer's analytic gradients against central finite
// differences. The scalar objective is L = <out, probe> for a fixed random
// probe tensor, so dL/dout = probe exactly.
func gradCheck(t *testing.T, l Layer, x *tensor.Tensor, tol float64) {
	t.Helper()
	rng := xrand.New(999)

	out := l.Forward(x, true)
	probe := tensor.New(out.Shape()...)
	rng.FillNormal(probe.Data(), 0, 1)

	ZeroGrads(l)
	// Re-run forward so caches match the probe-based backward.
	out = l.Forward(x, true)
	_ = out
	dx := l.Backward(probe.Clone())

	objective := func() float64 {
		y := l.Forward(x, true)
		s := 0.0
		yd, pd := y.Data(), probe.Data()
		for i := range yd {
			s += yd[i] * pd[i]
		}
		return s
	}

	const h = 1e-5
	// Check parameter gradients (sample at most 25 coordinates per param to
	// bound test time).
	for _, p := range l.Params() {
		w := p.W.Data()
		g := p.Grad.Data()
		stride := len(w)/25 + 1
		for i := 0; i < len(w); i += stride {
			orig := w[i]
			w[i] = orig + h
			lp := objective()
			w[i] = orig - h
			lm := objective()
			w[i] = orig
			num := (lp - lm) / (2 * h)
			if !closeTo(num, g[i], tol) {
				t.Fatalf("param %s[%d]: analytic %g vs numeric %g", p.Name, i, g[i], num)
			}
		}
	}
	// Check input gradients.
	xd := x.Data()
	dxd := dx.Data()
	stride := len(xd)/25 + 1
	for i := 0; i < len(xd); i += stride {
		orig := xd[i]
		xd[i] = orig + h
		lp := objective()
		xd[i] = orig - h
		lm := objective()
		xd[i] = orig
		num := (lp - lm) / (2 * h)
		if !closeTo(num, dxd[i], tol) {
			t.Fatalf("input[%d]: analytic %g vs numeric %g", i, dxd[i], num)
		}
	}
}

func closeTo(a, b, tol float64) bool {
	d := math.Abs(a - b)
	if d <= tol {
		return true
	}
	return d <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func randInput(seed uint64, shape ...int) *tensor.Tensor {
	x := tensor.New(shape...)
	xrand.New(seed).FillNormal(x.Data(), 0, 1)
	return x
}

func TestGradCheckDense(t *testing.T) {
	rng := xrand.New(1)
	l := NewDense("fc", 7, 5, rng)
	gradCheck(t, l, randInput(2, 4, 7), 1e-5)
}

func TestGradCheckConv2D(t *testing.T) {
	rng := xrand.New(3)
	l := NewConv2D("conv", 2, 3, 3, 1, 1, rng)
	gradCheck(t, l, randInput(4, 2, 2, 5, 5), 1e-5)
}

func TestGradCheckConv2DStride2NoPad(t *testing.T) {
	rng := xrand.New(5)
	l := NewConv2D("conv", 3, 2, 3, 2, 0, rng)
	gradCheck(t, l, randInput(6, 2, 3, 7, 7), 1e-5)
}

func TestGradCheckDepthwiseConv2D(t *testing.T) {
	rng := xrand.New(7)
	l := NewDepthwiseConv2D("dw", 3, 3, 1, 1, rng)
	gradCheck(t, l, randInput(8, 2, 3, 5, 5), 1e-5)
}

func TestGradCheckDepthwiseConv2DStride2(t *testing.T) {
	rng := xrand.New(9)
	l := NewDepthwiseConv2D("dw", 2, 3, 2, 1, rng)
	gradCheck(t, l, randInput(10, 1, 2, 6, 6), 1e-5)
}

func TestGradCheckMaxPool(t *testing.T) {
	l := NewMaxPool2D(2, 2)
	// Use distinct values to avoid ties at the max (ties make the numeric
	// gradient ill-defined).
	x := randInput(11, 2, 2, 4, 4)
	gradCheck(t, l, x, 1e-5)
}

func TestGradCheckGlobalAvgPool(t *testing.T) {
	l := NewGlobalAvgPool2D()
	gradCheck(t, l, randInput(13, 3, 4, 3, 3), 1e-5)
}

func TestGradCheckReLU(t *testing.T) {
	l := NewReLU()
	// Shift inputs away from 0 where ReLU is non-differentiable.
	x := randInput(15, 4, 6)
	for i, v := range x.Data() {
		if math.Abs(v) < 0.05 {
			x.Data()[i] = v + 0.1
		}
	}
	gradCheck(t, l, x, 1e-5)
}

func TestGradCheckBatchNorm(t *testing.T) {
	l := NewBatchNorm2D("bn", 3)
	gradCheck(t, l, randInput(17, 4, 3, 3, 3), 1e-4)
}

func TestGradCheckResidualIdentity(t *testing.T) {
	rng := xrand.New(19)
	main := NewSequential(
		NewConv2D("r.c1", 2, 2, 3, 1, 1, rng),
		NewReLU(),
		NewConv2D("r.c2", 2, 2, 3, 1, 1, rng),
	)
	l := NewResidual(main, nil)
	gradCheck(t, l, randInput(21, 2, 2, 4, 4), 1e-5)
}

func TestGradCheckResidualProjection(t *testing.T) {
	rng := xrand.New(23)
	main := NewSequential(
		NewConv2D("r.c1", 2, 4, 3, 2, 1, rng),
		NewReLU(),
		NewConv2D("r.c2", 4, 4, 3, 1, 1, rng),
	)
	short := NewConv2D("r.proj", 2, 4, 1, 2, 0, rng)
	l := NewResidual(main, short)
	gradCheck(t, l, randInput(25, 2, 2, 4, 4), 1e-5)
}

func TestGradCheckSmallCNN(t *testing.T) {
	rng := xrand.New(27)
	net := NewSequential(
		NewConv2D("c1", 1, 3, 3, 1, 1, rng),
		NewReLU(),
		NewMaxPool2D(2, 2),
		NewFlatten(),
		NewDense("fc1", 3*3*3, 8, rng),
		NewReLU(),
		NewDense("fc2", 8, 4, rng),
	)
	gradCheck(t, net, randInput(29, 2, 1, 6, 6), 1e-4)
}
