package nn

import (
	"bytes"
	"math"
	"testing"

	"tdfm/internal/tensor"
	"tdfm/internal/xrand"
)

func TestDenseShapes(t *testing.T) {
	rng := xrand.New(1)
	d := NewDense("fc", 4, 3, rng)
	y := d.Forward(tensor.New(5, 4), false)
	if y.Dim(0) != 5 || y.Dim(1) != 3 {
		t.Fatalf("Dense output shape %v", y.Shape())
	}
	if d.InDim() != 4 || d.OutDim() != 3 {
		t.Fatal("dims accessor wrong")
	}
}

func TestDenseBiasApplied(t *testing.T) {
	rng := xrand.New(2)
	d := NewDense("fc", 2, 2, rng)
	d.Params()[0].W.Zero() // weights = 0
	copy(d.Params()[1].W.Data(), []float64{3, -1})
	y := d.Forward(tensor.New(1, 2), false)
	if y.At(0, 0) != 3 || y.At(0, 1) != -1 {
		t.Fatalf("bias not applied: %v", y)
	}
}

func TestDenseWrongInputPanics(t *testing.T) {
	rng := xrand.New(3)
	d := NewDense("fc", 4, 3, rng)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.Forward(tensor.New(5, 7), false)
}

func TestReLUForward(t *testing.T) {
	r := NewReLU()
	x := tensor.FromSlice([]float64{-1, 0, 2, -3}, 4)
	y := r.Forward(x, false)
	want := tensor.FromSlice([]float64{0, 0, 2, 0}, 4)
	if !y.Equal(want, 0) {
		t.Fatalf("ReLU = %v", y)
	}
	if x.At(0) != -1 {
		t.Fatal("ReLU mutated input")
	}
}

func TestDropoutInference(t *testing.T) {
	rng := xrand.New(4)
	d := NewDropout(0.5, rng)
	x := tensor.Full(1, 100)
	y := d.Forward(x, false)
	if !y.Equal(x, 0) {
		t.Fatal("dropout must be identity at inference")
	}
}

func TestDropoutTrainingPreservesExpectation(t *testing.T) {
	rng := xrand.New(5)
	d := NewDropout(0.3, rng)
	x := tensor.Full(1, 20000)
	y := d.Forward(x, true)
	if math.Abs(y.Mean()-1) > 0.03 {
		t.Fatalf("inverted dropout mean = %v, want ≈1", y.Mean())
	}
	// Survivors must be scaled by 1/(1-rate); dropped are exactly 0.
	for _, v := range y.Data() {
		if v != 0 && math.Abs(v-1/0.7) > 1e-12 {
			t.Fatalf("unexpected dropout value %v", v)
		}
	}
}

func TestDropoutZeroRateBackward(t *testing.T) {
	rng := xrand.New(6)
	d := NewDropout(0, rng)
	x := tensor.Full(2, 5)
	d.Forward(x, true)
	g := d.Backward(tensor.Full(1, 5))
	if !g.Equal(tensor.Full(1, 5), 0) {
		t.Fatal("zero-rate dropout should pass gradients through")
	}
}

func TestMaxPoolForwardValues(t *testing.T) {
	p := NewMaxPool2D(2, 2)
	x := tensor.FromSlice([]float64{
		1, 2, 5, 6,
		3, 4, 7, 8,
		9, 1, 2, 3,
		1, 1, 4, 1,
	}, 1, 1, 4, 4)
	y := p.Forward(x, false)
	want := tensor.FromSlice([]float64{4, 8, 9, 4}, 1, 1, 2, 2)
	if !y.Equal(want, 0) {
		t.Fatalf("MaxPool = %v, want %v", y, want)
	}
}

func TestGlobalAvgPoolValues(t *testing.T) {
	g := NewGlobalAvgPool2D()
	x := tensor.FromSlice([]float64{1, 2, 3, 4, 10, 20, 30, 40}, 1, 2, 2, 2)
	y := g.Forward(x, false)
	if y.At(0, 0) != 2.5 || y.At(0, 1) != 25 {
		t.Fatalf("GlobalAvgPool = %v", y)
	}
}

func TestFlattenRoundTrip(t *testing.T) {
	f := NewFlatten()
	x := tensor.New(2, 3, 4, 5)
	y := f.Forward(x, true)
	if y.Dim(0) != 2 || y.Dim(1) != 60 {
		t.Fatalf("Flatten shape %v", y.Shape())
	}
	back := f.Backward(tensor.New(2, 60))
	if back.Dims() != 4 || back.Dim(3) != 5 {
		t.Fatalf("Flatten backward shape %v", back.Shape())
	}
}

func TestBatchNormNormalizesTraining(t *testing.T) {
	bn := NewBatchNorm2D("bn", 2)
	rng := xrand.New(7)
	x := tensor.New(8, 2, 4, 4)
	rng.FillNormal(x.Data(), 5, 3) // far from standardized
	y := bn.Forward(x, true)
	// With gamma=1, beta=0 the per-channel output should be ≈ standard.
	for ch := 0; ch < 2; ch++ {
		sum, sum2, n := 0.0, 0.0, 0
		for img := 0; img < 8; img++ {
			for i := 0; i < 16; i++ {
				v := y.Data()[(img*2+ch)*16+i]
				sum += v
				sum2 += v * v
				n++
			}
		}
		mean := sum / float64(n)
		std := math.Sqrt(sum2/float64(n) - mean*mean)
		if math.Abs(mean) > 1e-9 || math.Abs(std-1) > 1e-3 {
			t.Fatalf("channel %d mean/std = %v/%v", ch, mean, std)
		}
	}
}

func TestBatchNormInferenceUsesRunningStats(t *testing.T) {
	bn := NewBatchNorm2D("bn", 1)
	rng := xrand.New(8)
	// Train on many batches so the running stats converge to (5, 9).
	for i := 0; i < 200; i++ {
		x := tensor.New(16, 1, 2, 2)
		rng.FillNormal(x.Data(), 5, 3)
		bn.Forward(x, true)
	}
	x := tensor.Full(5, 4, 1, 2, 2) // constant input at the running mean
	y := bn.Forward(x, false)
	if math.Abs(y.Mean()) > 0.1 {
		t.Fatalf("inference output mean = %v, want ≈0", y.Mean())
	}
}

func TestSequentialComposition(t *testing.T) {
	rng := xrand.New(9)
	net := NewSequential(NewDense("a", 4, 8, rng))
	net.Add(NewReLU(), NewDense("b", 8, 2, rng))
	if net.Len() != 3 {
		t.Fatalf("Len = %d", net.Len())
	}
	y := net.Forward(tensor.New(3, 4), false)
	if y.Dim(0) != 3 || y.Dim(1) != 2 {
		t.Fatalf("output shape %v", y.Shape())
	}
	if len(net.Params()) != 4 {
		t.Fatalf("param groups = %d, want 4", len(net.Params()))
	}
}

func TestParamCountAndZeroGrads(t *testing.T) {
	rng := xrand.New(10)
	net := NewSequential(NewDense("a", 3, 2, rng))
	if got := ParamCount(net); got != 3*2+2 {
		t.Fatalf("ParamCount = %d, want 8", got)
	}
	net.Params()[0].Grad.Fill(1)
	ZeroGrads(net)
	if net.Params()[0].Grad.Sum() != 0 {
		t.Fatal("ZeroGrads did not clear")
	}
}

func TestCopyWeights(t *testing.T) {
	r1, r2 := xrand.New(11), xrand.New(12)
	a := NewSequential(NewDense("fc", 3, 3, r1))
	b := NewSequential(NewDense("fc", 3, 3, r2))
	if err := CopyWeights(b, a); err != nil {
		t.Fatal(err)
	}
	x := tensor.Full(0.5, 2, 3)
	if !a.Forward(x, false).Equal(b.Forward(x, false), 0) {
		t.Fatal("CopyWeights did not make networks identical")
	}
	c := NewSequential(NewDense("fc", 3, 4, xrand.New(13)))
	if err := CopyWeights(c, a); err == nil {
		t.Fatal("expected shape-mismatch error")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	rng := xrand.New(14)
	build := func(r *xrand.RNG) *Sequential {
		return NewSequential(
			NewConv2D("c1", 1, 2, 3, 1, 1, r),
			NewBatchNorm2D("bn1", 2),
			NewReLU(),
			NewFlatten(),
			NewDense("fc", 2*4*4, 3, r),
		)
	}
	a := build(rng)
	// Train-forward once so BN has non-default running stats.
	x := tensor.New(4, 1, 4, 4)
	rng.FillNormal(x.Data(), 2, 1)
	a.Forward(x, true)

	var buf bytes.Buffer
	if err := TakeSnapshot(a).Encode(&buf); err != nil {
		t.Fatal(err)
	}
	snap, err := DecodeSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	b := build(xrand.New(15))
	if err := snap.Restore(b); err != nil {
		t.Fatal(err)
	}
	probe := tensor.New(2, 1, 4, 4)
	xrand.New(16).FillNormal(probe.Data(), 0, 1)
	if !a.Forward(probe, false).Equal(b.Forward(probe, false), 1e-12) {
		t.Fatal("snapshot round trip changed behaviour")
	}
}

func TestSnapshotMissingParam(t *testing.T) {
	rng := xrand.New(17)
	a := NewSequential(NewDense("fc1", 2, 2, rng))
	b := NewSequential(NewDense("fc2", 2, 2, rng))
	if err := TakeSnapshot(a).Restore(b); err == nil {
		t.Fatal("expected error for missing parameter name")
	}
}

func TestSaveLoadWeightsFile(t *testing.T) {
	rng := xrand.New(18)
	a := NewSequential(NewDense("fc", 4, 4, rng))
	path := t.TempDir() + "/w.gob"
	if err := SaveWeights(a, path); err != nil {
		t.Fatal(err)
	}
	b := NewSequential(NewDense("fc", 4, 4, xrand.New(19)))
	if err := LoadWeights(b, path); err != nil {
		t.Fatal(err)
	}
	x := tensor.Full(1, 1, 4)
	if !a.Forward(x, false).Equal(b.Forward(x, false), 0) {
		t.Fatal("weights differ after file round trip")
	}
}

func TestWalkVisitsNested(t *testing.T) {
	rng := xrand.New(20)
	inner := NewSequential(NewConv2D("c", 1, 1, 1, 1, 0, rng))
	res := NewResidual(inner, NewConv2D("p", 1, 1, 1, 1, 0, rng))
	net := NewSequential(res, NewReLU())
	count := 0
	Walk(net, func(Layer) { count++ })
	// net + res + relu + inner seq + conv c + conv p = 6
	if count != 6 {
		t.Fatalf("Walk visited %d layers, want 6", count)
	}
}
