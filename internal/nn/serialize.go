package nn

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"os"
)

// Snapshot is a serializable copy of a network's trainable parameters and
// batch-normalization running statistics, keyed by parameter name. Snapshots
// are used for golden-model caching, teacher cloning, and the save/load CLI.
type Snapshot struct {
	Params map[string]SavedTensor
	BNMean map[string][]float64
	BNVar  map[string][]float64
}

// SavedTensor is a shape-tagged flat tensor payload.
type SavedTensor struct {
	Shape []int
	Data  []float64
}

// Walk visits l and every nested layer reachable through Sequential and
// Residual containers, depth-first.
func Walk(l Layer, visit func(Layer)) {
	visit(l)
	switch v := l.(type) {
	case *Sequential:
		for _, child := range v.layers {
			Walk(child, visit)
		}
	case *Residual:
		Walk(v.main, visit)
		if v.shortcut != nil {
			Walk(v.shortcut, visit)
		}
	}
}

// TakeSnapshot captures the current weights of l.
func TakeSnapshot(l Layer) *Snapshot {
	s := &Snapshot{
		Params: make(map[string]SavedTensor),
		BNMean: make(map[string][]float64),
		BNVar:  make(map[string][]float64),
	}
	for _, p := range l.Params() {
		s.Params[p.Name] = SavedTensor{
			Shape: p.W.Shape(),
			Data:  append([]float64(nil), p.W.Data()...),
		}
	}
	Walk(l, func(layer Layer) {
		if bn, ok := layer.(*BatchNorm2D); ok {
			mean, variance := bn.RunningStats()
			s.BNMean[bn.gamma.Name] = mean
			s.BNVar[bn.gamma.Name] = variance
		}
	})
	return s
}

// Restore writes the snapshot's weights into l. Every parameter of l must be
// present in the snapshot with a matching shape.
func (s *Snapshot) Restore(l Layer) error {
	for _, p := range l.Params() {
		saved, ok := s.Params[p.Name]
		if !ok {
			return fmt.Errorf("nn: snapshot missing parameter %q", p.Name)
		}
		if len(saved.Data) != p.W.Size() {
			return fmt.Errorf("nn: snapshot parameter %q has %d values, want %d",
				p.Name, len(saved.Data), p.W.Size())
		}
		copy(p.W.Data(), saved.Data)
	}
	var restoreErr error
	Walk(l, func(layer Layer) {
		bn, ok := layer.(*BatchNorm2D)
		if !ok || restoreErr != nil {
			return
		}
		mean, okM := s.BNMean[bn.gamma.Name]
		variance, okV := s.BNVar[bn.gamma.Name]
		if !okM || !okV {
			return // snapshot predates BN stats; keep defaults
		}
		restoreErr = bn.SetRunningStats(mean, variance)
	})
	return restoreErr
}

// Encode writes the snapshot in gob format.
func (s *Snapshot) Encode(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(s); err != nil {
		return fmt.Errorf("nn: encoding snapshot: %w", err)
	}
	return nil
}

// DecodeSnapshot reads a snapshot in gob format.
func DecodeSnapshot(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("nn: decoding snapshot: %w", err)
	}
	return &s, nil
}

// SaveWeights writes l's snapshot to path.
func SaveWeights(l Layer, path string) error {
	var buf bytes.Buffer
	if err := TakeSnapshot(l).Encode(&buf); err != nil {
		return err
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		return fmt.Errorf("nn: writing weights to %s: %w", path, err)
	}
	return nil
}

// LoadWeights restores l's weights from path.
func LoadWeights(l Layer, path string) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("nn: reading weights from %s: %w", path, err)
	}
	s, err := DecodeSnapshot(bytes.NewReader(b))
	if err != nil {
		return err
	}
	return s.Restore(l)
}
