package tensor

import (
	"math"
	"testing"

	"tdfm/internal/xrand"
)

func TestF32RoundTrip(t *testing.T) {
	rng := xrand.New(11).Split("f32-roundtrip")
	x := New(3, 4)
	for i := range x.Data() {
		x.Data()[i] = rng.NormFloat64()
	}
	f := F32FromTensor(x)
	back := f.ToTensor()
	if !back.SameShape(x) {
		t.Fatalf("round trip shape %v, want %v", back.Shape(), x.Shape())
	}
	for i := range x.Data() {
		if math.Abs(back.Data()[i]-x.Data()[i]) > 1e-6*math.Abs(x.Data()[i])+1e-12 {
			t.Fatalf("round trip drift at %d: %v vs %v", i, back.Data()[i], x.Data()[i])
		}
	}
}

// TestF32MatMulExactOnSmallInts pins that the f32 kernel is the same
// algorithm as the f64 kernel: on small-integer inputs both are exact, so
// they must agree bit for bit after conversion.
func TestF32MatMulExactOnSmallInts(t *testing.T) {
	rng := xrand.New(11).Split("f32-matmul")
	a := New(5, 7)
	b := New(7, 6)
	for i := range a.Data() {
		a.Data()[i] = float64(rng.IntN(9) - 4)
	}
	for i := range b.Data() {
		b.Data()[i] = float64(rng.IntN(9) - 4)
	}
	want := a.MatMul(b)

	a32, b32 := F32FromTensor(a), F32FromTensor(b)
	got := a32.MatMulInto(NewF32(5, 6), b32).ToTensor()
	for i := range want.Data() {
		if got.Data()[i] != want.Data()[i] {
			t.Fatalf("f32 matmul differs at %d on exact inputs: %v vs %v", i, got.Data()[i], want.Data()[i])
		}
	}
}

// TestF32ConvPipelineParity runs the f32 im2col → matmul → rows-to-NCHW
// pipeline against the f64 one on random inputs and checks the results
// agree within single-precision tolerance.
func TestF32ConvPipelineParity(t *testing.T) {
	rng := xrand.New(11).Split("f32-conv")
	const n, c, h, w, outC = 2, 3, 8, 8, 4
	g := ConvGeom{KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	x := New(n, c, h, w)
	for i := range x.Data() {
		x.Data()[i] = rng.NormFloat64()
	}
	wgt := New(c*g.KH*g.KW, outC)
	for i := range wgt.Data() {
		wgt.Data()[i] = rng.NormFloat64() * 0.1
	}
	oh, ow := g.OutSize(h, w)

	cols := Im2Col(x, g)
	rows := cols.MatMul(wgt)
	want := RowsToNCHW(rows, n, outC, oh, ow)

	x32, w32 := F32FromTensor(x), F32FromTensor(wgt)
	cols32 := Im2ColF32Into(NewF32(n*oh*ow, c*g.KH*g.KW), x32, g)
	rows32 := cols32.MatMulInto(NewF32(n*oh*ow, outC), w32)
	got := RowsToNCHWF32Into(NewF32(n, outC, oh, ow), rows32).ToTensor()

	for i := range want.Data() {
		if math.Abs(got.Data()[i]-want.Data()[i]) > 1e-4 {
			t.Fatalf("f32 conv pipeline drift at %d: %v vs %v", i, got.Data()[i], want.Data()[i])
		}
	}
}

// TestIntoVariantsMatchAllocating pins the Into variants against their
// allocating counterparts bit for bit (they share kernels; this guards
// the wrappers' shape plumbing).
func TestIntoVariantsMatchAllocating(t *testing.T) {
	rng := xrand.New(11).Split("into-parity")
	const m, k, n = 9, 11, 8
	a := New(m, k)
	b := New(k, n)
	bt := New(n, k)
	at := New(k, m)
	for _, ten := range []*Tensor{a, b, bt, at} {
		for i := range ten.Data() {
			ten.Data()[i] = rng.NormFloat64()
		}
	}
	checks := []struct {
		name      string
		want, got *Tensor
	}{
		{"MatMul", a.MatMul(b), a.MatMulInto(New(m, n), b)},
		{"MatMulTransA", at.MatMulTransA(b), at.MatMulTransAInto(New(m, n), b)},
		{"MatMulTransB", a.MatMulTransB(bt), a.MatMulTransBInto(New(m, n), bt)},
		{"SumRows", a.SumRows(), a.SumRowsInto(New(k))},
	}
	for _, c := range checks {
		for i := range c.want.Data() {
			if c.want.Data()[i] != c.got.Data()[i] {
				t.Fatalf("%s Into variant differs at %d", c.name, i)
			}
		}
	}

	x := New(2, 3, 6, 6)
	for i := range x.Data() {
		x.Data()[i] = rng.NormFloat64()
	}
	g := ConvGeom{KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	oh, ow := g.OutSize(6, 6)
	wantCols := Im2Col(x, g)
	gotCols := Im2ColInto(New(2*oh*ow, 3*9), x, g)
	for i := range wantCols.Data() {
		if wantCols.Data()[i] != gotCols.Data()[i] {
			t.Fatalf("Im2ColInto differs at %d", i)
		}
	}
	wantIm := Col2Im(wantCols, 2, 3, 6, 6, g)
	gotIm := Col2ImInto(New(2, 3, 6, 6), wantCols, g)
	for i := range wantIm.Data() {
		if wantIm.Data()[i] != gotIm.Data()[i] {
			t.Fatalf("Col2ImInto differs at %d", i)
		}
	}
	rows := NCHWToRows(x)
	gotRows := NCHWToRowsInto(New(2*36, 3), x)
	for i := range rows.Data() {
		if rows.Data()[i] != gotRows.Data()[i] {
			t.Fatalf("NCHWToRowsInto differs at %d", i)
		}
	}
	wantBack := RowsToNCHW(rows, 2, 3, 6, 6)
	gotBack := RowsToNCHWInto(New(2, 3, 6, 6), rows)
	for i := range wantBack.Data() {
		if wantBack.Data()[i] != gotBack.Data()[i] {
			t.Fatalf("RowsToNCHWInto differs at %d", i)
		}
	}
}
