package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"tdfm/internal/xrand"
)

func TestNewZeroFilled(t *testing.T) {
	x := New(2, 3)
	if x.Size() != 6 {
		t.Fatalf("Size = %d, want 6", x.Size())
	}
	for i, v := range x.Data() {
		if v != 0 {
			t.Fatalf("element %d = %v, want 0", i, v)
		}
	}
}

func TestFromSliceCopiesAtBoundary(t *testing.T) {
	src := []float64{1, 2, 3, 4}
	x := FromSlice(src, 2, 2)
	src[0] = 99
	if x.At(0, 0) != 1 {
		t.Fatalf("FromSlice aliased caller slice: got %v", x.At(0, 0))
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	x := New(2, 3, 4)
	x.Set(7.5, 1, 2, 3)
	if got := x.At(1, 2, 3); got != 7.5 {
		t.Fatalf("At = %v, want 7.5", got)
	}
	// Row-major layout: index (1,2,3) = ((1*3)+2)*4+3 = 23.
	if x.Data()[23] != 7.5 {
		t.Fatalf("row-major layout violated")
	}
}

func TestIndexPanics(t *testing.T) {
	x := New(2, 2)
	for _, idx := range [][]int{{2, 0}, {0, -1}, {0}, {0, 0, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("At(%v) did not panic", idx)
				}
			}()
			x.At(idx...)
		}()
	}
}

func TestReshapeSharesStorage(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	y := x.Reshape(3, 2)
	y.Set(42, 0, 0)
	if x.At(0, 0) != 42 {
		t.Fatalf("Reshape must share storage")
	}
	z := x.Reshape(-1, 2)
	if z.Dim(0) != 3 {
		t.Fatalf("inferred dim = %d, want 3", z.Dim(0))
	}
}

func TestReshapeVolumeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 3).Reshape(4, 2)
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float64{10, 20, 30, 40}, 2, 2)
	if got := a.Add(b).Sum(); got != 110 {
		t.Errorf("Add sum = %v, want 110", got)
	}
	if got := b.Sub(a).Sum(); got != 90 {
		t.Errorf("Sub sum = %v, want 90", got)
	}
	if got := a.Mul(b).Sum(); got != 10+40+90+160 {
		t.Errorf("Mul sum = %v", got)
	}
	if got := a.Scale(2).Sum(); got != 20 {
		t.Errorf("Scale sum = %v, want 20", got)
	}
	c := a.Clone()
	c.AddScaledIn(0.5, b)
	want := FromSlice([]float64{6, 12, 18, 24}, 2, 2)
	if !c.Equal(want, 1e-12) {
		t.Errorf("AddScaledIn = %v, want %v", c, want)
	}
}

func TestApplyDoesNotMutate(t *testing.T) {
	a := FromSlice([]float64{1, 4, 9}, 3)
	b := a.Apply(math.Sqrt)
	if a.At(1) != 4 {
		t.Fatal("Apply mutated receiver")
	}
	if b.At(2) != 3 {
		t.Fatalf("Apply result wrong: %v", b)
	}
}

func TestReductions(t *testing.T) {
	a := FromSlice([]float64{3, -1, 4, 1, -5, 9}, 2, 3)
	if a.Sum() != 11 {
		t.Errorf("Sum = %v", a.Sum())
	}
	if math.Abs(a.Mean()-11.0/6) > 1e-12 {
		t.Errorf("Mean = %v", a.Mean())
	}
	if a.Max() != 9 || a.Min() != -5 {
		t.Errorf("Max/Min = %v/%v", a.Max(), a.Min())
	}
	if math.Abs(a.L2Norm()-math.Sqrt(9+1+16+1+25+81)) > 1e-12 {
		t.Errorf("L2Norm = %v", a.L2Norm())
	}
}

func TestArgMaxRows(t *testing.T) {
	a := FromSlice([]float64{
		0.1, 0.9, 0.0,
		0.5, 0.2, 0.3,
		0.0, 0.0, 1.0,
	}, 3, 3)
	got := a.ArgMaxRows()
	want := []int{1, 0, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ArgMaxRows = %v, want %v", got, want)
		}
	}
}

func TestMatMulKnownProduct(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	got := a.MatMul(b)
	want := FromSlice([]float64{58, 64, 139, 154}, 2, 2)
	if !got.Equal(want, 1e-12) {
		t.Fatalf("MatMul = %v, want %v", got, want)
	}
}

func TestMatMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 3).MatMul(New(2, 3))
}

func randMat(rng *xrand.RNG, m, n int) *Tensor {
	x := New(m, n)
	rng.FillNormal(x.Data(), 0, 1)
	return x
}

// MatMulTransA(a, b) must equal aᵀ × b computed the long way.
func TestMatMulTransAgainstExplicitTranspose(t *testing.T) {
	rng := xrand.New(1)
	for trial := 0; trial < 20; trial++ {
		m, k, n := 1+rng.IntN(6), 1+rng.IntN(6), 1+rng.IntN(6)
		a := randMat(rng, k, m)
		b := randMat(rng, k, n)
		got := a.MatMulTransA(b)
		want := a.Transpose2D().MatMul(b)
		if !got.Equal(want, 1e-9) {
			t.Fatalf("trial %d: MatMulTransA mismatch", trial)
		}
		c := randMat(rng, m, k)
		d := randMat(rng, n, k)
		got2 := c.MatMulTransB(d)
		want2 := c.MatMul(d.Transpose2D())
		if !got2.Equal(want2, 1e-9) {
			t.Fatalf("trial %d: MatMulTransB mismatch", trial)
		}
	}
}

// Property: matrix multiplication distributes over addition.
func TestQuickMatMulDistributive(t *testing.T) {
	rng := xrand.New(2)
	f := func(seed uint64) bool {
		r := xrand.New(seed%1000 + 1)
		m, k, n := 1+r.IntN(5), 1+r.IntN(5), 1+r.IntN(5)
		a := randMat(rng, m, k)
		b := randMat(rng, k, n)
		c := randMat(rng, k, n)
		left := a.MatMul(b.Add(c))
		right := a.MatMul(b).Add(a.MatMul(c))
		return left.Equal(right, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: (A·B)ᵀ = Bᵀ·Aᵀ.
func TestQuickMatMulTransposeIdentity(t *testing.T) {
	rng := xrand.New(3)
	f := func(seed uint64) bool {
		r := xrand.New(seed%1000 + 1)
		m, k, n := 1+r.IntN(5), 1+r.IntN(5), 1+r.IntN(5)
		a := randMat(rng, m, k)
		b := randMat(rng, k, n)
		left := a.MatMul(b).Transpose2D()
		right := b.Transpose2D().MatMul(a.Transpose2D())
		return left.Equal(right, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSumRowsAndAddRowVector(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	s := a.SumRows()
	want := FromSlice([]float64{5, 7, 9}, 3)
	if !s.Equal(want, 1e-12) {
		t.Fatalf("SumRows = %v, want %v", s, want)
	}
	v := FromSlice([]float64{10, 20, 30}, 3)
	a.AddRowVectorIn(v)
	want2 := FromSlice([]float64{11, 22, 33, 14, 25, 36}, 2, 3)
	if !a.Equal(want2, 1e-12) {
		t.Fatalf("AddRowVectorIn = %v, want %v", a, want2)
	}
}

func TestHasNaN(t *testing.T) {
	a := New(2, 2)
	if a.HasNaN() {
		t.Fatal("zero tensor reported NaN")
	}
	a.Set(math.NaN(), 0, 1)
	if !a.HasNaN() {
		t.Fatal("NaN not detected")
	}
	b := New(1)
	b.Set(math.Inf(1), 0)
	if !b.HasNaN() {
		t.Fatal("Inf not detected")
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := FromSlice([]float64{1, 2}, 2)
	b := a.Clone()
	b.Set(9, 0)
	if a.At(0) != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestStringTruncates(t *testing.T) {
	a := New(100)
	s := a.String()
	if len(s) == 0 || len(s) > 120 {
		t.Fatalf("String length %d unreasonable: %q", len(s), s)
	}
}
