package tensor

import "fmt"

// F32 is the float32 storage variant of Tensor, used by the inference-only
// precision mode (serve.Options.Precision): weights are converted once and
// activations flow through the same generic kernels at half the memory
// bandwidth. F32 deliberately exposes only the operations the float32
// inference twins need — training always runs in float64.
type F32 struct {
	shape []int
	data  []float32
}

// NewF32 returns a zero-filled float32 tensor with the given shape. It
// panics if any dimension is negative or the shape is empty.
func NewF32(shape ...int) *F32 {
	n := checkShape(shape)
	return &F32{shape: append([]int(nil), shape...), data: make([]float32, n)}
}

// F32FromTensor returns a float32 copy of t (each element rounded to
// nearest by the float32 conversion).
func F32FromTensor(t *Tensor) *F32 {
	f := &F32{shape: append([]int(nil), t.shape...), data: make([]float32, len(t.data))}
	for i, v := range t.data {
		f.data[i] = float32(v)
	}
	return f
}

// ToTensor returns a fresh float64 copy of f (every float32 value converts
// exactly). The result has ordinary GC-managed storage, so it may safely
// outlive any arena f was allocated from.
func (f *F32) ToTensor() *Tensor {
	t := &Tensor{shape: append([]int(nil), f.shape...), data: make([]float64, len(f.data))}
	for i, v := range f.data {
		t.data[i] = float64(v)
	}
	return t
}

// Shape returns a copy of the tensor's shape.
func (f *F32) Shape() []int { return append([]int(nil), f.shape...) }

// Dims returns the number of dimensions.
func (f *F32) Dims() int { return len(f.shape) }

// Dim returns the size of dimension i.
func (f *F32) Dim(i int) int { return f.shape[i] }

// Size returns the total number of elements.
func (f *F32) Size() int { return len(f.data) }

// Data returns the backing slice. Mutating it mutates the tensor.
func (f *F32) Data() []float32 { return f.data }

// Reshape returns a tensor sharing f's storage with a new shape of equal
// volume (no -1 inference; the f32 twins know their shapes exactly). It
// panics on volume mismatch.
func (f *F32) Reshape(shape ...int) *F32 {
	n := checkShape(shape)
	if n != len(f.data) {
		panic(fmt.Sprintf("tensor: reshape %v -> %v changes volume", f.shape, shape))
	}
	return &F32{shape: append([]int(nil), shape...), data: f.data}
}

// SliceRows returns a view of rows [lo, hi) along the leading dimension,
// sharing f's storage (see Tensor.SliceRows). It panics on an invalid
// range.
func (f *F32) SliceRows(lo, hi int) *F32 {
	if len(f.shape) == 0 {
		panic("tensor: SliceRows on empty shape")
	}
	if lo < 0 || hi < lo || hi > f.shape[0] {
		panic(fmt.Sprintf("tensor: SliceRows [%d,%d) out of range for leading dimension %d", lo, hi, f.shape[0]))
	}
	stride := 1
	for _, d := range f.shape[1:] {
		stride *= d
	}
	shape := append([]int(nil), f.shape...)
	shape[0] = hi - lo
	return &F32{shape: shape, data: f.data[lo*stride : hi*stride : hi*stride]}
}

// AddIn adds u to f elementwise in place. Shapes must match.
func (f *F32) AddIn(u *F32) *F32 {
	if len(f.data) != len(u.data) {
		panic(fmt.Sprintf("tensor: AddIn shape mismatch %v vs %v", f.shape, u.shape))
	}
	for i, v := range u.data {
		f.data[i] += v
	}
	return f
}

// AddRowVectorIn adds the [cols] vector v to every row of a [rows, cols]
// tensor in place.
func (f *F32) AddRowVectorIn(v *F32) *F32 {
	if len(f.shape) != 2 || len(v.shape) != 1 || v.shape[0] != f.shape[1] {
		panic(fmt.Sprintf("tensor: AddRowVectorIn shape mismatch %v + %v", f.shape, v.shape))
	}
	addRowVector(f.data, v.data, f.shape[0], f.shape[1])
	return f
}

// MatMulInto computes f × u into dst, a zero-filled [m,n] float32 tensor,
// and returns dst. Same cache-blocked kernel and determinism contract as
// Tensor.MatMul, instantiated at float32. It panics on non-2-D operands or
// any dimension mismatch.
func (f *F32) MatMulInto(dst, u *F32) *F32 {
	if len(f.shape) != 2 || len(u.shape) != 2 {
		panic(fmt.Sprintf("tensor: MatMul needs 2-d operands, got %v and %v", f.shape, u.shape))
	}
	m, k := f.shape[0], f.shape[1]
	k2, n := u.shape[0], u.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %v × %v", f.shape, u.shape))
	}
	if len(dst.shape) != 2 || dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulInto destination %v, want [%d,%d]", dst.shape, m, n))
	}
	gemm(dst.data, f.data, u.data, m, k, n)
	return dst
}

// Im2ColF32Into unrolls x, an [N,C,H,W] float32 tensor, into dst, a
// zero-filled [N*OH*OW, C*KH*KW] float32 matrix (see Im2ColInto). It
// returns dst.
func Im2ColF32Into(dst, x *F32, g ConvGeom) *F32 {
	if x.Dims() != 4 {
		panic(fmt.Sprintf("tensor: Im2Col needs [N,C,H,W], got %v", x.Shape()))
	}
	n, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	g.Validate(h, w)
	oh, ow := g.OutSize(h, w)
	if dst.Dims() != 2 || dst.shape[0] != n*oh*ow || dst.shape[1] != c*g.KH*g.KW {
		panic(fmt.Sprintf("tensor: Im2ColInto destination %v, want [%d,%d]", dst.Shape(), n*oh*ow, c*g.KH*g.KW))
	}
	im2colKernel(dst.data, x.data, n, c, h, w, g)
	return dst
}

// RowsToNCHWF32Into reinterprets position-major rows [N*OH*OW, C] as the
// [N,C,OH,OW] destination (see RowsToNCHWInto). It returns dst.
func RowsToNCHWF32Into(dst, rows *F32) *F32 {
	if dst.Dims() != 4 {
		panic(fmt.Sprintf("tensor: RowsToNCHWInto needs an [N,C,OH,OW] destination, got %v", dst.Shape()))
	}
	n, c, oh, ow := dst.shape[0], dst.shape[1], dst.shape[2], dst.shape[3]
	if rows.Dims() != 2 || rows.shape[0] != n*oh*ow || rows.shape[1] != c {
		panic(fmt.Sprintf("tensor: RowsToNCHW got %v, want [%d,%d]", rows.Shape(), n*oh*ow, c))
	}
	rowsToNCHWKernel(dst.data, rows.data, n, c, oh, ow)
	return dst
}

// ConvertToF32 copies t into dst, a float32 tensor of identical shape
// (typically arena-backed), rounding each element to nearest. It returns
// dst and panics on a shape mismatch.
func ConvertToF32(dst *F32, t *Tensor) *F32 {
	if len(dst.data) != len(t.data) {
		panic(fmt.Sprintf("tensor: ConvertToF32 shape mismatch %v vs %v", dst.shape, t.shape))
	}
	for i, v := range t.data {
		dst.data[i] = float32(v)
	}
	return dst
}
