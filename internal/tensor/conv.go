package tensor

import "fmt"

// ConvGeom describes the geometry of a 2-D convolution or pooling window
// applied to an input of spatial size H×W.
type ConvGeom struct {
	KH, KW     int // kernel size
	StrideH    int
	StrideW    int
	PadH, PadW int // symmetric zero padding
}

// OutSize returns the output spatial dimensions for an input of size h×w.
func (g ConvGeom) OutSize(h, w int) (oh, ow int) {
	oh = (h+2*g.PadH-g.KH)/g.StrideH + 1
	ow = (w+2*g.PadW-g.KW)/g.StrideW + 1
	return oh, ow
}

// Validate panics if the geometry is degenerate for an h×w input.
func (g ConvGeom) Validate(h, w int) {
	if g.KH <= 0 || g.KW <= 0 || g.StrideH <= 0 || g.StrideW <= 0 || g.PadH < 0 || g.PadW < 0 {
		panic(fmt.Sprintf("tensor: invalid conv geometry %+v", g))
	}
	oh, ow := g.OutSize(h, w)
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("tensor: conv geometry %+v produces empty output for %dx%d input", g, h, w))
	}
}

// SamePad returns the padding that keeps output size equal to input size for
// stride-1 odd kernels (the only "same" case the model zoo uses).
func SamePad(k int) int { return (k - 1) / 2 }

// Im2Col unrolls x, an [N, C, H, W] tensor, into a matrix of shape
// [N*OH*OW, C*KH*KW] where each row holds one receptive field. Padding is
// implicit zeros. The resulting matrix right-multiplied by a [C*KH*KW, OutC]
// weight matrix computes the convolution for every output position.
func Im2Col(x *Tensor, g ConvGeom) *Tensor {
	if x.Dims() != 4 {
		panic(fmt.Sprintf("tensor: Im2Col needs [N,C,H,W], got %v", x.Shape()))
	}
	n, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	g.Validate(h, w)
	oh, ow := g.OutSize(h, w)
	cols := New(n*oh*ow, c*g.KH*g.KW)
	colStride := c * g.KH * g.KW
	// Each image writes a disjoint block of rows, so image-sharding is
	// bit-identical to the serial loop for any worker count.
	pfor(n, n*oh*ow*colStride, func(imgLo, imgHi int) {
		for img := imgLo; img < imgHi; img++ {
			base := img * c * h * w
			for oy := 0; oy < oh; oy++ {
				iy0 := oy*g.StrideH - g.PadH
				for ox := 0; ox < ow; ox++ {
					ix0 := ox*g.StrideW - g.PadW
					row := ((img*oh+oy)*ow + ox) * colStride
					for ch := 0; ch < c; ch++ {
						chBase := base + ch*h*w
						for ky := 0; ky < g.KH; ky++ {
							iy := iy0 + ky
							dst := row + (ch*g.KH+ky)*g.KW
							if iy < 0 || iy >= h {
								continue // leave zeros
							}
							src := chBase + iy*w
							for kx := 0; kx < g.KW; kx++ {
								ix := ix0 + kx
								if ix < 0 || ix >= w {
									continue
								}
								cols.data[dst+kx] = x.data[src+ix]
							}
						}
					}
				}
			}
		}
	})
	return cols
}

// Col2Im is the adjoint of Im2Col: it scatters (accumulating on overlap) a
// [N*OH*OW, C*KH*KW] column matrix back into an [N, C, H, W] tensor. Used to
// compute input gradients of convolution layers.
func Col2Im(cols *Tensor, n, c, h, w int, g ConvGeom) *Tensor {
	g.Validate(h, w)
	oh, ow := g.OutSize(h, w)
	colStride := c * g.KH * g.KW
	if cols.Dims() != 2 || cols.shape[0] != n*oh*ow || cols.shape[1] != colStride {
		panic(fmt.Sprintf("tensor: Col2Im got %v, want [%d,%d]", cols.Shape(), n*oh*ow, colStride))
	}
	x := New(n, c, h, w)
	// Overlapping windows only accumulate within one image, so sharding by
	// image keeps the scatter deterministic and race-free.
	pfor(n, n*oh*ow*colStride, func(imgLo, imgHi int) {
		for img := imgLo; img < imgHi; img++ {
			base := img * c * h * w
			for oy := 0; oy < oh; oy++ {
				iy0 := oy*g.StrideH - g.PadH
				for ox := 0; ox < ow; ox++ {
					ix0 := ox*g.StrideW - g.PadW
					row := ((img*oh+oy)*ow + ox) * colStride
					for ch := 0; ch < c; ch++ {
						chBase := base + ch*h*w
						for ky := 0; ky < g.KH; ky++ {
							iy := iy0 + ky
							if iy < 0 || iy >= h {
								continue
							}
							src := row + (ch*g.KH+ky)*g.KW
							dst := chBase + iy*w
							for kx := 0; kx < g.KW; kx++ {
								ix := ix0 + kx
								if ix < 0 || ix >= w {
									continue
								}
								x.data[dst+ix] += cols.data[src+kx]
							}
						}
					}
				}
			}
		}
	})
	return x
}

// NCHWToRows converts an [N, C, OH, OW] activation produced as a
// [N*OH*OW, C] matmul result laid out position-major back and forth.
// RowsToNCHW reinterprets rows (position-major [N*OH*OW, C]) as NCHW.
func RowsToNCHW(rows *Tensor, n, c, oh, ow int) *Tensor {
	if rows.Dims() != 2 || rows.shape[0] != n*oh*ow || rows.shape[1] != c {
		panic(fmt.Sprintf("tensor: RowsToNCHW got %v, want [%d,%d]", rows.Shape(), n*oh*ow, c))
	}
	out := New(n, c, oh, ow)
	pfor(n, n*c*oh*ow, func(imgLo, imgHi int) {
		for img := imgLo; img < imgHi; img++ {
			for y := 0; y < oh; y++ {
				for x := 0; x < ow; x++ {
					row := ((img*oh+y)*ow + x) * c
					for ch := 0; ch < c; ch++ {
						out.data[((img*c+ch)*oh+y)*ow+x] = rows.data[row+ch]
					}
				}
			}
		}
	})
	return out
}

// NCHWToRows converts an [N, C, OH, OW] tensor to position-major rows
// [N*OH*OW, C]; the inverse of RowsToNCHW.
func NCHWToRows(x *Tensor) *Tensor {
	if x.Dims() != 4 {
		panic(fmt.Sprintf("tensor: NCHWToRows needs [N,C,H,W], got %v", x.Shape()))
	}
	n, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	out := New(n*h*w, c)
	pfor(n, n*c*h*w, func(imgLo, imgHi int) {
		for img := imgLo; img < imgHi; img++ {
			for ch := 0; ch < c; ch++ {
				for y := 0; y < h; y++ {
					for xx := 0; xx < w; xx++ {
						out.data[((img*h+y)*w+xx)*c+ch] = x.data[((img*c+ch)*h+y)*w+xx]
					}
				}
			}
		}
	})
	return out
}
