package tensor

import "fmt"

// ConvGeom describes the geometry of a 2-D convolution or pooling window
// applied to an input of spatial size H×W.
type ConvGeom struct {
	KH, KW     int // kernel size
	StrideH    int
	StrideW    int
	PadH, PadW int // symmetric zero padding
}

// OutSize returns the output spatial dimensions for an input of size h×w.
func (g ConvGeom) OutSize(h, w int) (oh, ow int) {
	oh = (h+2*g.PadH-g.KH)/g.StrideH + 1
	ow = (w+2*g.PadW-g.KW)/g.StrideW + 1
	return oh, ow
}

// Validate panics if the geometry is degenerate for an h×w input.
func (g ConvGeom) Validate(h, w int) {
	if g.KH <= 0 || g.KW <= 0 || g.StrideH <= 0 || g.StrideW <= 0 || g.PadH < 0 || g.PadW < 0 {
		panic(fmt.Sprintf("tensor: invalid conv geometry %+v", g))
	}
	oh, ow := g.OutSize(h, w)
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("tensor: conv geometry %+v produces empty output for %dx%d input", g, h, w))
	}
}

// SamePad returns the padding that keeps output size equal to input size for
// stride-1 odd kernels (the only "same" case the model zoo uses).
func SamePad(k int) int { return (k - 1) / 2 }

// Im2Col unrolls x, an [N, C, H, W] tensor, into a matrix of shape
// [N*OH*OW, C*KH*KW] where each row holds one receptive field. Padding is
// implicit zeros. The resulting matrix right-multiplied by a [C*KH*KW, OutC]
// weight matrix computes the convolution for every output position.
func Im2Col(x *Tensor, g ConvGeom) *Tensor {
	if x.Dims() != 4 {
		panic(fmt.Sprintf("tensor: Im2Col needs [N,C,H,W], got %v", x.Shape()))
	}
	n, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	g.Validate(h, w)
	oh, ow := g.OutSize(h, w)
	cols := New(n*oh*ow, c*g.KH*g.KW)
	// Each image writes a disjoint block of rows, so image-sharding is
	// bit-identical to the serial loop for any worker count (see
	// im2colKernel in kernels.go).
	im2colKernel(cols.data, x.data, n, c, h, w, g)
	return cols
}

// Im2ColInto is Im2Col with caller-owned output storage: dst must be a
// zero-filled [N*OH*OW, C*KH*KW] tensor (as returned by New, NewPooled, or
// Arena.Tensor — padded positions rely on the zeros). It returns dst and
// panics on a non-[N,C,H,W] input, degenerate geometry, or a destination
// of the wrong shape.
func Im2ColInto(dst, x *Tensor, g ConvGeom) *Tensor {
	if x.Dims() != 4 {
		panic(fmt.Sprintf("tensor: Im2Col needs [N,C,H,W], got %v", x.Shape()))
	}
	n, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	g.Validate(h, w)
	oh, ow := g.OutSize(h, w)
	if dst.Dims() != 2 || dst.shape[0] != n*oh*ow || dst.shape[1] != c*g.KH*g.KW {
		panic(fmt.Sprintf("tensor: Im2ColInto destination %v, want [%d,%d]", dst.Shape(), n*oh*ow, c*g.KH*g.KW))
	}
	im2colKernel(dst.data, x.data, n, c, h, w, g)
	return dst
}

// Col2Im is the adjoint of Im2Col: it scatters (accumulating on overlap) a
// [N*OH*OW, C*KH*KW] column matrix back into an [N, C, H, W] tensor. Used to
// compute input gradients of convolution layers.
func Col2Im(cols *Tensor, n, c, h, w int, g ConvGeom) *Tensor {
	g.Validate(h, w)
	oh, ow := g.OutSize(h, w)
	colStride := c * g.KH * g.KW
	if cols.Dims() != 2 || cols.shape[0] != n*oh*ow || cols.shape[1] != colStride {
		panic(fmt.Sprintf("tensor: Col2Im got %v, want [%d,%d]", cols.Shape(), n*oh*ow, colStride))
	}
	x := New(n, c, h, w)
	// Overlapping windows only accumulate within one image, so sharding by
	// image keeps the scatter deterministic and race-free (see
	// col2imKernel in kernels.go).
	col2imKernel(x.data, cols.data, n, c, h, w, g)
	return x
}

// Col2ImInto is Col2Im with caller-owned output storage: dst must be a
// zero-filled [N,C,H,W] tensor (the scatter accumulates into it). The
// geometry is taken from dst's shape. It returns dst and panics on a
// column matrix that does not match dst's shape and geometry.
func Col2ImInto(dst, cols *Tensor, g ConvGeom) *Tensor {
	if dst.Dims() != 4 {
		panic(fmt.Sprintf("tensor: Col2ImInto needs an [N,C,H,W] destination, got %v", dst.Shape()))
	}
	n, c, h, w := dst.shape[0], dst.shape[1], dst.shape[2], dst.shape[3]
	g.Validate(h, w)
	oh, ow := g.OutSize(h, w)
	colStride := c * g.KH * g.KW
	if cols.Dims() != 2 || cols.shape[0] != n*oh*ow || cols.shape[1] != colStride {
		panic(fmt.Sprintf("tensor: Col2Im got %v, want [%d,%d]", cols.Shape(), n*oh*ow, colStride))
	}
	col2imKernel(dst.data, cols.data, n, c, h, w, g)
	return dst
}

// NCHWToRows converts an [N, C, OH, OW] activation produced as a
// [N*OH*OW, C] matmul result laid out position-major back and forth.
// RowsToNCHW reinterprets rows (position-major [N*OH*OW, C]) as NCHW.
func RowsToNCHW(rows *Tensor, n, c, oh, ow int) *Tensor {
	if rows.Dims() != 2 || rows.shape[0] != n*oh*ow || rows.shape[1] != c {
		panic(fmt.Sprintf("tensor: RowsToNCHW got %v, want [%d,%d]", rows.Shape(), n*oh*ow, c))
	}
	out := New(n, c, oh, ow)
	rowsToNCHWKernel(out.data, rows.data, n, c, oh, ow)
	return out
}

// RowsToNCHWInto is RowsToNCHW with caller-owned output storage: the
// [N,C,OH,OW] geometry is taken from dst, whose every element is
// overwritten. It returns dst and panics if rows is not the matching
// position-major [N*OH*OW, C] matrix.
func RowsToNCHWInto(dst, rows *Tensor) *Tensor {
	if dst.Dims() != 4 {
		panic(fmt.Sprintf("tensor: RowsToNCHWInto needs an [N,C,OH,OW] destination, got %v", dst.Shape()))
	}
	n, c, oh, ow := dst.shape[0], dst.shape[1], dst.shape[2], dst.shape[3]
	if rows.Dims() != 2 || rows.shape[0] != n*oh*ow || rows.shape[1] != c {
		panic(fmt.Sprintf("tensor: RowsToNCHW got %v, want [%d,%d]", rows.Shape(), n*oh*ow, c))
	}
	rowsToNCHWKernel(dst.data, rows.data, n, c, oh, ow)
	return dst
}

// NCHWToRows converts an [N, C, OH, OW] tensor to position-major rows
// [N*OH*OW, C]; the inverse of RowsToNCHW.
func NCHWToRows(x *Tensor) *Tensor {
	if x.Dims() != 4 {
		panic(fmt.Sprintf("tensor: NCHWToRows needs [N,C,H,W], got %v", x.Shape()))
	}
	n, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	out := New(n*h*w, c)
	nchwToRowsKernel(out.data, x.data, n, c, h, w)
	return out
}

// NCHWToRowsInto is NCHWToRows with caller-owned output storage: dst must
// be the position-major [N*H*W, C] matrix for x's shape; every element is
// overwritten. It returns dst and panics on a shape mismatch.
func NCHWToRowsInto(dst, x *Tensor) *Tensor {
	if x.Dims() != 4 {
		panic(fmt.Sprintf("tensor: NCHWToRows needs [N,C,H,W], got %v", x.Shape()))
	}
	n, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	if dst.Dims() != 2 || dst.shape[0] != n*h*w || dst.shape[1] != c {
		panic(fmt.Sprintf("tensor: NCHWToRowsInto destination %v, want [%d,%d]", dst.Shape(), n*h*w, c))
	}
	nchwToRowsKernel(dst.data, x.data, n, c, h, w)
	return dst
}
