package tensor

import (
	"testing"
	"testing/quick"

	"tdfm/internal/xrand"
)

func TestConvGeomOutSize(t *testing.T) {
	cases := []struct {
		g      ConvGeom
		h, w   int
		oh, ow int
	}{
		{ConvGeom{KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}, 8, 8, 8, 8},
		{ConvGeom{KH: 3, KW: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1}, 8, 8, 4, 4},
		{ConvGeom{KH: 2, KW: 2, StrideH: 2, StrideW: 2}, 8, 8, 4, 4},
		{ConvGeom{KH: 1, KW: 1, StrideH: 1, StrideW: 1}, 5, 7, 5, 7},
	}
	for i, c := range cases {
		oh, ow := c.g.OutSize(c.h, c.w)
		if oh != c.oh || ow != c.ow {
			t.Errorf("case %d: OutSize = (%d,%d), want (%d,%d)", i, oh, ow, c.oh, c.ow)
		}
	}
}

func TestSamePad(t *testing.T) {
	if SamePad(3) != 1 || SamePad(1) != 0 || SamePad(5) != 2 {
		t.Fatal("SamePad wrong")
	}
}

// A 1×1 kernel with stride 1 makes Im2Col a pure layout change; verify it
// matches NCHWToRows.
func TestIm2ColIdentityKernel(t *testing.T) {
	rng := xrand.New(7)
	x := New(2, 3, 4, 4)
	rng.FillNormal(x.Data(), 0, 1)
	g := ConvGeom{KH: 1, KW: 1, StrideH: 1, StrideW: 1}
	cols := Im2Col(x, g)
	rows := NCHWToRows(x)
	if !cols.Equal(rows, 1e-12) {
		t.Fatal("Im2Col with 1x1 kernel should equal NCHWToRows")
	}
}

// Hand-checked 3×3 convolution via Im2Col + MatMul on a tiny input.
func TestIm2ColConvolutionByHand(t *testing.T) {
	// Single 1-channel 3x3 image counting 1..9.
	x := FromSlice([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9}, 1, 1, 3, 3)
	g := ConvGeom{KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	cols := Im2Col(x, g) // [9, 9]
	// Averaging kernel: all ones.
	w := Full(1, 9, 1)
	out := cols.MatMul(w) // [9,1], each = sum of 3x3 neighbourhood with zero pad
	// Centre output (position 1,1) sees the whole image: sum = 45.
	if got := out.At(4, 0); got != 45 {
		t.Fatalf("centre = %v, want 45", got)
	}
	// Corner (0,0) sees {1,2,4,5} = 12.
	if got := out.At(0, 0); got != 12 {
		t.Fatalf("corner = %v, want 12", got)
	}
}

// Col2Im must be the exact adjoint of Im2Col: <Im2Col(x), y> == <x, Col2Im(y)>.
// This is the property that makes convolution backprop correct.
func TestQuickCol2ImAdjoint(t *testing.T) {
	rng := xrand.New(11)
	f := func(seed uint64) bool {
		r := xrand.New(seed%997 + 1)
		n := 1 + r.IntN(2)
		c := 1 + r.IntN(3)
		h := 3 + r.IntN(4)
		w := 3 + r.IntN(4)
		k := 1 + 2*r.IntN(2) // 1 or 3
		stride := 1 + r.IntN(2)
		g := ConvGeom{KH: k, KW: k, StrideH: stride, StrideW: stride, PadH: SamePad(k), PadW: SamePad(k)}
		oh, ow := g.OutSize(h, w)
		if oh <= 0 || ow <= 0 {
			return true
		}
		x := New(n, c, h, w)
		rng.FillNormal(x.Data(), 0, 1)
		y := New(n*oh*ow, c*k*k)
		rng.FillNormal(y.Data(), 0, 1)

		lhs := 0.0
		cols := Im2Col(x, g)
		for i, v := range cols.Data() {
			lhs += v * y.Data()[i]
		}
		rhs := 0.0
		back := Col2Im(y, n, c, h, w, g)
		for i, v := range back.Data() {
			rhs += v * x.Data()[i]
		}
		return absDiff(lhs, rhs) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func absDiff(a, b float64) float64 {
	d := a - b
	if d < 0 {
		return -d
	}
	return d
}

func TestRowsToNCHWRoundTrip(t *testing.T) {
	rng := xrand.New(13)
	x := New(2, 3, 4, 5)
	rng.FillNormal(x.Data(), 0, 1)
	rows := NCHWToRows(x)
	back := RowsToNCHW(rows, 2, 3, 4, 5)
	if !back.Equal(x, 0) {
		t.Fatal("RowsToNCHW(NCHWToRows(x)) != x")
	}
}

func TestIm2ColBadShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 2-d input")
		}
	}()
	Im2Col(New(3, 3), ConvGeom{KH: 1, KW: 1, StrideH: 1, StrideW: 1})
}

func TestConvGeomValidatePanicsOnEmptyOutput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for oversized kernel")
		}
	}()
	ConvGeom{KH: 9, KW: 9, StrideH: 1, StrideW: 1}.Validate(3, 3)
}
