package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tdfm/internal/parallel"
)

// withParallelism runs body with the given per-op cap and a raised shared
// budget (so the parallel path is exercised even on single-core runners),
// restoring the defaults afterwards.
func withParallelism(t *testing.T, n int, body func()) {
	t.Helper()
	parallel.SetBudget(2 * n)
	SetParallelism(n)
	defer func() {
		SetParallelism(0)
		parallel.SetBudget(0)
	}()
	body()
}

func randMatStd(rng *rand.Rand, rows, cols int) *Tensor {
	m := New(rows, cols)
	d := m.Data()
	for i := range d {
		d[i] = rng.NormFloat64()
		if rng.Intn(8) == 0 {
			d[i] = 0 // exercise the skip-zero fast path
		}
	}
	return m
}

// serialThen recomputes op at Parallelism()==1 and compares bitwise with
// the result at the ambient (parallel) setting.
func assertBitIdentical(t *testing.T, name string, par, serial *Tensor) {
	t.Helper()
	if !par.SameShape(serial) {
		t.Fatalf("%s: shape %v vs serial %v", name, par.Shape(), serial.Shape())
	}
	pd, sd := par.Data(), serial.Data()
	for i := range pd {
		if pd[i] != sd[i] {
			t.Fatalf("%s: element %d differs: parallel %v vs serial %v", name, i, pd[i], sd[i])
		}
	}
}

// TestParallelMatMulOddShapes checks the exact-match contract on the shapes
// most likely to break sharding: fewer rows than workers, rows not a
// multiple of the worker count, single-row and single-column operands, and
// sizes straddling the serial threshold.
func TestParallelMatMulOddShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shapes := []struct{ m, k, n int }{
		{1, 300, 120}, // 1×N row vector, above threshold
		{300, 120, 1}, // N×1 column output
		{3, 200, 90},  // fewer rows than workers
		{7, 97, 53},   // rows % workers != 0, odd everything
		{13, 64, 48},  // just above minParOps
		{5, 6, 7},     // far below threshold (serial fast path)
	}
	withParallelism(t, 8, func() {
		for _, s := range shapes {
			a := randMatStd(rng, s.m, s.k)
			b := randMatStd(rng, s.k, s.n)
			at := a.Transpose2D() // [k, m]
			bt := b.Transpose2D() // [n, k]

			par := a.MatMul(b)
			parTA := at.MatMulTransA(b)
			parTB := a.MatMulTransB(bt)

			SetParallelism(1)
			assertBitIdentical(t, "MatMul", par, a.MatMul(b))
			assertBitIdentical(t, "MatMulTransA", parTA, at.MatMulTransA(b))
			assertBitIdentical(t, "MatMulTransB", parTB, a.MatMulTransB(bt))
			SetParallelism(8)
		}
	})
}

// TestParallelMatMulProperty drives randomized shapes through testing/quick.
func TestParallelMatMulProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	withParallelism(t, 4, func() {
		prop := func(mRaw, kRaw, nRaw uint8) bool {
			m, k, n := int(mRaw%40)+1, int(kRaw%60)+1, int(nRaw%40)+1
			a := randMatStd(rng, m, k)
			b := randMatStd(rng, k, n)
			par := a.MatMul(b)
			SetParallelism(1)
			serial := a.MatMul(b)
			SetParallelism(4)
			return par.Equal(serial, 0)
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
			t.Fatal(err)
		}
	})
}

// TestParallelConvTransforms checks Im2Col/Col2Im and the NCHW layout
// transforms at parallel settings against the serial path, including
// batches smaller than the worker count and stride/padding combinations.
func TestParallelConvTransforms(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	geoms := []ConvGeom{
		{KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1},
		{KH: 3, KW: 3, StrideH: 2, StrideW: 2, PadH: 0, PadW: 0},
		{KH: 5, KW: 5, StrideH: 1, StrideW: 1, PadH: 2, PadW: 2},
	}
	batches := []int{1, 3, 7, 16}
	withParallelism(t, 8, func() {
		for _, g := range geoms {
			for _, n := range batches {
				x := New(n, 3, 11, 11)
				d := x.Data()
				for i := range d {
					d[i] = rng.NormFloat64()
				}
				oh, ow := g.OutSize(11, 11)

				cols := Im2Col(x, g)
				back := Col2Im(cols, n, 3, 11, 11, g)
				rows := NCHWToRows(x)
				nchw := RowsToNCHW(rows, n, 3, 11, 11)

				SetParallelism(1)
				assertBitIdentical(t, "Im2Col", cols, Im2Col(x, g))
				assertBitIdentical(t, "Col2Im", back, Col2Im(cols, n, 3, 11, 11, g))
				assertBitIdentical(t, "NCHWToRows", rows, NCHWToRows(x))
				assertBitIdentical(t, "RowsToNCHW", nchw, RowsToNCHW(rows, n, 3, 11, 11))
				SetParallelism(8)
				_ = oh
				_ = ow
			}
		}
	})
}

func TestSetParallelismDefaults(t *testing.T) {
	SetParallelism(3)
	if Parallelism() != 3 {
		t.Fatalf("Parallelism() = %d, want 3", Parallelism())
	}
	SetParallelism(0)
	if Parallelism() < 1 {
		t.Fatalf("Parallelism() = %d after reset", Parallelism())
	}
	SetParallelism(-5)
	if Parallelism() < 1 {
		t.Fatalf("Parallelism() = %d after negative reset", Parallelism())
	}
}
