package tensor

// Benchmarks for the batch-first conv path: one Im2Col + one cache-blocked
// MatMul over a whole [N, C, H, W] batch versus the same work issued one
// example at a time. The gated TestEmitTensorBenchJSON runs them through
// testing.Benchmark and writes the measured trajectory to the path in
// TDFM_BENCH_OUT (the committed BENCH_tensor.json baseline; see `make
// bench-serve`). TDFM_BENCH_SHORT=1 trims the batch list for CI.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"tdfm/internal/xrand"
)

// convBenchGeom is the benchmark conv workload: 3→32 channels, 3×3
// same-pad kernel over 16×16 inputs — the shape class the model zoo's
// first conv layers run on the study datasets.
var convBenchGeom = ConvGeom{KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}

const (
	convBenchC    = 3
	convBenchHW   = 16
	convBenchOutC = 32
)

// convBenchInput builds a deterministic [n, C, H, W] batch and the conv
// weight matrix shaped for Im2Col output.
func convBenchInput(n int) (*Tensor, *Tensor) {
	rng := xrand.New(11).Split("bench-conv")
	x := New(n, convBenchC, convBenchHW, convBenchHW)
	for i := range x.Data() {
		x.Data()[i] = rng.Float64() - 0.5
	}
	w := New(convBenchC*convBenchGeom.KH*convBenchGeom.KW, convBenchOutC)
	for i := range w.Data() {
		w.Data()[i] = rng.Float64() - 0.5
	}
	return x, w
}

// convBatched is one batched conv: a single Im2Col over all n images and
// one blocked MatMul.
func convBatched(x, w *Tensor) *Tensor {
	return Im2Col(x, convBenchGeom).MatMul(w)
}

// convPerExample issues the identical arithmetic one image at a time —
// the shape of work a per-request serving path generates.
func convPerExample(x, w *Tensor) []*Tensor {
	n := x.Dim(0)
	out := make([]*Tensor, n)
	for i := 0; i < n; i++ {
		out[i] = Im2Col(x.SliceRows(i, i+1), convBenchGeom).MatMul(w)
	}
	return out
}

// convBatchedPooled is convBatched with pool-owned storage: the column
// matrix and the product come from NewPooled and return via Release, so
// steady-state iterations recycle buffers instead of allocating. With
// pooling disabled it degenerates to exactly the allocate-per-call path,
// which is what the alloc benchmark's unpooled leg measures.
func convBatchedPooled(x, w *Tensor) {
	n, h, wd := x.Dim(0), x.Dim(2), x.Dim(3)
	oh, ow := convBenchGeom.OutSize(h, wd)
	cols := NewPooled(n*oh*ow, convBenchC*convBenchGeom.KH*convBenchGeom.KW)
	out := NewPooled(n*oh*ow, convBenchOutC)
	Im2ColInto(cols, x, convBenchGeom)
	cols.MatMulInto(out, w)
	cols.Release()
	out.Release()
}

// convBatchedF32 is the float32 flavour of convBatched, built from the
// inference-precision kernels. It allocates its outputs fresh each call so
// the B/op column directly reflects the storage-width saving over f64.
func convBatchedF32(x, w *F32) *F32 {
	n, h, wd := x.Dim(0), x.Dim(2), x.Dim(3)
	oh, ow := convBenchGeom.OutSize(h, wd)
	cols := NewF32(n*oh*ow, convBenchC*convBenchGeom.KH*convBenchGeom.KW)
	Im2ColF32Into(cols, x, convBenchGeom)
	return cols.MatMulInto(NewF32(n*oh*ow, convBenchOutC), w)
}

func benchConv(b *testing.B, n int, batched bool) {
	x, w := convBenchInput(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if batched {
			convBatched(x, w)
		} else {
			convPerExample(x, w)
		}
	}
	b.ReportMetric(float64(b.N*n)/b.Elapsed().Seconds(), "rows/s")
}

func BenchmarkConvIm2ColMatMul(b *testing.B) {
	for _, n := range []int{1, 8, 32, 128} {
		b.Run(fmt.Sprintf("per-example/n=%d", n), func(b *testing.B) { benchConv(b, n, false) })
		b.Run(fmt.Sprintf("batched/n=%d", n), func(b *testing.B) { benchConv(b, n, true) })
	}
}

// benchAllocConv measures the batched conv through the pool-aware path
// with pooling forced on or off. One warm-up call primes the pool so the
// pooled leg reports its steady state rather than first-touch misses.
func benchAllocConv(b *testing.B, n int, pooled bool) {
	old := PoolingEnabled()
	SetPooling(pooled)
	defer SetPooling(old)
	x, w := convBenchInput(n)
	convBatchedPooled(x, w)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		convBatchedPooled(x, w)
	}
	b.ReportMetric(float64(b.N*n)/b.Elapsed().Seconds(), "rows/s")
}

// benchConvPrecision measures the batched conv at the given storage width
// with pooling disabled on both sides, so the B/op delta isolates float32
// versus float64 storage rather than buffer reuse. Conversion of the
// inputs and weights happens once, outside the timer, matching how the
// serving layer converts an ensemble once at startup.
func benchConvPrecision(b *testing.B, n int, f32 bool) {
	old := PoolingEnabled()
	SetPooling(false)
	defer SetPooling(old)
	x, w := convBenchInput(n)
	if f32 {
		x32, w32 := F32FromTensor(x), F32FromTensor(w)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			convBatchedF32(x32, w32)
		}
	} else {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			convBatched(x, w)
		}
	}
	b.ReportMetric(float64(b.N*n)/b.Elapsed().Seconds(), "rows/s")
}

// BenchmarkAllocConv tracks the conv path's allocation rate with the
// buffer pool on versus off (run with -benchmem; the allocs/op and B/op
// columns are the point).
func BenchmarkAllocConv(b *testing.B) {
	b.Run("pooled", func(b *testing.B) { benchAllocConv(b, 32, true) })
	b.Run("unpooled", func(b *testing.B) { benchAllocConv(b, 32, false) })
}

// BenchmarkConvPrecision compares the f64 and f32 conv kernels at equal
// geometry (run with -benchmem; f32 should roughly halve B/op).
func BenchmarkConvPrecision(b *testing.B) {
	b.Run("f64", func(b *testing.B) { benchConvPrecision(b, 32, false) })
	b.Run("f32", func(b *testing.B) { benchConvPrecision(b, 32, true) })
}

// benchRecord is one measured configuration in a BENCH_*.json trajectory.
type benchRecord struct {
	Name       string  `json:"name"`
	Rows       int     `json:"rows"`
	NsPerRow   float64 `json:"ns_per_row"`
	RowsPerSec float64 `json:"rows_per_sec"`
	// Memory columns, filled only by measureAlloc (per benchmark op, not
	// per row, mirroring -benchmem).
	AllocsPerOp int64 `json:"allocs_per_op,omitempty"`
	BytesPerOp  int64 `json:"bytes_per_op,omitempty"`
}

// benchFile is the committed benchmark baseline format shared by
// BENCH_tensor.json and BENCH_serve.json.
type benchFile struct {
	Suite      string             `json:"suite"`
	Go         string             `json:"go"`
	MaxProcs   int                `json:"maxprocs"`
	Benchmarks []benchRecord      `json:"benchmarks"`
	Speedups   map[string]float64 `json:"speedups"`
}

// writeBenchFile marshals f to path with a trailing newline.
func writeBenchFile(path string, f benchFile) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// benchReps is how many times each record reruns testing.Benchmark; the
// fastest repetition is kept. On a shared single-core host the slower
// repetitions measure scheduler interference, not the code, and the
// committed baseline should measure the code.
const benchReps = 3

// bestOf returns the fastest of benchReps testing.Benchmark runs of fn.
func bestOf(fn func(b *testing.B)) testing.BenchmarkResult {
	best := testing.Benchmark(fn)
	for i := 1; i < benchReps; i++ {
		if r := testing.Benchmark(fn); r.NsPerOp() < best.NsPerOp() {
			best = r
		}
	}
	return best
}

// measureRows runs fn through bestOf and converts the result to a
// per-row record, where each fn iteration processes rows rows.
func measureRows(name string, rows int, fn func(b *testing.B)) benchRecord {
	r := bestOf(fn)
	perRow := float64(r.T.Nanoseconds()) / float64(r.N*rows)
	return benchRecord{
		Name:       name,
		Rows:       rows,
		NsPerRow:   perRow,
		RowsPerSec: 1e9 / perRow,
	}
}

// measureAlloc is measureRows with the -benchmem columns attached: fn runs
// with allocation tracking and the record carries allocs/op and B/op.
func measureAlloc(name string, rows int, fn func(b *testing.B)) benchRecord {
	r := bestOf(func(b *testing.B) { b.ReportAllocs(); fn(b) })
	perRow := float64(r.T.Nanoseconds()) / float64(r.N*rows)
	return benchRecord{
		Name:        name,
		Rows:        rows,
		NsPerRow:    perRow,
		RowsPerSec:  1e9 / perRow,
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// ratio returns a/b guarding against a zero denominator (a perfectly
// allocation-free pooled leg would otherwise divide by zero).
func ratio(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// TestEmitTensorBenchJSON measures the per-example versus batched conv
// trajectory and writes it to TDFM_BENCH_OUT. Gated: without the env var
// the test skips, so the ordinary test run never spends benchmark time.
func TestEmitTensorBenchJSON(t *testing.T) {
	out := os.Getenv("TDFM_BENCH_OUT")
	if out == "" {
		t.Skip("TDFM_BENCH_OUT not set")
	}
	sizes := []int{1, 8, 32, 128}
	if os.Getenv("TDFM_BENCH_SHORT") != "" {
		sizes = []int{1, 32}
	}
	f := benchFile{
		Suite:    "tensor-conv",
		Go:       runtime.Version() + " " + runtime.GOOS + "/" + runtime.GOARCH,
		MaxProcs: runtime.GOMAXPROCS(0),
		Speedups: map[string]float64{},
	}
	perRow := map[string]float64{}
	for _, n := range sizes {
		n := n
		single := measureRows(fmt.Sprintf("conv/per-example/n=%d", n), n,
			func(b *testing.B) { benchConv(b, n, false) })
		batched := measureRows(fmt.Sprintf("conv/batched/n=%d", n), n,
			func(b *testing.B) { benchConv(b, n, true) })
		f.Benchmarks = append(f.Benchmarks, single, batched)
		perRow[single.Name], perRow[batched.Name] = single.NsPerRow, batched.NsPerRow
		f.Speedups[fmt.Sprintf("batched_vs_per_example_n%d", n)] =
			single.NsPerRow / batched.NsPerRow
	}

	// Memory rows: pool on/off through the same code path, then f64
	// versus f32 kernels with pooling off on both sides.
	const allocN = 32
	pooled := measureAlloc(fmt.Sprintf("alloc/conv/pooled/n=%d", allocN), allocN,
		func(b *testing.B) { benchAllocConv(b, allocN, true) })
	unpooled := measureAlloc(fmt.Sprintf("alloc/conv/unpooled/n=%d", allocN), allocN,
		func(b *testing.B) { benchAllocConv(b, allocN, false) })
	f64c := measureAlloc(fmt.Sprintf("conv/f64/n=%d", allocN), allocN,
		func(b *testing.B) { benchConvPrecision(b, allocN, false) })
	f32c := measureAlloc(fmt.Sprintf("conv/f32/n=%d", allocN), allocN,
		func(b *testing.B) { benchConvPrecision(b, allocN, true) })
	f.Benchmarks = append(f.Benchmarks, pooled, unpooled, f64c, f32c)
	f.Speedups[fmt.Sprintf("conv_allocs_unpooled_vs_pooled_n%d", allocN)] =
		ratio(unpooled.AllocsPerOp, pooled.AllocsPerOp)
	f.Speedups[fmt.Sprintf("conv_bytes_unpooled_vs_pooled_n%d", allocN)] =
		ratio(unpooled.BytesPerOp, pooled.BytesPerOp)
	f.Speedups[fmt.Sprintf("conv_bytes_f64_vs_f32_n%d", allocN)] =
		ratio(f64c.BytesPerOp, f32c.BytesPerOp)

	if err := writeBenchFile(out, f); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (%d records)", out, len(f.Benchmarks))
}
