package tensor

// Benchmarks for the batch-first conv path: one Im2Col + one cache-blocked
// MatMul over a whole [N, C, H, W] batch versus the same work issued one
// example at a time. The gated TestEmitTensorBenchJSON runs them through
// testing.Benchmark and writes the measured trajectory to the path in
// TDFM_BENCH_OUT (the committed BENCH_tensor.json baseline; see `make
// bench-serve`). TDFM_BENCH_SHORT=1 trims the batch list for CI.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"tdfm/internal/xrand"
)

// convBenchGeom is the benchmark conv workload: 3→32 channels, 3×3
// same-pad kernel over 16×16 inputs — the shape class the model zoo's
// first conv layers run on the study datasets.
var convBenchGeom = ConvGeom{KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}

const (
	convBenchC    = 3
	convBenchHW   = 16
	convBenchOutC = 32
)

// convBenchInput builds a deterministic [n, C, H, W] batch and the conv
// weight matrix shaped for Im2Col output.
func convBenchInput(n int) (*Tensor, *Tensor) {
	rng := xrand.New(11).Split("bench-conv")
	x := New(n, convBenchC, convBenchHW, convBenchHW)
	for i := range x.Data() {
		x.Data()[i] = rng.Float64() - 0.5
	}
	w := New(convBenchC*convBenchGeom.KH*convBenchGeom.KW, convBenchOutC)
	for i := range w.Data() {
		w.Data()[i] = rng.Float64() - 0.5
	}
	return x, w
}

// convBatched is one batched conv: a single Im2Col over all n images and
// one blocked MatMul.
func convBatched(x, w *Tensor) *Tensor {
	return Im2Col(x, convBenchGeom).MatMul(w)
}

// convPerExample issues the identical arithmetic one image at a time —
// the shape of work a per-request serving path generates.
func convPerExample(x, w *Tensor) []*Tensor {
	n := x.Dim(0)
	out := make([]*Tensor, n)
	for i := 0; i < n; i++ {
		out[i] = Im2Col(x.SliceRows(i, i+1), convBenchGeom).MatMul(w)
	}
	return out
}

func benchConv(b *testing.B, n int, batched bool) {
	x, w := convBenchInput(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if batched {
			convBatched(x, w)
		} else {
			convPerExample(x, w)
		}
	}
	b.ReportMetric(float64(b.N*n)/b.Elapsed().Seconds(), "rows/s")
}

func BenchmarkConvIm2ColMatMul(b *testing.B) {
	for _, n := range []int{1, 8, 32, 128} {
		b.Run(fmt.Sprintf("per-example/n=%d", n), func(b *testing.B) { benchConv(b, n, false) })
		b.Run(fmt.Sprintf("batched/n=%d", n), func(b *testing.B) { benchConv(b, n, true) })
	}
}

// benchRecord is one measured configuration in a BENCH_*.json trajectory.
type benchRecord struct {
	Name       string  `json:"name"`
	Rows       int     `json:"rows"`
	NsPerRow   float64 `json:"ns_per_row"`
	RowsPerSec float64 `json:"rows_per_sec"`
}

// benchFile is the committed benchmark baseline format shared by
// BENCH_tensor.json and BENCH_serve.json.
type benchFile struct {
	Suite      string             `json:"suite"`
	Go         string             `json:"go"`
	MaxProcs   int                `json:"maxprocs"`
	Benchmarks []benchRecord      `json:"benchmarks"`
	Speedups   map[string]float64 `json:"speedups"`
}

// writeBenchFile marshals f to path with a trailing newline.
func writeBenchFile(path string, f benchFile) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// measureRows runs fn through testing.Benchmark and converts the result
// to a per-row record, where each fn iteration processes rows rows.
func measureRows(name string, rows int, fn func(b *testing.B)) benchRecord {
	r := testing.Benchmark(fn)
	perRow := float64(r.T.Nanoseconds()) / float64(r.N*rows)
	return benchRecord{
		Name:       name,
		Rows:       rows,
		NsPerRow:   perRow,
		RowsPerSec: 1e9 / perRow,
	}
}

// TestEmitTensorBenchJSON measures the per-example versus batched conv
// trajectory and writes it to TDFM_BENCH_OUT. Gated: without the env var
// the test skips, so the ordinary test run never spends benchmark time.
func TestEmitTensorBenchJSON(t *testing.T) {
	out := os.Getenv("TDFM_BENCH_OUT")
	if out == "" {
		t.Skip("TDFM_BENCH_OUT not set")
	}
	sizes := []int{1, 8, 32, 128}
	if os.Getenv("TDFM_BENCH_SHORT") != "" {
		sizes = []int{1, 32}
	}
	f := benchFile{
		Suite:    "tensor-conv",
		Go:       runtime.Version() + " " + runtime.GOOS + "/" + runtime.GOARCH,
		MaxProcs: runtime.GOMAXPROCS(0),
		Speedups: map[string]float64{},
	}
	perRow := map[string]float64{}
	for _, n := range sizes {
		n := n
		single := measureRows(fmt.Sprintf("conv/per-example/n=%d", n), n,
			func(b *testing.B) { benchConv(b, n, false) })
		batched := measureRows(fmt.Sprintf("conv/batched/n=%d", n), n,
			func(b *testing.B) { benchConv(b, n, true) })
		f.Benchmarks = append(f.Benchmarks, single, batched)
		perRow[single.Name], perRow[batched.Name] = single.NsPerRow, batched.NsPerRow
		f.Speedups[fmt.Sprintf("batched_vs_per_example_n%d", n)] =
			single.NsPerRow / batched.NsPerRow
	}
	if err := writeBenchFile(out, f); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (%d records)", out, len(f.Benchmarks))
}
