package tensor

import (
	"fmt"
	"math/bits"
	"os"
	"strings"
	"sync"
	"sync/atomic"
)

// Buffer pooling (DESIGN.md §10, "Memory model").
//
// The hot paths — batched inference and the training loop — allocate the
// same handful of buffer sizes over and over (im2col scratch, matmul
// outputs, activations). This file provides two reuse layers on top of a
// size-bucketed global pool:
//
//   - GetBuf/PutBuf: a process-wide, size-bucketed sync.Pool. Buffers are
//     grouped by power-of-two capacity; GetBuf returns a zero-filled slice
//     (exactly like make), so pooled and unpooled runs are byte-identical.
//   - Arena: a per-network freelist for the training loop and inference
//     path. Arena allocations are recycled wholesale by Reset at safe
//     points (end of a training batch, end of an inference chunk) instead
//     of being returned individually.
//
// Pooling is on by default and can be disabled with TDFM_POOL=off (or via
// SetPooling in tests); with pooling off every allocation falls through to
// plain make, which is the reference behaviour the byte-identity property
// tests compare against.

// numBuckets bounds the pooled size classes: bucket b holds slices of
// capacity 1<<b elements, so the largest class is far beyond any
// allocatable tensor and GetBuf never needs an overflow path.
const numBuckets = 34

var (
	poolEnabled atomic.Bool

	pool64 [numBuckets]sync.Pool
	pool32 [numBuckets]sync.Pool

	// boxes64/boxes32 cache the *[]E headers that carry slices through the
	// bucket pools: storing a slice in an interface heap-allocates its
	// header, storing a pointer does not, so recycling the header keeps the
	// steady-state PutBuf/GetBuf round trip allocation-free.
	boxes64 sync.Pool
	boxes32 sync.Pool

	poolHits   atomic.Uint64
	poolMisses atomic.Uint64
	poolBytes  atomic.Uint64
)

func init() {
	poolEnabled.Store(!poolDisabledByEnv(os.Getenv("TDFM_POOL")))
}

// poolDisabledByEnv reports whether a TDFM_POOL value asks for pooling to
// be switched off ("off", "0", or "false", case-insensitively).
func poolDisabledByEnv(v string) bool {
	switch strings.ToLower(strings.TrimSpace(v)) {
	case "off", "0", "false":
		return true
	}
	return false
}

// SetPooling enables or disables buffer pooling at runtime, overriding the
// TDFM_POOL environment default. It exists so the byte-identity property
// tests can compare pooled and unpooled runs in one process. Toggle it
// only while no pooled buffers are outstanding: a buffer obtained with
// pooling off has no bucket capacity and must never reach PutBuf with
// pooling back on.
func SetPooling(on bool) { poolEnabled.Store(on) }

// PoolingEnabled reports whether buffer pooling is active.
func PoolingEnabled() bool { return poolEnabled.Load() }

// PoolStats is a snapshot of the pool's reuse counters. Hits and Misses
// count buffer requests served from a freelist versus fresh allocations;
// BytesReused is the total payload size of all hits.
type PoolStats struct {
	Hits        uint64
	Misses      uint64
	BytesReused uint64
}

// String renders the counters in the observability wire format,
// "pool-hit=… pool-miss=… pool-bytes=…".
func (s PoolStats) String() string {
	return fmt.Sprintf("pool-hit=%d pool-miss=%d pool-bytes=%d", s.Hits, s.Misses, s.BytesReused)
}

// Stats returns a snapshot of the global pool counters. Arena freelist
// reuse counts as hits too, so the numbers reflect every avoided
// allocation, not just sync.Pool traffic.
func Stats() PoolStats {
	return PoolStats{
		Hits:        poolHits.Load(),
		Misses:      poolMisses.Load(),
		BytesReused: poolBytes.Load(),
	}
}

// ResetStats zeroes the pool counters (tests and benchmarks).
func ResetStats() {
	poolHits.Store(0)
	poolMisses.Store(0)
	poolBytes.Store(0)
}

// bucketIndex returns the pool bucket for a request of n elements: the
// smallest b with 1<<b >= n.
func bucketIndex(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// getPooled serves a zero-filled slice of length n from the bucketed pool,
// falling back to make. Generic over the two storage element types so the
// float64 and float32 pools share one implementation.
func getPooled[E element](pools *[numBuckets]sync.Pool, boxes *sync.Pool, n int) []E {
	if n < 0 {
		panic(fmt.Sprintf("tensor: GetBuf of negative size %d", n))
	}
	b := bucketIndex(n)
	if b >= numBuckets {
		panic(fmt.Sprintf("tensor: GetBuf of %d elements exceeds the largest pool bucket", n))
	}
	var elem E
	if poolEnabled.Load() {
		if v := pools[b].Get(); v != nil {
			bp := v.(*[]E)
			s := *bp
			*bp = nil
			boxes.Put(bp)
			buf := s[:n]
			clear(buf)
			poolHits.Add(1)
			poolBytes.Add(uint64(n) * uint64(elemBytes(elem)))
			return buf
		}
	}
	poolMisses.Add(1)
	if !poolEnabled.Load() {
		// Reference behaviour: a plain allocation with no bucket capacity.
		// Such a buffer is not returnable to the pool; PutBuf is a no-op
		// while pooling is off.
		return make([]E, n)
	}
	return make([]E, n, 1<<b)
}

// elemBytes reports the byte size of a pool element without importing
// unsafe: the pool stores only float32 and float64.
func elemBytes[E element](e E) int {
	if _, ok := any(e).(float32); ok {
		return 4
	}
	return 8
}

// putPooled returns a buffer obtained from getPooled to its bucket. See
// PutBuf for the foreign-buffer panic contract.
func putPooled[E element](pools *[numBuckets]sync.Pool, boxes *sync.Pool, buf []E) {
	if !poolEnabled.Load() || cap(buf) == 0 {
		return
	}
	c := cap(buf)
	if c&(c-1) != 0 {
		panic(fmt.Sprintf("tensor: PutBuf of foreign buffer with capacity %d (not a pool bucket size; only buffers from GetBuf may be returned)", c))
	}
	b := bucketIndex(c)
	if b >= numBuckets {
		return
	}
	var bp *[]E
	if v := boxes.Get(); v != nil {
		bp = v.(*[]E)
	} else {
		bp = new([]E)
	}
	*bp = buf[:c]
	pools[b].Put(bp)
}

// GetBuf returns a zero-filled []float64 of length n, reusing a pooled
// buffer when one is available. The result is semantically identical to
// make([]float64, n); reuse only changes where the memory comes from, so
// pooled and unpooled runs produce byte-identical numerics. Pass the
// buffer to PutBuf when its lifetime ends, or simply drop it (the GC
// reclaims unreturned buffers; the pool never leaks them into live data).
func GetBuf(n int) []float64 { return getPooled[float64](&pool64, &boxes64, n) }

// PutBuf returns a buffer obtained from GetBuf to the pool. It panics if
// buf did not come from GetBuf (detected by a capacity that is not a pool
// bucket size): returning foreign memory would hand aliased storage to a
// future GetBuf caller. The caller must not retain or read buf after the
// call. PutBuf is a no-op while pooling is disabled.
func PutBuf(buf []float64) { putPooled(&pool64, &boxes64, buf) }

// GetBuf32 is GetBuf for float32 storage (the inference precision mode).
func GetBuf32(n int) []float32 { return getPooled[float32](&pool32, &boxes32, n) }

// PutBuf32 is PutBuf for float32 buffers, with the same foreign-buffer
// panic contract.
func PutBuf32(buf []float32) { putPooled(&pool32, &boxes32, buf) }

// NewPooled returns a zero-filled tensor like New, but with pool-backed
// storage that Release returns for reuse. With pooling disabled it is
// exactly New. The serving batcher uses it for the transient stacking
// buffer of each micro-batch.
func NewPooled(shape ...int) *Tensor {
	n := checkShape(shape)
	if !poolEnabled.Load() {
		return New(shape...)
	}
	return &Tensor{shape: append([]int(nil), shape...), data: GetBuf(n), pooled: true}
}

// Release returns a NewPooled tensor's storage to the pool and detaches it
// from the tensor; any later access panics (nil backing slice), which
// turns use-after-release bugs into immediate failures. Release is a no-op
// on tensors that do not own pooled storage — including every tensor
// allocated from an Arena, whose storage is owned and recycled by the
// arena itself. The caller must ensure no views (SliceRows, Reshape) of
// the tensor are still live.
func (t *Tensor) Release() {
	if !t.pooled {
		return
	}
	t.pooled = false
	d := t.data
	t.data = nil
	PutBuf(d)
}

// Arena is a per-network allocation scope: tensors and buffers handed out
// by an arena stay live until Reset, which recycles them all onto the
// arena's freelists for the next round of identical allocations. The
// training loop resets its model's arena after every optimizer step; the
// inference path resets after every predicted chunk. Release returns all
// storage to the global pool when the arena's owner is done.
//
// An Arena is not safe for concurrent use — it serves a single network,
// and networks already require external serialization (see package nn).
// Arena-backed tensors must never be individually Released, and callers
// must not retain them across a Reset: the storage is rezeroed and handed
// out again.
type Arena struct {
	free64 [numBuckets][][]float64
	live64 [numBuckets][][]float64
	free32 [numBuckets][][]float32
	live32 [numBuckets][][]float32

	// Tensor and F32 wrapper structs are recycled alongside their storage,
	// so a steady-state arena allocation performs no heap allocation at
	// all (the shape slice is reused in place when capacity allows).
	freeT []*Tensor
	liveT []*Tensor
	freeF []*F32
	liveF []*F32
}

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

// arenaGet hands out a zero-filled length-n slice from the arena freelist,
// falling back to the global pool; the buffer is tracked as live until the
// next Reset. With pooling disabled it degrades to plain make and tracks
// nothing, restoring the reference allocation behaviour.
func arenaGet[E element](free, live *[numBuckets][][]E, pools *[numBuckets]sync.Pool, boxes *sync.Pool, n int) []E {
	if !poolEnabled.Load() {
		poolMisses.Add(1)
		return make([]E, n)
	}
	b := bucketIndex(n)
	if b >= numBuckets {
		panic(fmt.Sprintf("tensor: arena allocation of %d elements exceeds the largest pool bucket", n))
	}
	if l := len(free[b]); l > 0 {
		buf := free[b][l-1]
		free[b] = free[b][:l-1]
		buf = buf[:n]
		clear(buf)
		var elem E
		poolHits.Add(1)
		poolBytes.Add(uint64(n) * uint64(elemBytes(elem)))
		live[b] = append(live[b], buf[:cap(buf)])
		return buf
	}
	buf := getPooled[E](pools, boxes, n)
	live[b] = append(live[b], buf[:cap(buf)])
	return buf
}

// Buf returns a zero-filled []float64 of length n owned by the arena
// (reclaimed at the next Reset, like Tensor).
func (a *Arena) Buf(n int) []float64 {
	return arenaGet(&a.free64, &a.live64, &pool64, &boxes64, n)
}

// Buf32 is Buf for float32 storage.
func (a *Arena) Buf32(n int) []float32 {
	return arenaGet(&a.free32, &a.live32, &pool32, &boxes32, n)
}

// Tensor returns a zero-filled tensor of the given shape backed by arena
// storage. It is semantically identical to New; the storage is reclaimed
// at the next Reset, so the result must not outlive it (copy anything that
// escapes, e.g. with Clone).
func (a *Arena) Tensor(shape ...int) *Tensor {
	n := checkShape(shape)
	if !poolEnabled.Load() {
		return New(shape...)
	}
	var t *Tensor
	if l := len(a.freeT); l > 0 {
		t = a.freeT[l-1]
		a.freeT = a.freeT[:l-1]
		t.shape = append(t.shape[:0], shape...)
	} else {
		t = &Tensor{shape: append([]int(nil), shape...)}
	}
	t.data = a.Buf(n)
	a.liveT = append(a.liveT, t)
	return t
}

// TensorLike returns a zero-filled arena tensor with x's shape, without
// the intermediate shape copy an x.Shape() spread would allocate. Same
// lifetime contract as Tensor.
func (a *Arena) TensorLike(x *Tensor) *Tensor {
	return a.Tensor(x.shape...)
}

// F32 returns a zero-filled float32 tensor of the given shape backed by
// arena storage, with the same lifetime contract as Tensor.
func (a *Arena) F32(shape ...int) *F32 {
	n := checkShape(shape)
	if !poolEnabled.Load() {
		return NewF32(shape...)
	}
	var f *F32
	if l := len(a.freeF); l > 0 {
		f = a.freeF[l-1]
		a.freeF = a.freeF[:l-1]
		f.shape = append(f.shape[:0], shape...)
	} else {
		f = &F32{shape: append([]int(nil), shape...)}
	}
	f.data = a.Buf32(n)
	a.liveF = append(a.liveF, f)
	return f
}

// Reset recycles every live arena allocation onto the freelists. All
// tensors and buffers previously handed out become invalid: their storage
// will be rezeroed and reissued by subsequent allocations. Callers invoke
// it at points where nothing from the previous round is referenced (after
// an optimizer step, after an inference chunk's result has been copied
// out).
func (a *Arena) Reset() {
	for b := range a.live64 {
		a.free64[b] = append(a.free64[b], a.live64[b]...)
		a.live64[b] = a.live64[b][:0]
	}
	for b := range a.live32 {
		a.free32[b] = append(a.free32[b], a.live32[b]...)
		a.live32[b] = a.live32[b][:0]
	}
	// Detach recycled wrappers from their storage so a retained reference
	// fails fast (nil data) instead of silently reading reissued memory.
	for _, t := range a.liveT {
		t.data = nil
	}
	a.freeT = append(a.freeT, a.liveT...)
	a.liveT = a.liveT[:0]
	for _, f := range a.liveF {
		f.data = nil
	}
	a.freeF = append(a.freeF, a.liveF...)
	a.liveF = a.liveF[:0]
}

// Release returns all arena storage — live and free — to the global pool
// and empties the arena. The arena remains usable afterwards; it simply
// starts cold.
func (a *Arena) Release() {
	a.Reset()
	for b := range a.free64 {
		for _, buf := range a.free64[b] {
			PutBuf(buf)
		}
		a.free64[b] = nil
		a.live64[b] = nil
	}
	for b := range a.free32 {
		for _, buf := range a.free32[b] {
			PutBuf32(buf)
		}
		a.free32[b] = nil
		a.live32[b] = nil
	}
	a.freeT, a.liveT = nil, nil
	a.freeF, a.liveF = nil, nil
}
