// Package tensor implements dense, row-major float64 tensors and the linear
// algebra required by the neural-network substrate: elementwise arithmetic,
// matrix multiplication, reductions, and the im2col/col2im transforms used
// to express convolutions as matrix products.
//
// The package is deliberately minimal: shapes are explicit, there is no
// broadcasting beyond what the NN layers need, and all operations either
// allocate a fresh result or mutate the receiver in place (methods with the
// "In" suffix or documented in-place semantics). Tensors own their backing
// storage; slices passed to FromSlice are copied at the boundary.
package tensor

import (
	"fmt"
	"math"
	"strings"
)

// Tensor is a dense row-major n-dimensional array of float64.
type Tensor struct {
	shape []int
	data  []float64
	// pooled marks storage obtained from the global buffer pool via
	// NewPooled; Release returns it (DESIGN.md §10).
	pooled bool
}

// New returns a zero-filled tensor with the given shape. It panics if any
// dimension is negative or the shape is empty.
func New(shape ...int) *Tensor {
	n := checkShape(shape)
	t := &Tensor{shape: append([]int(nil), shape...), data: make([]float64, n)}
	return t
}

// NewLike returns a zero-filled tensor with x's shape, without the
// intermediate shape copy an x.Shape() spread would allocate.
func NewLike(x *Tensor) *Tensor {
	return New(x.shape...)
}

// Full returns a tensor of the given shape with every element set to v.
func Full(v float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = v
	}
	return t
}

// FromSlice returns a tensor with the given shape whose contents are copied
// from data. It panics if len(data) does not match the shape volume.
func FromSlice(data []float64, shape ...int) *Tensor {
	n := checkShape(shape)
	if len(data) != n {
		panic(fmt.Sprintf("tensor: FromSlice got %d elements for shape %v (need %d)", len(data), shape, n))
	}
	t := &Tensor{shape: append([]int(nil), shape...), data: make([]float64, n)}
	copy(t.data, data)
	return t
}

func checkShape(shape []int) int {
	if len(shape) == 0 {
		panic("tensor: empty shape")
	}
	n := 1
	for _, d := range shape {
		if d < 0 {
			// Hand fmt a copy: letting shape itself reach an any parameter
			// would mark it escaping and heap-allocate the variadic shape
			// slice of every New/Arena.Tensor call on the happy path too
			// (escape analysis is flow-insensitive).
			panic(fmt.Sprintf("tensor: negative dimension in shape %v", append([]int(nil), shape...)))
		}
		n *= d
	}
	return n
}

// Shape returns a copy of the tensor's shape.
func (t *Tensor) Shape() []int { return append([]int(nil), t.shape...) }

// Dims returns the number of dimensions.
func (t *Tensor) Dims() int { return len(t.shape) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Size returns the total number of elements.
func (t *Tensor) Size() int { return len(t.data) }

// Data returns the backing slice. Mutating it mutates the tensor; callers
// inside this module use it for performance-critical inner loops.
func (t *Tensor) Data() []float64 { return t.data }

// SameShape reports whether t and u have identical shapes.
func (t *Tensor) SameShape(u *Tensor) bool {
	if len(t.shape) != len(u.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != u.shape[i] {
			return false
		}
	}
	return true
}

func (t *Tensor) index(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: %d indices for %d-d tensor", len(idx), len(t.shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float64 { return t.data[t.index(idx)] }

// Set assigns the element at the given multi-index.
func (t *Tensor) Set(v float64, idx ...int) { t.data[t.index(idx)] = v }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := &Tensor{shape: append([]int(nil), t.shape...), data: make([]float64, len(t.data))}
	copy(c.data, t.data)
	return c
}

// Reshape returns a tensor sharing t's storage with a new shape of equal
// volume. It panics on volume mismatch. One dimension may be -1, in which
// case it is inferred.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	shape = append([]int(nil), shape...)
	infer := -1
	vol := 1
	for i, d := range shape {
		if d == -1 {
			if infer >= 0 {
				panic("tensor: Reshape allows at most one -1 dimension")
			}
			infer = i
			continue
		}
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension in shape %v", shape))
		}
		vol *= d
	}
	if infer >= 0 {
		if vol == 0 || len(t.data)%vol != 0 {
			panic(fmt.Sprintf("tensor: cannot infer dimension reshaping %v to %v", t.shape, shape))
		}
		shape[infer] = len(t.data) / vol
		vol *= shape[infer]
	}
	if vol != len(t.data) {
		panic(fmt.Sprintf("tensor: reshape %v -> %v changes volume", t.shape, shape))
	}
	return &Tensor{shape: shape, data: t.data}
}

// SliceRows returns a view of rows [lo, hi) along the leading dimension:
// shape [hi-lo, rest...] sharing t's backing storage (mutations are
// visible both ways, like Reshape). The serving batcher and the chunked
// inference path use it to address sub-batches of an [N, C, H, W] or
// [N, K] tensor without copying. It panics on an invalid range or on a
// 0-d leading dimension it cannot slice.
func (t *Tensor) SliceRows(lo, hi int) *Tensor {
	if len(t.shape) == 0 {
		panic("tensor: SliceRows on empty shape")
	}
	if lo < 0 || hi < lo || hi > t.shape[0] {
		panic(fmt.Sprintf("tensor: SliceRows [%d,%d) out of range for leading dimension %d", lo, hi, t.shape[0]))
	}
	stride := 1
	for _, d := range t.shape[1:] {
		stride *= d
	}
	shape := append([]int(nil), t.shape...)
	shape[0] = hi - lo
	return &Tensor{shape: shape, data: t.data[lo*stride : hi*stride : hi*stride]}
}

// ConcatRows stacks tensors along the leading dimension: parts with
// shapes [n1, rest...], [n2, rest...], … yield a fresh tensor of shape
// [n1+n2+…, rest...]. All trailing dimensions must match. The serving
// batcher uses it to assemble one [N, C, H, W] micro-batch from admitted
// per-request tensors.
func ConcatRows(parts ...*Tensor) *Tensor {
	if len(parts) == 0 {
		panic("tensor: ConcatRows needs at least one part")
	}
	rows := 0
	for i, p := range parts {
		if len(p.shape) != len(parts[0].shape) {
			panic(fmt.Sprintf("tensor: ConcatRows rank mismatch %v vs %v", parts[0].shape, p.shape))
		}
		for d := 1; d < len(p.shape); d++ {
			if p.shape[d] != parts[0].shape[d] {
				panic(fmt.Sprintf("tensor: ConcatRows trailing-dimension mismatch %v vs %v (part %d)",
					parts[0].shape, p.shape, i))
			}
		}
		rows += p.shape[0]
	}
	shape := append([]int(nil), parts[0].shape...)
	shape[0] = rows
	out := New(shape...)
	concatRowsInto(out, parts)
	return out
}

// ConcatRowsPooled is ConcatRows with pool-backed output storage (see
// NewPooled): the caller owns the result and should Release it when the
// last reader is done. The serving batcher stacks each micro-batch into
// one and releases it after the fan-out completes.
func ConcatRowsPooled(parts ...*Tensor) *Tensor {
	if len(parts) == 0 {
		panic("tensor: ConcatRows needs at least one part")
	}
	rows := 0
	for i, p := range parts {
		if len(p.shape) != len(parts[0].shape) {
			panic(fmt.Sprintf("tensor: ConcatRows rank mismatch %v vs %v", parts[0].shape, p.shape))
		}
		for d := 1; d < len(p.shape); d++ {
			if p.shape[d] != parts[0].shape[d] {
				panic(fmt.Sprintf("tensor: ConcatRows trailing-dimension mismatch %v vs %v (part %d)",
					parts[0].shape, p.shape, i))
			}
		}
		rows += p.shape[0]
	}
	shape := append([]int(nil), parts[0].shape...)
	shape[0] = rows
	out := NewPooled(shape...)
	concatRowsInto(out, parts)
	return out
}

// concatRowsInto copies the validated parts into out's storage in order.
func concatRowsInto(out *Tensor, parts []*Tensor) {
	off := 0
	for _, p := range parts {
		off += copy(out.data[off:], p.data)
	}
}

// Zero sets every element to 0 in place.
func (t *Tensor) Zero() {
	for i := range t.data {
		t.data[i] = 0
	}
}

// Fill sets every element to v in place.
func (t *Tensor) Fill(v float64) {
	for i := range t.data {
		t.data[i] = v
	}
}

// AddIn adds u to t elementwise in place. Shapes must match.
func (t *Tensor) AddIn(u *Tensor) *Tensor {
	t.mustMatch(u, "AddIn")
	for i, v := range u.data {
		t.data[i] += v
	}
	return t
}

// SubIn subtracts u from t elementwise in place. Shapes must match.
func (t *Tensor) SubIn(u *Tensor) *Tensor {
	t.mustMatch(u, "SubIn")
	for i, v := range u.data {
		t.data[i] -= v
	}
	return t
}

// MulIn multiplies t by u elementwise in place (Hadamard). Shapes must match.
func (t *Tensor) MulIn(u *Tensor) *Tensor {
	t.mustMatch(u, "MulIn")
	for i, v := range u.data {
		t.data[i] *= v
	}
	return t
}

// ScaleIn multiplies every element by s in place.
func (t *Tensor) ScaleIn(s float64) *Tensor {
	for i := range t.data {
		t.data[i] *= s
	}
	return t
}

// AddScaledIn adds s*u to t in place. Shapes must match.
func (t *Tensor) AddScaledIn(s float64, u *Tensor) *Tensor {
	t.mustMatch(u, "AddScaledIn")
	for i, v := range u.data {
		t.data[i] += s * v
	}
	return t
}

// Add returns t + u as a new tensor.
func (t *Tensor) Add(u *Tensor) *Tensor { return t.Clone().AddIn(u) }

// Sub returns t - u as a new tensor.
func (t *Tensor) Sub(u *Tensor) *Tensor { return t.Clone().SubIn(u) }

// Mul returns the elementwise product as a new tensor.
func (t *Tensor) Mul(u *Tensor) *Tensor { return t.Clone().MulIn(u) }

// Scale returns s*t as a new tensor.
func (t *Tensor) Scale(s float64) *Tensor { return t.Clone().ScaleIn(s) }

// Apply returns a new tensor with f applied to every element.
func (t *Tensor) Apply(f func(float64) float64) *Tensor {
	c := t.Clone()
	for i, v := range c.data {
		c.data[i] = f(v)
	}
	return c
}

// ApplyIn applies f to every element in place.
func (t *Tensor) ApplyIn(f func(float64) float64) *Tensor {
	for i, v := range t.data {
		t.data[i] = f(v)
	}
	return t
}

func (t *Tensor) mustMatch(u *Tensor, op string) {
	if !t.SameShape(u) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, t.shape, u.shape))
	}
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements (0 for empty tensors).
func (t *Tensor) Mean() float64 {
	if len(t.data) == 0 {
		return 0
	}
	return t.Sum() / float64(len(t.data))
}

// Max returns the maximum element. It panics on empty tensors.
func (t *Tensor) Max() float64 {
	if len(t.data) == 0 {
		panic("tensor: Max of empty tensor")
	}
	m := t.data[0]
	for _, v := range t.data[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the minimum element. It panics on empty tensors.
func (t *Tensor) Min() float64 {
	if len(t.data) == 0 {
		panic("tensor: Min of empty tensor")
	}
	m := t.data[0]
	for _, v := range t.data[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// L2Norm returns the Euclidean norm of the flattened tensor.
func (t *Tensor) L2Norm() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// ArgMaxRows treats t as a [rows, cols] matrix and returns, for each row,
// the column index of its maximum element. It panics unless t is 2-D.
func (t *Tensor) ArgMaxRows() []int {
	if len(t.shape) != 2 {
		panic(fmt.Sprintf("tensor: ArgMaxRows needs a 2-d tensor, got shape %v", t.shape))
	}
	rows, cols := t.shape[0], t.shape[1]
	out := make([]int, rows)
	for r := 0; r < rows; r++ {
		row := t.data[r*cols : (r+1)*cols]
		best, bi := row[0], 0
		for c := 1; c < cols; c++ {
			if row[c] > best {
				best, bi = row[c], c
			}
		}
		out[r] = bi
	}
	return out
}

// Row returns a copy of row r of a 2-D tensor.
func (t *Tensor) Row(r int) []float64 {
	if len(t.shape) != 2 {
		panic("tensor: Row needs a 2-d tensor")
	}
	cols := t.shape[1]
	out := make([]float64, cols)
	copy(out, t.data[r*cols:(r+1)*cols])
	return out
}

// SetRow copies vals into row r of a 2-D tensor.
func (t *Tensor) SetRow(r int, vals []float64) {
	if len(t.shape) != 2 {
		panic("tensor: SetRow needs a 2-d tensor")
	}
	cols := t.shape[1]
	if len(vals) != cols {
		panic(fmt.Sprintf("tensor: SetRow got %d values for %d columns", len(vals), cols))
	}
	copy(t.data[r*cols:(r+1)*cols], vals)
}

// Cache-blocking tile sizes for MatMul. A [blockK, blockN] panel of the
// right operand is 128 KiB of float64 — it stays resident in L2 while
// every output row in the worker's shard streams over it, instead of the
// whole right operand being re-fetched from memory once per output row.
// Matrices that fit inside a single tile take the untiled fast path.
const (
	blockK = 64  // rows of the right-operand panel (inner dimension)
	blockN = 256 // columns of the right-operand panel (output columns)
)

// MatMul returns the matrix product t × u for 2-D tensors [m,k] × [k,n].
//
// The kernel is cache-blocked: each worker walks its output rows once per
// [blockK, blockN] panel of u, so the batched inference path (one large
// [N*OH*OW, C*KH*KW] im2col product per layer) streams panels from L2
// instead of thrashing memory bandwidth. Blocking never reorders floating
// point: for every output element the contributions accumulate in
// ascending p, exactly the serial loop's order, so the product is
// bit-identical at any worker count, tile size, and batch size (each
// output row depends only on its own input row).
func (t *Tensor) MatMul(u *Tensor) *Tensor {
	if len(t.shape) != 2 || len(u.shape) != 2 {
		panic(fmt.Sprintf("tensor: MatMul needs 2-d operands, got %v and %v", t.shape, u.shape))
	}
	m, k := t.shape[0], t.shape[1]
	k2, n := u.shape[0], u.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %v × %v", t.shape, u.shape))
	}
	out := New(m, n)
	// Each worker owns a contiguous block of output rows, so any worker
	// count reproduces the serial result bit for bit (see gemm in
	// kernels.go for the blocked loop itself).
	gemm(out.data, t.data, u.data, m, k, n)
	return out
}

// MatMulInto computes t × u into dst, a zero-filled [m,n] tensor (as
// returned by New, NewPooled, or Arena.Tensor), and returns dst. It is
// MatMul with caller-owned output storage: the arena-backed layers use it
// to keep matmul results out of the garbage collector. It panics on
// non-2-D operands or any dimension mismatch.
func (t *Tensor) MatMulInto(dst, u *Tensor) *Tensor {
	if len(t.shape) != 2 || len(u.shape) != 2 {
		panic(fmt.Sprintf("tensor: MatMul needs 2-d operands, got %v and %v", t.shape, u.shape))
	}
	m, k := t.shape[0], t.shape[1]
	k2, n := u.shape[0], u.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %v × %v", t.shape, u.shape))
	}
	if len(dst.shape) != 2 || dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulInto destination %v, want [%d,%d]", dst.shape, m, n))
	}
	gemm(dst.data, t.data, u.data, m, k, n)
	return dst
}

// MatMulTransA returns tᵀ × u for 2-D tensors t [k,m], u [k,n] -> [m,n].
func (t *Tensor) MatMulTransA(u *Tensor) *Tensor {
	if len(t.shape) != 2 || len(u.shape) != 2 {
		panic("tensor: MatMulTransA needs 2-d operands")
	}
	k, m := t.shape[0], t.shape[1]
	k2, n := u.shape[0], u.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransA inner dimension mismatch %v × %v", t.shape, u.shape))
	}
	out := New(m, n)
	// The p-outer loop accumulates into every output row, so sharding is
	// over output columns: each worker applies the full p loop to its own
	// column window, preserving the serial ascending-p accumulation order
	// per element (bit-identical for any worker count).
	gemmTransA(out.data, t.data, u.data, k, m, n)
	return out
}

// MatMulTransAInto computes tᵀ × u into dst, a zero-filled [m,n] tensor,
// and returns dst (MatMulTransA with caller-owned output storage). It
// panics on non-2-D operands or any dimension mismatch.
func (t *Tensor) MatMulTransAInto(dst, u *Tensor) *Tensor {
	if len(t.shape) != 2 || len(u.shape) != 2 {
		panic("tensor: MatMulTransA needs 2-d operands")
	}
	k, m := t.shape[0], t.shape[1]
	k2, n := u.shape[0], u.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransA inner dimension mismatch %v × %v", t.shape, u.shape))
	}
	if len(dst.shape) != 2 || dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulTransAInto destination %v, want [%d,%d]", dst.shape, m, n))
	}
	gemmTransA(dst.data, t.data, u.data, k, m, n)
	return dst
}

// MatMulTransB returns t × uᵀ for 2-D tensors t [m,k], u [n,k] -> [m,n].
func (t *Tensor) MatMulTransB(u *Tensor) *Tensor {
	if len(t.shape) != 2 || len(u.shape) != 2 {
		panic("tensor: MatMulTransB needs 2-d operands")
	}
	m, k := t.shape[0], t.shape[1]
	n, k2 := u.shape[0], u.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransB inner dimension mismatch %v × %v", t.shape, u.shape))
	}
	out := New(m, n)
	gemmTransB(out.data, t.data, u.data, m, k, n)
	return out
}

// MatMulTransBInto computes t × uᵀ into dst, an [m,n] tensor whose every
// element is overwritten, and returns dst (MatMulTransB with caller-owned
// output storage). It panics on non-2-D operands or any dimension
// mismatch.
func (t *Tensor) MatMulTransBInto(dst, u *Tensor) *Tensor {
	if len(t.shape) != 2 || len(u.shape) != 2 {
		panic("tensor: MatMulTransB needs 2-d operands")
	}
	m, k := t.shape[0], t.shape[1]
	n, k2 := u.shape[0], u.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransB inner dimension mismatch %v × %v", t.shape, u.shape))
	}
	if len(dst.shape) != 2 || dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulTransBInto destination %v, want [%d,%d]", dst.shape, m, n))
	}
	gemmTransB(dst.data, t.data, u.data, m, k, n)
	return dst
}

// Transpose2D returns the transpose of a 2-D tensor as a new tensor.
func (t *Tensor) Transpose2D() *Tensor {
	if len(t.shape) != 2 {
		panic("tensor: Transpose2D needs a 2-d tensor")
	}
	m, n := t.shape[0], t.shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.data[j*m+i] = t.data[i*n+j]
		}
	}
	return out
}

// SumRows treats t as [rows, cols] and returns the column sums as [cols].
func (t *Tensor) SumRows() *Tensor {
	if len(t.shape) != 2 {
		panic("tensor: SumRows needs a 2-d tensor")
	}
	rows, cols := t.shape[0], t.shape[1]
	out := New(cols)
	sumRows(out.data, t.data, rows, cols)
	return out
}

// SumRowsInto accumulates the column sums of a [rows, cols] tensor into
// dst, a zero-filled [cols] tensor, and returns dst (SumRows with
// caller-owned output storage). It panics on a non-2-D receiver or a
// destination of the wrong shape.
func (t *Tensor) SumRowsInto(dst *Tensor) *Tensor {
	if len(t.shape) != 2 {
		panic("tensor: SumRows needs a 2-d tensor")
	}
	rows, cols := t.shape[0], t.shape[1]
	if len(dst.shape) != 1 || dst.shape[0] != cols {
		panic(fmt.Sprintf("tensor: SumRowsInto destination %v, want [%d]", dst.shape, cols))
	}
	sumRows(dst.data, t.data, rows, cols)
	return dst
}

// AddRowVectorIn adds the [cols] vector v to every row of a [rows, cols]
// tensor in place.
func (t *Tensor) AddRowVectorIn(v *Tensor) *Tensor {
	if len(t.shape) != 2 || len(v.shape) != 1 || v.shape[0] != t.shape[1] {
		panic(fmt.Sprintf("tensor: AddRowVectorIn shape mismatch %v + %v", t.shape, v.shape))
	}
	rows, cols := t.shape[0], t.shape[1]
	addRowVector(t.data, v.data, rows, cols)
	return t
}

// Equal reports whether t and u have the same shape and all elements within
// tol of each other.
func (t *Tensor) Equal(u *Tensor, tol float64) bool {
	if !t.SameShape(u) {
		return false
	}
	for i := range t.data {
		if math.Abs(t.data[i]-u.data[i]) > tol {
			return false
		}
	}
	return true
}

// HasNaN reports whether any element is NaN or infinite.
func (t *Tensor) HasNaN() bool {
	for _, v := range t.data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
	}
	return false
}

// String renders a compact description (shape plus up to eight leading
// elements), suitable for debugging.
func (t *Tensor) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tensor%v[", t.shape)
	n := len(t.data)
	if n > 8 {
		n = 8
	}
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%.4g", t.data[i])
	}
	if len(t.data) > 8 {
		b.WriteString(", …")
	}
	b.WriteString("]")
	return b.String()
}
