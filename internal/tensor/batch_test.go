package tensor

import (
	"testing"

	"tdfm/internal/xrand"
)

// refMatMul is the unblocked i-k-j reference kernel the cache-blocked
// MatMul must match bit for bit (same ascending-p accumulation per
// element, same skip on zero left operands).
func refMatMul(t, u *Tensor) *Tensor {
	m, k, n := t.Dim(0), t.Dim(1), u.Dim(1)
	out := New(m, n)
	for i := 0; i < m; i++ {
		ti := t.data[i*k : (i+1)*k]
		oi := out.data[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			a := ti[p]
			if a == 0 {
				continue
			}
			up := u.data[p*n : (p+1)*n]
			for j, b := range up {
				oi[j] += a * b
			}
		}
	}
	return out
}

func randTensor(rng *xrand.RNG, shape ...int) *Tensor {
	t := New(shape...)
	rng.FillNormal(t.Data(), 0, 1)
	return t
}

// TestMatMulBlockedBitIdentical exercises shapes that straddle the tile
// boundaries (inner dimension and width above, below, and exactly at
// blockK/blockN) at several worker counts; every product must be
// bit-identical to the serial unblocked reference.
func TestMatMulBlockedBitIdentical(t *testing.T) {
	defer SetParallelism(0)
	rng := xrand.New(7)
	shapes := [][3]int{
		{1, 1, 1},
		{3, 5, 2},
		{17, blockK - 1, blockN - 1},
		{17, blockK, blockN},
		{17, blockK + 1, blockN + 1},
		{64, 2*blockK + 3, 2*blockN + 5},
		{2, 300, 40},
		{200, 7, 300},
	}
	for _, s := range shapes {
		m, k, n := s[0], s[1], s[2]
		a := randTensor(rng.Split("a"), m, k)
		// Plant exact zeros so the skip-zero fast path is exercised.
		a.Data()[0] = 0
		b := randTensor(rng.Split("b"), k, n)
		want := refMatMul(a, b)
		for _, workers := range []int{1, 2, 4} {
			SetParallelism(workers)
			got := a.MatMul(b)
			if !got.SameShape(want) {
				t.Fatalf("[%d,%d]x[%d,%d] @%dw: shape %v", m, k, k, n, workers, got.Shape())
			}
			for i, v := range got.Data() {
				if v != want.Data()[i] {
					t.Fatalf("[%d,%d]x[%d,%d] @%dw: element %d = %v, want %v (not bit-identical)",
						m, k, k, n, workers, i, v, want.Data()[i])
				}
			}
		}
	}
}

// TestMatMulRowsIndependentOfBatch checks the batching contract directly:
// multiplying a row slice equals the matching rows of the full product,
// bit for bit, for batch splits that do not divide the row count evenly.
func TestMatMulRowsIndependentOfBatch(t *testing.T) {
	defer SetParallelism(0)
	SetParallelism(4)
	rng := xrand.New(11)
	a := randTensor(rng.Split("a"), 37, 2*blockK+9)
	b := randTensor(rng.Split("b"), 2*blockK+9, blockN+33)
	full := a.MatMul(b)
	for _, bs := range []int{1, 3, 17, 37} {
		for lo := 0; lo < a.Dim(0); lo += bs {
			hi := lo + bs
			if hi > a.Dim(0) {
				hi = a.Dim(0)
			}
			part := a.SliceRows(lo, hi).MatMul(b)
			fullPart := full.SliceRows(lo, hi)
			for i, v := range part.Data() {
				if v != fullPart.Data()[i] {
					t.Fatalf("batch %d rows [%d,%d): element %d = %v, want %v", bs, lo, hi, i, v, fullPart.Data()[i])
				}
			}
		}
	}
}

func TestSliceRowsIsAView(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4, 5, 6, 7, 8}, 4, 2)
	v := x.SliceRows(1, 3)
	if got := v.Shape(); got[0] != 2 || got[1] != 2 {
		t.Fatalf("view shape = %v, want [2 2]", got)
	}
	if v.At(0, 0) != 3 || v.At(1, 1) != 6 {
		t.Fatalf("view contents = %v", v.Data())
	}
	v.Set(99, 0, 0)
	if x.At(1, 0) != 99 {
		t.Fatal("mutating the view did not mutate the parent")
	}
	// 4-d slices address whole images.
	img := New(3, 2, 2, 2)
	img.Data()[8] = 42 // first element of image 1
	s := img.SliceRows(1, 2)
	if s.Dims() != 4 || s.Dim(0) != 1 || s.Data()[0] != 42 {
		t.Fatalf("4-d slice = %v %v", s.Shape(), s.Data()[:1])
	}
	// Empty slices are legal; out-of-range panics.
	if e := img.SliceRows(2, 2); e.Dim(0) != 0 {
		t.Fatalf("empty slice dim = %d", e.Dim(0))
	}
	for _, bad := range [][2]int{{-1, 1}, {0, 4}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("SliceRows(%d, %d) did not panic", bad[0], bad[1])
				}
			}()
			img.SliceRows(bad[0], bad[1])
		}()
	}
}

func TestConcatRows(t *testing.T) {
	a := FromSlice([]float64{1, 2}, 1, 2)
	b := FromSlice([]float64{3, 4, 5, 6}, 2, 2)
	c := ConcatRows(a, b)
	want := []float64{1, 2, 3, 4, 5, 6}
	if c.Dim(0) != 3 || c.Dim(1) != 2 {
		t.Fatalf("concat shape = %v", c.Shape())
	}
	for i, v := range c.Data() {
		if v != want[i] {
			t.Fatalf("concat data = %v, want %v", c.Data(), want)
		}
	}
	// The result owns fresh storage.
	c.Set(99, 0, 0)
	if a.At(0, 0) != 1 {
		t.Fatal("ConcatRows aliased its input")
	}
	// Round-trip with SliceRows: splitting and re-concatenating an
	// [N, C, H, W] batch is the identity.
	rng := xrand.New(3)
	x := randTensor(rng, 5, 2, 3, 3)
	rt := ConcatRows(x.SliceRows(0, 2), x.SliceRows(2, 3), x.SliceRows(3, 5))
	for i, v := range rt.Data() {
		if v != x.Data()[i] {
			t.Fatal("SliceRows/ConcatRows round-trip changed data")
		}
	}
	// Mismatched trailing dimensions panic.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("ConcatRows with mismatched columns did not panic")
			}
		}()
		ConcatRows(a, FromSlice([]float64{1, 2, 3}, 1, 3))
	}()
}
