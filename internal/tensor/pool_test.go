package tensor

import (
	"strings"
	"sync"
	"testing"
)

// withPooling runs fn with pooling forced to the given state, restoring
// the previous state afterwards.
func withPooling(t *testing.T, on bool, fn func()) {
	t.Helper()
	prev := PoolingEnabled()
	SetPooling(on)
	defer SetPooling(prev)
	fn()
}

func TestGetBufZeroedAndBucketed(t *testing.T) {
	withPooling(t, true, func() {
		for _, n := range []int{1, 2, 3, 7, 8, 100, 1 << 12, (1 << 12) + 1} {
			buf := GetBuf(n)
			if len(buf) != n {
				t.Fatalf("GetBuf(%d) len = %d", n, len(buf))
			}
			if c := cap(buf); c&(c-1) != 0 {
				t.Fatalf("GetBuf(%d) cap %d is not a power of two", n, c)
			}
			for i := range buf {
				buf[i] = float64(i + 1) // dirty before returning
			}
			PutBuf(buf)
		}
		// A recycled buffer must come back zero-filled.
		buf := GetBuf(100)
		for i, v := range buf {
			if v != 0 {
				t.Fatalf("recycled buffer not zeroed at %d: %v", i, v)
			}
		}
		PutBuf(buf)
	})
}

func TestPutBufForeignPanics(t *testing.T) {
	withPooling(t, true, func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("PutBuf of a foreign buffer did not panic")
			}
			if !strings.Contains(r.(string), "foreign buffer") {
				t.Fatalf("unexpected panic message: %v", r)
			}
		}()
		PutBuf(make([]float64, 100)) // cap 100: not a bucket size
	})
}

func TestPoolOffFallsBackToMake(t *testing.T) {
	withPooling(t, false, func() {
		buf := GetBuf(100)
		if len(buf) != 100 || cap(buf) != 100 {
			t.Fatalf("pool off: GetBuf(100) len/cap = %d/%d, want 100/100", len(buf), cap(buf))
		}
		PutBuf(buf) // must be a no-op, not a foreign-buffer panic

		a := NewArena()
		x := a.Tensor(4, 5)
		if x.Size() != 20 {
			t.Fatalf("arena tensor size = %d", x.Size())
		}
		a.Reset()
		a.Release()

		p := NewPooled(3, 3)
		p.Release() // no-op: plain storage when pooling is off
		if p.Size() != 9 {
			t.Fatal("Release with pooling off must not detach storage")
		}
	})
}

func TestPoolStatsCounters(t *testing.T) {
	withPooling(t, true, func() {
		// sync.Pool retention is GC-dependent, so only the total request
		// count is asserted here; exact hit/byte accounting is pinned by
		// TestArenaReuseAndZeroing on the deterministic arena freelist.
		ResetStats()
		buf := GetBuf(1 << 10)
		PutBuf(buf)
		buf = GetBuf(1 << 10)
		PutBuf(buf)
		s := Stats()
		if s.Hits+s.Misses != 2 {
			t.Fatalf("expected 2 pool requests accounted, got %+v", s)
		}
		str := s.String()
		for _, field := range []string{"pool-hit=", "pool-miss=", "pool-bytes="} {
			if !strings.Contains(str, field) {
				t.Fatalf("Stats().String() = %q, missing %s", str, field)
			}
		}
	})
}

func TestTensorReleaseDetaches(t *testing.T) {
	withPooling(t, true, func() {
		p := NewPooled(4, 4)
		p.Data()[3] = 42
		p.Release()
		defer func() {
			if recover() == nil {
				t.Fatal("access after Release did not panic")
			}
		}()
		_ = p.Data()[0]
	})
}

func TestArenaReuseAndZeroing(t *testing.T) {
	withPooling(t, true, func() {
		a := NewArena()
		x := a.Tensor(8, 8)
		x.Fill(3.5)
		buf32 := a.Buf32(16)
		buf32[0] = 1

		a.Reset()
		ResetStats()
		y := a.Tensor(8, 8) // must come from the freelist, zeroed
		for i, v := range y.Data() {
			if v != 0 {
				t.Fatalf("arena handed out dirty storage at %d: %v", i, v)
			}
		}
		if s := Stats(); s.Hits != 1 || s.Misses != 0 {
			t.Fatalf("arena reuse not counted as a hit: %+v", s)
		}
		f := a.F32(4, 4)
		if s := Stats(); s.Hits != 2 {
			t.Fatalf("f32 arena reuse not counted: %+v", s)
		}
		for i, v := range f.Data() {
			if v != 0 {
				t.Fatalf("arena handed out dirty f32 storage at %d: %v", i, v)
			}
		}
		a.Release()
	})
}

// TestPoolStressConcurrent hammers Get/Put from many goroutines, each
// verifying that its buffers are never aliased with another goroutine's
// live buffer. Run under -race by make test-race and make serve-chaos's
// CI sibling.
func TestPoolStressConcurrent(t *testing.T) {
	withPooling(t, true, func() {
		const (
			workers = 8
			rounds  = 200
		)
		sizes := []int{17, 64, 129, 1000, 4096}
		var wg sync.WaitGroup
		errs := make(chan string, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				for r := 0; r < rounds; r++ {
					n := sizes[(id+r)%len(sizes)]
					buf := GetBuf(n)
					buf32 := GetBuf32(n)
					stamp := float64(id*1_000_000 + r)
					for i := range buf {
						buf[i] = stamp
						buf32[i] = float32(id + 1)
					}
					for i := range buf {
						if buf[i] != stamp || buf32[i] != float32(id+1) {
							select {
							case errs <- "buffer aliased across goroutines":
							default:
							}
							return
						}
					}
					PutBuf(buf)
					PutBuf32(buf32)
				}
			}(w)
		}
		wg.Wait()
		close(errs)
		if msg, ok := <-errs; ok {
			t.Fatal(msg)
		}
	})
}
