package tensor

import (
	"runtime"
	"sync/atomic"

	"tdfm/internal/parallel"
)

// maxPar caps how many workers a single tensor operation may fan out to.
var maxPar atomic.Int64

func init() { maxPar.Store(int64(runtime.GOMAXPROCS(0))) }

// SetParallelism caps the worker count of a single tensor operation (the
// matrix products and the im2col/col2im transforms). n <= 0 resets to
// runtime.GOMAXPROCS(0); 1 disables intra-op parallelism. Workers are
// drawn from the shared parallel budget (see internal/parallel), so tensor
// ops nested under a higher-level fan-out — ensemble members, experiment
// cells — degrade to the serial loop instead of oversubscribing the
// machine. Results are bit-identical at every setting: shards own disjoint
// output regions and preserve the serial per-element accumulation order.
func SetParallelism(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	maxPar.Store(int64(n))
}

// Parallelism returns the current per-op worker cap.
func Parallelism() int { return int(maxPar.Load()) }

// minParOps is the approximate number of inner-loop operations below which
// an operation always runs serially: goroutine startup costs more than the
// arithmetic saved.
const minParOps = 1 << 15

// parWorkers returns the worker count an operation with ops inner-loop
// operations should fan out to: 1 (serial) unless more than one worker
// is allowed and the op is big enough to amortize goroutine startup.
// Kernels branch on it before building a shard closure, so the serial
// path — the common case on small machines and small operands — does
// not allocate.
func parWorkers(ops int) int {
	w := Parallelism()
	if w < 2 || ops < minParOps {
		return 1
	}
	return w
}

// pfor shards [0, n) across workers when the operation performs enough
// work to amortize fan-out, and runs fn(0, n) inline otherwise.
func pfor(n int, ops int, fn func(lo, hi int)) {
	w := parWorkers(ops)
	if w < 2 {
		fn(0, n)
		return
	}
	parallel.For(n, w, fn)
}

// Shard is pfor for batch-first kernels outside this package (the nn
// layers' direct convolution and pooling loops): it shards [0, n) across
// at most Parallelism() workers from the shared budget when ops (the
// approximate inner-loop operation count) amortizes the fan-out, and
// runs fn(0, n) inline otherwise. Callers must write disjoint output
// regions per shard and keep the serial per-element order within a
// shard, so every worker count reproduces the serial result bit for bit.
func Shard(n int, ops int, fn func(lo, hi int)) { pfor(n, ops, fn) }
