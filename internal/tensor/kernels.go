package tensor

import "tdfm/internal/parallel"

// Generic compute kernels shared by the float64 tensor type and the F32
// inference storage variant. Each kernel is an exact structural copy of
// the original float64 loop — same cache blocking, same zero-skip, same
// ascending-index accumulation order, same sharding over disjoint
// output regions — so instantiating at float64 reproduces the historical
// results bit for bit at any worker count, and the float32 instantiation
// inherits the same determinism guarantees at its own precision.
//
// Every kernel's shard body lives in a named ...Range function and the
// kernel branches on parWorkers before building the shard closure: the
// serial path (small operands, or a single-worker cap) performs no
// closure allocation, which keeps the training loop's steady-state
// allocation count flat.
//
// Kernels that accumulate (gemm, gemmTransA, col2im) or rely on implicit
// zero padding (im2col) require a zero-filled destination, exactly what
// New, NewPooled, GetBuf, and the Arena allocators return.

// element constrains the storage scalar types the kernels support.
type element interface {
	~float32 | ~float64
}

// gemmRange applies the gemm row window [lo, hi).
func gemmRange[E element](dst, a, b []E, k, n, lo, hi int) {
	if k <= blockK && n <= blockN {
		// Small operands: the i-k-j loop order keeps the innermost
		// accesses sequential in both the output row and the right
		// operand row, which matters on tiny caches.
		for i := lo; i < hi; i++ {
			ti := a[i*k : (i+1)*k]
			oi := dst[i*n : (i+1)*n]
			for p := 0; p < k; p++ {
				av := ti[p]
				if av == 0 {
					continue
				}
				up := b[p*n : (p+1)*n]
				for j, bv := range up {
					oi[j] += av * bv
				}
			}
		}
		return
	}
	for p0 := 0; p0 < k; p0 += blockK {
		p1 := p0 + blockK
		if p1 > k {
			p1 = k
		}
		for j0 := 0; j0 < n; j0 += blockN {
			j1 := j0 + blockN
			if j1 > n {
				j1 = n
			}
			for i := lo; i < hi; i++ {
				ti := a[i*k : (i+1)*k]
				oi := dst[i*n+j0 : i*n+j1]
				for p := p0; p < p1; p++ {
					av := ti[p]
					if av == 0 {
						continue
					}
					up := b[p*n+j0 : p*n+j1]
					for j, bv := range up {
						oi[j] += av * bv
					}
				}
			}
		}
	}
}

// gemm computes dst += a × b for row-major a [m,k], b [k,n], dst [m,n],
// cache-blocked and sharded over output rows. dst must be zero-filled for
// a plain product.
func gemm[E element](dst, a, b []E, m, k, n int) {
	if w := parWorkers(m * k * n); w >= 2 {
		parallel.For(m, w, func(lo, hi int) { gemmRange(dst, a, b, k, n, lo, hi) })
		return
	}
	gemmRange(dst, a, b, k, n, 0, m)
}

// gemmTransARange applies the gemmTransA column window [jlo, jhi).
func gemmTransARange[E element](dst, a, b []E, k, m, n, jlo, jhi int) {
	for p := 0; p < k; p++ {
		tp := a[p*m : (p+1)*m]
		up := b[p*n+jlo : p*n+jhi]
		for i, av := range tp {
			if av == 0 {
				continue
			}
			oi := dst[i*n+jlo : i*n+jhi]
			for j, bv := range up {
				oi[j] += av * bv
			}
		}
	}
}

// gemmTransA computes dst += aᵀ × b for a [k,m], b [k,n], dst [m,n],
// sharded over output columns so each worker applies the full ascending-p
// accumulation to its own column window. dst must be zero-filled for a
// plain product.
func gemmTransA[E element](dst, a, b []E, k, m, n int) {
	if w := parWorkers(k * m * n); w >= 2 {
		parallel.For(n, w, func(jlo, jhi int) { gemmTransARange(dst, a, b, k, m, n, jlo, jhi) })
		return
	}
	gemmTransARange(dst, a, b, k, m, n, 0, n)
}

// gemmTransBRange applies the gemmTransB row window [lo, hi).
func gemmTransBRange[E element](dst, a, b []E, k, n, lo, hi int) {
	for i := lo; i < hi; i++ {
		ti := a[i*k : (i+1)*k]
		oi := dst[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			uj := b[j*k : (j+1)*k]
			var s E
			for p, av := range ti {
				s += av * uj[p]
			}
			oi[j] = s
		}
	}
}

// gemmTransB computes dst = a × bᵀ for a [m,k], b [n,k], dst [m,n],
// sharded over output rows. Every destination element is overwritten.
func gemmTransB[E element](dst, a, b []E, m, k, n int) {
	if w := parWorkers(m * k * n); w >= 2 {
		parallel.For(m, w, func(lo, hi int) { gemmTransBRange(dst, a, b, k, n, lo, hi) })
		return
	}
	gemmTransBRange(dst, a, b, k, n, 0, m)
}

// im2colRange unrolls the image window [imgLo, imgHi).
func im2colRange[E element](dst, x []E, c, h, w, oh, ow, colStride int, g ConvGeom, imgLo, imgHi int) {
	for img := imgLo; img < imgHi; img++ {
		base := img * c * h * w
		for oy := 0; oy < oh; oy++ {
			iy0 := oy*g.StrideH - g.PadH
			for ox := 0; ox < ow; ox++ {
				ix0 := ox*g.StrideW - g.PadW
				row := ((img*oh+oy)*ow + ox) * colStride
				for ch := 0; ch < c; ch++ {
					chBase := base + ch*h*w
					for ky := 0; ky < g.KH; ky++ {
						iy := iy0 + ky
						dstOff := row + (ch*g.KH+ky)*g.KW
						if iy < 0 || iy >= h {
							continue // leave zeros
						}
						src := chBase + iy*w
						for kx := 0; kx < g.KW; kx++ {
							ix := ix0 + kx
							if ix < 0 || ix >= w {
								continue
							}
							dst[dstOff+kx] = x[src+ix]
						}
					}
				}
			}
		}
	}
}

// im2colKernel unrolls x [n,c,h,w] into receptive-field rows
// [n*oh*ow, c*KH*KW], sharded by image. dst must be zero-filled: padded
// positions are simply left untouched.
func im2colKernel[E element](dst, x []E, n, c, h, w int, g ConvGeom) {
	oh, ow := g.OutSize(h, w)
	colStride := c * g.KH * g.KW
	if ww := parWorkers(n * oh * ow * colStride); ww >= 2 {
		parallel.For(n, ww, func(imgLo, imgHi int) {
			im2colRange(dst, x, c, h, w, oh, ow, colStride, g, imgLo, imgHi)
		})
		return
	}
	im2colRange(dst, x, c, h, w, oh, ow, colStride, g, 0, n)
}

// col2imRange scatters the image window [imgLo, imgHi).
func col2imRange[E element](dst, cols []E, c, h, w, oh, ow, colStride int, g ConvGeom, imgLo, imgHi int) {
	for img := imgLo; img < imgHi; img++ {
		base := img * c * h * w
		for oy := 0; oy < oh; oy++ {
			iy0 := oy*g.StrideH - g.PadH
			for ox := 0; ox < ow; ox++ {
				ix0 := ox*g.StrideW - g.PadW
				row := ((img*oh+oy)*ow + ox) * colStride
				for ch := 0; ch < c; ch++ {
					chBase := base + ch*h*w
					for ky := 0; ky < g.KH; ky++ {
						iy := iy0 + ky
						if iy < 0 || iy >= h {
							continue
						}
						src := row + (ch*g.KH+ky)*g.KW
						dstOff := chBase + iy*w
						for kx := 0; kx < g.KW; kx++ {
							ix := ix0 + kx
							if ix < 0 || ix >= w {
								continue
							}
							dst[dstOff+ix] += cols[src+kx]
						}
					}
				}
			}
		}
	}
}

// col2imKernel scatters (accumulating on overlap) column rows back into a
// zero-filled [n,c,h,w] destination, sharded by image.
func col2imKernel[E element](dst, cols []E, n, c, h, w int, g ConvGeom) {
	oh, ow := g.OutSize(h, w)
	colStride := c * g.KH * g.KW
	if ww := parWorkers(n * oh * ow * colStride); ww >= 2 {
		parallel.For(n, ww, func(imgLo, imgHi int) {
			col2imRange(dst, cols, c, h, w, oh, ow, colStride, g, imgLo, imgHi)
		})
		return
	}
	col2imRange(dst, cols, c, h, w, oh, ow, colStride, g, 0, n)
}

// rowsToNCHWRange converts the image window [imgLo, imgHi).
func rowsToNCHWRange[E element](dst, rows []E, c, oh, ow, imgLo, imgHi int) {
	for img := imgLo; img < imgHi; img++ {
		for y := 0; y < oh; y++ {
			for x := 0; x < ow; x++ {
				row := ((img*oh+y)*ow + x) * c
				for ch := 0; ch < c; ch++ {
					dst[((img*c+ch)*oh+y)*ow+x] = rows[row+ch]
				}
			}
		}
	}
}

// rowsToNCHWKernel reinterprets position-major rows [n*oh*ow, c] as an
// [n,c,oh,ow] activation, sharded by image. Every destination element is
// overwritten.
func rowsToNCHWKernel[E element](dst, rows []E, n, c, oh, ow int) {
	if w := parWorkers(n * c * oh * ow); w >= 2 {
		parallel.For(n, w, func(imgLo, imgHi int) { rowsToNCHWRange(dst, rows, c, oh, ow, imgLo, imgHi) })
		return
	}
	rowsToNCHWRange(dst, rows, c, oh, ow, 0, n)
}

// nchwToRowsRange converts the image window [imgLo, imgHi).
func nchwToRowsRange[E element](dst, x []E, c, h, w, imgLo, imgHi int) {
	for img := imgLo; img < imgHi; img++ {
		for ch := 0; ch < c; ch++ {
			for y := 0; y < h; y++ {
				for xx := 0; xx < w; xx++ {
					dst[((img*h+y)*w+xx)*c+ch] = x[((img*c+ch)*h+y)*w+xx]
				}
			}
		}
	}
}

// nchwToRowsKernel converts [n,c,h,w] to position-major rows [n*h*w, c];
// the inverse of rowsToNCHWKernel. Every destination element is
// overwritten.
func nchwToRowsKernel[E element](dst, x []E, n, c, h, w int) {
	if ww := parWorkers(n * c * h * w); ww >= 2 {
		parallel.For(n, ww, func(imgLo, imgHi int) { nchwToRowsRange(dst, x, c, h, w, imgLo, imgHi) })
		return
	}
	nchwToRowsRange(dst, x, c, h, w, 0, n)
}

// addRowVector adds the [cols] vector v to every row of the [rows, cols]
// matrix m in place.
func addRowVector[E element](m, v []E, rows, cols int) {
	for r := 0; r < rows; r++ {
		row := m[r*cols : (r+1)*cols]
		for c := range row {
			row[c] += v[c]
		}
	}
}

// sumRows accumulates the column sums of the [rows, cols] matrix m into
// dst, which must be zero-filled for a plain sum.
func sumRows[E element](dst, m []E, rows, cols int) {
	for r := 0; r < rows; r++ {
		row := m[r*cols : (r+1)*cols]
		for c, v := range row {
			dst[c] += v
		}
	}
}
