package tensor

import (
	"testing"
	"testing/quick"

	"tdfm/internal/xrand"
)

// Property: Transpose2D is an involution.
func TestQuickTransposeInvolution(t *testing.T) {
	rng := xrand.New(31)
	f := func(seed uint64) bool {
		r := xrand.New(seed%941 + 1)
		m, n := 1+r.IntN(8), 1+r.IntN(8)
		a := New(m, n)
		rng.FillNormal(a.Data(), 0, 1)
		return a.Transpose2D().Transpose2D().Equal(a, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: scaling is linear — (a+b)·s == a·s + b·s.
func TestQuickScaleLinearity(t *testing.T) {
	rng := xrand.New(33)
	f := func(seed uint64) bool {
		r := xrand.New(seed%937 + 1)
		n := 1 + r.IntN(20)
		s := r.Uniform(-3, 3)
		a, b := New(n), New(n)
		rng.FillNormal(a.Data(), 0, 1)
		rng.FillNormal(b.Data(), 0, 1)
		left := a.Add(b).Scale(s)
		right := a.Scale(s).Add(b.Scale(s))
		return left.Equal(right, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: AddScaledIn(s, u) equals Add(u.Scale(s)).
func TestQuickAddScaledConsistency(t *testing.T) {
	rng := xrand.New(35)
	f := func(seed uint64) bool {
		r := xrand.New(seed%929 + 1)
		n := 1 + r.IntN(20)
		s := r.Uniform(-2, 2)
		a, u := New(n), New(n)
		rng.FillNormal(a.Data(), 0, 1)
		rng.FillNormal(u.Data(), 0, 1)
		left := a.Clone().AddScaledIn(s, u)
		right := a.Add(u.Scale(s))
		return left.Equal(right, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: SumRows equals the matmul with a ones row-vector.
func TestQuickSumRowsViaMatMul(t *testing.T) {
	rng := xrand.New(37)
	f := func(seed uint64) bool {
		r := xrand.New(seed%919 + 1)
		m, n := 1+r.IntN(6), 1+r.IntN(6)
		a := New(m, n)
		rng.FillNormal(a.Data(), 0, 1)
		ones := Full(1, 1, m)
		viaMatMul := ones.MatMul(a).Reshape(n)
		return a.SumRows().Equal(viaMatMul, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: the L2 norm is preserved under transposition and flattening.
func TestQuickNormInvariants(t *testing.T) {
	rng := xrand.New(39)
	f := func(seed uint64) bool {
		r := xrand.New(seed%911 + 1)
		m, n := 1+r.IntN(6), 1+r.IntN(6)
		a := New(m, n)
		rng.FillNormal(a.Data(), 0, 1)
		n1 := a.L2Norm()
		n2 := a.Transpose2D().L2Norm()
		n3 := a.Reshape(m * n).L2Norm()
		return abs(n1-n2) < 1e-9 && abs(n1-n3) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// Property: Im2Col output contains exactly the input values (with
// zero-padding) — its column sums with a ones kernel equal box-filter sums.
func TestQuickIm2ColMassConservation(t *testing.T) {
	rng := xrand.New(41)
	f := func(seed uint64) bool {
		r := xrand.New(seed%907 + 1)
		h := 3 + r.IntN(4)
		w := 3 + r.IntN(4)
		x := New(1, 1, h, w)
		rng.FillNormal(x.Data(), 0, 1)
		// Stride-1 1x1 kernel, no padding: Im2Col must be a bijection on
		// values, so total mass is conserved.
		g := ConvGeom{KH: 1, KW: 1, StrideH: 1, StrideW: 1}
		cols := Im2Col(x, g)
		return abs(cols.Sum()-x.Sum()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// MatMul against a known identity: A·I = A and I·A = A.
func TestMatMulIdentity(t *testing.T) {
	rng := xrand.New(43)
	a := New(4, 4)
	rng.FillNormal(a.Data(), 0, 1)
	eye := New(4, 4)
	for i := 0; i < 4; i++ {
		eye.Set(1, i, i)
	}
	if !a.MatMul(eye).Equal(a, 1e-12) || !eye.MatMul(a).Equal(a, 1e-12) {
		t.Fatal("identity multiplication failed")
	}
}

// Associativity on small matrices: (AB)C == A(BC).
func TestQuickMatMulAssociative(t *testing.T) {
	rng := xrand.New(45)
	f := func(seed uint64) bool {
		r := xrand.New(seed%887 + 1)
		m, k, l, n := 1+r.IntN(4), 1+r.IntN(4), 1+r.IntN(4), 1+r.IntN(4)
		a := New(m, k)
		b := New(k, l)
		c := New(l, n)
		rng.FillNormal(a.Data(), 0, 1)
		rng.FillNormal(b.Data(), 0, 1)
		rng.FillNormal(c.Data(), 0, 1)
		left := a.MatMul(b).MatMul(c)
		right := a.MatMul(b.MatMul(c))
		return left.Equal(right, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
