// Package xrand provides deterministic, splittable pseudo-random number
// generation for the TDFM study.
//
// Every stochastic component in the repository (weight initialization,
// dataset synthesis, fault injection, batch shuffling, dropout masks)
// draws from an *RNG obtained from a single experiment seed, so that any
// experiment configuration is exactly reproducible from its seed alone.
//
// The generator wraps math/rand/v2's PCG and adds:
//
//   - Split: derive statistically independent child streams by label, so
//     that adding a consumer never perturbs the draws seen by existing
//     consumers (a common reproducibility bug in ML harnesses).
//   - Gaussian and uniform tensor-fill helpers used by layer initializers.
//   - Sampling utilities (shuffle, choice without replacement) used by the
//     fault injector and data loaders.
package xrand

import (
	"hash/fnv"
	"math/rand/v2"
)

// RNG is a deterministic random stream. The zero value is not usable; use
// New or Split to construct one.
type RNG struct {
	src *rand.Rand
}

// New returns a stream seeded with the given seed. Equal seeds yield equal
// streams.
func New(seed uint64) *RNG {
	return &RNG{src: rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))}
}

// Split derives an independent child stream identified by label. The child
// depends only on (parent seed material, label), not on how many values the
// parent has already produced, because it draws exactly two words from the
// parent in a fixed order at the call site. Callers should therefore split
// all children up front, in a deterministic order.
func (r *RNG) Split(label string) *RNG {
	h := fnv.New64a()
	_, _ = h.Write([]byte(label))
	a := r.src.Uint64() ^ h.Sum64()
	b := r.src.Uint64() ^ (h.Sum64() * 0x9e3779b97f4a7c15)
	return &RNG{src: rand.New(rand.NewPCG(a, b))}
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 { return r.src.Uint64() }

// Int64 returns a non-negative random int64.
func (r *RNG) Int64() int64 { return r.src.Int64() }

// IntN returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) IntN(n int) int { return r.src.IntN(n) }

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 { return r.src.Float64() }

// NormFloat64 returns a standard-normal float64.
func (r *RNG) NormFloat64() float64 { return r.src.NormFloat64() }

// Uniform returns a uniform float64 in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.src.Float64()
}

// Normal returns a Gaussian sample with the given mean and standard
// deviation.
func (r *RNG) Normal(mean, std float64) float64 {
	return mean + std*r.src.NormFloat64()
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int { return r.src.Perm(n) }

// Shuffle permutes a slice of ints in place.
func (r *RNG) Shuffle(xs []int) {
	r.src.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

// Choice returns k distinct indices drawn uniformly from [0, n) in random
// order. It panics if k > n or k < 0.
func (r *RNG) Choice(n, k int) []int {
	if k < 0 || k > n {
		panic("xrand: Choice requires 0 <= k <= n")
	}
	perm := r.src.Perm(n)
	out := make([]int, k)
	copy(out, perm[:k])
	return out
}

// FillNormal fills dst with Gaussian samples of the given mean and std.
func (r *RNG) FillNormal(dst []float64, mean, std float64) {
	for i := range dst {
		dst[i] = mean + std*r.src.NormFloat64()
	}
}

// FillUniform fills dst with uniform samples in [lo, hi).
func (r *RNG) FillUniform(dst []float64, lo, hi float64) {
	for i := range dst {
		dst[i] = lo + (hi-lo)*r.src.Float64()
	}
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool { return r.src.Float64() < p }
