package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different seeds matched %d/64 draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	// Children with different labels must differ; same label from the same
	// parent state must agree.
	p1, p2 := New(7), New(7)
	c1 := p1.Split("init")
	c2 := p2.Split("init")
	for i := 0; i < 50; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatal("same-label splits from identical parents diverged")
		}
	}
	p3, p4 := New(7), New(7)
	d1 := p3.Split("init")
	d2 := p4.Split("data")
	diff := false
	for i := 0; i < 50; i++ {
		if d1.Uint64() != d2.Uint64() {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different-label splits produced identical streams")
	}
}

func TestIntNRange(t *testing.T) {
	r := New(3)
	for i := 0; i < 1000; i++ {
		v := r.IntN(10)
		if v < 0 || v >= 10 {
			t.Fatalf("IntN out of range: %d", v)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(4)
	for i := 0; i < 1000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestUniformRange(t *testing.T) {
	r := New(5)
	for i := 0; i < 1000; i++ {
		v := r.Uniform(-2, 3)
		if v < -2 || v >= 3 {
			t.Fatalf("Uniform out of range: %v", v)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(6)
	n := 20000
	sum, sum2 := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Normal(5, 2)
		sum += v
		sum2 += v * v
	}
	mean := sum / float64(n)
	std := math.Sqrt(sum2/float64(n) - mean*mean)
	if math.Abs(mean-5) > 0.1 {
		t.Errorf("mean = %v, want ≈5", mean)
	}
	if math.Abs(std-2) > 0.1 {
		t.Errorf("std = %v, want ≈2", std)
	}
}

// Property: Choice(n, k) yields k distinct in-range indices.
func TestQuickChoiceDistinct(t *testing.T) {
	r := New(8)
	f := func(seed uint64) bool {
		n := 1 + int(seed%50)
		k := int(seed % uint64(n+1))
		got := r.Choice(n, k)
		if len(got) != k {
			return false
		}
		seen := make(map[int]bool, k)
		for _, v := range got {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestChoicePanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Choice(3, 4)
}

// Property: Perm(n) is a permutation of 0..n-1.
func TestQuickPermIsPermutation(t *testing.T) {
	r := New(9)
	f := func(seed uint64) bool {
		n := int(seed%64) + 1
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(p) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := New(10)
	xs := []int{1, 2, 2, 3, 5, 8}
	total := 0
	for _, v := range xs {
		total += v
	}
	r.Shuffle(xs)
	got := 0
	for _, v := range xs {
		got += v
	}
	if got != total || len(xs) != 6 {
		t.Fatal("Shuffle changed contents")
	}
}

func TestFillHelpers(t *testing.T) {
	r := New(11)
	buf := make([]float64, 500)
	r.FillUniform(buf, 2, 4)
	for _, v := range buf {
		if v < 2 || v >= 4 {
			t.Fatalf("FillUniform out of range: %v", v)
		}
	}
	r.FillNormal(buf, 0, 1)
	anyNonZero := false
	for _, v := range buf {
		if v != 0 {
			anyNonZero = true
		}
	}
	if !anyNonZero {
		t.Fatal("FillNormal produced all zeros")
	}
}

func TestBernoulliExtremes(t *testing.T) {
	r := New(12)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}
