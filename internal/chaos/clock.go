package chaos

import (
	"sync"
	"time"
)

// Clock abstracts the wall clock for code whose *behaviour* depends on
// time — deadlines, breaker cooldowns, injected delays — but whose
// *results* must not. Production code holds a Clock (usually Wall) and
// never calls time.Now or time.Sleep directly; tests inject a FakeClock
// and advance it explicitly, so every timeout and cooldown path runs
// deterministically with zero wall-clock sleeps. The nodeterminism lint
// pass enforces the split: bare time calls outside the sanctioned
// packages are findings, calls through a Clock are allowed.
type Clock interface {
	// Now returns the clock's current time.
	Now() time.Time
	// Sleep blocks the calling goroutine for d (no-op when d <= 0).
	Sleep(d time.Duration)
	// NewTimer returns a timer that fires once after d. Callers must
	// Stop timers they abandon so fake clocks can account for waiters
	// exactly.
	NewTimer(d time.Duration) Timer
}

// Timer is the clock-agnostic subset of time.Timer the repository uses.
type Timer interface {
	// C returns the channel the timer fires on.
	C() <-chan time.Time
	// Stop cancels the timer; it reports whether the timer was still
	// pending (mirroring time.Timer.Stop).
	Stop() bool
}

// Wall returns the real-time Clock backed by package time.
func Wall() Clock { return wallClock{} }

type wallClock struct{}

// Now implements Clock.
func (wallClock) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (wallClock) Sleep(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}

// NewTimer implements Clock.
func (wallClock) NewTimer(d time.Duration) Timer { return wallTimer{time.NewTimer(d)} }

type wallTimer struct{ t *time.Timer }

// C implements Timer.
func (w wallTimer) C() <-chan time.Time { return w.t.C }

// Stop implements Timer.
func (w wallTimer) Stop() bool { return w.t.Stop() }

// FakeClock is a manually advanced Clock for deterministic tests. Time
// moves only when Advance is called; Sleep and NewTimer register waiters
// that fire when the clock passes their deadline. BlockUntil lets a test
// wait for goroutines to reach their Sleep/NewTimer calls before
// advancing, which replaces every "sleep a bit and hope" synchronization
// with an exact rendezvous.
type FakeClock struct {
	mu      sync.Mutex
	cond    *sync.Cond
	now     time.Time
	waiters []*fakeTimer
}

// NewFake returns a FakeClock starting at the fixed epoch
// 2000-01-01T00:00:00Z; the starting instant is arbitrary but constant so
// logged timestamps are reproducible.
func NewFake() *FakeClock {
	c := &FakeClock{now: time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC)}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// Now implements Clock.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Sleep implements Clock: it blocks until Advance moves the clock past
// the deadline. Sleep(d <= 0) returns immediately.
func (c *FakeClock) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	t := c.NewTimer(d)
	<-t.C()
}

// NewTimer implements Clock. A timer with d <= 0 fires immediately.
func (c *FakeClock) NewTimer(d time.Duration) Timer {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := &fakeTimer{clock: c, ch: make(chan time.Time, 1), deadline: c.now.Add(d)}
	if d <= 0 {
		t.ch <- c.now
		return t
	}
	c.waiters = append(c.waiters, t)
	c.cond.Broadcast()
	return t
}

// Advance moves the clock forward by d and fires every pending timer
// whose deadline has been reached, in deadline order.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
	remaining := c.waiters[:0]
	for _, t := range c.waiters {
		if !t.deadline.After(c.now) {
			t.ch <- c.now
		} else {
			remaining = append(remaining, t)
		}
	}
	c.waiters = remaining
	c.cond.Broadcast()
}

// Waiters returns how many timers (including Sleep calls) are currently
// pending.
func (c *FakeClock) Waiters() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.waiters)
}

// BlockUntil returns once at least n timers are pending on the clock.
// Tests call it to rendezvous with goroutines that are about to wait
// (a hung member's injected Delay, a dispatcher's deadline timer) before
// advancing time past them.
func (c *FakeClock) BlockUntil(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.waiters) < n {
		c.cond.Wait()
	}
}

type fakeTimer struct {
	clock    *FakeClock
	ch       chan time.Time
	deadline time.Time
}

// C implements Timer.
func (t *fakeTimer) C() <-chan time.Time { return t.ch }

// Stop implements Timer: it deregisters the timer from the fake clock so
// abandoned deadlines do not distort Waiters/BlockUntil accounting.
func (t *fakeTimer) Stop() bool {
	t.clock.mu.Lock()
	defer t.clock.mu.Unlock()
	for i, w := range t.clock.waiters {
		if w == t {
			t.clock.waiters = append(t.clock.waiters[:i], t.clock.waiters[i+1:]...)
			t.clock.cond.Broadcast()
			return true
		}
	}
	return false
}
