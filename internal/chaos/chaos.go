// Package chaos is the repository's fault-injection harness for its own
// infrastructure — fitting, for a reproduction of a paper about injecting
// faults. Production code declares named faultpoints (Check calls) at the
// places where real deployments fail: the trainer's loss computation, the
// experiment cell body, the journal append. Tests arm faults against those
// points (a panic, an error, a NaN) scoped to specific runs by label, and
// then assert that the engine isolates, classifies, retries, and reports
// the failure instead of losing the grid.
//
// The harness is compiled into production binaries but costs one atomic
// load per faultpoint while nothing is armed; it has no effect unless a
// test (or an operator drill) calls Arm.
//
// Faultpoints currently declared:
//
//	core.trainLoop.loss      NaN/panic in the trainer's per-batch loss
//	experiment.trainCell     panic/error around one experiment cell
//	obs.journal.append       error on the journal's durable append
//	serve/member             delay/panic/error inside one ensemble
//	                         member's inference dispatch
//	serve/spawn              error launching a member shard process
//	                         (exercises the supervisor's start-failed path)
//	registry.publish         error between artifact install and manifest
//	                         append (a crashed publisher)
//	registry.open            error opening a published version (a version
//	                         that refuses to load, without touching disk)
//	dist.lease               error granting a cell lease (the grid
//	                         coordinator's /lease path; workers retry)
//	dist.complete            error accepting a cell completion (the
//	                         coordinator's /complete path; the flowback
//	                         is refused and the worker redelivers)
//
// Labels scope a fault to specific runs: the trainer passes its Config.Tag
// (the experiment runner sets it to the cell key), the cell and journal
// points pass the cell key, the serving layer passes
// "<request id>/<member name>", the spawn point passes the member name,
// the registry points pass the version label ("v3"), the dist.lease point
// passes the worker ID, and dist.complete passes the cell key. Matching is
// by substring; an empty pattern matches every label.
package chaos

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Action describes what an armed faultpoint does when it fires. Exactly
// the fields relevant to the faultpoint are consulted: the trainer honours
// NaN and Panic, the cell and journal points honour Panic and Err, and the
// serving-layer member point honours Delay, Panic, and Err.
type Action struct {
	// Panic makes the faultpoint panic with a recognizable value.
	Panic bool
	// Err is returned by error-shaped faultpoints when non-nil.
	Err error
	// NaN makes numeric faultpoints corrupt their value to NaN.
	NaN bool
	// Delay makes latency-shaped faultpoints sleep this long before
	// proceeding (see Wait). The sleep goes through the faultpoint's
	// injected Clock, so a FakeClock test simulates a hung or slow
	// component without any wall-clock sleeping.
	Delay time.Duration
	// Times bounds how often the fault fires; 0 means every time. A fault
	// with Times n disarms itself after n firings.
	Times int
}

// Wait applies the action's Delay on the given clock. It is nil-safe so
// call sites can invoke it straight on Check's result before inspecting
// the other fields; a nil action or zero Delay returns immediately.
func (a *Action) Wait(c Clock) {
	if a == nil || a.Delay <= 0 {
		return
	}
	c.Sleep(a.Delay)
}

// ErrInjected is the base error of harness-injected failures: every
// Action.Err used by the repository's chaos tests wraps it, so error
// classification can be asserted without string matching.
var ErrInjected = errors.New("chaos: injected fault")

// arming is one armed fault: a label pattern plus the action to take.
type arming struct {
	pattern string
	act     Action
	fired   int
}

var (
	armed   atomic.Bool // fast path: no lock unless something is armed
	mu      sync.Mutex
	points  map[string][]*arming
	firings int
)

// Arm installs a fault at the named point for every label containing
// pattern (empty pattern matches all labels). Multiple faults may be armed
// at one point; the first match wins. Arm is test infrastructure: call
// Reset when done so later tests see a clean harness.
func Arm(point, pattern string, act Action) {
	mu.Lock()
	defer mu.Unlock()
	if points == nil {
		points = make(map[string][]*arming)
	}
	points[point] = append(points[point], &arming{pattern: pattern, act: act})
	armed.Store(true)
}

// Reset disarms every faultpoint and zeroes the firing counter.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	points = nil
	firings = 0
	armed.Store(false)
}

// Firings returns how many times any faultpoint has fired since the last
// Reset (diagnostic, used by tests to assert a fault actually triggered).
func Firings() int {
	mu.Lock()
	defer mu.Unlock()
	return firings
}

// Armed reports whether any faultpoint is currently armed anywhere: a
// single atomic load. Hot paths use it to skip building Check labels
// (string concatenation) while the harness is idle.
func Armed() bool { return armed.Load() }

// Check reports the action armed at the named point for the given label,
// or nil when nothing fires. When nothing is armed anywhere the cost is a
// single atomic load, so faultpoints are safe on hot paths.
func Check(point, label string) *Action {
	if !armed.Load() {
		return nil
	}
	mu.Lock()
	defer mu.Unlock()
	for _, a := range points[point] {
		if a.pattern != "" && !strings.Contains(label, a.pattern) {
			continue
		}
		if a.act.Times > 0 && a.fired >= a.act.Times {
			continue
		}
		a.fired++
		firings++
		act := a.act
		return &act
	}
	return nil
}
