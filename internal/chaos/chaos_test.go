package chaos

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestCheckDisarmed(t *testing.T) {
	Reset()
	if act := Check("any.point", "any-label"); act != nil {
		t.Fatalf("disarmed harness fired: %+v", act)
	}
	if Firings() != 0 {
		t.Fatalf("firings %d on a disarmed harness", Firings())
	}
}

func TestArmMatchesByLabelSubstring(t *testing.T) {
	Reset()
	defer Reset()
	Arm("p", "cell-7", Action{NaN: true})
	if Check("p", "cell-13") != nil {
		t.Fatal("non-matching label fired")
	}
	if Check("other", "cell-7") != nil {
		t.Fatal("other point fired")
	}
	act := Check("p", "grid/cell-7/rep0")
	if act == nil || !act.NaN {
		t.Fatalf("matching label did not fire: %+v", act)
	}
	if Firings() != 1 {
		t.Fatalf("firings = %d, want 1", Firings())
	}
}

func TestEmptyPatternMatchesEverything(t *testing.T) {
	Reset()
	defer Reset()
	Arm("p", "", Action{Panic: true})
	if act := Check("p", "whatever"); act == nil || !act.Panic {
		t.Fatal("empty pattern did not match")
	}
}

func TestTimesBoundsFirings(t *testing.T) {
	Reset()
	defer Reset()
	injected := errors.New("boom")
	Arm("p", "", Action{Err: injected, Times: 2})
	for i := 0; i < 2; i++ {
		if act := Check("p", "x"); act == nil || act.Err != injected {
			t.Fatalf("firing %d missing", i)
		}
	}
	if Check("p", "x") != nil {
		t.Fatal("Times-bounded fault fired a third time")
	}
	if Firings() != 2 {
		t.Fatalf("firings = %d, want 2", Firings())
	}
}

func TestFirstMatchWins(t *testing.T) {
	Reset()
	defer Reset()
	Arm("p", "a", Action{NaN: true, Times: 1})
	Arm("p", "", Action{Panic: true})
	if act := Check("p", "label-a"); act == nil || !act.NaN {
		t.Fatal("first armed match did not win")
	}
	// The NaN fault is exhausted; the catch-all takes over.
	if act := Check("p", "label-a"); act == nil || !act.Panic {
		t.Fatal("exhausted fault not skipped")
	}
}

func TestCheckConcurrent(t *testing.T) {
	Reset()
	defer Reset()
	Arm("p", "", Action{NaN: true, Times: 100})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				Check("p", "x")
			}
		}()
	}
	wg.Wait()
	if Firings() != 100 {
		t.Fatalf("firings = %d, want exactly 100", Firings())
	}
}

func TestDelayActionWaitsOnInjectedClock(t *testing.T) {
	Reset()
	defer Reset()
	clk := NewFake()
	Arm("p", "slow", Action{Delay: 100 * time.Millisecond})

	done := make(chan struct{})
	go func() {
		Check("p", "slow-member").Wait(clk)
		close(done)
	}()

	// The goroutine must be parked on the fake clock, not finished.
	clk.BlockUntil(1)
	select {
	case <-done:
		t.Fatal("Wait returned before the clock advanced")
	default:
	}
	clk.Advance(99 * time.Millisecond)
	select {
	case <-done:
		t.Fatal("Wait returned before the full delay elapsed")
	default:
	}
	clk.Advance(1 * time.Millisecond)
	<-done
	if clk.Waiters() != 0 {
		t.Fatalf("waiters = %d after the delay fired, want 0", clk.Waiters())
	}
}

func TestWaitNilAndZeroDelayReturnImmediately(t *testing.T) {
	clk := NewFake()
	var none *Action
	none.Wait(clk) // nil action: Check's miss path chains straight through
	(&Action{}).Wait(clk)
	(&Action{Delay: -time.Second}).Wait(clk)
	if clk.Waiters() != 0 {
		t.Fatalf("waiters = %d, want 0", clk.Waiters())
	}
}

func TestFakeClockTimerFireAndStop(t *testing.T) {
	clk := NewFake()
	start := clk.Now()
	fired := clk.NewTimer(50 * time.Millisecond)
	stopped := clk.NewTimer(80 * time.Millisecond)
	if n := clk.Waiters(); n != 2 {
		t.Fatalf("waiters = %d, want 2", n)
	}
	if !stopped.Stop() {
		t.Fatal("Stop on a pending timer reported false")
	}
	if stopped.Stop() {
		t.Fatal("second Stop reported true")
	}
	clk.Advance(60 * time.Millisecond)
	at := <-fired.C()
	if got := at.Sub(start); got != 60*time.Millisecond {
		t.Fatalf("timer fired at +%v, want +60ms", got)
	}
	select {
	case <-stopped.C():
		t.Fatal("stopped timer fired")
	default:
	}
	if fired.Stop() {
		t.Fatal("Stop on a fired timer reported true")
	}
	if clk.Waiters() != 0 {
		t.Fatalf("waiters = %d, want 0", clk.Waiters())
	}
}

func TestFakeClockImmediateTimerAndSleep(t *testing.T) {
	clk := NewFake()
	tm := clk.NewTimer(0)
	select {
	case <-tm.C():
	default:
		t.Fatal("zero-duration timer did not fire immediately")
	}
	clk.Sleep(0)          // returns without a waiter
	clk.Sleep(-time.Hour) // negative likewise
	if clk.Waiters() != 0 {
		t.Fatalf("waiters = %d, want 0", clk.Waiters())
	}
}

func TestWallClockSmoke(t *testing.T) {
	clk := Wall()
	before := time.Now()
	if clk.Now().Before(before) {
		t.Fatal("Wall().Now went backwards")
	}
	tm := clk.NewTimer(time.Hour)
	if !tm.Stop() {
		t.Fatal("Stop on a fresh wall timer reported false")
	}
	clk.Sleep(0) // must not block
}
