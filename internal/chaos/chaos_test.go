package chaos

import (
	"errors"
	"sync"
	"testing"
)

func TestCheckDisarmed(t *testing.T) {
	Reset()
	if act := Check("any.point", "any-label"); act != nil {
		t.Fatalf("disarmed harness fired: %+v", act)
	}
	if Firings() != 0 {
		t.Fatalf("firings %d on a disarmed harness", Firings())
	}
}

func TestArmMatchesByLabelSubstring(t *testing.T) {
	Reset()
	defer Reset()
	Arm("p", "cell-7", Action{NaN: true})
	if Check("p", "cell-13") != nil {
		t.Fatal("non-matching label fired")
	}
	if Check("other", "cell-7") != nil {
		t.Fatal("other point fired")
	}
	act := Check("p", "grid/cell-7/rep0")
	if act == nil || !act.NaN {
		t.Fatalf("matching label did not fire: %+v", act)
	}
	if Firings() != 1 {
		t.Fatalf("firings = %d, want 1", Firings())
	}
}

func TestEmptyPatternMatchesEverything(t *testing.T) {
	Reset()
	defer Reset()
	Arm("p", "", Action{Panic: true})
	if act := Check("p", "whatever"); act == nil || !act.Panic {
		t.Fatal("empty pattern did not match")
	}
}

func TestTimesBoundsFirings(t *testing.T) {
	Reset()
	defer Reset()
	injected := errors.New("boom")
	Arm("p", "", Action{Err: injected, Times: 2})
	for i := 0; i < 2; i++ {
		if act := Check("p", "x"); act == nil || act.Err != injected {
			t.Fatalf("firing %d missing", i)
		}
	}
	if Check("p", "x") != nil {
		t.Fatal("Times-bounded fault fired a third time")
	}
	if Firings() != 2 {
		t.Fatalf("firings = %d, want 2", Firings())
	}
}

func TestFirstMatchWins(t *testing.T) {
	Reset()
	defer Reset()
	Arm("p", "a", Action{NaN: true, Times: 1})
	Arm("p", "", Action{Panic: true})
	if act := Check("p", "label-a"); act == nil || !act.NaN {
		t.Fatal("first armed match did not win")
	}
	// The NaN fault is exhausted; the catch-all takes over.
	if act := Check("p", "label-a"); act == nil || !act.Panic {
		t.Fatal("exhausted fault not skipped")
	}
}

func TestCheckConcurrent(t *testing.T) {
	Reset()
	defer Reset()
	Arm("p", "", Action{NaN: true, Times: 100})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				Check("p", "x")
			}
		}()
	}
	wg.Wait()
	if Firings() != 100 {
		t.Fatalf("firings = %d, want exactly 100", Firings())
	}
}
