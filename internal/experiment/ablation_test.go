package experiment

import (
	"strings"
	"testing"

	"tdfm/internal/faultinject"
	"tdfm/internal/metrics"
)

func TestAblateEnsembleSizeShape(t *testing.T) {
	r := fastRunner(1)
	pts, err := r.AblateEnsembleSize("pneumonialike", 0.2, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("%d points", len(pts))
	}
	if pts[0].Setting != "n=1" || pts[1].Setting != "n=2" {
		t.Fatalf("settings %+v", pts)
	}
	for _, p := range pts {
		if p.AD.Mean < 0 || p.AD.Mean > 1 {
			t.Fatalf("AD out of range: %+v", p)
		}
	}
}

func TestAblateEnsembleSizeRejectsBadN(t *testing.T) {
	r := fastRunner(1)
	if _, err := r.AblateEnsembleSize("pneumonialike", 0.2, []int{0}); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := r.AblateEnsembleSize("pneumonialike", 0.2, []int{6}); err == nil {
		t.Fatal("n=6 accepted (only 5 members exist)")
	}
}

func TestAblateSmoothingAlphaVariants(t *testing.T) {
	r := fastRunner(1)
	pts, err := r.AblateSmoothingAlpha("pneumonialike", "convnet", 0.2, []float64{0.1, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 { // 2 variants × 2 alphas
		t.Fatalf("%d points", len(pts))
	}
	var sawRelax, sawClassic bool
	for _, p := range pts {
		if strings.HasPrefix(p.Setting, "relax") {
			sawRelax = true
		}
		if strings.HasPrefix(p.Setting, "classic") {
			sawClassic = true
		}
	}
	if !sawRelax || !sawClassic {
		t.Fatalf("missing variant: %+v", pts)
	}
}

func TestAblateCleanFractionRestoresRunnerState(t *testing.T) {
	r := fastRunner(1)
	orig := r.CleanFrac
	if _, err := r.AblateCleanFraction("pneumonialike", "convnet", 0.2, []float64{0.2}); err != nil {
		t.Fatal(err)
	}
	if r.CleanFrac != orig {
		t.Fatalf("CleanFrac leaked: %v != %v", r.CleanFrac, orig)
	}
}

func TestAblateKDTemperature(t *testing.T) {
	r := fastRunner(1)
	pts, err := r.AblateKDTemperature("pneumonialike", "convnet", 0.2, []float64{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[0].Setting != "T=1" || pts[1].Setting != "T=4" {
		t.Fatalf("points %+v", pts)
	}
}

func TestReverseDeltaCheckBounds(t *testing.T) {
	r := fastRunner(2)
	fwd, rev, err := r.ReverseDeltaCheck("pneumonialike", "convnet", 0.3)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []float64{fwd.Mean, rev.Mean} {
		if s < 0 || s > 1 {
			t.Fatalf("delta out of range: %v", s)
		}
	}
	if fwd.N != 2 || rev.N != 2 {
		t.Fatalf("rep counts %d/%d", fwd.N, rev.N)
	}
}

func TestRenderAblationOutput(t *testing.T) {
	var b strings.Builder
	RenderAblation(&b, "demo", []AblationPoint{
		{Setting: "n=1", AD: metrics.Summary{N: 1, Mean: 0.4}},
		{Setting: "n=5", AD: metrics.Summary{N: 1, Mean: 0.1}},
	})
	out := b.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "n=5") {
		t.Fatalf("render missing content: %s", out)
	}
}

func TestAblationCustomUnknownDataset(t *testing.T) {
	r := fastRunner(1)
	if _, err := r.AblateKDTemperature("imagenet", "convnet", 0.2, []float64{1}); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestAblationRespectsFaultSpecValidation(t *testing.T) {
	r := fastRunner(1)
	// Rate > 1 must propagate the injector's validation error.
	if _, err := r.AblateKDTemperature("pneumonialike", "convnet", 1.5, []float64{1}); err == nil {
		t.Fatal("invalid rate accepted")
	}
	_ = faultinject.Mislabel // keep import for clarity of intent
}

func TestOverheadWorksOnWarmedRunner(t *testing.T) {
	// Regression: `tdfmbench -exp all` warms the cache with the very cells
	// Overhead needs fresh timings for; Overhead must still succeed.
	r := fastRunner(1)
	specs := []FaultSpec{{Type: faultinject.Mislabel, Rate: 0.2}}
	if _, err := r.MeasureAD("pneumonialike", "base", "convnet", specs); err != nil {
		t.Fatal(err)
	}
	rows, err := r.Overhead("pneumonialike", "convnet", specs)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if row.Technique == "base" && row.TrainOverhead != 1 {
			t.Fatalf("base overhead %v", row.TrainOverhead)
		}
	}
}
