package experiment

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tdfm/internal/faultinject"
	"tdfm/internal/obs"
)

// resumeRunner builds the fast regression runner, attaching a journal in
// dir when dir is non-empty.
func resumeRunner(t *testing.T, dir string) *Runner {
	t.Helper()
	r := fastRunner(1)
	r.EpochOverride = 2
	if dir != "" {
		j, err := obs.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { j.Close() })
		r.Journal = j
	}
	return r
}

// resumeGrid runs the small regression grid (every Remove-applicable
// technique at one rate, one repetition) and returns its exported CSV.
func resumeGrid(t *testing.T, r *Runner) string {
	t.Helper()
	p, err := r.RunPanel("pneumonialike", "convnet", faultinject.Remove, []float64{0.3})
	if err != nil {
		t.Fatal(err)
	}
	fig := &Figure3Result{FaultType: faultinject.Remove, Panels: []*Panel{p}}
	var csv strings.Builder
	if err := fig.Table().WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	return csv.String()
}

// journalLines returns the journal's raw lines (trailing empty dropped).
func journalLines(t *testing.T, dir string) []string {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join(dir, "journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
	if len(lines) == 1 && lines[0] == "" {
		return nil
	}
	return lines
}

// TestResumeByteIdenticalAfterTruncation is the PR's central regression:
// a grid whose journal is truncated mid-way (simulating a kill -9) and
// then resumed must export a CSV byte-identical to an uninterrupted run,
// and the resumed run must recompute only the unrecorded cells.
func TestResumeByteIdenticalAfterTruncation(t *testing.T) {
	uninterrupted := resumeGrid(t, resumeRunner(t, ""))

	dir := t.TempDir()
	full := resumeRunner(t, dir)
	if got := resumeGrid(t, full); got != uninterrupted {
		t.Fatalf("journaling changed results:\n%s\nvs\n%s", got, uninterrupted)
	}
	wantKeys := full.CachedKeys()
	lines := journalLines(t, dir)
	if len(lines) != len(wantKeys) {
		t.Fatalf("journal has %d records for %d cells", len(lines), len(wantKeys))
	}

	// Kill the run halfway: drop the second half of the journal.
	cut := len(lines) / 2
	truncated := strings.Join(lines[:cut], "\n") + "\n"
	if err := os.WriteFile(filepath.Join(dir, "journal.jsonl"), []byte(truncated), 0o644); err != nil {
		t.Fatal(err)
	}

	resumed := resumeRunner(t, dir)
	restored, skipped, err := resumed.Resume()
	if err != nil {
		t.Fatal(err)
	}
	if restored != cut || skipped != 0 {
		t.Fatalf("resume restored %d cells (skipped %d), want %d restored", restored, skipped, cut)
	}
	if got := resumed.CacheSize(); got != cut {
		t.Fatalf("cache size after resume %d, want %d", got, cut)
	}
	if got := resumeGrid(t, resumed); got != uninterrupted {
		t.Fatalf("resumed CSV differs from uninterrupted run:\n%s\nvs\n%s", got, uninterrupted)
	}

	// The journal must show only the incomplete cells were recomputed:
	// exactly the missing records were appended, none re-trained.
	after := journalLines(t, dir)
	if len(after) != len(wantKeys) {
		t.Fatalf("journal grew to %d records after resume, want %d (only incomplete cells recomputed)", len(after), len(wantKeys))
	}
	if got := resumed.CachedKeys(); strings.Join(got, "\n") != strings.Join(wantKeys, "\n") {
		t.Fatalf("cached keys after resumed run differ:\n%v\nvs\n%v", got, wantKeys)
	}
}

// TestResumeSkipsCorruptJournalLine: a corrupt record (torn write) must be
// skipped with a warning event, its cell recomputed, and the final CSV
// unchanged.
func TestResumeSkipsCorruptJournalLine(t *testing.T) {
	uninterrupted := resumeGrid(t, resumeRunner(t, ""))

	dir := t.TempDir()
	resumeGrid(t, resumeRunner(t, dir))
	lines := journalLines(t, dir)
	lines[0] = `{"v":1,"key":"torn` // simulate a torn write on the first record
	if err := os.WriteFile(filepath.Join(dir, "journal.jsonl"),
		[]byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	resumed := resumeRunner(t, dir)
	var warnings []obs.Event
	resumed.Sink = obs.SinkFunc(func(e obs.Event) {
		if e.Kind == obs.KindJournalError {
			warnings = append(warnings, e)
		}
	})
	restored, skipped, err := resumed.Resume()
	if err != nil {
		t.Fatalf("a corrupt line must not fail the resume: %v", err)
	}
	if restored != len(lines)-1 || skipped != 1 {
		t.Fatalf("restored %d, skipped %d; want %d and 1", restored, skipped, len(lines)-1)
	}
	if len(warnings) != 1 {
		t.Fatalf("got %d journal warnings, want 1", len(warnings))
	}
	if got := resumeGrid(t, resumed); got != uninterrupted {
		t.Fatalf("CSV differs after corrupt-line resume:\n%s\nvs\n%s", got, uninterrupted)
	}
}

// TestResumeSkipsTamperedCheckpoint: a checkpoint whose digest no longer
// matches the journal must be rejected and its cell recomputed.
func TestResumeSkipsTamperedCheckpoint(t *testing.T) {
	dir := t.TempDir()
	full := resumeRunner(t, dir)
	uninterrupted := resumeGrid(t, full)
	keys := full.CachedKeys()

	path := obs.CellFile(dir, keys[0])
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(string(raw), `"pred":[`, `"pred":[424242,`, 1)
	if err := os.WriteFile(path, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}

	resumed := resumeRunner(t, dir)
	restored, skipped, err := resumed.Resume()
	if err != nil {
		t.Fatal(err)
	}
	if restored != len(keys)-1 || skipped != 1 {
		t.Fatalf("restored %d, skipped %d; want %d and 1", restored, skipped, len(keys)-1)
	}
	if got := resumeGrid(t, resumed); got != uninterrupted {
		t.Fatalf("CSV differs after tampered-checkpoint resume:\n%s\nvs\n%s", got, uninterrupted)
	}
}

// TestCachedKeysConsistentAfterResume pins the cache-accounting fix:
// restored golden ("base" on clean data) and faulty technique cells must
// count in CacheSize/CachedKeys exactly like freshly trained ones.
func TestCachedKeysConsistentAfterResume(t *testing.T) {
	dir := t.TempDir()
	full := resumeRunner(t, dir)
	resumeGrid(t, full)
	wantKeys := full.CachedKeys()
	wantSize := full.CacheSize()

	resumed := resumeRunner(t, dir)
	if restored, _, err := resumed.Resume(); err != nil || restored != wantSize {
		t.Fatalf("resume: restored %d, err %v; want %d", restored, err, wantSize)
	}
	gotKeys := resumed.CachedKeys()
	if strings.Join(gotKeys, "\n") != strings.Join(wantKeys, "\n") {
		t.Fatalf("restored cache keys differ:\n%v\nvs\n%v", gotKeys, wantKeys)
	}
	if resumed.CacheSize() != wantSize {
		t.Fatalf("restored cache size %d, want %d", resumed.CacheSize(), wantSize)
	}
	var hasGolden, hasFaulty bool
	for _, k := range gotKeys {
		if strings.Contains(k, "|base|") && strings.Contains(k, "|clean|") {
			hasGolden = true
		}
		if strings.Contains(k, "@0.3") {
			hasFaulty = true
		}
	}
	if !hasGolden || !hasFaulty {
		t.Fatalf("restored cache must hold golden and faulty cells alike; keys: %v", gotKeys)
	}
}

// TestResumeIgnoresOtherConfigurations: records from a different epoch
// override (or any other result-affecting knob) must not be restored.
func TestResumeIgnoresOtherConfigurations(t *testing.T) {
	dir := t.TempDir()
	full := resumeRunner(t, dir)
	resumeGrid(t, full)
	n := full.CacheSize()

	other := resumeRunner(t, dir)
	other.EpochOverride = 3
	restored, skipped, err := other.Resume()
	if err != nil {
		t.Fatal(err)
	}
	if restored != 0 || skipped != n {
		t.Fatalf("foreign config restored %d cells (skipped %d), want 0 (%d skipped)", restored, skipped, n)
	}
}

// TestResumeRequiresJournal: resuming without an attached journal is a
// caller error.
func TestResumeRequiresJournal(t *testing.T) {
	r := fastRunner(1)
	if _, _, err := r.Resume(); err == nil {
		t.Fatal("Resume without a journal succeeded")
	}
}

// TestResumeEmptyJournal: resuming against a fresh artifacts directory
// (first run with -resume) restores nothing and fails nothing.
func TestResumeEmptyJournal(t *testing.T) {
	r := resumeRunner(t, t.TempDir())
	restored, skipped, err := r.Resume()
	if err != nil || restored != 0 || skipped != 0 {
		t.Fatalf("empty resume: %d restored, %d skipped, err %v", restored, skipped, err)
	}
}
