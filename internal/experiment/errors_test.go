package experiment

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"tdfm/internal/chaos"
	"tdfm/internal/core"
	"tdfm/internal/parallel"
)

// TestClassifyCellErrorTaxonomy pins the sentinel→(reason, class)
// mapping of the engine's error taxonomy, including the distributed
// grid's network sentinels: a dead lease, coordinator, or worker is a
// transport problem, never a cell problem, so it classifies transient
// and the cell retrains byte-identically under a reissued lease.
func TestClassifyCellErrorTaxonomy(t *testing.T) {
	cases := []struct {
		name   string
		err    error
		reason string
		class  ErrorClass
	}{
		{"panic", fmt.Errorf("cell: %w", parallel.AsPanicError("boom")), ReasonPanic, ClassTransient},
		{"divergence", fmt.Errorf("trainer: %w", core.ErrDiverged), ReasonDivergence, ClassTransient},
		{"timeout", fmt.Errorf("cell: %w", context.DeadlineExceeded), ReasonTimeout, ClassTransient},
		{"cancelled", fmt.Errorf("run: %w", context.Canceled), ReasonCancelled, ClassCancelled},
		{"lease expired", fmt.Errorf("dist: attempts exhausted: %w", ErrLeaseExpired), ReasonNet, ClassTransient},
		{"coordinator unreachable", fmt.Errorf("dist: /lease: %w: connection refused", ErrCoordinatorUnreachable), ReasonNet, ClassTransient},
		{"worker lost", fmt.Errorf("dist: reissue budget spent: %w", ErrWorkerLost), ReasonNet, ClassTransient},
		{"injected fault", fmt.Errorf("chaos: %w", chaos.ErrInjected), ReasonIO, ClassTransient},
		{"unknown", errors.New("no such dataset"), ReasonConfig, ClassPermanent},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ce := classifyCellError("k", 2, tc.err)
			if ce.Reason != tc.reason || ce.Class != tc.class {
				t.Fatalf("classify(%v) = (%s, %s), want (%s, %s)", tc.err, ce.Reason, ce.Class, tc.reason, tc.class)
			}
			if ce.Key != "k" || ce.Attempts != 2 || !errors.Is(ce, tc.err) {
				t.Fatalf("CellError lost context: %+v", ce)
			}
		})
	}
}

// delegatingExec is a CellExecutor backed by another runner's local
// training — the in-process shape of the distributed grid coordinator.
type delegatingExec struct {
	backing *Runner
	calls   int
	err     error // returned instead of training when non-nil
}

func (d *delegatingExec) ExecuteCell(key string, spec CellSpec) ([]int, time.Duration, error) {
	d.calls++
	if d.err != nil {
		return nil, 0, d.err
	}
	return d.backing.Predictions(spec.Dataset, spec.Technique, spec.Arch, spec.Specs, spec.Rep)
}

// TestRemoteExecutorDelegates pins the Runner.Remote seam: with a remote
// executor installed, every uncached cell goes through it, the results
// are byte-identical to local training, memoization still collapses
// repeat calls, and the runner's own journal append is skipped — the
// executor (the coordinator, in the distributed grid) owns durable
// recording.
func TestRemoteExecutorDelegates(t *testing.T) {
	local := fastRunner(1)
	want, _, err := local.Predictions("pneumonialike", "base", "convnet", nil, 0)
	if err != nil {
		t.Fatal(err)
	}

	exec := &delegatingExec{backing: fastRunner(1)}
	r := fastRunner(1)
	r.Remote = exec
	got, _, err := r.Predictions("pneumonialike", "base", "convnet", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("remote predictions length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("remote prediction %d = %d, want %d (remote execution must be byte-identical)", i, got[i], want[i])
		}
	}
	if exec.calls != 1 {
		t.Fatalf("executor called %d times, want 1", exec.calls)
	}
	// Memoized: a repeat call never reaches the executor.
	if _, _, err := r.Predictions("pneumonialike", "base", "convnet", nil, 0); err != nil {
		t.Fatal(err)
	}
	if exec.calls != 1 {
		t.Fatalf("memoized call reached the executor (calls=%d)", exec.calls)
	}
}

// TestRemoteExecutorFailuresClassified pins the remote failure paths: a
// transient executor error burns the retry budget and surfaces as a
// classified transient CellError, and a panicking executor is recovered
// exactly like a panicking local cell.
func TestRemoteExecutorFailuresClassified(t *testing.T) {
	exec := &delegatingExec{err: fmt.Errorf("dist: %w: boom", ErrCoordinatorUnreachable)}
	r := fastRunner(1)
	r.Retries = 1
	r.Remote = exec
	_, _, err := r.Predictions("pneumonialike", "base", "convnet", nil, 0)
	var ce *CellError
	if !errors.As(err, &ce) || ce.Reason != ReasonNet || ce.Class != ClassTransient {
		t.Fatalf("remote transport failure classified as %v, want (net, transient)", err)
	}
	if exec.calls != 2 {
		t.Fatalf("transient remote failure trained %d attempts, want 2 (1 + Retries)", exec.calls)
	}

	panicking := panicExec{}
	r2 := fastRunner(1)
	r2.Remote = panicking
	_, _, err = r2.Predictions("pneumonialike", "base", "convnet", nil, 0)
	if !errors.As(err, &ce) || ce.Reason != ReasonPanic {
		t.Fatalf("panicking executor classified as %v, want a recovered panic", err)
	}
}

// panicExec is a CellExecutor that always panics.
type panicExec struct{}

func (panicExec) ExecuteCell(string, CellSpec) ([]int, time.Duration, error) {
	panic("broken executor")
}
