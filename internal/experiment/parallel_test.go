package experiment

import (
	"strings"
	"sync"
	"testing"

	"tdfm/internal/faultinject"
	"tdfm/internal/parallel"
)

// withPoolBudget raises the shared worker budget so the concurrent paths
// are exercised even on single-core runners, restoring the default after.
func withPoolBudget(t *testing.T, n int, body func()) {
	t.Helper()
	parallel.SetBudget(n)
	defer parallel.SetBudget(0)
	body()
}

// runGrid runs the regression grid used by the determinism tests: one
// fault type, one rate, two repetitions, every applicable technique.
func runGrid(t *testing.T, workers int) (*Panel, string) {
	t.Helper()
	r := fastRunner(2)
	r.EpochOverride = 2
	r.Workers = workers
	p, err := r.RunPanel("pneumonialike", "convnet", faultinject.Remove, []float64{0.3})
	if err != nil {
		t.Fatal(err)
	}
	fig := &Figure3Result{FaultType: faultinject.Remove, Panels: []*Panel{p}}
	var csv strings.Builder
	if err := fig.Table().WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	return p, csv.String()
}

// TestWorkersDeterminism is the PR's central regression: the same grid run
// serially (Workers=1, the original schedule) and on a four-worker pool
// must produce identical accuracy and AD summaries for every cell, and the
// exported CSV must be byte-identical.
func TestWorkersDeterminism(t *testing.T) {
	withPoolBudget(t, 8, func() {
		serial, serialCSV := runGrid(t, 1)
		par, parCSV := runGrid(t, 4)

		for _, tech := range serial.Techniques() {
			for _, rate := range serial.Rates {
				s, p := serial.Cells[tech][rate], par.Cells[tech][rate]
				if s.AD != p.AD {
					t.Errorf("%s@%v: AD differs: serial %+v vs parallel %+v", tech, rate, s.AD, p.AD)
				}
				if s.Accuracy != p.Accuracy {
					t.Errorf("%s@%v: accuracy differs: serial %+v vs parallel %+v", tech, rate, s.Accuracy, p.Accuracy)
				}
			}
		}
		if serialCSV != parCSV {
			t.Fatalf("CSV export differs between Workers=1 and Workers=4:\n--- serial ---\n%s\n--- parallel ---\n%s", serialCSV, parCSV)
		}
	})
}

// TestGoldenSingleFlight hammers one uncached cell from many goroutines:
// the single-flight cache must train it exactly once and give every caller
// the same predictions.
func TestGoldenSingleFlight(t *testing.T) {
	withPoolBudget(t, 8, func() {
		r := fastRunner(1)
		r.EpochOverride = 2
		const callers = 8
		preds := make([][]int, callers)
		errs := make([]error, callers)
		var wg sync.WaitGroup
		wg.Add(callers)
		for i := 0; i < callers; i++ {
			go func(i int) {
				defer wg.Done()
				preds[i], errs[i] = r.Golden("pneumonialike", "convnet", 0)
			}(i)
		}
		wg.Wait()
		for i := 0; i < callers; i++ {
			if errs[i] != nil {
				t.Fatalf("caller %d: %v", i, errs[i])
			}
			for j := range preds[i] {
				if preds[i][j] != preds[0][j] {
					t.Fatalf("caller %d saw different predictions", i)
				}
			}
		}
		if got := r.CacheSize(); got != 1 {
			t.Fatalf("cache size %d after single-flight hammering, want 1", got)
		}
	})
}

// TestDatasetSingleFlight does the same for the dataset memo cache: all
// concurrent callers must get the one generated pair (pointer-identical).
func TestDatasetSingleFlight(t *testing.T) {
	withPoolBudget(t, 8, func() {
		r := fastRunner(1)
		const callers = 8
		type pair struct{ train, test interface{} }
		got := make([]pair, callers)
		errs := make([]error, callers)
		var wg sync.WaitGroup
		wg.Add(callers)
		for i := 0; i < callers; i++ {
			go func(i int) {
				defer wg.Done()
				tr, te, err := r.Dataset("pneumonialike")
				got[i], errs[i] = pair{tr, te}, err
			}(i)
		}
		wg.Wait()
		for i := 0; i < callers; i++ {
			if errs[i] != nil {
				t.Fatalf("caller %d: %v", i, errs[i])
			}
			if got[i] != got[0] {
				t.Fatalf("caller %d got a distinct dataset instance", i)
			}
		}
	})
}

// TestFailedCellMemoized checks that errors are cached like successes: a
// cell with a bogus architecture fails every time without retraining, and
// never counts toward the (successful) cache size.
func TestFailedCellMemoized(t *testing.T) {
	r := fastRunner(1)
	if _, _, err := r.Predictions("pneumonialike", "base", "no-such-arch", nil, 0); err == nil {
		t.Fatal("bogus architecture accepted")
	}
	if _, _, err := r.Predictions("pneumonialike", "base", "no-such-arch", nil, 0); err == nil {
		t.Fatal("cached failure lost its error")
	}
	if got := r.CacheSize(); got != 0 {
		t.Fatalf("cache size %d, want 0 (failures excluded)", got)
	}
}

// TestRunnerWorkersResolution pins the Workers field semantics: zero means
// one worker per CPU, anything below one clamps to serial.
func TestRunnerWorkersResolution(t *testing.T) {
	r := fastRunner(1)
	if got := r.workers(); got < 1 {
		t.Fatalf("default workers %d", got)
	}
	r.Workers = 1
	if got := r.workers(); got != 1 {
		t.Fatalf("Workers=1 resolved to %d", got)
	}
	r.Workers = -3
	if got := r.workers(); got != 1 {
		t.Fatalf("Workers=-3 resolved to %d, want 1", got)
	}
	r.Workers = 6
	if got := r.workers(); got != 6 {
		t.Fatalf("Workers=6 resolved to %d", got)
	}
}

// TestOverheadSpeedupReport checks the E11 report plumbing: with a
// multi-worker runner both schedules run and the report carries positive
// wall-clock times; with a serial runner the report is nil.
func TestOverheadSpeedupReport(t *testing.T) {
	withPoolBudget(t, 8, func() {
		r := fastRunner(1)
		r.EpochOverride = 2
		r.Workers = 4
		specs := []FaultSpec{{Type: faultinject.Mislabel, Rate: 0.2}}
		rows, rep, err := r.OverheadWithSpeedup("pneumonialike", "convnet", specs)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 6 {
			t.Fatalf("%d overhead rows", len(rows))
		}
		if rep == nil {
			t.Fatal("speedup report missing at Workers=4")
		}
		if rep.Workers != 4 || rep.Serial <= 0 || rep.Parallel <= 0 {
			t.Fatalf("bad report %+v", rep)
		}
		if rep.Ratio() <= 0 {
			t.Fatalf("ratio %v", rep.Ratio())
		}
		var b strings.Builder
		RenderSpeedup(&b, rep)
		if !strings.Contains(b.String(), "parallel speedup") {
			t.Fatalf("render output %q", b.String())
		}
		RenderSpeedup(&b, nil) // must not panic

		r.Workers = 1
		_, rep, err = r.OverheadWithSpeedup("pneumonialike", "convnet", specs)
		if err != nil {
			t.Fatal(err)
		}
		if rep != nil {
			t.Fatalf("serial runner produced a speedup report: %+v", rep)
		}
	})
}
