package experiment

import (
	"strings"
	"testing"

	"tdfm/internal/datagen"
	"tdfm/internal/faultinject"
)

// fastRunner keeps experiment tests quick: tiny data, shallow epochs.
func fastRunner(reps int) *Runner {
	r := NewRunner(datagen.ScaleTiny, 1, reps)
	r.EpochOverride = 4
	return r
}

func TestDatasetMemoized(t *testing.T) {
	r := fastRunner(1)
	a1, b1, err := r.Dataset("pneumonialike")
	if err != nil {
		t.Fatal(err)
	}
	a2, b2, err := r.Dataset("pneumonialike")
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 || b1 != b2 {
		t.Fatal("dataset not memoized (pointers differ)")
	}
}

func TestDatasetUnknown(t *testing.T) {
	r := fastRunner(1)
	if _, _, err := r.Dataset("mnist"); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestPredictionsCached(t *testing.T) {
	r := fastRunner(1)
	p1, d1, err := r.Predictions("pneumonialike", "base", "convnet", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d1 <= 0 {
		t.Fatal("first run must report training time")
	}
	p2, _, err := r.Predictions("pneumonialike", "base", "convnet", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.CacheSize() != 1 {
		t.Fatalf("cache size %d, want 1", r.CacheSize())
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("cached predictions differ")
		}
	}
}

func TestEnsembleCacheSharedAcrossArchs(t *testing.T) {
	r := fastRunner(1)
	key1 := r.cellKey("pneumonialike", "ens", "convnet", nil, 0)
	key2 := r.cellKey("pneumonialike", "ens", "resnet50", nil, 0)
	if key1 != key2 {
		t.Fatal("ensemble cache keys must not depend on the panel architecture")
	}
	key3 := r.cellKey("pneumonialike", "base", "convnet", nil, 0)
	key4 := r.cellKey("pneumonialike", "base", "resnet50", nil, 0)
	if key3 == key4 {
		t.Fatal("baseline cache keys must depend on the architecture")
	}
}

func TestSpecsKeyCanonical(t *testing.T) {
	if specsKey(nil) != "clean" {
		t.Fatal("empty specs key")
	}
	k := specsKey([]FaultSpec{{Type: faultinject.Mislabel, Rate: 0.3}, {Type: faultinject.Remove, Rate: 0.1}})
	if !strings.Contains(k, "mislabel@0.3") || !strings.Contains(k, "remove@0.1") {
		t.Fatalf("specs key %q", k)
	}
}

func TestMeasureADShapes(t *testing.T) {
	r := fastRunner(2)
	cell, err := r.MeasureAD("pneumonialike", "ls", "convnet",
		[]FaultSpec{{Type: faultinject.Mislabel, Rate: 0.3}})
	if err != nil {
		t.Fatal(err)
	}
	if cell.AD.N != 2 || cell.Accuracy.N != 2 {
		t.Fatalf("reps recorded %d/%d, want 2", cell.AD.N, cell.Accuracy.N)
	}
	if cell.AD.Mean < 0 || cell.AD.Mean > 1 {
		t.Fatalf("AD %v out of range", cell.AD.Mean)
	}
	if cell.Accuracy.Mean <= 0 {
		t.Fatal("accuracy not measured")
	}
}

func TestGoldenAccuracyMatchesBaseCell(t *testing.T) {
	r := fastRunner(1)
	s, err := r.GoldenAccuracy("pneumonialike", "base", "convnet")
	if err != nil {
		t.Fatal(err)
	}
	if s.Mean <= 0.5 {
		t.Fatalf("golden accuracy %.2f too low", s.Mean)
	}
}

func TestRunPanelStructure(t *testing.T) {
	r := fastRunner(1)
	p, err := r.RunPanel("pneumonialike", "convnet", faultinject.Mislabel, []float64{0.1, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Techniques()) != 6 {
		t.Fatalf("mislabel panel has %d techniques", len(p.Techniques()))
	}
	for _, tech := range p.Techniques() {
		for _, rate := range p.Rates {
			if _, ok := p.Cells[tech][rate]; !ok {
				t.Fatalf("missing cell %s@%v", tech, rate)
			}
		}
	}
}

func TestTechniquesForFaultTypes(t *testing.T) {
	if len(TechniquesFor(faultinject.Mislabel)) != 6 {
		t.Fatal("mislabel should include lc")
	}
	for _, ft := range []faultinject.Type{faultinject.Remove, faultinject.Repeat} {
		techs := TechniquesFor(ft)
		for _, tech := range techs {
			if tech == "lc" {
				t.Fatalf("lc must be skipped for %s (§IV-C)", ft)
			}
		}
		if len(techs) != 5 {
			t.Fatalf("%s should have 5 techniques", ft)
		}
	}
}

func TestTable4Structure(t *testing.T) {
	r := fastRunner(1)
	t4, err := r.Table4([]string{"convnet"}, []string{"pneumonialike"})
	if err != nil {
		t.Fatal(err)
	}
	if len(t4.Acc) != 1 {
		t.Fatal("models missing")
	}
	for _, tech := range t4.Techniques {
		s := t4.Acc["convnet"]["pneumonialike"][tech]
		if s.N != 1 {
			t.Fatalf("%s: %d reps", tech, s.N)
		}
	}
	tbl := t4.Table()
	if len(tbl.Rows) != 1 || len(tbl.Headers) != 2+len(t4.Techniques) {
		t.Fatalf("table shape %dx%d", len(tbl.Rows), len(tbl.Headers))
	}
}

func TestCombinedFaultsShape(t *testing.T) {
	r := fastRunner(1)
	comps, err := r.CombinedFaults("pneumonialike", "convnet", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) != 3 {
		t.Fatalf("%d comparisons, want 3", len(comps))
	}
	for _, c := range comps {
		if len(c.Combined) != 2 || len(c.Single) != 1 {
			t.Fatalf("bad comparison %+v", c)
		}
	}
}

func TestOverheadRows(t *testing.T) {
	r := fastRunner(1)
	rows, err := r.Overhead("pneumonialike", "convnet",
		[]FaultSpec{{Type: faultinject.Mislabel, Rate: 0.2}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d overhead rows", len(rows))
	}
	var base, ens OverheadRow
	for _, row := range rows {
		switch row.Technique {
		case "base":
			base = row
		case "ens":
			ens = row
		}
	}
	if base.TrainOverhead != 1 {
		t.Fatalf("baseline train overhead %v, want 1", base.TrainOverhead)
	}
	if base.InferenceOverhead != 1 || ens.InferenceOverhead != 5 {
		t.Fatalf("inference overheads base=%v ens=%v", base.InferenceOverhead, ens.InferenceOverhead)
	}
	if ens.TrainOverhead <= 1.5 {
		t.Fatalf("ensemble train overhead %v suspiciously low", ens.TrainOverhead)
	}
}

func TestRenderSmoke(t *testing.T) {
	r := fastRunner(1)
	var b strings.Builder
	if err := RenderTable1(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Label Relaxation") {
		t.Fatal("table1 missing representative")
	}
	b.Reset()
	if err := r.RenderTable2(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "GTSRB") {
		t.Fatal("table2 missing dataset")
	}
	b.Reset()
	RenderTable3(&b)
	if !strings.Contains(b.String(), "49 Conv") {
		t.Fatal("table3 missing resnet50 summary")
	}
}

func TestPanelRenderAndCSV(t *testing.T) {
	r := fastRunner(1)
	p, err := r.RunPanel("pneumonialike", "convnet", faultinject.Remove, []float64{0.3})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	RenderPanel(&b, p)
	out := b.String()
	if !strings.Contains(out, "remove") || !strings.Contains(out, "Base") {
		t.Fatalf("panel render missing content:\n%s", out)
	}
	fig := &Figure3Result{FaultType: faultinject.Remove, Panels: []*Panel{p}}
	tbl := fig.Table()
	// 5 techniques × 1 rate rows.
	if len(tbl.Rows) != 5 {
		t.Fatalf("csv rows %d, want 5", len(tbl.Rows))
	}
	var csvB strings.Builder
	if err := tbl.WriteCSV(&csvB); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csvB.String(), "ad_mean") {
		t.Fatal("csv header missing")
	}
}

func TestDeterministicAcrossRunners(t *testing.T) {
	a := fastRunner(1)
	b := fastRunner(1)
	pa, _, err := a.Predictions("pneumonialike", "base", "convnet", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	pb, _, err := b.Predictions("pneumonialike", "base", "convnet", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatal("identical runners disagreed")
		}
	}
}

func TestRepsProduceDistinctModels(t *testing.T) {
	r := fastRunner(2)
	p0, _, err := r.Predictions("pneumonialike", "base", "convnet", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	p1, _, err := r.Predictions("pneumonialike", "base", "convnet", nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	diff := false
	for i := range p0 {
		if p0[i] != p1[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Log("reps produced identical predictions (possible on easy data)")
	}
}

func TestFigure4WrapperPneumonia(t *testing.T) {
	r := fastRunner(1)
	fig, err := r.Figure4("convnet", faultinject.Repeat, []string{"pneumonialike"}, []float64{0.3})
	if err != nil {
		t.Fatal(err)
	}
	if fig.Arch != "convnet" || len(fig.Panels) != 1 {
		t.Fatalf("figure shape %+v", fig)
	}
	var b strings.Builder
	fig.Render(&b)
	if !strings.Contains(b.String(), "Figure 4") {
		t.Fatal("render header missing")
	}
	tbl := fig.Table()
	if len(tbl.Rows) != 5 { // 5 techniques × 1 rate (lc skipped for repeat)
		t.Fatalf("table rows %d", len(tbl.Rows))
	}
}

func TestFigure3WrapperSinglePanel(t *testing.T) {
	r := fastRunner(1)
	fig, err := r.Figure3(faultinject.Remove, []string{"convnet"}, []float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Panels) != 1 || fig.Panels[0].Dataset != "gtsrblike" {
		t.Fatalf("figure shape %+v", fig)
	}
	var b strings.Builder
	fig.Render(&b)
	if !strings.Contains(b.String(), "Figure 3") {
		t.Fatal("render header missing")
	}
}

func TestMotivatingWrapper(t *testing.T) {
	r := fastRunner(1)
	m, err := r.Motivating()
	if err != nil {
		t.Fatal(err)
	}
	if len(m.TechniqueAD) != 6 {
		t.Fatalf("%d technique ADs", len(m.TechniqueAD))
	}
	if m.GoldenAcc.Mean <= 0 {
		t.Fatal("golden accuracy missing")
	}
	var b strings.Builder
	m.Render(&b)
	if !strings.Contains(b.String(), "Motivating example") {
		t.Fatal("render header missing")
	}
}
