package experiment

import (
	"strings"
	"testing"

	"tdfm/internal/metrics"
)

// TestMotivatingRenderDeterministic pins the collect-then-sort idiom in
// MotivatingResult.Render: technique bars must appear in sorted key
// order and the output must be byte-identical across calls, even though
// TechniqueAD is a map. Guarded by the maporder lint pass; this test
// keeps the behaviour pinned if the render path is rewritten.
func TestMotivatingRenderDeterministic(t *testing.T) {
	m := &MotivatingResult{
		GoldenAcc: metrics.Summary{Mean: 0.9, CI95: 0.01},
		FaultyAcc: metrics.Summary{Mean: 0.7, CI95: 0.02},
		TechniqueAD: map[string]metrics.Summary{
			"removal":    {Mean: 0.10, CI95: 0.01},
			"golden":     {Mean: 0.00, CI95: 0.00},
			"none":       {Mean: 0.30, CI95: 0.03},
			"relabeling": {Mean: 0.12, CI95: 0.01},
		},
	}
	var first strings.Builder
	m.Render(&first)
	for range 10 {
		var again strings.Builder
		m.Render(&again)
		if again.String() != first.String() {
			t.Fatalf("Render output varies across calls:\n%s\nvs\n%s", first.String(), again.String())
		}
	}
	// The technique lines must be in sorted map-key order. Scan only the
	// bar section so the "golden model accuracy" header line does not
	// shadow the golden bar.
	_, bars, ok := strings.Cut(first.String(), "AD per TDFM technique:")
	if !ok {
		t.Fatalf("bar section missing from output:\n%s", first.String())
	}
	var keys []int
	for _, k := range []string{"golden", "none", "relabeling", "removal"} {
		idx := strings.Index(bars, displayName(k))
		if idx < 0 {
			t.Fatalf("technique %q missing from output:\n%s", k, first.String())
		}
		keys = append(keys, idx)
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] < keys[i-1] {
			t.Fatalf("technique bars out of sorted order:\n%s", first.String())
		}
	}
}
