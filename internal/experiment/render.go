package experiment

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"tdfm/internal/models"
	"tdfm/internal/report"
	"tdfm/internal/survey"
)

// displayName maps internal dataset/technique identifiers to the labels the
// paper uses.
func displayName(id string) string {
	switch id {
	case "cifar10like":
		return "CIFAR-10*"
	case "gtsrblike":
		return "GTSRB*"
	case "pneumonialike":
		return "Pneumonia*"
	case "base":
		return "Base"
	case "ls":
		return "LS"
	case "lc":
		return "LC"
	case "rl":
		return "RL"
	case "kd":
		return "KD"
	case "ens":
		return "Ens"
	default:
		return id
	}
}

// RenderPanel writes one figure panel as bar groups per fault rate.
func RenderPanel(w io.Writer, p *Panel) {
	fmt.Fprintf(w, "%s, %s, %s faults — AD (lower is better)\n",
		displayName(p.Dataset), p.Arch, p.FaultType)
	for _, rate := range p.Rates {
		fmt.Fprintf(w, " %d%% faults:\n", int(rate*100+0.5))
		for _, tech := range p.Techniques() {
			cell := p.Cells[tech][rate]
			line := report.Bar(displayName(tech), cell.AD.Mean, cell.AD.CI95, 40)
			if cell.Failed > 0 {
				line += fmt.Sprintf("  [FAILED %d/%d reps]", cell.Failed, cell.Failed+cell.AD.N)
			}
			fmt.Fprintf(w, "  %s\n", line)
		}
	}
}

// RenderFigure3 writes the full Fig. 3 reproduction.
func (f *Figure3Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Figure 3 (%s faults, GTSRB*): AD of TDFM techniques vs baseline\n\n", f.FaultType)
	for _, p := range f.Panels {
		RenderPanel(w, p)
		fmt.Fprintln(w)
	}
}

// Render writes the full Fig. 4 reproduction.
func (f *Figure4Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Figure 4 (%s, %s faults): AD across datasets\n\n", f.Arch, f.FaultType)
	for _, p := range f.Panels {
		RenderPanel(w, p)
		fmt.Fprintln(w)
	}
}

// Table returns the Fig. 3 / Fig. 4 data as a flat table (for CSV export).
func panelTable(title string, panels []*Panel) *report.Table {
	t := &report.Table{
		Title:   title,
		Headers: []string{"dataset", "model", "fault", "rate", "technique", "ad_mean", "ad_ci95", "acc_mean", "reps", "failed_reps"},
	}
	for _, p := range panels {
		for _, rate := range p.Rates {
			for _, tech := range p.Techniques() {
				cell := p.Cells[tech][rate]
				t.AddRow(p.Dataset, p.Arch, p.FaultType.String(),
					fmt.Sprintf("%g", rate), tech,
					fmt.Sprintf("%.4f", cell.AD.Mean),
					fmt.Sprintf("%.4f", cell.AD.CI95),
					fmt.Sprintf("%.4f", cell.Accuracy.Mean),
					fmt.Sprintf("%d", cell.AD.N),
					fmt.Sprintf("%d", cell.Failed))
			}
		}
	}
	return t
}

// Table flattens the figure for CSV export.
func (f *Figure3Result) Table() *report.Table {
	return panelTable(fmt.Sprintf("fig3-%s", f.FaultType), f.Panels)
}

// Table flattens the figure for CSV export.
func (f *Figure4Result) Table() *report.Table {
	return panelTable(fmt.Sprintf("fig4-%s-%s", f.Arch, f.FaultType), f.Panels)
}

// Table renders Table IV: golden accuracies per model/dataset/technique.
func (t4 *Table4Result) Table() *report.Table {
	t := &report.Table{
		Title:   "Table IV: model accuracies when trained without fault injection",
		Headers: append([]string{"Model", "Dataset"}, displayAll(t4.Techniques)...),
	}
	failures := false
	for _, m := range t4.Models {
		for _, ds := range t4.Datasets {
			row := []string{m, displayName(ds)}
			best := ""
			bestV := -1.0
			for _, tech := range t4.Techniques {
				s := t4.Acc[m][ds][tech]
				if s.N > 0 && s.Mean > bestV {
					bestV, best = s.Mean, tech
				}
			}
			for _, tech := range t4.Techniques {
				s := t4.Acc[m][ds][tech]
				if s.N == 0 {
					// Every repetition of this configuration failed.
					failures = true
					row = append(row, "FAILED")
					continue
				}
				cell := report.PercentCell(s.Mean)
				if tech == best {
					cell += "*"
				}
				row = append(row, cell)
			}
			t.AddRow(row...)
		}
	}
	t.Notes = append(t.Notes, "* highest accuracy in the configuration (emphasis in the paper)")
	if failures {
		t.Notes = append(t.Notes, "FAILED: every repetition of the configuration failed; see the run's failure report")
	}
	return t
}

func displayAll(ids []string) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = displayName(id)
	}
	return out
}

// Render writes the motivating example in the shape of §II / §III-D.
func (m *MotivatingResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Motivating example (Pneumonia*, ResNet50, 10%% mislabelling):\n")
	fmt.Fprintf(w, "  golden model accuracy: %s\n", report.PercentCI(m.GoldenAcc.Mean, m.GoldenAcc.CI95))
	fmt.Fprintf(w, "  faulty model accuracy: %s\n", report.PercentCI(m.FaultyAcc.Mean, m.FaultyAcc.CI95))
	fmt.Fprintf(w, "  AD per TDFM technique:\n")
	techs := make([]string, 0, len(m.TechniqueAD))
	for tech := range m.TechniqueAD {
		techs = append(techs, tech)
	}
	sort.Strings(techs)
	for _, tech := range techs {
		s := m.TechniqueAD[tech]
		fmt.Fprintf(w, "   %s\n", report.Bar(displayName(tech), s.Mean, s.CI95, 40))
	}
}

// RenderCombined writes the §IV-C combined-fault comparisons.
func RenderCombined(w io.Writer, comps []CombinedComparison) {
	t := &report.Table{
		Title:   "Combined fault types (§IV-C): AD of combination vs dominant single type",
		Headers: []string{"combined", "AD", "single", "AD", "statistically similar?"},
	}
	for _, c := range comps {
		t.AddRow(
			specsKey(c.Combined), report.PercentCI(c.CombinedAD.Mean, c.CombinedAD.CI95),
			specsKey(c.Single), report.PercentCI(c.SingleAD.Mean, c.SingleAD.CI95),
			fmt.Sprintf("%v", c.Similar),
		)
	}
	t.Render(w)
}

// RenderOverhead writes the §IV-E overhead analysis.
func RenderOverhead(w io.Writer, rows []OverheadRow) {
	t := &report.Table{
		Title:   "Runtime overhead (§IV-E), relative to the unprotected baseline",
		Headers: []string{"technique", "training overhead", "inference overhead", "wall time"},
	}
	for _, row := range rows {
		t.AddRow(displayName(row.Technique),
			fmt.Sprintf("%.1fx", row.TrainOverhead),
			fmt.Sprintf("%.0fx", row.InferenceOverhead),
			row.TrainTime.Round(1e6).String())
	}
	t.Render(w)
}

// RenderSpeedup writes the E11 parallel-speedup comparison. A nil report
// (serial run) renders nothing.
func RenderSpeedup(w io.Writer, s *SpeedupReport) {
	if s == nil {
		return
	}
	fmt.Fprintf(w, "parallel speedup (E11): %d workers finished the grid in %s vs %s serial (%.2fx)\n",
		s.Workers, s.Parallel.Round(1e6), s.Serial.Round(1e6), s.Ratio())
}

// RenderTable1 writes the survey selection (Table I).
func RenderTable1(w io.Writer) error {
	t := &report.Table{
		Title: "Table I: top three techniques per TDFM approach (representatives marked *)",
		Headers: []string{"TDFM Approach", "Technique", "Code?", "Arch-Agnostic?",
			"Artificial Noise?", "Not Pre-Trained?", "Standalone?"},
	}
	sel, err := survey.StudySelection()
	if err != nil {
		return err
	}
	repr := make(map[string]bool, len(sel))
	for _, s := range sel {
		repr[string(s.Approach)+"/"+s.Representative.Technique] = true
	}
	mark := func(b bool) string {
		if b {
			return "yes"
		}
		return "no"
	}
	for _, c := range survey.Candidates() {
		name := c.Technique + " " + c.Reference
		if repr[string(c.Approach)+"/"+c.Technique] {
			name += " *"
		}
		t.AddRow(string(c.Approach), name,
			mark(c.Criteria.CodeAvailable), mark(c.Criteria.ArchAgnostic),
			mark(c.Criteria.ArtificialNoise), mark(c.Criteria.NotPreTrained),
			mark(c.Criteria.Standalone))
	}
	t.Notes = append(t.Notes,
		"KD and Ensemble representatives were re-implemented from the articles' descriptions (§III-A)")
	t.Render(w)
	return nil
}

// RenderTable2 writes the dataset summary (Table II) from the runner's
// generated datasets.
func (r *Runner) RenderTable2(w io.Writer) error {
	t := &report.Table{
		Title:   "Table II: image classification datasets used (synthetic stand-ins)",
		Headers: []string{"Name", "Training", "Test", "Task (# classes)"},
	}
	tasks := map[string]string{
		"cifar10like":   "Objects and animals",
		"gtsrblike":     "Traffic signs",
		"pneumonialike": "Chest X-rays",
	}
	for _, name := range DatasetNames() {
		train, test, err := r.Dataset(name)
		if err != nil {
			return err
		}
		t.AddRow(displayName(name),
			fmt.Sprintf("%d", train.Len()), fmt.Sprintf("%d", test.Len()),
			fmt.Sprintf("%s (%d)", tasks[name], train.NumClasses))
	}
	t.Notes = append(t.Notes, "sizes scale with the harness -scale flag; the paper's 5:1 and 1/10 ratios are preserved")
	t.Render(w)
	return nil
}

func capitalize(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}

// RenderTable3 writes the architecture summary (Table III).
func RenderTable3(w io.Writer) {
	t := &report.Table{
		Title:   "Table III: neural network architectures used",
		Headers: []string{"Name", "Depth", "Architecture Summary"},
	}
	for _, name := range models.StudyModels() {
		info, err := models.Get(name)
		if err != nil {
			continue
		}
		t.AddRow(info.Name, capitalize(info.Depth), info.Summary)
	}
	t.Render(w)
}
