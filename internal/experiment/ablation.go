package experiment

import (
	"fmt"
	"io"

	"tdfm/internal/core"
	"tdfm/internal/faultinject"
	"tdfm/internal/metrics"
	"tdfm/internal/models"
	"tdfm/internal/report"
	"tdfm/internal/xrand"
)

// Ablations probe the design choices DESIGN.md calls out: the ensemble
// size n, the label-smoothing budget α (and relaxation vs classic
// smoothing), the label-correction clean fraction γ, and the distillation
// temperature T. Each ablation measures AD under a fixed fault injection,
// holding everything else at study defaults.

// AblationPoint is one (setting, AD) measurement.
type AblationPoint struct {
	Setting string
	AD      metrics.Summary
}

// measureCustom trains an arbitrary (non-registry) technique under the
// runner's protocol and returns AD across repetitions. Custom techniques
// are not memoized; key material only seeds their randomness.
func (r *Runner) measureCustom(ds string, tech core.Technique, label, arch string, specs []FaultSpec) (metrics.Summary, error) {
	train, test, err := r.Dataset(ds)
	if err != nil {
		return metrics.Summary{}, err
	}
	ads := make([]float64, 0, r.Reps)
	for rep := 0; rep < r.Reps; rep++ {
		golden, err := r.Golden(ds, arch, rep)
		if err != nil {
			return metrics.Summary{}, err
		}
		protoKey := fmt.Sprintf("%s|inject|%s|rep%d", ds, specsKey(specs), rep)
		injRNG := xrand.New(r.Seed).Split(protoKey)
		cleanIdx := train.StratifiedIndices(r.CleanFrac, injRNG.Split("clean"))
		faulty := train
		if len(specs) > 0 {
			inj := faultinject.New(injRNG.Split("faults"))
			inj.Protect(cleanIdx)
			faulty, _, err = inj.Inject(train, specs...)
			if err != nil {
				return metrics.Summary{}, err
			}
		}
		rng := xrand.New(r.Seed).Split(fmt.Sprintf("custom|%s|%s|%s|rep%d", ds, label, arch, rep))
		clf, err := tech.Train(core.Config{Arch: arch, Epochs: r.EpochOverride, WidthMult: r.WidthMult},
			core.TrainSet{Data: faulty, CleanIndices: cleanIdx}, rng)
		if err != nil {
			return metrics.Summary{}, fmt.Errorf("experiment: ablation %s: %w", label, err)
		}
		ads = append(ads, metrics.AccuracyDelta(golden, clf.Predict(test.X), test.Labels))
	}
	return metrics.Summarize(ads), nil
}

// AblateEnsembleSize measures AD as the ensemble grows from 1 to the
// paper's 5 diverse members (the paper's prior work [21] found n = 5 most
// effective).
func (r *Runner) AblateEnsembleSize(ds string, rate float64, sizes []int) ([]AblationPoint, error) {
	members := models.EnsembleMembers()
	specs := []FaultSpec{{Type: faultinject.Mislabel, Rate: rate}}
	out := make([]AblationPoint, 0, len(sizes))
	for _, n := range sizes {
		if n < 1 || n > len(members) {
			return nil, fmt.Errorf("experiment: ensemble size %d out of [1,%d]", n, len(members))
		}
		tech := core.NewEnsemble(members[:n])
		label := fmt.Sprintf("ens-n%d@%g", n, rate)
		ad, err := r.measureCustom(ds, tech, label, members[0], specs)
		if err != nil {
			return nil, err
		}
		out = append(out, AblationPoint{Setting: fmt.Sprintf("n=%d", n), AD: ad})
	}
	return out, nil
}

// AblateSmoothingAlpha measures AD across label-smoothing budgets for both
// label relaxation (the study representative) and classic fixed-target
// smoothing.
func (r *Runner) AblateSmoothingAlpha(ds, arch string, rate float64, alphas []float64) ([]AblationPoint, error) {
	specs := []FaultSpec{{Type: faultinject.Mislabel, Rate: rate}}
	out := make([]AblationPoint, 0, 2*len(alphas))
	for _, variant := range []struct {
		name    string
		classic bool
	}{{"relax", false}, {"classic", true}} {
		for _, a := range alphas {
			tech := core.LabelSmoothing{Alpha: a, Classic: variant.classic}
			label := fmt.Sprintf("ls-%s-a%g@%g", variant.name, a, rate)
			ad, err := r.measureCustom(ds, tech, label, arch, specs)
			if err != nil {
				return nil, err
			}
			out = append(out, AblationPoint{
				Setting: fmt.Sprintf("%s α=%g", variant.name, a), AD: ad})
		}
	}
	return out, nil
}

// AblateCleanFraction measures label correction's AD as the clean-subset
// fraction γ varies.
func (r *Runner) AblateCleanFraction(ds, arch string, rate float64, gammas []float64) ([]AblationPoint, error) {
	specs := []FaultSpec{{Type: faultinject.Mislabel, Rate: rate}}
	out := make([]AblationPoint, 0, len(gammas))
	origClean := r.CleanFrac
	defer func() { r.CleanFrac = origClean }()
	for _, g := range gammas {
		r.CleanFrac = g
		tech := core.NewLabelCorrection(g)
		label := fmt.Sprintf("lc-g%g@%g", g, rate)
		ad, err := r.measureCustom(ds, tech, label, arch, specs)
		if err != nil {
			return nil, err
		}
		out = append(out, AblationPoint{Setting: fmt.Sprintf("γ=%g", g), AD: ad})
	}
	return out, nil
}

// AblateKDTemperature measures self-distillation's AD across softmax
// temperatures.
func (r *Runner) AblateKDTemperature(ds, arch string, rate float64, temps []float64) ([]AblationPoint, error) {
	specs := []FaultSpec{{Type: faultinject.Mislabel, Rate: rate}}
	out := make([]AblationPoint, 0, len(temps))
	for _, temp := range temps {
		tech := core.KnowledgeDistillation{Alpha: 0.7, T: temp}
		label := fmt.Sprintf("kd-t%g@%g", temp, rate)
		ad, err := r.measureCustom(ds, tech, label, arch, specs)
		if err != nil {
			return nil, err
		}
		out = append(out, AblationPoint{Setting: fmt.Sprintf("T=%g", temp), AD: ad})
	}
	return out, nil
}

// ReverseDeltaCheck verifies the paper's §III-C claim that the proportion
// of test images misclassified by the golden model but recovered by the
// faulty model is not significant. It returns the baseline's forward damage
// rate and reverse delta under the given injection, both normalized by the
// full test size so they are directly comparable.
func (r *Runner) ReverseDeltaCheck(ds, arch string, rate float64) (forward, reverse metrics.Summary, err error) {
	_, test, err := r.Dataset(ds)
	if err != nil {
		return forward, reverse, err
	}
	specs := []FaultSpec{{Type: faultinject.Mislabel, Rate: rate}}
	fwd := make([]float64, 0, r.Reps)
	rev := make([]float64, 0, r.Reps)
	for rep := 0; rep < r.Reps; rep++ {
		golden, err := r.Golden(ds, arch, rep)
		if err != nil {
			return forward, reverse, err
		}
		faulty, _, err := r.Predictions(ds, "base", arch, specs, rep)
		if err != nil {
			return forward, reverse, err
		}
		fwd = append(fwd, metrics.DamageRate(golden, faulty, test.Labels))
		rev = append(rev, metrics.ReverseDelta(golden, faulty, test.Labels))
	}
	return metrics.Summarize(fwd), metrics.Summarize(rev), nil
}

// RenderAblation writes ablation points as a bar list.
func RenderAblation(w io.Writer, title string, points []AblationPoint) {
	fmt.Fprintf(w, "%s — AD (lower is better)\n", title)
	for _, p := range points {
		fmt.Fprintf(w, "  %s\n", report.Bar(p.Setting, p.AD.Mean, p.AD.CI95, 40))
	}
}
