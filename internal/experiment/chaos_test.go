package experiment

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"tdfm/internal/chaos"
	"tdfm/internal/faultinject"
	"tdfm/internal/obs"
)

// injectedIOErr builds the environment-shaped error the chaos tests inject.
func injectedIOErr(what string) error {
	return fmt.Errorf("%s: %w", what, chaos.ErrInjected)
}

// TestGridSurvivesInjectedFaultsAndResumes is the PR's acceptance test: a
// grid with a panic, a persistent NaN divergence, and an I/O fault injected
// into three distinct cells must complete with exactly those cells reported
// failed (classified), and a -resume-style rerun with the faults disabled
// must retrain only the failed cells and produce a CSV byte-identical to a
// fault-free run.
func TestGridSurvivesInjectedFaultsAndResumes(t *testing.T) {
	faultFree := resumeGrid(t, resumeRunner(t, ""))

	dir := t.TempDir()
	r := resumeRunner(t, dir)
	specs := []FaultSpec{{Type: faultinject.Remove, Rate: 0.3}}
	panicKey := r.CellKey("pneumonialike", "ls", "convnet", specs, 0)
	nanKey := r.CellKey("pneumonialike", "rl", "convnet", specs, 0)
	ioKey := r.CellKey("pneumonialike", "kd", "convnet", specs, 0)
	chaos.Reset()
	defer chaos.Reset()
	chaos.Arm("experiment.trainCell", panicKey, chaos.Action{Panic: true})
	chaos.Arm("core.trainLoop.loss", nanKey, chaos.Action{NaN: true})
	chaos.Arm("experiment.trainCell", ioKey, chaos.Action{Err: injectedIOErr("disk detached")})

	p, err := r.RunPanel("pneumonialike", "convnet", faultinject.Remove, []float64{0.3})
	if err != nil {
		t.Fatalf("grid must complete with partial results, got: %v", err)
	}
	for tech, wantFailed := range map[string]int{"base": 0, "ls": 1, "rl": 1, "kd": 1, "ens": 0} {
		if got := p.Cells[tech][0.3].Failed; got != wantFailed {
			t.Errorf("%s failed reps = %d, want %d", tech, got, wantFailed)
		}
	}
	want := map[string]string{panicKey: ReasonPanic, nanKey: ReasonDivergence, ioKey: ReasonIO}
	fails := r.Failures()
	if len(fails) != len(want) {
		t.Fatalf("got %d failures, want %d:\n%v", len(fails), len(want), fails)
	}
	for _, ce := range fails {
		if want[ce.Key] != ce.Reason {
			t.Errorf("cell %s classified %q, want %q", ce.Key, ce.Reason, want[ce.Key])
		}
		if ce.Class != ClassTransient {
			t.Errorf("cell %s class %q, want %q", ce.Key, ce.Class, ClassTransient)
		}
		if ce.Reason == ReasonPanic && len(ce.Stack) == 0 {
			t.Error("recovered panic lost its stack")
		}
	}

	// The exported CSV marks the failed cells instead of fabricating numbers.
	fig := &Figure3Result{FaultType: faultinject.Remove, Panels: []*Panel{p}}
	var csv strings.Builder
	if err := fig.Table().WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if csv.String() == faultFree {
		t.Fatal("CSV with failed cells must differ from the fault-free run")
	}

	// Resume with the faults disabled: only the three failed cells retrain,
	// and the results are byte-identical to an uninterrupted fault-free run.
	chaos.Reset()
	resumed := resumeRunner(t, dir)
	restored, _, err := resumed.Resume()
	if err != nil {
		t.Fatal(err)
	}
	if restored != 3 { // golden base, base@0.3, ens@0.3 succeeded and journaled
		t.Fatalf("restored %d cells, want the 3 successful ones", restored)
	}
	var mu sync.Mutex
	var retrained []string
	resumed.Sink = obs.SinkFunc(func(e obs.Event) {
		if e.Kind == obs.KindCellStart {
			mu.Lock()
			retrained = append(retrained, e.Key)
			mu.Unlock()
		}
	})
	if got := resumeGrid(t, resumed); got != faultFree {
		t.Fatalf("resumed grid differs from fault-free run:\n%s\nvs\n%s", got, faultFree)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(retrained) != len(want) {
		t.Fatalf("resumed run retrained %d cells (%v), want only the %d failed ones",
			len(retrained), retrained, len(want))
	}
	for _, k := range retrained {
		if _, ok := want[k]; !ok {
			t.Errorf("resumed run needlessly retrained %s", k)
		}
	}
	if left := resumed.Failures(); len(left) != 0 {
		t.Fatalf("failures survived a clean rerun: %v", left)
	}
}

// TestRetryRecoversTransientFaultByteIdentical: a transient environmental
// fault that clears on the second attempt must be absorbed by the retry
// policy, and the retried cell's predictions must be byte-identical to a
// fault-free run (attempts reuse the identical cell-keyed randomness).
func TestRetryRecoversTransientFaultByteIdentical(t *testing.T) {
	clean := fastRunner(1)
	want, _, err := clean.Predictions("pneumonialike", "base", "convnet", nil, 0)
	if err != nil {
		t.Fatal(err)
	}

	r := fastRunner(1)
	r.Retries = 1
	key := r.CellKey("pneumonialike", "base", "convnet", nil, 0)
	chaos.Reset()
	defer chaos.Reset()
	chaos.Arm("experiment.trainCell", key, chaos.Action{Err: injectedIOErr("flaky read"), Times: 1})
	var mu sync.Mutex
	retries := 0
	r.Sink = obs.SinkFunc(func(e obs.Event) {
		if e.Kind == obs.KindCellRetry {
			mu.Lock()
			retries++
			mu.Unlock()
		}
	})
	got, _, err := r.Predictions("pneumonialike", "base", "convnet", nil, 0)
	if err != nil {
		t.Fatalf("retry did not absorb the transient fault: %v", err)
	}
	if retries != 1 {
		t.Fatalf("observed %d retry events, want 1", retries)
	}
	if len(got) != len(want) {
		t.Fatalf("prediction lengths differ: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatal("retried cell is not byte-identical to the fault-free run")
		}
	}
	if fails := r.Failures(); len(fails) != 0 {
		t.Fatalf("a recovered cell must not be recorded failed: %v", fails)
	}
}

// TestPermanentFailureNotRetried: configuration errors are classified
// permanent, never retried, and stay memoized so dependent measurements
// report the same error without retraining.
func TestPermanentFailureNotRetried(t *testing.T) {
	r := fastRunner(1)
	r.Retries = 3
	var mu sync.Mutex
	starts := 0
	r.Sink = obs.SinkFunc(func(e obs.Event) {
		if e.Kind == obs.KindCellStart {
			mu.Lock()
			starts++
			mu.Unlock()
		}
	})
	_, _, err := r.Predictions("pneumonialike", "base", "nosucharch", nil, 0)
	var ce *CellError
	if !errors.As(err, &ce) {
		t.Fatalf("err %T is not a *CellError: %v", err, err)
	}
	if ce.Reason != ReasonConfig || ce.Class != ClassPermanent || ce.Attempts != 1 {
		t.Fatalf("bad classification: %+v", ce)
	}
	_, _, err2 := r.Predictions("pneumonialike", "base", "nosucharch", nil, 0)
	if !errors.Is(err2, ce) && err2.Error() != err.Error() {
		t.Fatalf("memoized permanent failure changed: %v vs %v", err2, err)
	}
	if starts != 1 {
		t.Fatalf("permanent failure trained %d times, want 1 (no retries, sticky memo)", starts)
	}
	if fails := r.Failures(); len(fails) != 1 || fails[0].Key != ce.Key {
		t.Fatalf("failure report %v, want exactly the config failure", fails)
	}
}

// TestCancellationGatesScheduling: a cancelled runner refuses to start new
// cells (nothing cached, nothing recorded failed — they simply did not
// run) while cached cells keep serving.
func TestCancellationGatesScheduling(t *testing.T) {
	r := fastRunner(1)
	ctx, cancel := context.WithCancel(context.Background())
	r.Ctx = ctx
	cached, _, err := r.Predictions("pneumonialike", "base", "convnet", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	if _, _, err := r.Predictions("pneumonialike", "ls", "convnet", nil, 0); !IsCancelled(err) {
		t.Fatalf("cancelled runner scheduled new work: %v", err)
	}
	if got := r.CacheSize(); got != 1 {
		t.Fatalf("cache size %d after cancelled schedule, want 1", got)
	}
	if fails := r.Failures(); len(fails) != 0 {
		t.Fatalf("cancelled cells recorded as failures: %v", fails)
	}
	again, _, err := r.Predictions("pneumonialike", "base", "convnet", nil, 0)
	if err != nil {
		t.Fatalf("cached cell refused after cancel: %v", err)
	}
	for i := range again {
		if again[i] != cached[i] {
			t.Fatal("cached predictions changed after cancellation")
		}
	}
	if _, err := r.MeasureAD("pneumonialike", "ls", "convnet", nil); !IsCancelled(err) {
		t.Fatalf("MeasureAD must abort on cancellation, got: %v", err)
	}
}

// TestCellTimeoutClassifiedTransient: a cell over its time budget fails
// with a timeout-classified transient error and is evicted from the cache
// so a rerun (with a saner budget) can recompute it.
func TestCellTimeoutClassifiedTransient(t *testing.T) {
	r := fastRunner(1)
	r.CellTimeout = time.Nanosecond
	_, _, err := r.Predictions("pneumonialike", "base", "convnet", nil, 0)
	var ce *CellError
	if !errors.As(err, &ce) {
		t.Fatalf("err %T is not a *CellError: %v", err, err)
	}
	if ce.Reason != ReasonTimeout || ce.Class != ClassTransient {
		t.Fatalf("bad timeout classification: %+v", ce)
	}
	if got := r.CacheSize(); got != 0 {
		t.Fatalf("timed-out cell stayed cached (size %d)", got)
	}
	r.CellTimeout = 0
	if _, _, err := r.Predictions("pneumonialike", "base", "convnet", nil, 0); err != nil {
		t.Fatalf("cell did not recover once the budget was lifted: %v", err)
	}
}

// TestWorkerCountInvariantThroughRecoveryAndRetry: with a divergence
// recovery in one cell and a retried transient fault in another, the
// serial (Workers=1) and parallel schedules must produce byte-identical
// predictions for every cell.
func TestWorkerCountInvariantThroughRecoveryAndRetry(t *testing.T) {
	specs := []FaultSpec{{Type: faultinject.Mislabel, Rate: 0.3}}
	run := func(workers int) map[string][]int {
		r := fastRunner(2)
		r.Workers = workers
		r.Retries = 1
		nanKey := r.CellKey("pneumonialike", "rl", "convnet", specs, 0)
		ioKey := r.CellKey("pneumonialike", "ls", "convnet", specs, 1)
		chaos.Reset()
		chaos.Arm("core.trainLoop.loss", nanKey, chaos.Action{NaN: true, Times: 1})
		chaos.Arm("experiment.trainCell", ioKey, chaos.Action{Err: injectedIOErr("blip"), Times: 1})
		out := make(map[string][]int)
		for _, tech := range []string{"rl", "ls"} {
			cell, err := r.MeasureAD("pneumonialike", tech, "convnet", specs)
			if err != nil {
				t.Fatalf("workers=%d %s: %v", workers, tech, err)
			}
			if cell.Failed != 0 {
				t.Fatalf("workers=%d %s: %d reps failed despite recovery/retry", workers, tech, cell.Failed)
			}
			for rep := 0; rep < 2; rep++ {
				pred, _, err := r.Predictions("pneumonialike", tech, "convnet", specs, rep)
				if err != nil {
					t.Fatalf("workers=%d %s rep%d: %v", workers, tech, rep, err)
				}
				out[fmt.Sprintf("%s/rep%d", tech, rep)] = pred
			}
		}
		return out
	}
	serial := run(1)
	parallel := run(4)
	chaos.Reset()
	for key, want := range serial {
		got := parallel[key]
		if len(got) != len(want) {
			t.Fatalf("%s: prediction lengths differ", key)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: serial and parallel schedules diverge through recovery/retry", key)
			}
		}
	}
}
