// Package experiment implements the study's experimental protocol (§IV):
// generate a dataset, train a golden model on clean data, reserve a clean
// subset, inject training-data faults, train each TDFM technique on the
// faulty data, and measure accuracy and Accuracy Delta on a shared test
// set, repeated over seeds with 95% confidence intervals.
//
// The Runner memoizes test-set predictions by configuration so that work
// shared between the paper's tables and figures (golden models per
// (dataset, model, repetition); ensemble models per (dataset, fault spec,
// repetition)) is computed once per process.
package experiment

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"tdfm/internal/core"
	"tdfm/internal/data"
	"tdfm/internal/datagen"
	"tdfm/internal/faultinject"
	"tdfm/internal/metrics"
	"tdfm/internal/xrand"
)

// Runner executes experiment cells with memoization.
type Runner struct {
	// Scale selects dataset sizes (datagen tiers).
	Scale datagen.Scale
	// Seed is the root seed; every cell derives its randomness from it.
	Seed uint64
	// Reps is the number of repetitions per configuration (the paper uses
	// 20; the default harness uses a laptop-friendly count).
	Reps int
	// CleanFrac is the fraction of training data reserved from injection as
	// the clean subset for label correction (γ, §III-B2).
	CleanFrac float64
	// Progress, when non-nil, receives one line per trained cell.
	Progress io.Writer
	// EpochOverride, when > 0, replaces every architecture's default epoch
	// count (used by fast tests and reduced benchmarks).
	EpochOverride int
	// WidthMult, when > 0, scales every model's channel widths.
	WidthMult float64

	mu       sync.Mutex
	datasets map[string]dsPair
	preds    map[string]predEntry
}

type dsPair struct {
	train, test *data.Dataset
}

type predEntry struct {
	pred     []int
	trainDur time.Duration
}

// NewRunner returns a runner with the study defaults.
func NewRunner(scale datagen.Scale, seed uint64, reps int) *Runner {
	return &Runner{
		Scale:     scale,
		Seed:      seed,
		Reps:      reps,
		CleanFrac: 0.1,
		datasets:  make(map[string]dsPair),
		preds:     make(map[string]predEntry),
	}
}

// DatasetNames lists the three study datasets in paper order
// (Table II / Table IV order: CIFAR-10, GTSRB, Pneumonia).
func DatasetNames() []string { return []string{"cifar10like", "gtsrblike", "pneumonialike"} }

// Dataset returns the generated train/test pair for a study dataset,
// memoized per runner.
func (r *Runner) Dataset(name string) (train, test *data.Dataset, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if p, ok := r.datasets[name]; ok {
		return p.train, p.test, nil
	}
	cfgs := datagen.Presets(r.Scale, r.Seed)
	cfg, ok := cfgs[name]
	if !ok {
		return nil, nil, fmt.Errorf("experiment: unknown dataset %q (have %v)", name, DatasetNames())
	}
	train, test, err = datagen.Generate(cfg)
	if err != nil {
		return nil, nil, err
	}
	r.datasets[name] = dsPair{train: train, test: test}
	return train, test, nil
}

// FaultSpec mirrors faultinject.Spec for experiment definitions.
type FaultSpec = faultinject.Spec

// specsKey canonicalizes a fault-spec list for cache keys.
func specsKey(specs []FaultSpec) string {
	if len(specs) == 0 {
		return "clean"
	}
	parts := make([]string, len(specs))
	for i, s := range specs {
		parts[i] = fmt.Sprintf("%s@%g", s.Type, s.Rate)
	}
	return strings.Join(parts, "+")
}

// cellKey identifies a unique training run.
func (r *Runner) cellKey(ds, tech, arch string, specs []FaultSpec, rep int) string {
	// The ensemble ignores the architecture (it trains its own members), so
	// its cache entry is shared across model panels.
	if tech == "ens" {
		arch = "-"
	}
	return fmt.Sprintf("%s|%s|%s|%s|rep%d|scale%d|seed%d|ep%d", ds, tech, arch, specsKey(specs), rep, r.Scale, r.Seed, r.EpochOverride)
}

// cellRNG derives the deterministic random stream of a cell.
func (r *Runner) cellRNG(key string) *xrand.RNG {
	return xrand.New(r.Seed).Split(key)
}

// Predictions trains (or recalls) the given technique/architecture on ds
// with the given faults injected, and returns test-set predictions plus the
// training duration of the original (uncached) run.
func (r *Runner) Predictions(ds, tech, arch string, specs []FaultSpec, rep int) ([]int, time.Duration, error) {
	key := r.cellKey(ds, tech, arch, specs, rep)
	r.mu.Lock()
	if e, ok := r.preds[key]; ok {
		r.mu.Unlock()
		return e.pred, e.trainDur, nil
	}
	r.mu.Unlock()

	train, test, err := r.Dataset(ds)
	if err != nil {
		return nil, 0, err
	}
	technique, err := core.Get(tech)
	if err != nil {
		return nil, 0, err
	}
	rng := r.cellRNG(key)

	// Reserve the clean subset before injection, exactly as §III-B2: the
	// reservation depends on (dataset, rep) only, so every technique sees
	// the same injected dataset for a given configuration.
	protoKey := fmt.Sprintf("%s|inject|%s|rep%d", ds, specsKey(specs), rep)
	injRNG := xrand.New(r.Seed).Split(protoKey)
	cleanIdx := train.StratifiedIndices(r.CleanFrac, injRNG.Split("clean"))
	faulty := train
	if len(specs) > 0 {
		inj := faultinject.New(injRNG.Split("faults"))
		inj.Protect(cleanIdx)
		faulty, _, err = inj.Inject(train, specs...)
		if err != nil {
			return nil, 0, err
		}
	}

	start := time.Now()
	clf, err := technique.Train(
		core.Config{Arch: arch, Epochs: r.EpochOverride, WidthMult: r.WidthMult},
		core.TrainSet{Data: faulty, CleanIndices: cleanIdx}, rng)
	if err != nil {
		return nil, 0, fmt.Errorf("experiment: %s: %w", key, err)
	}
	dur := time.Since(start)
	pred := clf.Predict(test.X)

	r.mu.Lock()
	r.preds[key] = predEntry{pred: pred, trainDur: dur}
	r.mu.Unlock()
	if r.Progress != nil {
		fmt.Fprintf(r.Progress, "trained %-60s %8s\n", key, dur.Round(time.Millisecond))
	}
	return pred, dur, nil
}

// Golden returns the golden model's predictions: the baseline architecture
// trained on clean data (§III-C).
func (r *Runner) Golden(ds, arch string, rep int) ([]int, error) {
	pred, _, err := r.Predictions(ds, "base", arch, nil, rep)
	return pred, err
}

// Cell is one measured configuration across repetitions.
type Cell struct {
	Dataset   string
	Technique string
	Arch      string
	Specs     []FaultSpec

	AD       metrics.Summary // accuracy delta vs the golden model
	Accuracy metrics.Summary // absolute test accuracy
	TrainDur time.Duration   // summed uncached training time
}

// MeasureAD runs the configuration for every repetition and summarizes the
// AD and accuracy.
func (r *Runner) MeasureAD(ds, tech, arch string, specs []FaultSpec) (Cell, error) {
	cell := Cell{Dataset: ds, Technique: tech, Arch: arch, Specs: specs}
	_, test, err := r.Dataset(ds)
	if err != nil {
		return cell, err
	}
	ads := make([]float64, 0, r.Reps)
	accs := make([]float64, 0, r.Reps)
	for rep := 0; rep < r.Reps; rep++ {
		golden, err := r.Golden(ds, arch, rep)
		if err != nil {
			return cell, err
		}
		faulty, dur, err := r.Predictions(ds, tech, arch, specs, rep)
		if err != nil {
			return cell, err
		}
		cell.TrainDur += dur
		ads = append(ads, metrics.AccuracyDelta(golden, faulty, test.Labels))
		accs = append(accs, metrics.Accuracy(faulty, test.Labels))
	}
	cell.AD = metrics.Summarize(ads)
	cell.Accuracy = metrics.Summarize(accs)
	return cell, nil
}

// GoldenAccuracy measures the accuracy of a technique trained on CLEAN data
// (Table IV) averaged over repetitions.
func (r *Runner) GoldenAccuracy(ds, tech, arch string) (metrics.Summary, error) {
	_, test, err := r.Dataset(ds)
	if err != nil {
		return metrics.Summary{}, err
	}
	accs := make([]float64, 0, r.Reps)
	for rep := 0; rep < r.Reps; rep++ {
		pred, _, err := r.Predictions(ds, tech, arch, nil, rep)
		if err != nil {
			return metrics.Summary{}, err
		}
		accs = append(accs, metrics.Accuracy(pred, test.Labels))
	}
	return metrics.Summarize(accs), nil
}

// CacheSize returns the number of memoized prediction entries (diagnostic).
func (r *Runner) CacheSize() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.preds)
}

// CachedKeys returns the sorted cache keys (diagnostic, used in tests).
func (r *Runner) CachedKeys() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	keys := make([]string, 0, len(r.preds))
	for k := range r.preds {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// techniqueByName resolves a study technique (thin wrapper kept local so
// experiment definitions do not import core directly everywhere).
func techniqueByName(name string) (core.Technique, error) { return core.Get(name) }
