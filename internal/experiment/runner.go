// Package experiment implements the study's experimental protocol (§IV):
// generate a dataset, train a golden model on clean data, reserve a clean
// subset, inject training-data faults, train each TDFM technique on the
// faulty data, and measure accuracy and Accuracy Delta on a shared test
// set, repeated over seeds with 95% confidence intervals.
//
// The Runner memoizes test-set predictions by configuration so that work
// shared between the paper's tables and figures (golden models per
// (dataset, model, repetition); ensemble models per (dataset, fault spec,
// repetition)) is computed once per process. Both memo caches are
// single-flight: concurrent cells needing the same golden model block on
// the one in-flight training instead of duplicating it.
//
// Independent cells — distinct (dataset, model, technique, fault spec,
// repetition) tuples — execute on a bounded worker pool sized by the
// Workers field. Every cell derives its randomness from the root seed by
// cell key, never by call order, so any schedule (including Workers=1, the
// original serial behaviour) produces byte-identical results.
//
// Runs are crash-safe and observable through internal/obs: a Runner with a
// Journal attached records every completed cell durably (append-only JSONL
// journal plus atomically written per-cell prediction checkpoints), Resume
// reloads those cells into the memo cache so a killed grid recomputes only
// its unfinished cells, and a Sink receives structured progress events
// (cell start/finish, cache hit/miss, restores, grid plans). Because cell
// randomness is keyed rather than scheduled, a resumed run's outputs are
// byte-identical to an uninterrupted run's.
package experiment

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tdfm/internal/chaos"
	"tdfm/internal/core"
	"tdfm/internal/data"
	"tdfm/internal/datagen"
	"tdfm/internal/faultinject"
	"tdfm/internal/metrics"
	"tdfm/internal/obs"
	"tdfm/internal/parallel"
	"tdfm/internal/xrand"
)

// Runner executes experiment cells with memoization.
type Runner struct {
	// Scale selects dataset sizes (datagen tiers).
	Scale datagen.Scale
	// Seed is the root seed; every cell derives its randomness from it.
	Seed uint64
	// Reps is the number of repetitions per configuration (the paper uses
	// 20; the default harness uses a laptop-friendly count).
	Reps int
	// CleanFrac is the fraction of training data reserved from injection as
	// the clean subset for label correction (γ, §III-B2).
	CleanFrac float64
	// Progress, when non-nil, receives one line per trained cell.
	Progress io.Writer
	// EpochOverride, when > 0, replaces every architecture's default epoch
	// count (used by fast tests and reduced benchmarks).
	EpochOverride int
	// WidthMult, when > 0, scales every model's channel widths.
	WidthMult float64
	// Workers bounds how many experiment cells train concurrently. 0 means
	// runtime.GOMAXPROCS(0); 1 reproduces the original serial schedule.
	// Results are byte-identical at every setting because per-cell RNG is
	// keyed, not ordered. While the pool runs, its workers reserve slots
	// from the shared parallel budget so nested fan-out (ensemble members,
	// tensor ops) cannot oversubscribe the machine.
	Workers int
	// Journal, when non-nil, durably records every successfully trained
	// cell (journal record + atomic prediction checkpoint) so the run can
	// be resumed after a crash. Journal write failures never fail the
	// run; they surface as KindJournalError events on Sink.
	Journal *obs.Journal
	// Sink, when non-nil, receives structured progress events. Sinks
	// observe only: they are invoked outside result-bearing computation
	// and must be safe for concurrent use.
	Sink obs.Sink
	// Retries is how many extra training attempts a transiently failed
	// cell (panic, divergence, environmental I/O, timeout) gets before the
	// failure is recorded. Permanent (configuration) failures are never
	// retried. Every attempt derives the identical cell-keyed randomness,
	// so a successful retry is byte-identical to a fault-free run.
	Retries int
	// CellTimeout, when > 0, bounds each cell's training wall-clock; a
	// cell over budget fails with a timeout-classified error. The timeout
	// context is independent of Ctx: run-level cancellation drains
	// in-flight cells rather than aborting them.
	CellTimeout time.Duration
	// Ctx, when non-nil, cancels the run cooperatively. It gates
	// scheduling only: cells not yet started return a cancelled cell
	// error (nothing cached, nothing recorded as failed), while in-flight
	// cells run to completion and journal normally, so an interrupted run
	// resumes without losing finished work.
	Ctx context.Context
	// Remote, when non-nil, delegates every uncached cell to an external
	// executor (the distributed grid coordinator in internal/dist)
	// instead of training locally. Everything else — memoization, the
	// retry taxonomy, cancellation, events — behaves identically, and
	// because cell randomness is keyed rather than scheduled, a remotely
	// executed cell's predictions are byte-identical to a local run's.
	// The executor owns durable recording (its journal append is the
	// completion acknowledgement), so the runner's own Journal append is
	// skipped; attach the same Journal to the executor and Resume reads
	// it back exactly like a local run.
	Remote CellExecutor

	mu       sync.Mutex
	datasets map[string]*dsEntry
	preds    map[string]*predEntry
	failures map[string]*CellError
}

// dsEntry is a single-flight memo slot for a generated dataset pair.
type dsEntry struct {
	done        chan struct{}
	train, test *data.Dataset
	err         error
}

// predEntry is a single-flight memo slot for one trained cell.
type predEntry struct {
	done     chan struct{}
	pred     []int
	trainDur time.Duration
	err      error
}

// NewRunner returns a runner with the study defaults.
func NewRunner(scale datagen.Scale, seed uint64, reps int) *Runner {
	return &Runner{
		Scale:     scale,
		Seed:      seed,
		Reps:      reps,
		CleanFrac: 0.1,
		datasets:  make(map[string]*dsEntry),
		preds:     make(map[string]*predEntry),
		failures:  make(map[string]*CellError),
	}
}

// emit forwards an event to the runner's sink, if any.
func (r *Runner) emit(e obs.Event) {
	if r.Sink != nil {
		r.Sink.Emit(e)
	}
}

// workers resolves the Workers field to an effective pool size.
func (r *Runner) workers() int {
	if r.Workers == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if r.Workers < 1 {
		return 1
	}
	return r.Workers
}

// DatasetNames lists the three study datasets in paper order
// (Table II / Table IV order: CIFAR-10, GTSRB, Pneumonia).
func DatasetNames() []string { return []string{"cifar10like", "gtsrblike", "pneumonialike"} }

// Dataset returns the generated train/test pair for a study dataset,
// memoized per runner. Concurrent calls for the same dataset block on one
// generation (single flight).
func (r *Runner) Dataset(name string) (train, test *data.Dataset, err error) {
	r.mu.Lock()
	if e, ok := r.datasets[name]; ok {
		r.mu.Unlock()
		<-e.done
		return e.train, e.test, e.err
	}
	e := &dsEntry{done: make(chan struct{})}
	r.datasets[name] = e
	r.mu.Unlock()
	defer close(e.done)

	cfgs := datagen.Presets(r.Scale, r.Seed)
	cfg, ok := cfgs[name]
	if !ok {
		e.err = fmt.Errorf("experiment: unknown dataset %q (have %v)", name, DatasetNames())
		return nil, nil, e.err
	}
	e.train, e.test, e.err = datagen.Generate(cfg)
	return e.train, e.test, e.err
}

// FaultSpec mirrors faultinject.Spec for experiment definitions.
type FaultSpec = faultinject.Spec

// CellSpec names one experiment cell portably: the five grid coordinates
// that, together with a runner configuration, fully determine the cell's
// key, randomness, and therefore its byte-exact predictions. It is the
// unit the distributed grid leases over the wire (JSON round-trips every
// field exactly — Rate is a float64, which encoding/json preserves
// bit-for-bit).
type CellSpec struct {
	// Dataset is the study dataset name (see DatasetNames).
	Dataset string `json:"dataset"`
	// Technique is the mitigation technique identifier ("base", "ls", …).
	Technique string `json:"technique"`
	// Arch is the model architecture identifier.
	Arch string `json:"arch"`
	// Specs are the injected fault specifications (empty means clean).
	Specs []FaultSpec `json:"specs,omitempty"`
	// Rep is the repetition index.
	Rep int `json:"rep"`
}

// CellExecutor executes one experiment cell outside the local trainer —
// the seam the distributed grid plugs into (Runner.Remote). Implementations
// must return the exact predictions a local trainCell would produce for
// the same key; errors flow into the runner's transient/permanent
// taxonomy, so an executor signals "worth retrying" by wrapping one of
// the transient sentinels (ErrLeaseExpired, ErrWorkerLost, …).
type CellExecutor interface {
	// ExecuteCell runs the cell named by key/spec and returns its test-set
	// predictions and training duration. It may block for as long as the
	// cell takes to train somewhere.
	ExecuteCell(key string, spec CellSpec) (pred []int, trainDur time.Duration, err error)
}

// specsKey canonicalizes a fault-spec list for cache keys.
func specsKey(specs []FaultSpec) string {
	if len(specs) == 0 {
		return "clean"
	}
	parts := make([]string, len(specs))
	for i, s := range specs {
		parts[i] = fmt.Sprintf("%s@%g", s.Type, s.Rate)
	}
	return strings.Join(parts, "+")
}

// cellKey identifies a unique training run.
func (r *Runner) cellKey(ds, tech, arch string, specs []FaultSpec, rep int) string {
	// The ensemble ignores the architecture (it trains its own members), so
	// its cache entry is shared across model panels.
	if tech == "ens" {
		arch = "-"
	}
	return fmt.Sprintf("%s|%s|%s|%s|rep%d|scale%d|seed%d|ep%d", ds, tech, arch, specsKey(specs), rep, r.Scale, r.Seed, r.EpochOverride)
}

// CellKey returns the cache key identifying one cell's training run.
// Chaos tests use it to target faults at specific cells, and CLIs use it
// to report failures; the format is stable within one binary, not a
// persistence API.
func (r *Runner) CellKey(ds, tech, arch string, specs []FaultSpec, rep int) string {
	return r.cellKey(ds, tech, arch, specs, rep)
}

// cellRNG derives the deterministic random stream of a cell. The stream
// depends only on (root seed, cell key): no matter which worker trains the
// cell, or in what order, the cell sees identical randomness.
func (r *Runner) cellRNG(key string) *xrand.RNG {
	return xrand.New(r.Seed).Split(key)
}

// Predictions trains (or recalls) the given technique/architecture on ds
// with the given faults injected, and returns test-set predictions plus the
// training duration of the original (uncached) run. Concurrent calls for
// the same cell block on the one in-flight training (single flight).
//
// Failures are classified (see CellError) and handled by class: permanent
// configuration errors stay memoized so the cell reports the same error
// everywhere without retraining; transient failures (panic, divergence,
// I/O, timeout) are retried up to Retries extra attempts and, if still
// failing, evicted from the memo cache so a later call — or a -resume
// rerun — trains the cell fresh; cancellation caches and records nothing.
// Every attempt derives the identical cell-keyed randomness, so a
// successful retry is byte-identical to a fault-free run.
func (r *Runner) Predictions(ds, tech, arch string, specs []FaultSpec, rep int) ([]int, time.Duration, error) {
	key := r.cellKey(ds, tech, arch, specs, rep)
	r.mu.Lock()
	if e, ok := r.preds[key]; ok {
		r.mu.Unlock()
		r.emit(obs.Event{Kind: obs.KindCacheHit, Key: key})
		<-e.done
		return e.pred, e.trainDur, e.err
	}
	if r.Ctx != nil && r.Ctx.Err() != nil {
		// Cancellation gates scheduling only. Nothing is cached or recorded
		// as failed: the cell simply did not run, and a resumed run
		// recomputes it.
		r.mu.Unlock()
		ce := classifyCellError(key, 0, r.Ctx.Err())
		r.emit(obs.Event{Kind: obs.KindCellCancelled, Key: key, Err: ce})
		return nil, 0, ce
	}
	e := &predEntry{done: make(chan struct{})}
	r.preds[key] = e
	r.mu.Unlock()
	defer close(e.done)
	r.emit(obs.Event{Kind: obs.KindCacheMiss, Key: key})
	r.emit(obs.Event{Kind: obs.KindCellStart, Key: key})
	e.pred, e.trainDur, e.err = r.trainCellWithRetry(key, ds, tech, arch, specs, rep)
	r.emit(obs.Event{Kind: obs.KindCellFinish, Key: key, Dur: e.trainDur, Err: e.err})
	r.recordOutcome(key, e)
	if e.err == nil && r.Journal != nil && r.Remote == nil {
		// With a Remote executor the coordinator appended the flowed-back
		// record durably before acknowledging the cell; appending here
		// again would double-journal it.
		rec := obs.Record{
			Key:       key,
			TrainNS:   e.trainDur.Nanoseconds(),
			Workers:   r.workers(),
			Seed:      r.Seed,
			WidthMult: r.WidthMult,
			CleanFrac: r.CleanFrac,
		}
		if jerr := r.Journal.Append(rec, e.pred); jerr != nil {
			r.emit(obs.Event{Kind: obs.KindJournalError, Key: key, Err: jerr})
		}
	}
	return e.pred, e.trainDur, e.err
}

// recordOutcome applies the failure-class policy to a finished cell: track
// the failure (clearing it on a later success), evict non-permanent
// failures from the memo cache, and emit the classified failure event.
func (r *Runner) recordOutcome(key string, e *predEntry) {
	r.mu.Lock()
	if e.err == nil {
		delete(r.failures, key)
		r.mu.Unlock()
		return
	}
	ce, ok := e.err.(*CellError)
	if !ok {
		ce = classifyCellError(key, 1, e.err)
	}
	if ce.Class != ClassPermanent && r.preds[key] == e {
		delete(r.preds, key)
	}
	if ce.Class != ClassCancelled {
		if r.failures == nil {
			r.failures = make(map[string]*CellError)
		}
		r.failures[key] = ce
	}
	r.mu.Unlock()
	switch ce.Reason {
	case ReasonPanic:
		r.emit(obs.Event{Kind: obs.KindCellPanic, Key: key, Err: ce})
	case ReasonDivergence:
		r.emit(obs.Event{Kind: obs.KindCellDiverged, Key: key, Err: ce})
	case ReasonCancelled:
		r.emit(obs.Event{Kind: obs.KindCellCancelled, Key: key, Err: ce})
	}
}

// Failures returns the classified failure of every cell that definitively
// failed (after retries), sorted by cell key. Cells whose later retraining
// succeeded are excluded; cancelled cells were never failures. CLIs use
// this for the end-of-run failure report and the nonzero exit code.
func (r *Runner) Failures() []*CellError {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*CellError, 0, len(r.failures))
	for _, ce := range r.failures {
		out = append(out, ce)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// trainCellWithRetry runs trainCell under the retry policy: transient
// failures get up to Retries extra attempts (each reusing the identical
// cell-keyed randomness), permanent and cancelled failures return
// immediately. The returned error, if any, is a *CellError.
func (r *Runner) trainCellWithRetry(key, ds, tech, arch string, specs []FaultSpec, rep int) ([]int, time.Duration, error) {
	var total time.Duration
	for attempt := 1; ; attempt++ {
		pred, dur, err := r.executeCell(key, ds, tech, arch, specs, rep)
		total += dur
		if err == nil {
			return pred, total, nil
		}
		ce := classifyCellError(key, attempt, err)
		if ce.Class != ClassTransient || attempt > r.Retries {
			return nil, total, ce
		}
		r.emit(obs.Event{Kind: obs.KindCellRetry, Key: key, N: attempt, Err: ce})
	}
}

// executeCell runs one uncached Predictions attempt: locally through
// trainCell, or through the Remote executor when one is installed. The
// remote path recovers panics exactly like the local one so a broken
// executor cannot take down the grid.
func (r *Runner) executeCell(key, ds, tech, arch string, specs []FaultSpec, rep int) (pred []int, dur time.Duration, err error) {
	if r.Remote == nil {
		return r.trainCell(key, ds, tech, arch, specs, rep)
	}
	defer func() {
		if v := recover(); v != nil {
			pred, dur = nil, 0
			err = fmt.Errorf("experiment: %s: %w", key, parallel.AsPanicError(v))
		}
	}()
	return r.Remote.ExecuteCell(key, CellSpec{Dataset: ds, Technique: tech, Arch: arch, Specs: specs, Rep: rep})
}

// trainCell performs the uncached work of one Predictions attempt. A panic
// anywhere in the cell — the fault injector, the trainer, a technique, or
// prediction — is recovered into an error carrying the panicking
// goroutine's stack, so one broken cell can never take down the rest of
// the grid.
func (r *Runner) trainCell(key, ds, tech, arch string, specs []FaultSpec, rep int) (pred []int, dur time.Duration, err error) {
	defer func() {
		if v := recover(); v != nil {
			pred, dur = nil, 0
			err = fmt.Errorf("experiment: %s: %w", key, parallel.AsPanicError(v))
		}
	}()
	// Chaos faultpoint: environment-shaped failures (panic or error) scoped
	// to this cell's key.
	if act := chaos.Check("experiment.trainCell", key); act != nil {
		if act.Panic {
			panic(fmt.Sprintf("chaos: injected cell panic (%s)", key))
		}
		if act.Err != nil {
			return nil, 0, fmt.Errorf("experiment: %s: %w", key, act.Err)
		}
	}
	train, test, err := r.Dataset(ds)
	if err != nil {
		return nil, 0, err
	}
	technique, err := core.Get(tech)
	if err != nil {
		return nil, 0, err
	}
	rng := r.cellRNG(key)

	// Reserve the clean subset before injection, exactly as §III-B2: the
	// reservation depends on (dataset, rep) only, so every technique sees
	// the same injected dataset for a given configuration.
	protoKey := fmt.Sprintf("%s|inject|%s|rep%d", ds, specsKey(specs), rep)
	injRNG := xrand.New(r.Seed).Split(protoKey)
	cleanIdx := train.StratifiedIndices(r.CleanFrac, injRNG.Split("clean"))
	faulty := train
	if len(specs) > 0 {
		inj := faultinject.New(injRNG.Split("faults"))
		inj.Protect(cleanIdx)
		faulty, _, err = inj.Inject(train, specs...)
		if err != nil {
			return nil, 0, err
		}
	}

	cfg := core.Config{Arch: arch, Epochs: r.EpochOverride, WidthMult: r.WidthMult, Tag: key}
	if r.CellTimeout > 0 {
		// The per-cell budget is independent of r.Ctx on purpose: run-level
		// cancellation drains in-flight cells instead of aborting them.
		ctx, cancel := context.WithTimeout(context.Background(), r.CellTimeout)
		defer cancel()
		cfg.Ctx = ctx
	}
	start := time.Now() //tdfm:allow nodeterminism training duration is a reported measurement, not part of any result
	clf, err := technique.Train(cfg,
		core.TrainSet{Data: faulty, CleanIndices: cleanIdx}, rng)
	if err != nil {
		return nil, 0, fmt.Errorf("experiment: %s: %w", key, err)
	}
	dur = time.Since(start) //tdfm:allow nodeterminism training duration is a reported measurement, not part of any result
	pred = clf.Predict(test.X)

	if r.Progress != nil {
		// Serialize concurrent cells' progress lines through the cache mutex.
		r.mu.Lock()
		fmt.Fprintf(r.Progress, "trained %-60s %8s\n", key, dur.Round(time.Millisecond))
		r.mu.Unlock()
	}
	return pred, dur, nil
}

// cellReq names one cell for warm-up scheduling.
type cellReq struct {
	ds, tech, arch string
	specs          []FaultSpec
	rep            int
}

// goldenReq is the golden-model cell backing a measurement cell.
func goldenReq(ds, arch string, rep int) cellReq {
	return cellReq{ds: ds, tech: "base", arch: arch, rep: rep}
}

// warm trains the given cells concurrently on the runner's worker pool so
// the serial measurement loops that follow hit the memo cache. Duplicate
// and already-cached cells are skipped; errors stay in the cache for the
// measurement loop to report deterministically. With Workers <= 1 (or
// fewer than two cells to train) warm is a no-op and the measurement loop
// trains serially, reproducing the original schedule exactly.
func (r *Runner) warm(cells []cellReq) {
	seen := make(map[string]bool, len(cells))
	uniq := cells[:0:0]
	r.mu.Lock()
	for _, c := range cells {
		key := r.cellKey(c.ds, c.tech, c.arch, c.specs, c.rep)
		if seen[key] {
			continue
		}
		seen[key] = true
		if _, cached := r.preds[key]; cached {
			continue
		}
		uniq = append(uniq, c)
	}
	r.mu.Unlock()
	// Announce the batch (deduplicated, uncached cells only) so progress
	// sinks can maintain a completion fraction and an ETA. Serial runs
	// announce too: the measurement loop trains the same cells inline.
	r.emit(obs.Event{Kind: obs.KindGridPlan, N: len(uniq)})
	w := r.workers()
	if w <= 1 || len(uniq) < 2 {
		return
	}
	if w > len(uniq) {
		w = len(uniq)
	}
	// Reserve budget slots for the pool's extra workers so nested fan-out
	// (ensemble members, tensor kernels) degrades to inline execution
	// instead of oversubscribing; Workers stays authoritative for cell
	// concurrency even when the budget is spent.
	granted := parallel.TryAcquire(w - 1)
	defer parallel.Release(granted)

	var next atomic.Int64
	var wg sync.WaitGroup
	work := func() {
		defer wg.Done()
		for {
			if r.Ctx != nil && r.Ctx.Err() != nil {
				return // cancelled: stop scheduling, in-flight cells drain
			}
			i := int(next.Add(1)) - 1
			if i >= len(uniq) {
				return
			}
			c := uniq[i]
			// Errors are classified and tracked by Predictions; the serial
			// measurement pass re-reports them.
			_, _, _ = r.Predictions(c.ds, c.tech, c.arch, c.specs, c.rep)
		}
	}
	wg.Add(w)
	for i := 1; i < w; i++ {
		go work() //tdfm:allow nodeterminism warm-up pool predates internal/parallel; cells are memoized so order cannot leak into results
	}
	work()
	wg.Wait()
}

// measureCells lists every cell MeasureAD needs: the technique cell and
// its golden counterpart for each repetition.
func (r *Runner) measureCells(ds, tech, arch string, specs []FaultSpec) []cellReq {
	cells := make([]cellReq, 0, 2*r.Reps)
	for rep := 0; rep < r.Reps; rep++ {
		cells = append(cells, goldenReq(ds, arch, rep))
		cells = append(cells, cellReq{ds: ds, tech: tech, arch: arch, specs: specs, rep: rep})
	}
	return cells
}

// Golden returns the golden model's predictions: the baseline architecture
// trained on clean data (§III-C).
func (r *Runner) Golden(ds, arch string, rep int) ([]int, error) {
	pred, _, err := r.Predictions(ds, "base", arch, nil, rep)
	return pred, err
}

// Cell is one measured configuration across repetitions.
type Cell struct {
	Dataset   string
	Technique string
	Arch      string
	Specs     []FaultSpec

	AD       metrics.Summary // accuracy delta vs the golden model
	Accuracy metrics.Summary // absolute test accuracy
	TrainDur time.Duration   // summed uncached training time

	// Failed counts repetitions that produced no measurement because the
	// technique cell or its golden counterpart failed; the summaries above
	// cover only the surviving repetitions (AD.N of r.Reps). Classified
	// failure details are available from Runner.Failures.
	Failed int
}

// MeasureAD runs the configuration for every repetition and summarizes the
// AD and accuracy. Repetitions train concurrently on the worker pool; the
// summary loop then reads the memo cache in repetition order, so the
// summarized series is identical to the serial schedule's.
//
// A repetition whose technique cell or golden counterpart fails is counted
// in Cell.Failed and skipped — the grid continues and the summaries cover
// the surviving repetitions. Only cancellation aborts the measurement with
// an error, leaving the remaining cells for a resumed run.
func (r *Runner) MeasureAD(ds, tech, arch string, specs []FaultSpec) (Cell, error) {
	cell := Cell{Dataset: ds, Technique: tech, Arch: arch, Specs: specs}
	_, test, err := r.Dataset(ds)
	if err != nil {
		return cell, err
	}
	r.warm(r.measureCells(ds, tech, arch, specs))
	ads := make([]float64, 0, r.Reps)
	accs := make([]float64, 0, r.Reps)
	for rep := 0; rep < r.Reps; rep++ {
		golden, err := r.Golden(ds, arch, rep)
		if err != nil {
			if IsCancelled(err) {
				return cell, err
			}
			cell.Failed++
			continue
		}
		faulty, dur, err := r.Predictions(ds, tech, arch, specs, rep)
		if err != nil {
			if IsCancelled(err) {
				return cell, err
			}
			cell.Failed++
			continue
		}
		cell.TrainDur += dur
		ads = append(ads, metrics.AccuracyDelta(golden, faulty, test.Labels))
		accs = append(accs, metrics.Accuracy(faulty, test.Labels))
	}
	cell.AD = metrics.Summarize(ads)
	cell.Accuracy = metrics.Summarize(accs)
	return cell, nil
}

// GoldenAccuracy measures the accuracy of a technique trained on CLEAN data
// (Table IV) averaged over repetitions. Failed repetitions are skipped (the
// returned Summary's N is the surviving count; N == 0 means every
// repetition failed); only cancellation returns an error.
func (r *Runner) GoldenAccuracy(ds, tech, arch string) (metrics.Summary, error) {
	_, test, err := r.Dataset(ds)
	if err != nil {
		return metrics.Summary{}, err
	}
	cells := make([]cellReq, 0, r.Reps)
	for rep := 0; rep < r.Reps; rep++ {
		cells = append(cells, cellReq{ds: ds, tech: tech, arch: arch, rep: rep})
	}
	r.warm(cells)
	accs := make([]float64, 0, r.Reps)
	for rep := 0; rep < r.Reps; rep++ {
		pred, _, err := r.Predictions(ds, tech, arch, nil, rep)
		if err != nil {
			if IsCancelled(err) {
				return metrics.Summary{}, err
			}
			continue
		}
		accs = append(accs, metrics.Accuracy(pred, test.Labels))
	}
	return metrics.Summarize(accs), nil
}

// Resume installs every completed cell recorded in the attached Journal's
// directory into the memo cache, so subsequent experiment calls recompute
// only the cells that were not durably recorded. Checkpoints are verified
// (key, length, digest) before use; corrupt journal lines, unreadable or
// mismatched checkpoints, and records from a different configuration
// (seed, scale, epoch override, width multiplier, or clean fraction) are
// skipped — with a KindJournalError event for damaged ones — and their
// cells recompute as usual.
//
// Restored cells are indistinguishable from freshly trained ones: they
// count in CacheSize and CachedKeys (golden "base" cells and technique
// cells alike), serve cache hits, and report their original training
// duration. Because per-cell randomness is keyed by cell key rather than
// by schedule, recomputing a skipped cell yields byte-identical
// predictions to the checkpointed run, so any mix of restored and
// recomputed cells produces the same summaries and CSVs as an
// uninterrupted run.
//
// Resume returns the number of cells restored and the number of journal
// entries skipped. It should be called before the first experiment call;
// records for cells already in the memo cache are ignored.
func (r *Runner) Resume() (restored, skipped int, err error) {
	if r.Journal == nil {
		return 0, 0, fmt.Errorf("experiment: Resume requires an attached Journal")
	}
	dir := r.Journal.Dir()
	recs, err := obs.Load(dir, func(line int, lerr error) {
		skipped++
		r.emit(obs.Event{Kind: obs.KindJournalError, Err: fmt.Errorf("journal line %d skipped: %w", line, lerr)})
	})
	if err != nil {
		return 0, skipped, err
	}
	// The cell key pins dataset/technique/arch/faults/rep plus scale,
	// seed, and epoch override; the record pins the remaining knobs that
	// affect results. Anything else belongs to a different study.
	suffix := fmt.Sprintf("|scale%d|seed%d|ep%d", r.Scale, r.Seed, r.EpochOverride)
	for _, rec := range recs {
		if !strings.HasSuffix(rec.Key, suffix) ||
			rec.Seed != r.Seed || rec.WidthMult != r.WidthMult || rec.CleanFrac != r.CleanFrac {
			skipped++
			continue
		}
		pred, perr := obs.LoadPred(dir, rec)
		if perr != nil {
			skipped++
			r.emit(obs.Event{Kind: obs.KindJournalError, Key: rec.Key, Err: perr})
			continue
		}
		e := &predEntry{done: make(chan struct{}), pred: pred, trainDur: time.Duration(rec.TrainNS)}
		close(e.done)
		installed := false
		r.mu.Lock()
		if _, exists := r.preds[rec.Key]; !exists {
			r.preds[rec.Key] = e
			installed = true
		}
		r.mu.Unlock()
		if installed {
			restored++
			r.emit(obs.Event{Kind: obs.KindCellRestored, Key: rec.Key, Dur: e.trainDur})
		} else {
			skipped++
		}
	}
	return restored, skipped, nil
}

// CacheSize returns the number of memoized successful prediction entries
// (diagnostic). In-flight and failed cells are excluded.
func (r *Runner) CacheSize() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, e := range r.preds {
		select {
		case <-e.done:
			if e.err == nil {
				n++
			}
		default:
		}
	}
	return n
}

// CachedKeys returns the sorted keys of completed successful cells
// (diagnostic, used in tests).
func (r *Runner) CachedKeys() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	keys := make([]string, 0, len(r.preds))
	for k, e := range r.preds {
		select {
		case <-e.done:
			if e.err == nil {
				keys = append(keys, k)
			}
		default:
		}
	}
	sort.Strings(keys)
	return keys
}

// techniqueByName resolves a study technique (thin wrapper kept local so
// experiment definitions do not import core directly everywhere).
func techniqueByName(name string) (core.Technique, error) { return core.Get(name) }
