package experiment

import (
	"context"
	"errors"
	"fmt"

	"tdfm/internal/chaos"
	"tdfm/internal/core"
	"tdfm/internal/parallel"
)

// ErrorClass partitions cell failures for the retry policy.
type ErrorClass string

// The three failure classes of the engine's error taxonomy.
const (
	// ClassPermanent marks failures retrying cannot fix (bad configuration:
	// unknown dataset, technique, or architecture; invalid fault spec). They
	// stay memoized so a grid reports the same error for every dependent
	// measurement without re-attempting the work.
	ClassPermanent ErrorClass = "permanent"
	// ClassTransient marks failures a retry may fix (panic, numerical
	// divergence, environmental I/O). Transient failures are evicted from
	// the memo cache so a later call — a retry in this run, or a -resume
	// rerun — trains the cell fresh.
	ClassTransient ErrorClass = "transient"
	// ClassCancelled marks cells stopped by cooperative cancellation (CLI
	// interrupt or per-cell timeout via context). Cancelled cells are not
	// failures of the cell itself: they are not retried here and the grid
	// aborts, leaving the cells for a -resume rerun.
	ClassCancelled ErrorClass = "cancelled"
)

// Failure reasons reported by the engine (CellError.Reason).
const (
	// ReasonConfig is a permanent configuration error.
	ReasonConfig = "config"
	// ReasonDivergence is a training run that stayed numerically divergent
	// through the trainer's bounded recovery.
	ReasonDivergence = "divergence"
	// ReasonPanic is a panic recovered from the cell's training.
	ReasonPanic = "panic"
	// ReasonIO is an environmental I/O failure during the cell.
	ReasonIO = "io"
	// ReasonTimeout is a cell that exceeded the per-cell time budget.
	ReasonTimeout = "timeout"
	// ReasonCancelled is a cell stopped by run-level cancellation.
	ReasonCancelled = "cancelled"
	// ReasonNet is a distributed-grid network failure: an expired cell
	// lease, an unreachable coordinator, or a lost worker. All are
	// transient — the cell itself is fine, only its transport failed — so
	// a reissued lease (or a local retry) trains it byte-identically.
	ReasonNet = "net"
)

// Network sentinels of the distributed experiment grid. They live here —
// not in internal/dist — so the error taxonomy can classify them without
// an import cycle (dist imports experiment for the runner and cell
// specs). internal/dist wraps them with %w; match with errors.Is.
var (
	// ErrLeaseExpired marks a cell whose lease deadline passed without a
	// completion: the holding worker crashed, hung, or stopped
	// heartbeating, and the coordinator's reissue budget ran out.
	ErrLeaseExpired = errors.New("experiment: cell lease expired")
	// ErrCoordinatorUnreachable marks a worker-side transport failure
	// talking to the grid coordinator (refused connection, torn response,
	// non-OK status).
	ErrCoordinatorUnreachable = errors.New("experiment: coordinator unreachable")
	// ErrWorkerLost marks a cell abandoned by its worker: the worker
	// reported a transient failure (or vanished) and the coordinator's
	// reissue budget ran out before another worker completed the cell.
	ErrWorkerLost = errors.New("experiment: worker lost")
)

// CellError is the structured failure of one experiment cell: what failed
// (Key), why (Reason and the wrapped Err), how the retry policy treats it
// (Class), and how many attempts were made. For recovered panics, Stack
// holds the panicking goroutine's stack.
type CellError struct {
	// Key is the failed cell's cache key.
	Key string
	// Reason is one of the Reason* constants.
	Reason string
	// Class drives the retry policy and cache stickiness.
	Class ErrorClass
	// Attempts is how many times the cell was trained before giving up.
	Attempts int
	// Stack is the recovered panic stack (nil unless Reason is ReasonPanic).
	Stack []byte
	// Err is the underlying error.
	Err error
}

// Error formats the failure with its classification.
func (e *CellError) Error() string {
	return fmt.Sprintf("cell %s failed (%s, %s, %d attempt(s)): %v",
		e.Key, e.Reason, e.Class, e.Attempts, e.Err)
}

// Unwrap exposes the underlying error to errors.Is/As.
func (e *CellError) Unwrap() error { return e.Err }

// classifyCellError wraps err into a CellError using sentinel and type
// checks — never string matching. Unknown errors classify as permanent
// configuration problems: retrying an unrecognized failure would burn the
// retry budget on something a rerun cannot fix.
func classifyCellError(key string, attempts int, err error) *CellError {
	ce := &CellError{Key: key, Attempts: attempts, Err: err}
	var pe *parallel.PanicError
	switch {
	case errors.As(err, &pe):
		ce.Reason, ce.Class, ce.Stack = ReasonPanic, ClassTransient, pe.Stack
	case errors.Is(err, core.ErrDiverged):
		ce.Reason, ce.Class = ReasonDivergence, ClassTransient
	case errors.Is(err, context.DeadlineExceeded):
		ce.Reason, ce.Class = ReasonTimeout, ClassTransient
	case errors.Is(err, context.Canceled):
		ce.Reason, ce.Class = ReasonCancelled, ClassCancelled
	case errors.Is(err, ErrLeaseExpired),
		errors.Is(err, ErrCoordinatorUnreachable),
		errors.Is(err, ErrWorkerLost):
		ce.Reason, ce.Class = ReasonNet, ClassTransient
	case errors.Is(err, chaos.ErrInjected):
		ce.Reason, ce.Class = ReasonIO, ClassTransient
	default:
		ce.Reason, ce.Class = ReasonConfig, ClassPermanent
	}
	return ce
}

// IsCancelled reports whether err is (or wraps) a cancelled cell failure,
// which grids treat as "stop scheduling" rather than "cell failed".
func IsCancelled(err error) bool {
	var ce *CellError
	if errors.As(err, &ce) {
		return ce.Class == ClassCancelled
	}
	return errors.Is(err, context.Canceled)
}
