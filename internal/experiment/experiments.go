package experiment

import (
	"fmt"
	"time"

	"tdfm/internal/faultinject"
	"tdfm/internal/metrics"
	"tdfm/internal/models"
)

// StudyRates are the paper's three fault percentages.
func StudyRates() []float64 { return []float64{0.1, 0.3, 0.5} }

// FigureModels are the four models the paper's figures show panels for.
func FigureModels() []string {
	return []string{models.ResNet50, models.VGG16, models.ConvNet, models.MobileNet}
}

// TechniquesFor returns the study techniques applicable to a fault type:
// label correction only acts on mislabelling (§IV-C: "We do not run label
// correction on fault types other than mislabelling since label correction
// has no effect on them").
func TechniquesFor(ft faultinject.Type) []string {
	if ft == faultinject.Mislabel {
		return []string{"base", "ls", "lc", "rl", "kd", "ens"}
	}
	return []string{"base", "ls", "rl", "kd", "ens"}
}

// Panel is one sub-figure: AD of every technique at every fault rate for a
// fixed (dataset, model, fault type).
type Panel struct {
	Dataset   string
	Arch      string
	FaultType faultinject.Type
	Rates     []float64
	// Cells maps technique → rate → measured cell.
	Cells map[string]map[float64]Cell
}

// Techniques returns the panel's technique order.
func (p *Panel) Techniques() []string { return TechniquesFor(p.FaultType) }

// RunPanel measures one figure panel.
func (r *Runner) RunPanel(ds, arch string, ft faultinject.Type, rates []float64) (*Panel, error) {
	p := &Panel{
		Dataset: ds, Arch: arch, FaultType: ft,
		Rates: rates,
		Cells: make(map[string]map[float64]Cell),
	}
	var cells []cellReq
	for _, tech := range p.Techniques() {
		for _, rate := range rates {
			cells = append(cells, r.measureCells(ds, tech, arch, []FaultSpec{{Type: ft, Rate: rate}})...)
		}
	}
	r.warm(cells)
	for _, tech := range p.Techniques() {
		p.Cells[tech] = make(map[float64]Cell)
		for _, rate := range rates {
			cell, err := r.MeasureAD(ds, tech, arch, []FaultSpec{{Type: ft, Rate: rate}})
			if err != nil {
				return nil, err
			}
			p.Cells[tech][rate] = cell
		}
	}
	return p, nil
}

// Figure3Result reproduces Fig. 3: AD across the four figure models on
// GTSRB for one fault type.
type Figure3Result struct {
	FaultType faultinject.Type
	Panels    []*Panel
}

// Figure3 runs the Fig. 3 experiment. archs and rates default to the
// paper's when nil.
func (r *Runner) Figure3(ft faultinject.Type, archs []string, rates []float64) (*Figure3Result, error) {
	if archs == nil {
		archs = FigureModels()
	}
	if rates == nil {
		rates = StudyRates()
	}
	out := &Figure3Result{FaultType: ft}
	for _, arch := range archs {
		p, err := r.RunPanel("gtsrblike", arch, ft, rates)
		if err != nil {
			return nil, err
		}
		out.Panels = append(out.Panels, p)
	}
	return out, nil
}

// Figure4Result reproduces Fig. 4: AD across the three datasets for a fixed
// model and fault type (ResNet50/mislabelling on the left column of the
// paper's figure, MobileNet/repetition on the right).
type Figure4Result struct {
	Arch      string
	FaultType faultinject.Type
	Panels    []*Panel
}

// Figure4 runs the Fig. 4 experiment for one column. datasets and rates
// default to the paper's when nil.
func (r *Runner) Figure4(arch string, ft faultinject.Type, datasets []string, rates []float64) (*Figure4Result, error) {
	if datasets == nil {
		datasets = DatasetNames()
	}
	if rates == nil {
		rates = StudyRates()
	}
	out := &Figure4Result{Arch: arch, FaultType: ft}
	for _, ds := range datasets {
		p, err := r.RunPanel(ds, arch, ft, rates)
		if err != nil {
			return nil, err
		}
		out.Panels = append(out.Panels, p)
	}
	return out, nil
}

// Table4Result reproduces Table IV: golden-model accuracy (no fault
// injection) per model, dataset, and technique.
type Table4Result struct {
	Models     []string
	Datasets   []string
	Techniques []string
	// Acc maps model → dataset → technique → accuracy summary.
	Acc map[string]map[string]map[string]metrics.Summary
}

// Table4 measures baseline accuracies without fault injection. models and
// datasets default to the paper's Table IV selection when nil.
func (r *Runner) Table4(archs, datasets []string) (*Table4Result, error) {
	if archs == nil {
		archs = FigureModels()
	}
	if datasets == nil {
		datasets = DatasetNames()
	}
	res := &Table4Result{
		Models:     archs,
		Datasets:   datasets,
		Techniques: TechniquesFor(faultinject.Mislabel),
		Acc:        make(map[string]map[string]map[string]metrics.Summary),
	}
	var cells []cellReq
	for _, arch := range archs {
		for _, ds := range datasets {
			for _, tech := range res.Techniques {
				for rep := 0; rep < r.Reps; rep++ {
					cells = append(cells, cellReq{ds: ds, tech: tech, arch: arch, rep: rep})
				}
			}
		}
	}
	r.warm(cells)
	for _, arch := range archs {
		res.Acc[arch] = make(map[string]map[string]metrics.Summary)
		for _, ds := range datasets {
			res.Acc[arch][ds] = make(map[string]metrics.Summary)
			for _, tech := range res.Techniques {
				s, err := r.GoldenAccuracy(ds, tech, arch)
				if err != nil {
					return nil, err
				}
				res.Acc[arch][ds][tech] = s
			}
		}
	}
	return res, nil
}

// MotivatingResult reproduces the §II / §III-D example: ResNet50 on the
// Pneumonia stand-in with 10% mislabelling.
type MotivatingResult struct {
	GoldenAcc metrics.Summary
	FaultyAcc metrics.Summary // unprotected baseline on faulty data
	// TechniqueAD maps technique → AD summary (the §III-D numbers).
	TechniqueAD map[string]metrics.Summary
}

// Motivating runs the motivating example.
func (r *Runner) Motivating() (*MotivatingResult, error) {
	const ds, arch = "pneumonialike", "resnet50"
	specs := []FaultSpec{{Type: faultinject.Mislabel, Rate: 0.1}}
	golden, err := r.GoldenAccuracy(ds, "base", arch)
	if err != nil {
		return nil, err
	}
	out := &MotivatingResult{GoldenAcc: golden, TechniqueAD: make(map[string]metrics.Summary)}
	var cells []cellReq
	for _, tech := range TechniquesFor(faultinject.Mislabel) {
		cells = append(cells, r.measureCells(ds, tech, arch, specs)...)
	}
	r.warm(cells)
	for _, tech := range TechniquesFor(faultinject.Mislabel) {
		cell, err := r.MeasureAD(ds, tech, arch, specs)
		if err != nil {
			return nil, err
		}
		out.TechniqueAD[tech] = cell.AD
		if tech == "base" {
			out.FaultyAcc = cell.Accuracy
		}
	}
	return out, nil
}

// CombinedComparison is one §IV-C check: the AD of a combined fault
// injection versus the dominant single fault type, with the CI-overlap
// verdict the paper uses for "statistically similar".
type CombinedComparison struct {
	Combined   []FaultSpec
	Single     []FaultSpec
	CombinedAD metrics.Summary
	SingleAD   metrics.Summary
	Similar    bool
}

// CombinedFaults reproduces the §IV-C combined-fault study on the given
// dataset and model (the paper reports GTSRB).
func (r *Runner) CombinedFaults(ds, arch string, rate float64) ([]CombinedComparison, error) {
	mk := func(t faultinject.Type) FaultSpec { return FaultSpec{Type: t, Rate: rate} }
	pairs := []struct {
		combined []FaultSpec
		single   []FaultSpec
	}{
		{[]FaultSpec{mk(faultinject.Mislabel), mk(faultinject.Remove)}, []FaultSpec{mk(faultinject.Mislabel)}},
		{[]FaultSpec{mk(faultinject.Mislabel), mk(faultinject.Repeat)}, []FaultSpec{mk(faultinject.Mislabel)}},
		{[]FaultSpec{mk(faultinject.Remove), mk(faultinject.Repeat)}, []FaultSpec{mk(faultinject.Repeat)}},
	}
	var cells []cellReq
	for _, p := range pairs {
		cells = append(cells, r.measureCells(ds, "base", arch, p.combined)...)
		cells = append(cells, r.measureCells(ds, "base", arch, p.single)...)
	}
	r.warm(cells)
	out := make([]CombinedComparison, 0, len(pairs))
	for _, p := range pairs {
		comb, err := r.MeasureAD(ds, "base", arch, p.combined)
		if err != nil {
			return nil, err
		}
		single, err := r.MeasureAD(ds, "base", arch, p.single)
		if err != nil {
			return nil, err
		}
		out = append(out, CombinedComparison{
			Combined:   p.combined,
			Single:     p.single,
			CombinedAD: comb.AD,
			SingleAD:   single.AD,
			Similar:    metrics.OverlapCI(comb.AD, single.AD),
		})
	}
	return out, nil
}

// OverheadRow is one technique's §IV-E overhead measurement.
type OverheadRow struct {
	Technique string
	// TrainOverhead is wall-clock training time divided by the baseline's
	// on the same configuration.
	TrainOverhead float64
	// InferenceOverhead is the number of models consulted per prediction
	// relative to the baseline's single model.
	InferenceOverhead float64
	TrainTime         time.Duration
}

// Overhead measures training and inference overheads of each technique on
// the given dataset/model with the given fault injection. Because overheads
// need uncached wall-clock timings, the measurement runs on an internal
// fresh runner derived from r's configuration (same scale/seed/reps/workers,
// empty memo), so Overhead is safe to call after other experiments have
// warmed r's cache. With Workers > 1 the per-row timings include pool
// contention; the TrainOverhead ratio is against a baseline measured under
// the same contention.
func (r *Runner) Overhead(ds, arch string, specs []FaultSpec) ([]OverheadRow, error) {
	return overheadGrid(r.freshOverheadRunner(), ds, arch, specs)
}

// SpeedupReport is E11's wall-clock comparison between the serial
// (Workers=1) and parallel schedules of the same overhead grid.
type SpeedupReport struct {
	Workers  int
	Serial   time.Duration
	Parallel time.Duration
}

// Ratio is the serial/parallel wall-clock speedup.
func (s SpeedupReport) Ratio() float64 {
	if s.Parallel <= 0 {
		return 0
	}
	return float64(s.Serial) / float64(s.Parallel)
}

// OverheadWithSpeedup runs the overhead grid on the runner's worker pool
// and, when more than one worker is configured, re-runs the identical grid
// serially to report the end-to-end wall-clock speedup. The returned rows
// come from the serial schedule when both run (contention-free per-row
// timings); the report is nil when Workers <= 1.
func (r *Runner) OverheadWithSpeedup(ds, arch string, specs []FaultSpec) ([]OverheadRow, *SpeedupReport, error) {
	par := r.freshOverheadRunner()
	start := time.Now() //tdfm:allow nodeterminism wall-clock IS the measurement here (§IV-E overhead timing)
	rows, err := overheadGrid(par, ds, arch, specs)
	if err != nil {
		return nil, nil, err
	}
	parDur := time.Since(start) //tdfm:allow nodeterminism wall-clock IS the measurement here (§IV-E overhead timing)
	if par.workers() <= 1 {
		return rows, nil, nil
	}
	serial := r.freshOverheadRunner()
	serial.Workers = 1
	start = time.Now() //tdfm:allow nodeterminism wall-clock IS the measurement here (§IV-E overhead timing)
	rows, err = overheadGrid(serial, ds, arch, specs)
	if err != nil {
		return nil, nil, err
	}
	serialDur := time.Since(start) //tdfm:allow nodeterminism wall-clock IS the measurement here (§IV-E overhead timing)
	return rows, &SpeedupReport{Workers: par.workers(), Serial: serialDur, Parallel: parDur}, nil
}

// freshOverheadRunner clones r's configuration with an empty memo cache.
func (r *Runner) freshOverheadRunner() *Runner {
	fresh := NewRunner(r.Scale, r.Seed, r.Reps)
	fresh.CleanFrac = r.CleanFrac
	fresh.EpochOverride = r.EpochOverride
	fresh.WidthMult = r.WidthMult
	fresh.Workers = r.Workers
	fresh.Retries = r.Retries
	fresh.CellTimeout = r.CellTimeout
	fresh.Ctx = r.Ctx
	return fresh
}

func overheadGrid(r *Runner, ds, arch string, specs []FaultSpec) ([]OverheadRow, error) {
	var cells []cellReq
	for _, tech := range TechniquesFor(faultinject.Mislabel) {
		cells = append(cells, r.measureCells(ds, tech, arch, specs)...)
	}
	r.warm(cells)
	baseCell, err := r.MeasureAD(ds, "base", arch, specs)
	if err != nil {
		return nil, err
	}
	if baseCell.TrainDur <= 0 {
		return nil, fmt.Errorf("experiment: overhead measured zero baseline training time")
	}
	rows := make([]OverheadRow, 0, 6)
	for _, tech := range TechniquesFor(faultinject.Mislabel) {
		cell := baseCell
		if tech != "base" {
			cell, err = r.MeasureAD(ds, tech, arch, specs)
			if err != nil {
				return nil, err
			}
		}
		t, err := techInferenceModels(tech)
		if err != nil {
			return nil, err
		}
		rows = append(rows, OverheadRow{
			Technique:         tech,
			TrainOverhead:     float64(cell.TrainDur) / float64(baseCell.TrainDur),
			InferenceOverhead: float64(t),
			TrainTime:         cell.TrainDur,
		})
	}
	return rows, nil
}

func techInferenceModels(tech string) (int, error) {
	t, err := techniqueByName(tech)
	if err != nil {
		return 0, err
	}
	return t.ModelsAtInference(), nil
}
