// Package serve is the resilient ensemble inference layer: it answers
// prediction requests from a trained ensemble while individual members
// hang, panic, or go unhealthy, preserving at serving time the paper's
// central training-time result — majority-vote ensembles degrade
// gracefully under partial damage (§IV, the Ens resilience curves).
//
// Three robustness layers compose, outermost first:
//
//   - Bounded admission with load shedding. A fixed-capacity admission
//     queue caps concurrent requests; overflow is rejected immediately
//     with ErrOverloaded (the HTTP layer's 429) instead of queueing into
//     unbounded latency. Drain stops admission and waits for in-flight
//     requests, giving the SIGTERM path a cooperative shutdown.
//
//   - Per-member circuit breakers. Every member carries a
//     closed→open→half-open breaker: a run of consecutive failures opens
//     it (the member is skipped, not dispatched), a cooldown later a
//     single half-open probe tests the member, and the probe's outcome
//     closes or re-opens the breaker. A flaky member is isolated after a
//     few requests rather than taxing every vote with its deadline.
//
//   - Degraded quorum voting. The members that survive dispatch — no
//     timeout, no panic, no error, breaker not open — vote by
//     core.TallyVotes exactly as a full ensemble would; the response
//     reports the achieved quorum k/n. Below Options.MinQuorum the
//     request fails fast with a *QuorumError instead of returning a
//     vote too damaged to trust.
//
// All time-dependent behaviour (deadlines, cooldowns) runs on an
// injected chaos.Clock, so every timeout and breaker path is tested
// deterministically with a FakeClock and zero wall-clock sleeps. The
// chaos faultpoint "serve/member" sits inside member dispatch; tests arm
// Delay/Panic/Err actions against it to simulate hung, crashing, and
// broken members.
package serve

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"tdfm/internal/chaos"
	"tdfm/internal/core"
	"tdfm/internal/obs"
	"tdfm/internal/tensor"
)

// ErrOverloaded is returned when the admission queue is full; the
// request was rejected immediately (load shedding) and can be retried
// later. The HTTP layer maps it to 429 Too Many Requests.
var ErrOverloaded = errors.New("serve: overloaded, admission queue full")

// ErrDraining is returned for requests arriving after Drain started;
// the server is shutting down cooperatively and admits nothing new.
var ErrDraining = errors.New("serve: draining, not admitting requests")

// ErrNoQuorum is the sentinel under every *QuorumError: fewer members
// than Options.MinQuorum survived dispatch, so the vote was refused.
// Match with errors.Is.
var ErrNoQuorum = errors.New("serve: below minimum quorum")

// QuorumError is the typed minimum-quorum failure: it reports how many
// members survived against the floor and the ensemble size, and unwraps
// to ErrNoQuorum.
type QuorumError struct {
	// Got is the number of members that produced a usable prediction.
	Got int
	// Need is the configured minimum quorum.
	Need int
	// Members is the ensemble size.
	Members int
}

// Error implements error.
func (e *QuorumError) Error() string {
	return fmt.Sprintf("serve: quorum %d/%d below minimum %d", e.Got, e.Members, e.Need)
}

// Unwrap ties the typed error to the ErrNoQuorum sentinel.
func (e *QuorumError) Unwrap() error { return ErrNoQuorum }

// Precision selects the numeric storage the server's members run
// inference in (Options.Precision).
type Precision string

// Supported serving precisions.
const (
	// PrecisionF64 serves with the trained float64 networks unchanged —
	// the default, bit-identical to offline evaluation.
	PrecisionF64 Precision = "f64"
	// PrecisionF32 converts every member to its float32 inference twin
	// at server construction (core.ToF32): weights convert once,
	// activations flow in float32, and memory traffic per prediction
	// roughly halves. Probabilities drift by single-precision rounding
	// only; votes match f64 whenever logit margins exceed the drift
	// (DESIGN.md §10 documents the tolerance).
	PrecisionF32 Precision = "f32"
)

// Member is one named ensemble member the server dispatches to.
type Member struct {
	// Name identifies the member in responses, events, breaker state,
	// and chaos labels (usually the architecture name).
	Name string
	// Clf is the member's trained classifier.
	Clf core.Classifier
}

// Split adapts a trained classifier to the server's member list: a
// *core.VotingClassifier contributes one Member per ensemble member (so
// the server can dispatch, deadline, and break them independently), any
// other classifier becomes a single member. Names are taken from names
// by position; missing entries fall back to "member-<i>".
func Split(clf core.Classifier, names []string) []Member {
	name := func(i int) string {
		if i < len(names) && names[i] != "" {
			return names[i]
		}
		return fmt.Sprintf("member-%d", i)
	}
	if v, ok := clf.(*core.VotingClassifier); ok {
		members := make([]Member, len(v.Members))
		for i, m := range v.Members {
			members[i] = Member{Name: name(i), Clf: m}
		}
		return members
	}
	return []Member{{Name: name(0), Clf: clf}}
}

// Options configures a Server. The zero value of every field has a
// usable default, resolved by New.
type Options struct {
	// MemberDeadline bounds each member's prediction per request;
	// members that miss it are dropped from the vote. Default 2s.
	MemberDeadline time.Duration
	// MinQuorum is the fewest surviving members a vote may be built
	// from; below it the request fails with a *QuorumError. Default: a
	// strict majority of the ensemble (n/2 + 1).
	MinQuorum int
	// QueueCapacity bounds concurrently admitted requests; requests
	// beyond it are shed with ErrOverloaded. Default 64.
	QueueCapacity int
	// BreakerThreshold is the consecutive-failure count that opens a
	// member's circuit breaker. Default 3.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker waits before allowing
	// a half-open probe. Default 10s.
	BreakerCooldown time.Duration
	// BatchCap enables micro-batching when > 1: admitted requests are
	// collected until their summed row count reaches BatchCap (or the
	// BatchWindow elapses), stacked into one [N, C, H, W] tensor, run
	// through a single batched PredictProbs per member, and demuxed per
	// request. 0 or 1 keeps the one-dispatch-per-request path. Default 0.
	BatchCap int
	// BatchWindow is how long the batcher waits for a batch to fill
	// before flushing a partial one, measured on the injected Clock from
	// the first request of the batch. Only consulted when BatchCap > 1.
	// Default 2ms.
	BatchWindow time.Duration
	// Input is the expected per-sample shape (channels, height, width),
	// used by the HTTP handler to validate and shape request payloads.
	Input [3]int
	// Precision selects the members' inference storage: PrecisionF64
	// (default) serves the trained networks as-is; PrecisionF32 converts
	// each member to its float32 twin at construction. New fails when a
	// member cannot be converted or the value is unknown.
	Precision Precision
	// Model identifies the registry artifact the members came from:
	// /healthz reports it, swap events stamp it, and the retiring
	// version's pool-stats snapshot is tagged with its label. The zero
	// value (a server trained in-process, not registry-backed) is fine.
	Model ModelInfo
	// Clock supplies deadlines and cooldowns; tests inject a
	// chaos.FakeClock. Default chaos.Wall().
	Clock chaos.Clock
	// Sink receives obs events (admission, shedding, member failures,
	// breaker transitions). Nil means no events.
	Sink obs.Sink
}

// withDefaults resolves zero fields; n is the ensemble size.
func (o Options) withDefaults(n int) Options {
	if o.MemberDeadline <= 0 {
		o.MemberDeadline = 2 * time.Second
	}
	if o.MinQuorum <= 0 {
		o.MinQuorum = n/2 + 1
	}
	if o.QueueCapacity <= 0 {
		o.QueueCapacity = 64
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 3
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 10 * time.Second
	}
	if o.BatchCap > 1 && o.BatchWindow <= 0 {
		o.BatchWindow = 2 * time.Millisecond
	}
	if o.Clock == nil {
		o.Clock = chaos.Wall()
	}
	if o.Precision == "" {
		o.Precision = PrecisionF64
	}
	return o
}

// MemberStatus classifies one member's fate within one request.
type MemberStatus int

// Member fates, in the order they are decided.
const (
	// StatusOK: the member answered within its deadline and voted.
	StatusOK MemberStatus = iota
	// StatusTimeout: the member missed its deadline and was dropped.
	StatusTimeout
	// StatusPanic: the member's dispatch panicked (recovered and dropped).
	StatusPanic
	// StatusError: the member's dispatch returned an error.
	StatusError
	// StatusOpen: the member's breaker was open; it was not dispatched.
	StatusOpen
)

// String returns the wire name used in responses and logs.
func (s MemberStatus) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusTimeout:
		return "timeout"
	case StatusPanic:
		return "panic"
	case StatusError:
		return "error"
	case StatusOpen:
		return "open"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// MemberReport is one member's fate within one request's Result.
type MemberReport struct {
	// Name is the member's configured name.
	Name string
	// Status is what happened to the member this request.
	Status MemberStatus
}

// Result is a successful prediction from a (possibly degraded) quorum.
type Result struct {
	// Pred is the majority-vote class per input row, over the surviving
	// members only.
	Pred []int
	// Probs is the mean probability tensor [N, K] over the surviving
	// members.
	Probs *tensor.Tensor
	// Quorum is the number of members whose predictions formed the vote.
	Quorum int
	// Members is the ensemble size (the n of "quorum k/n").
	Members int
	// Reports lists every member's fate, in member order.
	Reports []MemberReport
}

// Server dispatches prediction requests across ensemble members with
// per-member deadlines, circuit breakers, and bounded admission. Methods
// are safe for concurrent use.
type Server struct {
	members  []Member
	classes  int
	opts     Options
	breakers []*breaker
	// memberMu serializes inference on each member: a network's forward
	// pass reuses per-layer buffers, so one member must never run two
	// predictions at once. A hung member therefore also blocks later
	// dispatches to it — which is exactly what its breaker is for.
	memberMu []sync.Mutex

	slots chan struct{} // admission queue: one token per admitted request
	seq   atomic.Uint64 // request ID counter

	// batch is the micro-batching layer, nil when Options.BatchCap
	// leaves batching off. Admitted requests park in it until the window
	// or the cap flushes them through one shared fan-out.
	batch *batcher

	mu       sync.Mutex // guards draining against in-flight accounting
	draining bool
	inflight sync.WaitGroup
}

// New builds a Server over the given members. classes is the label-space
// size shared by all members.
func New(members []Member, classes int, opts Options) (*Server, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("serve: no ensemble members")
	}
	if classes < 2 {
		return nil, fmt.Errorf("serve: need at least 2 classes, got %d", classes)
	}
	opts = opts.withDefaults(len(members))
	if opts.MinQuorum > len(members) {
		return nil, fmt.Errorf("serve: minimum quorum %d exceeds ensemble size %d",
			opts.MinQuorum, len(members))
	}
	switch opts.Precision {
	case PrecisionF64:
	case PrecisionF32:
		converted := make([]Member, len(members))
		for i, m := range members {
			clf, err := core.ToF32(m.Clf)
			if err != nil {
				return nil, fmt.Errorf("serve: member %s: %w", m.Name, err)
			}
			converted[i] = Member{Name: m.Name, Clf: clf}
		}
		members = converted
	default:
		return nil, fmt.Errorf("serve: unknown precision %q (have %q, %q)",
			opts.Precision, PrecisionF64, PrecisionF32)
	}
	s := &Server{
		members:  members,
		classes:  classes,
		opts:     opts,
		breakers: make([]*breaker, len(members)),
		memberMu: make([]sync.Mutex, len(members)),
		slots:    make(chan struct{}, opts.QueueCapacity),
	}
	for i := range s.breakers {
		s.breakers[i] = newBreaker(opts.Clock, opts.BreakerThreshold, opts.BreakerCooldown)
	}
	if opts.BatchCap > 1 {
		s.batch = newBatcher(s)
	}
	return s, nil
}

// Options returns the server's resolved options (defaults applied).
func (s *Server) Options() Options { return s.opts }

// MemberNames returns the configured member names in member order.
func (s *Server) MemberNames() []string {
	names := make([]string, len(s.members))
	for i, m := range s.members {
		names[i] = m.Name
	}
	return names
}

// BreakerStates returns every member's current breaker state, in member
// order. Reading the state does not advance the open→half-open
// transition; it reports open until a request actually probes.
func (s *Server) BreakerStates() []BreakerState {
	states := make([]BreakerState, len(s.breakers))
	for i, b := range s.breakers {
		states[i] = b.state()
	}
	return states
}

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain stops admitting requests (new calls to Predict fail with
// ErrDraining) and blocks until every in-flight request has finished:
// the cooperative half of SIGTERM shutdown. With batching enabled the
// partial batch is flushed immediately — parked requests never wait out
// a window that may no longer elapse — and the collect loop is shut
// down once the last in-flight request has its answer. Drain is
// idempotent and safe to call concurrently.
func (s *Server) Drain() {
	s.mu.Lock()
	first := !s.draining
	s.draining = true
	s.mu.Unlock()
	if first && s.batch != nil {
		close(s.batch.drain)
	}
	s.inflight.Wait()
	if first && s.batch != nil {
		// Every possible submitter held an inflight count, so the submit
		// channel has no senders left and closing it stops the loop.
		close(s.batch.submit)
	}
	if s.batch != nil {
		<-s.batch.done
	}
	if first {
		// One drain-time snapshot of the buffer pool's reuse counters: at
		// shutdown operators read it to confirm pooling is paying off, and
		// on every hot-swap (Hot.Swap drains the retiring generation) the
		// snapshot is tagged with the retiring model version so arena leaks
		// across swaps are observable per version, not just at exit.
		s.emit(obs.Event{Kind: obs.KindPoolStats, Key: s.opts.Model.Label(),
			Detail: tensor.Stats().String()})
	}
}

// Predict answers one inference request for a batch x of shape
// [N, C, H, W]. It admits the request through the bounded queue
// (ErrOverloaded when full, ErrDraining during shutdown), dispatches
// every member whose breaker allows it under the per-member deadline,
// and returns the degraded-quorum vote, or a *QuorumError when fewer
// than MinQuorum members survive.
//
// With batching enabled (Options.BatchCap > 1) the admitted request
// parks in the micro-batcher — holding its admission slot, so the
// QueueCapacity bound is unchanged — until the batch window or row cap
// flushes it through one shared fan-out; its rows are then demuxed back
// as this request's Result. Per-row outputs are bit-identical either
// way; only latency and the members' per-batch (rather than
// per-request) deadline accounting differ. The req-admit and req-done
// events remain per-request on both paths, emitted from the request's
// own goroutine.
func (s *Server) Predict(x *tensor.Tensor) (*Result, error) {
	// The request key only feeds obs events and chaos labels; formatting
	// it is measurable on the hot path, so an unobserved server (no sink,
	// no armed faultpoints) skips it entirely.
	var reqID string
	if s.opts.Sink != nil || chaos.Armed() {
		reqID = reqKey("req-", s.seq.Add(1))
	} else {
		s.seq.Add(1)
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, ErrDraining
	}
	select {
	case s.slots <- struct{}{}:
	default:
		s.mu.Unlock()
		s.emit(obs.Event{Kind: obs.KindReqShed, Key: reqID})
		return nil, ErrOverloaded
	}
	s.inflight.Add(1)
	s.mu.Unlock()
	defer func() {
		<-s.slots
		s.inflight.Done()
	}()

	s.emit(obs.Event{Kind: obs.KindReqAdmit, Key: reqID})
	var res *Result
	var err error
	if s.batch != nil {
		res, err = s.batch.run(reqID, x)
	} else {
		res, err = s.dispatch(reqID, x)
	}
	if s.opts.Sink != nil {
		done := obs.Event{Kind: obs.KindReqDone, Key: reqID, Err: err}
		if res != nil {
			done.Detail = fmt.Sprintf("%d/%d", res.Quorum, res.Members)
		} else if qe := (*QuorumError)(nil); errors.As(err, &qe) {
			done.Detail = fmt.Sprintf("%d/%d", qe.Got, qe.Members)
		}
		s.emit(done)
	}
	return res, err
}

// reqKey formats "<prefix>NNNNNN" (six digits, zero-padded) without fmt:
// key formatting sits on the per-request hot path when observed.
func reqKey(prefix string, n uint64) string {
	var buf [20]byte
	b := strconv.AppendUint(buf[:0], n, 10)
	pad := ""
	if len(b) < 6 {
		pad = "000000"[:6-len(b)]
	}
	return prefix + pad + string(b)
}

// emit forwards an event to the configured sink, if any.
func (s *Server) emit(e obs.Event) {
	if s.opts.Sink != nil {
		s.opts.Sink.Emit(e)
	}
}
