package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"

	"tdfm/internal/tensor"
)

// ProbsErrer is the error-aware prediction interface. Member dispatch
// prefers it over core.Classifier's PredictProbs when a member
// implements it: a remote member's transport failure becomes an
// ordinary member error (StatusError, breaker-counted) instead of a
// panic.
type ProbsErrer interface {
	// PredictProbsErr returns class probabilities [N, K] for the batch,
	// or the failure that prevented a prediction.
	PredictProbsErr(x *tensor.Tensor) (*tensor.Tensor, error)
}

// RemoteMember is an ensemble member served by a separate process (a
// tdfmserve -member shard): predictions go over HTTP to the member's
// /predict endpoint and the probability rows come back as JSON.
// encoding/json renders float64 values with round-trip precision, so a
// remote member's probabilities are bit-identical to the same model
// served in-process — remote fan-out changes failure domains, never
// votes.
//
// The member's address is mutable (SetAddr): the supervisor points the
// member at the replacement process after a restart, without the parent
// server rebuilding anything. A RemoteMember with no address yet (the
// process never came up) fails predictions immediately — the breaker
// path, not a hang.
type RemoteMember struct {
	name  string
	input [3]int
	addr  atomic.Value // string: base URL, "" until the process is up
	// Client performs the member's HTTP requests; the per-member deadline
	// at the dispatch layer bounds the vote, so the default client has no
	// timeout of its own.
	Client *http.Client
}

// NewRemoteMember builds a member for the process at base URL addr
// (may be empty until the supervisor reports one). input is the
// per-sample shape (channels, height, width) used to flatten batches.
func NewRemoteMember(name, addr string, input [3]int) *RemoteMember {
	m := &RemoteMember{name: name, input: input, Client: http.DefaultClient}
	m.addr.Store(addr)
	return m
}

// Name returns the member's name.
func (m *RemoteMember) Name() string { return m.name }

// Addr returns the member's current base URL ("" when the process has
// never been up).
func (m *RemoteMember) Addr() string { return m.addr.Load().(string) }

// SetAddr repoints the member at a (re)started process. Safe to call
// concurrently with predictions; in-flight requests finish against the
// old address.
func (m *RemoteMember) SetAddr(addr string) { m.addr.Store(addr) }

// PredictProbsErr implements ProbsErrer: it posts the batch to the
// member process's /predict endpoint and returns the probability rows.
func (m *RemoteMember) PredictProbsErr(x *tensor.Tensor) (*tensor.Tensor, error) {
	addr := m.Addr()
	if addr == "" {
		return nil, fmt.Errorf("serve: member %s has no process address", m.name)
	}
	n := x.Dim(0)
	rowLen := m.input[0] * m.input[1] * m.input[2]
	flat := x.Data()
	if len(flat) != n*rowLen {
		return nil, fmt.Errorf("serve: member %s: batch has %d values, want %d×%d", m.name, len(flat), n, rowLen)
	}
	req := PredictRequest{Instances: make([][]float64, n)}
	for i := 0; i < n; i++ {
		req.Instances[i] = flat[i*rowLen : (i+1)*rowLen]
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("serve: member %s: encoding request: %w", m.name, err)
	}
	resp, err := m.Client.Post(addr+"/predict?probs=1", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("serve: member %s: %w", m.name, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("serve: member %s: %s: %s", m.name, resp.Status, bytes.TrimSpace(msg))
	}
	var pr PredictResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		return nil, fmt.Errorf("serve: member %s: decoding reply: %w", m.name, err)
	}
	if len(pr.Probs) != n {
		return nil, fmt.Errorf("serve: member %s: reply has %d probability rows, want %d", m.name, len(pr.Probs), n)
	}
	classes := len(pr.Probs[0])
	out := make([]float64, 0, n*classes)
	for i, row := range pr.Probs {
		if len(row) != classes {
			return nil, fmt.Errorf("serve: member %s: ragged probability row %d", m.name, i)
		}
		out = append(out, row...)
	}
	return tensor.FromSlice(out, n, classes), nil
}

// PredictProbs implements core.Classifier; a transport failure panics,
// which member dispatch recovers. Prefer the ProbsErrer path (the
// dispatcher uses it automatically).
func (m *RemoteMember) PredictProbs(x *tensor.Tensor) *tensor.Tensor {
	p, err := m.PredictProbsErr(x)
	if err != nil {
		panic(err)
	}
	return p
}

// Predict implements core.Classifier.
func (m *RemoteMember) Predict(x *tensor.Tensor) []int {
	return m.PredictProbs(x).ArgMaxRows()
}
