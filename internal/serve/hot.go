package serve

import (
	"net/http"
	"sync"

	"tdfm/internal/core"
	"tdfm/internal/obs"
	"tdfm/internal/tensor"
)

// ModelInfo identifies the registry artifact a Server was built from
// (Options.Model): the version number and content digest reported by
// /healthz, stamped on swap events, and used to tag the retiring
// version's pool-stats snapshot. The zero value means "not
// registry-backed" (a server trained in-process) and is omitted from
// responses.
type ModelInfo struct {
	// Version is the registry version number (1-based; 0 when not
	// registry-backed).
	Version int
	// Digest is the artifact's "sha256:<hex>" content digest.
	Digest string
}

// Label renders the version as "v3", or "" for the zero ModelInfo.
func (m ModelInfo) Label() string {
	if m.Version <= 0 {
		return ""
	}
	return "v" + itoa(m.Version)
}

// itoa is strconv.Itoa for small positive ints without the import churn
// in callers that build labels on event paths.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// Hot is the atomic hot-swap front over a Server: requests route to the
// current model version, Swap installs a new version with zero dropped
// requests. The swap ordering contract (DESIGN.md §11):
//
//  1. The new generation is installed under the write lock — requests
//     arriving after the swap point route to the new Server.
//  2. The swapper waits for every request pinned to the old generation
//     (each holds a generation reference for its full duration, HTTP
//     decode included).
//  3. Only then is the old Server drained — so no in-flight request can
//     observe ErrDraining — and its pool-stats snapshot emitted, tagged
//     with the retiring version.
//  4. The old members' activation arenas are released to the global
//     buffer pool for the new generation to reuse, and the swap event is
//     emitted. A swap event therefore guarantees the old version is
//     fully retired.
//
// Requests never block on a swap: between steps 1 and 4 old and new
// generations serve concurrently, each on its own breakers and
// admission queue. Methods are safe for concurrent use; Swap calls are
// serialized internally.
type Hot struct {
	mu     sync.RWMutex // guards gen; write-held only for the pointer swap
	gen    *generation
	swapMu sync.Mutex // serializes Swap/Drain retirement work
}

// generation pins one model version's Server and the requests in flight
// against it.
type generation struct {
	srv *Server
	wg  sync.WaitGroup
}

// NewHot wraps srv as the initial generation.
func NewHot(srv *Server) *Hot {
	return &Hot{gen: &generation{srv: srv}}
}

// acquire pins the current generation for one request. The returned
// generation's wg must be released (Done) when the request finishes.
func (h *Hot) acquire() *generation {
	h.mu.RLock()
	g := h.gen
	g.wg.Add(1)
	h.mu.RUnlock()
	return g
}

// Server returns the currently serving generation's Server (for
// inspection: options, breaker states, member names).
func (h *Hot) Server() *Server {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.gen.srv
}

// Predict answers one request against the current generation. A request
// admitted before a Swap completes against the generation it started
// on; the swap waits for it.
func (h *Hot) Predict(x *tensor.Tensor) (*Result, error) {
	g := h.acquire()
	defer g.wg.Done()
	return g.srv.Predict(x)
}

// Swap atomically installs next as the serving generation, then retires
// the old one: waits out its in-flight requests, drains it (emitting
// the retiring version's pool-stats snapshot), releases its activation
// arenas, and emits the swap event to next's sink. It returns when the
// old version is fully retired.
func (h *Hot) Swap(next *Server) {
	h.swapMu.Lock()
	defer h.swapMu.Unlock()
	h.mu.Lock()
	old := h.gen
	h.gen = &generation{srv: next}
	h.mu.Unlock()

	old.wg.Wait() //tdfm:allow lockdiscipline swapMu is the swap-serialization lock, not a request-path lock: requests go through h.mu (released above), so waiting out the old generation here blocks only competing swaps, by design
	old.srv.Drain()
	old.srv.ReleaseArenas()

	oldM, newM := old.srv.opts.Model, next.opts.Model
	next.emit(obs.Event{
		Kind:   obs.KindSwap,
		Key:    newM.Label(),
		Detail: oldM.Label() + "→" + newM.Label() + " digest=" + newM.Digest,
	})
}

// Drain retires the current generation for shutdown: stops admission,
// waits out in-flight requests, and releases arenas. Requests arriving
// afterwards fail with ErrDraining.
func (h *Hot) Drain() {
	h.swapMu.Lock()
	defer h.swapMu.Unlock()
	h.mu.RLock()
	g := h.gen
	h.mu.RUnlock()
	g.wg.Wait() //tdfm:allow lockdiscipline swapMu only serializes Drain against concurrent Swap; requests go through h.mu (released above), so the wait cannot stall admission
	g.srv.Drain()
	g.srv.ReleaseArenas()
}

// Handler returns the hot-swapping HTTP API: the same routes as
// Server.Handler, with every request pinned to the generation that was
// current when it arrived. A Swap mid-request completes only after the
// request does.
func (h *Hot) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/predict", func(w http.ResponseWriter, r *http.Request) {
		g := h.acquire()
		defer g.wg.Done()
		g.srv.handlePredict(w, r)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		g := h.acquire()
		defer g.wg.Done()
		g.srv.handleHealth(w, r)
	})
	return mux
}

// ReleaseArenas returns every member's per-network activation arenas to
// the global buffer pool. Callers retire a drained Server with it — the
// buffers a retired model version held become immediately reusable by
// its successor instead of waiting for the GC.
func (s *Server) ReleaseArenas() {
	for _, m := range s.members {
		core.ReleaseArenas(m.Clf)
	}
}
