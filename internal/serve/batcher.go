package serve

import (
	"fmt"
	"sync/atomic"
	"time"

	"tdfm/internal/chaos"
	"tdfm/internal/obs"
	"tdfm/internal/tensor"
)

// batchRequest is one admitted request parked in the batcher: its input
// rows, and the channel its demuxed result is delivered on (buffered
// with one slot, so the flush never blocks on a slow consumer).
type batchRequest struct {
	id   string
	x    *tensor.Tensor // [rows, C, H, W]
	rows int
	done chan batchReply
}

// batchReply is one request's demuxed share of a flushed batch.
type batchReply struct {
	res *Result
	err error
}

// batcher is the micro-batching admission layer: it collects admitted
// requests until the batch window elapses on the injected clock or the
// row cap is reached, stacks them into one [N, C, H, W] tensor, runs a
// single fan-out over the ensemble (one batched PredictProbs per
// member), and demuxes the per-request row slices back through each
// request's reply channel.
//
// All state lives in the collect goroutine; requests communicate only
// through the submit channel, so there is no lock ordering to get wrong
// and the flush decision (window vs cap vs drain) is a deterministic
// function of the submit/timer sequence. The pending counter is the one
// piece of shared state, exposed so tests (and Pending) can rendezvous
// with the collect loop without wall-clock sleeps.
type batcher struct {
	s      *Server
	submit chan *batchRequest
	drain  chan struct{} // closed by the first Drain: flush eagerly from now on
	done   chan struct{} // closed when the collect loop exits

	seq     atomic.Uint64 // batch ID counter
	pending atomic.Int64  // requests parked in the current partial batch
}

// newBatcher starts the collect loop for s. The submit channel is
// buffered to the batch cap so a submitter enqueues without waiting for
// a collect-loop rendezvous (two scheduler switches per request on a
// busy server); Pending still counts only requests the loop has folded
// into the current batch, which is what tests rendezvous on.
func newBatcher(s *Server) *batcher {
	b := &batcher{
		s:      s,
		submit: make(chan *batchRequest, s.opts.BatchCap),
		drain:  make(chan struct{}),
		done:   make(chan struct{}),
	}
	// The collect loop is the batcher's serialization point: it must
	// outlive any single request, so it cannot run on a request
	// goroutine. It exits when Drain closes submit after the last
	// in-flight request finished.
	go b.collect() //tdfm:allow nodeterminism the collect loop only reorders requests into batches; per-row results are batch-invariant and per-request events are emitted from the request's own goroutine, so schedule cannot leak into results
	return b
}

// collect is the batcher's event loop. Flushes happen when the batch
// window (armed on the injected clock at the first request of a batch)
// fires, when buffered rows reach BatchCap, or eagerly once draining.
func (b *batcher) collect() {
	defer close(b.done)
	var (
		buf      []*batchRequest
		rows     int
		timer    chaos.Timer
		timerC   <-chan time.Time
		draining bool
		drainC   = b.drain
	)
	flush := func(reason string) {
		if timer != nil {
			timer.Stop()
			timer, timerC = nil, nil
		}
		b.flush(buf, rows, reason)
		buf, rows = nil, 0
		b.pending.Store(0)
	}
	for {
		select {
		case r, ok := <-b.submit:
			if !ok {
				// Drain closed submit after the last in-flight request
				// finished; nothing can be buffered at this point.
				if len(buf) > 0 {
					flush("close")
				}
				return
			}
			buf = append(buf, r)
			rows += r.rows
			b.pending.Add(1)
			switch {
			case rows >= b.s.opts.BatchCap || draining:
				reason := "cap"
				if draining {
					reason = "drain"
				}
				flush(reason)
			case timer == nil:
				timer = b.s.opts.Clock.NewTimer(b.s.opts.BatchWindow)
				timerC = timer.C()
			}
		case <-timerC:
			timer, timerC = nil, nil
			flush("window")
		case <-drainC:
			// From now on every partial batch flushes immediately: the
			// window timer may never fire again (a test's FakeClock stops
			// advancing once Drain starts), and no request may be left
			// parked behind it.
			draining, drainC = true, nil
			if len(buf) > 0 {
				flush("drain")
			}
		}
	}
}

// flush stacks the buffered requests into one tensor, fans it out to the
// ensemble once, and demuxes each request's row slice into its own
// degraded-quorum vote. Member failures (a hang past the deadline, a
// panic, an open breaker) drop the member for the whole batch — every
// request in the batch then votes over the same surviving members, so
// the quorum "k/n" is a batch property while the vote itself stays
// per-request. Each request receives its own Result (reports copied, not
// shared) or *QuorumError.
func (b *batcher) flush(buf []*batchRequest, rows int, reason string) {
	if len(buf) == 0 {
		return
	}
	// Like request keys, the batch key only feeds events and chaos
	// labels; skip the formatting when nothing is observing.
	var batchID string
	if b.s.opts.Sink != nil || chaos.Armed() {
		batchID = reqKey("batch-", b.seq.Add(1))
	} else {
		b.seq.Add(1)
	}
	if b.s.opts.Sink != nil {
		b.s.emit(obs.Event{Kind: obs.KindBatchFlush, Key: batchID, N: len(buf),
			Detail: fmt.Sprintf("%s rows=%d", reason, rows)})
	}
	x := buf[0].x
	var stacked *tensor.Tensor
	if len(buf) > 1 {
		parts := make([]*tensor.Tensor, len(buf))
		for i, r := range buf {
			parts[i] = r.x
		}
		// The stacking buffer lives only for this flush; pool-backed
		// storage lets consecutive flushes of similar size reuse it.
		stacked = tensor.ConcatRowsPooled(parts...) //tdfm:allow poolown released below unless a timed-out member may still be reading it, in which case the GC reclaims it (see the Release guard)
		x = stacked
	}
	probs, reports := b.s.fanout(batchID, x)
	off := 0
	for _, r := range buf {
		res, err := b.s.vote(probs, reports, off, off+r.rows)
		if res != nil {
			res.Reports = append([]MemberReport(nil), reports...)
		}
		off += r.rows
		r.done <- batchReply{res: res, err: err}
	}
	if stacked != nil {
		// A timed-out member's goroutine may still be reading the stacked
		// tensor past the deadline; only a flush whose members all
		// finished may recycle it (the GC reclaims it otherwise).
		for _, rep := range reports {
			if rep.Status == StatusTimeout {
				return
			}
		}
		stacked.Release()
	}
}

// run submits one admitted request to the batcher and waits for its
// share of the flushed batch. Called from the request's own goroutine
// (Predict), which holds an admission slot and an inflight count for the
// whole wait.
func (b *batcher) run(reqID string, x *tensor.Tensor) (*Result, error) {
	r := &batchRequest{id: reqID, x: x, rows: x.Dim(0), done: make(chan batchReply, 1)}
	b.submit <- r
	reply := <-r.done
	return reply.res, reply.err
}

// Pending reports how many admitted requests are parked in the current
// partial batch, waiting for the window or the cap. Tests use it to
// rendezvous with the collect loop deterministically (poll until the
// expected requests are parked, then advance the fake clock); operators
// can read it as a queue-depth gauge.
func (s *Server) Pending() int {
	if s.batch == nil {
		return 0
	}
	return int(s.batch.pending.Load())
}
