package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"tdfm/internal/tensor"
)

// PredictRequest is the JSON body of POST /predict: a batch of
// flattened samples, each of length channels*height*width in CHW order.
type PredictRequest struct {
	// Instances holds one flattened sample per entry.
	Instances [][]float64 `json:"instances"`
}

// PredictResponse is the JSON body of a successful POST /predict.
type PredictResponse struct {
	// Predictions is the majority-vote class per instance.
	Predictions []int `json:"predictions"`
	// Quorum reports the surviving member count as "k/n".
	Quorum string `json:"quorum"`
	// Members lists every ensemble member's fate for this request.
	Members []MemberReportJSON `json:"members"`
	// Probs is the mean class-probability row per instance, present
	// only when the request asked for it with ?probs=1.
	Probs [][]float64 `json:"probs,omitempty"`
}

// MemberReportJSON is the wire form of one member's fate.
type MemberReportJSON struct {
	// Name is the member name.
	Name string `json:"name"`
	// Status is ok|timeout|panic|error|open.
	Status string `json:"status"`
}

// ErrorResponse is the JSON body of every non-2xx handler reply.
type ErrorResponse struct {
	// Error describes the failure.
	Error string `json:"error"`
	// Quorum reports "k/n" on minimum-quorum failures, else "".
	Quorum string `json:"quorum,omitempty"`
}

// HealthResponse is the JSON body of GET /healthz.
type HealthResponse struct {
	// Status is "ok" while serving and "draining" during shutdown.
	Status string `json:"status"`
	// Model identifies the served registry artifact; absent when the
	// server was trained in-process rather than loaded from a registry.
	Model *ModelHealthJSON `json:"model,omitempty"`
	// Quorum is "k/n": members currently dispatchable (breaker not open)
	// over the ensemble size.
	Quorum string `json:"quorum"`
	// Members maps nothing: breaker states are listed in member order so
	// the output is deterministic (no map iteration).
	Members []MemberHealthJSON `json:"members"`
}

// ModelHealthJSON is the served model's registry identity in /healthz.
type ModelHealthJSON struct {
	// Version is the registry version number.
	Version int `json:"version"`
	// Label is the display form ("v3").
	Label string `json:"label"`
	// Digest is the artifact's "sha256:<hex>" content digest.
	Digest string `json:"digest"`
}

// MemberHealthJSON is one member's breaker state in /healthz.
type MemberHealthJSON struct {
	// Name is the member name.
	Name string `json:"name"`
	// Breaker is closed|open|half-open.
	Breaker string `json:"breaker"`
}

// Handler returns the server's HTTP API:
//
//	POST /predict  {"instances": [[…CHW floats…], …]} → predictions + quorum
//	GET  /healthz  breaker states and drain status
//
// Error mapping: malformed input → 400, load shedding (ErrOverloaded) →
// 429, minimum-quorum failures and draining → 503.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/predict", s.handlePredict)
	mux.HandleFunc("/healthz", s.handleHealth)
	return mux
}

// handlePredict decodes the batch, runs the quorum vote, and encodes the
// outcome.
func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"), "")
		return
	}
	var req PredictRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding body: %v", err), "")
		return
	}
	x, err := s.toTensor(req.Instances)
	if err != nil {
		writeError(w, http.StatusBadRequest, err, "")
		return
	}
	res, err := s.Predict(x)
	if err != nil {
		status := http.StatusInternalServerError
		quorum := ""
		switch {
		case errors.Is(err, ErrOverloaded):
			status = http.StatusTooManyRequests
		case errors.Is(err, ErrDraining):
			status = http.StatusServiceUnavailable
		case errors.Is(err, ErrNoQuorum):
			status = http.StatusServiceUnavailable
			if qe := (*QuorumError)(nil); errors.As(err, &qe) {
				quorum = fmt.Sprintf("%d/%d", qe.Got, qe.Members)
			}
		}
		writeError(w, status, err, quorum)
		return
	}
	resp := PredictResponse{
		Predictions: res.Pred,
		Quorum:      fmt.Sprintf("%d/%d", res.Quorum, res.Members),
		Members:     make([]MemberReportJSON, len(res.Reports)),
	}
	for i, rep := range res.Reports {
		resp.Members[i] = MemberReportJSON{Name: rep.Name, Status: rep.Status.String()}
	}
	if r.URL.Query().Get("probs") == "1" {
		resp.Probs = make([][]float64, len(res.Pred))
		for i := range resp.Probs {
			resp.Probs[i] = res.Probs.Row(i)
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleHealth reports drain status, the served model's registry
// identity, the dispatchable quorum, and per-member breaker states.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	resp := HealthResponse{Status: "ok"}
	if s.Draining() {
		resp.Status = "draining"
	}
	if m := s.opts.Model; m.Version > 0 {
		resp.Model = &ModelHealthJSON{Version: m.Version, Label: m.Label(), Digest: m.Digest}
	}
	states := s.BreakerStates()
	dispatchable := 0
	for i, m := range s.members {
		if states[i] != BreakerOpen {
			dispatchable++
		}
		resp.Members = append(resp.Members, MemberHealthJSON{Name: m.Name, Breaker: states[i].String()})
	}
	resp.Quorum = fmt.Sprintf("%d/%d", dispatchable, len(s.members))
	status := http.StatusOK
	if resp.Status != "ok" {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, resp)
}

// toTensor validates the flattened instances against Options.Input and
// packs them into an [N, C, H, W] tensor.
func (s *Server) toTensor(instances [][]float64) (*tensor.Tensor, error) {
	c, h, wd := s.opts.Input[0], s.opts.Input[1], s.opts.Input[2]
	if c <= 0 || h <= 0 || wd <= 0 {
		return nil, fmt.Errorf("server has no input shape configured (Options.Input)")
	}
	if len(instances) == 0 {
		return nil, fmt.Errorf("no instances in request")
	}
	want := c * h * wd
	flat := make([]float64, 0, len(instances)*want)
	for i, inst := range instances {
		if len(inst) != want {
			return nil, fmt.Errorf("instance %d has %d values, want %d (channels %d × height %d × width %d)",
				i, len(inst), want, c, h, wd)
		}
		flat = append(flat, inst...)
	}
	return tensor.FromSlice(flat, len(instances), c, h, wd), nil
}

// writeJSON encodes v with the given status code.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError encodes a typed error reply.
func writeError(w http.ResponseWriter, status int, err error, quorum string) {
	writeJSON(w, status, ErrorResponse{Error: err.Error(), Quorum: quorum})
}
