package serve

// Events must never perturb results, and per request they must tell a
// deterministic story: however many requests run concurrently, the
// events sharing one request ID always form the same ordered sequence,
// because dispatch emits them only from the request's own goroutine in
// member index order. This test hammers the server from many goroutines
// under -race and checks every per-request sequence shape.

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"tdfm/internal/chaos"
)

func TestEventOrderDeterministicPerRequest(t *testing.T) {
	chaos.Reset()
	defer chaos.Reset()
	sink := &memoSink{}
	s, err := New(fiveMembers(), 3, Options{
		// Wall clock on purpose: real goroutine scheduling, huge deadline
		// so nothing ever times out, huge threshold so no breaker moves.
		MemberDeadline:   time.Hour,
		BreakerThreshold: 1000,
		QueueCapacity:    8,
		Sink:             sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	// One member always panics, so every admitted request carries a
	// member event between admit and done.
	chaos.Arm("serve/member", "/crash", chaos.Action{Panic: true})

	const n = 32
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := s.Predict(batch())
			switch {
			case errors.Is(err, ErrOverloaded):
			case err != nil:
				t.Errorf("predict: %v", err)
			case res.Quorum != 4:
				t.Errorf("quorum = %d, want 4", res.Quorum)
			}
		}()
	}
	wg.Wait()

	// A request that finds every admission slot taken emits exactly one
	// shed event; occupy the slots directly to force the path.
	for i := 0; i < cap(s.slots); i++ {
		s.slots <- struct{}{}
	}
	if _, err := s.Predict(batch()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("full queue: err = %v, want ErrOverloaded", err)
	}
	shedID := fmt.Sprintf("req-%06d", s.seq.Load())
	for i := 0; i < cap(s.slots); i++ {
		<-s.slots
	}

	// Group the interleaved stream by request ID; every sequence must be
	// exactly the admitted story or exactly the shed story.
	sink.mu.Lock()
	seqs := make(map[string][]string)
	for _, e := range sink.events {
		line := e.Kind.String()
		if e.Member != "" {
			line += " " + e.Member
		}
		if e.Detail != "" {
			line += " " + e.Detail
		}
		seqs[e.Key] = append(seqs[e.Key], line)
	}
	sink.mu.Unlock()

	if len(seqs) != n+1 {
		t.Fatalf("saw %d request IDs, want %d", len(seqs), n+1)
	}
	admitted := fmt.Sprint([]string{"req-admit", "member-panic crash", "req-done 4/5"})
	shed := fmt.Sprint([]string{"req-shed"})
	for key, seq := range seqs {
		got := fmt.Sprint(seq)
		if got != admitted && got != shed {
			t.Fatalf("request %s events out of order: %q", key, seq)
		}
	}
	if got := fmt.Sprint(seqs[shedID]); got != shed {
		t.Fatalf("forced shed %s events = %q, want %q", shedID, got, shed)
	}
}
