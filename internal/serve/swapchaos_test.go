package serve

import (
	"errors"
	"math"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tdfm/internal/chaos"
	"tdfm/internal/core"
	"tdfm/internal/datagen"
	"tdfm/internal/obs"
	"tdfm/internal/registry"
	"tdfm/internal/tensor"
	"tdfm/internal/xrand"
)

// This file is the `make swap-chaos` acceptance suite: the registry →
// hot-swap → supervision pipeline under load and injected failure, with
// every timing path on a FakeClock — zero wall-clock sleeps.

// publishedEnsemble publishes the same untrained two-member ensemble to
// dir twice (v1 and v2 carry identical weights, so their votes must be
// bit-identical) and returns a probe batch from the matching dataset.
func publishedEnsemble(t *testing.T, dir string) (registry.Manifest, registry.Manifest, *tensor.Tensor) {
	t.Helper()
	cfg := datagen.Presets(datagen.ScaleTiny, 7)["gtsrblike"]
	train, test, err := datagen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	archs := []string{"convnet", "deconvnet"}
	members := make([]core.Classifier, len(archs))
	for i, arch := range archs {
		m, err := core.NewUntrained(core.Config{Arch: arch}, train, xrand.New(uint64(40+i)).Split("swap-chaos"))
		if err != nil {
			t.Fatal(err)
		}
		members[i] = m
	}
	clf := &core.VotingClassifier{Members: members, Classes: cfg.NumClasses}
	m1, err := registry.Publish(dir, clf, registry.PublishOptions{Clock: chaos.NewFake()})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := registry.Publish(dir, clf, registry.PublishOptions{Clock: chaos.NewFake()})
	if err != nil {
		t.Fatal(err)
	}
	return m1, m2, test.X.SliceRows(0, 2)
}

// openRegistryServer builds a Server from a published registry version,
// the way cmd/tdfmserve does in registry mode.
func openRegistryServer(t *testing.T, dir string, version int, opts Options) *Server {
	t.Helper()
	clf, man, err := registry.Open(dir, version)
	if err != nil {
		t.Fatal(err)
	}
	opts.Input = man.Input
	opts.Model = ModelInfo{Version: man.Version, Digest: man.Digest}
	srv, err := New(Split(clf, man.Members), man.Classes, opts)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// probsBits renders a probability tensor as float64 bit patterns, so
// equality means byte-identical votes.
func probsBits(p *tensor.Tensor) []uint64 {
	d := p.Data()
	out := make([]uint64, len(d))
	for i, v := range d {
		out[i] = math.Float64bits(v)
	}
	return out
}

// TestSwapChaosHotSwapUnderLoad is the hot-swap acceptance criterion:
// under sustained concurrent load, publishing a new version and
// swapping to it drops or sheds zero requests, and because v1 and v2
// are the same artifact, every vote before, during, and after the swap
// is byte-identical.
func TestSwapChaosHotSwapUnderLoad(t *testing.T) {
	dir := t.TempDir()
	_, m2, probe := publishedEnsemble(t, dir)

	sink := &memoSink{}
	opts := Options{Clock: chaos.NewFake(), QueueCapacity: 1024, Sink: sink}
	hot := NewHot(openRegistryServer(t, dir, 1, opts))

	base, err := hot.Predict(probe)
	if err != nil {
		t.Fatal(err)
	}
	want := probsBits(base.Probs)
	wantPred := append([]int(nil), base.Pred...)

	var served, failed, wrong atomic.Int64
	stopLoad := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stopLoad:
					return
				default:
				}
				res, err := hot.Predict(probe)
				if err != nil {
					failed.Add(1)
					return
				}
				bits := probsBits(res.Probs)
				for i := range bits {
					if bits[i] != want[i] || res.Pred[i%len(res.Pred)] != wantPred[i%len(wantPred)] {
						wrong.Add(1)
						return
					}
				}
				served.Add(1)
			}
		}()
	}

	// Let the load establish itself on v1, swap to v2 mid-flight, then
	// demand another tranche of successful requests against v2.
	for served.Load() < 50 {
		runtime.Gosched()
	}
	hot.Swap(openRegistryServer(t, dir, 2, opts))
	target := served.Load() + 50
	for served.Load() < target && failed.Load() == 0 && wrong.Load() == 0 {
		runtime.Gosched()
	}
	close(stopLoad)
	wg.Wait()

	if n := failed.Load(); n != 0 {
		t.Fatalf("%d requests dropped or shed across the swap", n)
	}
	if n := wrong.Load(); n != 0 {
		t.Fatalf("%d requests voted differently across the swap of an identical artifact", n)
	}
	if got := hot.Server().Options().Model.Version; got != 2 {
		t.Fatalf("serving version after swap = v%d, want v2", got)
	}

	// The retirement trail: v1's tagged pool-stats snapshot, then the
	// swap event carrying the transition and incoming digest.
	var sawStats, sawSwap bool
	sink.mu.Lock()
	for _, e := range sink.events {
		if e.Kind == obs.KindPoolStats && e.Key == "v1" {
			sawStats = true
		}
		if e.Kind == obs.KindSwap && e.Detail == "v1→v2 digest="+m2.Digest {
			sawSwap = true
		}
	}
	sink.mu.Unlock()
	if !sawStats || !sawSwap {
		t.Fatalf("retirement events missing: pool-stats[v1]=%v swap=%v", sawStats, sawSwap)
	}
	hot.Drain()
}

// shardProc is a live MemberProcess for acceptance tests: every Start
// boots a real single-member HTTP shard in-process, and kill tears the
// listener down the way a crashed process would.
type shardProc struct {
	t    *testing.T
	mu   sync.Mutex
	ts   *httptest.Server
	exit chan error
}

func (p *shardProc) Start() (string, <-chan error, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	inner, err := New(Split(stubClf{row: []float64{0.25, 0.5, 0.25}}, []string{"gamma"}), 3,
		Options{Clock: chaos.NewFake(), MinQuorum: 1, Input: [3]int{1, 2, 2}})
	if err != nil {
		return "", nil, err
	}
	p.ts = httptest.NewServer(inner.Handler())
	p.exit = make(chan error, 1)
	return p.ts.URL, p.exit, nil
}

func (p *shardProc) Stop() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.ts != nil {
		p.ts.Close()
		p.ts = nil
	}
}

// kill simulates a member crash: the listener goes away and the exit
// notification fires.
func (p *shardProc) kill(err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.ts.Close()
	p.ts = nil
	p.exit <- err
}

// quorumOf reads the current health quorum string ("k/n") the way
// /healthz reports it.
func quorumOf(t *testing.T, srv *Server) string {
	t.Helper()
	var h HealthResponse
	doJSON(t, srv.Handler(), "GET", "/healthz", "", &h)
	return h.Quorum
}

// TestSwapChaosMemberCrashDegradesAndHeals is the supervision
// acceptance criterion: killing a member shard degrades the quorum
// (reported k/n, breaker tripped) while every request keeps succeeding,
// the supervisor restarts the member on the fake clock, and after the
// breaker's half-open probe the service is back to full quorum — no
// request ever failed.
func TestSwapChaosMemberCrashDegradesAndHeals(t *testing.T) {
	clk := chaos.NewFake()
	sink := &memoSink{}
	proc := &shardProc{t: t}
	rm := NewRemoteMember("gamma", "", [3]int{1, 2, 2})
	srv, err := New([]Member{
		{Name: "alpha", Clf: stubClf{row: []float64{0.25, 0.5, 0.25}}},
		{Name: "bravo", Clf: stubClf{row: []float64{0.25, 0.5, 0.25}}},
		{Name: "gamma", Clf: rm},
	}, 3, Options{
		Clock: clk, Sink: sink, MinQuorum: 2, Input: [3]int{1, 2, 2},
		MemberDeadline: time.Hour, BreakerThreshold: 3, BreakerCooldown: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	sup := NewSupervisor("gamma", proc, rm, SupervisorOptions{
		BackoffBase: time.Second, BackoffMax: 8 * time.Second,
		HealthInterval: time.Second, Clock: clk, Sink: sink,
	})
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		sup.Run(stop)
		close(done)
	}()
	defer func() {
		close(stop)
		<-done
	}()

	// Full strength: the supervisor brought gamma up and repointed rm.
	waitEvents(sink, 1)
	clk.BlockUntil(1)
	res, err := srv.Predict(batch())
	if err != nil || res.Quorum != 3 {
		t.Fatalf("healthy predict: quorum %d, err %v", res.Quorum, err)
	}
	if q := quorumOf(t, srv); q != "3/3" {
		t.Fatalf("healthy quorum = %q, want 3/3", q)
	}

	// Crash gamma. Every subsequent request must still succeed on a
	// degraded 2/3 quorum; the third failure trips gamma's breaker.
	proc.kill(errors.New("killed by chaos"))
	for i := 0; i < 3; i++ {
		res, err := srv.Predict(batch())
		if err != nil || res.Quorum != 2 {
			t.Fatalf("degraded predict %d: quorum %d, err %v", i, res.Quorum, err)
		}
	}
	if states := srv.BreakerStates(); states[2] != BreakerOpen {
		t.Fatalf("gamma breaker = %v after %d failures, want open", states[2], 3)
	}
	if q := quorumOf(t, srv); q != "2/3" {
		t.Fatalf("degraded quorum = %q, want 2/3", q)
	}

	// The supervisor notices the exit and restarts gamma after the 1s
	// backoff — all on the fake clock.
	waitEvents(sink, 2) // "exited" visible ⇒ health timer stopped
	clk.BlockUntil(1)   // backoff timer
	clk.Advance(time.Second)
	waitEvents(sink, 3) // "restarted" ⇒ rm repointed at the new shard
	clk.BlockUntil(1)   // the new process's health timer

	// The breaker is still open until its cooldown elapses; requests
	// keep succeeding at 2/3 in the meantime.
	res, err = srv.Predict(batch())
	if err != nil || res.Quorum != 2 {
		t.Fatalf("cooldown predict: quorum %d, err %v", res.Quorum, err)
	}
	clk.Advance(10 * time.Second) // cooldown elapses (one health probe fires and passes)

	// Half-open probe: the next request dispatches gamma, the restarted
	// shard answers, the breaker closes, and the quorum is whole again.
	res, err = srv.Predict(batch())
	if err != nil || res.Quorum != 3 {
		t.Fatalf("healed predict: quorum %d, err %v", res.Quorum, err)
	}
	if states := srv.BreakerStates(); states[2] != BreakerClosed {
		t.Fatalf("gamma breaker = %v after successful probe, want closed", states[2])
	}
	if q := quorumOf(t, srv); q != "3/3" {
		t.Fatalf("healed quorum = %q, want 3/3", q)
	}
	if got := restarts(sink); len(got) < 3 || got[1] != "exited 1 1s" {
		t.Fatalf("supervisor events = %v, want exited 1 1s then restarted", got)
	}
}
