package serve

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"tdfm/internal/chaos"
	"tdfm/internal/obs"
)

// fakeProc is a scripted MemberProcess: tests fail starts, kill the
// running "process", and observe Stop calls.
type fakeProc struct {
	mu       sync.Mutex
	starts   int
	stops    int
	failNext int // fail this many upcoming Start calls
	exit     chan error
	started  chan string // receives the addr of every successful start
}

func newFakeProc() *fakeProc {
	return &fakeProc{started: make(chan string, 16)}
}

// Start implements MemberProcess.
func (p *fakeProc) Start() (string, <-chan error, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.starts++
	if p.failNext > 0 {
		p.failNext--
		return "", nil, errors.New("spawn failed")
	}
	p.exit = make(chan error, 1)
	addr := fmt.Sprintf("http://member-%d", p.starts)
	p.started <- addr
	return addr, p.exit, nil
}

// Stop implements MemberProcess.
func (p *fakeProc) Stop() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stops++
}

// kill makes the running process exit with err.
func (p *fakeProc) kill(err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.exit <- err
}

// restarts returns the member-restart events recorded so far, rendered
// "phase N dur".
func restarts(sink *memoSink) []string {
	sink.mu.Lock()
	defer sink.mu.Unlock()
	var out []string
	for _, e := range sink.events {
		if e.Kind == obs.KindMemberRestart {
			out = append(out, fmt.Sprintf("%s %d %s", e.Detail, e.N, e.Dur))
		}
	}
	return out
}

// waitEvents blocks until the sink has recorded at least n
// member-restart events. Tests rendezvous on event counts before
// touching the fake clock: once a failure's event is visible the watch
// loop's health timer has been stopped, so the single pending waiter is
// unambiguously the backoff (or next health) timer.
func waitEvents(sink *memoSink, n int) {
	for len(restarts(sink)) < n {
		runtime.Gosched()
	}
}

// supFixture builds a supervised fake process on a fake clock. Health
// probes call health (default healthy) every second; backoff runs
// 1s → 2s → 4s → capped 8s.
func supFixture(t *testing.T, proc *fakeProc, health func(string) error) (*chaos.FakeClock, *memoSink, *RemoteMember, chan struct{}, chan struct{}) {
	t.Helper()
	if health == nil {
		health = func(string) error { return nil }
	}
	clk := chaos.NewFake()
	sink := &memoSink{}
	member := NewRemoteMember("alpha", "", [3]int{1, 2, 2})
	sup := NewSupervisor("alpha", proc, member, SupervisorOptions{
		BackoffBase: time.Second, BackoffMax: 8 * time.Second,
		HealthInterval: time.Second, Health: health, Clock: clk, Sink: sink,
	})
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		sup.Run(stop)
		close(done)
	}()
	t.Cleanup(func() {
		select {
		case <-done: // already exited
		default:
			close(stop)
			<-done
		}
	})
	return clk, sink, member, stop, done
}

// TestSupervisorRestartsAfterExitWithBackoff pins the core loop: a
// crash is restarted after the backoff, the backoff doubles across
// consecutive crashes, and the RemoteMember is repointed at each new
// address.
func TestSupervisorRestartsAfterExitWithBackoff(t *testing.T) {
	proc := newFakeProc()
	clk, sink, member, _, _ := supFixture(t, proc, nil)

	addr1 := <-proc.started
	waitEvents(sink, 1) // "restarted"
	clk.BlockUntil(1)   // health timer armed ⇒ SetAddr already happened
	if member.Addr() != addr1 {
		t.Fatalf("member addr = %q, want %q", member.Addr(), addr1)
	}

	proc.kill(errors.New("segfault"))
	waitEvents(sink, 2) // "exited" visible ⇒ health timer stopped
	clk.BlockUntil(1)   // backoff timer (1s)
	clk.Advance(time.Second)
	addr2 := <-proc.started
	waitEvents(sink, 3)
	clk.BlockUntil(1)
	if member.Addr() != addr2 {
		t.Fatalf("member addr after restart = %q, want %q", member.Addr(), addr2)
	}

	// Second crash within the reset window: backoff doubles to 2s; 1s of
	// fake time is not enough to restart.
	proc.kill(errors.New("segfault"))
	waitEvents(sink, 4)
	clk.BlockUntil(1)
	clk.Advance(time.Second)
	select {
	case addr := <-proc.started:
		t.Fatalf("restarted at %s after 1s, want 2s backoff", addr)
	default:
	}
	clk.Advance(time.Second)
	<-proc.started
	waitEvents(sink, 5)
	clk.BlockUntil(1)

	want := []string{
		"restarted 0 0s",
		"exited 1 1s",
		"restarted 1 0s",
		"exited 2 2s",
		"restarted 2 0s",
	}
	if got := restarts(sink); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("restart events = %v, want %v", got, want)
	}
}

// TestSupervisorBackoffCapsAndResets pins the ladder bounds: repeated
// failures cap at BackoffMax, and a healthy run of at least BackoffMax
// resets the ladder to BackoffBase.
func TestSupervisorBackoffCapsAndResets(t *testing.T) {
	proc := newFakeProc()
	clk, sink, _, _, _ := supFixture(t, proc, nil)

	// Crash 5 times in a row: backoff 1s, 2s, 4s, 8s, 8s (capped).
	<-proc.started
	events := 1 // "restarted"
	waitEvents(sink, events)
	clk.BlockUntil(1)
	delays := []time.Duration{time.Second, 2 * time.Second, 4 * time.Second, 8 * time.Second, 8 * time.Second}
	for _, d := range delays {
		proc.kill(errors.New("crash"))
		events++ // "exited"
		waitEvents(sink, events)
		clk.BlockUntil(1) // backoff timer
		clk.Advance(d)
		<-proc.started
		events++ // "restarted"
		waitEvents(sink, events)
		clk.BlockUntil(1) // health timer of the new process
	}

	// Stay healthy for BackoffMax of fake time (health probes pass every
	// second), then crash: the ladder restarts at 1s.
	for i := 0; i < 8; i++ {
		clk.Advance(time.Second)
		clk.BlockUntil(1)
	}
	proc.kill(errors.New("late crash"))
	events++
	waitEvents(sink, events)
	clk.BlockUntil(1)
	clk.Advance(time.Second)
	<-proc.started

	got := restarts(sink)
	last := got[len(got)-2]
	if last != "exited 1 1s" {
		t.Fatalf("post-reset failure event = %q, want \"exited 1 1s\" (all: %v)", last, got)
	}
}

// TestSupervisorRestartsUnhealthyMember pins the probe path: a process
// that is alive but failing health checks is stopped and restarted.
func TestSupervisorRestartsUnhealthyMember(t *testing.T) {
	proc := newFakeProc()
	var (
		mu   sync.Mutex
		sick bool
	)
	health := func(string) error {
		mu.Lock()
		defer mu.Unlock()
		if sick {
			return errors.New("probe refused")
		}
		return nil
	}
	clk, sink, _, _, _ := supFixture(t, proc, health)

	<-proc.started
	waitEvents(sink, 1)
	clk.BlockUntil(1)
	clk.Advance(time.Second) // healthy probe passes
	clk.BlockUntil(1)

	mu.Lock()
	sick = true
	mu.Unlock()
	clk.Advance(time.Second) // probe fails → stop + backoff
	waitEvents(sink, 2)
	clk.BlockUntil(1)
	proc.mu.Lock()
	stops := proc.stops
	proc.mu.Unlock()
	if stops != 1 {
		t.Fatalf("stops = %d, want 1 (unhealthy process killed)", stops)
	}
	mu.Lock()
	sick = false
	mu.Unlock()
	clk.Advance(time.Second)
	<-proc.started

	found := false
	for _, e := range restarts(sink) {
		if e == "unhealthy 1 1s" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no unhealthy restart event in %v", restarts(sink))
	}
}

// TestSupervisorRetriesFailedStarts pins the start-failed path: spawn
// failures back off and retry until one succeeds.
func TestSupervisorRetriesFailedStarts(t *testing.T) {
	proc := newFakeProc()
	proc.failNext = 2
	clk, sink, _, _, _ := supFixture(t, proc, nil)

	waitEvents(sink, 1)
	clk.BlockUntil(1) // backoff after first failed start
	clk.Advance(time.Second)
	waitEvents(sink, 2)
	clk.BlockUntil(1) // backoff after second failed start (2s)
	clk.Advance(2 * time.Second)
	<-proc.started
	waitEvents(sink, 3)
	clk.BlockUntil(1)

	want := []string{"start-failed 1 1s", "start-failed 2 2s", "restarted 2 0s"}
	if got := restarts(sink); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("events = %v, want %v", got, want)
	}
}

// TestSupervisorStops pins shutdown: closing stop ends Run and stops the
// running process.
func TestSupervisorStops(t *testing.T) {
	proc := newFakeProc()
	clk, _, _, stop, done := supFixture(t, proc, nil)
	<-proc.started
	clk.BlockUntil(1)
	close(stop)
	<-done
	proc.mu.Lock()
	defer proc.mu.Unlock()
	if proc.stops != 1 {
		t.Fatalf("stops = %d, want 1", proc.stops)
	}
}
