package serve

// The acceptance scenario for the serving layer: with 2/5 members armed
// (one hanging past its deadline, one panicking), the server keeps
// answering with the correct majority vote at quorum 3/5; both bad
// members' breakers open within the configured threshold; after the
// cooldown a half-open probe restores the healed member and re-opens the
// still-broken one. Every deadline and cooldown runs on an injected
// FakeClock — the test performs zero wall-clock sleeps.

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"tdfm/internal/chaos"
	"tdfm/internal/obs"
)

// memoSink records events under a mutex for later inspection.
type memoSink struct {
	mu     sync.Mutex
	events []obs.Event
}

// Emit implements obs.Sink.
func (m *memoSink) Emit(e obs.Event) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.events = append(m.events, e)
}

// forKey returns the recorded events whose Key matches, in order.
func (m *memoSink) forKey(key string) []obs.Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []obs.Event
	for _, e := range m.events {
		if e.Key == key {
			out = append(out, e)
		}
	}
	return out
}

func TestChaosDegradedQuorumAndRecovery(t *testing.T) {
	chaos.Reset()
	defer chaos.Reset()
	clk := chaos.NewFake()
	sink := &memoSink{}
	s, err := New(fiveMembers(), 3, Options{
		Clock:            clk,
		MemberDeadline:   100 * time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  10 * time.Second,
		Sink:             sink,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Arm the faults. "hangs" sleeps an hour — far past the deadline; the
	// goroutine outlives its request and keeps the member mutex, so later
	// dispatches to it queue up and time out too (a truly wedged replica).
	// "crash" panics after a short delay, and every other member sleeps
	// the same short delay so the test can rendezvous with all of them on
	// the fake clock before advancing time.
	chaos.Arm("serve/member", "/hangs", chaos.Action{Delay: time.Hour})
	chaos.Arm("serve/member", "/crash", chaos.Action{Delay: 10 * time.Millisecond, Panic: true})
	chaos.Arm("serve/member", "", chaos.Action{Delay: 10 * time.Millisecond})

	// run choreographs one request: spawn it, wait until sleepers timers
	// are parked on the clock, release the short delays, barrier on the
	// fast members' mutexes (the outcome send happens under the member
	// mutex, so acquiring it proves the answer was delivered), then push
	// time past the deadline.
	type reply struct {
		res *Result
		err error
	}
	run := func(sleepers int, fast []int) (*Result, error) {
		t.Helper()
		done := make(chan reply, 1)
		go func() {
			res, err := s.Predict(batch())
			done <- reply{res, err}
		}()
		clk.BlockUntil(sleepers)
		clk.Advance(10 * time.Millisecond)
		for _, i := range fast {
			s.memberMu[i].Lock()
			s.memberMu[i].Unlock()
		}
		clk.Advance(90 * time.Millisecond)
		r := <-done
		return r.res, r.err
	}
	wantPreds := func(res *Result, want int) {
		t.Helper()
		for i, p := range res.Pred {
			if p != want {
				t.Fatalf("row %d: pred = %d, want %d", i, p, want)
			}
		}
	}
	wantStatus := func(res *Result, statuses ...MemberStatus) {
		t.Helper()
		for i, st := range statuses {
			if res.Reports[i].Status != st {
				t.Fatalf("member %s: status %v, want %v", res.Reports[i].Name, res.Reports[i].Status, st)
			}
		}
	}

	// Request 1: 5 member sleeps + 1 deadline timer parked. The hang
	// misses the deadline, the crash panics; alpha+bravo+echo vote.
	res, err := run(6, []int{0, 1, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Quorum != 3 || res.Members != 5 {
		t.Fatalf("request 1 quorum = %d/%d, want 3/5", res.Quorum, res.Members)
	}
	wantPreds(res, 1) // alpha+bravo vote 1, echo votes 2 — majority holds
	wantStatus(res, StatusOK, StatusOK, StatusTimeout, StatusPanic, StatusOK)
	// Survivor mass for class 1: (0.5+0.5+0.25) scaled by the same
	// runtime reciprocal dispatch uses, so the comparison is bit-exact.
	quorum := float64(res.Quorum)
	if want := 1.25 * (1 / quorum); res.Probs.At(0, 1) != want {
		t.Fatalf("mean prob over survivors = %v, want %v", res.Probs.At(0, 1), want)
	}
	for i, st := range s.BreakerStates() {
		if st != BreakerClosed {
			t.Fatalf("breaker %d = %v after one failure (threshold 2), want closed", i, st)
		}
	}

	// Request 2: the stale hang goroutine still holds the member mutex, so
	// this request's dispatch to "hangs" queues behind it and times out as
	// well (it never reaches the clock: 4 new sleeps + timer + the stale
	// hour-long sleep = 6 waiters). Second consecutive failure opens both
	// breakers.
	res, err = run(6, []int{0, 1, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Quorum != 3 {
		t.Fatalf("request 2 quorum = %d, want 3", res.Quorum)
	}
	wantStatus(res, StatusOK, StatusOK, StatusTimeout, StatusPanic, StatusOK)
	states := s.BreakerStates()
	if states[2] != BreakerOpen || states[3] != BreakerOpen {
		t.Fatalf("breakers after threshold = %v, want hangs and crash open", states)
	}
	var opened []string
	for _, e := range sink.forKey("req-000002") {
		if e.Kind == obs.KindBreakerChange && e.Detail == "closed→open" {
			opened = append(opened, e.Member)
		}
	}
	if fmt.Sprint(opened) != "[hangs crash]" {
		t.Fatalf("closed→open events for %v, want [hangs crash]", opened)
	}

	// Request 3: open breakers skip both bad members entirely — only three
	// members sleep (plus the timer and the stale hour-long sleep = 5
	// waiters), and no new work lands on the wedged replica.
	res, err = run(5, []int{0, 1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Quorum != 3 {
		t.Fatalf("request 3 quorum = %d, want 3", res.Quorum)
	}
	wantPreds(res, 1)
	wantStatus(res, StatusOK, StatusOK, StatusOpen, StatusOpen, StatusOK)
	if w := clk.Waiters(); w != 1 { // only the stale hour-long sleep remains
		t.Fatalf("open breakers left %d clock waiters, want 1", w)
	}

	// Heal "hangs": disarm everything and let the hour elapse so the stale
	// goroutine finally wakes, parks its (ignored) answer, and releases
	// the member mutex. The elapsed hour also covers the 10s breaker
	// cooldown, so the next request probes both open breakers. Re-arm only
	// request 4's crash (scoped by request ID so the stale goroutines
	// cannot match), with the usual short delay for the rendezvous.
	chaos.Reset()
	clk.Advance(time.Hour)
	chaos.Arm("serve/member", "req-000004/crash", chaos.Action{Delay: 10 * time.Millisecond, Panic: true})
	chaos.Arm("serve/member", "req-000004/", chaos.Action{Delay: 10 * time.Millisecond})

	// Request 4: both breakers go half-open and probe. The healed "hangs"
	// answers — probe success closes its breaker; "crash" panics again —
	// probe failure re-opens with a fresh cooldown. Quorum recovers to 4/5.
	res, err = run(6, []int{0, 1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Quorum != 4 || res.Members != 5 {
		t.Fatalf("request 4 quorum = %d/%d, want 4/5", res.Quorum, res.Members)
	}
	wantPreds(res, 1)
	wantStatus(res, StatusOK, StatusOK, StatusOK, StatusPanic, StatusOK)
	states = s.BreakerStates()
	if states[2] != BreakerClosed {
		t.Fatalf("healed member breaker = %v, want closed", states[2])
	}
	if states[3] != BreakerOpen {
		t.Fatalf("still-broken member breaker = %v, want open", states[3])
	}

	// The request's event sequence tells the whole story, in order.
	var got []string
	for _, e := range sink.forKey("req-000004") {
		line := e.Kind.String()
		if e.Member != "" {
			line += " " + e.Member
		}
		if e.Detail != "" {
			line += " " + e.Detail
		}
		got = append(got, line)
	}
	want := []string{
		"req-admit",
		"breaker-change hangs open→half-open",
		"breaker-change crash open→half-open",
		"breaker-change hangs half-open→closed",
		"member-panic crash",
		"breaker-change crash half-open→open",
		"req-done 4/5",
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("request 4 events:\n got %q\nwant %q", got, want)
	}

	if w := clk.Waiters(); w != 0 {
		t.Fatalf("test left %d clock waiters; every sleep should be accounted for", w)
	}
}

func TestChaosFailFastBelowQuorum(t *testing.T) {
	chaos.Reset()
	defer chaos.Reset()
	clk := chaos.NewFake()
	s, err := New(fiveMembers(), 3, Options{Clock: clk, MemberDeadline: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	// Break 4/5 members with immediate errors: no clock choreography is
	// needed because nothing sleeps — the request must fail fast.
	boom := fmt.Errorf("replica wedged: %w", chaos.ErrInjected)
	for _, pat := range []string{"/alpha", "/bravo", "/hangs", "/crash"} {
		chaos.Arm("serve/member", pat, chaos.Action{Err: boom})
	}
	_, err = s.Predict(batch())
	if !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("err = %v, want ErrNoQuorum", err)
	}
	var qe *QuorumError
	if !errors.As(err, &qe) {
		t.Fatalf("err = %T, want *QuorumError", err)
	}
	if qe.Got != 1 || qe.Need != 3 || qe.Members != 5 {
		t.Fatalf("quorum error = %+v, want Got 1 Need 3 Members 5", qe)
	}
	if w := clk.Waiters(); w != 0 {
		t.Fatalf("fail-fast path left %d clock waiters", w)
	}
}
