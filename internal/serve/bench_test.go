package serve

// Benchmarks for the serving hot path, at two levels:
//
//   - fanout: the dispatch core itself — one batched fan-out over
//     [B, C, H, W] versus B single-example fan-outs, over three member
//     flavours: "stub" (constant rows; isolates the pure dispatch
//     machinery that micro-batching amortizes — goroutine spawns,
//     deadline timer, breaker bookkeeping, vote), "linear" (a minimal
//     real network), and "convnet" (the study architecture at reduced
//     width; compute-dominated, so it bounds what batching buys on a
//     single core where the arithmetic is identical by construction).
//
//   - predict: end to end through Predict — B concurrent one-row
//     requests against a per-request server versus a micro-batching
//     server whose cap is B, including admission, the batcher's
//     submit/reply hops, and per-request demux.
//
// The gated TestEmitServeBenchJSON runs the grid through
// testing.Benchmark and writes the trajectory to TDFM_BENCH_OUT (the
// committed BENCH_serve.json baseline; see `make bench-serve`).
// TDFM_BENCH_SHORT=1 trims the grid for CI.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"tdfm/internal/core"
	"tdfm/internal/data"
	"tdfm/internal/loss"
	"tdfm/internal/models"
	"tdfm/internal/nn"
	"tdfm/internal/tensor"
	"tdfm/internal/xrand"
)

const (
	benchClasses = 3
	benchC       = 3
	benchHW      = 8
)

var benchSizes = []int{1, 8, 32, 128}

// netClf wraps a raw network as a serving member. Benchmarks use it to
// measure dispatch over real layer stacks without paying for training —
// untrained weights run the same arithmetic as trained ones. Like the
// real model wrappers in internal/core, it serializes inference with a
// mutex because the network's arena is not safe for concurrent use.
type netClf struct {
	mu  sync.Mutex
	net *nn.Sequential
}

func (c *netClf) PredictProbs(x *tensor.Tensor) *tensor.Tensor {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := loss.Softmax(c.net.Forward(x, false))
	if a := c.net.Arena(); a != nil {
		a.Reset() // softmax output is fresh storage; activations recycle
	}
	return out
}

func (c *netClf) Predict(x *tensor.Tensor) []int {
	return c.PredictProbs(x).ArgMaxRows()
}

// benchMembers builds a three-member ensemble of the given flavour (see
// the package comment above for what each flavour isolates). withArena
// installs a per-member arena so activations recycle between requests —
// the alloc benchmarks measure that path; the throughput rows keep the
// plain allocate-per-call members so the committed trajectory stays
// like-for-like with its historical baseline.
func benchMembers(tb testing.TB, flavour string, withArena bool) []Member {
	tb.Helper()
	ms := make([]Member, 3)
	for i := range ms {
		name := fmt.Sprintf("%s-%d", flavour, i)
		rng := xrand.New(uint64(21 + i)).Split(name)
		var net *nn.Sequential
		switch flavour {
		case "stub":
			ms[i] = Member{Name: name, Clf: stubClf{row: []float64{0.25, 0.5, 0.25}}}
			continue
		case "linear":
			net = nn.NewSequential(
				nn.NewFlatten(),
				nn.NewDense(name+"/head", benchC*benchHW*benchHW, benchClasses, rng),
			)
		case "convnet":
			var err error
			net, err = models.Build(models.ConvNet, models.BuildConfig{
				InChannels: benchC, Height: benchHW, Width: benchHW,
				NumClasses: benchClasses, WidthMult: 0.25, RNG: rng,
			})
			if err != nil {
				tb.Fatal(err)
			}
		default:
			tb.Fatalf("unknown bench member flavour %q", flavour)
		}
		if withArena {
			nn.InstallArena(net, tensor.NewArena())
		}
		ms[i] = Member{Name: name, Clf: &netClf{net: net}}
	}
	return ms
}

// benchCoreMembers builds a three-member convnet ensemble through the
// real core constructors, so the members support the server's float32
// precision conversion (core.ToF32 requires core's own model types).
func benchCoreMembers(tb testing.TB) []Member {
	tb.Helper()
	ds := &data.Dataset{
		X:          tensor.New(1, benchC, benchHW, benchHW),
		Labels:     []int{0},
		NumClasses: benchClasses,
		Name:       "bench-serve",
	}
	ms := make([]Member, 3)
	for i := range ms {
		name := fmt.Sprintf("convnet-core-%d", i)
		clf, err := core.NewUntrained(
			core.Config{Arch: "convnet", WidthMult: 0.25},
			ds, xrand.New(uint64(21+i)).Split(name))
		if err != nil {
			tb.Fatal(err)
		}
		ms[i] = Member{Name: name, Clf: clf}
	}
	return ms
}

// benchInput builds a deterministic [n, C, H, W] batch.
func benchInput(n int) *tensor.Tensor {
	rng := xrand.New(5).Split("bench-serve")
	x := tensor.New(n, benchC, benchHW, benchHW)
	for j := range x.Data() {
		x.Data()[j] = rng.Float64() - 0.5
	}
	return x
}

// benchFanout measures the dispatch core: one batched fan-out over all
// rows versus rows single-example fan-outs, on the calling goroutine
// (the batcher's collect loop is exactly such a caller).
func benchFanout(b *testing.B, flavour string, rows int, batched bool) {
	s, err := New(benchMembers(b, flavour, false), benchClasses, Options{QueueCapacity: rows + 1})
	if err != nil {
		b.Fatal(err)
	}
	full := benchInput(rows)
	singles := make([]*tensor.Tensor, rows)
	for i := range singles {
		singles[i] = full.SliceRows(i, i+1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if batched {
			if _, err := s.dispatch("", full); err != nil {
				b.Fatal(err)
			}
		} else {
			for _, x := range singles {
				if _, err := s.dispatch("", x); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*rows)/b.Elapsed().Seconds(), "rows/s")
}

// benchPredict measures end to end: reqs concurrent one-row requests per
// iteration. batchCap 0 is the per-request path; batchCap reqs makes
// every iteration's requests flush as one batch (the window is only a
// backstop). arena selects arena-backed members (the alloc benchmarks).
func benchPredict(b *testing.B, flavour string, reqs, batchCap int, arena bool) {
	s, err := New(benchMembers(b, flavour, arena), benchClasses, Options{
		QueueCapacity: reqs + 1,
		BatchCap:      batchCap,
		BatchWindow:   250 * time.Microsecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	xs := make([]*tensor.Tensor, reqs)
	full := benchInput(reqs)
	for i := range xs {
		xs[i] = full.SliceRows(i, i+1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for j := 0; j < reqs; j++ {
			wg.Add(1)
			go func(x *tensor.Tensor) {
				defer wg.Done()
				if _, err := s.Predict(x); err != nil {
					b.Error(err)
				}
			}(xs[j])
		}
		wg.Wait()
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*reqs)/b.Elapsed().Seconds(), "req/s")
	s.Drain()
}

// benchPredictPrecision measures the batched predict path through
// real core members at the given serving precision. The f32-versus-f64
// comparison is run with pooling disabled so the B/op column reflects
// storage width alone, not how much of it the arena recycled.
func benchPredictPrecision(b *testing.B, reqs int, p Precision) {
	s, err := New(benchCoreMembers(b), benchClasses, Options{
		QueueCapacity: reqs + 1,
		BatchCap:      reqs,
		BatchWindow:   250 * time.Microsecond,
		Precision:     p,
	})
	if err != nil {
		b.Fatal(err)
	}
	xs := make([]*tensor.Tensor, reqs)
	full := benchInput(reqs)
	for i := range xs {
		xs[i] = full.SliceRows(i, i+1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for j := 0; j < reqs; j++ {
			wg.Add(1)
			go func(x *tensor.Tensor) {
				defer wg.Done()
				if _, err := s.Predict(x); err != nil {
					b.Error(err)
				}
			}(xs[j])
		}
		wg.Wait()
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*reqs)/b.Elapsed().Seconds(), "req/s")
	s.Drain()
}

// withPooling runs fn with the tensor buffer pool forced on or off,
// restoring the previous mode afterwards.
func withPooling(on bool, fn func()) {
	old := tensor.PoolingEnabled()
	tensor.SetPooling(on)
	defer tensor.SetPooling(old)
	fn()
}

func BenchmarkFanout(b *testing.B) {
	for _, flavour := range []string{"stub", "linear", "convnet"} {
		for _, rows := range benchSizes {
			rows, flavour := rows, flavour
			b.Run(fmt.Sprintf("%s/single/b=%d", flavour, rows),
				func(b *testing.B) { benchFanout(b, flavour, rows, false) })
			b.Run(fmt.Sprintf("%s/batched/b=%d", flavour, rows),
				func(b *testing.B) { benchFanout(b, flavour, rows, true) })
		}
	}
}

func BenchmarkPredict(b *testing.B) {
	for _, reqs := range benchSizes {
		reqs := reqs
		b.Run(fmt.Sprintf("convnet/single/b=%d", reqs),
			func(b *testing.B) { benchPredict(b, "convnet", reqs, 0, false) })
		cap := reqs
		if cap < 2 {
			cap = 2 // a cap of 1 disables batching; lone requests flush on the window
		}
		b.Run(fmt.Sprintf("convnet/batched/b=%d", reqs),
			func(b *testing.B) { benchPredict(b, "convnet", reqs, cap, false) })
	}
}

// BenchmarkAllocPredict tracks the batched predict path's allocation
// rate with the buffer pool on versus off (run with -benchmem; the
// allocs/op and B/op columns are the point of this benchmark).
func BenchmarkAllocPredict(b *testing.B) {
	const reqs = 32
	b.Run("pooled/b=32", func(b *testing.B) {
		b.ReportAllocs()
		withPooling(true, func() { benchPredict(b, "convnet", reqs, reqs, true) })
	})
	b.Run("unpooled/b=32", func(b *testing.B) {
		b.ReportAllocs()
		withPooling(false, func() { benchPredict(b, "convnet", reqs, reqs, true) })
	})
}

// BenchmarkPredictPrecision compares f64 and f32 member storage on the
// batched predict path, pooling disabled for both sides (see
// benchPredictPrecision).
func BenchmarkPredictPrecision(b *testing.B) {
	const reqs = 32
	for _, p := range []Precision{PrecisionF64, PrecisionF32} {
		p := p
		b.Run(fmt.Sprintf("%s/b=%d", p, reqs), func(b *testing.B) {
			b.ReportAllocs()
			withPooling(false, func() { benchPredictPrecision(b, reqs, p) })
		})
	}
}

// benchRecord and benchFile mirror the committed BENCH_*.json layout
// (also emitted by internal/tensor's benchmark suite). The allocation
// columns are populated for the memory rows (alloc/* and precision
// comparisons) and omitted elsewhere.
type benchRecord struct {
	Name        string  `json:"name"`
	Rows        int     `json:"rows"`
	NsPerRow    float64 `json:"ns_per_row"`
	RowsPerSec  float64 `json:"rows_per_sec"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
}

type benchFile struct {
	Suite      string             `json:"suite"`
	Go         string             `json:"go"`
	MaxProcs   int                `json:"maxprocs"`
	Benchmarks []benchRecord      `json:"benchmarks"`
	Speedups   map[string]float64 `json:"speedups"`
}

// benchReps is how many times each record reruns testing.Benchmark; the
// fastest repetition is kept. On a shared single-core host the slower
// repetitions measure scheduler interference, not the code, and the
// committed baseline should measure the code.
const benchReps = 3

// bestOf returns the fastest of benchReps testing.Benchmark runs of fn.
func bestOf(fn func(b *testing.B)) testing.BenchmarkResult {
	best := testing.Benchmark(fn)
	for i := 1; i < benchReps; i++ {
		if r := testing.Benchmark(fn); r.NsPerOp() < best.NsPerOp() {
			best = r
		}
	}
	return best
}

// measure runs fn through bestOf, where each fn iteration processes
// rows rows.
func measure(name string, rows int, fn func(b *testing.B)) benchRecord {
	r := bestOf(fn)
	perRow := float64(r.T.Nanoseconds()) / float64(r.N*rows)
	return benchRecord{
		Name:       name,
		Rows:       rows,
		NsPerRow:   perRow,
		RowsPerSec: 1e9 / perRow,
	}
}

// measureAlloc is measure plus the allocation columns; fn runs with
// b.ReportAllocs so testing.Benchmark records them.
func measureAlloc(name string, rows int, fn func(b *testing.B)) benchRecord {
	r := bestOf(func(b *testing.B) {
		b.ReportAllocs()
		fn(b)
	})
	perRow := float64(r.T.Nanoseconds()) / float64(r.N*rows)
	return benchRecord{
		Name:        name,
		Rows:        rows,
		NsPerRow:    perRow,
		RowsPerSec:  1e9 / perRow,
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// TestEmitServeBenchJSON measures the single-versus-batched dispatch
// trajectory and writes it to TDFM_BENCH_OUT. Gated: without the env var
// the test skips, so ordinary test runs never spend benchmark time.
func TestEmitServeBenchJSON(t *testing.T) {
	out := os.Getenv("TDFM_BENCH_OUT")
	if out == "" {
		t.Skip("TDFM_BENCH_OUT not set")
	}
	sizes := benchSizes
	fanoutFlavours := []string{"stub", "linear", "convnet"}
	if os.Getenv("TDFM_BENCH_SHORT") != "" {
		sizes = []int{1, 32}
		fanoutFlavours = []string{"stub", "convnet"}
	}
	f := benchFile{
		Suite:    "serve-dispatch",
		Go:       runtime.Version() + " " + runtime.GOOS + "/" + runtime.GOARCH,
		MaxProcs: runtime.GOMAXPROCS(0),
		Speedups: map[string]float64{},
	}
	add := func(level string, single, batched benchRecord, reqs int) {
		f.Benchmarks = append(f.Benchmarks, single, batched)
		f.Speedups[fmt.Sprintf("%s_batched_vs_single_b%d", level, reqs)] =
			single.NsPerRow / batched.NsPerRow
	}
	for _, flavour := range fanoutFlavours {
		for _, rows := range sizes {
			rows, flavour := rows, flavour
			single := measure(fmt.Sprintf("fanout/%s/single/b=%d", flavour, rows), rows,
				func(b *testing.B) { benchFanout(b, flavour, rows, false) })
			batched := measure(fmt.Sprintf("fanout/%s/batched/b=%d", flavour, rows), rows,
				func(b *testing.B) { benchFanout(b, flavour, rows, true) })
			add("fanout_"+flavour, single, batched, rows)
		}
	}
	for _, reqs := range sizes {
		reqs := reqs
		cap := reqs
		if cap < 2 {
			cap = 2
		}
		single := measure(fmt.Sprintf("predict/convnet/single/b=%d", reqs), reqs,
			func(b *testing.B) { benchPredict(b, "convnet", reqs, 0, false) })
		batched := measure(fmt.Sprintf("predict/convnet/batched/b=%d", reqs), reqs,
			func(b *testing.B) { benchPredict(b, "convnet", reqs, cap, false) })
		add("predict_convnet", single, batched, reqs)
	}

	// Memory rows. The pooled/unpooled pair tracks what buffer pooling
	// saves on the batched predict path (allocs/op, B/op); the f64/f32
	// pair tracks what float32 member storage saves on top, with pooling
	// disabled for both sides so storage width is isolated.
	const allocReqs = 32
	pooled := measureAlloc(fmt.Sprintf("alloc/predict/pooled/b=%d", allocReqs), allocReqs,
		func(b *testing.B) {
			withPooling(true, func() { benchPredict(b, "convnet", allocReqs, allocReqs, true) })
		})
	unpooled := measureAlloc(fmt.Sprintf("alloc/predict/unpooled/b=%d", allocReqs), allocReqs,
		func(b *testing.B) {
			withPooling(false, func() { benchPredict(b, "convnet", allocReqs, allocReqs, true) })
		})
	f.Benchmarks = append(f.Benchmarks, pooled, unpooled)
	f.Speedups[fmt.Sprintf("predict_allocs_unpooled_vs_pooled_b%d", allocReqs)] =
		float64(unpooled.AllocsPerOp) / float64(pooled.AllocsPerOp)
	f.Speedups[fmt.Sprintf("predict_bytes_unpooled_vs_pooled_b%d", allocReqs)] =
		float64(unpooled.BytesPerOp) / float64(pooled.BytesPerOp)

	f64row := measureAlloc(fmt.Sprintf("predict/convnet-core/f64/b=%d", allocReqs), allocReqs,
		func(b *testing.B) { withPooling(false, func() { benchPredictPrecision(b, allocReqs, PrecisionF64) }) })
	f32row := measureAlloc(fmt.Sprintf("predict/convnet-core/f32/b=%d", allocReqs), allocReqs,
		func(b *testing.B) { withPooling(false, func() { benchPredictPrecision(b, allocReqs, PrecisionF32) }) })
	f.Benchmarks = append(f.Benchmarks, f64row, f32row)
	f.Speedups[fmt.Sprintf("predict_bytes_f64_vs_f32_b%d", allocReqs)] =
		float64(f64row.BytesPerOp) / float64(f32row.BytesPerOp)

	blob, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (%d records)", out, len(f.Benchmarks))
}
