package serve

// The micro-batcher's contract: admitted requests park until the batch
// window elapses on the injected clock, the row cap is reached, or a
// drain begins — then one fan-out serves the whole batch and each
// request gets exactly its own rows back, bit-identical to what a
// per-request dispatch would have produced. Every test here runs on a
// FakeClock with zero wall-clock sleeps (the serve package is part of
// the -race CI leg), using Pending() to rendezvous with the collect
// loop and BlockUntil/Advance to drive the window and deadlines.

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"tdfm/internal/chaos"
	"tdfm/internal/obs"
	"tdfm/internal/tensor"
)

// echoClf answers each input row with probabilities derived from that
// row's first value v: [v, 1-v]. Distinct per-row outputs make demux
// bugs (wrong offsets, swapped requests) visible as wrong probabilities
// rather than coincidentally identical ones.
type echoClf struct{}

func (echoClf) PredictProbs(x *tensor.Tensor) *tensor.Tensor {
	n := x.Dim(0)
	stride := x.Size() / n
	out := tensor.New(n, 2)
	xd := x.Data()
	for i := 0; i < n; i++ {
		v := xd[i*stride]
		out.SetRow(i, []float64{v, 1 - v})
	}
	return out
}

func (e echoClf) Predict(x *tensor.Tensor) []int {
	return e.PredictProbs(x).ArgMaxRows()
}

// fiveEcho builds a five-member echo ensemble (same names as
// fiveMembers, so the chaos patterns in these tests read the same).
// All members echo identically, so the quorum mean over any alive
// subset equals the echo itself when the row values are small dyadic
// rationals (their sums and /k scalings are exact).
func fiveEcho() []Member {
	names := []string{"alpha", "bravo", "hangs", "crash", "echo"}
	ms := make([]Member, len(names))
	for i, n := range names {
		ms[i] = Member{Name: n, Clf: echoClf{}}
	}
	return ms
}

// rows builds a [len(vals), 1, 2, 2] input whose row i has first value
// vals[i] (the value echoClf echoes back).
func rows(vals ...float64) *tensor.Tensor {
	x := tensor.New(len(vals), 1, 2, 2)
	for i, v := range vals {
		x.Data()[i*4] = v
	}
	return x
}

// predictAsync runs s.Predict(x) on its own goroutine and returns the
// reply channel.
func predictAsync(s *Server, x *tensor.Tensor) <-chan batchReply {
	ch := make(chan batchReply, 1)
	go func() {
		res, err := s.Predict(x)
		ch <- batchReply{res: res, err: err}
	}()
	return ch
}

// waitPending spins (yielding, never sleeping) until n requests are
// parked in the batcher's current partial batch.
func waitPending(s *Server, n int) {
	for s.Pending() != n {
		runtime.Gosched()
	}
}

// checkEcho asserts that res carries exactly the echo of vals: one
// probability row [v, 1-v] per input row, which is what any quorum of
// identical echo members must produce. Bitwise comparison on purpose.
func checkEcho(t *testing.T, res *Result, vals ...float64) {
	t.Helper()
	if res.Probs.Dim(0) != len(vals) {
		t.Fatalf("probs rows = %d, want %d", res.Probs.Dim(0), len(vals))
	}
	for i, v := range vals {
		got0, got1 := res.Probs.At(i, 0), res.Probs.At(i, 1)
		if math.Float64bits(got0) != math.Float64bits(v) ||
			math.Float64bits(got1) != math.Float64bits(1-v) {
			t.Fatalf("row %d: probs = [%v %v], want [%v %v]", i, got0, got1, v, 1-v)
		}
		want := 0
		if 1-v > v {
			want = 1
		}
		if res.Pred[i] != want {
			t.Fatalf("row %d: pred = %d, want %d", i, res.Pred[i], want)
		}
	}
}

// flushEvents returns the recorded batch-flush events in order.
func flushEvents(sink *memoSink) []obs.Event {
	sink.mu.Lock()
	defer sink.mu.Unlock()
	var out []obs.Event
	for _, e := range sink.events {
		if e.Kind == obs.KindBatchFlush {
			out = append(out, e)
		}
	}
	return out
}

func TestBatchWindowFlushesPartialBatch(t *testing.T) {
	clk := chaos.NewFake()
	sink := &memoSink{}
	s, err := New(fiveEcho(), 2, Options{
		Clock: clk, BatchCap: 8, BatchWindow: 4 * time.Millisecond, Sink: sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	a := predictAsync(s, rows(0.25, 0.375))
	b := predictAsync(s, rows(0.125))
	waitPending(s, 2)
	// The window timer was armed when the first request parked; 3 rows
	// never reach the cap of 8, so only the window can flush.
	clk.BlockUntil(1)
	clk.Advance(4 * time.Millisecond)

	ra, rb := <-a, <-b
	if ra.err != nil || rb.err != nil {
		t.Fatalf("errs = %v, %v", ra.err, rb.err)
	}
	if ra.res.Quorum != 5 || rb.res.Quorum != 5 {
		t.Fatalf("quorum = %d, %d, want 5, 5", ra.res.Quorum, rb.res.Quorum)
	}
	checkEcho(t, ra.res, 0.25, 0.375)
	checkEcho(t, rb.res, 0.125)

	fl := flushEvents(sink)
	if len(fl) != 1 {
		t.Fatalf("batch-flush events = %d, want 1", len(fl))
	}
	if fl[0].N != 2 || fl[0].Detail != "window rows=3" {
		t.Fatalf("flush event = N=%d %q, want N=2 %q", fl[0].N, fl[0].Detail, "window rows=3")
	}
	s.Drain()
}

func TestBatchCapFlushesBeforeWindow(t *testing.T) {
	clk := chaos.NewFake()
	sink := &memoSink{}
	s, err := New(fiveEcho(), 2, Options{
		Clock: clk, BatchCap: 3, BatchWindow: time.Hour, Sink: sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 2 + 1 rows reach the cap of 3: the flush must happen with no clock
	// advance at all — the hour-long window never elapses in this test.
	a := predictAsync(s, rows(0.5, 0.25))
	b := predictAsync(s, rows(0.75))
	ra, rb := <-a, <-b
	if ra.err != nil || rb.err != nil {
		t.Fatalf("errs = %v, %v", ra.err, rb.err)
	}
	checkEcho(t, ra.res, 0.5, 0.25)
	checkEcho(t, rb.res, 0.75)

	fl := flushEvents(sink)
	if len(fl) != 1 {
		t.Fatalf("batch-flush events = %d, want 1", len(fl))
	}
	if fl[0].N != 2 || fl[0].Detail != "cap rows=3" {
		t.Fatalf("flush event = N=%d %q, want N=2 %q", fl[0].N, fl[0].Detail, "cap rows=3")
	}
	s.Drain()
}

func TestBatchDemuxRoutesRowsToRequests(t *testing.T) {
	clk := chaos.NewFake()
	s, err := New([]Member{{Name: "solo", Clf: echoClf{}}}, 2, Options{
		Clock: clk, MinQuorum: 1, BatchCap: 16, BatchWindow: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Three requests with distinct row counts and distinct values; the
	// demux must hand each exactly its own slice whatever order they
	// arrived in the batch.
	a := predictAsync(s, rows(0.125, 0.25, 0.375))
	b := predictAsync(s, rows(0.5))
	c := predictAsync(s, rows(0.625, 0.75))
	waitPending(s, 3)
	clk.BlockUntil(1)
	clk.Advance(2 * time.Millisecond)

	ra, rb, rc := <-a, <-b, <-c
	for i, r := range []batchReply{ra, rb, rc} {
		if r.err != nil {
			t.Fatalf("request %d: %v", i, r.err)
		}
	}
	checkEcho(t, ra.res, 0.125, 0.25, 0.375)
	checkEcho(t, rb.res, 0.5)
	checkEcho(t, rc.res, 0.625, 0.75)
	s.Drain()
}

func TestBatchMemberHangTimesOutWithoutCorruptingDemux(t *testing.T) {
	chaos.Reset()
	defer chaos.Reset()
	clk := chaos.NewFake()
	sink := &memoSink{}
	s, err := New(fiveEcho(), 2, Options{
		Clock: clk, BatchCap: 8, BatchWindow: 2 * time.Millisecond,
		MemberDeadline: 100 * time.Millisecond, BreakerThreshold: 1, Sink: sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	// "hangs" sleeps far past the deadline; every other member sleeps a
	// short delay so the test can rendezvous with all five on the fake
	// clock before releasing the fast four and firing the deadline.
	chaos.Arm("serve/member", "/hangs", chaos.Action{Delay: 10 * time.Minute})
	chaos.Arm("serve/member", "", chaos.Action{Delay: 10 * time.Millisecond})

	a := predictAsync(s, rows(0.25, 0.375))
	b := predictAsync(s, rows(0.125))
	waitPending(s, 2)
	clk.BlockUntil(1)
	clk.Advance(2 * time.Millisecond) // window fires, batch fans out
	// Now 5 member sleeps + the deadline timer are parked. Wake the fast
	// four, barrier on their member mutexes (the outcome send happens
	// under the mutex, so acquiring it proves delivery), then push past
	// the deadline so only "hangs" is declared late.
	clk.BlockUntil(6)
	clk.Advance(10 * time.Millisecond)
	for _, i := range []int{0, 1, 3, 4} {
		s.memberMu[i].Lock()
		s.memberMu[i].Unlock()
	}
	clk.Advance(90 * time.Millisecond)

	ra, rb := <-a, <-b
	if ra.err != nil || rb.err != nil {
		t.Fatalf("errs = %v, %v", ra.err, rb.err)
	}
	// The batch loses "hangs" for every request in it: 4/5 quorum, and
	// the surviving echo mean is still exactly each request's own rows.
	for _, r := range []batchReply{ra, rb} {
		if r.res.Quorum != 4 || r.res.Members != 5 {
			t.Fatalf("quorum = %d/%d, want 4/5", r.res.Quorum, r.res.Members)
		}
		for _, rep := range r.res.Reports {
			want := StatusOK
			if rep.Name == "hangs" {
				want = StatusTimeout
			}
			if rep.Status != want {
				t.Fatalf("member %s: status %v, want %v", rep.Name, rep.Status, want)
			}
		}
	}
	checkEcho(t, ra.res, 0.25, 0.375)
	checkEcho(t, rb.res, 0.125)

	// The timeout and the breaker transition are batch-scoped events,
	// keyed by the batch ID (per-request events stay per-request).
	evs := sink.forKey("batch-000001")
	var kinds []string
	for _, e := range evs {
		kinds = append(kinds, e.Kind.String())
	}
	want := []string{"batch-flush", "member-timeout", "breaker-change"}
	if fmt.Sprint(kinds) != fmt.Sprint(want) {
		t.Fatalf("batch events = %v, want %v", kinds, want)
	}

	// Release the hung member so its goroutine parks its late answer and
	// exits, then shut the batcher down.
	clk.Advance(10 * time.Minute)
	s.Drain()
}

func TestBatchDrainFlushesParkedRequests(t *testing.T) {
	clk := chaos.NewFake()
	sink := &memoSink{}
	s, err := New(fiveEcho(), 2, Options{
		Clock: clk, BatchCap: 8, BatchWindow: time.Hour, Sink: sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Two requests park behind an hour-long window that will never
	// elapse; Drain must flush them immediately rather than strand them.
	a := predictAsync(s, rows(0.25))
	b := predictAsync(s, rows(0.5, 0.625))
	waitPending(s, 2)

	drained := make(chan struct{})
	go func() {
		s.Drain()
		close(drained)
	}()
	ra, rb := <-a, <-b
	if ra.err != nil || rb.err != nil {
		t.Fatalf("parked requests failed under drain: %v, %v", ra.err, rb.err)
	}
	checkEcho(t, ra.res, 0.25)
	checkEcho(t, rb.res, 0.5, 0.625)
	<-drained

	if _, err := s.Predict(rows(0.5)); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain predict: err = %v, want ErrDraining", err)
	}
	fl := flushEvents(sink)
	if len(fl) != 1 || fl[0].Detail != "drain rows=3" {
		t.Fatalf("flush events = %+v, want one %q", fl, "drain rows=3")
	}
	// Drain is idempotent with the batcher attached.
	s.Drain()
}

func TestBatchKeepsAdmissionBoundAndPerRequestEvents(t *testing.T) {
	clk := chaos.NewFake()
	sink := &memoSink{}
	s, err := New(fiveEcho(), 2, Options{
		Clock: clk, BatchCap: 8, BatchWindow: 5 * time.Millisecond,
		QueueCapacity: 2, Sink: sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Two parked requests hold both admission slots: batching must not
	// widen the bound, so the third request sheds immediately — no clock
	// advance, no waiting for the window.
	a := predictAsync(s, rows(0.25))
	b := predictAsync(s, rows(0.375))
	waitPending(s, 2)
	if _, err := s.Predict(rows(0.5)); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("overflow request: err = %v, want ErrOverloaded", err)
	}

	clk.BlockUntil(1)
	clk.Advance(5 * time.Millisecond)
	ra, rb := <-a, <-b
	if ra.err != nil || rb.err != nil {
		t.Fatalf("errs = %v, %v", ra.err, rb.err)
	}

	// Per-request event sequences are unchanged by batching: admitted
	// requests tell [req-admit, req-done 5/5], the shed one [req-shed].
	// Batch-scoped events live under batch-* keys, never req-* keys.
	sink.mu.Lock()
	seqs := make(map[string][]string)
	for _, e := range sink.events {
		if !strings.HasPrefix(e.Key, "req-") {
			continue
		}
		line := e.Kind.String()
		if e.Detail != "" {
			line += " " + e.Detail
		}
		seqs[e.Key] = append(seqs[e.Key], line)
	}
	sink.mu.Unlock()
	if len(seqs) != 3 {
		t.Fatalf("saw %d request IDs, want 3", len(seqs))
	}
	admitted := fmt.Sprint([]string{"req-admit", "req-done 5/5"})
	shed := fmt.Sprint([]string{"req-shed"})
	nShed := 0
	for key, seq := range seqs {
		switch got := fmt.Sprint(seq); got {
		case admitted:
		case shed:
			nShed++
		default:
			t.Fatalf("request %s events = %q, want %q or %q", key, seq, admitted, shed)
		}
	}
	if nShed != 1 {
		t.Fatalf("shed sequences = %d, want 1", nShed)
	}
	s.Drain()
}

func TestBatchedMatchesUnbatchedBitwise(t *testing.T) {
	clk := chaos.NewFake()
	unbatched, err := New(fiveEcho(), 2, Options{Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	batched, err := New(fiveEcho(), 2, Options{
		Clock: clk, BatchCap: 4, BatchWindow: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	inputs := []*tensor.Tensor{rows(0.125, 0.375), rows(0.5), rows(0.25)}

	want := make([]*Result, len(inputs))
	for i, x := range inputs {
		if want[i], err = unbatched.Predict(x); err != nil {
			t.Fatal(err)
		}
	}

	// 2+1+1 rows hit the cap of 4 once all three requests are parked, so
	// the batch flushes without any clock interaction.
	var wg sync.WaitGroup
	got := make([]*Result, len(inputs))
	errs := make([]error, len(inputs))
	for i, x := range inputs {
		wg.Add(1)
		go func(i int, x *tensor.Tensor) {
			defer wg.Done()
			got[i], errs[i] = batched.Predict(x)
		}(i, x)
	}
	wg.Wait()

	for i := range inputs {
		if errs[i] != nil {
			t.Fatalf("batched request %d: %v", i, errs[i])
		}
		if got[i].Quorum != want[i].Quorum || got[i].Members != want[i].Members {
			t.Fatalf("request %d: quorum %d/%d, want %d/%d",
				i, got[i].Quorum, got[i].Members, want[i].Quorum, want[i].Members)
		}
		if fmt.Sprint(got[i].Pred) != fmt.Sprint(want[i].Pred) {
			t.Fatalf("request %d: pred %v, want %v", i, got[i].Pred, want[i].Pred)
		}
		gd, wd := got[i].Probs.Data(), want[i].Probs.Data()
		if len(gd) != len(wd) {
			t.Fatalf("request %d: probs size %d, want %d", i, len(gd), len(wd))
		}
		for j := range gd {
			if math.Float64bits(gd[j]) != math.Float64bits(wd[j]) {
				t.Fatalf("request %d probs[%d]: batched %v != unbatched %v", i, j, gd[j], wd[j])
			}
		}
	}
	batched.Drain()
}
