package serve

import (
	"errors"
	"runtime"
	"testing"
	"time"

	"tdfm/internal/chaos"
	"tdfm/internal/core"
	"tdfm/internal/tensor"
)

// stubClf is a deterministic, stateless member: it emits the same
// probability row (exact binary fractions) for every input row.
type stubClf struct{ row []float64 }

func (f stubClf) PredictProbs(x *tensor.Tensor) *tensor.Tensor {
	n := x.Dim(0)
	out := tensor.New(n, len(f.row))
	for i := 0; i < n; i++ {
		out.SetRow(i, f.row)
	}
	return out
}

func (f stubClf) Predict(x *tensor.Tensor) []int {
	return f.PredictProbs(x).ArgMaxRows()
}

// fiveMembers builds the standard test ensemble: members 0–3 vote class
// 1, member 4 votes class 2, so any quorum of three or more containing
// two of the first four still answers class 1 — the degraded vote
// matches the full vote.
func fiveMembers() []Member {
	return []Member{
		{Name: "alpha", Clf: stubClf{row: []float64{0.25, 0.5, 0.25}}},
		{Name: "bravo", Clf: stubClf{row: []float64{0.25, 0.5, 0.25}}},
		{Name: "hangs", Clf: stubClf{row: []float64{0.25, 0.5, 0.25}}},
		{Name: "crash", Clf: stubClf{row: []float64{0.25, 0.5, 0.25}}},
		{Name: "echo", Clf: stubClf{row: []float64{0.25, 0.25, 0.5}}},
	}
}

// batch returns a 2-row input batch (contents ignored by stubs).
func batch() *tensor.Tensor { return tensor.New(2, 1, 2, 2) }

func TestPredictFullQuorum(t *testing.T) {
	s, err := New(fiveMembers(), 3, Options{Clock: chaos.NewFake(), Input: [3]int{1, 2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Predict(batch())
	if err != nil {
		t.Fatal(err)
	}
	if res.Quorum != 5 || res.Members != 5 {
		t.Fatalf("quorum = %d/%d, want 5/5", res.Quorum, res.Members)
	}
	for i, p := range res.Pred {
		if p != 1 {
			t.Fatalf("row %d: pred = %d, want 1", i, p)
		}
	}
	for _, rep := range res.Reports {
		if rep.Status != StatusOK {
			t.Fatalf("member %s: status %v, want ok", rep.Name, rep.Status)
		}
	}
	// Mean probs over all five members: class 1 = (4*0.5+0.25)/5 = 0.45.
	if got := res.Probs.At(0, 1); got != 0.45 {
		t.Fatalf("mean prob class 1 = %v, want 0.45", got)
	}
}

func TestDefaultMinQuorumIsMajority(t *testing.T) {
	s, err := New(fiveMembers(), 3, Options{Clock: chaos.NewFake()})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Options().MinQuorum; got != 3 {
		t.Fatalf("default MinQuorum = %d, want 3", got)
	}
	if _, err := New(fiveMembers(), 3, Options{MinQuorum: 6}); err == nil {
		t.Fatal("MinQuorum above ensemble size accepted")
	}
	if _, err := New(nil, 3, Options{}); err == nil {
		t.Fatal("empty member list accepted")
	}
}

func TestLoadSheddingRejectsOverflowImmediately(t *testing.T) {
	chaos.Reset()
	defer chaos.Reset()
	clk := chaos.NewFake()
	s, err := New(fiveMembers(), 3, Options{
		Clock: clk, QueueCapacity: 1, MemberDeadline: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Hold the only admission slot: every member of request 1 sleeps
	// 50ms of fake time, so the request stays in flight until we advance.
	chaos.Arm("serve/member", "", chaos.Action{Delay: 50 * time.Millisecond})
	type reply struct {
		res *Result
		err error
	}
	done := make(chan reply, 1)
	go func() {
		res, err := s.Predict(batch())
		done <- reply{res, err}
	}()
	// 5 member sleeps + 1 deadline timer all parked on the fake clock.
	clk.BlockUntil(6)

	if _, err := s.Predict(batch()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("overflow request: err = %v, want ErrOverloaded", err)
	}

	clk.Advance(50 * time.Millisecond)
	r := <-done
	if r.err != nil {
		t.Fatalf("held request failed: %v", r.err)
	}
	if r.res.Quorum != 5 {
		t.Fatalf("held request quorum = %d, want 5", r.res.Quorum)
	}
	// Disarm the delay; the freed slot must admit a request again.
	chaos.Reset()
	if _, err := s.Predict(batch()); err != nil {
		t.Fatalf("post-drain request failed: %v", err)
	}
}

func TestDrainRefusesNewAndWaitsForInflight(t *testing.T) {
	chaos.Reset()
	defer chaos.Reset()
	clk := chaos.NewFake()
	s, err := New(fiveMembers(), 3, Options{Clock: clk, MemberDeadline: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	chaos.Arm("serve/member", "", chaos.Action{Delay: 50 * time.Millisecond})
	predDone := make(chan error, 1)
	go func() {
		_, err := s.Predict(batch())
		predDone <- err
	}()
	clk.BlockUntil(6)

	drainDone := make(chan struct{})
	go func() {
		s.Drain()
		close(drainDone)
	}()
	// Drain flips the flag before blocking on in-flight requests; wait
	// for the flip so the refusal below cannot race admission.
	for !s.Draining() {
		runtime.Gosched()
	}
	if _, err := s.Predict(batch()); !errors.Is(err, ErrDraining) {
		t.Fatalf("during drain: err = %v, want ErrDraining", err)
	}
	select {
	case <-drainDone:
		t.Fatal("Drain returned while a request was in flight")
	default:
	}
	clk.Advance(50 * time.Millisecond)
	if err := <-predDone; err != nil {
		t.Fatalf("in-flight request failed during drain: %v", err)
	}
	<-drainDone
	if !s.Draining() {
		t.Fatal("Draining() = false after Drain")
	}
}

func TestSplitVotingClassifier(t *testing.T) {
	v := &core.VotingClassifier{
		Members: []core.Classifier{stubClf{row: []float64{1, 0}}, stubClf{row: []float64{0, 1}}},
		Classes: 2,
	}
	members := Split(v, []string{"convnet"})
	if len(members) != 2 {
		t.Fatalf("split produced %d members, want 2", len(members))
	}
	if members[0].Name != "convnet" || members[1].Name != "member-1" {
		t.Fatalf("names = %q, %q", members[0].Name, members[1].Name)
	}
	single := Split(stubClf{row: []float64{1, 0}}, nil)
	if len(single) != 1 || single[0].Name != "member-0" {
		t.Fatalf("single split = %+v", single)
	}
}

func TestSingleMemberServer(t *testing.T) {
	s, err := New(Split(stubClf{row: []float64{0.25, 0.75}}, []string{"solo"}), 2,
		Options{Clock: chaos.NewFake(), MinQuorum: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Predict(batch())
	if err != nil {
		t.Fatal(err)
	}
	if res.Quorum != 1 || res.Pred[0] != 1 {
		t.Fatalf("quorum %d pred %v", res.Quorum, res.Pred)
	}
}
