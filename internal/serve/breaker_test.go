package serve

import (
	"testing"
	"time"

	"tdfm/internal/chaos"
)

func TestBreakerOpensAfterConsecutiveFailures(t *testing.T) {
	clk := chaos.NewFake()
	b := newBreaker(clk, 3, time.Minute)
	for i := 0; i < 2; i++ {
		if ok, _, _ := b.allow(); !ok {
			t.Fatalf("closed breaker refused dispatch %d", i)
		}
		if tr := b.record(false, false); tr != nil {
			t.Fatalf("failure %d transitioned early: %v", i, tr)
		}
	}
	// A success in between resets the consecutive count.
	b.allow()
	b.record(true, false)
	for i := 0; i < 2; i++ {
		b.allow()
		if tr := b.record(false, false); tr != nil {
			t.Fatalf("post-reset failure %d transitioned early: %v", i, tr)
		}
	}
	b.allow()
	tr := b.record(false, false)
	if tr == nil || tr.from != BreakerClosed || tr.to != BreakerOpen {
		t.Fatalf("third consecutive failure did not open the breaker: %v", tr)
	}
	if got := b.state(); got != BreakerOpen {
		t.Fatalf("state = %v, want open", got)
	}
	if ok, _, _ := b.allow(); ok {
		t.Fatal("open breaker allowed a dispatch before cooldown")
	}
}

func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	clk := chaos.NewFake()
	b := newBreaker(clk, 1, time.Minute)
	b.allow()
	b.record(false, false) // threshold 1: opens immediately
	clk.Advance(59 * time.Second)
	if ok, _, _ := b.allow(); ok {
		t.Fatal("open breaker probed before the cooldown elapsed")
	}
	clk.Advance(time.Second)
	ok, probe, tr := b.allow()
	if !ok || !probe {
		t.Fatalf("cooldown elapsed but no probe: ok=%v probe=%v", ok, probe)
	}
	if tr == nil || tr.from != BreakerOpen || tr.to != BreakerHalfOpen {
		t.Fatalf("missing open→half-open transition: %v", tr)
	}
	// While the probe is in flight, everyone else is refused.
	if ok, _, _ := b.allow(); ok {
		t.Fatal("second dispatch allowed during an in-flight probe")
	}
	// Probe success closes the breaker.
	tr = b.record(true, true)
	if tr == nil || tr.from != BreakerHalfOpen || tr.to != BreakerClosed {
		t.Fatalf("probe success did not close: %v", tr)
	}
	if got := b.state(); got != BreakerClosed {
		t.Fatalf("state = %v, want closed", got)
	}
}

func TestBreakerProbeFailureReopens(t *testing.T) {
	clk := chaos.NewFake()
	b := newBreaker(clk, 1, time.Minute)
	b.allow()
	b.record(false, false)
	clk.Advance(time.Minute)
	_, probe, _ := b.allow()
	if !probe {
		t.Fatal("expected a probe")
	}
	tr := b.record(false, true)
	if tr == nil || tr.from != BreakerHalfOpen || tr.to != BreakerOpen {
		t.Fatalf("probe failure did not re-open: %v", tr)
	}
	// The cooldown restarts from the re-open instant.
	clk.Advance(30 * time.Second)
	if ok, _, _ := b.allow(); ok {
		t.Fatal("re-opened breaker probed after half a cooldown")
	}
	clk.Advance(30 * time.Second)
	if ok, probe, _ := b.allow(); !ok || !probe {
		t.Fatal("re-opened breaker refused the probe after a full cooldown")
	}
}

func TestBreakerLateFailureWhileOpenIsInert(t *testing.T) {
	clk := chaos.NewFake()
	b := newBreaker(clk, 1, time.Minute)
	ok, _, _ := b.allow() // dispatched while closed
	if !ok {
		t.Fatal("closed breaker refused")
	}
	b.allow()
	b.record(false, false) // another request opens the breaker first
	if tr := b.record(false, false); tr != nil {
		t.Fatalf("late failure on an already-open breaker transitioned: %v", tr)
	}
	if got := b.state(); got != BreakerOpen {
		t.Fatalf("state = %v, want open", got)
	}
}
