package serve

import (
	"fmt"
	"sync"
	"time"

	"tdfm/internal/chaos"
)

// BreakerState is a member circuit breaker's position in its
// closed→open→half-open state machine (DESIGN.md §8).
type BreakerState int

// Breaker states.
const (
	// BreakerClosed: the member is healthy and dispatched normally.
	BreakerClosed BreakerState = iota
	// BreakerOpen: the member failed BreakerThreshold consecutive times
	// and is skipped until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: the cooldown elapsed; exactly one probe request
	// is dispatched to test the member, everyone else still skips it.
	BreakerHalfOpen
)

// String returns the wire name used in responses and events.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// transition describes one observed state change for event emission.
type transition struct {
	from, to BreakerState
}

// String renders the transition as "closed→open".
func (t transition) String() string { return t.from.String() + "→" + t.to.String() }

// breaker is one member's circuit breaker. All timing goes through the
// injected clock; all methods are safe for concurrent use.
//
// The state machine: BreakerThreshold consecutive failures while closed
// open the breaker; after cooldown the next allow() moves it to
// half-open and admits a single probe; the probe's success closes the
// breaker (failure re-opens it with a fresh cooldown). Successes while
// closed reset the consecutive-failure count.
type breaker struct {
	clock     chaos.Clock
	threshold int
	cooldown  time.Duration

	mu       sync.Mutex
	st       BreakerState
	fails    int       // consecutive failures while closed
	openedAt time.Time // when the breaker last opened
	probing  bool      // a half-open probe is in flight
}

// newBreaker returns a closed breaker.
func newBreaker(clock chaos.Clock, threshold int, cooldown time.Duration) *breaker {
	return &breaker{clock: clock, threshold: threshold, cooldown: cooldown}
}

// state returns the current state without advancing it.
func (b *breaker) state() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.st
}

// allow decides whether a request may dispatch to this member now.
// probe is true when this dispatch is the single half-open probe, and
// tr carries the open→half-open transition when the call caused one.
func (b *breaker) allow() (ok, probe bool, tr *transition) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.st {
	case BreakerClosed:
		return true, false, nil
	case BreakerOpen:
		if b.clock.Now().Sub(b.openedAt) < b.cooldown {
			return false, false, nil
		}
		b.st = BreakerHalfOpen
		b.probing = true
		return true, true, &transition{from: BreakerOpen, to: BreakerHalfOpen}
	default: // BreakerHalfOpen
		if b.probing {
			return false, false, nil
		}
		b.probing = true
		return true, true, nil
	}
}

// record reports a dispatched member's outcome back to the breaker and
// returns the transition it caused, if any. probe must be the value
// allow returned for this dispatch.
func (b *breaker) record(success, probe bool) *transition {
	b.mu.Lock()
	defer b.mu.Unlock()
	if probe {
		b.probing = false
	}
	if success {
		b.fails = 0
		if probe && b.st == BreakerHalfOpen {
			b.st = BreakerClosed
			return &transition{from: BreakerHalfOpen, to: BreakerClosed}
		}
		return nil
	}
	switch {
	case probe && b.st == BreakerHalfOpen:
		b.st = BreakerOpen
		b.openedAt = b.clock.Now()
		return &transition{from: BreakerHalfOpen, to: BreakerOpen}
	case b.st == BreakerClosed:
		b.fails++
		if b.fails >= b.threshold {
			b.st = BreakerOpen
			b.openedAt = b.clock.Now()
			return &transition{from: BreakerClosed, to: BreakerOpen}
		}
	}
	// Failures reported while already open (a dispatch that raced the
	// breaker opening) change nothing.
	return nil
}
