package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"tdfm/internal/chaos"
)

// newHTTPServer builds a five-member server with a 1×2×2 input shape
// (four floats per instance) on a fake clock.
func newHTTPServer(t *testing.T, opts Options) *Server {
	t.Helper()
	if opts.Clock == nil {
		opts.Clock = chaos.NewFake()
	}
	opts.Input = [3]int{1, 2, 2}
	s, err := New(fiveMembers(), 3, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// doJSON posts body to path and decodes the JSON reply into out.
func doJSON(t *testing.T, h http.Handler, method, path, body string, out any) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if out != nil {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("decoding %s %s reply %q: %v", method, path, rec.Body.String(), err)
		}
	}
	return rec
}

const twoInstances = `{"instances": [[0,0,0,0], [1,1,1,1]]}`

func TestHTTPPredictOK(t *testing.T) {
	chaos.Reset()
	defer chaos.Reset()
	h := newHTTPServer(t, Options{}).Handler()
	var resp PredictResponse
	rec := doJSON(t, h, http.MethodPost, "/predict?probs=1", twoInstances, &resp)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body.String())
	}
	if len(resp.Predictions) != 2 || resp.Predictions[0] != 1 || resp.Predictions[1] != 1 {
		t.Fatalf("predictions = %v, want [1 1]", resp.Predictions)
	}
	if resp.Quorum != "5/5" {
		t.Fatalf("quorum = %q, want 5/5", resp.Quorum)
	}
	if len(resp.Members) != 5 || resp.Members[0].Name != "alpha" || resp.Members[0].Status != "ok" {
		t.Fatalf("members = %+v", resp.Members)
	}
	if len(resp.Probs) != 2 || resp.Probs[0][1] != 0.45 {
		t.Fatalf("probs = %v, want mean class-1 prob 0.45", resp.Probs)
	}
	// Without ?probs=1 the probs field is omitted.
	var bare map[string]any
	doJSON(t, h, http.MethodPost, "/predict", twoInstances, &bare)
	if _, ok := bare["probs"]; ok {
		t.Fatal("probs present without ?probs=1")
	}
}

func TestHTTPPredictBadRequests(t *testing.T) {
	chaos.Reset()
	defer chaos.Reset()
	h := newHTTPServer(t, Options{}).Handler()
	cases := []struct {
		name, method, body string
		want               int
	}{
		{"malformed json", http.MethodPost, `{"instances": [[0,0`, http.StatusBadRequest},
		{"wrong instance length", http.MethodPost, `{"instances": [[1,2,3]]}`, http.StatusBadRequest},
		{"empty batch", http.MethodPost, `{"instances": []}`, http.StatusBadRequest},
		{"wrong method", http.MethodGet, "", http.StatusMethodNotAllowed},
	}
	for _, c := range cases {
		var resp ErrorResponse
		rec := doJSON(t, h, c.method, "/predict", c.body, &resp)
		if rec.Code != c.want {
			t.Fatalf("%s: status = %d, want %d (body %s)", c.name, rec.Code, c.want, rec.Body.String())
		}
		if resp.Error == "" {
			t.Fatalf("%s: empty error message", c.name)
		}
	}
}

func TestHTTPPredictShedsWith429(t *testing.T) {
	chaos.Reset()
	defer chaos.Reset()
	clk := chaos.NewFake()
	s := newHTTPServer(t, Options{Clock: clk, QueueCapacity: 1, MemberDeadline: 100 * time.Millisecond})
	h := s.Handler()
	// Hold the only slot with a direct request whose members sleep on the
	// fake clock, then hit the API: it must shed immediately.
	chaos.Arm("serve/member", "", chaos.Action{Delay: 50 * time.Millisecond})
	done := make(chan error, 1)
	go func() {
		_, err := s.Predict(batch())
		done <- err
	}()
	clk.BlockUntil(6)

	rec := doJSON(t, h, http.MethodPost, "/predict", twoInstances, nil)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 (body %s)", rec.Code, rec.Body.String())
	}
	clk.Advance(50 * time.Millisecond)
	if err := <-done; err != nil {
		t.Fatalf("held request failed: %v", err)
	}
}

func TestHTTPPredictQuorumFailureIs503(t *testing.T) {
	chaos.Reset()
	defer chaos.Reset()
	h := newHTTPServer(t, Options{}).Handler()
	for _, pat := range []string{"/alpha", "/bravo", "/hangs", "/crash"} {
		chaos.Arm("serve/member", pat, chaos.Action{Err: chaos.ErrInjected})
	}
	var resp ErrorResponse
	rec := doJSON(t, h, http.MethodPost, "/predict", twoInstances, &resp)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503 (body %s)", rec.Code, rec.Body.String())
	}
	if resp.Quorum != "1/5" {
		t.Fatalf("quorum = %q, want 1/5", resp.Quorum)
	}
}

func TestHTTPHealthz(t *testing.T) {
	chaos.Reset()
	defer chaos.Reset()
	s := newHTTPServer(t, Options{})
	h := s.Handler()
	var resp HealthResponse
	rec := doJSON(t, h, http.MethodGet, "/healthz", "", &resp)
	if rec.Code != http.StatusOK || resp.Status != "ok" {
		t.Fatalf("healthz = %d %q", rec.Code, resp.Status)
	}
	if len(resp.Members) != 5 || resp.Members[2].Name != "hangs" || resp.Members[2].Breaker != "closed" {
		t.Fatalf("members = %+v", resp.Members)
	}
	s.Drain()
	resp = HealthResponse{}
	rec = doJSON(t, h, http.MethodGet, "/healthz", "", &resp)
	if rec.Code != http.StatusServiceUnavailable || resp.Status != "draining" {
		t.Fatalf("draining healthz = %d %q, want 503 draining", rec.Code, resp.Status)
	}
	// And the predict path refuses with 503 too.
	rec = doJSON(t, h, http.MethodPost, "/predict", twoInstances, nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("predict during drain = %d, want 503", rec.Code)
	}
}
