package serve

import (
	"fmt"
	"net/http"
	"time"

	"tdfm/internal/chaos"
	"tdfm/internal/obs"
)

// MemberProcess is one supervisable member shard: something that can be
// started (yielding a serving address and an exit notification) and
// stopped. The production implementation execs `tdfmserve -member`;
// tests substitute in-process fakes.
type MemberProcess interface {
	// Start launches the process and returns its serving base URL plus a
	// channel that receives exactly one value when the process exits
	// (nil for a clean exit). Start is called again after each exit.
	Start() (addr string, exit <-chan error, err error)
	// Stop terminates the process if running. It must be safe to call
	// when the process has already exited.
	Stop()
}

// SupervisorOptions configures a member Supervisor. The zero value of
// every field has a usable default.
type SupervisorOptions struct {
	// BackoffBase is the restart delay after the first failure; each
	// consecutive failure doubles it. Default 500ms.
	BackoffBase time.Duration
	// BackoffMax caps the restart delay. A member that stays up healthy
	// for at least BackoffMax earns a reset: its next failure starts the
	// backoff ladder over at BackoffBase. Default 30s.
	BackoffMax time.Duration
	// HealthInterval is the period between health probes of a running
	// member. Default 5s.
	HealthInterval time.Duration
	// Health probes a running member at its base URL; a non-nil error
	// restarts the member ("unhealthy"). Default: HTTP GET <addr>/healthz
	// expecting 200.
	Health func(addr string) error
	// Clock paces health probes and restart backoff; tests inject a
	// chaos.FakeClock so every timing path runs deterministically with
	// zero wall-clock sleeps. Default chaos.Wall().
	Clock chaos.Clock
	// Sink receives member-restart events. Nil means no events.
	Sink obs.Sink
}

// withDefaults resolves zero fields.
func (o SupervisorOptions) withDefaults() SupervisorOptions {
	if o.BackoffBase <= 0 {
		o.BackoffBase = 500 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 30 * time.Second
	}
	if o.HealthInterval <= 0 {
		o.HealthInterval = 5 * time.Second
	}
	if o.Health == nil {
		o.Health = httpHealth
	}
	if o.Clock == nil {
		o.Clock = chaos.Wall()
	}
	return o
}

// httpHealth is the default health probe: GET <addr>/healthz must answer
// 200.
func httpHealth(addr string) error {
	resp, err := http.Get(addr + "/healthz")
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz returned %s", resp.Status)
	}
	return nil
}

// Supervisor keeps one member process running: it starts the process,
// repoints the parent's RemoteMember at each new address, probes health
// on an interval, and restarts on exit, failed start, or failed probe
// with exponential backoff (BackoffBase doubling to BackoffMax; a
// healthy run of at least BackoffMax resets the ladder).
//
// The supervisor deliberately does not touch vote routing: while its
// member is down, the RemoteMember's predictions fail, the member's
// circuit breaker opens, and the ensemble serves on a degraded quorum —
// the same machinery that absorbs a hung in-process member. When the
// restarted process passes its first prediction (the breaker's
// half-open probe), the quorum heals on its own.
type Supervisor struct {
	name   string
	proc   MemberProcess
	member *RemoteMember
	opts   SupervisorOptions
}

// NewSupervisor builds a supervisor for one member shard. member may be
// nil when no RemoteMember address needs repointing (tests supervising
// bare processes).
func NewSupervisor(name string, proc MemberProcess, member *RemoteMember, opts SupervisorOptions) *Supervisor {
	return &Supervisor{name: name, proc: proc, member: member, opts: opts.withDefaults()}
}

// Run supervises until stop is closed, then stops the process and
// returns. It blocks; callers run it on its own goroutine.
func (s *Supervisor) Run(stop <-chan struct{}) {
	failures := 0
	for {
		select {
		case <-stop:
			return
		default:
		}
		addr, exit, err := s.proc.Start()
		if err != nil {
			failures++
			d := s.backoff(failures)
			s.emit(obs.Event{Kind: obs.KindMemberRestart, Member: s.name,
				N: failures, Dur: d, Err: err, Detail: "start-failed"})
			if !s.pause(d, stop) {
				return
			}
			continue
		}
		startedAt := s.opts.Clock.Now()
		if s.member != nil {
			s.member.SetAddr(addr)
		}
		s.emit(obs.Event{Kind: obs.KindMemberRestart, Member: s.name,
			N: failures, Detail: "restarted"})

		phase, cause := s.watch(exit, addr, stop)
		if phase == "" {
			s.proc.Stop()
			return
		}
		if phase == "unhealthy" {
			// The process is alive but failing probes; kill it so the
			// restart below starts from a clean slate. Its exit notification
			// is abandoned with the old process.
			s.proc.Stop()
		}
		if s.opts.Clock.Now().Sub(startedAt) >= s.opts.BackoffMax {
			failures = 0 // a long healthy run earns a fresh ladder
		}
		failures++
		d := s.backoff(failures)
		s.emit(obs.Event{Kind: obs.KindMemberRestart, Member: s.name,
			N: failures, Dur: d, Err: cause, Detail: phase})
		if !s.pause(d, stop) {
			return
		}
	}
}

// watch waits for the running process to exit or fail a health probe.
// It returns ("", nil) when stop closed, else the failure phase
// ("exited" or "unhealthy") and its cause.
func (s *Supervisor) watch(exit <-chan error, addr string, stop <-chan struct{}) (string, error) {
	for {
		t := s.opts.Clock.NewTimer(s.opts.HealthInterval)
		select {
		case <-stop:
			t.Stop()
			return "", nil
		case err := <-exit:
			t.Stop()
			if err == nil {
				err = fmt.Errorf("member process exited")
			}
			return "exited", err
		case <-t.C():
			if err := s.opts.Health(addr); err != nil {
				return "unhealthy", err
			}
		}
	}
}

// backoff returns the restart delay for the nth consecutive failure:
// BackoffBase doubling per failure, capped at BackoffMax.
func (s *Supervisor) backoff(failures int) time.Duration {
	d := s.opts.BackoffBase
	for i := 1; i < failures; i++ {
		d *= 2
		if d >= s.opts.BackoffMax {
			return s.opts.BackoffMax
		}
	}
	if d > s.opts.BackoffMax {
		return s.opts.BackoffMax
	}
	return d
}

// pause sleeps d on the injected clock; it returns false when stop
// closed first.
func (s *Supervisor) pause(d time.Duration, stop <-chan struct{}) bool {
	t := s.opts.Clock.NewTimer(d)
	select {
	case <-stop:
		t.Stop()
		return false
	case <-t.C():
		return true
	}
}

// emit forwards an event to the configured sink, if any.
func (s *Supervisor) emit(e obs.Event) {
	if s.opts.Sink != nil {
		s.opts.Sink.Emit(e)
	}
}
