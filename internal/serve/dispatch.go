package serve

import (
	"tdfm/internal/chaos"
	"tdfm/internal/core"
	"tdfm/internal/obs"
	"tdfm/internal/parallel"
	"tdfm/internal/tensor"
)

// outcome is one member's answer (or failure) for one dispatch.
type outcome struct {
	idx      int
	probs    *tensor.Tensor
	err      error
	panicked bool
}

// dispatch fans a request out to every member whose breaker allows it,
// collects answers until the per-member deadline, and builds the
// degraded-quorum result. It is the single-request path; the batched
// path (batcher.flush) shares fanout and vote but demuxes one fan-out
// across many requests.
func (s *Server) dispatch(reqID string, x *tensor.Tensor) (*Result, error) {
	probs, reports := s.fanout(reqID, x)
	return s.vote(probs, reports, 0, x.Dim(0))
}

// fanout runs one batch of rows through every member whose breaker
// allows it, under the per-member deadline, and returns each member's
// probability output ([N, K], nil for members that were skipped, timed
// out, panicked, or errored) alongside the per-member fate reports.
// Breakers are updated and member/breaker events emitted, keyed by key
// (a request ID on the single-request path, a batch ID on the batched
// path).
//
// Determinism: members are dispatched, classified, and tallied in member
// index order, and events are emitted only from this goroutine — so for
// a fixed set of member outcomes the result and the key's event sequence
// are schedule-independent. Which members make the deadline is
// inherently a property of time; tests pin it with a FakeClock.
func (s *Server) fanout(key string, x *tensor.Tensor) ([]*tensor.Tensor, []MemberReport) {
	n := len(s.members)
	results := make(chan outcome, n) // buffered: late members park their answer and exit
	dispatched := make([]bool, n)
	probe := make([]bool, n)
	reports := make([]MemberReport, n)
	count := 0
	for i := range s.members {
		reports[i] = MemberReport{Name: s.members[i].Name, Status: StatusOpen}
		ok, pr, tr := s.breakers[i].allow()
		if tr != nil {
			s.emit(obs.Event{Kind: obs.KindBreakerChange, Key: key,
				Member: s.members[i].Name, Detail: tr.String()})
		}
		if !ok {
			continue
		}
		dispatched[i], probe[i] = true, pr
		count++
		// A hung member must be abandonable at its deadline, so each member
		// runs on its own goroutine that parks its late answer in the
		// buffered channel; parallel.Run cannot serve here because it joins
		// all tasks. Results stay schedule-independent: answers are
		// re-ordered by member index before tallying, and sharing the
		// worker budget is deliberately avoided so a saturated training
		// pool cannot starve serving.
		go s.runMember(key, i, x, results) //tdfm:allow nodeterminism deadline requires abandoning hung members; answers are re-ordered by member index before tallying, so schedule cannot leak into the vote
	}

	received := make([]*outcome, n)
	if count > 0 {
		timer := s.opts.Clock.NewTimer(s.opts.MemberDeadline)
		defer timer.Stop()
		got := 0
	collect:
		for got < count {
			select {
			case o := <-results:
				c := o
				received[o.idx] = &c
				got++
			case <-timer.C():
				// A member finishing at the same instant the deadline
				// fires races this select; prefer answers already parked
				// in the channel over declaring their members late.
				for got < count {
					select {
					case o := <-results:
						c := o
						received[o.idx] = &c
						got++
					default:
						break collect
					}
				}
				break collect
			}
		}
	}

	// Classify fates, update breakers, and emit member events in member
	// index order (never in completion order).
	probs := make([]*tensor.Tensor, n)
	for i := range s.members {
		if !dispatched[i] {
			continue
		}
		o := received[i]
		var tr *transition
		switch {
		case o == nil:
			reports[i].Status = StatusTimeout
			s.emit(obs.Event{Kind: obs.KindMemberTimeout, Key: key, Member: s.members[i].Name,
				Dur: s.opts.MemberDeadline})
			tr = s.breakers[i].record(false, probe[i])
		case o.panicked:
			reports[i].Status = StatusPanic
			s.emit(obs.Event{Kind: obs.KindMemberPanic, Key: key, Member: s.members[i].Name, Err: o.err})
			tr = s.breakers[i].record(false, probe[i])
		case o.err != nil:
			reports[i].Status = StatusError
			s.emit(obs.Event{Kind: obs.KindMemberError, Key: key, Member: s.members[i].Name, Err: o.err})
			tr = s.breakers[i].record(false, probe[i])
		default:
			reports[i].Status = StatusOK
			probs[i] = o.probs
			tr = s.breakers[i].record(true, probe[i])
		}
		if tr != nil {
			s.emit(obs.Event{Kind: obs.KindBreakerChange, Key: key,
				Member: s.members[i].Name, Detail: tr.String()})
		}
	}
	return probs, reports
}

// vote builds the degraded-quorum Result for rows [lo, hi) of a fanout's
// member outputs, or a *QuorumError when fewer than MinQuorum members
// survived. The single-request path votes over the full row range; the
// batched path votes once per request over that request's row slice.
// Row slices are zero-copy views, and every member's probabilities are
// row-independent, so a request's batched vote is bit-identical to the
// vote it would have received dispatched alone (given the same member
// fates).
func (s *Server) vote(probs []*tensor.Tensor, reports []MemberReport, lo, hi int) (*Result, error) {
	var alive []*tensor.Tensor
	for _, p := range probs {
		if p != nil {
			alive = append(alive, p.SliceRows(lo, hi))
		}
	}
	n := len(s.members)
	if len(alive) < s.opts.MinQuorum {
		return nil, &QuorumError{Got: len(alive), Need: s.opts.MinQuorum, Members: n}
	}
	mean := alive[0].Clone()
	for _, p := range alive[1:] {
		mean.AddIn(p)
	}
	mean.ScaleIn(1 / float64(len(alive)))
	return &Result{
		Pred:    core.TallyVotes(alive, s.classes),
		Probs:   mean,
		Quorum:  len(alive),
		Members: n,
		Reports: reports,
	}, nil
}

// runMember computes one member's probabilities and parks the outcome in
// out (buffered with one slot per member, so a member finishing after
// its deadline exits without blocking). The member mutex is held across
// the send: one prediction per member at a time — forward passes reuse
// layer buffers, and a real replica is single-threaded — and an observer
// that subsequently acquires the mutex is guaranteed the outcome has
// been delivered, which tests use to choreograph deadlines exactly.
func (s *Server) runMember(key string, idx int, x *tensor.Tensor, out chan<- outcome) {
	s.memberMu[idx].Lock()
	defer s.memberMu[idx].Unlock()
	out <- s.memberOutcome(key, idx, x) //tdfm:allow lockdiscipline the channel is buffered one slot per member so this send never blocks; holding memberMu across it is the documented deadline rendezvous
}

// memberOutcome runs one member's inference with panic recovery and the
// "serve/member" chaos faultpoint applied: Delay sleeps on the injected
// clock (a slow or hung member), Panic and Err fail the member.
func (s *Server) memberOutcome(key string, idx int, x *tensor.Tensor) (o outcome) {
	o.idx = idx
	defer func() {
		if v := recover(); v != nil {
			o.probs, o.err, o.panicked = nil, parallel.AsPanicError(v), true
		}
	}()
	// The label concatenation is skipped while the harness is idle: the
	// Armed check is one atomic load, the concat is an allocation per
	// member per request.
	if chaos.Armed() {
		if act := chaos.Check("serve/member", key+"/"+s.members[idx].Name); act != nil {
			act.Wait(s.opts.Clock)
			if act.Panic {
				panic(chaos.ErrInjected)
			}
			if act.Err != nil {
				o.err = act.Err
				return o
			}
		}
	}
	// Error-aware members (remote shards) report transport failures as
	// member errors; plain classifiers keep the panic-recovery path.
	if pe, ok := s.members[idx].Clf.(ProbsErrer); ok {
		o.probs, o.err = pe.PredictProbsErr(x)
		if o.err != nil {
			o.probs = nil
		}
		return o
	}
	o.probs = s.members[idx].Clf.PredictProbs(x)
	return o
}
